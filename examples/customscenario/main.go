// Custom scenario: experiments are data, not Go functions. The embedded
// grid.json declares a two-axis sweep — every evaluation topology crossed
// with both trace models — that no single paper figure expresses, renders
// rejection and cost tables for three algorithms, and runs through the
// same parallel runner as the built-in experiments. The identical spec
// runs from the command line:
//
//	vnesim -scenario examples/customscenario/grid.json -reps 1 -progress
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	olive "github.com/olive-vne/olive"
)

//go:embed grid.json
var gridSpec string

func main() {
	sp, err := olive.LoadScenario(strings.NewReader(gridSpec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s\n", sp.Name, sp.Description)
	fmt.Printf("spec hash %s (part of every artifact key: editing the spec invalidates cached cells)\n\n", sp.Hash())

	// Run small: smoke trace lengths, one repetition per cell, progress
	// on stderr. The scale object also carries the runner options — add
	// an artifact store here and interrupted runs resume for free.
	scale := olive.SmokeScale()
	scale.Reps = 1
	scale.Runner.Reporter = olive.NewProgressReporter(os.Stderr)

	tables, err := olive.RunScenario(sp, scale)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}
