// Quickstart: the minimal end-to-end OLIVE flow on a realistic topology —
// generate a workload history, build the PLAN-VNE embedding plan offline,
// then embed live requests online and compare against the plan-less
// greedy (QUICKG).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	olive "github.com/olive-vne/olive"
)

func main() {
	// 1. Substrate: the Città Studi edge network (30 nodes, 3 tiers).
	g := olive.BuildTopology(olive.TopoCittaStudi, 1)
	rng := rand.New(rand.NewPCG(42, 42))

	// 2. Applications: the paper's mix — two service chains, a
	//    two-branch tree, and an accelerator chain.
	apps := olive.DefaultAppMix(rng)
	for _, a := range apps {
		fmt.Printf("app %-12s kind=%-5s VNFs=%d node-size=%.0f CU/unit\n",
			a.Name, a.Kind, a.FunctionalVNFs(), a.TotalNodeSize())
	}

	// 3. Workload at 120% edge utilization: bursty MMPP arrivals with
	//    Zipf node popularity. 400 slots of history + 100 slots live.
	wp := olive.DefaultWorkload().WithUtilization(1.2)
	wp.Slots = 500
	wp.LambdaPerNode = 5
	wp.DemandMean = 1.2 * 100 / wp.LambdaPerNode // utilization calibration
	trace, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		log.Fatal(err)
	}
	hist, online, err := trace.Split(400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload: %d history + %d online requests\n",
		len(hist.Requests), len(online.Requests))

	// 4. Offline: aggregate the history into (app, ingress) classes and
	//    solve PLAN-VNE.
	p, err := olive.BuildPlan(g, apps, hist, olive.DefaultPlanOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d classes, objective %.4g, balance %.2f\n\n",
		len(p.Classes), p.Obj, p.RejectionBalance())

	// 5. Online: OLIVE (plan-guided) vs QUICKG (plan-less greedy).
	for _, opts := range []olive.EngineOptions{{Plan: p}, {}} {
		eng, err := olive.NewEngine(g, apps, opts)
		if err != nil {
			log.Fatal(err)
		}
		var accepted, planned, preempted, total int
		for t, slot := range online.PerSlot() {
			eng.StartSlot(t)
			for _, r := range slot {
				out, err := eng.Process(r)
				if err != nil {
					log.Fatal(err)
				}
				total++
				if out.Accepted {
					accepted++
				}
				if out.Planned {
					planned++
				}
				preempted += len(out.Preempted)
			}
		}
		fmt.Printf("%-7s accepted %4d/%4d (%.1f%% rejected)  planned=%d preemptions=%d\n",
			eng.Algorithm(), accepted, total,
			100*float64(total-accepted)/float64(total), planned, preempted)
	}
}
