// Burst compensation: a close-up of OLIVE's dynamic mechanisms under a
// bursty MMPP workload (the behaviour behind Figs. 8 and 12). The demo
// tracks, slot by slot, how arriving demand is served: guaranteed by the
// plan, borrowed from other classes' unused guarantees, reclaimed by
// preemption, or rejected.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	olive "github.com/olive-vne/olive"
)

func main() {
	g := olive.BuildTopology(olive.TopoIris, 1)
	rng := rand.New(rand.NewPCG(3, 3))
	apps := olive.DefaultAppMix(rng)

	// Strongly bursty workload at 130% utilization.
	wp := olive.DefaultWorkload().WithUtilization(1.3)
	wp.Slots = 400
	wp.LambdaPerNode = 4
	wp.DemandMean = 1.3 * 100 / wp.LambdaPerNode
	wp.MMPP.HighFactor, wp.MMPP.LowFactor, wp.MMPP.SwitchProb = 1.8, 0.4, 0.08
	trace, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		log.Fatal(err)
	}
	hist, online, err := trace.Split(320)
	if err != nil {
		log.Fatal(err)
	}

	p, err := olive.BuildPlan(g, apps, hist, olive.DefaultPlanOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := olive.NewEngine(g, apps, olive.EngineOptions{Plan: p})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slot  arrivals  guaranteed  borrowed  preempted  rejected   demand-bar")
	var totG, totB, totP, totR int
	for t, slot := range online.PerSlot() {
		eng.StartSlot(t)
		var nG, nB, nR, nP int
		var demand float64
		for _, r := range slot {
			demand += r.Demand
			out, err := eng.Process(r)
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case !out.Accepted:
				nR++
			case out.Planned:
				nG++
			default:
				nB++
			}
			nP += len(out.Preempted)
		}
		totG += nG
		totB += nB
		totP += nP
		totR += nR
		bar := strings.Repeat("█", int(demand/400))
		fmt.Printf("%4d  %8d  %10d  %8d  %9d  %8d   %s\n",
			t, len(slot), nG, nB, nP, nR, bar)
	}
	total := totG + totB + totR
	fmt.Printf("\ntotals: %d requests — %.1f%% guaranteed, %.1f%% borrowed, %.1f%% rejected (%d preemptions)\n",
		total,
		100*float64(totG)/float64(total),
		100*float64(totB)/float64(total),
		100*float64(totR)/float64(total), totP)
	fmt.Println("\nReading the trace: during lulls the plan's guarantees absorb everything;")
	fmt.Println("bursts overflow into borrowed capacity, and when a guaranteed request")
	fmt.Println("later finds its capacity borrowed, OLIVE preempts the borrower (the")
	fmt.Println("paper's Fig. 12 mechanism).")
}
