// Capacity planning: use PLAN-VNE as a standalone what-if tool. The plan's
// per-class rejected fractions tell an edge provider exactly where and for
// whom capacity runs out before a single live request is served — and how
// the answer changes as demand grows or the quantile knob is turned.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	olive "github.com/olive-vne/olive"
)

func main() {
	g := olive.BuildTopology(olive.TopoCittaStudi, 1)
	rng := rand.New(rand.NewPCG(11, 11))
	apps := olive.DefaultAppMix(rng)

	// One shared history at 100% utilization; what-if demand growth is
	// modeled by scaling the aggregated class demands.
	wp := olive.DefaultWorkload().WithUtilization(1.0)
	wp.Slots = 400
	wp.LambdaPerNode = 5
	wp.DemandMean = 100.0 / wp.LambdaPerNode
	hist, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		log.Fatal(err)
	}
	opts := olive.DefaultPlanOptions()
	classes, err := olive.AggregateHistory(hist, len(apps), opts.Alpha, opts.BootstrapB, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d requests → %d (app, ingress) classes\n\n",
		len(hist.Requests), len(classes))

	// What-if sweep: how much demand does the optimal plan reject as
	// aggregate demand grows?
	fmt.Println("demand growth what-if (optimal offline plan):")
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "growth", "planned", "rejected", "balance")
	for _, growth := range []float64{0.8, 1.0, 1.2, 1.5, 2.0} {
		scaled := make([]olive.PlanClass, len(classes))
		for i, c := range classes {
			c.Demand *= growth
			scaled[i] = c
		}
		p, err := olive.BuildPlanFromClasses(g, apps, scaled, opts)
		if err != nil {
			log.Fatal(err)
		}
		var planned, rejected, total float64
		for _, cp := range p.Classes {
			total += cp.Class.Demand
			planned += cp.PlannedDemand()
			rejected += cp.Rejected * cp.Class.Demand
		}
		fmt.Printf("%-8s %6.1f%%      %6.1f%%      %.3f\n",
			fmt.Sprintf("×%.1f", growth),
			100*planned/total, 100*rejected/total, p.RejectionBalance())
	}

	// Where does capacity run out first? Rank ingress nodes by rejected
	// demand at ×1.5 growth.
	scaled := make([]olive.PlanClass, len(classes))
	for i, c := range classes {
		c.Demand *= 1.5
		scaled[i] = c
	}
	p, err := olive.BuildPlanFromClasses(g, apps, scaled, opts)
	if err != nil {
		log.Fatal(err)
	}
	rejAt := map[olive.NodeID]float64{}
	for _, cp := range p.Classes {
		rejAt[cp.Class.Ingress] += cp.Rejected * cp.Class.Demand
	}
	fmt.Println("\nhotspots at ×1.5 demand (rejected demand by ingress):")
	printed := 0
	for printed < 5 {
		var best olive.NodeID = -1
		for v, r := range rejAt {
			if best < 0 || r > rejAt[best] {
				best = v
			}
		}
		if best < 0 || rejAt[best] <= 0 {
			break
		}
		fmt.Printf("  %-12s %8.0f demand units rejected\n", g.Node(best).Name, rejAt[best])
		delete(rejAt, best)
		printed++
	}

	// Where is the substrate tightest? Top planned-element utilizations.
	fmt.Println("\ntightest substrate elements at ×1.5 demand:")
	for i, eu := range p.UtilizationReport(g) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-24s %5.1f%% of %8.0f CU\n", eu.Name, eu.Frac*100, eu.Cap)
	}

	// Quantile ablation: fairness of the rejection split.
	fmt.Println("\nquantile knob at ×1.5 demand:")
	for _, q := range []int{1, 2, 10, 50} {
		o := opts
		o.Quantiles = q
		p, err := olive.BuildPlanFromClasses(g, apps, scaled, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P=%-3d balance index %.3f\n", q, p.RejectionBalance())
	}
}
