// Edge gaming: GPU-constrained embedding (the Fig. 10 scenario). A cloud
// gaming service is a chain with one GPU render VNF that must run on a
// dedicated GPU datacenter; GPU datacenters accept nothing else. The
// collocation-restricted greedy cannot even represent such applications —
// OLIVE's plan places the GPU hop optimally while keeping the rest of the
// chain near the user.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	olive "github.com/olive-vne/olive"
)

func main() {
	// Iris with its core and four random edge datacenters converted to
	// GPU-only; all non-GPU datacenters lose 25% capacity (paper §IV).
	base := olive.BuildTopology(olive.TopoIris, 1)
	g := olive.MakeGPUVariant(base, 4, 7)
	var gpuNames []string
	for _, n := range g.Nodes() {
		if n.GPU {
			gpuNames = append(gpuNames, n.Name)
		}
	}
	fmt.Printf("GPU datacenters: %v\n\n", gpuNames)

	// Four gaming chains, each with one GPU render VNF.
	rng := rand.New(rand.NewPCG(7, 7))
	params := olive.DefaultAppParams()
	apps := make([]*olive.App, 4)
	for i := range apps {
		apps[i] = olive.GenerateApp(olive.KindGPU, fmt.Sprintf("gaming-%d", i+1), params, rng)
	}
	for _, a := range apps {
		gpuAt := -1
		for i, v := range a.VNFs {
			if v.GPU {
				gpuAt = i
			}
		}
		fmt.Printf("app %-9s %d VNFs, GPU render at position %d\n",
			a.Name, a.FunctionalVNFs(), gpuAt)
	}

	// Inspect one exact embedding: where does the GPU hop land?
	ingress := g.EdgeNodes()[0]
	emb, cost, ok := olive.MinCostEmbedding(g, apps[0], ingress)
	if !ok {
		log.Fatal("no feasible embedding for the gaming chain")
	}
	fmt.Printf("\nexact embedding of %s from %s (unit cost %.1f):\n",
		apps[0].Name, g.Node(ingress).Name, cost)
	for i, u := range emb.NodeMap {
		if i == 0 {
			continue
		}
		marker := ""
		if apps[0].VNFs[i].GPU {
			marker = "  [GPU]"
		}
		fmt.Printf("  VNF %d -> %s%s\n", i, g.Node(u).Name, marker)
	}

	// Full scenario: history → plan → online, OLIVE vs FULLG.
	wp := olive.DefaultWorkload().WithUtilization(1.0)
	wp.Slots = 360
	wp.LambdaPerNode = 4
	wp.DemandMean = 100.0 / wp.LambdaPerNode
	trace, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		log.Fatal(err)
	}
	hist, online, err := trace.Split(300)
	if err != nil {
		log.Fatal(err)
	}
	p, err := olive.BuildPlan(g, apps, hist, olive.DefaultPlanOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, opts := range []olive.EngineOptions{{Plan: p}, {Exact: true}} {
		eng, err := olive.NewEngine(g, apps, opts)
		if err != nil {
			log.Fatal(err)
		}
		var accepted, total int
		for t, slot := range online.PerSlot() {
			eng.StartSlot(t)
			for _, r := range slot {
				out, err := eng.Process(r)
				if err != nil {
					log.Fatal(err)
				}
				total++
				if out.Accepted {
					accepted++
				}
			}
		}
		fmt.Printf("%-6s accepted %4d/%4d gaming sessions (%.1f%% rejected)\n",
			eng.Algorithm(), accepted, total, 100*float64(total-accepted)/float64(total))
	}
	fmt.Println("\n(QUICKG is absent by design: GPU chains cannot be collocated.)")
}
