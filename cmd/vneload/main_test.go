package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/olive-vne/olive/internal/serve"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// testDaemon spins an in-process 2-shard vnesimd-equivalent server.
func testDaemon(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	s, err := serve.New(g, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return ts
}

func TestExactQuantiles(t *testing.T) {
	var lats []time.Duration
	for v := 100; v >= 1; v-- { // descending: quantiles must sort
		lats = append(lats, time.Duration(v)*time.Microsecond)
	}
	q := exactQuantiles(lats)
	if q.P50 != 50*time.Microsecond || q.P90 != 90*time.Microsecond ||
		q.P99 != 99*time.Microsecond || q.P999 != 100*time.Microsecond {
		t.Fatalf("quantiles = %+v, want 50/90/99/100µs", q)
	}
	if q := exactQuantiles(nil); q.P999 != 0 {
		t.Fatalf("empty quantiles = %+v", q)
	}
}

// TestLoadRunSummary drives a short load run against a 2-shard daemon
// and checks the machine-readable summary: every request accounted for,
// a plausible acceptance rate, monotone quantiles.
func TestLoadRunSummary(t *testing.T) {
	ts := testDaemon(t, serve.Options{Shards: 2, Deterministic: true})
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-n", "120", "-rps", "2000", "-workers", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	line := out.String()
	re := regexp.MustCompile(`vneload-summary target_rps=2000 achieved_rps=[\d.]+ sent=120 accepted=(\d+) rejected=(\d+) throttled=(\d+) errors=0 acceptance=[\d.]+ p50_us=(\d+) p90_us=(\d+) p99_us=(\d+) p999_us=(\d+) duration_s=[\d.]+`)
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("summary line did not match:\n%s", line)
	}
	atoi := func(s string) int { v, _ := strconv.Atoi(s); return v }
	accepted, rejected, throttled := atoi(m[1]), atoi(m[2]), atoi(m[3])
	if accepted+rejected+throttled != 120 {
		t.Fatalf("accounting: %d+%d+%d ≠ 120", accepted, rejected, throttled)
	}
	if accepted == 0 {
		t.Fatal("no request accepted on an empty substrate")
	}
	p50, p90, p99, p999 := atoi(m[4]), atoi(m[5]), atoi(m[6]), atoi(m[7])
	if p50 > p90 || p90 > p99 || p99 > p999 {
		t.Fatalf("quantiles not monotone: %d/%d/%d/%d", p50, p90, p99, p999)
	}
}

// TestCheckMode scrapes and lints a live daemon's /metrics, requiring
// the families the acceptance criteria name.
func TestCheckMode(t *testing.T) {
	ts := testDaemon(t, serve.Options{Shards: 2, Deterministic: true})
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-check",
		"-require", "vne_decisions_total,vne_shed_total,vne_shard_queue_depth,vne_lp_pivots_total,vne_request_duration_seconds",
	}, &out)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	var n int
	if _, err := fmt.Sscanf(out.String(), "vneload-check families=%d ok", &n); err != nil || n < 12 {
		t.Fatalf("check output %q, want ≥ 12 families", out.String())
	}

	// A missing family must fail the check.
	if err := run([]string{"-addr", ts.URL, "-check", "-require", "vne_not_a_family"}, &out); err == nil {
		t.Fatal("check passed with a nonexistent required family")
	}
}

// TestThrottledLoad: against a tightly rate-limited daemon, vneload
// observes 429s as throttled — and the daemon's own metrics attribute
// them to the limiter, not to queue overflow.
func TestThrottledLoad(t *testing.T) {
	ts := testDaemon(t, serve.Options{
		Shards:        2,
		Deterministic: true,
		RateLimit:     serve.RateLimit{RPS: 50, Burst: 5},
	})
	var out bytes.Buffer
	if err := run([]string{
		"-addr", ts.URL, "-n", "100", "-rps", "5000", "-workers", "8",
	}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	re := regexp.MustCompile(`throttled=(\d+)`)
	m := re.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no throttled field:\n%s", out.String())
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Fatalf("offered 5000 rps against a 50 rps limiter, throttled=0:\n%s", out.String())
	}
}
