// Command vneload is the load harness for vnesimd: it drives a synthetic
// MMPP request stream at a target request rate against a running daemon
// and reports what actually happened — achieved RPS, acceptance rate, and
// exact tail-latency quantiles — so "the daemon handles heavy traffic" is
// a measured claim, not an asserted one.
//
// Load run:
//
//	vneload -addr http://localhost:8080 -n 2000 -rps 500 -workers 16
//
// The stream is drawn from the same MMPP workload model the simulator and
// vnesimd -gen-stream use (-topo/-seed/-util/-lambda), or loaded from a
// file written by vnesimd -gen-stream (-stream). Pacing is open-loop: a
// ticker releases requests at the target rate regardless of completions,
// so a saturated server shows up as rising latency and 429s, not as a
// silently reduced offered rate. The last line is machine-readable:
//
//	vneload-summary target_rps=500 achieved_rps=498.2 sent=2000 accepted=1210 \
//	  rejected=740 throttled=50 errors=0 acceptance=0.620 \
//	  p50_us=812 p90_us=1410 p99_us=3100 p999_us=8000 duration_s=4.01
//
// Scrape check (no load):
//
//	vneload -addr http://localhost:8080 -check \
//	  -require vne_decisions_total,vne_shed_total
//
// -check fetches /metrics, lints the Prometheus text exposition
// (TYPE/HELP present, histogram buckets cumulative and capped by +Inf),
// and fails unless every -require family is present.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/obs"
	"github.com/olive-vne/olive/internal/serve"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vneload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vneload", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	n := fs.Int("n", 500, "number of requests to send")
	rps := fs.Float64("rps", 200, "target offered request rate (requests/second)")
	workers := fs.Int("workers", 8, "concurrent senders")
	streamFile := fs.String("stream", "", "load the request stream from this file (vnesimd -gen-stream output) instead of generating")
	topoFlag := fs.String("topo", "iris", "topology for stream generation (must match the daemon's)")
	topoSeed := fs.Uint64("toposeed", 1, "topology construction seed")
	seed := fs.Uint64("seed", 99, "stream generation seed")
	util := fs.Float64("util", 1.0, "stream demand level")
	lambda := fs.Float64("lambda", 3, "stream arrivals per edge node per slot")
	numApps := fs.Int("apps", 4, "application-mix size the daemon was built with")
	clientID := fs.String("client-id", "", "X-Client-ID header for every request (per-client rate-limit bucket)")
	check := fs.Bool("check", false, "scrape and lint /metrics instead of sending load")
	require := fs.String("require", "", "comma-separated metric families that must exist (-check)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check {
		return runCheck(out, *addr, *require)
	}

	var reqs []serve.StreamRequest
	if *streamFile != "" {
		f, err := os.Open(*streamFile)
		if err != nil {
			return err
		}
		reqs, err = serve.LoadStream(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(reqs) > *n {
			reqs = reqs[:*n]
		}
	} else {
		g, err := topo.Build(topo.Name(*topoFlag), *topoSeed)
		if err != nil {
			return err
		}
		reqs, err = genStream(g, *numApps, *n, *util, *lambda, *seed)
		if err != nil {
			return err
		}
	}

	sum := fire(*addr, reqs, *rps, *workers, *clientID)
	writeSummary(out, sum)
	if sum.Errors > 0 {
		return fmt.Errorf("%d requests failed outright", sum.Errors)
	}
	return nil
}

// genStream draws n requests from the MMPP model (same calibration as
// vnesimd -gen-stream).
func genStream(g *graph.Graph, numApps, n int, util, lambda float64, seed uint64) ([]serve.StreamRequest, error) {
	perSlot := lambda * float64(len(g.EdgeNodes()))
	slots := int(2*float64(n)/perSlot) + 10
	wp := workload.DefaultParams().WithUtilization(util)
	wp.Slots = slots
	wp.LambdaPerNode = lambda
	wp.NumApps = numApps
	wp.DemandMean = util * 100 / lambda
	tr, err := workload.GenerateMMPP(g, wp, rand.New(rand.NewPCG(seed, 0xd5ea)))
	if err != nil {
		return nil, err
	}
	if len(tr.Requests) < n {
		return nil, fmt.Errorf("generated only %d requests, want %d (raise -lambda?)", len(tr.Requests), n)
	}
	reqs := make([]serve.StreamRequest, n)
	for i, r := range tr.Requests[:n] {
		reqs[i] = serve.StreamRequest{
			App: r.App, Ingress: int(r.Ingress), Demand: r.Demand,
			Duration: r.Duration, Arrive: r.Arrive,
		}
	}
	return reqs, nil
}

// summary is one load run's outcome.
type summary struct {
	TargetRPS   float64
	AchievedRPS float64
	Sent        int
	Accepted    int
	Rejected    int
	Throttled   int // 429: rate-limited or queue-full
	Errors      int // transport failures and non-2xx/429 statuses
	Acceptance  float64
	Quantiles   latQuantiles
	Duration    time.Duration
}

// latQuantiles are exact (fully sorted) latency quantiles.
type latQuantiles struct {
	P50, P90, P99, P999 time.Duration
}

// exactQuantiles computes nearest-rank-with-ceiling quantiles over the
// full sample set — the repo-wide quantile definition (⌈q·n⌉-th
// smallest), exact because nothing is bucketed or windowed here.
func exactQuantiles(lats []time.Duration) latQuantiles {
	if len(lats) == 0 {
		return latQuantiles{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	return latQuantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), P999: at(0.999)}
}

// fire sends the stream at the target rate through the worker pool and
// aggregates the outcome. Open loop: the ticker releases work on
// schedule whether or not earlier requests have completed.
func fire(addr string, reqs []serve.StreamRequest, rps float64, workers int, clientID string) summary {
	if workers < 1 {
		workers = 1
	}
	if rps <= 0 {
		rps = 1
	}
	jobs := make(chan serve.StreamRequest, len(reqs))
	type outcome struct {
		status int
		ok     bool
		acc    bool
		lat    time.Duration
	}
	outs := make(chan outcome, len(reqs))
	client := &http.Client{Timeout: 30 * time.Second}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var body bytes.Buffer
			for sr := range jobs {
				body.Reset()
				fmt.Fprintf(&body,
					`{"app":%d,"ingress":%d,"demand":%g,"duration":%d,"arrive":%d}`,
					sr.App, sr.Ingress, sr.Demand, sr.Duration, sr.Arrive)
				req, err := http.NewRequest(http.MethodPost, addr+"/v1/embed", &body)
				if err != nil {
					outs <- outcome{}
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if clientID != "" {
					req.Header.Set("X-Client-ID", clientID)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				if err != nil {
					outs <- outcome{}
					continue
				}
				accepted := false
				if resp.StatusCode == http.StatusOK {
					// The decision is a tiny JSON object; scan for the
					// accepted flag rather than decoding per request.
					b, _ := io.ReadAll(resp.Body)
					accepted = bytes.Contains(b, []byte(`"accepted":true`))
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				outs <- outcome{status: resp.StatusCode, ok: true, acc: accepted, lat: lat}
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / rps)
	tick := time.NewTicker(interval)
	for _, sr := range reqs {
		<-tick.C
		jobs <- sr
	}
	tick.Stop()
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	close(outs)

	sum := summary{TargetRPS: rps, Sent: len(reqs), Duration: elapsed}
	lats := make([]time.Duration, 0, len(reqs))
	for o := range outs {
		switch {
		case !o.ok:
			sum.Errors++
		case o.status == http.StatusOK && o.acc:
			sum.Accepted++
			lats = append(lats, o.lat)
		case o.status == http.StatusOK:
			sum.Rejected++
			lats = append(lats, o.lat)
		case o.status == http.StatusTooManyRequests:
			sum.Throttled++
		default:
			sum.Errors++
		}
	}
	if decided := sum.Accepted + sum.Rejected; decided > 0 {
		sum.Acceptance = float64(sum.Accepted) / float64(decided)
	}
	if s := elapsed.Seconds(); s > 0 {
		sum.AchievedRPS = float64(sum.Sent) / s
	}
	sum.Quantiles = exactQuantiles(lats)
	return sum
}

// writeSummary prints the machine-readable result line (the vneload
// analogue of the runner-summary idiom; CI greps it).
func writeSummary(w io.Writer, s summary) {
	fmt.Fprintf(w,
		"vneload-summary target_rps=%g achieved_rps=%.1f sent=%d accepted=%d rejected=%d throttled=%d errors=%d acceptance=%.3f p50_us=%d p90_us=%d p99_us=%d p999_us=%d duration_s=%.2f\n",
		s.TargetRPS, s.AchievedRPS, s.Sent, s.Accepted, s.Rejected, s.Throttled, s.Errors,
		s.Acceptance,
		s.Quantiles.P50.Microseconds(), s.Quantiles.P90.Microseconds(),
		s.Quantiles.P99.Microseconds(), s.Quantiles.P999.Microseconds(),
		s.Duration.Seconds())
}

// runCheck scrapes /metrics, lints the exposition, and verifies the
// required families exist.
func runCheck(w io.Writer, addr, require string) error {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := obs.Lint(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition failed lint: %w", err)
	}
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name != "" && fams[name] == nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing metric families: %s", strings.Join(missing, ", "))
	}
	fmt.Fprintf(w, "vneload-check families=%d ok\n", len(fams))
	return nil
}
