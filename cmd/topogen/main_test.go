package main

import "testing"

func TestRunSummaries(t *testing.T) {
	if err := run([]string{"-all"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", "iris", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -topo accepted")
	}
	if err := run([]string{"-topo", "nonsense"}); err == nil {
		t.Error("unknown topology accepted")
	}
}
