// Command topogen inspects and exports the evaluation topologies
// (Table II / Fig. 5): a textual summary per topology and optional
// Graphviz DOT output for rendering.
//
// Usage:
//
//	topogen -all                  # summaries of all four topologies
//	topogen -topo iris -dot       # DOT render of Iris (Fig. 5a)
//	topogen -topo 5gen -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	name := fs.String("topo", "", "topology: iris, cittastudi, 5gen, 100n150e")
	all := fs.Bool("all", false, "summarize all four topologies")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *name == "" {
		return fmt.Errorf("need -topo <name> or -all")
	}
	names := topo.All()
	if !*all {
		names = []topo.Name{topo.Name(*name)}
	}
	for _, n := range names {
		g, err := topo.Build(n, *seed)
		if err != nil {
			return err
		}
		if *dot {
			writeDOT(os.Stdout, n, g)
		} else {
			summarize(os.Stdout, n, g)
		}
	}
	return nil
}

func summarize(w *os.File, name topo.Name, g *graph.Graph) {
	spec := topo.Specs()[name]
	fmt.Fprintf(w, "%s: %d nodes, %d links — %s\n", name, g.NumNodes(), g.NumLinks(), spec.Description)
	for _, tier := range []graph.Tier{graph.TierEdge, graph.TierTransport, graph.TierCore} {
		nodes := g.NodesByTier(tier)
		var capSum, costSum float64
		for _, id := range nodes {
			capSum += g.Node(id).Cap
			costSum += g.Node(id).Cost
		}
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-9s %3d nodes, %11.0f CU total, mean cost %.1f/CU\n",
			tier, len(nodes), capSum, costSum/float64(len(nodes)))
	}
	degSum := 0
	for _, n := range g.Nodes() {
		degSum += g.Degree(n.ID)
	}
	fmt.Fprintf(w, "  mean degree %.2f\n\n", float64(degSum)/float64(g.NumNodes()))
}

// writeDOT emits a Graphviz rendering in the style of Fig. 5: edge nodes
// blue, transport green, core red.
func writeDOT(w *os.File, name topo.Name, g *graph.Graph) {
	fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  node [style=filled fontsize=8];\n", name)
	colors := map[graph.Tier]string{
		graph.TierEdge:      "#7fb3ff",
		graph.TierTransport: "#7fdf9f",
		graph.TierCore:      "#ff8f7f",
	}
	for _, n := range g.Nodes() {
		fmt.Fprintf(w, "  n%d [label=%q fillcolor=%q pos=\"%.2f,%.2f!\"];\n",
			n.ID, n.Name, colors[n.Tier], n.X, n.Y)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(w, "  n%d -- n%d;\n", l.From, l.To)
	}
	fmt.Fprintln(w, "}")
}
