// Olivelint is the repo's multi-analyzer vet tool: five project-
// specific checks (maporder, detsource, hotpath, metricname,
// errenvelope) that turn invariants this codebase has historically
// enforced by hand — deterministic rng consumption, the allocation
// budget of the serve hot path, metric-naming rules, the v1 error
// envelope — into mechanical lint findings.
//
// Standalone:
//
//	go run ./cmd/olivelint ./...
//
// As a vet tool (the go command drives it per package, with caching):
//
//	go build -o /tmp/olivelint ./cmd/olivelint
//	go vet -vettool=/tmp/olivelint ./...
//
// Exit status: 0 clean, 1 findings or load failure (standalone);
// the vet-tool protocol uses 2 for findings, as go vet expects.
package main

import (
	"crypto/sha256"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/analyzers"
	"github.com/olive-vne/olive/internal/lint/load"
)

func main() {
	args := os.Args[1:]

	// The go command's vet-tool protocol probes before analysis:
	// `-V=full` for a cache-keying version line, `-flags` for the
	// tool's analyzer flags (olivelint exposes none).
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	// Vet-tool mode: the sole argument is a JSON config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	if len(args) > 0 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		usage()
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns))
}

func usage() {
	fmt.Printf("usage: olivelint [packages]\n\nanalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion emits the `name version hash` line the go command uses
// to key its vet result cache; the hash covers the executable so a
// rebuilt tool invalidates cached findings.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:12])
}

// standalone loads, checks, and reports over go list patterns.
func standalone(patterns []string) int {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "olivelint: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags := runAnalyzers(pkg.Fset, pkg)
		for _, d := range diags {
			fmt.Printf("%s: %s\n", d.posn, d.text)
			exit = 1
		}
	}
	return exit
}

type diag struct {
	pos  token.Position
	posn string
	text string
}

// runAnalyzers applies every analyzer to one loaded package and
// returns position-sorted diagnostics.
//
// _test.go files are type-checked (they are part of the package under
// go vet) but never analyzed: the invariants are production contracts —
// tests legitimately sleep, read the clock, and register scratch
// metric families.
func runAnalyzers(fset *token.FileSet, pkg *load.Package) []diag {
	files := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	var out []diag
	for _, a := range analyzers.All() {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				p := fset.Position(d.Pos)
				out = append(out, diag{
					pos:  p,
					posn: p.String(),
					text: fmt.Sprintf("%s [%s]", d.Message, a.Name),
				})
			},
		}
		if err := a.Run(pass); err != nil {
			p := token.Position{Filename: pkg.ImportPath}
			out = append(out, diag{pos: p, posn: pkg.ImportPath, text: fmt.Sprintf("analyzer %s failed: %v", a.Name, err)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
