package main

// The go command's -vettool protocol: for each package, go vet writes
// a JSON config file describing the unit of work (source files, the
// import map, compiled export data for every dependency) and invokes
// the tool with that file as its sole argument. The tool type-checks
// the unit, runs its analyzers, prints findings to stderr, writes the
// (here: empty — olivelint exports no facts) .vetx output, and exits 2
// when it found anything. This mirrors
// golang.org/x/tools/go/analysis/unitchecker, which is unavailable in
// this repo's offline build environment.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"github.com/olive-vne/olive/internal/lint/load"
)

// vetConfig is the subset of the go command's vet config olivelint
// consumes. Field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "olivelint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "olivelint: parsing vet config %s: %v\n", cfgFile, err)
		return 1
	}

	// Facts output must exist for the go command to cache the action,
	// even though olivelint has none to export.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte("olivelint: no facts\n"), 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts: nothing to do.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := load.Check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "olivelint: %v\n", err)
		return 1
	}

	diags := runAnalyzers(fset, pkg)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.posn, d.text)
	}
	writeVetx()
	if len(diags) > 0 {
		return 2
	}
	return 0
}
