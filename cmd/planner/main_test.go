package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallPlan(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plan.json")
	err := run([]string{
		"-topo", "cittastudi", "-util", "1.0", "-slots", "60",
		"-lambda", "2", "-save", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("saved plan is empty")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-topo", "nonsense"}); err == nil {
		t.Error("unknown topology accepted")
	}
}
