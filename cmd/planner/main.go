// Command planner builds a PLAN-VNE embedding plan from a synthetic
// history and dumps it: per-class expected demand, planned shares (with
// their embeddings), rejected fractions, and plan-level diagnostics. It is
// the offline half of OLIVE as a standalone tool.
//
// Usage:
//
//	planner -topo iris -util 1.0 -slots 600
//	planner -topo cittastudi -util 1.4 -quantiles 50 -v
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/persist"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("planner", flag.ContinueOnError)
	name := fs.String("topo", "iris", "topology: iris, cittastudi, 5gen, 100n150e")
	util := fs.Float64("util", 1.0, "target edge utilization (1.0 = 100%)")
	slots := fs.Int("slots", 600, "history length in slots")
	lambda := fs.Float64("lambda", 10, "mean arrivals per edge node per slot")
	quantiles := fs.Int("quantiles", 10, "rejection quantiles P")
	alpha := fs.Float64("alpha", 0.8, "aggregation percentile")
	seed := fs.Uint64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print every share's embedding")
	saveTo := fs.String("save", "", "write the plan as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := topo.Build(topo.Name(*name), 1)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, 0x1a91))
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)

	wp := workload.DefaultParams()
	wp.Slots = *slots
	wp.LambdaPerNode = *lambda
	wp.DemandMean = *util * 100 / *lambda
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		return err
	}

	opts := plan.DefaultOptions()
	opts.Quantiles = *quantiles
	opts.Alpha = *alpha

	t0 := time.Now()
	p, err := plan.BuildFromHistory(g, apps, hist, opts, rng)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	if err := p.Validate(g); err != nil {
		return fmt.Errorf("plan failed validation: %w", err)
	}

	fmt.Printf("PLAN-VNE on %s @%.0f%% utilization: %d classes, objective %.4g\n",
		*name, *util*100, len(p.Classes), p.Obj)
	fmt.Printf("solved in %v (%d simplex pivots, %d pricing rounds)\n",
		elapsed, p.Iterations, p.PricingRounds)
	fmt.Printf("rejection balance index: %.3f\n\n", p.RejectionBalance())

	var planned, rejected, total float64
	for _, cp := range p.Classes {
		total += cp.Class.Demand
		planned += cp.PlannedDemand()
		rejected += cp.Rejected * cp.Class.Demand
	}
	fmt.Printf("aggregate demand %.0f: planned %.0f (%.1f%%), rejected %.0f (%.1f%%)\n\n",
		total, planned, 100*planned/total, rejected, 100*rejected/total)

	for _, cp := range p.Classes {
		if !*verbose && cp.Rejected < 1e-9 {
			continue
		}
		fmt.Printf("class app=%s ingress=%s demand=%.1f planned=%.1f rejected=%.1f%%\n",
			apps[cp.Class.App].Name, g.Node(cp.Class.Ingress).Name,
			cp.Class.Demand, cp.PlannedDemand(), 100*cp.Rejected)
		if *verbose {
			for _, s := range cp.Shares {
				fmt.Printf("  share %.3f on nodes %s (unit cost %.1f)\n",
					s.Fraction, nodeNames(g, s.E.NodeMap), s.E.UnitCost())
			}
		}
	}
	if !*verbose {
		fmt.Println("\n(classes with no rejection omitted; -v prints all shares)")
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := persist.SavePlan(f, p); err != nil {
			return err
		}
		fmt.Printf("\nplan written to %s\n", *saveTo)
	}
	return nil
}

func nodeNames(g *graph.Graph, ids []graph.NodeID) string {
	out := ""
	for i, id := range ids {
		if i == 0 {
			continue // θ
		}
		if i > 1 {
			out += ","
		}
		out += g.Node(id).Name
	}
	return out
}
