// Command vnesim regenerates the paper's experiments and runs arbitrary
// user-defined scenarios. Each experiment prints the rows/series the
// corresponding figure or table reports. Experiment cells (rep × topology
// × utilization × trace) fan out across a parallel runner; with -out each
// completed cell is persisted so an interrupted sweep resumes (-resume)
// instead of recomputing.
//
// Usage:
//
//	vnesim -list
//	vnesim -exp fig6 -topo iris -scale smoke
//	vnesim -exp all -scale smoke -workers 8
//	vnesim -exp fig16a -scale paper -out results/ -resume -progress
//	vnesim -scenario myspec.json -scale smoke -out results/ -progress
//
// Experiments resolve through the scenario registry (internal/scenario):
// every figure and table of the paper is a registered declarative spec,
// and -scenario runs a spec loaded from JSON through the same machinery —
// see examples/customscenario for a sweep no paper figure expresses.
// Scales: smoke (minutes) and paper (Table III: 30 reps × 6000 slots —
// hours sequentially; the runner divides that by the worker count).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"

	"github.com/olive-vne/olive/internal/runner"
	"github.com/olive-vne/olive/internal/scenario"
	"github.com/olive-vne/olive/internal/sim"
	"github.com/olive-vne/olive/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vnesim:", err)
		os.Exit(1)
	}
}

// expNames are the -exp tokens, in print order for error messages.
// "fig6+7" (the registered scenario generating both figures from one
// sweep) is accepted alongside the individual aliases fig6 and fig7.
var expNames = []string{
	"all", "table2", "table3", "fig6", "fig7", "fig6+7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16a", "fig16",
}

func run(args []string) error {
	fs := flag.NewFlagSet("vnesim", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: "+strings.Join(expNames, " "))
	golden := fs.String("golden", "", "write the golden-fingerprint suite (one file per config) into this directory and exit")
	list := fs.Bool("list", false, "list the registered scenarios with their descriptions and exit")
	scenarioFile := fs.String("scenario", "", "run a user-defined scenario spec loaded from this JSON file")
	topoFlag := fs.String("topo", "", "topology for fig6/fig7/fig16 (iris, cittastudi, 5gen, 100n150e); empty = all four")
	scaleFlag := fs.String("scale", "smoke", "experiment scale: smoke or paper")
	reps := fs.Int("reps", 0, "override repetition count")
	seed := fs.Uint64("seed", 0, "override base seed")
	utils := fs.String("utils", "", "override utilization sweep, e.g. 0.6,1.0,1.4")
	workers := fs.Int("workers", 0, "parallel workers for experiment cells (0 = GOMAXPROCS)")
	out := fs.String("out", "", "artifact directory: persist each completed cell as versioned JSON")
	resume := fs.Bool("resume", false, "with -out: load cached cell artifacts instead of recomputing them")
	progress := fs.Bool("progress", false, "report per-cell progress and ETA on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		w := os.Stdout
		for _, name := range scenario.Names() {
			fmt.Fprintf(w, "%-8s %s\n", name, scenario.Describe(name))
		}
		return nil
	}
	if *resume && *out == "" {
		return errors.New("-resume requires -out")
	}
	if *scenarioFile == "" && !slices.Contains(expNames, *exp) {
		return fmt.Errorf("unknown experiment %q (valid: %s)", *exp, strings.Join(expNames, ", "))
	}

	// Profiling hooks: hot-path work (the online embedding loop, the
	// substrate-state layer) is measurable on real experiment sweeps, not
	// only under `go test -bench`. The heap-profile defer is registered
	// first so that (defers being LIFO) the CPU profile stops before the
	// forced GC and heap serialization run — they must not pollute it.
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush recent frees so the heap profile is settled
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vnesim: -memprofile:", err)
			}
			f.Close()
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// After the profiling hooks: the golden suite's hot path is exactly
	// what -cpuprofile/-memprofile exist to inspect.
	if *golden != "" {
		return runGolden(*golden)
	}

	var scale sim.Scale
	switch *scaleFlag {
	case "smoke":
		scale = sim.SmokeScale()
	case "paper":
		scale = sim.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (valid: smoke, paper)", *scaleFlag)
	}
	if *reps > 0 {
		scale.Reps = *reps
	}
	if *seed > 0 {
		scale.Seed = *seed
	}
	if *utils != "" {
		scale.Utils = nil
		for _, tok := range strings.Split(*utils, ",") {
			u, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad -utils entry %q (want comma-separated utilizations, e.g. 0.6,1.0,1.4): %w", tok, err)
			}
			scale.Utils = append(scale.Utils, u)
		}
	}

	// Parallel runner: Ctrl-C cancels the sweep (in-flight cells finish
	// and persist; with -out, rerunning with -resume picks up where the
	// sweep stopped). Release the handler on the first interrupt so a
	// second Ctrl-C terminates immediately instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	scale.Runner.Context = ctx
	scale.Runner.Workers = *workers
	if *out != "" {
		store, err := runner.OpenStore(*out)
		if err != nil {
			return err
		}
		scale.Runner.Store = store
		scale.Runner.Resume = *resume
	}
	if *progress {
		scale.Runner.Reporter = runner.NewTextReporter(os.Stderr)
	}

	// A user-defined scenario runs through the same scale and runner
	// machinery as the registered experiments: -workers, -out, -resume
	// and -progress all apply.
	if *scenarioFile != "" {
		f, err := os.Open(*scenarioFile)
		if err != nil {
			return err
		}
		sp, err := scenario.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		tbls, err := sim.RunScenario(sp, scale)
		if err != nil {
			return err
		}
		for _, t := range tbls {
			t.Fprint(os.Stdout)
		}
		return nil
	}

	return runExperiments(*exp, *topoFlag, *scaleFlag, scale)
}

// runGolden regenerates the golden-fingerprint determinism suite: one
// canonical fingerprint file per GoldenConfig. CI diffs the output
// against testdata/golden/; regenerate with
//
//	go run ./cmd/vnesim -golden testdata/golden
func runGolden(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, gc := range sim.GoldenConfigs() {
		fmt.Fprintf(os.Stderr, "golden: %s...\n", gc.Name)
		fp, err := sim.Fingerprint(gc.Config)
		if err != nil {
			return fmt.Errorf("golden %s: %w", gc.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, gc.Name+".fp"), []byte(fp), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runExperiments(exp, topoFlag, scaleFlag string, scale sim.Scale) error {
	topos := topo.All()
	if topoFlag != "" {
		topos = []topo.Name{topo.Name(topoFlag)}
		if _, ok := topo.Specs()[topos[0]]; !ok {
			names := make([]string, len(topo.All()))
			for i, t := range topo.All() {
				names[i] = string(t)
			}
			return fmt.Errorf("unknown topology %q (valid: %s)", topoFlag, strings.Join(names, ", "))
		}
	}

	want := func(name string) bool { return exp == "all" || exp == name }

	if want("table2") {
		t, err := sim.Table2()
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("table3") {
		sim.Table3().Fprint(os.Stdout)
	}
	if want("fig6") || want("fig7") || want("fig6+7") {
		for _, tn := range topos {
			rej, cost, err := sim.Fig6And7(tn, scale)
			if err != nil {
				return err
			}
			if exp != "fig7" {
				rej.Fprint(os.Stdout)
			}
			if exp != "fig6" {
				cost.Fprint(os.Stdout)
			}
		}
	}
	if want("fig8") {
		t, err := sim.Fig8(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig9") {
		t, err := sim.Fig9(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig10") {
		t, err := sim.Fig10(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig11") {
		t, err := sim.Fig11(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig12") {
		t, err := sim.Fig12(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig13") {
		t, err := sim.Fig13(scale)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig14") {
		rej, cost, err := sim.Fig14(scale)
		if err != nil {
			return err
		}
		rej.Fprint(os.Stdout)
		cost.Fprint(os.Stdout)
	}
	if want("fig15") {
		rej, cost, err := sim.Fig15(scale)
		if err != nil {
			return err
		}
		rej.Fprint(os.Stdout)
		cost.Fprint(os.Stdout)
	}
	if want("fig16a") {
		lambdas := []float64{2, 4, 8}
		if scaleFlag == "paper" {
			lambdas = []float64{5, 10, 20, 40}
		}
		t, err := sim.Fig16a(scale, lambdas)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
	}
	if want("fig16") {
		for _, tn := range topos {
			t, err := sim.Fig16Runtime(tn, scale)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
	}
	return nil
}
