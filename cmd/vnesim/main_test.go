package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	if err := run([]string{"-exp", "table2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlagsNamingValidOptions(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // every rejection names the valid options
	}{
		{"unknown experiment", []string{"-exp", "nonsense"}, "fig16a"},
		{"unknown scale", []string{"-scale", "nonsense"}, "smoke, paper"},
		{"unknown topology", []string{"-exp", "fig6", "-topo", "nonsense"}, "iris, cittastudi, 5gen, 100n150e"},
		{"bad utils", []string{"-exp", "fig6", "-utils", "abc"}, "0.6,1.0,1.4"},
		{"resume without out", []string{"-exp", "fig6", "-resume"}, "-out"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the valid options (%q)", tc.name, err, tc.want)
		}
	}
}

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

// microSpec is a tiny custom scenario exercising -scenario end to end:
// a 2×1 grid with trace lengths overridden in the spec itself so the
// test stays fast at any -scale.
const microSpec = `{
  "name": "micro-grid",
  "description": "test grid",
  "base": {"histSlots": 80, "onlineSlots": 30, "lambdaPerNode": 2,
           "measureFrom": 4, "measureTo": 26,
           "algorithms": ["OLIVE", "QUICKG"]},
  "axes": [
    {"name": "topology", "values": [
      {"label": "iris", "patch": {"topology": "iris"}},
      {"label": "cittastudi", "patch": {"topology": "cittastudi"}}
    ]}
  ],
  "reports": [{
    "title": "micro",
    "rowHeader": "topology",
    "columns": [{"header": "OLIVE", "metric": "rejection", "algo": "OLIVE"}]
  }]
}`

func TestRunCustomScenarioWithResume(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(microSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "arts")
	args := []string{"-scenario", spec, "-reps", "1", "-out", store}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	artifacts := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			artifacts++
		}
	}
	if artifacts != 2 {
		t.Fatalf("custom scenario persisted %d artifacts, want 2", artifacts)
	}
	if err := run(append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing scenario file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", bad}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestRunPersistsAndResumesArtifacts runs one tiny fig6 cell with -out,
// checks the artifact landed, and reruns with -resume against the warm
// store.
func TestRunPersistsAndResumesArtifacts(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-exp", "fig6", "-topo", "cittastudi", "-utils", "1.0",
		"-reps", "1", "-workers", "2", "-out", dir,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	artifacts := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			artifacts++
		}
	}
	if artifacts == 0 {
		t.Fatal("-out produced no artifacts")
	}
	if err := run(append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
}
