package main

import "testing"

func TestRunTables(t *testing.T) {
	if err := run([]string{"-exp", "table2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "nonsense"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-exp", "fig6", "-topo", "nonsense"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-exp", "fig6", "-utils", "abc"}); err == nil {
		t.Error("bad utils accepted")
	}
}
