package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTables(t *testing.T) {
	if err := run([]string{"-exp", "table2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "nonsense"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-exp", "fig6", "-topo", "nonsense"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-exp", "fig6", "-utils", "abc"}); err == nil {
		t.Error("bad utils accepted")
	}
	if err := run([]string{"-exp", "fig6", "-resume"}); err == nil {
		t.Error("-resume without -out accepted")
	}
}

// TestRunPersistsAndResumesArtifacts runs one tiny fig6 cell with -out,
// checks the artifact landed, and reruns with -resume against the warm
// store.
func TestRunPersistsAndResumesArtifacts(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-exp", "fig6", "-topo", "cittastudi", "-utils", "1.0",
		"-reps", "1", "-workers", "2", "-out", dir,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	artifacts := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			artifacts++
		}
	}
	if artifacts == 0 {
		t.Fatal("-out produced no artifacts")
	}
	if err := run(append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
}
