package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/serve"
	"github.com/olive-vne/olive/internal/topo"
)

func TestAlgoName(t *testing.T) {
	cases := map[string]string{
		"olive":  string(core.AlgoOLIVE),
		"quickg": string(core.AlgoQuickG),
		"fullg":  string(core.AlgoFullG),
		"bogus":  "bogus", // passed through for serve.New to reject
	}
	for in, want := range cases {
		if got := algoName(in); got != want {
			t.Errorf("algoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenStreamRoundTrip(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 1)
	var buf bytes.Buffer
	if err := runGenStream(&buf, g, 4, 50, 1.0, 3, 7, false); err != nil {
		t.Fatal(err)
	}
	encoded := buf.String()
	reqs, err := serve.LoadStream(strings.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Fatalf("stream holds %d requests, want 50", len(reqs))
	}
	prev := 0
	for i, r := range reqs {
		if r.App < 0 || r.App >= 4 || r.Demand <= 0 || r.Duration < 1 || r.Arrive < prev {
			t.Fatalf("request %d malformed or out of order: %+v", i, r)
		}
		prev = r.Arrive
	}
	// Same seed, byte-identical stream.
	var buf2 bytes.Buffer
	if err := runGenStream(&buf2, g, 4, 50, 1.0, 3, 7, false); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != encoded {
		t.Fatal("two generations from one seed differ")
	}
}

func TestRunRejectsUnknownTopology(t *testing.T) {
	err := run([]string{"-topo", "nope", "-gen-stream", "1"})
	if err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("err = %v, want unknown-topology error", err)
	}
}
