// Command vnesimd is the online embedding service: a long-running
// HTTP/JSON daemon that serves virtual-network embedding requests against
// live substrate state through a sharded engine pool (internal/serve).
//
// Server:
//
//	vnesimd -topo iris -algo olive -shards 4 -addr :8080
//	vnesimd -topo iris -algo quickg -shards 1 -deterministic -addr :8080
//
// The daemon builds the named topology and the paper's standard
// application mix from -seed. With -algo olive it first generates an MMPP
// request history (-util, -hist-slots, -lambda) and solves PLAN-VNE over
// it — the serving plan. SIGTERM/SIGINT drain gracefully: new requests
// get 503, admitted ones still receive their decision.
//
// Observability: GET /metrics serves Prometheus text (always on);
// -log-requests emits a structured access log to stderr; -rps/-burst and
// -client-rps/-client-burst put token-bucket admission control in front
// of the shard queues (429 + Retry-After); -debug-addr serves
// net/http/pprof on a separate listener, off by default.
//
// Replanning (olive only): -replan keeps a rolling request history
// (-replan-history requests) and rebuilds the serving plan from it —
// either on the -replan-interval cadence (real-time mode) or on demand
// via POST /v1/admin/replan (the only trigger in deterministic mode, so
// replay streams stay reproducible). Rebuilt plans hot-swap atomically:
// every shard adopts the new generation between two serialized
// decisions, and no request is ever dropped by a swap. GET /v1/plan
// reports the published generation and per-shard adoption.
//
// Client utilities (no server started):
//
//	vnesimd -gen-stream 200 -topo iris -seed 7 > stream.json
//	vnesimd -gen-stream 400 -drift -topo iris -seed 7 > drift.json
//	vnesimd -replay stream.json -addr http://localhost:8080
//
// -gen-stream writes a canned request stream drawn from the same MMPP
// workload model the simulator uses; with -drift the second half of the
// stream redraws every ingress uniformly — a traffic-pattern shift that
// makes the construction plan stale, which is what the replanning e2e
// exercises. -replay posts a stream sequentially and prints one
// canonical decision line per request, so two runs against a
// deterministic single-shard server diff byte-identical (this is what
// CI asserts).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/serve"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vnesimd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vnesimd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address, or target base URL with -replay")
	topoFlag := fs.String("topo", "iris", "substrate topology (iris, cittastudi, 5gen, 100n150e)")
	topoSeed := fs.Uint64("toposeed", 1, "topology construction seed")
	seed := fs.Uint64("seed", 1, "seed for the application mix, plan history and -gen-stream")
	algo := fs.String("algo", "olive", "embedding algorithm: olive, quickg, fullg")
	shards := fs.Int("shards", 1, "engine shards; each owns 1/N of the substrate capacity")
	queue := fs.Int("queue", 256, "per-shard queue depth (overflow answers 429)")
	slot := fs.Duration("slot", time.Second, "slot duration in real-time mode")
	deterministic := fs.Bool("deterministic", false, "virtual clock: slots advance only via request arrive fields")
	util := fs.Float64("util", 1.0, "plan-history target utilization (olive) and -gen-stream demand level")
	histSlots := fs.Int("hist-slots", 200, "plan-history length in slots (olive)")
	lambda := fs.Float64("lambda", 3, "plan-history arrivals per edge node per slot")
	genStream := fs.Int("gen-stream", 0, "generate a canned request stream of this many requests to stdout and exit")
	drift := fs.Bool("drift", false, "with -gen-stream: redraw every ingress in the second half (traffic drift)")
	replay := fs.String("replay", "", "post this stream file to -addr sequentially, print decision lines, exit")
	replan := fs.Bool("replan", false, "enable adaptive replanning (olive): rolling history + POST /v1/admin/replan")
	replanInterval := fs.Duration("replan-interval", 0, "replan cadence in real-time mode (0 = admin-triggered only; implies -replan)")
	replanHistory := fs.Int("replan-history", 4096, "rolling request-history capacity per shard for replanning")
	replanMin := fs.Int("replan-min", 64, "minimum history size before a replan trigger builds (below: 409)")
	rps := fs.Float64("rps", 0, "global admission rate limit in requests/second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "global rate-limit burst (default max(rps, 1))")
	clientRPS := fs.Float64("client-rps", 0, "per-client admission rate limit (X-Client-ID keyed; 0 = unlimited)")
	clientBurst := fs.Float64("client-burst", 0, "per-client burst (default max(client-rps, 1))")
	logRequests := fs.Bool("log-requests", false, "emit one structured JSON access-log line per HTTP request to stderr")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate address (off when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tn := topo.Name(*topoFlag)
	if _, ok := topo.Specs()[tn]; !ok {
		return fmt.Errorf("unknown topology %q", *topoFlag)
	}

	if *replay != "" {
		return runReplay(*addr, *replay)
	}

	g, err := topo.Build(tn, *topoSeed)
	if err != nil {
		return err
	}
	// The rng stream mirrors sim.Run: apps, then the history trace, then
	// the plan all consume one deterministic sequence derived from -seed.
	rng := rand.New(rand.NewPCG(*seed, 0x51f0))
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)

	if *genStream > 0 {
		return runGenStream(os.Stdout, g, len(apps), *genStream, *util, *lambda, *seed, *drift)
	}

	opts := serve.Options{
		Shards:        *shards,
		Algorithm:     core.Algorithm(algoName(*algo)),
		SlotDuration:  *slot,
		Deterministic: *deterministic,
		Limits: serve.Limits{
			QueueDepth: *queue,
			RateLimit: serve.RateLimit{
				RPS:            *rps,
				Burst:          *burst,
				PerClientRPS:   *clientRPS,
				PerClientBurst: *clientBurst,
			},
		},
		Replan: serve.Replan{
			Enabled:      *replan || *replanInterval > 0,
			Interval:     *replanInterval,
			HistoryDepth: *replanHistory,
			MinHistory:   *replanMin,
			Seed:         *seed,
		},
	}
	if *logRequests {
		opts.Observability.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if opts.Algorithm == core.AlgoOLIVE {
		log.Printf("building PLAN-VNE plan: %s hist=%d slots λ=%g util=%g", tn, *histSlots, *lambda, *util)
		t0 := time.Now()
		p, err := buildPlan(g, apps, *util, *histSlots, *lambda, rng)
		if err != nil {
			return err
		}
		log.Printf("plan ready: %d classes in %s", len(p.Classes), time.Since(t0).Round(time.Millisecond))
		opts.Plan = p
	}

	s, err := serve.New(g, apps, opts)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// The profiler gets its own listener so it is never reachable through
	// the service port (and never rate-limited or access-logged).
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dmux}
		defer dbgSrv.Close()
		go func() {
			log.Printf("pprof debug listener on %s", *debugAddr)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("vnesimd serving on %s: topo=%s algo=%s shards=%d deterministic=%v",
			*addr, tn, opts.Algorithm, *shards, *deterministic)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Print("signal received; draining")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return err
	}
	log.Print("drained; bye")
	return nil
}

// algoName canonicalizes the -algo flag to the core.Algorithm constants.
func algoName(a string) string {
	switch a {
	case "olive":
		return string(core.AlgoOLIVE)
	case "quickg":
		return string(core.AlgoQuickG)
	case "fullg":
		return string(core.AlgoFullG)
	}
	return a // serve.New rejects unknown names with a useful error
}

// workloadParams derives the MMPP parameters the simulator uses for the
// given utilization and arrival rate (see sim.Run's calibration note).
func workloadParams(util, lambda float64, slots, numApps int) workload.Params {
	wp := workload.DefaultParams().WithUtilization(util)
	wp.Slots = slots
	wp.LambdaPerNode = lambda
	wp.NumApps = numApps
	wp.DemandMean = util * 100 / lambda
	return wp
}

// buildPlan generates the request history and solves PLAN-VNE over it.
func buildPlan(g *graph.Graph, apps []*vnet.App, util float64, histSlots int, lambda float64, rng *rand.Rand) (*plan.Plan, error) {
	wp := workloadParams(util, lambda, histSlots, len(apps))
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		return nil, err
	}
	popts := plan.DefaultOptions()
	return plan.BuildFromHistory(g, apps, hist, popts, rng)
}

// runGenStream emits a canned request stream drawn from the MMPP model
// (its own rng stream, so it never replays the plan history). With drift,
// every ingress from the stream's halfway slot on is redrawn uniformly —
// the traffic shift the replanning e2e recovers from.
func runGenStream(w io.Writer, g *graph.Graph, numApps, n int, util, lambda float64, seed uint64, drift bool) error {
	// Size the trace long enough to hold n requests: λ·edgeNodes per slot
	// in expectation, padded 2×.
	perSlot := lambda * float64(len(g.EdgeNodes()))
	slots := int(2*float64(n)/perSlot) + 10
	wp := workloadParams(util, lambda, slots, numApps)
	tr, err := workload.GenerateMMPP(g, wp, rand.New(rand.NewPCG(seed, 0xd5ea)))
	if err != nil {
		return err
	}
	if len(tr.Requests) < n {
		return fmt.Errorf("generated only %d requests, want %d (raise -lambda?)", len(tr.Requests), n)
	}
	if drift {
		tr = workload.ShuffleIngressFrom(tr, g, tr.Requests[n/2].Arrive,
			rand.New(rand.NewPCG(seed, 0xd21f)))
	}
	reqs := make([]serve.StreamRequest, n)
	for i, r := range tr.Requests[:n] {
		reqs[i] = serve.StreamRequest{
			App: r.App, Ingress: int(r.Ingress), Demand: r.Demand,
			Duration: r.Duration, Arrive: r.Arrive,
		}
	}
	return serve.SaveStream(w, reqs)
}

// runReplay posts a stream file and prints the canonical decision lines.
func runReplay(baseURL, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	reqs, err := serve.LoadStream(f)
	f.Close()
	if err != nil {
		return err
	}
	return serve.Replay(nil, baseURL, reqs, os.Stdout)
}
