// Package stats provides the statistical substrate of the reproduction:
// empirical CDFs and quantiles, the bootstrap percentile estimation used by
// the time-aggregation step (paper §III-A), the rejection balance index of
// Eq. 20, and mean/confidence-interval summaries for repeated experiment
// runs.
package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns an error for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile level outside [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted sample.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (which is copied).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: ECDF of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x): the fraction of the sample ≤ x.
func (e *ECDF) At(x float64) float64 {
	return float64(sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return quantileSorted(e.sorted, q) }

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// BootstrapResult carries a bootstrap percentile estimate with its 95%
// confidence interval (percentile method, DiCiccio & Efron).
type BootstrapResult struct {
	// Estimate is the mean of the bootstrap replicates of P̂α.
	Estimate float64
	// Lo, Hi bound the 95% confidence interval of P̂α.
	Lo, Hi float64
}

// BootstrapQuantile estimates the α-quantile of the distribution behind
// sample xs by bootstrapping: B resamples with replacement, the α-quantile
// of each, percentile-method CI over the replicates. This is the estimator
// the paper uses for the expected aggregated demand P̂80 (§III-A).
func BootstrapQuantile(xs []float64, alpha float64, b int, rng *rand.Rand) (BootstrapResult, error) {
	if len(xs) == 0 {
		return BootstrapResult{}, errors.New("stats: bootstrap of empty sample")
	}
	if alpha < 0 || alpha > 1 {
		return BootstrapResult{}, errors.New("stats: bootstrap quantile level outside [0,1]")
	}
	if b <= 0 {
		return BootstrapResult{}, errors.New("stats: bootstrap needs at least one replicate")
	}
	return BootstrapQuantileWith(nil, xs, alpha, b, rng)
}

// BootstrapScratch holds the reusable buffers of BootstrapQuantileWith.
// The zero value is ready to use.
type BootstrapScratch struct {
	reps, resample []float64
}

func grown(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// BootstrapQuantileWith is BootstrapQuantile with caller-owned scratch
// buffers, for hot loops that estimate many series back to back; a nil
// scratch allocates fresh buffers. The rng draw sequence and the result
// are identical to BootstrapQuantile's.
func BootstrapQuantileWith(sc *BootstrapScratch, xs []float64, alpha float64, b int, rng *rand.Rand) (BootstrapResult, error) {
	if len(xs) == 0 {
		return BootstrapResult{}, errors.New("stats: bootstrap of empty sample")
	}
	if alpha < 0 || alpha > 1 {
		return BootstrapResult{}, errors.New("stats: bootstrap quantile level outside [0,1]")
	}
	if b <= 0 {
		return BootstrapResult{}, errors.New("stats: bootstrap needs at least one replicate")
	}
	if sc == nil {
		sc = &BootstrapScratch{}
	}
	sc.reps = grown(sc.reps, b)
	sc.resample = grown(sc.resample, len(xs))
	reps, resample := sc.reps, sc.resample
	for i := 0; i < b; i++ {
		for j := range resample {
			resample[j] = xs[rng.IntN(len(xs))]
		}
		sort.Float64s(resample)
		reps[i] = quantileSorted(resample, alpha)
	}
	sort.Float64s(reps)
	return BootstrapResult{
		Estimate: Mean(reps),
		Lo:       quantileSorted(reps, 0.025),
		Hi:       quantileSorted(reps, 0.975),
	}, nil
}

// Conforms reports whether an observed quantile falls within the 95%
// confidence interval of the bootstrap estimate — the paper's definition
// of online demand "conforming to expectations" from the history (§III-A).
func (r BootstrapResult) Conforms(observed float64) bool {
	return observed >= r.Lo && observed <= r.Hi
}

// JainIndex returns Jain's fairness index of xs: (Σx)² / (n·Σx²).
// It is 1 for perfectly equal values, 1/n for a single non-zero value,
// and 1 (perfect) for an all-zero vector, which represents "no rejections
// anywhere" in the balance-index application.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// BalanceSample is one datacenter's rejection profile for the rejection
// balance index of Eq. 20.
type BalanceSample struct {
	// Requests is n(v): the number of requests that arrived at the
	// datacenter.
	Requests int
	// RejectedPerApp is x_va: rejected request counts per application.
	RejectedPerApp []float64
}

// BalanceIndex computes the paper's rejection balance index (Eq. 20): a
// per-datacenter Jain index over per-application rejection counts x_va,
// averaged over datacenters weighted by request count n(v). The formula's
// 0/0 case — a datacenter with no rejections at all — contributes 0, the
// literal evaluation of (Σx)²/(|A|·Σx²) under the 0/0→0 convention. This
// makes the index reward both evenness *and* coverage: an algorithm that
// rejects evenly at every constrained datacenter (OLIVE with quantiles)
// scores high, one whose rejections concentrate on a few saturated
// datacenters (QUICKG) scores low — matching the orderings of Fig. 11.
func BalanceIndex(samples []BalanceSample) float64 {
	var wSum, acc float64
	for _, s := range samples {
		if s.Requests == 0 || len(s.RejectedPerApp) == 0 {
			continue
		}
		w := float64(s.Requests)
		wSum += w
		allZero := true
		for _, x := range s.RejectedPerApp {
			if x != 0 {
				allZero = false
				break
			}
		}
		if !allZero {
			acc += w * JainIndex(s.RejectedPerApp)
		}
	}
	if wSum == 0 {
		return 1
	}
	return acc / wSum
}

// Summary aggregates repeated measurements of one metric.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	// Lo, Hi bound the 95% confidence interval of the mean (normal
	// approximation, z = 1.96).
	Lo, Hi float64
}

// Summarize computes the mean and 95% CI of repeated runs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs)}
	if s.N > 1 {
		half := 1.96 * s.Std / math.Sqrt(float64(s.N))
		s.Lo, s.Hi = s.Mean-half, s.Mean+half
	} else {
		s.Lo, s.Hi = s.Mean, s.Mean
	}
	return s
}

// Welford accumulates a running mean/variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
