package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestMeanVarianceEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample != 0")
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", tt.q, err)
		}
		if !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile of empty sample did not error")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("Quantile with q>1 did not error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("Quantile with q<0 did not error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile sorted its input: %v", xs)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.8)
	if err != nil || got != 42 {
		t.Fatalf("Quantile single sample = %g, %v", got, err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("ECDF.At(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	if got := e.Quantile(0.5); !almostEq(got, 2, 1e-9) {
		t.Errorf("ECDF.Quantile(0.5) = %g, want 2", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("NewECDF(nil) did not error")
	}
}

// ECDF property: At is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw int16) bool {
		a, b := float64(aRaw)/100, float64(bRaw)/100
		if a > b {
			a, b = b, a
		}
		fa, fb := e.At(a), e.At(b)
		return fa >= 0 && fb <= 1 && fa <= fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapQuantileRecoversPercentile(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Uniform [0, 100): the 80th percentile is ~80.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	r, err := BootstrapQuantile(xs, 0.8, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Estimate, 80, 3) {
		t.Errorf("bootstrap P80 estimate = %g, want ≈80", r.Estimate)
	}
	if r.Lo > r.Estimate || r.Hi < r.Estimate {
		t.Errorf("CI [%g,%g] does not contain estimate %g", r.Lo, r.Hi, r.Estimate)
	}
	if !r.Conforms(r.Estimate) {
		t.Error("estimate does not conform to its own CI")
	}
	if r.Conforms(200) {
		t.Error("value far outside CI reported as conforming")
	}
}

func TestBootstrapQuantileErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := BootstrapQuantile(nil, 0.8, 10, rng); err == nil {
		t.Error("empty sample did not error")
	}
	if _, err := BootstrapQuantile([]float64{1}, 1.2, 10, rng); err == nil {
		t.Error("alpha > 1 did not error")
	}
	if _, err := BootstrapQuantile([]float64{1}, 0.8, 0, rng); err == nil {
		t.Error("b = 0 did not error")
	}
}

func TestBootstrapDeterministicWithSeededRNG(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8}
	a, err := BootstrapQuantile(xs, 0.8, 50, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapQuantile(xs, 0.8, 50, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed bootstrap differs: %+v vs %+v", a, b)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"equal", []float64{3, 3, 3, 3}, 1},
		{"single non-zero", []float64{4, 0, 0, 0}, 0.25},
		{"all zero", []float64{0, 0}, 1},
		{"empty", nil, 1},
		{"two-one", []float64{2, 1}, 0.9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.xs); !almostEq(got, tt.want, 1e-9) {
				t.Fatalf("JainIndex(%v) = %g, want %g", tt.xs, got, tt.want)
			}
		})
	}
}

// Property: Jain index is scale-invariant and within [1/n, 1] for non-zero
// non-negative inputs.
func TestJainIndexProperties(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				any = true
			}
		}
		if !any {
			return JainIndex(xs) == 1
		}
		j := JainIndex(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		scale := 1 + float64(scaleRaw)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * scale
		}
		return almostEq(JainIndex(scaled), j, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceIndex(t *testing.T) {
	// Three DCs: one perfectly balanced (index 1), one fully skewed
	// (index 1/2 with 2 apps), one without rejections (contributes 0
	// under the 0/0→0 convention of Eq. 20), weighted by request counts.
	samples := []BalanceSample{
		{Requests: 10, RejectedPerApp: []float64{5, 5}},
		{Requests: 30, RejectedPerApp: []float64{8, 0}},
		{Requests: 20, RejectedPerApp: []float64{0, 0}},
	}
	want := (10.0*1 + 30.0*0.5 + 20.0*0) / 60.0
	if got := BalanceIndex(samples); !almostEq(got, want, 1e-9) {
		t.Fatalf("BalanceIndex = %g, want %g", got, want)
	}
}

func TestBalanceIndexDegenerate(t *testing.T) {
	if got := BalanceIndex(nil); got != 1 {
		t.Errorf("BalanceIndex(nil) = %g, want 1", got)
	}
	if got := BalanceIndex([]BalanceSample{{Requests: 0, RejectedPerApp: []float64{1}}}); got != 1 {
		t.Errorf("BalanceIndex with zero-weight samples = %g, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Lo >= s.Mean || s.Hi <= s.Mean {
		t.Errorf("CI [%g,%g] does not bracket mean", s.Lo, s.Hi)
	}
	one := Summarize([]float64{5})
	if one.Lo != 5 || one.Hi != 5 {
		t.Errorf("single-sample CI should collapse to the point, got [%g,%g]", one.Lo, one.Hi)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %g vs batch %g", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance %g vs batch %g", w.Variance(), Variance(xs))
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("zero-value Welford not zeroed")
	}
	w.Add(4)
	if w.Variance() != 0 {
		t.Error("variance after one observation should be 0")
	}
}
