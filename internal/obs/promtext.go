package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a small parser
// and linter for Prometheus text (version 0.0.4), used by CI to assert
// that a live /metrics scrape is well-formed and serves the required
// families, and by tests to round-trip the writer. It covers the subset
// the writer emits — HELP/TYPE comments, labeled samples, histogram
// _bucket/_sum/_count conventions — and lints the invariants that
// matter: declared types, valid names, parsable values, cumulative
// monotone buckets ending at +Inf, and bucket/count agreement.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a parsed scrape.
type ParsedFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// ParseText parses a text-format scrape into its families, keyed by
// family name. Histogram component samples (_bucket/_sum/_count) are
// attributed to their base family. Parse errors carry the line number.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	get := func(name string) *ParsedFamily {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &ParsedFamily{Name: name}
		fams[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := get(fields[2])
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return nil, fmt.Errorf("promtext: line %d: TYPE without a type", lineNo)
					}
					f.Type = fields[3]
				} else if len(fields) == 4 {
					f.Help = fields[3]
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.Name, suf)
			if trimmed != s.Name {
				if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		get(base).Samples = append(get(base).Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	return fams, nil
}

// parseSample parses `name{l="v",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !nameOK(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Timestamps (a second field) are permitted by the format; the
	// writer never emits them but the linter should not choke.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses `a="x",b="y"` (escaped \\ \" \n inside values).
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !nameOK(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// Lint parses a scrape and checks the structural invariants: every
// sample belongs to a family with a declared TYPE; histograms carry
// cumulative monotone buckets ending at le="+Inf" whose total matches
// _count. Returns the parsed families on success so callers can make
// further assertions (e.g. required-family presence).
func Lint(r io.Reader) (map[string]*ParsedFamily, error) {
	fams, err := ParseText(r)
	if err != nil {
		return nil, err
	}
	var errs []string
	for _, name := range sortedKeys(fams) {
		f := fams[name]
		if f.Type == "" {
			errs = append(errs, fmt.Sprintf("family %q has samples but no TYPE", name))
			continue
		}
		if f.Type == "histogram" {
			lintHistogram(f, &errs)
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("promtext: lint: %s", strings.Join(errs, "; "))
	}
	return fams, nil
}

// lintHistogram checks one histogram family: per label set, buckets are
// cumulative and monotone in le, the +Inf bucket exists, and agrees
// with _count.
func lintHistogram(f *ParsedFamily, errs *[]string) {
	type hstate struct {
		buckets []Sample
		count   float64
		hasCnt  bool
	}
	states := make(map[string]*hstate)
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(labels[k])
			sb.WriteByte(';')
		}
		return sb.String()
	}
	st := func(labels map[string]string) *hstate {
		k := keyOf(labels)
		if s, ok := states[k]; ok {
			return s
		}
		s := &hstate{}
		states[k] = s
		return s
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			st(s.Labels).buckets = append(st(s.Labels).buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			h := st(s.Labels)
			h.count, h.hasCnt = s.Value, true
		}
	}
	for key, h := range states {
		if len(h.buckets) == 0 {
			*errs = append(*errs, fmt.Sprintf("%s{%s}: histogram without buckets", f.Name, key))
			continue
		}
		sort.Slice(h.buckets, func(i, j int) bool {
			a, _ := parseValue(h.buckets[i].Labels["le"])
			b, _ := parseValue(h.buckets[j].Labels["le"])
			return a < b
		})
		prev := math.Inf(-1)
		cumPrev := -1.0
		for _, b := range h.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				*errs = append(*errs, fmt.Sprintf("%s{%s}: bad le %q", f.Name, key, b.Labels["le"]))
				continue
			}
			if le <= prev {
				*errs = append(*errs, fmt.Sprintf("%s{%s}: duplicate le %g", f.Name, key, le))
			}
			if b.Value < cumPrev {
				*errs = append(*errs, fmt.Sprintf("%s{%s}: buckets not cumulative at le=%g", f.Name, key, le))
			}
			prev, cumPrev = le, b.Value
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(mustValue(last.Labels["le"]), 1) {
			*errs = append(*errs, fmt.Sprintf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, key))
		} else if h.hasCnt && last.Value != h.count {
			*errs = append(*errs, fmt.Sprintf("%s{%s}: +Inf bucket %g ≠ count %g", f.Name, key, last.Value, h.count))
		}
	}
}

func mustValue(s string) float64 {
	v, _ := parseValue(s)
	return v
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
