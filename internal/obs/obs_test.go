package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %g, want 4", got)
	}
	// Idempotent re-registration returns the same series.
	if r.Counter("test_ops_total", "ops").Value() != 3.5 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestVecSeriesAreIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_decisions_total", "decisions", "shard", "outcome")
	a := v.With("0", "accepted")
	b := v.With("0", "rejected")
	a.Inc()
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("series not independent: a=%g b=%g", a.Value(), b.Value())
	}
	if v.With("0", "accepted") != a {
		t.Fatal("With is not stable for equal label values")
	}
}

func TestRegisterShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	for name, fn := range map[string]func(){
		"kind":    func() { r.Gauge("test_x_total", "x") },
		"labels":  func() { r.CounterVec("test_x_total", "x", "shard") },
		"badname": func() { r.Counter("9bad", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a counter").Add(3)
	r.CounterVec("test_b_total", "labeled", "shard").With("1").Add(5)
	r.Gauge("test_c", "a gauge").Set(-1.5)
	r.GaugeFunc("test_d", "func gauge", func() float64 { return 42 })
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // overflow bucket
	v := r.GaugeFuncVec("test_e", "labeled func gauge", "shard")
	v.With(func() float64 { return 7 }, "0")

	text := r.Render()
	fams, err := Lint(strings.NewReader(text))
	if err != nil {
		t.Fatalf("lint of own output failed: %v\n%s", err, text)
	}
	want := map[string]struct {
		typ string
		val float64
	}{
		"test_a_total": {"counter", 3},
		"test_b_total": {"counter", 5},
		"test_c":       {"gauge", -1.5},
		"test_d":       {"gauge", 42},
		"test_e":       {"gauge", 7},
	}
	for name, w := range want {
		f, ok := fams[name]
		if !ok {
			t.Fatalf("family %q missing from parse", name)
		}
		if f.Type != w.typ {
			t.Errorf("%s type = %q, want %q", name, f.Type, w.typ)
		}
		if len(f.Samples) != 1 || f.Samples[0].Value != w.val {
			t.Errorf("%s samples = %+v, want one sample %g", name, f.Samples, w.val)
		}
	}
	hf := fams["test_lat_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hf)
	}
	// 3 finite buckets + Inf + sum + count.
	if len(hf.Samples) != 6 {
		t.Fatalf("histogram rendered %d samples, want 6: %+v", len(hf.Samples), hf.Samples)
	}
	for _, s := range hf.Samples {
		if s.Name == "test_lat_seconds_count" && s.Value != 3 {
			t.Errorf("count = %g, want 3", s.Value)
		}
		if s.Name == "test_lat_seconds_bucket" && s.Labels["le"] == "+Inf" && s.Value != 3 {
			t.Errorf("+Inf bucket = %g, want 3", s.Value)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_m_total", "m", "k")
	// Insert out of sorted order; render must sort.
	v.With("z").Inc()
	v.With("a").Inc()
	a, b := r.Render(), r.Render()
	if a != b {
		t.Fatal("two renders of an idle registry differ")
	}
	if strings.Index(a, `k="a"`) > strings.Index(a, `k="z"`) {
		t.Fatalf("series not sorted by label value:\n%s", a)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "esc", "path").With(`a"b\c` + "\n").Inc()
	fams, err := Lint(strings.NewReader(r.Render()))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, r.Render())
	}
	s := fams["test_esc_total"].Samples
	if len(s) != 1 || s[0].Labels["path"] != "a\"b\\c\n" {
		t.Fatalf("escaped label did not round-trip: %+v", s)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_h_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_h_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestConcurrentUpdatesAndScrapes is the -race probe: writers hammer a
// counter, a vec and a histogram while a reader renders.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_cc_total", "cc")
	v := r.CounterVec("test_cv_total", "cv", "w")
	h := r.Histogram("test_ch_seconds", "ch", LatencyBuckets())
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := v.With(string(rune('a' + w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				s.Inc()
				h.Observe(float64(i%100) * 1e-6)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := Lint(strings.NewReader(r.Render())); err != nil {
				t.Errorf("mid-run lint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestLintCatchesBrokenHistogram(t *testing.T) {
	bad := `# TYPE test_bad_seconds histogram
test_bad_seconds_bucket{le="0.1"} 5
test_bad_seconds_bucket{le="1"} 3
test_bad_seconds_bucket{le="+Inf"} 5
test_bad_seconds_count 5
`
	if _, err := Lint(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "not cumulative") {
		t.Fatalf("lint err = %v, want non-cumulative complaint", err)
	}
	noInf := `# TYPE test_noinf_seconds histogram
test_noinf_seconds_bucket{le="0.1"} 5
test_noinf_seconds_count 5
`
	if _, err := Lint(strings.NewReader(noInf)); err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("lint err = %v, want missing +Inf complaint", err)
	}
	untyped := "test_untyped_total 3\n"
	if _, err := Lint(strings.NewReader(untyped)); err == nil || !strings.Contains(err.Error(), "no TYPE") {
		t.Fatalf("lint err = %v, want no-TYPE complaint", err)
	}
}

func TestParseValueSpecials(t *testing.T) {
	for s, want := range map[string]float64{"+Inf": math.Inf(1), "-Inf": math.Inf(-1), "3.5": 3.5} {
		v, err := parseValue(s)
		if err != nil || v != want {
			t.Errorf("parseValue(%q) = %g, %v; want %g", s, v, err, want)
		}
	}
	if v, err := parseValue("NaN"); err != nil || !math.IsNaN(v) {
		t.Errorf("parseValue(NaN) = %g, %v", v, err)
	}
}
