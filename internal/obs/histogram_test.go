package obs

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-upper bucket
// semantics: a value exactly at a bound counts into that bucket (le is
// inclusive, matching Prometheus), a value just above goes to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1)    // bucket le=1 (at the bound: inclusive)
	h.Observe(1.25) // bucket le=2 (just above a bound)
	h.Observe(2)    // bucket le=2
	h.Observe(4)    // bucket le=4
	h.Observe(5)    // overflow
	h.Observe(0)    // bucket le=1
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 13.25 { // every addend is binary-exact
		t.Fatalf("sum = %g, want 13.25", h.Sum())
	}
}

func TestNormalizeBuckets(t *testing.T) {
	// Trailing +Inf is stripped (implicit overflow bucket).
	if got := normalizeBuckets([]float64{1, 2, math.Inf(1)}); len(got) != 2 {
		t.Fatalf("trailing +Inf not stripped: %v", got)
	}
	for name, b := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"nan":        {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v buckets did not panic", name)
				}
			}()
			normalizeBuckets(b)
		}()
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 25 || b[0] != 1e-6 {
		t.Fatalf("ladder = %d buckets starting %g", len(b), b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != b[i-1]*2 {
			t.Fatalf("bucket %d: %g is not double %g", i, b[i], b[i-1])
		}
	}
	if b[len(b)-1] < 10 {
		t.Fatalf("top bucket %g s does not cover a wedged-shard latency", b[len(b)-1])
	}
}

// TestHistogramQuantileVsExactSort draws random samples and checks the
// interpolated quantile against the exact sorted quantile: with doubling
// buckets the estimate must land within the owning bucket of the exact
// answer — i.e. within a factor 2 (one bucket width) plus the bottom
// bucket floor.
func TestHistogramQuantileVsExactSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 5; trial++ {
		h := newHistogram(LatencyBuckets())
		n := 2000
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over [2µs, 0.5s): spans most of the ladder.
			e := rng.Float64()*18 - 19 // 2^-19 ≈ 1.9µs … 2^-1 = 0.5s
			samples[i] = math.Pow(2, e)
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
			exact := samples[int(math.Ceil(q*float64(n)))-1]
			est := h.Quantile(q)
			if est < exact/2 || est > exact*2 {
				t.Errorf("trial %d q=%g: estimate %g outside factor-2 of exact %g", trial, q, est, exact)
			}
		}
	}
}

// TestHistogramQuantileExactWithinBucket: when every observation sits in
// one bucket, interpolation follows the mid-point rank convention.
func TestHistogramQuantileExactWithinBucket(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(15) // all in (10, 20]
	}
	// p50 → rank 5, position (5−½)/10 of the way through [10,20] = 14.5.
	if got := h.Quantile(0.50); got != 14.5 {
		t.Errorf("p50 = %g, want 14.5", got)
	}
	// p100 → rank 10 → 19.5.
	if got := h.Quantile(1); got != 19.5 {
		t.Errorf("p100 = %g, want 19.5", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(100) // overflow bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only quantile = %g, want top bound 2", got)
	}
}
