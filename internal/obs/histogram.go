package obs

import (
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution: one atomic count per bucket
// plus a running sum and total. Observations are lock-free — a binary
// search over the (immutable) bounds and two atomic adds — so the hot
// path never serializes behind a scrape. Quantiles are estimated by
// linear interpolation inside the owning bucket, which is exact to
// bucket resolution: with doubling bounds the estimate is within a
// factor 2 of the true sample, and the histogram tests pin that bound
// against exact sorted quantiles on random draws.
type Histogram struct {
	bounds []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations ≤ bounds[i]… (last: overflow)
	total  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// normalizeBuckets validates and copies bucket bounds: strictly
// ascending, finite, non-empty. A trailing +Inf is stripped (the
// overflow bucket is implicit).
func normalizeBuckets(b []float64) []float64 {
	if len(b) > 0 && math.IsInf(b[len(b)-1], 1) {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		panic("obs: histogram needs at least one finite bucket bound")
	}
	out := append([]float64(nil), b...)
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) || (i > 0 && v <= out[i-1]) {
			panic("obs: histogram bounds must be finite and strictly ascending")
		}
	}
	return out
}

// LatencyBuckets is the default latency bucket ladder: doubling bounds
// from 1µs to ~17s (in seconds), 25 buckets. Fine enough to resolve the
// µs-scale decision path and wide enough to catch a wedged shard.
func LatencyBuckets() []float64 {
	b := make([]float64, 25)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Observe records v. Values at a bound count into that bucket (le is an
// inclusive upper bound, matching Prometheus).
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound ≥ v for inclusive-upper
	// semantics: bounds[i-1] < v ≤ bounds[i].
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 < q ≤ 1) of everything observed,
// interpolating linearly within the owning bucket. The rank convention
// matches the repo's nearest-rank-with-ceiling definition: the target is
// the ⌈q·n⌉-th smallest observation. Returns 0 on an empty histogram;
// observations in the overflow bucket report the largest finite bound
// (there is no upper edge to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && cum+c >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Position of the target rank inside this bucket, mid-point
			// convention: the k-th of c observations sits at (k−½)/c.
			k := float64(rank-cum) - 0.5
			return lo + (hi-lo)*(k/float64(c))
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1] // unreachable: ranks are ≤ n
}

// writeText renders the histogram series: cumulative _bucket lines (one
// per bound plus +Inf), then _sum and _count.
func (h *Histogram) writeText(sb *strings.Builder, name string, labelNames, labelVals []string) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmtFloat(h.bounds[i])
		}
		sb.WriteString(name)
		sb.WriteString("_bucket")
		writeLabels(sb, labelNames, labelVals, "le", le)
		sb.WriteByte(' ')
		sb.WriteString(fmtFloat(float64(cum)))
		sb.WriteByte('\n')
	}
	sb.WriteString(name)
	sb.WriteString("_sum")
	writeLabels(sb, labelNames, labelVals, "", "")
	sb.WriteByte(' ')
	sb.WriteString(fmtFloat(h.Sum()))
	sb.WriteByte('\n')
	sb.WriteString(name)
	sb.WriteString("_count")
	writeLabels(sb, labelNames, labelVals, "", "")
	sb.WriteByte(' ')
	sb.WriteString(fmtFloat(float64(cum)))
	sb.WriteByte('\n')
}
