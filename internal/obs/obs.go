// Package obs is the observability substrate of the serving stack: a
// dependency-free, allocation-conscious metrics registry with a
// Prometheus-text exposition endpoint.
//
// Design constraints, in order:
//
//   - Hot-path updates are lock-free. Counters and gauges are single
//     atomics; histogram observations are a binary search plus two
//     atomic adds. Callers that sit on a per-request path resolve their
//     labeled series once at setup (With) and hold the pointer — no map
//     lookup, no allocation per update.
//   - Reads never block writes. Rendering walks the families under a
//     registration lock but reads every value through the same atomics
//     the writers use, so a scrape racing a burst of requests observes
//     a consistent-enough snapshot without stalling it.
//   - No dependencies. The container bakes in no Prometheus client
//     library; the text format is simple enough to emit (and, in
//     promtext.go, to parse back for CI lint) by hand.
//
// Families follow Prometheus conventions: `vne_` prefix, `_total`
// suffix on counters, `_seconds` unit suffix on histograms, lowercase
// snake-case label names. See CONTRIBUTING.md before adding families.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds, also the TYPE strings of the text exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// atomicFloat is a float64 updated through its bit pattern. Add is a
// CAS loop (uncontended in practice: one writer per series on the
// decision path), Set/Value are single atomic ops.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value — a comparable handle
// onto one registry series, free to copy. The zero Counter is unusable
// (obtain one from a Registry). Decrements are a caller bug; the
// registry does not police them (the hot path stays branch-free) but
// the promtext linter flags counters that go backward across scrapes.
type Counter struct{ v *atomicFloat }

// Inc adds 1.
func (c Counter) Inc() { c.v.Add(1) }

// Add adds v (v ≥ 0 by contract).
func (c Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current count.
func (c Counter) Value() float64 { return c.v.Value() }

// Gauge is a value that can go up and down; like Counter it is a
// copyable handle onto one registry series.
type Gauge struct{ v *atomicFloat }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the value by v (negative to decrease).
func (g Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.v.Value() }

// series is one labeled instance of a family. Exactly one of val, fn,
// hist is active, per the family kind.
type series struct {
	labelVals []string
	val       *atomicFloat   // counter, gauge
	fn        func() float64 // counterfunc, gaugefunc
	hist      *Histogram
}

// family is one metric family: a name, help text, a kind, and the
// labeled series under it.
type family struct {
	name       string
	help       string
	kind       string
	funcBacked bool
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion order; render sorts for determinism
}

// Registry holds metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var nameOK = func(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register creates or revalidates a family. Re-registering an existing
// name with an identical shape returns the existing family (idempotent —
// packages wiring the same registry twice is not an error); a shape
// mismatch panics, because two call sites disagreeing on what a family
// is can only be a programming error.
func (r *Registry) register(name, help, kind string, funcBacked bool, labelNames []string, buckets []float64) *family {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !nameOK(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.funcBacked != funcBacked ||
			strings.Join(f.labelNames, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("obs: family %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, funcBacked: funcBacked,
		labelNames: labelNames, buckets: buckets,
		series: make(map[string]*series),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// seriesFor returns (creating on first use) the series for the given
// label values.
func (f *family) seriesFor(vals []string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seriesForLocked(vals)
}

// bindFn creates (or finds) the series for vals and binds fn to it, in
// one critical section. Series can be registered while the registry is
// being scraped (the serving layer adds per-shard series on elastic
// resize), and a scrape snapshots a family's series under f.mu — binding
// inside the same section means any snapshot that sees the series also
// sees its fn. A series' fn is bound at most once.
func (f *family) bindFn(vals []string, fn func() float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seriesForLocked(vals).fn = fn
}

func (f *family) seriesForLocked(vals []string) *series {
	if len(vals) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: family %q wants %d label values, got %d", f.name, len(f.labelNames), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch {
	case f.kind == kindHistogram:
		s.hist = newHistogram(f.buckets)
	case !f.funcBacked:
		s.val = new(atomicFloat)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or finds) an unlabeled counter family.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, kindCounter, false, nil, nil)
	return Counter{f.seriesFor(nil).val}
}

// Gauge registers (or finds) an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, kindGauge, false, nil, nil)
	return Gauge{f.seriesFor(nil).val}
}

// Histogram registers (or finds) an unlabeled histogram family with the
// given bucket upper bounds (see LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, false, nil, normalizeBuckets(buckets))
	return f.seriesFor(nil).hist
}

// CounterVec is a labeled counter family; With resolves one series.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, false, labelNames, nil)}
}

// With returns the counter for the given label values, creating it at
// zero on first use. Resolve once and hold the pointer on hot paths.
func (v *CounterVec) With(labelVals ...string) Counter {
	return Counter{v.f.seriesFor(labelVals).val}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, false, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) Gauge {
	return Gauge{v.f.seriesFor(labelVals).val}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, false, labelNames, normalizeBuckets(buckets))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return v.f.seriesFor(labelVals).hist
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, true, nil, nil)
	f.bindFn(nil, fn)
}

// CounterFunc registers a counter whose value is read at scrape time
// from an external monotonic source (e.g. package-level solve counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, true, nil, nil)
	f.bindFn(nil, fn)
}

// GaugeFuncVec is a labeled family of scrape-time gauges.
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec registers (or finds) a labeled scrape-time gauge family.
func (r *Registry) GaugeFuncVec(name, help string, labelNames ...string) *GaugeFuncVec {
	return &GaugeFuncVec{r.register(name, help, kindGauge, true, labelNames, nil)}
}

// With binds fn as the series for the given label values.
func (v *GaugeFuncVec) With(fn func() float64, labelVals ...string) {
	v.f.bindFn(labelVals, fn)
}

// CounterFuncVec is a labeled family of scrape-time counters.
type CounterFuncVec struct{ f *family }

// CounterFuncVec registers (or finds) a labeled scrape-time counter family.
func (r *Registry) CounterFuncVec(name, help string, labelNames ...string) *CounterFuncVec {
	return &CounterFuncVec{r.register(name, help, kindCounter, true, labelNames, nil)}
}

// With binds fn as the series for the given label values.
func (v *CounterFuncVec) With(fn func() float64, labelVals ...string) {
	v.f.bindFn(labelVals, fn)
}

// fmtFloat renders a sample value: shortest round-trip representation,
// matching the decision-line convention elsewhere in the repo.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// writeLabels renders {a="x",b="y"}; extra ("le") is appended when set.
func writeLabels(sb *strings.Builder, names, vals []string, extraName, extraVal string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraVal)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order; series
// within a family in sorted label order, so two scrapes of an idle
// registry are byte-identical.
func (r *Registry) WriteText(w io.StringWriter) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range fams {
		sb.Reset()
		sb.WriteString("# HELP ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(strings.ReplaceAll(f.help, "\n", " "))
		sb.WriteString("\n# TYPE ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(f.kind)
		sb.WriteByte('\n')

		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		snap := make([]*series, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			snap[i] = f.series[k]
		}
		f.mu.Unlock()

		for _, s := range snap {
			switch {
			case s.hist != nil:
				s.hist.writeText(&sb, f.name, f.labelNames, s.labelVals)
			default:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.val.Value()
				}
				sb.WriteString(f.name)
				writeLabels(&sb, f.labelNames, s.labelVals, "", "")
				sb.WriteByte(' ')
				sb.WriteString(fmtFloat(v))
				sb.WriteByte('\n')
			}
		}
		w.WriteString(sb.String())
	}
}

// Handler serves GET /metrics in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		r.WriteText(&sb)
		w.Write([]byte(sb.String()))
	})
}

// Render returns the full exposition as a string (tests, CLI dumps).
func (r *Registry) Render() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}
