package obs

import (
	"strings"
	"testing"
)

// FuzzObsParseText fuzzes the exposition-format checker the e2e jobs
// and vneload -check rely on. Properties:
//
//   - ParseText and Lint never panic, whatever the scrape bytes (the
//     checker points at live servers; a hostile or truncated scrape
//     must come back as an error).
//   - ParseText is deterministic: the same bytes parse to the same
//     family set.
//   - Lint composes with ParseText: anything Lint accepts, ParseText
//     accepted with the identical families.
func FuzzObsParseText(f *testing.F) {
	// Seed: a real exposition rendered by the registry itself.
	r := NewRegistry()
	r.Counter("vne_requests_total", "requests served").Add(42)
	r.Gauge("vne_queue_depth", "queued jobs").Set(3)
	r.Histogram("vne_solve_seconds", "solve latency", []float64{0.001, 0.01, 0.1}).Observe(0.004)
	r.CounterVec("vne_http_requests_total", "requests by route", "path", "code").
		With("/v1/embed", "200").Add(7)
	f.Add(r.Render())

	// Seeds: hand-written valid and near-valid scrapes.
	for _, s := range []string{
		"",
		"# HELP vne_x_total help text\n# TYPE vne_x_total counter\nvne_x_total 1\n",
		"# TYPE vne_depth gauge\nvne_depth{shard=\"0\"} 3\n",
		"# TYPE vne_lat_seconds histogram\n" +
			"vne_lat_seconds_bucket{le=\"0.1\"} 1\n" +
			"vne_lat_seconds_bucket{le=\"+Inf\"} 2\n" +
			"vne_lat_seconds_sum 0.3\nvne_lat_seconds_count 2\n",
		"vne_orphan 1\n",
		"# TYPE broken\n",
		"# HELP\n",
		"vne_x{label=\"unterminated} 1\n",
		"vne_x{=\"\"} 1\n",
		"vne_x NaN\n",
		"vne_x 1e309\n",
		"vne_x 1 2 3\n",
		"{} 1\n",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, text string) {
		fams, err := ParseText(strings.NewReader(text))
		if err != nil {
			// Rejected scrapes must also be rejected (not panic on) by
			// the stricter checker.
			if _, lerr := Lint(strings.NewReader(text)); lerr == nil {
				t.Fatalf("ParseText rejected (%v) but Lint accepted", err)
			}
			return
		}
		again, err := ParseText(strings.NewReader(text))
		if err != nil || len(again) != len(fams) {
			t.Fatalf("ParseText not deterministic: first %d families, then %d (err=%v)",
				len(fams), len(again), err)
		}
		linted, err := Lint(strings.NewReader(text))
		if err != nil {
			return // stricter checks may reject what the parser accepts
		}
		if len(linted) != len(fams) {
			t.Fatalf("Lint returned %d families, ParseText %d", len(linted), len(fams))
		}
	})
}
