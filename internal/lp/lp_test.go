package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func mustVar(t *testing.T, p *Problem, cost, lo, up float64, entries []Entry) int {
	t.Helper()
	v, err := p.AddVar(cost, lo, up, entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func solveOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleLE(t *testing.T) {
	// min −x−y  s.t. x+y ≤ 1, x,y ∈ [0,1]  ⇒ obj −1.
	p := NewProblem()
	r := p.AddRow(LE, 1)
	mustVar(t, p, -1, 0, 1, []Entry{{r, 1}})
	mustVar(t, p, -1, 0, 1, []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-(-1)) > 1e-8 {
		t.Fatalf("obj = %g, want -1", sol.Obj)
	}
	if math.Abs(sol.X[0]+sol.X[1]-1) > 1e-8 {
		t.Fatalf("x+y = %g, want 1", sol.X[0]+sol.X[1])
	}
}

func TestClassicTextbookLP(t *testing.T) {
	// max 3x+5y s.t. x ≤ 4; 2y ≤ 12; 3x+2y ≤ 18 ⇒ x=2, y=6, obj 36.
	p := NewProblem()
	r1 := p.AddRow(LE, 4)
	r2 := p.AddRow(LE, 12)
	r3 := p.AddRow(LE, 18)
	x := mustVar(t, p, -3, 0, math.Inf(1), []Entry{{r1, 1}, {r3, 3}})
	y := mustVar(t, p, -5, 0, math.Inf(1), []Entry{{r2, 2}, {r3, 2}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-(-36)) > 1e-7 {
		t.Fatalf("obj = %g, want -36", sol.Obj)
	}
	if math.Abs(sol.X[x]-2) > 1e-7 || math.Abs(sol.X[y]-6) > 1e-7 {
		t.Fatalf("x,y = %g,%g; want 2,6", sol.X[x], sol.X[y])
	}
}

func TestEqualityRow(t *testing.T) {
	// min x+2y s.t. x+y = 1 ⇒ x=1, y=0, obj 1.
	p := NewProblem()
	r := p.AddRow(EQ, 1)
	mustVar(t, p, 1, 0, math.Inf(1), []Entry{{r, 1}})
	mustVar(t, p, 2, 0, math.Inf(1), []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-1) > 1e-8 {
		t.Fatalf("obj = %g, want 1", sol.Obj)
	}
	if math.Abs(sol.X[0]-1) > 1e-8 || math.Abs(sol.X[1]) > 1e-8 {
		t.Fatalf("x = %v, want [1 0]", sol.X)
	}
	// Dual of the equality row must price x to zero reduced cost.
	if math.Abs(sol.Dual[0]-1) > 1e-8 {
		t.Fatalf("dual = %g, want 1", sol.Dual[0])
	}
}

func TestGERow(t *testing.T) {
	// min x s.t. x ≥ 5 ⇒ 5.
	p := NewProblem()
	r := p.AddRow(GE, 5)
	mustVar(t, p, 1, 0, math.Inf(1), []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-5) > 1e-8 {
		t.Fatalf("obj = %g, want 5", sol.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ −1 with x ≥ 0.
	p := NewProblem()
	r := p.AddRow(LE, -1)
	mustVar(t, p, 1, 0, math.Inf(1), []Entry{{r, 1}})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x + y = 5 with x,y ∈ [0,1].
	p := NewProblem()
	r := p.AddRow(EQ, 5)
	mustVar(t, p, 1, 0, 1, []Entry{{r, 1}})
	mustVar(t, p, 1, 0, 1, []Entry{{r, 1}})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x s.t. x − y = 0, x,y ≥ 0: both can grow forever.
	p := NewProblem()
	r := p.AddRow(EQ, 0)
	mustVar(t, p, -1, 0, math.Inf(1), []Entry{{r, 1}})
	mustVar(t, p, 0, 0, math.Inf(1), []Entry{{r, -1}})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundFlip(t *testing.T) {
	// min −x s.t. x ≤ 10, x ∈ [0,3] ⇒ x hits its own upper bound 3.
	p := NewProblem()
	r := p.AddRow(LE, 10)
	mustVar(t, p, -1, 0, 3, []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.X[0]-3) > 1e-8 {
		t.Fatalf("x = %g, want 3 (bound flip)", sol.X[0])
	}
}

func TestNonZeroLowerBounds(t *testing.T) {
	// min x+y s.t. x+y ≥ 3, x ∈ [1,∞), y ∈ [0.5,∞) ⇒ obj 3.
	p := NewProblem()
	r := p.AddRow(GE, 3)
	mustVar(t, p, 1, 1, math.Inf(1), []Entry{{r, 1}})
	mustVar(t, p, 1, 0.5, math.Inf(1), []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-3) > 1e-8 {
		t.Fatalf("obj = %g, want 3", sol.Obj)
	}
	if sol.X[0] < 1-1e-9 || sol.X[1] < 0.5-1e-9 {
		t.Fatalf("solution %v violates lower bounds", sol.X)
	}
}

func TestFixedVariable(t *testing.T) {
	// A [2,2] fixed variable forces the rest.
	// min y s.t. x + y ≥ 5, x fixed at 2 ⇒ y = 3.
	p := NewProblem()
	r := p.AddRow(GE, 5)
	mustVar(t, p, 0, 2, 2, []Entry{{r, 1}})
	y := mustVar(t, p, 1, 0, math.Inf(1), []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.X[y]-3) > 1e-8 {
		t.Fatalf("y = %g, want 3", sol.X[y])
	}
}

// TestAddVarMergesDuplicateRowEntries pins the one-entry-per-row column
// invariant: duplicate rows sum. Without the merge, the sparse solves
// disagreed among themselves on such columns (FTRAN scattered the last
// coefficient while pricing summed them), so Solve could report Optimal
// for a constraint-violating point.
func TestAddVarMergesDuplicateRowEntries(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 4)
	// Intended coefficient 2 = 1 + 1: min -x s.t. 2x ≤ 4, x ∈ [0, 10].
	x := p.MustAddVar(-1, 0, 10, []Entry{{r, 1}, {r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.X[x]-2) > 1e-8 {
		t.Fatalf("x = %g, want 2 (duplicate entries must sum to coef 2)", sol.X[x])
	}
	if len(p.cols[x]) != 1 || p.cols[x][0].Coef != 2 {
		t.Fatalf("stored column %v, want single entry with coef 2", p.cols[x])
	}
}

func TestAddVarErrors(t *testing.T) {
	p := NewProblem()
	p.AddRow(LE, 1)
	if _, err := p.AddVar(0, 3, 2, nil); err == nil {
		t.Error("lo > up accepted")
	}
	if _, err := p.AddVar(0, math.Inf(-1), 0, nil); err == nil {
		t.Error("infinite lower bound accepted")
	}
	if _, err := p.AddVar(0, 0, 1, []Entry{{Row: 5, Coef: 1}}); err == nil {
		t.Error("entry for missing row accepted")
	}
}

func TestEmptyProblem(t *testing.T) {
	if _, err := NewProblem().Solve(); err == nil {
		t.Error("empty problem solved")
	}
	p := NewProblem()
	p.AddRow(LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Error("problem with no variables solved")
	}
}

func TestDegenerateLP(t *testing.T) {
	// Klee–Minty-flavoured degenerate instance; must terminate.
	p := NewProblem()
	r1 := p.AddRow(LE, 0)
	r2 := p.AddRow(LE, 0)
	r3 := p.AddRow(LE, 1)
	mustVar(t, p, -1, 0, math.Inf(1), []Entry{{r1, 1}, {r2, 1}, {r3, 1}})
	mustVar(t, p, -1, 0, math.Inf(1), []Entry{{r1, -1}, {r3, 1}})
	mustVar(t, p, -1, 0, math.Inf(1), []Entry{{r2, -1}, {r3, 1}})
	sol := solveOptimal(t, p)
	if sol.Obj > -1+1e-7 {
		t.Fatalf("obj = %g, want ≤ -1", sol.Obj)
	}
}

// checkKKT verifies the certificate of optimality: primal feasibility,
// complementary slackness on rows, and sign-correct reduced costs. These
// conditions are sufficient for LP optimality, so they validate the solver
// without a reference implementation.
func checkKKT(t *testing.T, p *Problem, sol *Solution, senses []Sense, rhs []float64, lo, up, cost []float64, cols [][]Entry) {
	t.Helper()
	const tol = 1e-6
	m := len(rhs)
	act := make([]float64, m)
	for j, col := range cols {
		for _, e := range col {
			act[e.Row] += e.Coef * sol.X[j]
		}
	}
	for i := 0; i < m; i++ {
		switch senses[i] {
		case LE:
			if act[i] > rhs[i]+tol {
				t.Fatalf("row %d violated: %g > %g", i, act[i], rhs[i])
			}
			if rhs[i]-act[i] > tol && math.Abs(sol.Dual[i]) > tol {
				t.Fatalf("row %d slack with nonzero dual %g", i, sol.Dual[i])
			}
			if sol.Dual[i] > tol {
				t.Fatalf("LE row %d has positive dual %g in a minimization", i, sol.Dual[i])
			}
		case GE:
			if act[i] < rhs[i]-tol {
				t.Fatalf("row %d violated: %g < %g", i, act[i], rhs[i])
			}
			if act[i]-rhs[i] > tol && math.Abs(sol.Dual[i]) > tol {
				t.Fatalf("row %d slack with nonzero dual %g", i, sol.Dual[i])
			}
		case EQ:
			if math.Abs(act[i]-rhs[i]) > tol {
				t.Fatalf("row %d not tight: %g ≠ %g", i, act[i], rhs[i])
			}
		}
	}
	for j := range cols {
		if sol.X[j] < lo[j]-tol || sol.X[j] > up[j]+tol {
			t.Fatalf("var %d = %g outside [%g,%g]", j, sol.X[j], lo[j], up[j])
		}
		d := cost[j]
		for _, e := range cols[j] {
			d -= sol.Dual[e.Row] * e.Coef
		}
		interior := sol.X[j] > lo[j]+tol && sol.X[j] < up[j]-tol
		switch {
		case interior && math.Abs(d) > tol:
			t.Fatalf("var %d interior with reduced cost %g", j, d)
		case sol.X[j] <= lo[j]+tol && d < -tol:
			t.Fatalf("var %d at lower with negative reduced cost %g", j, d)
		case sol.X[j] >= up[j]-tol && !math.IsInf(up[j], 1) && sol.X[j] > lo[j]+tol && d > tol:
			t.Fatalf("var %d at upper with positive reduced cost %g", j, d)
		}
	}
}

// TestRandomLPsSatisfyKKT fuzzes the solver with random dense LPs and
// verifies the optimality certificate for every optimal result.
func TestRandomLPsSatisfyKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	var optimal, infeasible int
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.IntN(4)
		n := 2 + rng.IntN(6)
		p := NewProblem()
		senses := make([]Sense, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			senses[i] = []Sense{LE, EQ, GE}[rng.IntN(3)]
			rhs[i] = rng.Float64()*8 - 2
			p.AddRow(senses[i], rhs[i])
		}
		lo := make([]float64, n)
		up := make([]float64, n)
		cost := make([]float64, n)
		cols := make([][]Entry, n)
		for j := 0; j < n; j++ {
			lo[j] = 0
			up[j] = 1 + rng.Float64()*9 // finite bounds keep it bounded
			cost[j] = rng.Float64()*4 - 2
			for i := 0; i < m; i++ {
				if rng.Float64() < 0.7 {
					cols[j] = append(cols[j], Entry{Row: i, Coef: rng.Float64()*4 - 2})
				}
			}
			if _, err := p.AddVar(cost[j], lo[j], up[j], cols[j]); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		switch sol.Status {
		case Optimal:
			optimal++
			checkKKT(t, p, sol, senses, rhs, lo, up, cost, cols)
		case Infeasible:
			infeasible++
		case Unbounded:
			t.Fatalf("trial %d: unbounded with finite variable bounds", trial)
		}
	}
	if optimal == 0 {
		t.Fatal("no random trial was optimal; fuzz coverage broken")
	}
	if infeasible == 0 {
		t.Log("note: no infeasible random trials this seed")
	}
}

// TestLargerSparseLP exercises refactorization (>100 pivots) on a
// transportation-style LP whose optimum is known analytically.
func TestLargerSparseLP(t *testing.T) {
	// 30 supplies with capacity 1, 30 demands requiring 1, cost c_ij =
	// |i−j| on a complete bipartite graph ⇒ identity assignment, obj 0.
	const k = 30
	p := NewProblem()
	supply := make([]int, k)
	demand := make([]int, k)
	for i := 0; i < k; i++ {
		supply[i] = p.AddRow(LE, 1)
	}
	for j := 0; j < k; j++ {
		demand[j] = p.AddRow(EQ, 1)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			c := math.Abs(float64(i - j))
			mustVar(t, p, c, 0, math.Inf(1), []Entry{{supply[i], 1}, {demand[j], 1}})
		}
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj) > 1e-6 {
		t.Fatalf("obj = %g, want 0 (identity assignment)", sol.Obj)
	}
}

func TestDualsPriceColumnsForGeneration(t *testing.T) {
	// A knapsack-like master problem: capacity row + convexity row.
	// min −2a s.t. a ≤ 4 (capacity), a ≤ 1 (convexity via EQ with slack
	// pattern): check duals let us price an improving column.
	p := NewProblem()
	capRow := p.AddRow(LE, 4)
	conv := p.AddRow(EQ, 1)
	// Initial column uses 8 capacity per unit: can only take 0.5.
	mustVar(t, p, -2, 0, 1, []Entry{{capRow, 8}, {conv, 1}})
	// Rejection column: zero use, zero value.
	mustVar(t, p, 0, 0, 1, []Entry{{conv, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.Obj-(-1)) > 1e-8 {
		t.Fatalf("master obj = %g, want -1", sol.Obj)
	}
	// Price a better column (cost −2, uses 2 capacity): reduced cost
	// = −2 − (y_cap·2 + y_conv·1) must be negative ⇒ it would enter.
	rc := -2 - (sol.Dual[capRow]*2 + sol.Dual[conv]*1)
	if rc >= -1e-9 {
		t.Fatalf("improving column priced non-negative: %g (duals %v)", rc, sol.Dual)
	}
}

func TestSolveDoesNotMutateProblem(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 1)
	mustVar(t, p, -1, 0, 1, []Entry{{r, 1}})
	first := solveOptimal(t, p)
	second := solveOptimal(t, p)
	if first.Obj != second.Obj {
		t.Fatalf("repeat solve differs: %g vs %g", first.Obj, second.Obj)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", Status(9): "status(9)"} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

// TestLargeCostScaleTerminatesQuickly guards the scale-aware optimality
// tolerance: objectives of magnitude ~1e8 (PLAN-VNE scale) must not send
// the solver chasing floating-point phantom reduced costs.
func TestLargeCostScaleTerminatesQuickly(t *testing.T) {
	rng := rand.New(rand.NewPCG(50, 51))
	p := NewProblem()
	const m, n = 40, 300
	rows := make([]int, m)
	for i := range rows {
		rows[i] = p.AddRow(LE, 1e6*(1+rng.Float64()))
	}
	conv := make([]int, 30)
	for i := range conv {
		conv[i] = p.AddRow(EQ, 1)
	}
	for j := 0; j < n; j++ {
		cost := 1e7 * (0.5 + rng.Float64())
		entries := []Entry{{Row: conv[j%len(conv)], Coef: 1}}
		for k := 0; k < 4; k++ {
			entries = append(entries, Entry{Row: rows[rng.IntN(m)], Coef: 1e4 * rng.Float64()})
		}
		mustVar(t, p, cost, 0, 1, entries)
	}
	// Rejection-like columns keep it feasible.
	for i := range conv {
		mustVar(t, p, 5e8, 0, 1, []Entry{{Row: conv[i], Coef: 1}})
	}
	sol := solveOptimal(t, p)
	if sol.Iterations > 20000 {
		t.Fatalf("%d iterations on a %dx%d LP — tolerance scaling regressed", sol.Iterations, m, n)
	}
}
