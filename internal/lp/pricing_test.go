package lp

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"os"
	"testing"
)

// solveWith solves a copy-free view of p under the given rule via the
// primary no-retry path, so pivot counts are not polluted by
// perturbation retries.
func solveWith(t testing.TB, p *Problem, rule PricingRule) *Solution {
	t.Helper()
	p.Pricing = rule
	sol, err := p.solveOnce(0, nil)
	if err != nil {
		t.Fatalf("%v solve: %v", rule, err)
	}
	return sol
}

// TestDevexDantzigEquivalence is the randomized equivalence suite: both
// pricing rules must agree on status and optimal objective on every
// instance — pricing chooses the path to the optimum, never the optimum
// itself — and Devex must not spend materially more pivots than Dantzig
// in aggregate. 250 instances, sized to exercise partial pricing's
// cursor wraparound as well as the narrow-problem fallback.
func TestDevexDantzigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 11))
	var optimal, infeasible int
	var devexPivots, dantzigPivots int
	for trial := 0; trial < 250; trial++ {
		m := 1 + rng.IntN(10)
		n := 1 + rng.IntN(24)
		mk := func() *Problem {
			// Re-derive the instance from a forked deterministic stream so
			// the two rules solve bit-identical problems.
			sub := rand.New(rand.NewPCG(uint64(trial), 997))
			p := NewProblem()
			for i := 0; i < m; i++ {
				p.AddRow([]Sense{LE, EQ, GE}[sub.IntN(3)], sub.Float64()*8-2)
			}
			for j := 0; j < n; j++ {
				lo := 0.0
				if sub.Float64() < 0.3 {
					lo = sub.Float64() - 0.5
				}
				up := lo + sub.Float64()*6
				var entries []Entry
				for i := 0; i < m; i++ {
					if sub.Float64() < 0.5 {
						entries = append(entries, Entry{Row: i, Coef: sub.Float64()*4 - 2})
					}
				}
				if _, err := p.AddVar(sub.Float64()*4-2, lo, up, entries); err != nil {
					t.Fatal(err)
				}
			}
			return p
		}
		dv := solveWith(t, mk(), PricingDevex)
		dz := solveWith(t, mk(), PricingDantzig)
		if dv.Status != dz.Status {
			t.Fatalf("trial %d (%dx%d): devex %v, dantzig %v", trial, m, n, dv.Status, dz.Status)
		}
		if dv.Status != Optimal {
			infeasible++
			continue
		}
		optimal++
		if d := math.Abs(dv.Obj - dz.Obj); d > 1e-6*(1+math.Abs(dz.Obj)) {
			t.Fatalf("trial %d (%dx%d): devex obj %.12g ≠ dantzig obj %.12g (Δ %g)",
				trial, m, n, dv.Obj, dz.Obj, d)
		}
		devexPivots += dv.Iterations
		dantzigPivots += dz.Iterations
	}
	if optimal < 20 || infeasible < 20 {
		t.Fatalf("fuzz mix degenerate: %d optimal, %d infeasible of 250", optimal, infeasible)
	}
	// On instances this small Devex has no room to win, but it must not
	// lose: aggregate pivots within 25% of Dantzig (plus slack for the
	// handful of single-digit-pivot instances where one extra step is a
	// large relative change).
	if float64(devexPivots) > 1.25*float64(dantzigPivots)+100 {
		t.Fatalf("devex spent %d pivots to dantzig's %d across the suite", devexPivots, dantzigPivots)
	}
	t.Logf("suite pivots: devex %d, dantzig %d over %d optimal instances", devexPivots, dantzigPivots, optimal)
}

// pivotBaseline mirrors testdata/lp/pivot_baseline.json: pinned
// deterministic pivot and scan counts on the seed-4 fixture.
type pivotBaseline struct {
	DevexPivots   int `json:"devex_pivots"`
	DevexScans    int `json:"devex_scans"`
	DantzigPivots int `json:"dantzig_pivots"`
	DantzigScans  int `json:"dantzig_scans"`
}

// TestPivotCountGuard is the pivot-count regression guard: the solver is
// deterministic (no randomness, no map-order dependence, no
// parallelism), so both rules' pivot and scan counts on the seed-4
// master LP are exact machine-independent integers. A >10% regression
// against the pinned baseline fails; a big improvement nags for a
// re-pin. The guard also enforces the PR's headline: Devex must need at
// most half of Dantzig's pivots on this instance.
func TestPivotCountGuard(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/lp/pivot_baseline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base pivotBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	dv := solveWith(t, loadFixture(t, "../../testdata/lp/random100-u140-seed4.lp.gz"), PricingDevex)
	dz := solveWith(t, loadFixture(t, "../../testdata/lp/random100-u140-seed4.lp.gz"), PricingDantzig)
	if dv.Status != Optimal || dz.Status != Optimal {
		t.Fatalf("status devex=%v dantzig=%v, want optimal", dv.Status, dz.Status)
	}
	check := func(name string, got, pinned int) {
		if pinned <= 0 {
			t.Fatalf("%s baseline %d not positive — baseline file corrupt?", name, pinned)
		}
		if float64(got) > 1.10*float64(pinned) {
			t.Errorf("%s = %d regressed >10%% over pinned %d — investigate before re-pinning", name, got, pinned)
		} else if float64(got) < 0.90*float64(pinned) {
			t.Logf("%s = %d improved >10%% under pinned %d — re-pin testdata/lp/pivot_baseline.json to lock it in", name, got, pinned)
		}
	}
	check("devex pivots", dv.Iterations, base.DevexPivots)
	check("devex scans", dv.PricingScans, base.DevexScans)
	check("dantzig pivots", dz.Iterations, base.DantzigPivots)
	check("dantzig scans", dz.PricingScans, base.DantzigScans)
	if 2*dv.Iterations > dz.Iterations {
		t.Errorf("devex pivots %d not ≤ half of dantzig's %d on the seed-4 fixture", dv.Iterations, dz.Iterations)
	}
}

// TestPricingRuleResolution pins the PricingDefault plumbing: the zero
// value resolves to the process default, SetPricing flips it for
// already-built problems, and Solution.Rule reports the resolved rule.
func TestPricingRuleResolution(t *testing.T) {
	mk := func() *Problem {
		p := NewProblem()
		r := p.AddRow(LE, 4)
		p.MustAddVar(-1, 0, 3, []Entry{{Row: r, Coef: 1}})
		return p
	}
	p := mk()
	if p.Pricing != PricingDefault {
		t.Fatalf("NewProblem pricing = %v, want PricingDefault", p.Pricing)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rule != PricingDevex {
		t.Fatalf("default resolved to %v, want devex", sol.Rule)
	}
	SetPricing(PricingDantzig)
	defer SetPricing(PricingDevex)
	sol, err = mk().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rule != PricingDantzig {
		t.Fatalf("after SetPricing(dantzig): rule %v", sol.Rule)
	}
}

// BenchmarkSimplexPricing measures a cold solve of the seed-4 master LP
// under each pricing rule — the microbenchmark behind the PR 8 row of
// the README trajectory table. pivots/op and scans/op are reported so
// the time delta can be attributed.
func BenchmarkSimplexPricing(b *testing.B) {
	for _, rule := range []PricingRule{PricingDevex, PricingDantzig} {
		b.Run(rule.String(), func(b *testing.B) {
			p := loadFixture(b, "../../testdata/lp/random100-u140-seed4.lp.gz")
			p.Pricing = rule
			b.ResetTimer()
			var pivots, scans int
			for i := 0; i < b.N; i++ {
				sol, err := p.solveOnce(0, nil)
				if err != nil {
					b.Fatal(err)
				}
				pivots += sol.Iterations
				scans += sol.PricingScans
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			b.ReportMetric(float64(scans)/float64(b.N), "scans/op")
		})
	}
}
