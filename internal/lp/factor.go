package lp

import "math"

// This file implements the sparse linear algebra behind the revised
// simplex: an LU factorization of the m×m basis matrix with Markowitz
// pivot ordering under threshold partial pivoting, forward/backward
// solves (FTRAN/BTRAN), and a product-form eta file so a pivot costs
// O(nnz) instead of the O(m²) a dense inverse update paid. The
// factorization also *reports* rank deficiency instead of failing: a
// dependent basis can be repaired (see simplex.repairBasis) rather than
// aborting the solve.

// spEntry is one nonzero of a sparse vector.
type spEntry struct {
	idx int
	val float64
}

// eta is one product-form update. Replacing the basis column at position
// r by an entering column with FTRAN image w multiplies the basis by the
// elementary matrix E = I with column r replaced by w; the eta stores w
// split into its pivot w_r and the remaining nonzeros.
type eta struct {
	r     int
	pivot float64
	ents  []spEntry
}

// Factorization tolerances and update policy.
const (
	// luPivotTol is the absolute magnitude below which a candidate pivot
	// is treated as zero; a column whose remaining entries are all below
	// it is reported as dependent.
	luPivotTol = 1e-10
	// luThreshold is the Markowitz threshold u: an entry qualifies as a
	// pivot only if |a_ij| ≥ u·max|a_·j|, trading a bounded growth factor
	// for sparsity in the usual way.
	luThreshold = 0.1
	// maxEtas bounds the eta file; beyond it a refactorization is cheaper
	// than the ever-longer FTRAN/BTRAN passes and contains drift.
	maxEtas = 64
	// etaWeakTol flags an update whose pivot is small relative to the
	// spike's largest entry — the classic trigger for inverse drift and
	// the root cause of the "singular basis during refactorization"
	// failures the dense code hit.
	etaWeakTol = 1e-9
)

// basisLU is a sparse LU factorization of the basis, B = Pᵀ·L·U·Q with P
// the row permutation (prow) and Q the basis-position permutation (pcol),
// plus the eta file of pivot updates applied since the last
// refactorization.
type basisLU struct {
	m int

	prow    []int // prow[k]: matrix row pivoted at elimination step k
	pcol    []int // pcol[k]: basis position pivoted at step k
	rowStep []int // inverse of prow

	// L as multiplier ops in elimination order: op t (for lstart[k] ≤ t <
	// lstart[k+1]) subtracts lmult[t]·(pivot row k) from row lrow[t].
	lstart []int
	lrow   []int
	lmult  []float64

	// U rows in elimination-step space: row k holds udiag[k] on the
	// diagonal and off-diagonal entries (ucol[t], uval[t]) with ucol[t] > k.
	ustart []int
	ucol   []int
	uval   []float64
	udiag  []float64

	etas []eta
	// entArena backs the eta entry slices between refactorizations.
	entArena arena[spEntry]

	ywork []float64 // scratch, matrix-row space
	zwork []float64 // scratch, step space

	// Forrest–Tomlin state (see ft.go). ft selects the update scheme for
	// this factorization epoch; ftLive reports that the mutable U
	// representation has been built (first FT update). prowU/pcolU are
	// the *current* step orderings of the mutable U — the frozen
	// prow/pcol keep serving the L solves.
	ft       bool
	ftLive   bool
	prowU    []int
	pcolU    []int
	posStep  []int // basis position → current U step
	urows    [][]spEntry
	urowsAlt [][]spEntry
	udiagM   []float64
	udiagAlt []float64
	prowAlt  []int
	pcolAlt  []int
	ftArena  [2]arena[spEntry]
	ftCur    int
	ftEtas   []ftEta
	swork    []float64 // scratch, matrix-row space (FT)
	twork    []float64 // dense elimination workspace (FT)
	muIdx    []int
	muVal    []float64
}

// reset prepares lu to be refilled by factorBasis, reusing every buffer.
func (lu *basisLU) reset(m int) {
	lu.m = m
	lu.prow = lu.prow[:0]
	lu.pcol = lu.pcol[:0]
	lu.lstart = append(lu.lstart[:0], 0)
	lu.lrow = lu.lrow[:0]
	lu.lmult = lu.lmult[:0]
	lu.ustart = append(lu.ustart[:0], 0)
	lu.ucol = lu.ucol[:0]
	lu.uval = lu.uval[:0]
	lu.udiag = lu.udiag[:0]
	lu.etas = lu.etas[:0]
	lu.entArena.reset()
	lu.ft = false
	lu.ftLive = false
	lu.ftEtas = lu.ftEtas[:0]
}

// factorBasis factors the basis given by cols[basis[0..m-1]] into lu,
// using ws for all scratch memory. On success it reports ok and nil
// slices. If the basis is numerically rank-deficient it reports !ok plus
// the dependent basis positions and the rows left unpivoted — aligned
// sets the caller can repair by substituting each position with a
// logical (slack or artificial) column of one of the rows.
func factorBasis(ws *luWorkspace, lu *basisLU, m int, cols [][]Entry, basis []int) (ok bool, depPos, depRows []int) {
	// Working rows: rows[i] holds (basis position, value), sorted by
	// position. Every loop below iterates deterministically — factor
	// results must be bit-reproducible run to run.
	ws.preCnt = growSlice(ws.preCnt, m)
	for i := 0; i < m; i++ {
		ws.preCnt[i] = 0
	}
	for _, j := range basis {
		for _, e := range cols[j] {
			ws.preCnt[e.Row]++
		}
	}
	ws.rowArena.reset()
	ws.rows = growSlice(ws.rows, m)
	rows := ws.rows
	for i := 0; i < m; i++ {
		rows[i] = ws.rowArena.take(ws.preCnt[i])
	}
	for pos, j := range basis {
		for _, e := range cols[j] {
			rows[e.Row] = append(rows[e.Row], spEntry{pos, e.Coef})
		}
	}
	for i := 0; i < m; i++ {
		sortEntries(rows[i])
	}
	ws.rowActive = growSlice(ws.rowActive, m)
	ws.colActive = growSlice(ws.colActive, m)
	rowActive, colActive := ws.rowActive, ws.colActive
	for i := 0; i < m; i++ {
		rowActive[i], colActive[i] = true, true
	}
	// colRows[c] lists rows that (may) hold an entry in position c:
	// fill-in appends, cancellation leaves stale entries that are
	// re-validated at use.
	ws.colRows = growSlice(ws.colRows, m)
	colRows := ws.colRows
	for c := 0; c < m; c++ {
		colRows[c] = colRows[c][:0]
	}
	for i := 0; i < m; i++ {
		for _, e := range rows[i] {
			colRows[e.idx] = append(colRows[e.idx], i)
		}
	}

	lu.reset(m)
	// uposcol mirrors ucol but in basis-position space during
	// elimination; converted to step space once the permutation is known.
	uposcol := ws.uposcol[:0]

	ws.colMax = growSlice(ws.colMax, m)
	ws.colCnt = growSlice(ws.colCnt, m)
	ws.rowCnt = growSlice(ws.rowCnt, m)
	ws.seen = growSlice(ws.seen, m)
	colMax, colCnt, rowCnt := ws.colMax, ws.colCnt, ws.rowCnt
	seen := ws.seen // per-elimination visit stamps for colRows
	for i := range seen {
		seen[i] = -1
	}
	activeCols := m

	for step := 0; activeCols > 0; step++ {
		// Pass A: per-column max magnitude and count over active entries,
		// and per-row active-entry counts, for the Markowitz score.
		for c := 0; c < m; c++ {
			if colActive[c] {
				colMax[c], colCnt[c] = 0, 0
			}
		}
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			n := 0
			for _, e := range rows[i] {
				if !colActive[e.idx] {
					continue
				}
				n++
				colCnt[e.idx]++
				if a := math.Abs(e.val); a > colMax[e.idx] {
					colMax[e.idx] = a
				}
			}
			rowCnt[i] = n
		}
		// Columns with no usable pivot are dependent: report, drop, and
		// keep factoring the rest so one pass finds the whole deficiency.
		for c := 0; c < m; c++ {
			if colActive[c] && colMax[c] < luPivotTol {
				colActive[c] = false
				activeCols--
				depPos = append(depPos, c)
			}
		}
		if activeCols == 0 {
			break
		}
		// Pass B: pick the admissible entry minimizing the Markowitz
		// fill-in bound (r−1)(c−1); ties go to the larger magnitude,
		// then first in scan order (ascending row, ascending position).
		bestScore := math.MaxInt
		bestVal := 0.0
		pivRowI, pivColI := -1, -1
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			for _, e := range rows[i] {
				c := e.idx
				if !colActive[c] {
					continue
				}
				a := math.Abs(e.val)
				if a < luPivotTol || a < luThreshold*colMax[c] {
					continue
				}
				score := (rowCnt[i] - 1) * (colCnt[c] - 1)
				if score < bestScore || (score == bestScore && a > bestVal) {
					bestScore, bestVal = score, a
					pivRowI, pivColI = i, c
				}
			}
		}
		// Unreachable in principle (every live column's max qualifies),
		// but guard against it becoming an infinite loop.
		if pivRowI < 0 {
			for c := 0; c < m; c++ {
				if colActive[c] {
					colActive[c] = false
					activeCols--
					depPos = append(depPos, c)
				}
			}
			break
		}

		lu.prow = append(lu.prow, pivRowI)
		lu.pcol = append(lu.pcol, pivColI)
		pivRow := rows[pivRowI]
		pivVal := entryVal(pivRow, pivColI)

		// Eliminate position pivColI from every other active row holding
		// it, recording the multipliers as L ops of step k.
		for _, i := range colRows[pivColI] {
			if i == pivRowI || !rowActive[i] || seen[i] == step {
				continue
			}
			seen[i] = step
			v, ok := entryLookup(rows[i], pivColI)
			if !ok {
				continue // stale colRows entry
			}
			f := v / pivVal
			lu.lrow = append(lu.lrow, i)
			lu.lmult = append(lu.lmult, f)
			rows[i] = rowSub(&ws.rowArena, rows[i], pivRow, f, pivColI, colRows, i)
		}
		lu.lstart = append(lu.lstart, len(lu.lrow))

		// Record the U row (off-diagonal entries still in position
		// space; mapped to steps after the permutation is complete).
		lu.udiag = append(lu.udiag, pivVal)
		for _, e := range pivRow {
			if e.idx != pivColI {
				uposcol = append(uposcol, e.idx)
				lu.uval = append(lu.uval, e.val)
			}
		}
		lu.ustart = append(lu.ustart, len(lu.uval))

		rowActive[pivRowI] = false
		colActive[pivColI] = false
		activeCols--
	}

	ws.uposcol = uposcol
	if len(depPos) > 0 {
		for i := 0; i < m; i++ {
			if rowActive[i] {
				depRows = append(depRows, i)
			}
		}
		return false, depPos, depRows
	}

	// Finalize: permutation inverses and U columns in step space.
	lu.rowStep = growSlice(lu.rowStep, m)
	ws.colStep = growSlice(ws.colStep, m)
	colStep := ws.colStep
	for k, r := range lu.prow {
		lu.rowStep[r] = k
	}
	for k, c := range lu.pcol {
		colStep[c] = k
	}
	lu.ucol = growSlice(lu.ucol, len(uposcol))
	for t, c := range uposcol {
		lu.ucol[t] = colStep[c]
	}
	lu.ywork = growSlice(lu.ywork, m)
	lu.zwork = growSlice(lu.zwork, m)
	return true, nil, nil
}

// sortEntries sorts a sparse row by position (insertion sort: rows are
// short and nearly sorted).
func sortEntries(r []spEntry) {
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && r[j].idx < r[j-1].idx; j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// entryVal returns the value at position c of a sorted sparse row
// (which must be present).
func entryVal(r []spEntry, c int) float64 {
	v, _ := entryLookup(r, c)
	return v
}

// entryLookup binary-searches a sorted sparse row for position c.
func entryLookup(r []spEntry, c int) (float64, bool) {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case r[mid].idx < c:
			lo = mid + 1
		case r[mid].idx > c:
			hi = mid
		default:
			return r[mid].val, true
		}
	}
	return 0, false
}

// rowSub returns dst − f·src, skipping position skip (which cancels
// exactly) and dropping exact zeros; every position newly introduced
// into the row is recorded in colRows under fillRow. The output row is
// carved from the factorization arena.
func rowSub(a *arena[spEntry], dst, src []spEntry, f float64, skip int, colRows [][]int, fillRow int) []spEntry {
	out := a.take(len(dst) + len(src))
	i, j := 0, 0
	for i < len(dst) || j < len(src) {
		switch {
		case j >= len(src) || (i < len(dst) && dst[i].idx < src[j].idx):
			if dst[i].idx != skip {
				out = append(out, dst[i])
			}
			i++
		case i >= len(dst) || src[j].idx < dst[i].idx:
			if src[j].idx != skip {
				if v := -f * src[j].val; v != 0 {
					out = append(out, spEntry{src[j].idx, v})
					colRows[src[j].idx] = append(colRows[src[j].idx], fillRow)
				}
			}
			j++
		default: // same position
			if dst[i].idx != skip {
				if v := dst[i].val - f*src[j].val; v != 0 {
					out = append(out, spEntry{dst[i].idx, v})
				}
			}
			i++
			j++
		}
	}
	return out
}

// ftranCol solves B·w = a for a sparse column a, leaving w (length m,
// basis-position space) fully overwritten.
//
//olive:hotpath inner simplex kernel
func (lu *basisLU) ftranCol(col []Entry, w []float64) {
	y := lu.ywork
	for i := range y {
		y[i] = 0
	}
	for _, e := range col {
		y[e.Row] = e.Coef
	}
	lu.ftranWork(w)
}

// ftranDense solves B·w = rhs for a dense right-hand side in matrix-row
// space. rhs is not modified.
//
//olive:hotpath inner simplex kernel
func (lu *basisLU) ftranDense(rhs []float64, w []float64) {
	copy(lu.ywork, rhs)
	lu.ftranWork(w)
}

// ftranWork completes an FTRAN whose right-hand side has been loaded
// into ywork: L solve, U back-substitution, permutation, eta file.
//
//olive:hotpath inner simplex kernel
func (lu *basisLU) ftranWork(w []float64) {
	y, z := lu.ywork, lu.zwork
	m := lu.m
	for k := 0; k < m; k++ {
		v := y[lu.prow[k]]
		if v == 0 {
			continue
		}
		for t := lu.lstart[k]; t < lu.lstart[k+1]; t++ {
			y[lu.lrow[t]] -= lu.lmult[t] * v
		}
	}
	if lu.ftLive {
		lu.ftranU(w)
		return
	}
	for k := m - 1; k >= 0; k-- {
		v := y[lu.prow[k]]
		for t := lu.ustart[k]; t < lu.ustart[k+1]; t++ {
			v -= lu.uval[t] * z[lu.ucol[t]]
		}
		z[k] = v / lu.udiag[k]
	}
	for k := 0; k < m; k++ {
		w[lu.pcol[k]] = z[k]
	}
	for idx := range lu.etas {
		e := &lu.etas[idx]
		t := w[e.r] / e.pivot
		if t != 0 {
			for _, s := range e.ents {
				w[s.idx] -= s.val * t
			}
		}
		w[e.r] = t
	}
}

// btran solves Bᵀ·y = c for c in basis-position space (c[i] pairs with
// the basis column at position i), leaving y in matrix-row space. c is
// not modified.
//
//olive:hotpath inner simplex kernel
func (lu *basisLU) btran(c []float64, y []float64) {
	if lu.ftLive {
		lu.btranU(c, y)
		return
	}
	m := lu.m
	z := lu.zwork
	copy(z, c)
	// Eta file, reversed and transposed.
	for idx := len(lu.etas) - 1; idx >= 0; idx-- {
		e := &lu.etas[idx]
		s := z[e.r]
		for _, en := range e.ents {
			s -= en.val * z[en.idx]
		}
		z[e.r] = s / e.pivot
	}
	// Ūᵀ·v = c̄ (forward, scattering each resolved v[k] into later steps).
	v := lu.ywork
	for k := 0; k < m; k++ {
		v[k] = z[lu.pcol[k]]
	}
	for k := 0; k < m; k++ {
		v[k] /= lu.udiag[k]
		vk := v[k]
		if vk == 0 {
			continue
		}
		for t := lu.ustart[k]; t < lu.ustart[k+1]; t++ {
			v[lu.ucol[t]] -= lu.uval[t] * vk
		}
	}
	// L̄ᵀ·t = v (backward; ops of step k reference rows pivoted later, so
	// the in-place sweep reads only finalized values).
	for k := m - 1; k >= 0; k-- {
		s := v[k]
		for t := lu.lstart[k]; t < lu.lstart[k+1]; t++ {
			s -= lu.lmult[t] * v[lu.rowStep[lu.lrow[t]]]
		}
		v[k] = s
	}
	for k := 0; k < m; k++ {
		y[lu.prow[k]] = v[k]
	}
}

// nEtas reports how many pivot updates have accumulated since the last
// refactorization (product-form etas or Forrest–Tomlin row etas —
// exactly one kind is nonempty per factorization epoch).
func (lu *basisLU) nEtas() int { return len(lu.etas) + len(lu.ftEtas) }

// update appends the product-form eta for a pivot replacing basis
// position r, whose entering column has FTRAN image w. It reports
// whether the factorization is still healthy; false asks the caller to
// refactorize now (eta file full, or the pivot is weak relative to the
// spike and would poison every subsequent solve).
func (lu *basisLU) update(r int, w []float64) bool {
	if lu.ft {
		return lu.updateFT(r, w)
	}
	piv := w[r]
	maxw := 0.0
	n := 0
	for i, v := range w {
		if v == 0 {
			continue
		}
		if a := math.Abs(v); a > maxw {
			maxw = a
		}
		if i != r {
			n++
		}
	}
	ents := lu.entArena.take(n)
	for i, v := range w {
		if i != r && v != 0 {
			ents = append(ents, spEntry{i, v})
		}
	}
	lu.etas = append(lu.etas, eta{r: r, pivot: piv, ents: ents})
	return len(lu.etas) < maxEtas && math.Abs(piv) > etaWeakTol*maxw
}
