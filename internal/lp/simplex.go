package lp

import (
	"fmt"
	"math"
)

// variable status within the simplex
type vstat uint8

const (
	atLower vstat = iota
	atUpper
	basic
)

// simplex carries the working state of one solve.
type simplex struct {
	m int // rows

	cost   []float64 // phase-2 costs
	lo, up []float64
	cols   [][]Entry
	rhs    []float64

	nStruct int // structural column count
	nSlack  int // slack column count
	artBase int // first artificial column index

	slackOf []int // row → its slack column, or −1 (EQ rows)

	status []vstat
	basis  []int     // basis[i] = column basic at position i
	xB     []float64 // values of basic variables by position
	xN     []float64 // value of every column when nonbasic (its bound)

	lu *basisLU // sparse LU factorization of the basis + eta file

	ws *workspace // owning workspace; all scratch slices below live in it

	// reusable buffers
	ybuf  []float64 // duals, matrix-row space
	cbbuf []float64 // basic costs, position space
	rbuf  []float64 // rhs residual for xB recomputation

	iters   int
	refacts int // refactorization count, surfaced in Solution

	// ft selects Forrest–Tomlin basis updates (see ft.go) for every
	// factorization of this solve.
	ft bool

	// pricing state (see pricing.go)
	rule        PricingRule
	gamma       []float64 // Devex reference weights, one per column
	rhobuf      []float64 // BTRAN(e_r) pivot-row buffer, matrix-row space
	unitbuf     []float64 // unit-vector input for the pivot-row BTRAN
	scanCursor  int       // partial-pricing rotation cursor
	pscans      int       // nonbasic columns examined by pricing
	blandPivots int       // pivots taken under the Bland fallback

	// Row-wise matrix index for the Devex weight update: rowIdx[i]
	// lists the columns with a nonzero in row i, so the pivot-row pass
	// touches only the columns intersecting ρ's support instead of
	// every nonbasic column. Built lazily on the first Devex pivot,
	// extended incrementally as repair paths append artificials.
	rowIdx       [][]rowEnt
	rowIdxN      int       // columns indexed into rowIdx so far
	devexAcc     []float64 // scatter accumulator, column space (kept zeroed)
	devexTouched []int32   // columns dirtied in the current scatter
}

// rowEnt is one row-wise matrix entry: column index and coefficient.
type rowEnt struct {
	col  int32
	coef float64
}

// newSimplex builds the working state from a problem: GE rows normalized
// to LE by negation, slack columns appended, costs optionally perturbed.
// rowNeg records the per-row sign applied, for un-normalizing duals.
// All working arrays come from ws; columns untouched by GE negation
// alias the problem's own columns (the simplex never mutates entries).
func (p *Problem) newSimplex(perturb float64, ws *workspace) (*simplex, []float64) {
	m := len(p.rhs)
	s := &simplex{m: m, nStruct: p.numVars, ws: ws, ft: p.ForrestTomlin, rule: p.Pricing.resolve()}

	ws.rowNeg = growSlice(ws.rowNeg, m)
	rowNeg := ws.rowNeg
	anyGE := false
	s.rhs = ws.rhs[:0]
	for i, sense := range p.rowSense {
		if sense == GE {
			rowNeg[i] = -1
			anyGE = true
		} else {
			rowNeg[i] = 1
		}
		s.rhs = append(s.rhs, p.rhs[i]*rowNeg[i])
	}
	// Additive deterministic jitter scaled by the largest cost magnitude:
	// a relative (multiplicative) perturbation is a no-op on zero-cost
	// columns, which are exactly the tied columns that drive degenerate
	// pivot cycles, so it could never break the ties it was added for.
	jitterScale := 0.0
	if perturb != 0 {
		for _, c := range p.cost {
			if a := math.Abs(c); a > jitterScale {
				jitterScale = a
			}
		}
		if jitterScale == 0 {
			jitterScale = 1
		}
	}
	s.cols = ws.cols[:0]
	s.cost = ws.cost[:0]
	s.lo = ws.lo[:0]
	s.up = ws.up[:0]
	ws.colArena.reset()
	for j := 0; j < p.numVars; j++ {
		pc := p.cols[j]
		col := pc
		if anyGE {
			// Copy (sign-normalized) only the columns a GE row touches;
			// x·1 is bitwise x, so untouched columns alias safely.
			for _, e := range pc {
				if rowNeg[e.Row] < 0 {
					cc := ws.colArena.take(len(pc))
					for _, e := range pc {
						cc = append(cc, Entry{Row: e.Row, Coef: e.Coef * rowNeg[e.Row]})
					}
					col = cc
					break
				}
			}
		}
		s.cols = append(s.cols, col)
		cj := p.cost[j]
		if perturb != 0 {
			// Deterministic per-column jitter in (0, perturb·max|c|].
			h := uint64(j)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			cj += perturb * jitterScale * float64(h%(1<<20)+1) / (1 << 20)
		}
		s.cost = append(s.cost, cj)
		s.lo = append(s.lo, p.lo[j])
		s.up = append(s.up, p.up[j])
	}
	// Slack columns for (normalized) LE rows.
	for i, sense := range p.rowSense {
		if sense == EQ {
			continue
		}
		sc := ws.colArena.take(1)
		sc = append(sc, Entry{Row: i, Coef: 1})
		s.cols = append(s.cols, sc)
		s.cost = append(s.cost, 0)
		s.lo = append(s.lo, 0)
		s.up = append(s.up, math.Inf(1))
		s.nSlack++
	}
	s.artBase = len(s.cols)
	s.buildSlackOf()
	s.ybuf = growSlice(ws.ybuf, m)
	s.cbbuf = growSlice(ws.cbbuf, m)
	s.rbuf = growSlice(ws.rbuf, m)
	s.gamma = growSlice(ws.gamma, 0)
	s.rhobuf = growSlice(ws.rhobuf, m)
	s.unitbuf = growSlice(ws.unitbuf, m)
	// Row index rebuilds lazily per solve (see ensureRowIndex); reuse the
	// outer and inner slices, emptied.
	s.rowIdx = growSlice(ws.rowIdx, m)
	for i := range s.rowIdx {
		s.rowIdx[i] = s.rowIdx[i][:0]
	}
	s.rowIdxN = 0
	s.devexAcc = growSlice(ws.devexAcc, 0)
	s.devexTouched = growSlice(ws.devexTouched, 0)
	return s, rowNeg
}

func (s *simplex) buildSlackOf() {
	s.ws.slackOf = growSlice(s.ws.slackOf, s.m)
	s.slackOf = s.ws.slackOf
	for i := range s.slackOf {
		s.slackOf[i] = -1
	}
	for k := 0; k < s.nSlack; k++ {
		j := s.nStruct + k
		s.slackOf[s.cols[j][0].Row] = j
	}
}

// addArtificial appends an artificial unit column for the given row and
// returns its index. Initial-basis artificials carry the residual's sign
// and are free above zero (phase 1 drives them out); repair and
// warm-start artificials are pinned to zero so they can never re-enter
// the solution.
func (s *simplex) addArtificial(row int, coef, up float64) int {
	j := len(s.cols)
	s.cols = append(s.cols, []Entry{{Row: row, Coef: coef}})
	s.cost = append(s.cost, 0)
	s.lo = append(s.lo, 0)
	s.up = append(s.up, up)
	s.status = append(s.status, atLower)
	s.xN = append(s.xN, 0)
	return j
}

// initBasis builds the starting basis: slacks where feasible, artificials
// elsewhere, with all structural variables at their lower bound.
func (s *simplex) initBasis() error {
	s.status = growSlice(s.ws.status, len(s.cols))
	s.xN = growSlice(s.ws.xN, len(s.cols))
	for j := range s.cols {
		s.status[j] = atLower
		s.xN[j] = s.lo[j]
	}
	// Row activity with all structurals at bounds.
	s.ws.act = growSlice(s.ws.act, s.m)
	act := s.ws.act
	for i := range act {
		act[i] = 0
	}
	for j := 0; j < s.nStruct; j++ {
		if s.xN[j] != 0 {
			for _, e := range s.cols[j] {
				act[e.Row] += e.Coef * s.xN[j]
			}
		}
	}
	s.basis = growSlice(s.ws.basis, s.m)
	s.xB = growSlice(s.ws.xB, s.m)
	for i := 0; i < s.m; i++ {
		resid := s.rhs[i] - act[i]
		if sj := s.slackOf[i]; sj >= 0 && resid >= 0 {
			s.basis[i] = sj
			s.status[sj] = basic
			s.xB[i] = resid
			continue
		}
		// Artificial with coefficient matching the residual's sign so
		// its value is non-negative.
		coef := 1.0
		if resid < 0 {
			coef = -1
		}
		j := s.addArtificial(i, coef, math.Inf(1))
		s.status[j] = basic
		s.basis[i] = j
		s.xB[i] = math.Abs(resid)
	}
	return s.refactorize()
}

// initBasisFrom builds the starting state from a warm-start snapshot:
// statuses are applied where the snapshot covers them, rows and columns
// the snapshot predates get defaults (logical basic, at lower bound),
// the basic set is padded or trimmed to exactly m, factored with repair,
// and the resulting vertex is checked for primal feasibility. Any
// failure returns errWarmStart and the caller falls back to a cold
// solve.
func (s *simplex) initBasisFrom(b *Basis) error {
	s.status = growSlice(s.ws.status, len(s.cols))
	s.xN = growSlice(s.ws.xN, len(s.cols))
	basicList := make([]int, 0, s.m)
	for j := 0; j < s.nStruct; j++ {
		st := StatusLower
		if j < len(b.Vars) {
			st = b.Vars[j]
		}
		switch {
		case st == StatusBasic:
			s.status[j] = basic
			basicList = append(basicList, j)
		case st == StatusUpper && !math.IsInf(s.up[j], 1):
			s.status[j] = atUpper
			s.xN[j] = s.up[j]
		default:
			s.status[j] = atLower
			s.xN[j] = s.lo[j]
		}
	}
	for j := s.nStruct; j < len(s.cols); j++ {
		s.status[j] = atLower
		s.xN[j] = 0
	}
	// Row logicals: snapshot statuses where present; rows created after
	// the snapshot default to logical-basic (a fresh row's slack — or
	// degenerate artificial — is the only column that can cover it).
	covered := make([]bool, s.m)
	logicalOf := func(i int) int {
		if sj := s.slackOf[i]; sj >= 0 {
			return sj
		}
		return s.addArtificial(i, 1, 0)
	}
	for i := 0; i < s.m; i++ {
		if i < len(b.Rows) && b.Rows[i] != StatusBasic {
			continue
		}
		j := logicalOf(i)
		if s.status[j] != basic {
			s.status[j] = basic
			basicList = append(basicList, j)
		}
		covered[i] = true
	}
	// Pad with logicals of uncovered rows, trim surplus from the end;
	// factorization repair resolves any remaining mismatch.
	for i := 0; i < s.m && len(basicList) < s.m; i++ {
		if covered[i] {
			continue
		}
		j := logicalOf(i)
		if s.status[j] != basic {
			s.status[j] = basic
			basicList = append(basicList, j)
			covered[i] = true
		}
	}
	for len(basicList) > s.m {
		j := basicList[len(basicList)-1]
		basicList = basicList[:len(basicList)-1]
		s.status[j] = atLower
		s.xN[j] = s.lo[j]
	}
	if len(basicList) != s.m {
		return errWarmStart
	}
	s.basis = basicList
	s.xB = growSlice(s.ws.xB, s.m)
	for i := range s.xB {
		s.xB[i] = 0 // repair paths read xB before recomputeXB fills it
	}
	if err := s.refactorize(); err != nil {
		return errWarmStart
	}
	// The warm vertex must be primal feasible — the primal simplex has
	// no way to recover feasibility outside phase 1.
	for i, j := range s.basis {
		tol := feasTol * (1 + math.Abs(s.xB[i]))
		if s.xB[i] < s.lo[j]-tol || s.xB[i] > s.up[j]+tol {
			return errWarmStart
		}
	}
	return nil
}

// captureBasis snapshots the final statuses for warm starts.
func (s *simplex) captureBasis() *Basis {
	b := &Basis{Vars: make([]VarStatus, s.nStruct), Rows: make([]VarStatus, s.m)}
	for j := 0; j < s.nStruct; j++ {
		switch s.status[j] {
		case basic:
			b.Vars[j] = StatusBasic
		case atUpper:
			b.Vars[j] = StatusUpper
		default:
			b.Vars[j] = StatusLower
		}
	}
	for _, j := range s.basis {
		if j >= s.nStruct {
			b.Rows[s.cols[j][0].Row] = StatusBasic
		}
	}
	return b
}

func (s *simplex) needPhase1() bool {
	for j := s.artBase; j < len(s.cols); j++ {
		if s.status[j] == basic {
			return true
		}
	}
	return false
}

// objective evaluates cost·x at the current point.
func (s *simplex) objective(cost []float64) float64 {
	var obj float64
	s.ws.xbuf = growSlice(s.ws.xbuf, len(s.cols))
	x := s.primalInto(s.ws.xbuf)
	for j := range x {
		if j < len(cost) {
			obj += cost[j] * x[j]
		}
	}
	return obj
}

// primal assembles the full primal vector (freshly allocated: the head
// of the result escapes into Solution.X).
func (s *simplex) primal() []float64 {
	return s.primalInto(make([]float64, len(s.cols)))
}

func (s *simplex) primalInto(x []float64) []float64 {
	for j := range s.cols {
		if s.status[j] != basic {
			x[j] = s.xN[j]
		} else {
			x[j] = 0
		}
	}
	for i, j := range s.basis {
		x[j] = s.xB[i]
	}
	return x
}

// dualsInto computes y = c_B·B⁻¹ (BTRAN) into the given buffer.
func (s *simplex) dualsInto(cost []float64, y []float64) {
	cb := s.cbbuf
	for i, j := range s.basis {
		cb[i] = costOf(cost, j)
	}
	s.lu.btran(cb, y)
}

// reducedCost computes c_j − y·A_j.
func (s *simplex) reducedCost(cost []float64, y []float64, j int) float64 {
	d := costOf(cost, j)
	for _, e := range s.cols[j] {
		d -= y[e.Row] * e.Coef
	}
	return d
}

// refactorize rebuilds the LU factorization of the basis from scratch
// and recomputes the basic values, containing the drift that
// accumulates across eta updates. A rank-deficient basis is repaired —
// dependent columns are replaced by logical columns — instead of
// aborting; only a repair that cannot restore a feasible basis
// surfaces errSingular.
func (s *simplex) refactorize() error {
	s.refacts++
	repaired := false
	for attempt := 0; ; attempt++ {
		lu := s.ws.takeLU(s.lu)
		ok, depPos, depRows := factorBasis(&s.ws.fw, lu, s.m, s.cols, s.basis)
		if ok {
			lu.ft = s.ft
			s.lu = lu
			break
		}
		if attempt >= 2 {
			return errSingular
		}
		s.repairBasis(depPos, depRows)
		repaired = true
	}
	s.recomputeXB()
	if repaired {
		// Repair snapped ejected columns to their nearest bound; if the
		// repaired vertex is materially infeasible the repair failed and
		// the caller's perturbation retry takes over.
		const repairTol = 1e-6
		for i, j := range s.basis {
			tol := repairTol * (1 + math.Abs(s.xB[i]))
			if s.xB[i] < s.lo[j]-tol || s.xB[i] > s.up[j]+tol {
				return errSingular
			}
		}
	}
	return nil
}

// repairBasis replaces each dependent basis column with a logical
// (slack, or pinned-at-zero artificial) column of one of the unpivoted
// rows: the pivoted submatrix is nonsingular and unit columns on the
// remaining rows complete it. Ejected columns become nonbasic at their
// nearest bound — dependent columns arise from degenerate pivots, so
// they sit (numerically) on a bound already.
func (s *simplex) repairBasis(depPos, depRows []int) {
	for idx, pos := range depPos {
		row := depRows[idx]
		old := s.basis[pos]
		v := s.xB[pos]
		if math.IsInf(s.up[old], 1) || v-s.lo[old] <= s.up[old]-v {
			s.status[old] = atLower
			s.xN[old] = s.lo[old]
		} else {
			s.status[old] = atUpper
			s.xN[old] = s.up[old]
		}
		j := s.slackOf[row]
		if j < 0 || s.status[j] == basic {
			j = s.addArtificial(row, 1, 0)
		}
		s.basis[pos] = j
		s.status[j] = basic
	}
}

// recomputeXB solves B·x_B = b − N·x_N for the basic values.
func (s *simplex) recomputeXB() {
	resid := s.rbuf
	copy(resid, s.rhs)
	for j := range s.cols {
		if s.status[j] == basic || s.xN[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.Row] -= e.Coef * s.xN[j]
		}
	}
	s.lu.ftranDense(resid, s.xB)
}

// applyPivot folds one pivot into the factorization, refactorizing when
// the eta file is full or the update pivot is numerically weak.
func (s *simplex) applyPivot(leave int, w []float64) error {
	if !s.lu.update(leave, w) {
		return s.refactorize()
	}
	return nil
}

// iterate runs primal simplex pivots under the given cost vector until
// optimality, unboundedness, or the iteration cap.
func (s *simplex) iterate(cost []float64, maxIter int) (Status, error) {
	s.ws.wbuf = growSlice(s.ws.wbuf, s.m)
	w := s.ws.wbuf
	// Switch to Bland's rule after a degenerate streak long enough to
	// suggest cycling rather than ordinary degeneracy.
	blandAfter := 200 + (s.m+len(s.cols))/4
	degenerate := 0

	startIters := s.iters
	for {
		if s.iters >= maxIter {
			return 0, fmt.Errorf("%w (m=%d n=%d phaseIters=%d degenerateStreak=%d bland=%v)",
				ErrIterationLimit, s.m, len(s.cols), s.iters-startIters, degenerate, degenerate > blandAfter)
		}
		y := s.ybuf
		s.dualsInto(cost, y)

		// Pricing: Devex (default) or Dantzig per the problem's rule;
		// Bland's rule after a long degenerate streak to guarantee
		// termination (see pricing.go).
		var enter int
		var enterDir float64 // +1 entering rises from lower, −1 falls from upper
		useBland := degenerate > blandAfter
		if !useBland && s.rule == PricingDevex {
			s.ensureGamma()
		}
		if useBland {
			enter, enterDir = s.priceBland(cost, y)
		} else {
			enter, enterDir, _ = s.price(cost, y)
		}
		if enter < 0 {
			return Optimal, nil
		}

		s.lu.ftranCol(s.cols[enter], w)

		if useBland {
			// Strict Bland ratio test: exact limits, ties broken
			// by smallest basis column index. Together with
			// lowest-index pricing this guarantees termination.
			st, done, err := s.blandPivot(enter, enterDir, w, &degenerate)
			if err != nil {
				return 0, err
			}
			if done {
				return st, nil
			}
			continue
		}

		leave, leaveToUpper, tMax, unbounded := s.harrisRatio(enter, enterDir, w)
		if unbounded {
			return Unbounded, nil
		}
		// Weak-pivot guard: a pivot element far below the conditioning
		// threshold is, more often than not, eta-file drift rather than
		// the true matrix element — exactly how the dense inverse used
		// to absorb a dependent column and die at the next
		// refactorization. Refresh the factorization and re-run the
		// ratio test on the recomputed column before committing.
		if leave >= 0 && math.Abs(w[leave]) < weakPivot && s.lu.nEtas() > 0 {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			s.lu.ftranCol(s.cols[enter], w)
			leave, leaveToUpper, tMax, unbounded = s.harrisRatio(enter, enterDir, w)
			if unbounded {
				return Unbounded, nil
			}
		}
		if tMax < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}
		s.iters++

		// Apply the step to the basic values.
		if tMax > 0 {
			for i := 0; i < s.m; i++ {
				s.xB[i] -= enterDir * w[i] * tMax
			}
		}

		if leave < 0 {
			// Bound flip: entering variable jumps to its other bound.
			// The basis is unchanged, so Devex weights stay as they are.
			if enterDir > 0 {
				s.status[enter] = atUpper
				s.xN[enter] = s.up[enter]
			} else {
				s.status[enter] = atLower
				s.xN[enter] = s.lo[enter]
			}
			continue
		}

		if s.rule == PricingDevex {
			// Reference-weight update against the pre-pivot basis.
			s.devexUpdate(enter, leave, w)
		}

		// Pivot: enter replaces basis[leave].
		exiting := s.basis[leave]
		if leaveToUpper {
			s.status[exiting] = atUpper
			s.xN[exiting] = s.up[exiting]
		} else {
			s.status[exiting] = atLower
			s.xN[exiting] = s.lo[exiting]
		}
		enterVal := s.xN[enter] + enterDir*tMax
		s.basis[leave] = enter
		s.status[enter] = basic
		s.xB[leave] = enterVal

		if err := s.applyPivot(leave, w); err != nil {
			return 0, err
		}
	}
}

// harrisRatio is the Harris-style two-pass ratio test. The entering
// variable moves by t ≥ 0 in direction enterDir; basic variable i
// changes by −enterDir·w[i]·t. Pass 1 finds the exact minimum ratio;
// pass 2 picks, among rows tied (within numerical noise) at that
// minimum, the one with the largest pivot magnitude for numerical
// stability — widening the tie band once (trading a bounded,
// ≤ feasTol-scale ratio violation for basis conditioning) if the best
// tie pivot is numerically weak. Exact pass-1 limits (unlike a fully
// relaxed Harris pass 1) cannot accumulate row infeasibility across
// iterations, which previously caused stalling on the SLOTOFF master
// problems. leave < 0 with a finite tMax means a bound flip.
func (s *simplex) harrisRatio(enter int, enterDir float64, w []float64) (leave int, leaveToUpper bool, tMax float64, unbounded bool) {
	rmin := s.up[enter] - s.lo[enter] // bound-flip limit
	for i := 0; i < s.m; i++ {
		delta := -enterDir * w[i]
		bj := s.basis[i]
		var lim float64
		switch {
		case delta < -pivotTol: // basic value falls toward its lower bound
			lim = snapSlack(s.xB[i]-s.lo[bj]) / -delta
		case delta > pivotTol: // basic value rises toward its upper bound
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim = snapSlack(s.up[bj]-s.xB[i]) / delta
		default:
			continue
		}
		if lim < rmin {
			rmin = lim
		}
	}
	if math.IsInf(rmin, 1) {
		return -1, false, 0, true
	}
	leave = -1
	tMax = rmin
	bestPivot := 0.0
	for _, tieScale := range []float64{1e-9, 1e-7} {
		tie := rmin + tieScale*(1+rmin)
		for i := 0; i < s.m; i++ {
			delta := -enterDir * w[i]
			bj := s.basis[i]
			var lim float64
			var toUpper bool
			switch {
			case delta < -pivotTol:
				lim, toUpper = snapSlack(s.xB[i]-s.lo[bj])/-delta, false
			case delta > pivotTol:
				if math.IsInf(s.up[bj], 1) {
					continue
				}
				lim, toUpper = snapSlack(s.up[bj]-s.xB[i])/delta, true
			default:
				continue
			}
			if lim > tie {
				continue
			}
			if piv := math.Abs(delta); piv > bestPivot {
				bestPivot, leave, leaveToUpper = piv, i, toUpper
			}
		}
		if bestPivot >= weakPivot {
			break
		}
	}
	if tMax < 0 {
		tMax = 0
	}
	return leave, leaveToUpper, tMax, false
}

// blandPivot performs one simplex step with the exact (non-relaxed) ratio
// test and Bland tie-breaking (smallest basis column index), which — with
// lowest-index pricing — provably terminates on degenerate cycles.
// It returns (Unbounded, true, nil) if the step is unbounded.
func (s *simplex) blandPivot(enter int, enterDir float64, w []float64, degenerate *int) (Status, bool, error) {
	const tieTol = 1e-12
	// Pass 1: exact minimum ratio, including the entering variable's
	// own bound span.
	rmin := s.up[enter] - s.lo[enter]
	for i := 0; i < s.m; i++ {
		delta := -enterDir * w[i]
		bj := s.basis[i]
		var lim float64
		switch {
		case delta < -pivotTol:
			lim = snapSlack(s.xB[i]-s.lo[bj]) / -delta
		case delta > pivotTol:
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim = snapSlack(s.up[bj]-s.xB[i]) / delta
		default:
			continue
		}
		if lim < rmin {
			rmin = lim
		}
	}
	if math.IsInf(rmin, 1) {
		return Unbounded, true, nil
	}
	// Pass 2: among rows achieving the minimum, the smallest basis
	// column index leaves.
	leave := -1
	leaveToUpper := false
	for i := 0; i < s.m; i++ {
		delta := -enterDir * w[i]
		bj := s.basis[i]
		var lim float64
		var toUpper bool
		switch {
		case delta < -pivotTol:
			lim, toUpper = snapSlack(s.xB[i]-s.lo[bj])/-delta, false
		case delta > pivotTol:
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim, toUpper = snapSlack(s.up[bj]-s.xB[i])/delta, true
		default:
			continue
		}
		if lim <= rmin+tieTol && (leave < 0 || bj < s.basis[leave]) {
			leave, leaveToUpper = i, toUpper
		}
	}
	if rmin < feasTol {
		*degenerate++
	} else {
		*degenerate = 0
	}
	s.iters++
	s.blandPivots++
	if rmin > 0 {
		for i := 0; i < s.m; i++ {
			s.xB[i] -= enterDir * w[i] * rmin
		}
	}
	if leave < 0 {
		// Bound flip.
		if enterDir > 0 {
			s.status[enter] = atUpper
			s.xN[enter] = s.up[enter]
		} else {
			s.status[enter] = atLower
			s.xN[enter] = s.lo[enter]
		}
		return 0, false, nil
	}
	exiting := s.basis[leave]
	if leaveToUpper {
		s.status[exiting] = atUpper
		s.xN[exiting] = s.up[exiting]
	} else {
		s.status[exiting] = atLower
		s.xN[exiting] = s.lo[exiting]
	}
	s.basis[leave] = enter
	s.status[enter] = basic
	s.xB[leave] = s.xN[enter] + enterDir*rmin
	if err := s.applyPivot(leave, w); err != nil {
		return 0, false, err
	}
	return 0, false, nil
}

// costOf returns the phase cost of column j (0 for columns beyond the
// cost vector, i.e. artificials in phase 2).
func costOf(cost []float64, j int) float64 {
	if j < len(cost) {
		return cost[j]
	}
	return 0
}

// snapSlack treats a basic variable's distance to its bound as exactly
// zero when it is within the feasibility tolerance (including slightly
// negative from floating-point noise). Without the snap, noise-level
// slacks produce endless ~1e-9 micro-steps that never trip the degeneracy
// guard — the stall observed on the SLOTOFF master problems.
func snapSlack(d float64) float64 {
	if d < feasTol {
		return 0
	}
	return d
}
