package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Fixture serialization: a line-oriented text format that round-trips
// problems exactly (floats are stored as IEEE-754 bit patterns, with a
// human-readable decimal rendering alongside as a comment). It exists so
// that LPs which exposed solver bugs — like the Random100@1.4 seed-4
// master that triggered the singular-basis failure — can be committed
// under testdata/ and replayed as regression tests.
//
//	lp 1
//	rows <m>
//	row <LE|EQ|GE> <rhs-bits>
//	vars <n>
//	var <cost-bits> <lo-bits> <up-bits> <nnz> (<row> <coef-bits>)...
//
// Bit patterns are hexadecimal math.Float64bits values.

// Dump writes the problem in the fixture format.
func (p *Problem) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "lp 1")
	fmt.Fprintf(bw, "rows %d\n", len(p.rhs))
	for i, sense := range p.rowSense {
		fmt.Fprintf(bw, "row %s %016x # %g\n", senseName(sense), math.Float64bits(p.rhs[i]), p.rhs[i])
	}
	fmt.Fprintf(bw, "vars %d\n", p.numVars)
	for j := 0; j < p.numVars; j++ {
		fmt.Fprintf(bw, "var %016x %016x %016x %d", math.Float64bits(p.cost[j]),
			math.Float64bits(p.lo[j]), math.Float64bits(p.up[j]), len(p.cols[j]))
		for _, e := range p.cols[j] {
			fmt.Fprintf(bw, " %d %016x", e.Row, math.Float64bits(e.Coef))
		}
		fmt.Fprintf(bw, " # c=%g [%g,%g]\n", p.cost[j], p.lo[j], p.up[j])
	}
	return bw.Flush()
}

func senseName(s Sense) string {
	switch s {
	case LE:
		return "LE"
	case EQ:
		return "EQ"
	case GE:
		return "GE"
	}
	return fmt.Sprintf("sense(%d)", int(s))
}

// Load reads a problem written by Dump.
func Load(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			line++
			text := sc.Text()
			if i := strings.IndexByte(text, '#'); i >= 0 {
				text = text[:i]
			}
			f := strings.Fields(text)
			if len(f) > 0 {
				return f, nil
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("lp: fixture truncated at line %d", line)
	}
	bits := func(s string) (float64, error) {
		u, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return 0, fmt.Errorf("lp: fixture line %d: bad float bits %q", line, s)
		}
		return math.Float64frombits(u), nil
	}

	f, err := next()
	if err != nil {
		return nil, err
	}
	if len(f) != 2 || f[0] != "lp" || f[1] != "1" {
		return nil, fmt.Errorf("lp: fixture line %d: want header \"lp 1\", got %q", line, strings.Join(f, " "))
	}
	if f, err = next(); err != nil {
		return nil, err
	}
	if len(f) != 2 || f[0] != "rows" {
		return nil, fmt.Errorf("lp: fixture line %d: want \"rows <m>\"", line)
	}
	m, err := strconv.Atoi(f[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("lp: fixture line %d: bad row count %q", line, f[1])
	}
	p := NewProblem()
	for i := 0; i < m; i++ {
		if f, err = next(); err != nil {
			return nil, err
		}
		if len(f) != 3 || f[0] != "row" {
			return nil, fmt.Errorf("lp: fixture line %d: want \"row <sense> <rhs>\"", line)
		}
		var sense Sense
		switch f[1] {
		case "LE":
			sense = LE
		case "EQ":
			sense = EQ
		case "GE":
			sense = GE
		default:
			return nil, fmt.Errorf("lp: fixture line %d: unknown sense %q", line, f[1])
		}
		rhs, err := bits(f[2])
		if err != nil {
			return nil, err
		}
		p.AddRow(sense, rhs)
	}
	if f, err = next(); err != nil {
		return nil, err
	}
	if len(f) != 2 || f[0] != "vars" {
		return nil, fmt.Errorf("lp: fixture line %d: want \"vars <n>\"", line)
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("lp: fixture line %d: bad var count %q", line, f[1])
	}
	for j := 0; j < n; j++ {
		if f, err = next(); err != nil {
			return nil, err
		}
		if len(f) < 5 || f[0] != "var" {
			return nil, fmt.Errorf("lp: fixture line %d: want \"var <cost> <lo> <up> <nnz> ...\"", line)
		}
		cost, err := bits(f[1])
		if err != nil {
			return nil, err
		}
		lo, err := bits(f[2])
		if err != nil {
			return nil, err
		}
		up, err := bits(f[3])
		if err != nil {
			return nil, err
		}
		nnz, err := strconv.Atoi(f[4])
		if err != nil || nnz < 0 || len(f) != 5+2*nnz {
			return nil, fmt.Errorf("lp: fixture line %d: bad entry count", line)
		}
		entries := make([]Entry, 0, nnz)
		for k := 0; k < nnz; k++ {
			row, err := strconv.Atoi(f[5+2*k])
			if err != nil {
				return nil, fmt.Errorf("lp: fixture line %d: bad row index %q", line, f[5+2*k])
			}
			coef, err := bits(f[6+2*k])
			if err != nil {
				return nil, err
			}
			entries = append(entries, Entry{Row: row, Coef: coef})
		}
		if _, err := p.AddVar(cost, lo, up, entries); err != nil {
			return nil, fmt.Errorf("lp: fixture line %d: %w", line, err)
		}
	}
	return p, nil
}
