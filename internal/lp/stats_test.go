package lp

import (
	"math"
	"testing"
)

// smallLP builds a 2-row problem with a nontrivial optimum:
// max-ish structure expressed as min −x−y s.t. x+y ≤ 4, x ≤ 3.
func smallLP(t *testing.T) *Problem {
	t.Helper()
	p := NewProblem()
	r1 := p.AddRow(LE, 4)
	r2 := p.AddRow(LE, 3)
	p.MustAddVar(-1, 0, math.Inf(1), []Entry{{Row: r1, Coef: 1}, {Row: r2, Coef: 1}})
	p.MustAddVar(-1, 0, math.Inf(1), []Entry{{Row: r1, Coef: 1}})
	return p
}

// TestSolveCountersAndHook checks the always-on counters and the solve
// hook across a cold solve and a warm re-solve. Counters are process
// globals, so the test asserts deltas, not absolutes.
func TestSolveCountersAndHook(t *testing.T) {
	var hooked []SolveStats
	SetSolveHook(func(s SolveStats) { hooked = append(hooked, s) })
	defer SetSolveHook(nil)

	before := Stats()
	p := smallLP(t)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold solve: %v %v", sol, err)
	}
	if sol.WarmStarted {
		t.Fatal("cold solve reported WarmStarted")
	}
	if sol.Refactorizations < 1 {
		t.Fatalf("Refactorizations = %d, want ≥ 1 (initBasis factors once)", sol.Refactorizations)
	}
	mid := Stats()
	if mid.Solves != before.Solves+1 {
		t.Fatalf("Solves delta = %d, want 1", mid.Solves-before.Solves)
	}
	if mid.Pivots-before.Pivots != int64(sol.Iterations) {
		t.Fatalf("Pivots delta = %d, want %d", mid.Pivots-before.Pivots, sol.Iterations)
	}
	if mid.Refactorizations-before.Refactorizations != int64(sol.Refactorizations) {
		t.Fatalf("Refactorizations delta = %d, want %d",
			mid.Refactorizations-before.Refactorizations, sol.Refactorizations)
	}
	if mid.WarmAttempts != before.WarmAttempts || mid.WarmHits != before.WarmHits {
		t.Fatal("cold solve moved the warm counters")
	}

	warmSol, err := p.SolveFrom(sol.Basis())
	if err != nil || warmSol.Status != Optimal {
		t.Fatalf("warm solve: %v %v", warmSol, err)
	}
	if !warmSol.WarmStarted {
		t.Fatal("re-solve from the optimal basis did not warm-start")
	}
	after := Stats()
	if after.WarmAttempts != mid.WarmAttempts+1 || after.WarmHits != mid.WarmHits+1 {
		t.Fatalf("warm counters delta = attempts %d hits %d, want 1 and 1",
			after.WarmAttempts-mid.WarmAttempts, after.WarmHits-mid.WarmHits)
	}
	if after.Solves != mid.Solves+1 {
		t.Fatalf("Solves delta = %d, want 1", after.Solves-mid.Solves)
	}

	if len(hooked) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(hooked))
	}
	if hooked[0].WarmStarted || !hooked[1].WarmStarted {
		t.Fatalf("hook warm flags = %v/%v, want false/true", hooked[0].WarmStarted, hooked[1].WarmStarted)
	}
	if hooked[0].Pivots != sol.Iterations || hooked[0].Refactorizations != sol.Refactorizations {
		t.Fatalf("hook stats %+v disagree with solution %d/%d", hooked[0], sol.Iterations, sol.Refactorizations)
	}

	// A nil basis goes straight to the cold path: no warm attempt.
	if _, err := p.SolveFrom(nil); err != nil {
		t.Fatal(err)
	}
	if got := Stats().WarmAttempts; got != after.WarmAttempts {
		t.Fatalf("SolveFrom(nil) moved WarmAttempts to %d", got)
	}
}
