package lp

import (
	"sync"
	"sync/atomic"
)

// Solve-workspace machinery. A Problem owns (at most) one workspace —
// the scratch memory of a simplex solve plus the factorization buffers —
// handed out atomically so concurrent Solve calls on one Problem stay
// safe (the loser of the swap simply allocates a fresh workspace). The
// repeated-solve paths this repo lives on — column-generation rounds,
// SLOTOFF per-slot re-optimizations, warm-started serve solves — reuse
// every buffer, so a steady-state solve allocates only its Solution.
//
// Everything here is allocation plumbing only: values written through
// reused buffers are bit-identical to the fresh-allocation code this
// replaces (reused memory is always fully overwritten, or explicitly
// zeroed where the old code relied on make's zeroing).

// growSlice returns b resized to length n, reusing its backing array
// when capacity allows. Contents beyond the old length are undefined —
// callers overwrite or zero as needed. Old contents (slice headers of
// inner scratch slices, notably) are preserved so nested buffers keep
// their capacity across grows.
func growSlice[T any](b []T, n int) []T {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]T, n, n+n/2)
	copy(nb, b)
	return nb
}

// arena is a bump allocator for slices of T. take returns a zero-length
// slice with the requested capacity; reset recycles the block (sizing it
// to the previous round's total on overflow, so a steady-state round is
// a single block and zero allocations). Blocks abandoned by a mid-round
// grow stay reachable through the slices carved from them.
type arena[T any] struct {
	buf  []T
	off  int
	used int
}

func (a *arena[T]) reset() {
	if a.used > len(a.buf) {
		a.buf = make([]T, a.used+a.used/2)
	}
	a.off, a.used = 0, 0
}

func (a *arena[T]) take(n int) []T {
	a.used += n
	if a.off+n > len(a.buf) {
		sz := 2 * len(a.buf)
		if sz < n {
			sz = n
		}
		if sz < 1024 {
			sz = 1024
		}
		a.buf = make([]T, sz)
		a.off = 0
	}
	s := a.buf[a.off : a.off : a.off+n]
	a.off += n
	return s
}

// luWorkspace holds factorBasis's scratch memory, reused across
// refactorizations.
type luWorkspace struct {
	rows      [][]spEntry
	rowArena  arena[spEntry]
	rowActive []bool
	colActive []bool
	colRows   [][]int
	colMax    []float64
	colCnt    []int
	rowCnt    []int
	preCnt    []int
	seen      []int
	uposcol   []int
	colStep   []int
}

// workspace is the full per-solve scratch state. All slices are reused
// via growSlice; the two basisLU slots ping-pong so a refactorization
// can build the replacement factorization without disturbing the live
// one (which repair paths still read on failure).
type workspace struct {
	rhs, cost, lo, up []float64
	rowNeg            []float64
	cols              [][]Entry
	colArena          arena[Entry]
	status            []vstat
	xN, xB, act       []float64
	basis             []int
	slackOf           []int
	ybuf, cbbuf, rbuf []float64
	wbuf              []float64
	phase1Cost        []float64
	xbuf              []float64
	gamma             []float64
	rhobuf, unitbuf   []float64
	rowIdx            [][]rowEnt
	devexAcc          []float64
	devexTouched      []int32
	fw                luWorkspace
	lus               [2]*basisLU
}

// takeLU returns a basisLU slot distinct from cur, for refactorize to
// rebuild into.
func (ws *workspace) takeLU(cur *basisLU) *basisLU {
	for i := range ws.lus {
		if ws.lus[i] == nil {
			ws.lus[i] = new(basisLU)
		}
		if ws.lus[i] != cur {
			return ws.lus[i]
		}
	}
	return new(basisLU)
}

// reclaim stores the (possibly grown) solve buffers back into the
// workspace after a solve finishes, so the next solve reuses them.
func (ws *workspace) reclaim(s *simplex) {
	ws.rhs, ws.cost, ws.lo, ws.up = s.rhs, s.cost, s.lo, s.up
	ws.cols = s.cols
	ws.status = s.status
	ws.xN, ws.xB = s.xN, s.xB
	ws.basis = s.basis
	ws.slackOf = s.slackOf
	ws.ybuf, ws.cbbuf, ws.rbuf = s.ybuf, s.cbbuf, s.rbuf
	ws.gamma = s.gamma
	ws.rhobuf, ws.unitbuf = s.rhobuf, s.unitbuf
	ws.rowIdx = s.rowIdx
	ws.devexAcc, ws.devexTouched = s.devexAcc, s.devexTouched
}

// wsPool recycles workspaces across Problem lifetimes. Short-lived
// problems (one column-generation master per plan build) otherwise pay
// the arena/buffer warm-up ladder from scratch every time; a pooled
// workspace arrives with its blocks already grown. Solutions never alias
// workspace memory (X, Dual and the basis snapshot are copied out), so
// recycling is invisible to callers.
var wsPool sync.Pool

// wsCache pins a single released workspace with a strong reference.
// sync.Pool alone loses its contents to any GC cycle, and a plan build
// allocates enough to trigger several — so back-to-back builds would
// each re-pay the warm-up despite the pool. One retained workspace (a
// few MB at the problem sizes of this repo) is the bounded price of
// making reuse reliable; overflow still goes through the pool.
var wsCache atomic.Pointer[workspace]

// takeWS claims the problem's workspace, a cached/pooled one, or a fresh
// one if another solve holds the problem's.
func (p *Problem) takeWS() *workspace {
	if ws := p.ws.Swap(nil); ws != nil {
		return ws
	}
	if ws := wsCache.Swap(nil); ws != nil {
		return ws
	}
	if ws, ok := wsPool.Get().(*workspace); ok {
		return ws
	}
	return &workspace{}
}

// putWS returns a workspace for the next solve.
func (p *Problem) putWS(ws *workspace) { p.ws.Store(ws) }

// ReleaseWorkspace hands the problem's solve workspace back to a shared
// cache for other Problems to reuse. Call it when the problem will not
// be solved again (e.g. a column-generation master going out of scope);
// the problem remains usable — a later solve simply re-acquires scratch
// memory from the cache.
func (p *Problem) ReleaseWorkspace() {
	ws := p.ws.Swap(nil)
	if ws == nil {
		return
	}
	if wsCache.CompareAndSwap(nil, ws) {
		return
	}
	wsPool.Put(ws)
}
