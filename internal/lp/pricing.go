package lp

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// Pricing rules for the primal simplex. The pricing rule decides which
// nonbasic column enters the basis each iteration; it never affects
// which points are optimal, only how many pivots (and how much pricing
// work per pivot) the solve spends reaching one. On degenerate problems
// different rules land on different — equally optimal — vertices, the
// same contract as the Forrest–Tomlin update scheme.

// PricingRule selects the simplex entering-column rule.
type PricingRule int

const (
	// PricingDefault — the zero value — resolves to the package default
	// rule at solve time (Devex, unless SetPricing or OLIVE_LP_PRICING
	// says otherwise), so a zero Problem or Options field always means
	// "whatever the process is configured for".
	PricingDefault PricingRule = iota
	// PricingDevex is the default: approximate steepest-edge pricing
	// with reference weights (Forrest–Goldfarb Devex), combined with
	// partial pricing — each iteration scans a rotating section of the
	// nonbasic columns instead of all of them. Devex weights make the
	// chosen column a good ratio of objective gain to step distortion,
	// which is what cuts the pivot count versus Dantzig; partial
	// pricing cuts the per-iteration scan cost on wide problems.
	PricingDevex
	// PricingDantzig is the textbook most-negative-reduced-cost rule
	// with a full scan every iteration — the ablation baseline; the
	// scan itself is unchanged from the pre-Devex solver (solver-wide
	// output can still differ from older releases, e.g. the final
	// refactorization now certifies duals under either rule).
	PricingDantzig
)

// String returns the rule name as used in metric labels.
func (r PricingRule) String() string {
	switch r {
	case PricingDefault:
		return "default"
	case PricingDevex:
		return "devex"
	case PricingDantzig:
		return "dantzig"
	default:
		return fmt.Sprintf("pricing(%d)", int(r))
	}
}

// pricingDefault is what PricingDefault resolves to; settable via
// SetPricing or the OLIVE_LP_PRICING environment variable (the
// golden-isolation ablation switch, mirroring OLIVE_LP_FT).
var pricingDefault atomic.Int32

func init() {
	if os.Getenv("OLIVE_LP_PRICING") == "dantzig" { //olive:wallclock ablation knob, read once at init; documented in CONTRIBUTING
		pricingDefault.Store(int32(PricingDantzig))
	}
}

// SetPricing switches the rule PricingDefault resolves to, so harnesses
// can flip the whole pipeline (plan builds, SLOTOFF, serve solves)
// without threading an option through every layer.
func SetPricing(r PricingRule) { pricingDefault.Store(int32(r)) }

// resolve maps PricingDefault to the configured process-wide rule.
func (r PricingRule) resolve() PricingRule {
	if r == PricingDefault {
		r = PricingRule(pricingDefault.Load())
		if r == PricingDefault {
			r = PricingDevex
		}
	}
	return r
}

// Devex and partial-pricing policy.
const (
	// devexResetWeight triggers a reference-framework reset: once the
	// entering column's weight grows past it the weights no longer
	// resemble the steepest-edge norms they approximate, and restarting
	// from the current basis (all weights 1) is the standard fix.
	devexResetWeight = 1e6
	// pricingSections divides the column range into rotating sections;
	// a Devex iteration stops scanning at the end of the first section
	// that yields an improving candidate. On the seed-4 fixture the
	// ~256-column sections this yields beat both full-scan Devex and
	// coarser splits on pivots AND scans — the rotation also acts as a
	// cheap perturbation on degenerate ties.
	pricingSections = 32
	// pricingMinSection keeps sections from degenerating on narrow
	// problems — below it, every iteration scans all columns and
	// partial pricing is a no-op.
	pricingMinSection = 256
)

// ensureGamma extends the Devex weight array to cover every column
// (repair paths append artificial columns mid-solve), initializing new
// entries to the reference weight 1.
func (s *simplex) ensureGamma() {
	for len(s.gamma) < len(s.cols) {
		s.gamma = append(s.gamma, 1)
	}
}

// devexReset restarts the reference framework at the current basis.
func (s *simplex) devexReset() {
	for i := range s.gamma {
		s.gamma[i] = 1
	}
}

// price selects the entering column under the problem's pricing rule,
// returning enter = −1 at (pricing-rule) optimality. enterDir is +1 for
// a column rising from its lower bound, −1 for one falling from its
// upper bound; enterRC is the column's reduced cost.
//
// Under PricingDantzig the scan is the textbook full pass: every
// nonbasic column, most negative (scale-adjusted) reduced cost wins.
// Under PricingDevex the scan starts at a cursor that rotates across
// calls and proceeds section by section, stopping at the end of the
// first section containing an improving candidate; the winner maximizes
// d²/γ over the scanned improving set. Optimality is declared only
// after a full wrap finds no improving column, so partial pricing never
// weakens the optimality certificate.
func (s *simplex) price(cost, y []float64) (enter int, enterDir, enterRC float64) {
	n := len(s.cols)
	devex := s.rule == PricingDevex
	sect := n
	start := 0
	if devex {
		sect = n/pricingSections + 1
		if sect < pricingMinSection {
			sect = pricingMinSection
		}
		if s.scanCursor < n {
			start = s.scanCursor
		}
	}
	enter = -1
	bestScore := 0.0
	off := 0
	for off < n {
		lim := off + sect
		if lim > n {
			lim = n
		}
		for ; off < lim; off++ {
			j := start + off
			if j >= n {
				j -= n
			}
			if s.status[j] == basic {
				continue
			}
			// Scale-aware optimality tolerance: with objective
			// coefficients spanning many orders of magnitude (the
			// PLAN-VNE costs reach 1e8), an absolute cutoff chases
			// floating-point phantoms in c_j − y·A_j forever.
			tol := dualTol * (1 + math.Abs(costOf(cost, j)))
			var d, dir float64
			switch s.status[j] {
			case atLower:
				d = s.reducedCost(cost, y, j)
				if !(d < -tol && s.lo[j] < s.up[j]) {
					continue
				}
				dir = 1
			case atUpper:
				d = s.reducedCost(cost, y, j)
				if !(d > tol) {
					continue
				}
				dir = -1
			default:
				continue
			}
			score := d * d
			if devex {
				score /= s.gamma[j]
			} else {
				score = math.Abs(d)
			}
			if score > bestScore {
				bestScore = score
				enter, enterDir, enterRC = j, dir, d
			}
		}
		if enter >= 0 {
			break
		}
	}
	s.pscans += off
	if devex {
		cur := start + off
		if cur >= n {
			cur -= n
		}
		s.scanCursor = cur
	}
	return enter, enterDir, enterRC
}

// priceBland is the anti-cycling fallback: lowest-index improving
// column, full scan — unchanged from the pre-Devex solver, and still
// what guarantees termination on degenerate streaks.
func (s *simplex) priceBland(cost, y []float64) (enter int, enterDir float64) {
	for j := 0; j < len(s.cols); j++ {
		if s.status[j] == basic {
			continue
		}
		tol := dualTol * (1 + math.Abs(costOf(cost, j)))
		switch s.status[j] {
		case atLower:
			if d := s.reducedCost(cost, y, j); d < -tol && s.lo[j] < s.up[j] {
				s.pscans += j + 1
				return j, 1
			}
		case atUpper:
			if d := s.reducedCost(cost, y, j); d > tol {
				s.pscans += j + 1
				return j, -1
			}
		}
	}
	s.pscans += len(s.cols)
	return -1, 0
}

// ensureRowIndex extends the row-wise matrix index to cover every
// column (repair paths append artificial columns mid-solve). The index
// turns the devexUpdate pivot-row pass from "sparse dot per nonbasic
// column" — O(total nnz) per pivot, a full Dantzig scan's worth — into
// a scatter over only the columns intersecting ρ's support.
func (s *simplex) ensureRowIndex() {
	for j := s.rowIdxN; j < len(s.cols); j++ {
		for _, e := range s.cols[j] {
			s.rowIdx[e.Row] = append(s.rowIdx[e.Row], rowEnt{col: int32(j), coef: e.Coef})
		}
	}
	s.rowIdxN = len(s.cols)
}

// devexDropTol discards pivot-row entries too small to ever move a
// reference weight past an existing one; ρ rows under it contribute
// (αρ)² ≈ 0 to every candidate weight.
const devexDropTol = 1e-12

// devexUpdate folds one basis-changing pivot into the reference
// weights: entering column enter (FTRAN image w) replaces the basis
// column at position leave. The classic update needs the pivot row
// α_r = e_rᵀB⁻¹A — one BTRAN of a unit vector, then a row-indexed
// scatter restricted to ρ's nonzero rows:
//
//	γ_j  ← max(γ_j, (α_rj/α_rq)²·γ_q)   for nonbasic j
//	γ_x  ← max(γ_q/α_rq², 1)            for the leaving column x
//
// Called with the pre-pivot basis and statuses (B is the matrix the
// pivot row belongs to); the caller mutates them afterwards.
func (s *simplex) devexUpdate(enter, leave int, w []float64) {
	s.ensureGamma()
	alphaQ := w[leave]
	if math.Abs(alphaQ) < pivotTol {
		return
	}
	gq := s.gamma[enter]
	if gq < 1 {
		gq = 1
	}
	if gq > devexResetWeight {
		s.devexReset()
		return
	}
	// rho = e_leave·B⁻¹ in matrix-row space.
	unit := s.unitbuf
	for i := range unit {
		unit[i] = 0
	}
	unit[leave] = 1
	rho := s.rhobuf
	s.lu.btran(unit, rho)
	exiting := s.basis[leave]
	scale := gq / (alphaQ * alphaQ)
	s.ensureRowIndex()
	// Scatter α_rj = Σ_i ρ_i·A_ij over ρ's support. acc stays zeroed
	// between calls; touched remembers what to reset (a column whose
	// partial sums cancel to exactly 0 may be recorded twice — the
	// second reset pass is then a no-op).
	if len(s.devexAcc) < len(s.cols) {
		s.devexAcc = growSlice(s.devexAcc, len(s.cols))
		for i := range s.devexAcc {
			s.devexAcc[i] = 0
		}
	}
	acc := s.devexAcc
	touched := s.devexTouched[:0]
	for i := 0; i < s.m; i++ {
		r := rho[i]
		if r > -devexDropTol && r < devexDropTol {
			continue
		}
		for _, re := range s.rowIdx[i] {
			if acc[re.col] == 0 {
				touched = append(touched, re.col)
			}
			acc[re.col] += r * re.coef
		}
	}
	for _, j32 := range touched {
		j := int(j32)
		arj := acc[j]
		acc[j] = 0
		if arj == 0 || s.status[j] == basic || j == enter {
			continue
		}
		if cand := arj * arj * scale; cand > s.gamma[j] {
			s.gamma[j] = cand
		}
	}
	s.devexTouched = touched
	gx := scale
	if gx < 1 {
		gx = 1
	}
	s.gamma[exiting] = gx
}
