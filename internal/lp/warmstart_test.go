package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestWarmStartFromOptimumNeedsNoPivots re-solves from the final basis
// of an identical problem: the warm vertex is already optimal, so the
// simplex must terminate without a single pivot.
func TestWarmStartFromOptimumNeedsNoPivots(t *testing.T) {
	p := NewProblem()
	r1 := p.AddRow(LE, 4)
	r2 := p.AddRow(LE, 12)
	r3 := p.AddRow(LE, 18)
	mustVar(t, p, -3, 0, math.Inf(1), []Entry{{r1, 1}, {r3, 3}})
	mustVar(t, p, -5, 0, math.Inf(1), []Entry{{r2, 2}, {r3, 2}})
	cold := solveOptimal(t, p)
	if cold.Basis() == nil {
		t.Fatal("optimal solution has no basis snapshot")
	}
	warm, err := p.SolveFrom(cold.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status = %v", warm.Status)
	}
	if warm.Iterations != 0 {
		t.Fatalf("warm solve took %d pivots from its own optimal basis, want 0", warm.Iterations)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("warm obj %g != cold obj %g", warm.Obj, cold.Obj)
	}
}

// TestWarmStartAcrossColumnGeneration mimics a Dantzig–Wolfe round: new
// columns (and the capacity rows they touch) appear after the snapshot.
// The warm solve must reach the same optimum as a cold solve, in fewer
// pivots.
func TestWarmStartAcrossColumnGeneration(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	p := NewProblem()
	const mCap, classes = 25, 12
	caps := make([]int, mCap)
	for i := range caps {
		caps[i] = p.AddRow(LE, 40+10*rng.Float64())
	}
	conv := make([]int, classes)
	for i := range conv {
		conv[i] = p.AddRow(EQ, 1)
	}
	addCol := func(ci int, cost float64) {
		entries := []Entry{{conv[ci], 1}}
		for k := 0; k < 4; k++ {
			entries = append(entries, Entry{caps[rng.IntN(mCap)], 1 + 5*rng.Float64()})
		}
		p.MustAddVar(cost, 0, 1, entries)
	}
	for ci := 0; ci < classes; ci++ {
		// Rejection-style column keeps every round feasible.
		p.MustAddVar(1e4, 0, 1, []Entry{{conv[ci], 1}})
		for k := 0; k < 3; k++ {
			addCol(ci, 100*(1+rng.Float64()))
		}
	}
	sol := solveOptimal(t, p)

	// A pricing round: a few improving columns per class, one touching a
	// brand-new row.
	newRow := p.AddRow(LE, 30)
	for ci := 0; ci < classes; ci++ {
		addCol(ci, 50*(1+rng.Float64()))
	}
	p.MustAddVar(40, 0, 1, []Entry{{conv[0], 1}, {newRow, 2}})

	coldSol := solveOptimal(t, p)
	warmSol, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if warmSol.Status != Optimal {
		t.Fatalf("warm status = %v", warmSol.Status)
	}
	if rel := math.Abs(warmSol.Obj-coldSol.Obj) / (1 + math.Abs(coldSol.Obj)); rel > 1e-8 {
		t.Fatalf("warm obj %g != cold obj %g", warmSol.Obj, coldSol.Obj)
	}
	if warmSol.Iterations >= coldSol.Iterations {
		t.Fatalf("warm start did not save pivots: warm %d, cold %d", warmSol.Iterations, coldSol.Iterations)
	}
	t.Logf("cold %d pivots, warm %d", coldSol.Iterations, warmSol.Iterations)
}

// TestWarmStartGarbageBasisFallsBack feeds SolveFrom snapshots that
// cannot seed a feasible basis; the solve must silently fall back to a
// cold start and still return the right answer.
func TestWarmStartGarbageBasisFallsBack(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		r := p.AddRow(GE, 5)
		p.MustAddVar(1, 0, math.Inf(1), []Entry{{r, 1}})
		p.MustAddVar(2, 0, math.Inf(1), []Entry{{r, 1}})
		return p
	}
	for name, b := range map[string]*Basis{
		"nil":            nil,
		"empty":          {},
		"all basic":      {Vars: []VarStatus{StatusBasic, StatusBasic}, Rows: []VarStatus{StatusBasic}},
		"all nonbasic":   {Vars: []VarStatus{StatusLower, StatusLower}, Rows: []VarStatus{StatusLower}},
		"upper infinite": {Vars: []VarStatus{StatusUpper, StatusUpper}, Rows: []VarStatus{StatusBasic}},
		"oversized":      {Vars: []VarStatus{StatusBasic, StatusBasic, StatusBasic, StatusBasic}, Rows: []VarStatus{StatusBasic, StatusBasic, StatusBasic}},
	} {
		p := build()
		sol, err := p.SolveFrom(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != Optimal || math.Abs(sol.Obj-5) > 1e-8 {
			t.Fatalf("%s: status %v obj %g, want optimal 5", name, sol.Status, sol.Obj)
		}
	}
}

// TestWarmStartDoesNotMutateProblem guards SolveFrom's reuse contract.
func TestWarmStartDoesNotMutateProblem(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 1)
	mustVar(t, p, -1, 0, 1, []Entry{{r, 1}})
	first := solveOptimal(t, p)
	for i := 0; i < 3; i++ {
		again, err := p.SolveFrom(first.Basis())
		if err != nil {
			t.Fatal(err)
		}
		if again.Obj != first.Obj {
			t.Fatalf("solve %d differs: %g vs %g", i, again.Obj, first.Obj)
		}
	}
}

// TestWarmStartInfeasibleAfterBoundTightening: the snapshot's vertex is
// no longer feasible once bounds move; SolveFrom must detect it and
// fall back rather than "optimize" from an infeasible point.
func TestWarmStartInfeasibleAfterBoundTightening(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 10)
	x := p.MustAddVar(-1, 0, 8, []Entry{{r, 1}})
	sol := solveOptimal(t, p)
	if math.Abs(sol.X[x]-8) > 1e-9 {
		t.Fatalf("x = %g, want 8", sol.X[x])
	}
	// Rebuild with a tighter row so the remembered vertex (x basic at 8,
	// slack 2) is infeasible.
	q := NewProblem()
	rq := q.AddRow(LE, 3)
	q.MustAddVar(-1, 0, 8, []Entry{{rq, 1}})
	warm, err := q.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || math.Abs(warm.Obj-(-3)) > 1e-8 {
		t.Fatalf("status %v obj %g, want optimal -3", warm.Status, warm.Obj)
	}
}
