package lp

import (
	"bytes"
	"compress/gzip"
	"os"
	"testing"
)

// FuzzLPLoad fuzzes the fixture parser. Two properties:
//
//   - Load never panics, whatever the bytes (malformed fixtures must
//     come back as errors — a committed regression LP is replayed by
//     tests and CI, and a corrupt one must fail loudly, not crash).
//   - Dump is a canonical form: any problem Load accepts re-dumps to a
//     byte sequence that reloads to the identical dump (a fixed point),
//     so fixtures round-trip exactly — the property the bit-pattern
//     float encoding exists to provide.
func FuzzLPLoad(f *testing.F) {
	// Seed: a canonical dump exercising all senses, bounds and
	// multi-entry columns.
	p := NewProblem()
	p.AddRow(LE, 14)
	p.AddRow(EQ, 3)
	p.AddRow(GE, -0.5)
	if _, err := p.AddVar(2.5, 0, 10, []Entry{{Row: 0, Coef: 1}, {Row: 1, Coef: -2}}); err != nil {
		f.Fatal(err)
	}
	if _, err := p.AddVar(1e8, 0, 1, []Entry{{Row: 2, Coef: 0.5}}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Dump(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Seed: the committed singular-basis regression fixture.
	if raw, err := os.ReadFile("../../testdata/lp/random100-u140-seed4.lp.gz"); err == nil {
		if zr, err := gzip.NewReader(bytes.NewReader(raw)); err == nil {
			var fx bytes.Buffer
			if _, err := fx.ReadFrom(zr); err == nil {
				f.Add(fx.Bytes())
			}
		}
	}

	// Seeds: malformed shapes the parser must reject gracefully.
	for _, s := range []string{
		"",
		"lp 1\nrows 0\nvars 0\n",
		"lp 2\n",
		"lp 1\nrows 1\nrow LE zzzz\n",
		"lp 1\nrows -1\n",
		"lp 1\nrows 1\nrow XX 0000000000000000\n",
		"lp 1\nrows 0\nvars 1\nvar 0 0 0 3 0 0\n",
		"lp 1\nrows 1\nrow GE 4010000000000000\nvars 1\nvar 0 0 3ff0000000000000 1 99 4000000000000000\n",
		"lp 1\nrows 1\nrow LE 0000000000000000 # comment\n\nvars 0\n",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		var d1 bytes.Buffer
		if err := p.Dump(&d1); err != nil {
			t.Fatalf("Dump after successful Load: %v", err)
		}
		p2, err := Load(bytes.NewReader(d1.Bytes()))
		if err != nil {
			t.Fatalf("reloading canonical dump: %v\ndump:\n%s", err, d1.Bytes())
		}
		var d2 bytes.Buffer
		if err := p2.Dump(&d2); err != nil {
			t.Fatalf("second Dump: %v", err)
		}
		if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
			t.Fatalf("Dump/Load is not a fixed point:\n--- first dump\n%s\n--- second dump\n%s",
				d1.Bytes(), d2.Bytes())
		}
	})
}
