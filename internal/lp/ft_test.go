package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randBasisCols builds m random sparse columns forming (almost surely)
// a nonsingular basis: a shuffled diagonal plus random off-diagonal
// noise.
func randBasisCols(m int, rng *rand.Rand) [][]Entry {
	cols := make([][]Entry, m)
	perm := rng.Perm(m)
	for j := 0; j < m; j++ {
		col := []Entry{{Row: perm[j], Coef: 1 + rng.Float64()*4}}
		for _, i := range rng.Perm(m)[:rng.IntN(3)] {
			if i != perm[j] {
				col = append(col, Entry{Row: i, Coef: rng.Float64()*2 - 1})
			}
		}
		cols[j] = col
	}
	return cols
}

// TestForrestTomlinUpdateEquivalence drives random column-replacement
// sequences through FT updates and checks every FTRAN/BTRAN against a
// fresh factorization of the updated basis.
func TestForrestTomlinUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const tol = 1e-8
	for trial := 0; trial < 60; trial++ {
		m := 3 + rng.IntN(18)
		cols := randBasisCols(m, rng)
		basis := make([]int, m)
		for i := range basis {
			basis[i] = i
		}
		var fw luWorkspace
		lu := new(basisLU)
		if ok, _, _ := factorBasis(&fw, lu, m, cols, basis); !ok {
			continue // singular draw; skip
		}
		lu.ft = true

		w := make([]float64, m)
		wRef := make([]float64, m)
		y := make([]float64, m)
		yRef := make([]float64, m)
		cb := make([]float64, m)
		for upd := 0; upd < 10; upd++ {
			// Replace a random basis position with a fresh random column.
			r := rng.IntN(m)
			newCol := []Entry{{Row: rng.IntN(m), Coef: 1 + rng.Float64()*4}}
			for _, i := range rng.Perm(m)[:rng.IntN(3)] {
				if i != newCol[0].Row {
					newCol = append(newCol, Entry{Row: i, Coef: rng.Float64()*2 - 1})
				}
			}
			lu.ftranCol(newCol, w)
			if !lu.updateFT(r, w) {
				break // weak pivot: a refactorization would take over
			}
			cols = append(cols, newCol)
			basis[r] = len(cols) - 1

			// Reference: factor the updated basis from scratch.
			ref := new(basisLU)
			if ok, _, _ := factorBasis(&fw, ref, m, cols, basis); !ok {
				break
			}
			// FTRAN equivalence on a random sparse column.
			probe := []Entry{{Row: rng.IntN(m), Coef: rng.Float64()*4 - 2}, {Row: rng.IntN(m), Coef: rng.Float64()*4 - 2}}
			lu.ftranCol(probe, w)
			ref.ftranCol(probe, wRef)
			for i := 0; i < m; i++ {
				if d := math.Abs(w[i] - wRef[i]); d > tol*(1+math.Abs(wRef[i])) {
					t.Fatalf("trial %d update %d: FTRAN mismatch at %d: %g vs %g", trial, upd, i, w[i], wRef[i])
				}
			}
			// BTRAN equivalence on a random cost vector.
			for i := range cb {
				cb[i] = rng.Float64()*2 - 1
			}
			lu.btran(cb, y)
			ref.btran(cb, yRef)
			for i := 0; i < m; i++ {
				if d := math.Abs(y[i] - yRef[i]); d > tol*(1+math.Abs(yRef[i])) {
					t.Fatalf("trial %d update %d: BTRAN mismatch at %d: %g vs %g", trial, upd, i, y[i], yRef[i])
				}
			}
		}
	}
}

// randomLP builds a feasible random LP: minimize c·x s.t. Ax ≤ b with
// b ≥ 0 (x = 0 feasible) and mixed-sign costs, plus a few GE/EQ rows to
// exercise normalization and phase 1.
func randomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	m := 2 + rng.IntN(8)
	n := 2 + rng.IntN(12)
	for i := 0; i < m; i++ {
		p.AddRow(LE, 1+rng.Float64()*9)
	}
	for j := 0; j < n; j++ {
		var ents []Entry
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.4 {
				ents = append(ents, Entry{Row: i, Coef: rng.Float64() * 3})
			}
		}
		up := math.Inf(1)
		if rng.Float64() < 0.3 {
			up = 1 + rng.Float64()*3
		}
		p.MustAddVar(rng.Float64()*4-2, 0, up, ents)
	}
	return p
}

// TestForrestTomlinSolveEquivalence solves random LPs under both update
// schemes; statuses must agree and optimal objectives must match to
// solver tolerance (optimal vertices may legitimately differ on
// degenerate problems).
func TestForrestTomlinSolveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	solved := 0
	for trial := 0; trial < 200; trial++ {
		p := randomLP(rng)
		p.ForrestTomlin = false
		solPFI, errPFI := p.Solve()
		p.ForrestTomlin = true
		solFT, errFT := p.Solve()
		if (errPFI == nil) != (errFT == nil) {
			t.Fatalf("trial %d: error mismatch: pfi=%v ft=%v", trial, errPFI, errFT)
		}
		if errPFI != nil {
			continue
		}
		if solPFI.Status != solFT.Status {
			t.Fatalf("trial %d: status mismatch: pfi=%v ft=%v", trial, solPFI.Status, solFT.Status)
		}
		if solPFI.Status != Optimal {
			continue
		}
		solved++
		if d := math.Abs(solPFI.Obj - solFT.Obj); d > 1e-7*(1+math.Abs(solPFI.Obj)) {
			t.Fatalf("trial %d: objective mismatch: pfi=%g ft=%g (Δ=%g)", trial, solPFI.Obj, solFT.Obj, d)
		}
	}
	if solved < 100 {
		t.Fatalf("only %d/200 trials reached optimality; generator too degenerate to be meaningful", solved)
	}
}

// TestForrestTomlinWarmStart exercises SolveFrom under FT: a warm
// restart from the previous optimal basis must reproduce the optimum.
func TestForrestTomlinWarmStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 5))
	for trial := 0; trial < 50; trial++ {
		p := randomLP(rng)
		p.ForrestTomlin = true
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			continue
		}
		sol2, err := p.SolveFrom(sol.Basis())
		if err != nil {
			t.Fatalf("trial %d: warm resolve: %v", trial, err)
		}
		if sol2.Status != Optimal {
			t.Fatalf("trial %d: warm resolve status %v", trial, sol2.Status)
		}
		if d := math.Abs(sol.Obj - sol2.Obj); d > 1e-9*(1+math.Abs(sol.Obj)) {
			t.Fatalf("trial %d: warm objective drift %g vs %g", trial, sol.Obj, sol2.Obj)
		}
	}
}
