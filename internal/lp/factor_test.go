package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestJitterPerturbsZeroCostColumns pins the retry perturbation's shape:
// it must be additive and scaled by max|c|, because the old relative
// (multiplicative) jitter was a no-op on zero-cost columns — exactly the
// tied columns that produce the degenerate pivots the retry exists to
// break.
func TestJitterPerturbsZeroCostColumns(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 1)
	conv := p.AddRow(EQ, 1)
	for i := 0; i < 6; i++ {
		p.MustAddVar(0, 0, 1, []Entry{{r, 1}, {conv, 1}}) // identical zero-cost tie
	}
	s, _ := p.newSimplex(1e-10, &workspace{})
	seen := make(map[float64]bool)
	for j := 0; j < p.NumVars(); j++ {
		if s.cost[j] == 0 {
			t.Fatalf("column %d: perturbed cost still exactly zero — jitter cannot break zero-cost ties", j)
		}
		if seen[s.cost[j]] {
			t.Errorf("columns share perturbed cost %g — ties survive the jitter", s.cost[j])
		}
		seen[s.cost[j]] = true
	}
	// And the all-zero-cost degenerate instance solves under perturbation
	// with its true (unperturbed) objective of zero.
	sol, err := p.solveOnce(1e-10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Obj != 0 {
		t.Fatalf("obj = %g, want exactly 0: Obj must be computed from true costs, not perturbed ones", sol.Obj)
	}
}

// TestJitterScalesWithCostMagnitude: with costs of magnitude ~1e8 the
// jitter must stay proportional (≈1e-10·1e8 = 1e-2 absolute) so it can
// actually move reduced costs of that scale.
func TestJitterScalesWithCostMagnitude(t *testing.T) {
	p := NewProblem()
	r := p.AddRow(LE, 1)
	p.MustAddVar(1e8, 0, 1, []Entry{{r, 1}})
	p.MustAddVar(0, 0, 1, []Entry{{r, 1}})
	s, _ := p.newSimplex(1e-10, &workspace{})
	d := s.cost[1] // jitter on the zero-cost column
	if d <= 0 || d > 1e-10*1e8*1.01 {
		t.Fatalf("zero-cost column jitter %g outside (0, ~1e-2]", d)
	}
}

// randomBasis builds a random sparse nonsingular-ish column set for
// factorization tests: a permuted diagonal (guaranteed nonsingular)
// plus random off-diagonal fill.
func randomBasis(rng *rand.Rand, m int) ([][]Entry, []int) {
	perm := rng.Perm(m)
	cols := make([][]Entry, m)
	basis := make([]int, m)
	for pos := 0; pos < m; pos++ {
		col := []Entry{{Row: perm[pos], Coef: 1 + rng.Float64()}}
		for k := 0; k < 2; k++ {
			if rng.Float64() < 0.5 {
				col = append(col, Entry{Row: rng.IntN(m), Coef: rng.Float64()*2 - 1})
			}
		}
		// Dedup rows (AddVar-style columns have unique rows).
		seen := map[int]bool{}
		ded := col[:0]
		for _, e := range col {
			if !seen[e.Row] {
				seen[e.Row] = true
				ded = append(ded, e)
			}
		}
		cols[pos] = ded
		basis[pos] = pos
	}
	return cols, basis
}

// TestFactorBasisSolves cross-checks FTRAN/BTRAN against direct
// matrix-vector products on random sparse bases, including after a
// sequence of eta updates.
func TestFactorBasisSolves(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.IntN(40)
		cols, basis := randomBasis(rng, m)
		lu := new(basisLU)
		var fw luWorkspace
		ok, dep, _ := factorBasis(&fw, lu, m, cols, basis)
		if !ok {
			t.Fatalf("trial %d: spurious dependency report %v", trial, dep)
		}
		mulB := func(w []float64) []float64 { // B·w in row space
			out := make([]float64, m)
			for pos, j := range basis {
				for _, e := range cols[j] {
					out[e.Row] += e.Coef * w[pos]
				}
			}
			return out
		}
		mulBT := func(y []float64) []float64 { // Bᵀ·y in position space
			out := make([]float64, m)
			for pos, j := range basis {
				for _, e := range cols[j] {
					out[pos] += e.Coef * y[e.Row]
				}
			}
			return out
		}
		checkClose := func(kind string, got, want []float64) {
			t.Helper()
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d m=%d: %s[%d] = %g, want %g", trial, m, kind, i, got[i], want[i])
				}
			}
		}
		// FTRAN against a random structural-style column.
		a := []Entry{{Row: rng.IntN(m), Coef: 1 + rng.Float64()}}
		w := make([]float64, m)
		lu.ftranCol(a, w)
		bw := mulB(w)
		want := make([]float64, m)
		for _, e := range a {
			want[e.Row] = e.Coef
		}
		checkClose("B·ftran(a)", bw, want)
		// BTRAN against a random cost vector.
		cb := make([]float64, m)
		for i := range cb {
			cb[i] = rng.Float64()*2 - 1
		}
		y := make([]float64, m)
		lu.btran(cb, y)
		checkClose("Bᵀ·btran(c)", mulBT(y), cb)
		// A couple of eta updates, then re-check both directions.
		for u := 0; u < 3; u++ {
			pos := rng.IntN(m)
			newCol := []Entry{{Row: rng.IntN(m), Coef: 2 + rng.Float64()}, {Row: rng.IntN(m), Coef: rng.Float64()}}
			seen := map[int]bool{}
			ded := newCol[:0]
			for _, e := range newCol {
				if !seen[e.Row] {
					seen[e.Row] = true
					ded = append(ded, e)
				}
			}
			newCol = ded
			lu.ftranCol(newCol, w)
			if math.Abs(w[pos]) < 1e-6 {
				continue // would make the basis near-singular; not this test's business
			}
			cols = append(cols, newCol)
			basis[pos] = len(cols) - 1
			lu.update(pos, w)
			lu.ftranCol(a, w)
			checkClose("post-eta B·ftran(a)", mulB(w), want)
			lu.btran(cb, y)
			checkClose("post-eta Bᵀ·btran(c)", mulBT(y), cb)
		}
	}
}

// TestFactorBasisReportsDependency: duplicated and zero columns must be
// reported (aligned with the rows left unpivoted), not silently factored.
func TestFactorBasisReportsDependency(t *testing.T) {
	// B = [e0+e1, e0+e1, e2]: positions 0 and 1 are dependent.
	cols := [][]Entry{
		{{Row: 0, Coef: 1}, {Row: 1, Coef: 1}},
		{{Row: 0, Coef: 1}, {Row: 1, Coef: 1}},
		{{Row: 2, Coef: 1}},
	}
	var fw luWorkspace
	ok, depPos, depRows := factorBasis(&fw, new(basisLU), 3, cols, []int{0, 1, 2})
	if ok {
		t.Fatal("dependent basis factored without complaint")
	}
	if len(depPos) != 1 || len(depRows) != 1 {
		t.Fatalf("dependency report: positions %v rows %v, want one of each", depPos, depRows)
	}
	if depPos[0] != 0 && depPos[0] != 1 {
		t.Fatalf("dependent position %d, want 0 or 1", depPos[0])
	}
	if depRows[0] != 0 && depRows[0] != 1 {
		t.Fatalf("unpivoted row %d, want 0 or 1", depRows[0])
	}

	// An all-zero column: same story.
	cols = [][]Entry{{{Row: 0, Coef: 1}}, nil, {{Row: 2, Coef: 1}}}
	ok, depPos, depRows = factorBasis(&fw, new(basisLU), 3, cols, []int{0, 1, 2})
	if ok {
		t.Fatal("zero column factored without complaint")
	}
	if len(depPos) != 1 || depPos[0] != 1 || len(depRows) != 1 || depRows[0] != 1 {
		t.Fatalf("dependency report: positions %v rows %v, want [1] [1]", depPos, depRows)
	}
}

// TestRepairRecoversSingularBasis drives the simplex-level repair: a
// warm-start snapshot that declares two dependent columns basic must be
// repaired (or rejected) — never crash, never return a wrong optimum.
func TestRepairRecoversSingularBasis(t *testing.T) {
	p := NewProblem()
	r1 := p.AddRow(LE, 4)
	r2 := p.AddRow(LE, 6)
	// Two identical columns: any basis holding both is singular.
	p.MustAddVar(-1, 0, 10, []Entry{{r1, 1}, {r2, 1}})
	p.MustAddVar(-1, 0, 10, []Entry{{r1, 1}, {r2, 1}})
	b := &Basis{Vars: []VarStatus{StatusBasic, StatusBasic}, Rows: []VarStatus{StatusLower, StatusLower}}
	sol, err := p.SolveFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-(-4)) > 1e-8 {
		t.Fatalf("status %v obj %g, want optimal -4", sol.Status, sol.Obj)
	}
}
