// Package lp implements a sparse linear-programming solver — a two-phase
// revised primal simplex with bounded variables and a dense basis inverse.
// It stands in for the CPLEX solver used in the paper (DESIGN.md §3): it
// solves the PLAN-VNE relaxation (Fig. 4) and the per-slot offline
// instances of the SLOTOFF baseline, and exposes dual prices so the plan
// builder can run Dantzig–Wolfe column generation.
//
// Problems are stated as
//
//	minimize    cᵀx
//	subject to  Ax {≤,=,≥} b   (per-row sense)
//	            lo ≤ x ≤ up    (per-variable bounds, up may be +Inf)
//
// The solver is exact up to floating-point tolerances and is sized for the
// instances of this reproduction (hundreds of rows, thousands of columns).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a row's constraint sense.
type Sense int

// Row senses.
const (
	LE Sense = iota + 1 // Σ aᵢxᵢ ≤ b
	EQ                  // Σ aᵢxᵢ = b
	GE                  // Σ aᵢxᵢ ≥ b
)

// Entry is one nonzero coefficient of a column.
type Entry struct {
	Row  int
	Coef float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is an LP under construction. The zero value is unusable; call
// NewProblem.
type Problem struct {
	rowSense []Sense
	rhs      []float64

	cost    []float64
	lo, up  []float64
	cols    [][]Entry
	numVars int
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddRow appends a constraint row and returns its index.
func (p *Problem) AddRow(sense Sense, rhs float64) int {
	p.rowSense = append(p.rowSense, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rhs) - 1
}

// AddVar appends a variable with the given objective cost, bounds and
// sparse column, returning its index. Bounds must satisfy lo ≤ up, lo
// finite; up may be +Inf. Entries must reference existing rows.
func (p *Problem) AddVar(cost, lo, up float64, entries []Entry) (int, error) {
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(up) || lo > up {
		return 0, fmt.Errorf("lp: invalid bounds [%g,%g]", lo, up)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= len(p.rhs) {
			return 0, fmt.Errorf("lp: entry references row %d of %d", e.Row, len(p.rhs))
		}
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	p.cols = append(p.cols, append([]Entry(nil), entries...))
	p.numVars++
	return p.numVars - 1, nil
}

// MustAddVar is AddVar that panics on error, for construction code whose
// indices are correct by construction.
func (p *Problem) MustAddVar(cost, lo, up float64, entries []Entry) int {
	v, err := p.AddVar(cost, lo, up, entries)
	if err != nil {
		panic(err)
	}
	return v
}

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rhs) }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// Obj is the objective value (meaningful only when Status==Optimal).
	Obj float64
	// X holds the primal values of the structural variables.
	X []float64
	// Dual holds one simplex multiplier per row (y = c_B·B⁻¹). At
	// optimality the reduced cost c_j − y·A_j of every structural
	// column is ≥ −tol for variables at lower bound; column generation
	// prices new columns against these values.
	Dual []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// numerical tolerances
const (
	dualTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum pivot magnitude
	feasTol  = 1e-7 // primal feasibility tolerance
)

const maxIterFactor = 200 // iteration cap: maxIterFactor · (m + n)

// ErrIterationLimit is returned when the simplex exceeds its iteration
// budget — in practice a symptom of severe degeneracy or numerical
// trouble.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// variable status within the simplex
type vstat uint8

const (
	atLower vstat = iota
	atUpper
	basic
)

// simplex carries the working state of one solve.
type simplex struct {
	m int // rows
	n int // total columns (structural + slack + artificial)

	cost   []float64 // phase-2 costs
	lo, up []float64
	cols   [][]Entry
	rhs    []float64

	nStruct int // structural column count
	nSlack  int // slack column count
	artBase int // first artificial column index

	status []vstat
	basis  []int     // basis[i] = column basic in row i
	xB     []float64 // values of basic variables
	xN     []float64 // value of every column when nonbasic (its bound)
	binv   []float64 // dense m×m basis inverse, row-major

	iters int
}

// Solve runs the two-phase simplex and returns the solution. The problem
// may be reused (Solve does not mutate it). If the basis degenerates into
// numerical singularity, the solve is retried once with a deterministic
// relative cost perturbation of ~1e-10, which breaks the tie pattern that
// led there while moving the optimum negligibly.
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.solveOnce(0)
	if err != nil && errors.Is(err, errSingular) {
		sol, err = p.solveOnce(1e-10)
	}
	return sol, err
}

// errSingular marks an unrecoverable-by-iteration basis state.
var errSingular = errors.New("lp: singular basis during refactorization")

// weakPivot is the magnitude below which a pivot is considered a threat to
// basis conditioning.
const weakPivot = 1e-7

func (p *Problem) solveOnce(perturb float64) (*Solution, error) {
	m := len(p.rhs)
	if m == 0 || p.numVars == 0 {
		return nil, errors.New("lp: empty problem")
	}
	s := &simplex{m: m, nStruct: p.numVars}

	// Copy structural columns; normalize GE rows to LE by negation.
	rowNeg := make([]float64, m)
	for i, sense := range p.rowSense {
		if sense == GE {
			rowNeg[i] = -1
		} else {
			rowNeg[i] = 1
		}
		s.rhs = append(s.rhs, p.rhs[i]*rowNeg[i])
	}
	for j := 0; j < p.numVars; j++ {
		col := make([]Entry, len(p.cols[j]))
		for k, e := range p.cols[j] {
			col[k] = Entry{Row: e.Row, Coef: e.Coef * rowNeg[e.Row]}
		}
		s.cols = append(s.cols, col)
		cj := p.cost[j]
		if perturb != 0 {
			// Deterministic per-column jitter in [0, perturb).
			h := uint64(j)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			cj *= 1 + perturb*float64(h%1024)/1024
		}
		s.cost = append(s.cost, cj)
		s.lo = append(s.lo, p.lo[j])
		s.up = append(s.up, p.up[j])
	}
	// Slack columns for (normalized) LE rows.
	for i, sense := range p.rowSense {
		if sense == EQ {
			continue
		}
		s.cols = append(s.cols, []Entry{{Row: i, Coef: 1}})
		s.cost = append(s.cost, 0)
		s.lo = append(s.lo, 0)
		s.up = append(s.up, math.Inf(1))
		s.nSlack++
	}
	s.artBase = len(s.cols)

	if err := s.initBasis(); err != nil {
		return nil, err
	}

	maxIter := maxIterFactor * (s.m + len(s.cols))

	// Phase 1: minimize artificial mass if any artificial is nonzero.
	if s.needPhase1() {
		phase1Cost := make([]float64, len(s.cols))
		for j := s.artBase; j < len(s.cols); j++ {
			phase1Cost[j] = 1
		}
		st, err := s.iterate(phase1Cost, maxIter)
		if err != nil {
			return nil, fmt.Errorf("lp: phase 1: %w", err)
		}
		if st == Unbounded {
			return nil, errors.New("lp: phase 1 unbounded (internal error)")
		}
		if s.objective(phase1Cost) > feasTol*float64(s.m) {
			return &Solution{Status: Infeasible, Iterations: s.iters}, nil
		}
		// Freeze artificials at zero for phase 2.
		for j := s.artBase; j < len(s.cols); j++ {
			s.up[j] = 0
		}
	}

	st, err := s.iterate(s.cost, maxIter)
	if err != nil {
		return nil, fmt.Errorf("lp: phase 2: %w", err)
	}
	sol := &Solution{Status: st, Iterations: s.iters}
	if st != Optimal {
		return sol, nil
	}
	x := s.primal()
	sol.X = x[:s.nStruct]
	sol.Obj = 0
	for j := 0; j < s.nStruct; j++ {
		sol.Obj += p.cost[j] * sol.X[j]
	}
	y := s.duals(s.cost)
	sol.Dual = make([]float64, m)
	for i := range y {
		sol.Dual[i] = y[i] * rowNeg[i]
	}
	return sol, nil
}

// initBasis builds the starting basis: slacks where feasible, artificials
// elsewhere, with all structural variables at their lower bound.
func (s *simplex) initBasis() error {
	s.status = make([]vstat, len(s.cols))
	s.xN = make([]float64, len(s.cols))
	for j := range s.cols {
		s.status[j] = atLower
		s.xN[j] = s.lo[j]
	}
	// Row activity with all structurals at bounds.
	act := make([]float64, s.m)
	for j := 0; j < s.nStruct; j++ {
		if s.xN[j] != 0 {
			for _, e := range s.cols[j] {
				act[e.Row] += e.Coef * s.xN[j]
			}
		}
	}
	s.basis = make([]int, s.m)
	s.xB = make([]float64, s.m)
	// Map slack columns to their rows.
	slackOf := make([]int, s.m)
	for i := range slackOf {
		slackOf[i] = -1
	}
	for k := 0; k < s.nSlack; k++ {
		j := s.nStruct + k
		slackOf[s.cols[j][0].Row] = j
	}
	for i := 0; i < s.m; i++ {
		resid := s.rhs[i] - act[i]
		if sj := slackOf[i]; sj >= 0 && resid >= 0 {
			s.basis[i] = sj
			s.status[sj] = basic
			s.xB[i] = resid
			continue
		}
		// Artificial with coefficient matching the residual's sign so
		// its value is non-negative.
		coef := 1.0
		if resid < 0 {
			coef = -1
		}
		j := len(s.cols)
		s.cols = append(s.cols, []Entry{{Row: i, Coef: coef}})
		s.cost = append(s.cost, 0)
		s.lo = append(s.lo, 0)
		s.up = append(s.up, math.Inf(1))
		s.status = append(s.status, basic)
		s.xN = append(s.xN, 0)
		s.basis[i] = j
		s.xB[i] = math.Abs(resid)
	}
	// Basis inverse: diagonal of ±1 (slack/artificial coefficients).
	s.binv = make([]float64, s.m*s.m)
	for i := 0; i < s.m; i++ {
		col := s.cols[s.basis[i]][0]
		s.binv[i*s.m+i] = 1 / col.Coef
	}
	return nil
}

func (s *simplex) needPhase1() bool {
	for j := s.artBase; j < len(s.cols); j++ {
		if s.status[j] == basic {
			return true
		}
	}
	return false
}

// objective evaluates cost·x at the current point.
func (s *simplex) objective(cost []float64) float64 {
	var obj float64
	x := s.primal()
	for j := range x {
		if j < len(cost) {
			obj += cost[j] * x[j]
		}
	}
	return obj
}

// primal assembles the full primal vector.
func (s *simplex) primal() []float64 {
	x := make([]float64, len(s.cols))
	for j := range s.cols {
		if s.status[j] != basic {
			x[j] = s.xN[j]
		}
	}
	for i, j := range s.basis {
		x[j] = s.xB[i]
	}
	return x
}

// duals returns y = c_B · B⁻¹ for the given cost vector.
func (s *simplex) duals(cost []float64) []float64 {
	y := make([]float64, s.m)
	for i, j := range s.basis {
		cb := 0.0
		if j < len(cost) {
			cb = cost[j]
		}
		if cb == 0 {
			continue
		}
		row := s.binv[i*s.m : (i+1)*s.m]
		for k, v := range row {
			y[k] += cb * v
		}
	}
	return y
}

// reducedCost computes c_j − y·A_j.
func (s *simplex) reducedCost(cost []float64, y []float64, j int) float64 {
	d := 0.0
	if j < len(cost) {
		d = cost[j]
	}
	for _, e := range s.cols[j] {
		d -= y[e.Row] * e.Coef
	}
	return d
}

// ftran computes w = B⁻¹·A_j.
func (s *simplex) ftran(j int, w []float64) {
	for i := range w {
		w[i] = 0
	}
	for _, e := range s.cols[j] {
		coef := e.Coef
		for i := 0; i < s.m; i++ {
			w[i] += s.binv[i*s.m+e.Row] * coef
		}
	}
}

// iterate runs primal simplex pivots under the given cost vector until
// optimality, unboundedness, or the iteration cap.
func (s *simplex) iterate(cost []float64, maxIter int) (Status, error) {
	w := make([]float64, s.m)
	// Switch to Bland's rule after a degenerate streak long enough to
	// suggest cycling rather than ordinary degeneracy.
	blandAfter := 200 + (s.m+len(s.cols))/4
	degenerate := 0
	sinceRefactor := 0

	startIters := s.iters
	for {
		if s.iters >= maxIter {
			return 0, fmt.Errorf("%w (m=%d n=%d phaseIters=%d degenerateStreak=%d bland=%v)",
				ErrIterationLimit, s.m, len(s.cols), s.iters-startIters, degenerate, degenerate > blandAfter)
		}
		y := s.duals(cost)

		// Pricing: Dantzig rule; Bland's rule after a long
		// degenerate streak to guarantee termination.
		enter := -1
		var enterDir float64 // +1 entering rises from lower, −1 falls from upper
		useBland := degenerate > blandAfter
		best := 0.0
		for j := 0; j < len(s.cols); j++ {
			if s.status[j] == basic {
				continue
			}
			// Scale-aware optimality tolerance: with objective
			// coefficients spanning many orders of magnitude (the
			// PLAN-VNE costs reach 1e8), an absolute cutoff chases
			// floating-point phantoms in c_j − y·A_j forever.
			tol := dualTol * (1 + math.Abs(costOf(cost, j)))
			switch s.status[j] {
			case atLower:
				d := s.reducedCost(cost, y, j)
				if d < -tol && s.lo[j] < s.up[j] {
					if useBland {
						enter, enterDir = j, 1
					} else if -d > best {
						best, enter, enterDir = -d, j, 1
					}
				}
			case atUpper:
				d := s.reducedCost(cost, y, j)
				if d > tol {
					if useBland {
						enter, enterDir = j, -1
					} else if d > best {
						best, enter, enterDir = d, j, -1
					}
				}
			}
			if useBland && enter >= 0 {
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		s.ftran(enter, w)

		if useBland {
			// Strict Bland ratio test: exact limits, ties broken
			// by smallest basis column index. Together with
			// lowest-index pricing this guarantees termination.
			st, done := s.blandPivot(enter, enterDir, w, &degenerate)
			if done {
				return st, nil
			}
			sinceRefactor++
			if sinceRefactor >= 100 {
				if err := s.refactorize(); err != nil {
					return 0, err
				}
				sinceRefactor = 0
			}
			continue
		}

		// Exact two-pass ratio test. The entering variable moves by
		// t ≥ 0 in direction enterDir; basic variable i changes by
		// −enterDir·w[i]·t. Pass 1 finds the exact minimum ratio;
		// pass 2 picks, among rows tied (within numerical noise) at
		// that minimum, the one with the largest pivot magnitude for
		// numerical stability. Unlike a Harris test with a relaxed
		// pass 1, exact limits cannot accumulate row infeasibility
		// across iterations (which previously caused stalling on the
		// SLOTOFF master problems).
		tBound := s.up[enter] - s.lo[enter] // bound-flip limit
		rmin := tBound
		for i := 0; i < s.m; i++ {
			delta := -enterDir * w[i]
			bj := s.basis[i]
			var lim float64
			switch {
			case delta < -pivotTol: // basic value falls toward its lower bound
				lim = snapSlack(s.xB[i]-s.lo[bj]) / -delta
			case delta > pivotTol: // basic value rises toward its upper bound
				if math.IsInf(s.up[bj], 1) {
					continue
				}
				lim = snapSlack(s.up[bj]-s.xB[i]) / delta
			default:
				continue
			}
			if lim < rmin {
				rmin = lim
			}
		}
		if math.IsInf(rmin, 1) {
			return Unbounded, nil
		}
		leave := -1
		leaveToUpper := false
		tMax := rmin
		bestPivot := 0.0
		// Select the leaving row with the largest pivot magnitude among
		// rows tied at the minimum ratio. If the best tie pivot is
		// numerically weak, widen the tie band once — trading a bounded
		// (≤ feasTol-scale) ratio violation for basis conditioning.
		for _, tieScale := range []float64{1e-9, 1e-7} {
			tie := rmin + tieScale*(1+rmin)
			for i := 0; i < s.m; i++ {
				delta := -enterDir * w[i]
				bj := s.basis[i]
				var lim float64
				var toUpper bool
				switch {
				case delta < -pivotTol:
					lim, toUpper = snapSlack(s.xB[i]-s.lo[bj])/-delta, false
				case delta > pivotTol:
					if math.IsInf(s.up[bj], 1) {
						continue
					}
					lim, toUpper = snapSlack(s.up[bj]-s.xB[i])/delta, true
				default:
					continue
				}
				if lim > tie {
					continue
				}
				if piv := math.Abs(delta); piv > bestPivot {
					bestPivot, leave, leaveToUpper = piv, i, toUpper
				}
			}
			if bestPivot >= weakPivot {
				break
			}
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}
		s.iters++

		// Apply the step to the basic values.
		if tMax > 0 {
			for i := 0; i < s.m; i++ {
				s.xB[i] -= enterDir * w[i] * tMax
			}
		}

		if leave < 0 {
			// Bound flip: entering variable jumps to its other bound.
			if enterDir > 0 {
				s.status[enter] = atUpper
				s.xN[enter] = s.up[enter]
			} else {
				s.status[enter] = atLower
				s.xN[enter] = s.lo[enter]
			}
			continue
		}

		// Pivot: enter replaces basis[leave].
		exiting := s.basis[leave]
		if leaveToUpper {
			s.status[exiting] = atUpper
			s.xN[exiting] = s.up[exiting]
		} else {
			s.status[exiting] = atLower
			s.xN[exiting] = s.lo[exiting]
		}
		enterVal := s.xN[enter] + enterDir*tMax
		s.basis[leave] = enter
		s.status[enter] = basic
		s.xB[leave] = enterVal

		s.updateBinv(leave, w)
		sinceRefactor++
		if sinceRefactor >= 100 {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			sinceRefactor = 0
		}
	}
}

// blandPivot performs one simplex step with the exact (non-relaxed) ratio
// test and Bland tie-breaking (smallest basis column index), which — with
// lowest-index pricing — provably terminates on degenerate cycles.
// It returns (Unbounded, true) if the step is unbounded.
func (s *simplex) blandPivot(enter int, enterDir float64, w []float64, degenerate *int) (Status, bool) {
	const tieTol = 1e-12
	// Pass 1: exact minimum ratio, including the entering variable's
	// own bound span.
	rmin := s.up[enter] - s.lo[enter]
	for i := 0; i < s.m; i++ {
		delta := -enterDir * w[i]
		bj := s.basis[i]
		var lim float64
		switch {
		case delta < -pivotTol:
			lim = snapSlack(s.xB[i]-s.lo[bj]) / -delta
		case delta > pivotTol:
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim = snapSlack(s.up[bj]-s.xB[i]) / delta
		default:
			continue
		}
		if lim < rmin {
			rmin = lim
		}
	}
	if math.IsInf(rmin, 1) {
		return Unbounded, true
	}
	// Pass 2: among rows achieving the minimum, the smallest basis
	// column index leaves.
	leave := -1
	leaveToUpper := false
	for i := 0; i < s.m; i++ {
		delta := -enterDir * w[i]
		bj := s.basis[i]
		var lim float64
		var toUpper bool
		switch {
		case delta < -pivotTol:
			lim, toUpper = snapSlack(s.xB[i]-s.lo[bj])/-delta, false
		case delta > pivotTol:
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim, toUpper = snapSlack(s.up[bj]-s.xB[i])/delta, true
		default:
			continue
		}
		if lim <= rmin+tieTol && (leave < 0 || bj < s.basis[leave]) {
			leave, leaveToUpper = i, toUpper
		}
	}
	if rmin < feasTol {
		*degenerate++
	} else {
		*degenerate = 0
	}
	s.iters++
	if rmin > 0 {
		for i := 0; i < s.m; i++ {
			s.xB[i] -= enterDir * w[i] * rmin
		}
	}
	if leave < 0 {
		// Bound flip.
		if enterDir > 0 {
			s.status[enter] = atUpper
			s.xN[enter] = s.up[enter]
		} else {
			s.status[enter] = atLower
			s.xN[enter] = s.lo[enter]
		}
		return 0, false
	}
	exiting := s.basis[leave]
	if leaveToUpper {
		s.status[exiting] = atUpper
		s.xN[exiting] = s.up[exiting]
	} else {
		s.status[exiting] = atLower
		s.xN[exiting] = s.lo[exiting]
	}
	s.basis[leave] = enter
	s.status[enter] = basic
	s.xB[leave] = s.xN[enter] + enterDir*rmin
	s.updateBinv(leave, w)
	return 0, false
}

// costOf returns the phase cost of column j (0 for columns beyond the
// cost vector, i.e. artificials in phase 2).
func costOf(cost []float64, j int) float64 {
	if j < len(cost) {
		return cost[j]
	}
	return 0
}

// snapSlack treats a basic variable's distance to its bound as exactly
// zero when it is within the feasibility tolerance (including slightly
// negative from floating-point noise). Without the snap, noise-level
// slacks produce endless ~1e-9 micro-steps that never trip the degeneracy
// guard — the stall observed on the SLOTOFF master problems.
func snapSlack(d float64) float64 {
	if d < feasTol {
		return 0
	}
	return d
}

// updateBinv applies the elementary pivot transformation so that binv
// remains the inverse of the new basis: row r scaled by 1/w_r, other rows
// i reduced by w_i× the scaled row.
func (s *simplex) updateBinv(r int, w []float64) {
	piv := w[r]
	rowR := s.binv[r*s.m : (r+1)*s.m]
	inv := 1 / piv
	for k := range rowR {
		rowR[k] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		rowI := s.binv[i*s.m : (i+1)*s.m]
		for k := range rowI {
			rowI[k] -= f * rowR[k]
		}
	}
}

// refactorize recomputes the basis inverse from scratch (Gauss–Jordan with
// partial pivoting) and recomputes the basic values, containing numerical
// drift from repeated eta updates.
func (s *simplex) refactorize() error {
	m := s.m
	// Assemble B and the identity side in one augmented matrix.
	aug := make([]float64, m*2*m)
	for i := 0; i < m; i++ {
		aug[i*2*m+m+i] = 1
	}
	for col, j := range s.basis {
		for _, e := range s.cols[j] {
			aug[e.Row*2*m+col] = e.Coef
		}
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, pivRow := 0.0, -1
		for i := col; i < m; i++ {
			if v := math.Abs(aug[i*2*m+col]); v > piv {
				piv, pivRow = v, i
			}
		}
		if piv < pivotTol {
			return errSingular
		}
		if pivRow != col {
			for k := 0; k < 2*m; k++ {
				aug[col*2*m+k], aug[pivRow*2*m+k] = aug[pivRow*2*m+k], aug[col*2*m+k]
			}
		}
		inv := 1 / aug[col*2*m+col]
		for k := 0; k < 2*m; k++ {
			aug[col*2*m+k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := aug[i*2*m+col]
			if f == 0 {
				continue
			}
			for k := 0; k < 2*m; k++ {
				aug[i*2*m+k] -= f * aug[col*2*m+k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i*s.m:(i+1)*s.m], aug[i*2*m+m:i*2*m+2*m])
	}
	// Recompute xB = B⁻¹(b − N·x_N).
	resid := append([]float64(nil), s.rhs...)
	for j := range s.cols {
		if s.status[j] == basic || s.xN[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.Row] -= e.Coef * s.xN[j]
		}
	}
	for i := 0; i < m; i++ {
		v := 0.0
		row := s.binv[i*m : (i+1)*m]
		for k, r := range resid {
			v += row[k] * r
		}
		s.xB[i] = v
	}
	return nil
}
