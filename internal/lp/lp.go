// Package lp implements a sparse linear-programming solver — a two-phase
// revised primal simplex with bounded variables over a sparse LU
// factorization of the basis (Markowitz-ordered with threshold partial
// pivoting, product-form eta updates, periodic refactorization). It
// stands in for the CPLEX solver used in the paper (DESIGN.md §3): it
// solves the PLAN-VNE relaxation (Fig. 4) and the per-slot offline
// instances of the SLOTOFF baseline, and exposes dual prices so the plan
// builder can run Dantzig–Wolfe column generation.
//
// Problems are stated as
//
//	minimize    cᵀx
//	subject to  Ax {≤,=,≥} b   (per-row sense)
//	            lo ≤ x ≤ up    (per-variable bounds, up may be +Inf)
//
// Repeated, closely related solves — column-generation rounds, SLOTOFF's
// per-slot re-optimizations — can reuse the final basis of one solve as
// the starting point of the next via Solution.Basis and Problem.SolveFrom.
//
// The solver is exact up to floating-point tolerances and is sized for the
// instances of this reproduction (hundreds of rows, thousands of columns).
package lp

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// Sense is a row's constraint sense.
type Sense int

// Row senses.
const (
	LE Sense = iota + 1 // Σ aᵢxᵢ ≤ b
	EQ                  // Σ aᵢxᵢ = b
	GE                  // Σ aᵢxᵢ ≥ b
)

// Entry is one nonzero coefficient of a column.
type Entry struct {
	Row  int
	Coef float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is an LP under construction. The zero value is unusable; call
// NewProblem.
type Problem struct {
	rowSense []Sense
	rhs      []float64

	cost    []float64
	lo, up  []float64
	cols    [][]Entry
	numVars int

	// ForrestTomlin selects in-place Forrest–Tomlin updates of the basis
	// factorization (see ft.go) instead of the default product-form eta
	// file. Both are exact up to round-off, but their floating-point
	// evaluation orders differ, so solves may land on different (equally
	// optimal) vertices of degenerate problems — which is why the mode
	// is opt-in rather than the default for this bit-reproducible
	// codebase. Set it before the first Solve.
	ForrestTomlin bool

	// Pricing selects the simplex entering-column rule (see pricing.go):
	// PricingDevex (the default, with partial pricing) or
	// PricingDantzig (the textbook full-scan ablation). Both reach an
	// optimum; on degenerate problems they can land on different equally
	// optimal vertices. Set it before the first Solve.
	Pricing PricingRule

	// ws holds the reusable solve workspace; claimed atomically so
	// concurrent solves on one Problem degrade to fresh allocation
	// instead of racing.
	ws atomic.Pointer[workspace]
}

// ftDefault seeds Problem.ForrestTomlin for problems made by NewProblem;
// settable via SetForrestTomlin or the OLIVE_LP_FT=1 environment
// variable (the empirical golden-drift switch).
var ftDefault atomic.Bool

func init() {
	if os.Getenv("OLIVE_LP_FT") == "1" { //olive:wallclock ablation knob, read once at init; documented in CONTRIBUTING
		ftDefault.Store(true)
	}
}

// SetForrestTomlin switches the package default basis-update scheme for
// subsequently created problems. It exists so harnesses can flip the
// whole pipeline (plan builds, serve solves) to Forrest–Tomlin without
// threading an option through every layer.
func SetForrestTomlin(on bool) { ftDefault.Store(on) }

// NewProblem returns an empty problem. Pricing is left at
// PricingDefault, which resolves to the process-wide rule at solve
// time — so SetPricing/OLIVE_LP_PRICING affect problems already built.
func NewProblem() *Problem {
	return &Problem{ForrestTomlin: ftDefault.Load()}
}

// AddRow appends a constraint row and returns its index.
func (p *Problem) AddRow(sense Sense, rhs float64) int {
	p.rowSense = append(p.rowSense, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rhs) - 1
}

// AddVar appends a variable with the given objective cost, bounds and
// sparse column, returning its index. Bounds must satisfy lo ≤ up, lo
// finite; up may be +Inf. Entries must reference existing rows; entries
// naming the same row are merged by summing their coefficients, so the
// stored column always has one entry per row (an invariant the sparse
// solves rely on).
func (p *Problem) AddVar(cost, lo, up float64, entries []Entry) (int, error) {
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(up) || lo > up {
		return 0, fmt.Errorf("lp: invalid bounds [%g,%g]", lo, up)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= len(p.rhs) {
			return 0, fmt.Errorf("lp: entry references row %d of %d", e.Row, len(p.rhs))
		}
	}
	col := make([]Entry, 0, len(entries))
merge:
	for _, e := range entries {
		for i := range col {
			if col[i].Row == e.Row {
				col[i].Coef += e.Coef
				continue merge
			}
		}
		col = append(col, e)
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	p.cols = append(p.cols, col)
	p.numVars++
	return p.numVars - 1, nil
}

// MustAddVar is AddVar that panics on error, for construction code whose
// indices are correct by construction.
func (p *Problem) MustAddVar(cost, lo, up float64, entries []Entry) int {
	v, err := p.AddVar(cost, lo, up, entries)
	if err != nil {
		panic(err)
	}
	return v
}

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rhs) }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// VarStatus is a variable's role in a basis snapshot.
type VarStatus int8

// Basis statuses. The zero value is StatusLower, so a zero-filled
// snapshot is a valid (all-nonbasic) warm start.
const (
	StatusLower VarStatus = iota // nonbasic at lower bound
	StatusUpper                  // nonbasic at upper bound
	StatusBasic                  // basic
)

// Basis is a warm-start snapshot of a simplex basis: one status per
// structural variable, and one per row for the row's logical
// (slack/artificial) column. Snapshots taken from a Solution may be
// replayed by SolveFrom on the same problem or on a grown one —
// variables and rows added after the snapshot default to nonbasic at
// lower bound and logical-basic respectively, which is exactly right
// for column generation.
type Basis struct {
	Vars []VarStatus
	Rows []VarStatus
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// Obj is the objective value (meaningful only when Status==Optimal).
	Obj float64
	// X holds the primal values of the structural variables.
	X []float64
	// Dual holds one simplex multiplier per row (y = c_B·B⁻¹). At
	// optimality the reduced cost c_j − y·A_j of every structural
	// column is ≥ −tol for variables at lower bound; column generation
	// prices new columns against these values.
	Dual []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Refactorizations counts basis LU rebuilds (scheduled eta-file
	// flushes plus weak-pivot and repair refreshes).
	Refactorizations int
	// PricingScans counts the nonbasic columns examined by pricing
	// across the solve — the work partial pricing exists to cut.
	PricingScans int
	// BlandPivots counts the subset of Iterations taken under the
	// Bland anti-cycling fallback rather than the configured rule.
	BlandPivots int
	// Rule is the pricing rule the solve ran under.
	Rule PricingRule
	// WarmStarted reports that this solution came out of a successful
	// warm start (SolveFrom without the cold fallback).
	WarmStarted bool

	basis *Basis
}

// Basis returns the final basis as a warm-start snapshot for SolveFrom,
// or nil if the solve did not reach optimality.
func (s *Solution) Basis() *Basis { return s.basis }

// numerical tolerances
const (
	dualTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum pivot magnitude
	feasTol  = 1e-7 // primal feasibility tolerance
)

const maxIterFactor = 200 // iteration cap: maxIterFactor · (m + n)

// ErrIterationLimit is returned when the simplex exceeds its iteration
// budget — in practice a symptom of severe degeneracy or numerical
// trouble.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// errSingular marks a basis state that LU repair could not recover.
var errSingular = errors.New("lp: singular basis during refactorization")

// errWarmStart marks a warm-start snapshot that could not seed a
// feasible starting basis; the caller falls back to a cold solve.
var errWarmStart = errors.New("lp: warm-start basis unusable")

// weakPivot is the magnitude below which a pivot is considered a threat to
// basis conditioning.
const weakPivot = 1e-7

// Solve runs the two-phase simplex and returns the solution. The problem
// may be reused (Solve does not mutate it). Numerically dependent bases
// are repaired in place (dependent columns are replaced by slacks); if
// repair fails, the solve is retried once with a deterministic additive
// cost perturbation of ~1e-10·max|c|, which breaks the tie pattern that
// led there while moving the optimum negligibly.
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.solveOnce(0, nil)
	if err != nil && errors.Is(err, errSingular) {
		sol, err = p.solveOnce(1e-10, nil)
	}
	if err == nil {
		recordSolve(sol)
	}
	return sol, err
}

// SolveFrom runs the simplex warm-started from a prior basis snapshot.
// When the snapshot still describes a primal-feasible vertex — the
// common case across column-generation rounds and per-slot
// re-optimizations, where consecutive LPs differ by a few columns —
// phase 1 is skipped entirely and the solve typically needs a small
// fraction of the pivots of a cold start. Any warm-path failure — an
// unusable snapshot, a singularity repair that could not restore
// feasibility, even an iteration stall from a pathological warm vertex
// — silently falls back to a cold Solve, so SolveFrom never does worse
// than Solve by more than the failed warm attempt.
func (p *Problem) SolveFrom(b *Basis) (*Solution, error) {
	if b != nil {
		counters.warmAttempts.Add(1)
		if sol, err := p.solveOnce(0, b); err == nil {
			sol.WarmStarted = true
			recordSolve(sol)
			return sol, nil
		}
	}
	return p.Solve()
}

func (p *Problem) solveOnce(perturb float64, warm *Basis) (*Solution, error) {
	m := len(p.rhs)
	if m == 0 || p.numVars == 0 {
		return nil, errors.New("lp: empty problem")
	}
	ws := p.takeWS()
	defer p.putWS(ws)
	s, rowNeg := p.newSimplex(perturb, ws)
	defer ws.reclaim(s)
	maxIter := maxIterFactor * (s.m + len(s.cols))

	if warm != nil {
		if err := s.initBasisFrom(warm); err != nil {
			return nil, err
		}
		// The warm vertex is feasible by construction: no phase 1.
	} else {
		if err := s.initBasis(); err != nil {
			return nil, err
		}
		// Phase 1: minimize artificial mass if any artificial is nonzero.
		if s.needPhase1() {
			ws.phase1Cost = growSlice(ws.phase1Cost, len(s.cols))
			phase1Cost := ws.phase1Cost
			for j := 0; j < s.artBase; j++ {
				phase1Cost[j] = 0
			}
			for j := s.artBase; j < len(s.cols); j++ {
				phase1Cost[j] = 1
			}
			st, err := s.iterate(phase1Cost, maxIter)
			if err != nil {
				return nil, fmt.Errorf("lp: phase 1: %w", err)
			}
			if st == Unbounded {
				return nil, errors.New("lp: phase 1 unbounded (internal error)")
			}
			if s.objective(phase1Cost) > feasTol*float64(s.m) {
				return &Solution{
					Status: Infeasible, Iterations: s.iters, Refactorizations: s.refacts,
					PricingScans: s.pscans, BlandPivots: s.blandPivots, Rule: s.rule,
				}, nil
			}
			// Freeze artificials at zero for phase 2.
			for j := s.artBase; j < len(s.cols); j++ {
				s.up[j] = 0
			}
		}
	}

	st, err := s.iterate(s.cost, maxIter)
	if err != nil {
		return nil, fmt.Errorf("lp: phase 2: %w", err)
	}
	sol := &Solution{
		Status: st, Iterations: s.iters, Refactorizations: s.refacts,
		PricingScans: s.pscans, BlandPivots: s.blandPivots, Rule: s.rule,
	}
	if st != Optimal {
		return sol, nil
	}
	// Certify from a clean factorization: eta updates accumulated since
	// the last refactorization drift the duals (and through them the
	// reduced costs column generation prices against) by up to ~1e-6 on
	// badly scaled bases. One rebuild at termination removes that drift;
	// warm-started re-solves that pivot zero times skip it.
	if s.lu.nEtas() > 0 {
		if err := s.refactorize(); err != nil {
			return nil, fmt.Errorf("lp: final refactorization: %w", err)
		}
		sol.Refactorizations = s.refacts
	}
	x := s.primal()
	sol.X = x[:s.nStruct]
	sol.Obj = 0
	for j := 0; j < s.nStruct; j++ {
		sol.Obj += p.cost[j] * sol.X[j]
	}
	y := s.ybuf
	s.dualsInto(s.cost, y)
	sol.Dual = make([]float64, m)
	for i := range y {
		sol.Dual[i] = y[i] * rowNeg[i]
	}
	sol.basis = s.captureBasis()
	return sol, nil
}
