package lp

import "math"

// Forrest–Tomlin basis updates (Forrest & Tomlin 1972, in the sparse
// form of Suhl & Suhl): instead of appending a product-form eta per
// pivot — which makes every later FTRAN/BTRAN pay for the whole eta
// file — the U factor is updated in place. Replacing the basis column
// pivoted at elimination step k0 turns column k0 of U into the spike
// s = L⁻¹·a_q; cyclically permuting step k0 to the last position leaves
// U upper triangular except for the old row k0, whose tail is
// eliminated against the rows below it. The multipliers of that one row
// elimination are the only per-update state carried forward (a "row
// eta"), so solves stay O(nnz(U) + Σ|row etas|) with a far slower
// growth than the product form.
//
// Representation choices, driven by what must stay immutable:
//   - L (lstart/lrow/lmult) and its factor-time step order (prow,
//     rowStep) are FROZEN — the L triangular solves never change.
//   - Row etas live in matrix-row space: matrix row identities are
//     stable under the cyclic step renumbering that each update applies
//     to U, so stored etas never need fixing up.
//   - U is kept as mutable rows (urows/udiagM) in *current* step space,
//     with its own orderings prowU/pcolU; each update rebuilds them with
//     the renumbering applied — O(nnz(U)) per update.
//
// FT mode changes floating-point evaluation order relative to the
// product form, so results can differ in the last ulps (both are exact
// up to round-off). It is therefore opt-in: Problem.ForrestTomlin, the
// package default SetForrestTomlin, or OLIVE_LP_FT=1.

// ftEta is one row-elimination transformation: applied to a right-hand
// side y in matrix-row space as y[target] -= Σ ents.val·y[ents.idx].
type ftEta struct {
	target int // matrix row of the eliminated U row
	ents   []spEntry
}

// ftConvert builds the mutable U representation from the compressed
// factor, on the first FT update after a (re)factorization.
func (lu *basisLU) ftConvert() {
	m := lu.m
	lu.prowU = append(lu.prowU[:0], lu.prow...)
	lu.pcolU = append(lu.pcolU[:0], lu.pcol...)
	lu.udiagM = append(lu.udiagM[:0], lu.udiag...)
	lu.posStep = growSlice(lu.posStep, m)
	for k, c := range lu.pcolU {
		lu.posStep[c] = k
	}
	lu.ftCur = 0
	a := &lu.ftArena[0]
	a.reset()
	lu.urows = growSlice(lu.urows, m)
	lu.urowsAlt = growSlice(lu.urowsAlt, m)
	lu.prowAlt = growSlice(lu.prowAlt, m)
	lu.pcolAlt = growSlice(lu.pcolAlt, m)
	lu.udiagAlt = growSlice(lu.udiagAlt, m)
	for k := 0; k < m; k++ {
		row := a.take(lu.ustart[k+1] - lu.ustart[k])
		for t := lu.ustart[k]; t < lu.ustart[k+1]; t++ {
			row = append(row, spEntry{lu.ucol[t], lu.uval[t]})
		}
		lu.urows[k] = row
	}
	lu.swork = growSlice(lu.swork, m)
	lu.twork = growSlice(lu.twork, m)
	lu.ftLive = true
}

// updateFT replaces the basis column at position r (FTRAN image w) by a
// Forrest–Tomlin update of U. It reports whether the factorization is
// still healthy; on false the caller must refactorize — and lu is left
// UNMODIFIED in that case (all rejection checks run before any state is
// touched), so a refactorization failure path never reads a half-updated
// factor.
func (lu *basisLU) updateFT(r int, w []float64) bool {
	if !lu.ftLive {
		lu.ftConvert()
	}
	m := lu.m
	k0 := lu.posStep[r]

	// Spike s = U·w̃ in current step space (w̃ is w read in step order):
	// since w = U⁻¹·(row-etas∘L⁻¹)·a_q, this recovers L⁻¹a_q — the new
	// column k0 of U.
	s, wt := lu.swork, lu.zwork
	for k := 0; k < m; k++ {
		wt[k] = w[lu.pcolU[k]]
	}
	maxs := 0.0
	for k := 0; k < m; k++ {
		v := lu.udiagM[k] * wt[k]
		for _, e := range lu.urows[k] {
			v += e.val * wt[e.idx]
		}
		s[k] = v
		if a := math.Abs(v); a > maxs {
			maxs = a
		}
	}

	// Eliminate the tail of old row k0 against rows k0+1..m-1, tracking
	// fill in a dense workspace. The multipliers become the row eta; the
	// spike column contributions accumulate straight into the new
	// diagonal d (the spike is the only column the eliminated row keeps).
	t := lu.twork
	for i := range t {
		t[i] = 0
	}
	for _, e := range lu.urows[k0] {
		t[e.idx] = e.val
	}
	d := s[k0]
	lu.muIdx = lu.muIdx[:0]
	lu.muVal = lu.muVal[:0]
	for c := k0 + 1; c < m; c++ {
		tv := t[c]
		if tv == 0 {
			continue
		}
		mu := tv / lu.udiagM[c]
		for _, e := range lu.urows[c] {
			t[e.idx] -= mu * e.val
		}
		d -= mu * s[c]
		lu.muIdx = append(lu.muIdx, lu.prowU[c])
		lu.muVal = append(lu.muVal, mu)
	}
	if math.Abs(d) <= etaWeakTol*maxs || len(lu.ftEtas) >= maxEtas {
		return false
	}

	// Rebuild U with the cyclic renumbering applied: steps above k0
	// shift down one, the eliminated row becomes the last step with the
	// lone diagonal d, and the spike lands in the last column.
	dst := 1 - lu.ftCur
	a := &lu.ftArena[dst]
	a.reset()
	newRows, nd := lu.urowsAlt, lu.udiagAlt
	npr, npc := lu.prowAlt, lu.pcolAlt
	for j := 0; j < m; j++ {
		if j == k0 {
			continue
		}
		jn := j
		if j > k0 {
			jn = j - 1
		}
		old := lu.urows[j]
		row := a.take(len(old) + 1)
		for _, e := range old {
			if e.idx == k0 {
				continue // leaving column
			}
			c := e.idx
			if c > k0 {
				c--
			}
			row = append(row, spEntry{c, e.val})
		}
		if sv := s[j]; sv != 0 {
			row = append(row, spEntry{m - 1, sv})
		}
		newRows[jn] = row
		nd[jn] = lu.udiagM[j]
		npr[jn] = lu.prowU[j]
		npc[jn] = lu.pcolU[j]
	}
	target := lu.prowU[k0]
	newRows[m-1] = a.take(0)
	nd[m-1] = d
	npr[m-1] = target
	npc[m-1] = r
	lu.urows, lu.urowsAlt = newRows, lu.urows
	lu.udiagM, lu.udiagAlt = nd, lu.udiagM
	lu.prowU, lu.prowAlt = npr, lu.prowU
	lu.pcolU, lu.pcolAlt = npc, lu.pcolU
	for k, c := range lu.pcolU {
		lu.posStep[c] = k
	}
	lu.ftCur = dst

	ents := lu.entArena.take(len(lu.muIdx))
	for i, idx := range lu.muIdx {
		ents = append(ents, spEntry{idx, lu.muVal[i]})
	}
	lu.ftEtas = append(lu.ftEtas, ftEta{target: target, ents: ents})
	return len(lu.ftEtas) < maxEtas
}

// ftApplyEtas applies the row etas, in update order, to a right-hand
// side in matrix-row space (the FTRAN direction).
func (lu *basisLU) ftApplyEtas(y []float64) {
	for i := range lu.ftEtas {
		e := &lu.ftEtas[i]
		v := y[e.target]
		for _, en := range e.ents {
			v -= en.val * y[en.idx]
		}
		y[e.target] = v
	}
}

// ftApplyEtasT applies the transposed row etas in reverse order (the
// BTRAN direction).
func (lu *basisLU) ftApplyEtasT(y []float64) {
	for i := len(lu.ftEtas) - 1; i >= 0; i-- {
		e := &lu.ftEtas[i]
		v := y[e.target]
		if v == 0 {
			continue
		}
		for _, en := range e.ents {
			y[en.idx] -= en.val * v
		}
	}
}

// ftranU completes an FT-mode FTRAN: row etas, then the mutable-U back
// substitution, reading the right-hand side from ywork (matrix-row
// space) like ftranWork does.
//
//olive:hotpath FT-mode simplex kernel
func (lu *basisLU) ftranU(w []float64) {
	y, z := lu.ywork, lu.zwork
	lu.ftApplyEtas(y)
	for k := lu.m - 1; k >= 0; k-- {
		v := y[lu.prowU[k]]
		for _, e := range lu.urows[k] {
			v -= e.val * z[e.idx]
		}
		z[k] = v / lu.udiagM[k]
	}
	for k := 0; k < lu.m; k++ {
		w[lu.pcolU[k]] = z[k]
	}
}

// btranU runs the FT-mode BTRAN counterpart: Uᵀ solve in current step
// space, transposed row etas in reverse, then the frozen Lᵀ solve.
//
//olive:hotpath FT-mode simplex kernel
func (lu *basisLU) btranU(c []float64, y []float64) {
	m := lu.m
	v, yr := lu.zwork, lu.swork
	for k := 0; k < m; k++ {
		v[k] = c[lu.pcolU[k]]
	}
	for k := 0; k < m; k++ {
		v[k] /= lu.udiagM[k]
		vk := v[k]
		if vk == 0 {
			continue
		}
		for _, e := range lu.urows[k] {
			v[e.idx] -= e.val * vk
		}
	}
	for k := 0; k < m; k++ {
		yr[lu.prowU[k]] = v[k]
	}
	lu.ftApplyEtasT(yr)
	// Frozen Lᵀ in factor-time step space, exactly as the PFI path.
	w := lu.ywork
	for k := 0; k < m; k++ {
		w[k] = yr[lu.prow[k]]
	}
	for k := m - 1; k >= 0; k-- {
		s := w[k]
		for t := lu.lstart[k]; t < lu.lstart[k+1]; t++ {
			s -= lu.lmult[t] * w[lu.rowStep[lu.lrow[t]]]
		}
		w[k] = s
	}
	for k := 0; k < m; k++ {
		y[lu.prow[k]] = w[k]
	}
}
