package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// refSolve is a deliberately naive dense reference solver used only to
// cross-check the sparse-LU simplex: a textbook two-phase tableau
// simplex with Bland's rule (guaranteed termination). Variable bounds
// become explicit rows, every row becomes an equality with a slack, and
// the whole tableau is dense — O((m+n)²) memory per instance, fine for
// the small random problems the fuzz test feeds it.
//
// It returns the status and, when optimal, the objective value.
func refSolve(p *Problem) (Status, float64) {
	n := p.numVars
	// Shift x' = x − lo ≥ 0 and collect explicit upper-bound rows.
	type refRow struct {
		coef  []float64
		rhs   float64
		sense Sense
	}
	var rows []refRow
	for i := range p.rhs {
		rr := refRow{coef: make([]float64, n), rhs: p.rhs[i], sense: p.rowSense[i]}
		rows = append(rows, rr)
	}
	for j := 0; j < n; j++ {
		for _, e := range p.cols[j] {
			rows[e.Row].coef[j] += e.Coef
			rows[e.Row].rhs -= e.Coef * p.lo[j] // shift into x' space
		}
	}
	for j := 0; j < n; j++ {
		if up := p.up[j] - p.lo[j]; !math.IsInf(up, 1) {
			rr := refRow{coef: make([]float64, n), rhs: up, sense: LE}
			rr.coef[j] = 1
			rows = append(rows, rr)
		}
	}
	m := len(rows)
	// Columns: n structurals, one slack per non-EQ row, one artificial
	// per row. Dense tableau T is m rows × (ncols+1), last col = rhs.
	nslack := 0
	for _, rr := range rows {
		if rr.sense != EQ {
			nslack++
		}
	}
	ncols := n + nslack + m
	T := make([][]float64, m)
	artBase := n + nslack
	si := 0
	for i, rr := range rows {
		T[i] = make([]float64, ncols+1)
		copy(T[i], rr.coef)
		rhs := rr.rhs
		if rr.sense != EQ {
			s := 1.0
			if rr.sense == GE {
				s = -1
			}
			T[i][n+si] = s
			si++
		}
		if rhs < 0 {
			for k := 0; k <= ncols; k++ {
				T[i][k] = -T[i][k]
			}
			rhs = -rhs
		}
		T[i][ncols] = rhs
		T[i][artBase+i] = 1
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = artBase + i
	}
	costRow := func(cost []float64) []float64 {
		// Reduced-cost row z_j − c_j under the current basis, by
		// eliminating basic columns from the cost vector.
		z := make([]float64, ncols+1)
		for j, c := range cost {
			z[j] = -c
		}
		for i, bj := range basis {
			if bj < len(cost) && cost[bj] != 0 {
				for k := 0; k <= ncols; k++ {
					z[k] += cost[bj] * T[i][k]
				}
			}
		}
		return z
	}
	pivot := func(r, c int) {
		pv := T[r][c]
		for k := 0; k <= ncols; k++ {
			T[r][k] /= pv
		}
		for i := 0; i < m; i++ {
			if i == r || T[i][c] == 0 {
				continue
			}
			f := T[i][c]
			for k := 0; k <= ncols; k++ {
				T[i][k] -= f * T[r][k]
			}
		}
		basis[r] = c
	}
	const tol = 1e-9
	iterate := func(cost []float64, forbid int) bool {
		// Bland's rule; forbid ≥ 0 bars columns ≥ forbid from entering
		// (phase 2 must not readmit artificials). Returns false on
		// unbounded.
		for iter := 0; iter < 20000; iter++ {
			z := costRow(cost)
			enter := -1
			for j := 0; j < ncols; j++ {
				if forbid >= 0 && j >= forbid {
					break
				}
				inBasis := false
				for _, bj := range basis {
					if bj == j {
						inBasis = true
						break
					}
				}
				if inBasis {
					continue
				}
				// z[j] holds z_j − c_j; a negative value improves the
				// (maximization-form) objective.
				if z[j] < -tol {
					enter = j
					break
				}
			}
			if enter < 0 {
				return true
			}
			leave := -1
			bestRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				if T[i][enter] > tol {
					ratio := T[i][ncols] / T[i][enter]
					if ratio < bestRatio-tol || (ratio < bestRatio+tol && (leave < 0 || basis[i] < basis[leave])) {
						bestRatio, leave = ratio, i
					}
				}
			}
			if leave < 0 {
				return false
			}
			pivot(leave, enter)
		}
		return true // iteration safety valve; treat as converged
	}
	// Phase 1: minimize Σ artificials (as a max problem: cost −1 each).
	phase1 := make([]float64, ncols)
	for j := artBase; j < ncols; j++ {
		phase1[j] = -1
	}
	iterate(phase1, -1)
	sum := 0.0
	for i, bj := range basis {
		if bj >= artBase {
			sum += T[i][ncols]
		}
	}
	if sum > 1e-6 {
		return Infeasible, 0
	}
	// Pivot remaining (degenerate, zero-valued) artificials out of the
	// basis so phase 2 cannot silently push one positive; a row offering
	// no replacement pivot is all-zero — redundant — and inert.
	for i := 0; i < m; i++ {
		if basis[i] < artBase {
			continue
		}
		for j := 0; j < artBase; j++ {
			if math.Abs(T[i][j]) > tol {
				pivot(i, j)
				break
			}
		}
	}
	// Phase 2: maximize −cᵀx (we minimize), artificials barred.
	phase2 := make([]float64, ncols)
	for j := 0; j < n; j++ {
		phase2[j] = -p.cost[j]
	}
	if !iterate(phase2, artBase) {
		return Unbounded, 0
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.cost[j] * p.lo[j]
	}
	for i, bj := range basis {
		if bj < n {
			obj += p.cost[bj] * T[i][ncols]
		}
	}
	return Optimal, obj
}

// TestRandomLPsAgainstDenseReference fuzzes the sparse-LU simplex with
// random bounded LPs and cross-checks status and objective against the
// naive dense reference solver — the guard the LU path runs under.
func TestRandomLPsAgainstDenseReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 7))
	var optimal, infeasible int
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.IntN(6)
		n := 1 + rng.IntN(8)
		p := NewProblem()
		for i := 0; i < m; i++ {
			p.AddRow([]Sense{LE, EQ, GE}[rng.IntN(3)], rng.Float64()*8-2)
		}
		for j := 0; j < n; j++ {
			lo := 0.0
			if rng.Float64() < 0.3 {
				lo = rng.Float64() - 0.5
			}
			up := lo + rng.Float64()*6 // finite bounds keep instances bounded
			var entries []Entry
			for i := 0; i < m; i++ {
				if rng.Float64() < 0.6 {
					entries = append(entries, Entry{Row: i, Coef: rng.Float64()*4 - 2})
				}
			}
			if _, err := p.AddVar(rng.Float64()*4-2, lo, up, entries); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refSt, refObj := refSolve(p)
		if sol.Status != refSt {
			t.Fatalf("trial %d: status %v, reference says %v", trial, sol.Status, refSt)
		}
		if sol.Status == Optimal {
			optimal++
			if d := math.Abs(sol.Obj - refObj); d > 1e-6*(1+math.Abs(refObj)) {
				t.Fatalf("trial %d: obj %.12g, reference %.12g (Δ %g)", trial, sol.Obj, refObj, d)
			}
		} else {
			infeasible++
		}
	}
	if optimal < 20 || infeasible < 20 {
		t.Fatalf("fuzz mix degenerate: %d optimal, %d infeasible of 300", optimal, infeasible)
	}
}
