package lp

import "sync/atomic"

// Solve instrumentation. The package keeps always-on process-wide
// counters — a handful of atomic adds per solve, and solves are orders
// of magnitude rarer than pivots — and offers an optional per-solve
// hook for sinks that want the individual events (the serving layer's
// metrics registry). Neither path can perturb solver decisions: both
// observe a finished Solution.

// SolveStats describes one completed solve, as delivered to the hook.
type SolveStats struct {
	// Status is the final solve status.
	Status Status
	// Pivots is the simplex pivot count across both phases.
	Pivots int
	// Refactorizations is the basis LU rebuild count.
	Refactorizations int
	// PricingScans counts the nonbasic columns pricing examined.
	PricingScans int
	// BlandPivots is the subset of Pivots taken under the Bland
	// anti-cycling fallback.
	BlandPivots int
	// Rule is the pricing rule the solve ran under.
	Rule PricingRule
	// WarmStarted reports a successful warm start (SolveFrom that did
	// not fall back to a cold solve).
	WarmStarted bool
}

// CountersSnapshot is a point-in-time copy of the package counters.
// All fields are cumulative since process start.
type CountersSnapshot struct {
	// Solves counts completed solves (any status; errors excluded).
	Solves int64
	// WarmAttempts counts SolveFrom calls that had a basis to try.
	WarmAttempts int64
	// WarmHits counts attempts that completed without the cold fallback.
	WarmHits int64
	// Pivots is the total simplex pivot count.
	Pivots int64
	// Refactorizations is the total basis LU rebuild count.
	Refactorizations int64
	// PricingScans is the total nonbasic-column count examined by
	// pricing — the scan work the Devex partial-pricing sections cut.
	PricingScans int64
	// PivotsDevex/PivotsDantzig/PivotsBland split Pivots by the rule
	// that priced each pivot's entering column (Bland pivots are the
	// anti-cycling fallback, whatever the configured rule).
	PivotsDevex   int64
	PivotsDantzig int64
	PivotsBland   int64
}

var counters struct {
	solves        atomic.Int64
	warmAttempts  atomic.Int64
	warmHits      atomic.Int64
	pivots        atomic.Int64
	refacts       atomic.Int64
	pricingScans  atomic.Int64
	pivotsDevex   atomic.Int64
	pivotsDantzig atomic.Int64
	pivotsBland   atomic.Int64
}

var solveHook atomic.Pointer[func(SolveStats)]

// Stats snapshots the package-wide solve counters.
func Stats() CountersSnapshot {
	return CountersSnapshot{
		Solves:           counters.solves.Load(),
		WarmAttempts:     counters.warmAttempts.Load(),
		WarmHits:         counters.warmHits.Load(),
		Pivots:           counters.pivots.Load(),
		Refactorizations: counters.refacts.Load(),
		PricingScans:     counters.pricingScans.Load(),
		PivotsDevex:      counters.pivotsDevex.Load(),
		PivotsDantzig:    counters.pivotsDantzig.Load(),
		PivotsBland:      counters.pivotsBland.Load(),
	}
}

// SetSolveHook installs f to be called after every completed solve
// (nil uninstalls). The hook runs on the solving goroutine; keep it
// cheap and never call back into the solver from it.
func SetSolveHook(f func(SolveStats)) {
	if f == nil {
		solveHook.Store(nil)
		return
	}
	solveHook.Store(&f)
}

// recordSolve folds one completed solution into the counters and fires
// the hook.
func recordSolve(sol *Solution) {
	counters.solves.Add(1)
	counters.pivots.Add(int64(sol.Iterations))
	counters.refacts.Add(int64(sol.Refactorizations))
	counters.pricingScans.Add(int64(sol.PricingScans))
	bland := int64(sol.BlandPivots)
	if bland > 0 {
		counters.pivotsBland.Add(bland)
	}
	if rulePiv := int64(sol.Iterations) - bland; rulePiv > 0 {
		switch sol.Rule {
		case PricingDantzig:
			counters.pivotsDantzig.Add(rulePiv)
		default:
			counters.pivotsDevex.Add(rulePiv)
		}
	}
	if sol.WarmStarted {
		counters.warmHits.Add(1)
	}
	if h := solveHook.Load(); h != nil {
		(*h)(SolveStats{
			Status:           sol.Status,
			Pivots:           sol.Iterations,
			Refactorizations: sol.Refactorizations,
			PricingScans:     sol.PricingScans,
			BlandPivots:      sol.BlandPivots,
			Rule:             sol.Rule,
			WarmStarted:      sol.WarmStarted,
		})
	}
}
