// Package vnet models the virtual networks (applications) of the VNE
// problem: rooted trees/chains of VNFs connected by virtual links, each
// element with a size β, plus the (in)efficiency coefficients η that encode
// placement preferences and hard exclusions (paper §II-A).
//
// Every application has a special root node θ representing the user; θ has
// size 0 and is pinned to the request's ingress substrate node.
package vnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/olive-vne/olive/internal/graph"
)

// Kind names an application topology family from the paper's evaluation
// (§IV-A): chain, two-branch tree, accelerator chain, GPU chain.
type Kind int

// Application topology families.
const (
	KindChain Kind = iota + 1
	KindTree
	KindAccelerator
	KindGPU
)

// String returns the family name used in figures ("Chain", "Tree", ...).
func (k Kind) String() string {
	switch k {
	case KindChain:
		return "Chain"
	case KindTree:
		return "Tree"
	case KindAccelerator:
		return "Acc"
	case KindGPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// VNFID indexes a VNF within an application; the root θ is always VNF 0.
type VNFID int

// Root is the VNFID of θ in every application.
const Root VNFID = 0

// VNF is a virtual network function.
type VNF struct {
	ID VNFID
	// Size is the resource requirement β per unit of demand.
	Size float64
	// GPU marks a VNF that must be placed on a dedicated GPU datacenter.
	GPU bool
}

// VLink is a virtual link between two VNFs.
type VLink struct {
	From VNFID
	To   VNFID
	// Size is the traffic requirement β per unit of demand.
	Size float64
}

// App is an application: a rooted tree of VNFs. VNF 0 is the root θ (the
// user's ingress point) with Size 0.
type App struct {
	Name string
	Kind Kind
	// VNFs holds all virtual nodes; VNFs[0] is θ.
	VNFs []VNF
	// Links holds the virtual links. For tree/chain applications,
	// Links[i].To is always a previously unseen VNF when traversed in
	// order, i.e. the links are listed parent-to-child in BFS order.
	Links []VLink
}

// NumVNFs returns the number of virtual nodes including θ.
func (a *App) NumVNFs() int { return len(a.VNFs) }

// FunctionalVNFs returns the number of VNFs excluding θ.
func (a *App) FunctionalVNFs() int { return len(a.VNFs) - 1 }

// TotalNodeSize sums β over all VNFs (θ contributes 0).
func (a *App) TotalNodeSize() float64 {
	var s float64
	for _, v := range a.VNFs {
		s += v.Size
	}
	return s
}

// TotalLinkSize sums β over all virtual links.
func (a *App) TotalLinkSize() float64 {
	var s float64
	for _, l := range a.Links {
		s += l.Size
	}
	return s
}

// HasGPU reports whether any VNF requires a GPU datacenter.
func (a *App) HasGPU() bool {
	for _, v := range a.VNFs {
		if v.GPU {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: θ present with size 0, links form
// a tree rooted at θ listed parent-to-child, and positive element sizes.
func (a *App) Validate() error {
	if len(a.VNFs) < 2 {
		return errors.New("vnet: application needs θ plus at least one VNF")
	}
	if a.VNFs[0].Size != 0 {
		return fmt.Errorf("vnet: root θ must have size 0, has %g", a.VNFs[0].Size)
	}
	if len(a.Links) != len(a.VNFs)-1 {
		return fmt.Errorf("vnet: %d links for %d VNFs; a rooted tree needs exactly %d",
			len(a.Links), len(a.VNFs), len(a.VNFs)-1)
	}
	seen := make([]bool, len(a.VNFs))
	seen[Root] = true
	for i, l := range a.Links {
		if int(l.From) >= len(a.VNFs) || int(l.To) >= len(a.VNFs) || l.From < 0 || l.To < 0 {
			return fmt.Errorf("vnet: link %d endpoints out of range", i)
		}
		if !seen[l.From] {
			return fmt.Errorf("vnet: link %d parent %d not yet reached (links must be parent-to-child in order)", i, l.From)
		}
		if seen[l.To] {
			return fmt.Errorf("vnet: link %d child %d already reached (cycle or reconvergence)", i, l.To)
		}
		seen[l.To] = true
		if l.Size <= 0 {
			return fmt.Errorf("vnet: link %d has non-positive size %g", i, l.Size)
		}
	}
	for i, v := range a.VNFs[1:] {
		if v.Size <= 0 {
			return fmt.Errorf("vnet: VNF %d has non-positive size %g", i+1, v.Size)
		}
	}
	return nil
}

// Eff returns the (in)efficiency coefficient η for placing VNF q on
// substrate node n (Eq. 1). A return of +Inf forbids the placement: GPU
// VNFs may only run on GPU datacenters, and GPU datacenters accept only
// GPU VNFs (paper §IV "GPU scenario"). θ may be placed anywhere (its size
// is 0, so η is irrelevant but defined as 1).
func Eff(q VNF, n graph.Node) float64 {
	if q.ID == Root {
		return 1
	}
	if q.GPU != n.GPU {
		return math.Inf(1)
	}
	return 1
}

// LinkEff returns η for carrying a virtual link on a substrate link;
// always 1 in the paper's evaluation model.
func LinkEff(VLink, graph.Link) float64 { return 1 }

// Params configures random application generation per Table III.
type Params struct {
	// MinVNFs, MaxVNFs bound the number of functional VNFs (U(3,5)).
	MinVNFs, MaxVNFs int
	// SizeMean, SizeStd parameterize element sizes (N(50, 30²)),
	// truncated below at SizeMin.
	SizeMean, SizeStd, SizeMin float64
	// AccelReduction is the fractional size reduction applied to virtual
	// links downstream of an accelerator VNF (0.7 in the paper).
	AccelReduction float64
}

// DefaultParams returns the Table III application parameters.
func DefaultParams() Params {
	return Params{
		MinVNFs: 3, MaxVNFs: 5,
		SizeMean: 50, SizeStd: 30, SizeMin: 1,
		AccelReduction: 0.7,
	}
}

func (p Params) size(rng *rand.Rand) float64 {
	s := p.SizeMean + p.SizeStd*rng.NormFloat64()
	if s < p.SizeMin {
		s = p.SizeMin
	}
	return s
}

func (p Params) numVNFs(rng *rand.Rand) int {
	return p.MinVNFs + rng.IntN(p.MaxVNFs-p.MinVNFs+1)
}

// GenerateChain draws a chain application: θ → v1 → v2 → ... → vk.
func GenerateChain(name string, p Params, rng *rand.Rand) *App {
	k := p.numVNFs(rng)
	a := &App{Name: name, Kind: KindChain}
	a.VNFs = append(a.VNFs, VNF{ID: Root})
	for i := 1; i <= k; i++ {
		a.VNFs = append(a.VNFs, VNF{ID: VNFID(i), Size: p.size(rng)})
		a.Links = append(a.Links, VLink{From: VNFID(i - 1), To: VNFID(i), Size: p.size(rng)})
	}
	return a
}

// GenerateTree draws a two-branch tree: θ → v1, then v1 forks into two
// chains that together hold the remaining VNFs.
func GenerateTree(name string, p Params, rng *rand.Rand) *App {
	k := p.numVNFs(rng)
	if k < 3 {
		k = 3 // a two-branch tree needs a fork node plus two children
	}
	a := &App{Name: name, Kind: KindTree}
	a.VNFs = append(a.VNFs, VNF{ID: Root})
	a.VNFs = append(a.VNFs, VNF{ID: 1, Size: p.size(rng)})
	a.Links = append(a.Links, VLink{From: Root, To: 1, Size: p.size(rng)})
	// Split the remaining k-1 VNFs across two branches as evenly as the
	// draw allows, each branch getting at least one.
	left := 1 + rng.IntN(k-2)
	branch := func(count int) {
		parent := VNFID(1)
		for i := 0; i < count; i++ {
			id := VNFID(len(a.VNFs))
			a.VNFs = append(a.VNFs, VNF{ID: id, Size: p.size(rng)})
			a.Links = append(a.Links, VLink{From: parent, To: id, Size: p.size(rng)})
			parent = id
		}
	}
	branch(left)
	branch(k - 1 - left)
	return a
}

// GenerateAccelerator draws an accelerator chain: a chain with one
// accelerator VNF that shrinks every downstream virtual link by
// AccelReduction (70% in the paper, after [33]).
func GenerateAccelerator(name string, p Params, rng *rand.Rand) *App {
	a := GenerateChain(name, p, rng)
	a.Kind = KindAccelerator
	k := len(a.VNFs) - 1 // functional VNFs
	// The accelerator sits strictly before the chain's end so that the
	// "consequent virtual link" it shrinks always exists.
	accel := 1 + rng.IntN(k-1)
	for i := range a.Links {
		// Links[i] joins VNF i to VNF i+1; it is downstream of the
		// accelerator when its source is at or past the accelerator.
		if int(a.Links[i].From) >= accel {
			a.Links[i].Size *= 1 - p.AccelReduction
		}
	}
	return a
}

// GenerateGPU draws a GPU chain: a chain with one randomly selected VNF
// that must be placed on a dedicated GPU datacenter (Fig. 10 scenario).
func GenerateGPU(name string, p Params, rng *rand.Rand) *App {
	a := GenerateChain(name, p, rng)
	a.Kind = KindGPU
	k := len(a.VNFs) - 1
	gpu := 1 + rng.IntN(k)
	a.VNFs[gpu].GPU = true
	return a
}

// Generate draws one application of the given kind.
func Generate(kind Kind, name string, p Params, rng *rand.Rand) *App {
	switch kind {
	case KindChain:
		return GenerateChain(name, p, rng)
	case KindTree:
		return GenerateTree(name, p, rng)
	case KindAccelerator:
		return GenerateAccelerator(name, p, rng)
	case KindGPU:
		return GenerateGPU(name, p, rng)
	default:
		panic(fmt.Sprintf("vnet: unknown application kind %d", kind))
	}
}

// DefaultMix draws the paper's standard application set (Table III): two
// chains, one tree, one accelerator, selected with equal probability at
// request time.
func DefaultMix(p Params, rng *rand.Rand) []*App {
	return []*App{
		GenerateChain("chain-1", p, rng),
		GenerateChain("chain-2", p, rng),
		GenerateTree("tree", p, rng),
		GenerateAccelerator("accelerator", p, rng),
	}
}

// UniformKindSet draws four applications of a single kind, used by the
// per-application-type sensitivity experiment (Fig. 9) and the GPU
// experiment (Fig. 10).
func UniformKindSet(kind Kind, p Params, rng *rand.Rand) []*App {
	apps := make([]*App, 4)
	for i := range apps {
		apps[i] = Generate(kind, fmt.Sprintf("%s-%d", kind, i+1), p, rng)
	}
	return apps
}

// MeanFootprint returns the expected total node-size Σβ of an application
// drawn with params p. With Table III defaults this is ≈ E[#VNFs]·E[β] =
// 4·50 = 200 CU per unit of demand; the utilization calibration in the
// simulator relies on it.
func MeanFootprint(p Params) float64 {
	meanVNFs := float64(p.MinVNFs+p.MaxVNFs) / 2
	return meanVNFs * p.SizeMean
}
