package vnet

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/olive-vne/olive/internal/graph"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 17)) }

func TestGenerateChainStructure(t *testing.T) {
	p := DefaultParams()
	for seed := uint64(0); seed < 20; seed++ {
		a := GenerateChain("c", p, testRNG(seed))
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid chain: %v", seed, err)
		}
		k := a.FunctionalVNFs()
		if k < p.MinVNFs || k > p.MaxVNFs {
			t.Fatalf("seed %d: chain has %d VNFs, want [%d,%d]", seed, k, p.MinVNFs, p.MaxVNFs)
		}
		// Chain: every link joins consecutive VNFs.
		for i, l := range a.Links {
			if int(l.From) != i || int(l.To) != i+1 {
				t.Fatalf("seed %d: link %d joins %d→%d, want %d→%d", seed, i, l.From, l.To, i, i+1)
			}
		}
	}
}

func TestGenerateTreeHasTwoBranches(t *testing.T) {
	p := DefaultParams()
	for seed := uint64(0); seed < 20; seed++ {
		a := GenerateTree("t", p, testRNG(seed))
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid tree: %v", seed, err)
		}
		// VNF 1 (the fork) must have exactly two children.
		children := 0
		for _, l := range a.Links {
			if l.From == 1 {
				children++
			}
		}
		if children != 2 {
			t.Fatalf("seed %d: fork node has %d children, want 2", seed, children)
		}
	}
}

func TestGenerateAcceleratorShrinksDownstreamLinks(t *testing.T) {
	p := DefaultParams()
	p.SizeStd = 0 // deterministic sizes isolate the reduction effect
	found := false
	for seed := uint64(0); seed < 30; seed++ {
		a := GenerateAccelerator("a", p, testRNG(seed))
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid accelerator: %v", seed, err)
		}
		var small, full int
		for _, l := range a.Links {
			switch {
			case math.Abs(l.Size-p.SizeMean*(1-p.AccelReduction)) < 1e-9:
				small++
			case math.Abs(l.Size-p.SizeMean) < 1e-9:
				full++
			default:
				t.Fatalf("seed %d: link size %g is neither full nor reduced", seed, l.Size)
			}
		}
		if small > 0 && full > 0 {
			found = true
		}
		if small == 0 {
			t.Fatalf("seed %d: no reduced links in accelerator app", seed)
		}
	}
	if !found {
		t.Error("no seed produced a mid-chain accelerator (both full and reduced links)")
	}
}

func TestGenerateGPUMarksExactlyOneVNF(t *testing.T) {
	p := DefaultParams()
	for seed := uint64(0); seed < 20; seed++ {
		a := GenerateGPU("g", p, testRNG(seed))
		var gpus int
		for _, v := range a.VNFs {
			if v.GPU {
				gpus++
			}
		}
		if gpus != 1 {
			t.Fatalf("seed %d: %d GPU VNFs, want 1", seed, gpus)
		}
		if a.VNFs[Root].GPU {
			t.Fatalf("seed %d: root θ marked GPU", seed)
		}
		if !a.HasGPU() {
			t.Fatalf("seed %d: HasGPU() false for GPU app", seed)
		}
	}
}

func TestDefaultMixComposition(t *testing.T) {
	apps := DefaultMix(DefaultParams(), testRNG(3))
	if len(apps) != 4 {
		t.Fatalf("DefaultMix returned %d apps, want 4", len(apps))
	}
	kinds := map[Kind]int{}
	for _, a := range apps {
		kinds[a.Kind]++
		if err := a.Validate(); err != nil {
			t.Fatalf("app %q invalid: %v", a.Name, err)
		}
	}
	if kinds[KindChain] != 2 || kinds[KindTree] != 1 || kinds[KindAccelerator] != 1 {
		t.Fatalf("mix kinds = %v, want 2 chain / 1 tree / 1 accelerator", kinds)
	}
}

func TestUniformKindSet(t *testing.T) {
	for _, k := range []Kind{KindChain, KindTree, KindAccelerator, KindGPU} {
		apps := UniformKindSet(k, DefaultParams(), testRNG(1))
		if len(apps) != 4 {
			t.Fatalf("%v: got %d apps, want 4", k, len(apps))
		}
		for _, a := range apps {
			if a.Kind != k {
				t.Fatalf("%v: app %q has kind %v", k, a.Name, a.Kind)
			}
		}
	}
}

func TestValidateRejectsMalformedApps(t *testing.T) {
	mk := func(mutate func(*App)) *App {
		a := &App{
			Name: "x", Kind: KindChain,
			VNFs:  []VNF{{ID: 0}, {ID: 1, Size: 10}, {ID: 2, Size: 10}},
			Links: []VLink{{From: 0, To: 1, Size: 5}, {From: 1, To: 2, Size: 5}},
		}
		mutate(a)
		return a
	}
	tests := []struct {
		name   string
		mutate func(*App)
	}{
		{"root with size", func(a *App) { a.VNFs[0].Size = 3 }},
		{"too few VNFs", func(a *App) { a.VNFs = a.VNFs[:1]; a.Links = nil }},
		{"wrong link count", func(a *App) { a.Links = a.Links[:1] }},
		{"cycle", func(a *App) { a.Links[1] = VLink{From: 1, To: 1, Size: 5} }},
		{"orphan parent", func(a *App) { a.Links[0] = VLink{From: 2, To: 1, Size: 5}; a.Links[1] = VLink{From: 1, To: 2, Size: 5} }},
		{"zero link size", func(a *App) { a.Links[0].Size = 0 }},
		{"zero VNF size", func(a *App) { a.VNFs[1].Size = 0 }},
		{"endpoint out of range", func(a *App) { a.Links[1].To = 9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := mk(tt.mutate).Validate(); err == nil {
				t.Fatal("Validate accepted a malformed app")
			}
		})
	}
}

func TestEffGPUExclusions(t *testing.T) {
	gpuVNF := VNF{ID: 1, Size: 10, GPU: true}
	cpuVNF := VNF{ID: 2, Size: 10}
	rootVNF := VNF{ID: Root}
	gpuNode := graph.Node{GPU: true}
	cpuNode := graph.Node{}

	if !math.IsInf(Eff(gpuVNF, cpuNode), 1) {
		t.Error("GPU VNF on CPU node not forbidden")
	}
	if !math.IsInf(Eff(cpuVNF, gpuNode), 1) {
		t.Error("CPU VNF on GPU node not forbidden")
	}
	if Eff(gpuVNF, gpuNode) != 1 || Eff(cpuVNF, cpuNode) != 1 {
		t.Error("matched placements should have η=1")
	}
	if Eff(rootVNF, gpuNode) != 1 {
		t.Error("θ must be placeable anywhere")
	}
}

func TestMeanFootprint(t *testing.T) {
	if got := MeanFootprint(DefaultParams()); got != 200 {
		t.Fatalf("MeanFootprint = %g, want 200 (4 VNFs × 50 CU)", got)
	}
}

func TestSizesTruncatedPositive(t *testing.T) {
	p := DefaultParams()
	p.SizeMean = 1 // force frequent truncation
	rng := testRNG(4)
	for i := 0; i < 200; i++ {
		a := GenerateChain("c", p, rng)
		for _, v := range a.VNFs[1:] {
			if v.Size < p.SizeMin {
				t.Fatalf("VNF size %g below minimum %g", v.Size, p.SizeMin)
			}
		}
	}
}

// --- Embedding tests ---

// testSubstrate builds a 4-node line A-B-C-D, generous capacities.
func testSubstrate() *graph.Graph {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Name: string(rune('A' + i)), Tier: graph.TierEdge, Cap: 1000, Cost: float64(i + 1)})
	}
	g.AddLink(0, 1, 500, 1)
	g.AddLink(1, 2, 500, 1)
	g.AddLink(2, 3, 500, 1)
	return g
}

// chainApp builds θ→v1→v2 with fixed sizes.
func chainApp() *App {
	return &App{
		Name: "fixed", Kind: KindChain,
		VNFs:  []VNF{{ID: 0}, {ID: 1, Size: 10}, {ID: 2, Size: 20}},
		Links: []VLink{{From: 0, To: 1, Size: 4}, {From: 1, To: 2, Size: 6}},
	}
}

func mustPath(t *testing.T, g *graph.Graph, from, to graph.NodeID) graph.Path {
	t.Helper()
	p, ok := g.ShortestPath(from, to, graph.CostWeight)
	if !ok {
		t.Fatalf("no path %d→%d", from, to)
	}
	return p
}

func TestNewEmbeddingUsageAndCost(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	// θ at A, v1 at B, v2 at D. Paths: A→B (1 link), B→D (2 links).
	nm := []graph.NodeID{0, 1, 3}
	pm := []graph.Path{mustPath(t, g, 0, 1), mustPath(t, g, 1, 3)}
	e, err := NewEmbedding(g, a, nm, pm)
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}

	want := map[graph.ElementID]float64{
		g.NodeElement(1): 10, // v1 on B
		g.NodeElement(3): 20, // v2 on D
		g.LinkElement(0): 4,  // vlink θ-v1 on A-B
		g.LinkElement(1): 6,  // vlink v1-v2 on B-C
		g.LinkElement(2): 6,  // vlink v1-v2 on C-D
	}
	got := map[graph.ElementID]float64{}
	for _, u := range e.UnitUse() {
		got[u.Elem] = u.Amount
	}
	if len(got) != len(want) {
		t.Fatalf("usage support = %v, want %v", got, want)
	}
	for elem, amt := range want {
		if math.Abs(got[elem]-amt) > 1e-9 {
			t.Errorf("usage[%d] = %g, want %g", elem, got[elem], amt)
		}
	}
	// Cost: v1 on B(cost 2) = 20, v2 on D(cost 4) = 80, links 4+6+6 = 16.
	if math.Abs(e.UnitCost()-116) > 1e-9 {
		t.Errorf("UnitCost = %g, want 116", e.UnitCost())
	}
	if math.Abs(e.Cost(2)-232) > 1e-9 {
		t.Errorf("Cost(2) = %g, want 232", e.Cost(2))
	}
}

func TestNewEmbeddingCollocatedConsumesNoLinks(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	// All functional VNFs on B; θ at A.
	nm := []graph.NodeID{0, 1, 1}
	pm := []graph.Path{mustPath(t, g, 0, 1), {Nodes: []graph.NodeID{1}}}
	e, err := NewEmbedding(g, a, nm, pm)
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}
	if !e.Collocated() {
		t.Error("Collocated() = false for collocated embedding")
	}
	for _, u := range e.UnitUse() {
		if l, isLink := g.ElementLink(u.Elem); isLink && l != 0 {
			t.Errorf("collocated embedding consumes link %d", l)
		}
	}
}

func TestNewEmbeddingErrors(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	okPath := mustPath(t, g, 0, 1)
	selfPath := graph.Path{Nodes: []graph.NodeID{1}}

	tests := []struct {
		name string
		nm   []graph.NodeID
		pm   []graph.Path
	}{
		{"wrong node arity", []graph.NodeID{0, 1}, []graph.Path{okPath, selfPath}},
		{"wrong path arity", []graph.NodeID{0, 1, 1}, []graph.Path{okPath}},
		{"empty path, split endpoints", []graph.NodeID{0, 1, 2}, []graph.Path{okPath, selfPath}},
		{"path endpoints mismatch", []graph.NodeID{0, 1, 3}, []graph.Path{okPath, mustPath(t, g, 1, 2)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEmbedding(g, a, tt.nm, tt.pm); err == nil {
				t.Fatal("NewEmbedding accepted invalid mapping")
			}
		})
	}
}

func TestNewEmbeddingForbidsGPUMismatch(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	a.VNFs[1].GPU = true // node B is not GPU
	nm := []graph.NodeID{0, 1, 1}
	pm := []graph.Path{mustPath(t, g, 0, 1), {Nodes: []graph.NodeID{1}}}
	if _, err := NewEmbedding(g, a, nm, pm); err == nil {
		t.Fatal("embedding of GPU VNF on non-GPU node accepted")
	}
}

func TestFitsApplyRelease(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	nm := []graph.NodeID{0, 1, 1}
	pm := []graph.Path{mustPath(t, g, 0, 1), {Nodes: []graph.NodeID{1}}}
	e, err := NewEmbedding(g, a, nm, pm)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Capacities()
	orig := append([]float64(nil), res...)

	// Node B holds 30 CU per unit demand → capacity 1000 fits d≈33.3.
	if !e.FitsResidual(res, 33) {
		t.Error("demand 33 should fit")
	}
	if e.FitsResidual(res, 34) {
		t.Error("demand 34 should not fit")
	}
	if maxD := e.MaxDemandWithin(res); math.Abs(maxD-1000.0/30.0) > 1e-9 {
		t.Errorf("MaxDemandWithin = %g, want %g", maxD, 1000.0/30.0)
	}

	e.Apply(res, 10)
	if got := res[g.NodeElement(1)]; math.Abs(got-700) > 1e-9 {
		t.Errorf("after Apply(10): node B residual = %g, want 700", got)
	}
	e.Release(res, 10)
	for i := range res {
		if math.Abs(res[i]-orig[i]) > 1e-9 {
			t.Fatalf("Release did not restore element %d: %g vs %g", i, res[i], orig[i])
		}
	}
}

// Property: Apply then Release restores any residual vector, for random
// demands. (testing/quick over the demand value.)
func TestApplyReleaseRoundTripProperty(t *testing.T) {
	g := testSubstrate()
	a := chainApp()
	nm := []graph.NodeID{0, 1, 3}
	pm := []graph.Path{mustPath(t, g, 0, 1), mustPath(t, g, 1, 3)}
	e, err := NewEmbedding(g, a, nm, pm)
	if err != nil {
		t.Fatal(err)
	}
	f := func(dRaw uint16) bool {
		d := float64(dRaw) / 100
		res := g.Capacities()
		orig := append([]float64(nil), res...)
		e.Apply(res, d)
		e.Release(res, d)
		for i := range res {
			if math.Abs(res[i]-orig[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random generated apps, total sizes are positive and
// Validate passes.
func TestGeneratedAppsAlwaysValidProperty(t *testing.T) {
	p := DefaultParams()
	f := func(seed uint64, kindRaw uint8) bool {
		kind := Kind(kindRaw%4) + KindChain
		a := Generate(kind, "prop", p, testRNG(seed))
		return a.Validate() == nil && a.TotalNodeSize() > 0 && a.TotalLinkSize() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindChain: "Chain", KindTree: "Tree", KindAccelerator: "Acc", KindGPU: "GPU", Kind(99): "Kind(99)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
