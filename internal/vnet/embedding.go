package vnet

import (
	"fmt"
	"math"

	"github.com/olive-vne/olive/internal/graph"
)

// ElementUse is one entry of a sparse per-unit-demand resource usage
// vector: Amount CU consumed on substrate element Elem per unit of request
// demand.
type ElementUse struct {
	Elem   graph.ElementID
	Amount float64
}

// Embedding is an integral (unsplittable) mapping of an application onto a
// substrate: every VNF to a node, every virtual link to a path. Embeddings
// are immutable once built; per-unit usage and cost are precomputed so the
// online engine can test feasibility in O(|support|).
type Embedding struct {
	App *App
	// NodeMap[i] is the substrate node hosting VNF i; NodeMap[0] is the
	// ingress (θ's pin).
	NodeMap []graph.NodeID
	// PathMap[i] is the substrate path carrying App.Links[i]. Virtual
	// links between VNFs collocated on one node use an empty path and
	// consume no link capacity.
	PathMap []graph.Path

	// use is the per-unit-demand usage vector, sparse, with one entry
	// per distinct substrate element, sorted by element ID.
	use []ElementUse
	// unitCost is the resource cost per unit of demand (Σ use·cost).
	unitCost float64
}

// NewEmbedding builds an embedding and precomputes its usage and cost.
// It returns an error if the mapping is structurally invalid (wrong arity,
// forbidden placement, path endpoints not matching the node map).
func NewEmbedding(g *graph.Graph, app *App, nodeMap []graph.NodeID, pathMap []graph.Path) (*Embedding, error) {
	if len(nodeMap) != len(app.VNFs) {
		return nil, fmt.Errorf("vnet: node map has %d entries for %d VNFs", len(nodeMap), len(app.VNFs))
	}
	if len(pathMap) != len(app.Links) {
		return nil, fmt.Errorf("vnet: path map has %d entries for %d virtual links", len(pathMap), len(app.Links))
	}
	// Accumulate the sparse usage vector in a small stack-backed buffer:
	// supports are tiny (≤ ~15 elements), so a linear-scan merge beats a
	// map — and spends zero allocations in the common case.
	var stack [24]ElementUse
	acc := stack[:0]
	for i, v := range app.VNFs {
		n := g.Node(nodeMap[i])
		eta := Eff(v, n)
		if math.IsInf(eta, 1) {
			return nil, fmt.Errorf("vnet: VNF %d (gpu=%v) may not be placed on node %q (gpu=%v)", i, v.GPU, n.Name, n.GPU)
		}
		if v.Size == 0 {
			continue
		}
		acc = addUse(acc, g.NodeElement(nodeMap[i]), v.Size*eta)
	}
	for i, vl := range app.Links {
		p := pathMap[i]
		from, to := nodeMap[vl.From], nodeMap[vl.To]
		if p.Len() == 0 {
			if from != to {
				return nil, fmt.Errorf("vnet: virtual link %d maps to empty path but endpoints differ (%d,%d)", i, from, to)
			}
			continue
		}
		if p.Src() != from || p.Dst() != to {
			return nil, fmt.Errorf("vnet: virtual link %d path runs %d→%d, want %d→%d", i, p.Src(), p.Dst(), from, to)
		}
		for _, lid := range p.Links {
			acc = addUse(acc, g.LinkElement(lid), vl.Size*LinkEff(vl, g.Link(lid)))
		}
	}
	e := &Embedding{App: app, NodeMap: nodeMap, PathMap: pathMap}
	e.use = make([]ElementUse, len(acc))
	copy(e.use, acc)
	sortUses(e.use)
	for _, u := range e.use {
		e.unitCost += u.Amount * g.ElementCost(u.Elem)
	}
	return e, nil
}

// addUse merges one contribution into the accumulating usage vector,
// summing amounts for an element already present — the same
// one-entry-per-element invariant the map accumulation kept, with the
// same per-element addition order (loop order).
func addUse(acc []ElementUse, elem graph.ElementID, amt float64) []ElementUse {
	for i := range acc {
		if acc[i].Elem == elem {
			acc[i].Amount += amt
			return acc
		}
	}
	return append(acc, ElementUse{Elem: elem, Amount: amt})
}

func sortUses(us []ElementUse) {
	// Insertion sort: supports are tiny (≤ ~15 elements).
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].Elem < us[j-1].Elem; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// UnitUse returns the per-unit-demand usage vector, sorted by element.
// Callers must not mutate it.
func (e *Embedding) UnitUse() []ElementUse { return e.use }

// UnitCost returns the resource cost incurred per unit of demand.
func (e *Embedding) UnitCost() float64 { return e.unitCost }

// Cost returns the resource cost of hosting demand d on this embedding
// for one time slot.
func (e *Embedding) Cost(d float64) float64 { return e.unitCost * d }

// FitsResidual reports whether demand d fits within the residual capacity
// vector res (indexed by ElementID), i.e. Eq. 18 of the paper.
func (e *Embedding) FitsResidual(res []float64, d float64) bool {
	for _, u := range e.use {
		if u.Amount*d > res[u.Elem]+capEps {
			return false
		}
	}
	return true
}

// MaxDemandWithin returns the largest demand that fits within res along
// this embedding (∞-free: returns math.MaxFloat64 when the embedding uses
// no resources).
func (e *Embedding) MaxDemandWithin(res []float64) float64 {
	maxD := math.MaxFloat64
	for _, u := range e.use {
		if u.Amount <= 0 {
			continue
		}
		if d := res[u.Elem] / u.Amount; d < maxD {
			maxD = d
		}
	}
	return maxD
}

// Apply subtracts demand d of this embedding from res in place.
func (e *Embedding) Apply(res []float64, d float64) {
	for _, u := range e.use {
		res[u.Elem] -= u.Amount * d
	}
}

// Release returns demand d of this embedding to res in place.
func (e *Embedding) Release(res []float64, d float64) {
	for _, u := range e.use {
		res[u.Elem] += u.Amount * d
	}
}

// Collocated reports whether all functional VNFs share one substrate node.
func (e *Embedding) Collocated() bool {
	if len(e.NodeMap) <= 1 {
		return true
	}
	first := e.NodeMap[1]
	for _, n := range e.NodeMap[2:] {
		if n != first {
			return false
		}
	}
	return true
}

// capEps absorbs floating-point noise in capacity comparisons: a request
// that exceeds residual capacity by less than capEps CU is considered to
// fit. All capacities in the evaluation are ≥ 10³ CU, so this is ~12
// orders of magnitude below real contention.
const capEps = 1e-7
