package errenvelope_test

import (
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysistest"
	"github.com/olive-vne/olive/internal/lint/analyzers/errenvelope"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata", errenvelope.Analyzer, "serve", "other")
}
