// Package errenvelope enforces the v1 API error contract in the serve
// package: every non-2xx response body is emitted through the envelope
// helpers (writeError / writeErrorRetry), which produce the stable
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": ...}}
//
// shape clients program against (PR 9's API redesign). Flagged inside
// serve:
//
//   - http.Error — plain-text bodies bypass the envelope entirely;
//   - w.WriteHeader(<constant ≥ 300>) outside the helpers — a handler
//     setting an error status directly is about to write its own body
//     (or none), both off-contract;
//   - writeJSON with a constant non-2xx status and a non-envelope
//     payload.
//
// Statuses computed at runtime are invisible to this check; the shape
// regression tests in serve cover those. The analyzer keys on the
// package's base name ("serve") so its fixtures can model the contract
// without importing the real package.
package errenvelope

import (
	"go/ast"
	"go/types"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "serve handlers must emit non-2xx bodies through the v1 error envelope " +
		"helpers (writeError/writeErrorRetry), never http.Error or raw WriteHeader",
	Run: run,
}

// envelopeHelpers are allowed to set error statuses: they are the
// envelope implementation.
var envelopeHelpers = map[string]bool{
	"writeJSON": true, "writeError": true, "writeErrorRetry": true,
}

func run(pass *analysis.Pass) error {
	if lintutil.PathBase(pass.Pkg.Path()) != "serve" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inHelper := fd.Recv == nil && envelopeHelpers[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, inHelper)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inHelper bool) {
	info := pass.TypesInfo
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil {
		return
	}

	// http.Error writes a text/plain body: never envelope-shaped.
	sig, _ := fn.Type().(*types.Signature)
	if lintutil.PkgPath(fn) == "net/http" && fn.Name() == "Error" && sig != nil && sig.Recv() == nil {
		pass.Reportf(call.Pos(),
			"http.Error bypasses the v1 error envelope; use writeError(w, status, code, ...)")
		return
	}

	if inHelper {
		return
	}

	// Direct WriteHeader with a constant error status.
	if fn.Name() == "WriteHeader" && len(call.Args) == 1 {
		if status, ok := lintutil.ConstInt(info, call.Args[0]); ok && status >= 300 {
			pass.Reportf(call.Pos(),
				"WriteHeader(%d) outside the envelope helpers: non-2xx responses must go through writeError/writeErrorRetry",
				status)
			return
		}
	}

	// writeJSON with an error status and a payload that is not the
	// envelope struct.
	if fn.Name() == "writeJSON" && fn.Pkg() != nil && fn.Pkg().Path() == pass.Pkg.Path() && len(call.Args) >= 3 {
		status, ok := lintutil.ConstInt(info, call.Args[1])
		if !ok || status < 300 {
			return
		}
		if tv, ok := info.Types[call.Args[2]]; ok {
			if n := lintutil.NamedOf(tv.Type); n != nil && n.Obj().Name() == "errorResponse" {
				return
			}
		}
		pass.Reportf(call.Pos(),
			"writeJSON with status %d and a non-envelope payload: non-2xx bodies must be errorResponse via writeError/writeErrorRetry",
			status)
	}
}
