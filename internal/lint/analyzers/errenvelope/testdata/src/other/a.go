// Package other is out of scope: the envelope contract binds only the
// serve package.
package other

import "net/http"

func plainError(w http.ResponseWriter) {
	http.Error(w, "fine here", http.StatusInternalServerError)
	w.WriteHeader(http.StatusBadGateway)
}
