// Package serve is a fixture stand-in for the real serve package (the
// analyzer keys on the import-path base): it models the envelope
// helpers and the handler mistakes the contract forbids.
package serve

import "net/http"

type errorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Code: code, Message: msg})
}

func writeErrorRetry(w http.ResponseWriter, status int, code, msg string, retryMS int) {
	writeJSON(w, status, errorResponse{Code: code, Message: msg})
}

type payload struct{ OK bool }

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the v1 error envelope`
}

func handleRawHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTooManyRequests) // want `WriteHeader\(429\) outside the envelope helpers`
}

func handleBadPayload(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusBadRequest, payload{}) // want `writeJSON with status 400 and a non-envelope payload`
}

func handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	writeJSON(w, http.StatusOK, payload{OK: true})
}

func handleEnveloped(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusBadRequest, "bad_request", "malformed body")
	writeJSON(w, http.StatusNotFound, errorResponse{Code: "not_found", Message: "no such plan"})
}
