// Package analyzers enumerates olivelint's checks.
package analyzers

import (
	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/analyzers/detsource"
	"github.com/olive-vne/olive/internal/lint/analyzers/errenvelope"
	"github.com/olive-vne/olive/internal/lint/analyzers/hotpath"
	"github.com/olive-vne/olive/internal/lint/analyzers/maporder"
	"github.com/olive-vne/olive/internal/lint/analyzers/metricname"
)

// All returns every olivelint analyzer, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		detsource.Analyzer,
		hotpath.Analyzer,
		metricname.Analyzer,
		errenvelope.Analyzer,
	}
}
