// Package metricname enforces the repo's metric-family conventions
// (CONTRIBUTING.md "Metric families") at the registration call sites —
// every `(*obs.Registry).Counter/Gauge/Histogram/...` call:
//
//   - the family name is a compile-time string constant (a computed
//     name defeats every other check and grep);
//   - names match `vne_<noun>_<suffix>` in snake_case;
//   - counters (Counter, CounterVec, CounterFunc, CounterFuncVec) end
//     in `_total`; nothing else may;
//   - histograms end in a unit suffix (`_seconds`, `_bytes`, `_ratio`);
//   - label names are snake_case, at most four per family, and never
//     from the unbounded-cardinality set (request/client IDs,
//     addresses, paths): label values are a memory commitment, and a
//     per-request label is a leak.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "checks obs.Registry registrations: constant vne_-prefixed snake_case names, " +
		"_total on counters, unit suffixes on histograms, bounded snake_case labels",
	Run: run,
}

// counterKinds lists the registration methods whose families are
// counters, histogramKinds the histograms; everything else registered
// through the matched methods is a gauge.
var (
	registerKinds = map[string]bool{
		"Counter": true, "Gauge": true, "Histogram": true,
		"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
		"CounterFunc": true, "GaugeFunc": true,
		"CounterFuncVec": true, "GaugeFuncVec": true,
	}
	counterKinds = map[string]bool{
		"Counter": true, "CounterVec": true, "CounterFunc": true, "CounterFuncVec": true,
	}
	histogramKinds = map[string]bool{"Histogram": true, "HistogramVec": true}

	nameRE  = regexp.MustCompile(`^vne_[a-z0-9]+(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

	// unitSuffixes are the accepted histogram units.
	unitSuffixes = []string{"_seconds", "_bytes", "_ratio"}

	// unboundedLabels name per-request/per-client identity: open sets
	// whose series count grows with traffic. "path" is deliberately
	// absent: this repo's path labels are route patterns and code
	// paths (closed sets), not raw URLs — those are caught as "url".
	unboundedLabels = map[string]bool{
		"id": true, "request_id": true, "client": true, "client_id": true,
		"addr": true, "address": true, "remote_addr": true,
		"url": true, "ip": true, "user": true, "uuid": true,
	}

	maxLabels = 4
)

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := registryMethod(pass.TypesInfo, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		checkRegistration(pass, call, kind)
		return true
	})
	return nil
}

// registryMethod reports whether call invokes a family-registration
// method on a *Registry from an obs package, and which one.
func registryMethod(info *types.Info, call *ast.CallExpr) (kind string, ok bool) {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || !registerKinds[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named := lintutil.NamedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Registry" {
		return "", false
	}
	if lintutil.PathBase(lintutil.TypePkgPath(sig.Recv().Type())) != "obs" {
		return "", false
	}
	return fn.Name(), true
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	info := pass.TypesInfo

	name, isConst := lintutil.ConstString(info, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(),
			"metric family name must be a compile-time string constant (got a computed value)")
		return
	}
	switch {
	case !nameRE.MatchString(name):
		pass.Reportf(call.Args[0].Pos(),
			"metric family %q must match vne_<noun>_<suffix> in snake_case (%s)", name, nameRE)
	case counterKinds[kind] && !strings.HasSuffix(name, "_total"):
		pass.Reportf(call.Args[0].Pos(),
			"counter family %q must end in _total", name)
	case !counterKinds[kind] && strings.HasSuffix(name, "_total"):
		pass.Reportf(call.Args[0].Pos(),
			"%s family %q must not end in _total (reserved for counters)", strings.ToLower(kind), name)
	case histogramKinds[kind] && !hasUnitSuffix(name):
		pass.Reportf(call.Args[0].Pos(),
			"histogram family %q must end in a unit suffix (%s)", name, strings.Join(unitSuffixes, ", "))
	}

	// Help string: the second argument everywhere.
	if len(call.Args) > 1 {
		if help, ok := lintutil.ConstString(info, call.Args[1]); ok && strings.TrimSpace(help) == "" {
			pass.Reportf(call.Args[1].Pos(), "metric family %q has an empty help string", name)
		}
	}

	labels := labelArgs(call, kind)
	if len(labels) > maxLabels {
		pass.Reportf(call.Pos(),
			"metric family %q declares %d labels (max %d): every label multiplies the series count",
			name, len(labels), maxLabels)
	}
	for _, l := range labels {
		lv, ok := lintutil.ConstString(info, l)
		if !ok {
			pass.Reportf(l.Pos(), "metric family %q: label names must be compile-time string constants", name)
			continue
		}
		if !labelRE.MatchString(lv) {
			pass.Reportf(l.Pos(), "metric family %q: label %q must be snake_case (%s)", name, lv, labelRE)
		}
		if unboundedLabels[lv] {
			pass.Reportf(l.Pos(),
				"metric family %q: label %q names an unbounded set (per-request/per-client identity); label values must come from a small closed set",
				name, lv)
		}
	}
}

// labelArgs returns the label-name argument expressions of a
// registration call: the trailing variadic strings of the Vec forms.
func labelArgs(call *ast.CallExpr, kind string) []ast.Expr {
	var fixed int
	switch kind {
	case "CounterVec", "GaugeVec", "GaugeFuncVec", "CounterFuncVec":
		fixed = 2 // name, help, labels...
	case "HistogramVec":
		fixed = 3 // name, help, buckets, labels...
	default:
		return nil
	}
	if len(call.Args) <= fixed || call.Ellipsis.IsValid() {
		return nil
	}
	return call.Args[fixed:]
}

func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
