// Package metrics exercises the metricname analyzer against the obs
// fixture stub.
package metrics

import "obs"

func registerGood(r *obs.Registry) {
	r.Counter("vne_requests_total", "requests served")
	r.CounterVec("vne_http_requests_total", "requests by route", "path", "code")
	r.Histogram("vne_solve_seconds", "solve latency", nil)
	r.GaugeFunc("vne_queue_depth", "queued jobs", func() float64 { return 0 })
}

func registerBad(r *obs.Registry, dynamic string) {
	r.Counter("requests_total", "no prefix")                            // want `must match vne_`
	r.Counter("vne_requests", "missing _total")                         // want `must end in _total`
	r.Gauge("vne_depth_total", "gauge with total")                      // want `must not end in _total`
	r.Histogram("vne_solve", "no unit", nil)                            // want `must end in a unit suffix`
	r.Counter(dynamic, "computed name")                                 // want `must be a compile-time string constant`
	r.Counter("vne_empty_help_total", "")                               // want `empty help string`
	r.CounterVec("vne_by_client_total", "per client", "client_id")      // want `names an unbounded set`
	r.GaugeVec("vne_width", "too many labels", "a", "b", "c", "d", "e") // want `declares 5 labels`
	r.CounterVec("vne_bad_label_total", "label case", "Path")           // want `must be snake_case`
	r.HistogramVec("vne_latency_seconds", "latency", nil, "request_id") // want `names an unbounded set`
}

// notTheRegistry: same method name on a local type draws nothing.
type fake struct{}

func (f fake) Counter(name, help string) {}

func registerFake() {
	fake{}.Counter("whatever", "not a metric registry")
}
