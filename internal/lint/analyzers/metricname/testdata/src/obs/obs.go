// Package obs is a fixture stub of the real metrics registry: the
// metricname analyzer matches the registration methods of any
// *Registry whose package's import-path base is "obs", so this stub
// stands in for internal/obs without the dependency.
package obs

type (
	Registry       struct{}
	Counter        struct{}
	Gauge          struct{}
	Histogram      struct{}
	CounterVec     struct{}
	GaugeVec       struct{}
	HistogramVec   struct{}
	GaugeFuncVec   struct{}
	CounterFuncVec struct{}
)

func (r *Registry) Counter(name, help string) Counter { return Counter{} }
func (r *Registry) Gauge(name, help string) Gauge     { return Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return nil
}
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return nil
}
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return nil
}
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return nil
}
func (r *Registry) GaugeFunc(name, help string, fn func() float64)   {}
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}
func (r *Registry) GaugeFuncVec(name, help string, labelNames ...string) *GaugeFuncVec {
	return nil
}
func (r *Registry) CounterFuncVec(name, help string, labelNames ...string) *CounterFuncVec {
	return nil
}
