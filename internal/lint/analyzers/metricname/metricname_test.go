package metricname_test

import (
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysistest"
	"github.com/olive-vne/olive/internal/lint/analyzers/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "metrics")
}
