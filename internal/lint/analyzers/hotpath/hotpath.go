// Package hotpath structurally checks functions annotated
// `//olive:hotpath` for allocation-prone constructs. The repo's
// per-request serving path is allocation-budgeted (38 allocs/op,
// guarded by BenchmarkServeEmbedWithMetrics and friends); the bench
// guard catches a regression's magnitude after the fact, while this
// analyzer names the construct that caused it at lint time.
//
// Four constructs are flagged inside an annotated function's body:
//
//   - fmt calls: every fmt entry point allocates (and boxes its
//     arguments); hot paths format nothing.
//   - unsized append growth: append to a slice that starts nil or
//     empty-without-capacity in the same function reallocates
//     geometrically; pre-size it or reuse a buffer.
//   - interface boxing: passing or converting a non-pointer-shaped
//     value (struct, basic, slice, string, ...) into an interface
//     parameter heap-allocates the value. Pointer-shaped values (*T,
//     func, chan, map) box for free and are not flagged.
//   - closure capture: a func literal that captures enclosing
//     variables forces them (and itself) onto the heap each call.
//
// The checks are intentionally per-function and syntactic: annotate the
// frames that must stay clean (the annotation is also documentation),
// and keep helpers that are allowed to allocate — reconstruction,
// error paths — out of them.
package hotpath

import (
	"go/ast"
	"go/types"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/directive"
	"github.com/olive-vne/olive/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "checks //olive:hotpath-annotated functions for allocation-prone constructs: " +
		"fmt calls, unsized append growth, interface boxing of non-pointer values, " +
		"and capturing closures",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dirs := directive.ParseFiles(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs.Func(fd, directive.HotPath) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	unsized := unsizedSlices(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, n, unsized)
		case *ast.FuncLit:
			checkClosure(pass, fd, n)
			return false // captures inside the literal are the literal's problem
		}
		return true
	})
}

// unsizedSlices collects the local variables declared as nil or
// capacity-zero slices: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func unsizedSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						out[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !zeroCapSliceExpr(info, rhs) {
					continue
				}
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// zeroCapSliceExpr reports whether e is an empty-composite or
// zero-capacity make of a slice type.
func zeroCapSliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return false
		}
		capArg := e.Args[len(e.Args)-1] // cap when 3 args, len when 2
		v, isConst := lintutil.ConstInt(info, capArg)
		return isConst && v == 0
	}
	return false
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, unsized map[types.Object]bool) {
	info := pass.TypesInfo

	// fmt: allocates and boxes, full stop.
	if fn := lintutil.CalleeFunc(info, call); fn != nil && lintutil.PkgPath(fn) == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s, which allocates; format outside the hot path", fd.Name.Name, fn.Name())
		return
	}

	// append to an unsized local slice.
	if isBuiltin(info, call, "append") && len(call.Args) > 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && unsized[obj] {
				pass.Reportf(call.Pos(),
					"hot path %s grows %s from zero capacity; pre-size the slice or reuse a buffer",
					fd.Name.Name, id.Name)
			}
		}
	}

	// Interface boxing of call arguments (and conversions to interface
	// types, which parse as calls).
	tv, isConv := info.Types[call.Fun]
	if isConv && tv.IsType() {
		if types.IsInterface(tv.Type) {
			if atv, ok := info.Types[call.Args[0]]; ok && boxes(atv.Type) {
				pass.Reportf(call.Pos(),
					"hot path %s converts %s to interface %s, which allocates",
					fd.Name.Name, atv.Type.String(), tv.Type.String())
			}
		}
		return
	}
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1 && !call.Ellipsis.IsValid():
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		if atv, ok := info.Types[arg]; ok && boxes(atv.Type) {
			pass.Reportf(arg.Pos(),
				"hot path %s boxes %s into interface parameter %s, which allocates",
				fd.Name.Name, atv.Type.String(), param.String())
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: true for concrete non-pointer-shaped types.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !lintutil.PointerShaped(t)
}

func checkClosure(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	info := pass.TypesInfo
	captured := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured iff declared in the enclosing function but outside
		// the literal.
		if obj.Pos() >= fd.Pos() && obj.Pos() < lit.Pos() && !captured[obj.Name()] {
			captured[obj.Name()] = true
			names = append(names, obj.Name())
		}
		return true
	})
	if len(names) > 0 {
		pass.Reportf(lit.Pos(),
			"hot path %s creates a closure capturing %v; captures force heap allocation each call",
			fd.Name.Name, names)
	}
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
