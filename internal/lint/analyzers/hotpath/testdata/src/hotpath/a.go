// Package fixtures exercises the hotpath analyzer: allocation-prone
// constructs inside //olive:hotpath-annotated functions.
package fixtures

import "fmt"

type Sink interface{ Consume(int) }

type impl struct{ n int }

func (i *impl) Consume(v int) { i.n += v }

func take(s Sink)        { s.Consume(1) }
func takeAny(v any)      { _ = v }
func logv(vs ...any) int { return len(vs) }

//olive:hotpath fixture
func hotSprintf(id int) string {
	return fmt.Sprintf("req-%d", id) // want `hot path hotSprintf calls fmt.Sprintf`
}

//olive:hotpath fixture
func hotGrow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `hot path hotGrow grows out from zero capacity`
	}
	return out
}

//olive:hotpath fixture
func hotPresized(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//olive:hotpath fixture
func hotBox(s impl) {
	takeAny(s) // want `hot path hotBox boxes hotpath\.impl into interface parameter`
}

//olive:hotpath fixture
func hotVariadicBox(s impl) int {
	return logv(1, s) // want `boxes int into interface parameter` `boxes hotpath\.impl into interface parameter`
}

// hotPointerArg: pointers are pointer-shaped; storing one in an
// interface does not allocate.
//
//olive:hotpath fixture
func hotPointerArg(s *impl) {
	take(s)
}

//olive:hotpath fixture
func hotConvert(s impl) any {
	return any(s) // want `hot path hotConvert converts hotpath\.impl to interface`
}

//olive:hotpath fixture
func hotClosure(xs []int) int {
	total := 0
	add := func(v int) { total += v } // want `hot path hotClosure creates a closure capturing \[total\]`
	for _, x := range xs {
		add(x)
	}
	return total
}

//olive:hotpath fixture
func hotPureClosure() int {
	f := func(v int) int { return v * 2 }
	return f(21)
}

// coldSprintf is unannotated: the same constructs draw no findings.
func coldSprintf(id int) string {
	var out []int
	out = append(out, id)
	return fmt.Sprintf("req-%d", out[0])
}
