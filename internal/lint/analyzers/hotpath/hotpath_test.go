package hotpath_test

import (
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysistest"
	"github.com/olive-vne/olive/internal/lint/analyzers/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hotpath")
}
