// Package detsource forbids nondeterministic inputs — wall-clock
// reads, the global math/rand source, and environment lookups — inside
// the packages whose outputs must be bit-reproducible from their seeds:
// sim, plan, runner, workload, substrate, lp, and scenario. Those
// packages feed the golden fingerprints; a single time.Now or global
// rand draw in them silently breaks replay.
//
// Legitimate exceptions exist (the runner's progress/ETA lines, sim's
// wall-clock runtime columns, lp's OLIVE_LP_* ablation knobs) and are
// annotated with a `//olive:wallclock <why>` directive on the enclosing
// function or on the offending line — see internal/lint/directive.
// Deterministic constructors (rand.New, rand.NewPCG, rand.NewSource,
// ...) are always allowed; only the package-level draws that consume
// the ambient global source are not.
package detsource

import (
	"go/ast"
	"go/types"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/directive"
	"github.com/olive-vne/olive/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "forbids time.Now/global math-rand/env reads in the deterministic packages " +
		"(sim, plan, runner, workload, substrate, lp, scenario); annotate reviewed " +
		"exceptions with //olive:wallclock",
	Run: run,
}

// deterministic lists the packages (by import-path base) whose outputs
// must be pure functions of their seeds.
var deterministic = map[string]bool{
	"sim": true, "plan": true, "runner": true, "workload": true,
	"substrate": true, "lp": true, "scenario": true,
}

// wallclockFuncs are the time package's wall-clock and timer entry
// points. time.Duration arithmetic and formatting are fine.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Sleep": true,
}

// envFuncs are the os package's environment readers.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// randConstructors are the explicitly-seeded constructors; every other
// package-level math/rand[/v2] function draws from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewSource": true, "NewZipf": true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !deterministic[lintutil.PathBase(pass.Pkg.Path())] {
		return nil
	}
	dirs := directive.ParseFiles(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && dirs.Func(fd, directive.WallClock) {
				continue // whole function reviewed and exempted
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, name := classify(pass.TypesInfo, call)
				if kind == "" {
					return true
				}
				if dirs.Line(call.Pos(), directive.WallClock) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s (%s) in deterministic package %s: outputs must be pure functions of their seeds; thread a value in, or annotate a reviewed exception with //olive:wallclock",
					name, kind, lintutil.PathBase(pass.Pkg.Path()))
				return true
			})
		}
	}
	return nil
}

// classify returns the violation kind ("wall clock", "global rand",
// "environment read") and the offending call's name, or "" for benign
// calls.
func classify(info *types.Info, call *ast.CallExpr) (kind, name string) {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // methods (e.g. on an injected clock or *rand.Rand) are fine
	}
	switch lintutil.PkgPath(fn) {
	case "time":
		if wallclockFuncs[fn.Name()] {
			return "wall clock", "time." + fn.Name()
		}
	case "os":
		if envFuncs[fn.Name()] {
			return "environment read", "os." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return "global rand", "rand." + fn.Name()
		}
	}
	return "", ""
}
