package detsource_test

import (
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysistest"
	"github.com/olive-vne/olive/internal/lint/analyzers/detsource"
)

func TestDetSource(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer, "plan", "tools")
}
