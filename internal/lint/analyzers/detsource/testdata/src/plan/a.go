// Package plan is an in-scope fixture (its import-path base is one of
// the deterministic packages) for the detsource analyzer.
package plan

import (
	"math/rand/v2"
	"os"
	"time"
)

func bad() time.Time {
	return time.Now() // want `time.Now \(wall clock\) in deterministic package plan`
}

func badEnv() string {
	return os.Getenv("X") // want `os.Getenv \(environment read\) in deterministic package plan`
}

func badRand() int {
	return rand.IntN(6) // want `rand.IntN \(global rand\) in deterministic package plan`
}

// goodRand constructs a seeded source — the sanctioned pattern.
func goodRand() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2))
}

// methodFine: methods are always fine (time arithmetic, an injected
// clock, a threaded *rand.Rand).
func methodFine(base time.Time, d time.Duration, rng *rand.Rand) time.Time {
	_ = rng.Float64()
	return base.Add(d)
}

func stamped() int64 {
	t := time.Now() //olive:wallclock reviewed: diagnostic only
	return t.Unix()
}

//olive:wallclock whole function reviewed; progress reporting only
func wholeFuncExempt() time.Time {
	return time.Now()
}

func lineAbove() string {
	//olive:wallclock reviewed: read once at init
	return os.Getenv("HOME")
}

func spacedProse() time.Time {
	// olive:wallclock — a space after // makes this prose, not a directive
	return time.Now() // want `time.Now \(wall clock\)`
}
