// Package tools is out of scope for detsource: wall-clock reads are
// unrestricted outside the deterministic packages.
package tools

import "time"

func now() time.Time { return time.Now() }
