// Package aggregate is the mutation check: it reintroduces the exact
// shape of the pre-fix plan.Aggregate bug (PR 1) — bootstrap confidence
// intervals drawn while ranging over the per-cell diff map, so the
// rng's draw sequence (and thus the CI bounds) depended on map
// iteration order. maporder must catch it.
package aggregate

import "math/rand/v2"

func bootstrapQuantile(series []float64, alpha float64, b int, rng *rand.Rand) (float64, float64) {
	lo, hi := series[0], series[0]
	for i := 0; i < b; i++ {
		v := series[rng.IntN(len(series))]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	_ = alpha
	return lo, hi
}

type interval struct{ Lo, Hi float64 }

func aggregateMutant(diffs map[string][]float64, alpha float64, rng *rand.Rand) map[string]interval {
	out := make(map[string]interval, len(diffs))
	for k, series := range diffs {
		lo, hi := bootstrapQuantile(series, alpha, 200, rng) // want `rng passed to bootstrapQuantile inside range over map diffs`
		out[k] = interval{Lo: lo, Hi: hi}
	}
	return out
}
