// Package fixtures exercises the maporder analyzer: order-sensitive
// consumption inside range-over-map, and the idioms that discharge it.
package fixtures

import (
	"hash/fnv"
	"math/rand/v2"
	"sort"
)

func consume(r *rand.Rand) float64 { return r.Float64() }

func rngMethodInRange(m map[string]int, rng *rand.Rand) float64 {
	total := 0.0
	for range m {
		total += rng.Float64() // want `rng consumed inside range over map m`
	}
	return total
}

func rngPassedToHelper(m map[string]int, rng *rand.Rand) float64 {
	total := 0.0
	for range m {
		total += consume(rng) // want `rng passed to consume inside range over map m`
	}
	return total
}

func hashFed(m map[string][]byte) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write(v) // want `hash fed inside range over map m`
	}
	return h.Sum64()
}

func appendEscapes(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m`
	}
	return keys
}

// collectThenSort is the canonical fix: the sort after the loop
// discharges the iteration order.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localAppend's slice is declared inside the loop body, so no
// iteration order leaks out of the loop.
func localAppend(m map[string]int) int {
	n := 0
	for k := range m {
		parts := []byte(k)
		parts = append(parts, '!')
		n += len(parts)
	}
	return n
}

// rangeOverSlice is ordered iteration; consuming the rng is fine.
func rangeOverSlice(s []int, rng *rand.Rand) float64 {
	total := 0.0
	for range s {
		total += rng.Float64()
	}
	return total
}
