package maporder_test

import (
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysistest"
	"github.com/olive-vne/olive/internal/lint/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "maporder")
}

// TestAggregateMutation is the required mutation check: the fixture
// reintroduces the PR 1 plan.Aggregate map-order bug and the analyzer
// must flag it (the `// want` in the fixture fails the test otherwise).
func TestAggregateMutation(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "aggregate")
}
