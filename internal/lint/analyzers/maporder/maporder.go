// Package maporder flags `range` loops over maps whose bodies perform
// an order-sensitive effect — exactly the bug class fixed by hand twice
// in this repo's history (plan.Aggregate in PR 1, plan.BuildWindowed in
// PR 2): Go map iteration order is randomized per run, so a loop that
//
//   - consumes a seeded rng (directly, or by passing it to a helper),
//   - appends non-key values to a slice that outlives the loop, or
//   - feeds a hash / fingerprint,
//
// inside a map range produces run-to-run-varying output even when every
// input is seed-fixed. The fix is mechanical and is what the repo's
// fixed sites do: collect the keys, sort them, and iterate the sorted
// slice.
//
// The one idiom the analyzer exonerates is the accumulate-then-sort
// half of that fix: a slice appended to under the loop and later
// passed to a sort (sort.*, slices.Sort*, or any callee whose name
// contains "sort") in the same function. The sort discharges the
// iteration order — provided its comparator is total, which is the
// reviewer's half of the contract.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map loops that consume an rng, accumulate into a slice, " +
		"or feed a hash: map iteration order is randomized, so such loops are " +
		"nondeterministic run to run; iterate sorted keys instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		case *ast.AssignStmt:
			checkAppend(pass, fd, rs, n)
		}
		return true
	})
}

// checkCall flags rng consumption and hash feeding inside the loop
// body.
func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	if fn := lintutil.CalleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			// Classify by the receiver operand's type, not the method's
			// declared receiver: hash.Hash64's Write is an embedded
			// io.Writer method, and the declared receiver would place
			// it in package io.
			recv := sig.Recv().Type()
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
					recv = tv.Type
				}
			}
			if lintutil.IsRandRand(recv) {
				pass.Reportf(call.Pos(),
					"rng consumed inside range over map %s: map order is randomized, so the draw sequence varies run to run; iterate sorted keys",
					exprString(rs.X))
				return
			}
			if isHashType(recv) {
				pass.Reportf(call.Pos(),
					"hash fed inside range over map %s: map order is randomized, so the digest varies run to run; iterate sorted keys",
					exprString(rs.X))
				return
			}
		}
	}
	// An rng handed to a helper is consumed just the same — this is the
	// exact shape of the original plan.Aggregate bug (BootstrapQuantile
	// drew from the rng once per map entry).
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && lintutil.IsRandRand(tv.Type) {
			pass.Reportf(call.Pos(),
				"rng passed to %s inside range over map %s: the callee's draws follow map order, which is randomized; iterate sorted keys",
				calleeName(call), exprString(rs.X))
			return
		}
	}
}

// checkAppend flags `x = append(x, ...)` inside the loop when x
// outlives the loop, unless it is the collect-keys-then-sort idiom.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 {
			continue
		}
		if i >= len(as.Lhs) && len(as.Lhs) != 1 {
			continue
		}
		lhs := as.Lhs[min(i, len(as.Lhs)-1)]
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			continue
		}
		// Appends to a slice declared inside the loop body never leak
		// iteration order out of the loop.
		if rs.Pos() <= obj.Pos() && obj.Pos() < rs.End() {
			continue
		}
		// Collect-then-sort exoneration: whatever was accumulated, a
		// subsequent sort of the slice discharges the iteration order
		// (assuming a total comparator — spot-check that in review).
		if sortedAfter(pass, fd, rs, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside range over map %s accumulates in randomized map order; collect keys, sort them, then iterate",
			id.Name, exprString(rs.X))
	}
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range loop, anywhere in the enclosing function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, a := range call.Args {
			if aid, ok := ast.Unparen(a).(*ast.Ident); ok && info.Uses[aid] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch lintutil.PkgPath(fn) {
	case "sort", "slices":
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "sort")
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isHashType reports whether t names a type from the hash or crypto
// package trees (hash.Hash, fnv's digests, sha256 state, maphash.Hash,
// ...): writing loop-dependent data into one inside a map range makes
// the digest order-dependent.
func isHashType(t types.Type) bool {
	p := lintutil.TypePkgPath(t)
	return p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto/")
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "(expr)"
}
