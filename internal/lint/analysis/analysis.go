// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis, just large enough to host olivelint's
// project-specific analyzers. The container that builds this repo has no
// module proxy access, so the x/tools framework cannot be vendored; the
// API shape below mirrors it closely enough that the analyzers would
// port to the real framework by changing one import.
//
// Differences from x/tools kept deliberate: no Facts, no Requires graph
// (every olivelint analyzer is a single-package pass over syntax +
// types), and no SuggestedFixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -<name>=false
	// flags. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation shown by `olivelint help`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // package syntax, comments included
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns ordering and
	// formatting.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Inspect walks every file of the pass in source order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
