// Package load turns `go list` patterns into type-checked packages for
// olivelint's standalone driver, using nothing outside the standard
// library and the go command itself.
//
// The x/tools loader (go/packages) is unavailable in this repo's
// offline build environment, so load re-derives the essentials:
// `go list -export -deps -json` enumerates the target packages plus a
// compiled export-data file for every dependency (the go command builds
// these into its cache as needed, fully offline), and go/types checks
// each target's parsed sources against an importer that reads that
// export data. Test files are not loaded: olivelint's invariants are
// about production code, and seeded rngs or wall-clock reads in _test.go
// files are routine.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output load consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Name       string
}

// Load lists patterns in dir (a directory inside the module), builds
// export data for all dependencies, and returns the matched packages
// parsed and type-checked. Packages with no non-test Go files are
// skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Name",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		e, ok := exports[path]
		return e, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := Check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a go/types importer that resolves import
// paths through find, which maps an import path to a compiled
// export-data file (as produced by `go list -export` or recorded in a
// vet config's PackageFile map).
func ExportImporter(fset *token.FileSet, find func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses files (names relative to dir) and type-checks them as
// one package, resolving imports through imp.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", importPath, err)
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo allocates the types.Info maps every analyzer pass relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
