package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parse typechecks nothing: directive attachment is purely syntactic.
func parse(t *testing.T, src string) (*token.FileSet, *ast.File, *Set) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f, ParseFiles(fset, []*ast.File{f})
}

// funcDecl finds the named function or method declaration.
func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %s in fixture", name)
	return nil
}

func TestFuncAttachment(t *testing.T) {
	src := `package p

//olive:hotpath plain function
func Plain() {}

// Doc prose first.
//
//olive:hotpath after prose, gofmt-separated
func AfterProse() {}

//olive:hotpath on a method
func (r *Recv) Method() {}

//olive:hotpath on a generic function
func Generic[T any](v T) T { return v }

//olive:hotpath wrong name checked below
func WrongName() {}

//olive:hotpath detached by a blank line

func Detached() {}

// olive:hotpath space after the slashes makes this prose
func SpacedProse() {}

/*olive:hotpath block comments are never directives*/
func BlockComment() {}

//olive:
func EmptyName() {}

func Bare() {}

type Recv struct{}
`
	_, f, set := parse(t, src)

	for _, tc := range []struct {
		fn   string
		name string
		want bool
	}{
		{"Plain", HotPath, true},
		{"AfterProse", HotPath, true},
		{"Method", HotPath, true},
		{"Generic", HotPath, true},
		{"WrongName", WallClock, false}, // carries hotpath, asked for wallclock
		{"Detached", HotPath, false},    // blank line breaks the association
		{"SpacedProse", HotPath, false},
		{"BlockComment", HotPath, false},
		{"EmptyName", HotPath, false},
		{"Bare", HotPath, false},
	} {
		if got := set.Func(funcDecl(t, f, tc.fn), tc.name); got != tc.want {
			t.Errorf("Func(%s, %q) = %v, want %v", tc.fn, tc.name, got, tc.want)
		}
	}

	if set.Func(nil, HotPath) {
		t.Error("Func(nil) = true, want false")
	}
}

// TestLineAttachment covers the statement-level lookup detsource uses:
// a directive binds to its own line (trailing comment) and to the line
// directly below it — including call sites buried in nested closures,
// where no declaration-based attachment exists.
func TestLineAttachment(t *testing.T) {
	src := `package p

func Outer() func() func() int {
	return func() func() int {
		return func() int {
			a := probe() //olive:wallclock trailing, nested two closures deep
			//olive:wallclock line above, nested
			b := probe()
			c := probe()
			return a + b + c
		}
	}
}

func probe() int { return 0 }
`
	fset, f, set := parse(t, src)

	// Collect the probe() call positions in source order.
	var calls []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "probe" {
				calls = append(calls, c.Pos())
			}
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d probe() calls, want 3", len(calls))
	}
	for i, want := range []bool{true, true, false} {
		if got := set.Line(calls[i], WallClock); got != want {
			p := fset.Position(calls[i])
			t.Errorf("Line(call %d at line %d, wallclock) = %v, want %v", i, p.Line, got, want)
		}
	}
	if set.Line(calls[0], HotPath) {
		t.Error("Line(call 0, hotpath) = true, want false: wrong directive name")
	}
}

func TestParseComment(t *testing.T) {
	for _, tc := range []struct {
		text string
		name string
		ok   bool
	}{
		{"//olive:hotpath", "hotpath", true},
		{"//olive:hotpath with a rationale", "hotpath", true},
		{"//olive:wallclock\ttab rationale", "wallclock", true},
		{"// olive:hotpath", "", false},
		{"/*olive:hotpath*/", "", false},
		{"//olive:", "", false},
		{"//go:noinline", "", false},
		{"// plain prose", "", false},
	} {
		name, ok := parseComment(tc.text)
		if name != tc.name || ok != tc.ok {
			t.Errorf("parseComment(%q) = (%q, %v), want (%q, %v)", tc.text, name, ok, tc.name, tc.ok)
		}
	}
}
