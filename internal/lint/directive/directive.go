// Package directive parses olivelint's comment directives.
//
// Two directives exist, both following the Go toolchain's directive
// syntax (`//olive:name args...` — no space between `//` and `olive:`,
// line comments only):
//
//	//olive:hotpath   marks a function whose body the hotpath analyzer
//	                  checks for allocation-prone constructs. Valid on
//	                  the doc comment (or the line directly above) of a
//	                  function or method declaration.
//
//	//olive:wallclock marks a reviewed, legitimate use of wall-clock
//	                  time, the global rand source, or the environment
//	                  inside a deterministic package. Valid on a
//	                  function declaration (exempts the whole body) or
//	                  on the flagged statement's own line / the line
//	                  directly above it.
//
// Anything after the directive name is free-form rationale and is
// ignored by the checkers (but read by humans; write one).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Names of the known directives.
const (
	HotPath   = "hotpath"
	WallClock = "wallclock"
)

// A Set holds every olive directive found in a group of files, indexed
// for the two lookups analyzers need: "does this function declaration
// carry directive X" and "is there a directive X on or directly above
// this line".
type Set struct {
	fset *token.FileSet
	// byLine maps (filename, line) -> directive names present there.
	byLine map[lineKey]map[string]bool
}

type lineKey struct {
	file string
	line int
}

// ParseFiles scans the comments of files for olive directives.
func ParseFiles(fset *token.FileSet, files []*ast.File) *Set {
	s := &Set{fset: fset, byLine: make(map[lineKey]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseComment(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				if s.byLine[k] == nil {
					s.byLine[k] = make(map[string]bool)
				}
				s.byLine[k][name] = true
			}
		}
	}
	return s
}

// parseComment extracts the directive name from one comment's text, or
// returns ok=false. Per Go directive convention only line comments with
// no space after `//` count; `/* olive:... */` and `// olive:...` are
// ordinary prose.
func parseComment(text string) (name string, ok bool) {
	if !strings.HasPrefix(text, "//olive:") {
		return "", false
	}
	rest := text[len("//olive:"):]
	// The name runs to the first space; trailing text is rationale.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// Func reports whether decl carries the named directive: in its doc
// comment group, or on the line directly above the declaration (the
// doc group normally subsumes that line; the explicit check covers a
// directive separated from prose by nothing but its position).
func (s *Set) Func(decl *ast.FuncDecl, name string) bool {
	if decl == nil {
		return false
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if n, ok := parseComment(c.Text); ok && n == name {
				return true
			}
		}
	}
	// A directive directly above the declaration line (e.g. below a
	// detached doc comment) also binds. A blank line in between breaks
	// the association, exactly like Go build constraints: the directive
	// must sit on declLine-1.
	pos := s.fset.Position(decl.Pos())
	return s.byLine[lineKey{pos.Filename, pos.Line - 1}][name]
}

// Line reports whether the named directive is present on pos's own
// line (trailing comment) or on the line directly above it.
func (s *Set) Line(pos token.Pos, name string) bool {
	p := s.fset.Position(pos)
	if s.byLine[lineKey{p.Filename, p.Line}][name] {
		return true
	}
	return s.byLine[lineKey{p.Filename, p.Line - 1}][name]
}
