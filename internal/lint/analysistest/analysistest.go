// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would port unchanged.
//
// Fixtures live under <analyzer pkg>/testdata/src/<importpath>/ — a
// GOPATH-shaped tree the go tool ignores. Fixture files annotate the
// lines where diagnostics are expected:
//
//	consume(rng) // want `rng .* map`
//	bad()        // want "first" "second"
//
// Each string is a regular expression that must match a diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. Fixture imports resolve
// first against sibling fixture packages in the same testdata/src tree
// (so fixtures can model project types like obs.Registry with local
// stubs), then against the standard library via compiled export data.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/lint/analysis"
	"github.com/olive-vne/olive/internal/lint/load"
)

// Run analyzes the fixture packages named by importpaths (directories
// under dir/src) with a and reports want mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, importpaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:  filepath.Join(dir, "src"),
		fset:  fset,
		cache: map[string]*fixturePkg{},
	}
	for _, path := range importpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		runOne(t, a, pkg)
	}
}

type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
	fset  *token.FileSet
}

// fixtureLoader resolves fixture-local imports from the testdata tree
// and everything else from stdlib export data.
type fixtureLoader struct {
	root        string
	fset        *token.FileSet
	cache       map[string]*fixturePkg
	exports     map[string]string // stdlib import path -> export file
	stdImporter types.Importer
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: (*fixtureImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &fixturePkg{path: path, files: files, types: tpkg, info: info, fset: l.fset}
	l.cache[path] = p
	return p, nil
}

// fixtureImporter adapts fixtureLoader to types.Importer.
type fixtureImporter fixtureLoader

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*fixtureLoader)(im)
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.stdImport(path)
}

// stdImport resolves path through compiled export data, shelling out to
// `go list -export` once per distinct root package and caching the
// transitive export map.
func (l *fixtureLoader) stdImport(path string) (*types.Package, error) {
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	if _, ok := l.exports[path]; !ok {
		cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	if l.stdImporter == nil {
		l.stdImporter = load.ExportImporter(l.fset, func(p string) (string, bool) {
			e, ok := l.exports[p]
			return e, ok
		})
	}
	return l.stdImporter.Import(path)
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error on %s: %v", a.Name, pkg.path, err)
	}

	wants := collectWants(t, pkg)

	// Match each diagnostic to an unconsumed want on its line.
	for _, d := range diags {
		pos := pkg.fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.re, k.file, k.line)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// collectWants parses `// want "re" …` comments from the fixture files.
func collectWants(t *testing.T, pkg *fixturePkg) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, m[1], pos) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q at %s:%d: %v", pat, pos.Filename, pos.Line, err)
					}
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns tokenizes the payload of a want comment: a sequence of
// double-quoted (Go-escaped) or backquoted regular expressions.
func splitPatterns(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSuffix(strings.TrimSpace(s), "*/")
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("unterminated want string at %s:%d: %s", pos.Filename, pos.Line, s)
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("bad want string at %s:%d: %v", pos.Filename, pos.Line, err)
			}
			out = append(out, q)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated want pattern at %s:%d: %s", pos.Filename, pos.Line, s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			t.Fatalf("malformed want payload at %s:%d: %q", pos.Filename, pos.Line, s)
		}
	}
}
