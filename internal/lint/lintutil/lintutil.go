// Package lintutil holds the small go/types helpers shared by the
// olivelint analyzers.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (builtins, conversions,
// calls of function-typed values). Generic instantiations resolve to
// their origin.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return CalleeFunc(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return CalleeFunc(info, &ast.CallExpr{Fun: fun.X})
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPath returns the import path of the package fn belongs to, or ""
// for builtins and nil.
func PkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// PathBase returns the last element of an import path ("a/b/c" -> "c").
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ConstString returns the compile-time string value of expr, if it has
// one.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ConstInt returns the compile-time integer value of expr, if it has
// one.
func ConstInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

// NamedOf unwraps pointers and aliases down to the named type of t, or
// nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// TypePkgPath returns the import path of t's named (or pointer-to-named)
// type's package, or "".
func TypePkgPath(t types.Type) string {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// IsRandRand reports whether t is *math/rand.Rand or *math/rand/v2.Rand
// (or the value form).
func IsRandRand(t types.Type) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Name() != "Rand" {
		return false
	}
	p := TypePkgPath(t)
	return p == "math/rand" || p == "math/rand/v2"
}

// PointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the interface word — i.e. no
// allocation. Everything else (basic values, structs, arrays, slices,
// strings, interfaces-as-data) escapes to the heap when boxed.
func PointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
