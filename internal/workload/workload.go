// Package workload generates the request traces of the paper's evaluation
// (§IV-A, Table III): a bursty Markov-modulated Poisson process (MMPP) with
// Zipf(α=1) node popularity, and a CAIDA-like heavy-tailed trace substitute
// (the original Equinix-NewYork capture is not redistributable; DESIGN.md
// §3 documents the substitution).
//
// A trace spans a number of discrete time slots; the first part forms the
// request history R_HIST used for planning, the remainder drives the online
// phase.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"github.com/olive-vne/olive/internal/graph"
)

// Request is one online embedding request (paper Table I): application
// a(r), ingress v(r), demand d(r), arrival t(r) and duration T(r).
type Request struct {
	// ID is unique within a trace and dense from 0.
	ID int
	// App indexes the application within the run's application set.
	App int
	// Ingress is the substrate node v(r) where the user resides.
	Ingress graph.NodeID
	// Demand is d(r), the request's demand size.
	Demand float64
	// Arrive is the arrival slot t(r).
	Arrive int
	// Duration is T(r) in slots, ≥ 1.
	Duration int
}

// Departs returns the slot at which the request leaves: t(r) + T(r).
// The request is active for Arrive ≤ t < Departs.
func (r Request) Departs() int { return r.Arrive + r.Duration }

// Trace is a time-ordered request sequence over Slots time slots.
type Trace struct {
	Requests []Request
	Slots    int
}

// Split cuts the trace at histSlots: the first part (arrivals in
// [0, histSlots)) becomes the planning history R_HIST, the second part
// (arrivals in [histSlots, Slots)) the online phase, re-based to slot 0.
func (t *Trace) Split(histSlots int) (hist, online *Trace, err error) {
	if histSlots <= 0 || histSlots >= t.Slots {
		return nil, nil, fmt.Errorf("workload: split point %d outside (0,%d)", histSlots, t.Slots)
	}
	hist = &Trace{Slots: histSlots}
	online = &Trace{Slots: t.Slots - histSlots}
	// Arrival-sorted traces (every generator here produces one) split
	// without copying the history half: it aliases the input's prefix,
	// and the rebased online half is built in one exact-size allocation.
	nHist, sorted := 0, true
	for i, r := range t.Requests {
		if r.Arrive < histSlots {
			if i != nHist {
				sorted = false
				break
			}
			nHist++
		}
	}
	if sorted {
		hist.Requests = t.Requests[:nHist:nHist]
		online.Requests = make([]Request, len(t.Requests)-nHist)
		for i, r := range t.Requests[nHist:] {
			r.Arrive -= histSlots
			r.ID = i
			online.Requests[i] = r
		}
		return hist, online, nil
	}
	for _, r := range t.Requests {
		if r.Arrive < histSlots {
			hist.Requests = append(hist.Requests, r)
		} else {
			r.Arrive -= histSlots
			r.ID = len(online.Requests)
			online.Requests = append(online.Requests, r)
		}
	}
	return hist, online, nil
}

// PerSlot returns the requests grouped by arrival slot. The groups share
// one backing array, carved per slot.
func (t *Trace) PerSlot() [][]Request {
	slots := make([][]Request, t.Slots)
	cnt := make([]int, t.Slots)
	total := 0
	for _, r := range t.Requests {
		if r.Arrive >= 0 && r.Arrive < t.Slots {
			cnt[r.Arrive]++
			total++
		}
	}
	backing := make([]Request, total)
	off := 0
	for s, n := range cnt {
		slots[s] = backing[off : off : off+n]
		off += n
	}
	for _, r := range t.Requests {
		if r.Arrive >= 0 && r.Arrive < t.Slots {
			slots[r.Arrive] = append(slots[r.Arrive], r)
		}
	}
	return slots
}

// TotalDemand sums d(r) over all requests.
func (t *Trace) TotalDemand() float64 {
	var s float64
	for _, r := range t.Requests {
		s += r.Demand
	}
	return s
}

// Validate checks per-request invariants.
func (t *Trace) Validate() error {
	if t.Slots <= 0 {
		return errors.New("workload: trace has no slots")
	}
	for i, r := range t.Requests {
		if r.ID != i {
			return fmt.Errorf("workload: request %d has ID %d (IDs must be dense)", i, r.ID)
		}
		if r.Arrive < 0 || r.Arrive >= t.Slots {
			return fmt.Errorf("workload: request %d arrives at %d outside [0,%d)", i, r.Arrive, t.Slots)
		}
		if r.Duration < 1 {
			return fmt.Errorf("workload: request %d has duration %d < 1", i, r.Duration)
		}
		if r.Demand <= 0 {
			return fmt.Errorf("workload: request %d has non-positive demand %g", i, r.Demand)
		}
		if i > 0 && t.Requests[i-1].Arrive > r.Arrive {
			return fmt.Errorf("workload: requests not sorted by arrival at index %d", i)
		}
	}
	return nil
}

// Params configures trace generation per Table III.
type Params struct {
	// Slots is the total trace length (6000 in the paper: 5400 history
	// + 600 online).
	Slots int
	// LambdaPerNode is the mean arrival rate per edge node per slot
	// (10 in the paper).
	LambdaPerNode float64
	// DemandMean, DemandStd parameterize request demand N(10, 2²);
	// the mean scales with target utilization (6–14 for 60–140%).
	DemandMean, DemandStd float64
	// DurationMean is the mean of the exponential duration (10 slots).
	DurationMean float64
	// NumApps is the size of the application set requests draw from.
	NumApps int
	// ZipfAlpha is the node-popularity skew exponent (1 in the paper).
	ZipfAlpha float64
	// MMPP configures burstiness; zero-value disables modulation
	// (plain Poisson).
	MMPP MMPPParams
}

// MMPPParams parameterizes the two-state Markov-modulated Poisson process.
// Rates are multipliers applied to the base arrival rate; the stationary
// mean of the modulation is kept at 1 so LambdaPerNode is preserved.
type MMPPParams struct {
	// HighFactor, LowFactor scale the base rate in the high/low state.
	HighFactor, LowFactor float64
	// SwitchProb is the per-slot probability of switching state.
	SwitchProb float64
}

// DefaultMMPP returns a bursty two-state modulation: rate 1.5× in bursts,
// 0.5× in lulls, symmetric switching with mean sojourn 20 slots. The
// stationary mean is (1.5+0.5)/2 = 1, preserving the configured λ.
func DefaultMMPP() MMPPParams {
	return MMPPParams{HighFactor: 1.5, LowFactor: 0.5, SwitchProb: 0.05}
}

func (m MMPPParams) enabled() bool { return m.HighFactor != 0 || m.LowFactor != 0 }

// DefaultParams returns the Table III trace parameters at 100% utilization.
func DefaultParams() Params {
	return Params{
		Slots:         6000,
		LambdaPerNode: 10,
		DemandMean:    10,
		DemandStd:     2,
		DurationMean:  10,
		NumApps:       4,
		ZipfAlpha:     1,
		MMPP:          DefaultMMPP(),
	}
}

// WithUtilization returns a copy of p with the demand mean scaled for the
// target edge utilization: util 1.0 ⇒ mean 10, util 0.6 ⇒ 6, util 1.4 ⇒ 14
// (§IV-A "Methodology").
func (p Params) WithUtilization(util float64) Params {
	p.DemandMean = 10 * util
	return p
}

func (p Params) validate(edgeNodes int) error {
	switch {
	case p.Slots <= 0:
		return errors.New("workload: Slots must be positive")
	case p.LambdaPerNode <= 0:
		return errors.New("workload: LambdaPerNode must be positive")
	case p.DemandMean <= 0:
		return errors.New("workload: DemandMean must be positive")
	case p.DurationMean <= 0:
		return errors.New("workload: DurationMean must be positive")
	case p.NumApps <= 0:
		return errors.New("workload: NumApps must be positive")
	case edgeNodes == 0:
		return errors.New("workload: substrate has no edge nodes")
	}
	return nil
}

// zipfWeights returns normalized Zipf(α) popularity weights for n ranks.
func zipfWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// poisson draws from Poisson(mean) — Knuth's method for small means,
// normal approximation beyond 30 (adequate for trace generation).
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		k := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if k < 0 {
			return 0
		}
		return k
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func (p Params) drawDemand(rng *rand.Rand) float64 {
	d := p.DemandMean + p.DemandStd*rng.NormFloat64()
	if d < 0.1 {
		d = 0.1
	}
	return d
}

func (p Params) drawDuration(rng *rand.Rand) int {
	d := int(math.Ceil(rng.ExpFloat64() * p.DurationMean))
	if d < 1 {
		d = 1
	}
	return d
}

// GenerateMMPP produces the paper's first trace: per-edge-node Poisson
// arrivals with Zipf(α=1) popularity, modulated by a shared two-state
// Markov chain (bursts hit the whole network, as in [34]).
func GenerateMMPP(g *graph.Graph, p Params, rng *rand.Rand) (*Trace, error) {
	edge := g.EdgeNodes()
	if err := p.validate(len(edge)); err != nil {
		return nil, err
	}
	// Zipf popularity over a random permutation of edge nodes, so the
	// most popular node varies between seeds.
	weights := zipfWeights(len(edge), p.ZipfAlpha)
	perm := rng.Perm(len(edge))
	// Per-node rates normalized so the *mean over nodes* is
	// LambdaPerNode (total = λ·N, e.g. 1000/slot on 100N150E).
	rates := make([]float64, len(edge))
	for i := range edge {
		rates[i] = p.LambdaPerNode * float64(len(edge)) * weights[perm[i]]
	}

	tr := &Trace{Slots: p.Slots}
	// One up-front allocation near the expected request count (mean
	// λ·N·slots) instead of log₂(n) append doublings over ~megabytes.
	expect := int(p.LambdaPerNode * float64(len(edge)) * float64(p.Slots))
	tr.Requests = make([]Request, 0, expect+expect/8+64)
	high := rng.Float64() < 0.5
	for t := 0; t < p.Slots; t++ {
		mod := 1.0
		if p.MMPP.enabled() {
			if rng.Float64() < p.MMPP.SwitchProb {
				high = !high
			}
			if high {
				mod = p.MMPP.HighFactor
			} else {
				mod = p.MMPP.LowFactor
			}
		}
		for i, v := range edge {
			n := poisson(rates[i]*mod, rng)
			for k := 0; k < n; k++ {
				tr.Requests = append(tr.Requests, Request{
					ID:       len(tr.Requests),
					App:      rng.IntN(p.NumApps),
					Ingress:  v,
					Demand:   p.drawDemand(rng),
					Arrive:   t,
					Duration: p.drawDuration(rng),
				})
			}
		}
	}
	return tr, nil
}

// CAIDAParams configures the CAIDA-like trace substitute.
type CAIDAParams struct {
	// Sources is the number of aggregated IP sources.
	Sources int
	// ParetoAlpha is the tail exponent of per-source rates (heavy tail).
	ParetoAlpha float64
	// DiurnalAmplitude modulates the total rate sinusoidally, mimicking
	// the capture's slow rate variation, in [0,1).
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period in slots; 0 uses the whole
	// trace as one period. Shorter periods give the history multiple
	// full cycles — the regime the time-varying plan extension targets.
	DiurnalPeriod int
}

// DefaultCAIDAParams returns the substitute-trace parameters. The source
// count is deliberately small relative to the edge-node count: the
// capture's "elephant" sources are what concentrates load on the
// datacenters they are assigned to, and with too many sources the uniform
// assignment averages the heavy tail away (no spatial skew, no
// contention).
func DefaultCAIDAParams() CAIDAParams {
	return CAIDAParams{Sources: 64, ParetoAlpha: 1.15, DiurnalAmplitude: 0.3}
}

// GenerateCAIDA produces the paper's second trace: heavy-tailed per-source
// request rates (aggregated "IP sources"), each source pinned to a random
// edge datacenter — reproducing the paper's own adaptation of the
// Equinix-NewYork capture to the edge setting (§IV-A "Traces").
func GenerateCAIDA(g *graph.Graph, p Params, cp CAIDAParams, rng *rand.Rand) (*Trace, error) {
	edge := g.EdgeNodes()
	if err := p.validate(len(edge)); err != nil {
		return nil, err
	}
	if cp.Sources <= 0 || cp.ParetoAlpha <= 1 {
		return nil, errors.New("workload: CAIDA substitute needs Sources > 0 and ParetoAlpha > 1")
	}
	// Pareto(α) source weights, normalized; each source homes to a
	// uniformly random edge DC (spatial skew emerges from the tail).
	srcRate := make([]float64, cp.Sources)
	srcNode := make([]graph.NodeID, cp.Sources)
	var sum float64
	for i := range srcRate {
		srcRate[i] = math.Pow(1-rng.Float64(), -1/cp.ParetoAlpha) // Pareto ≥ 1
		sum += srcRate[i]
		srcNode[i] = edge[rng.IntN(len(edge))]
	}
	total := p.LambdaPerNode * float64(len(edge)) // target mean per slot
	for i := range srcRate {
		srcRate[i] = srcRate[i] / sum * total
	}

	period := cp.DiurnalPeriod
	if period <= 0 {
		period = p.Slots
	}
	tr := &Trace{Slots: p.Slots}
	expect := int(total * float64(p.Slots))
	tr.Requests = make([]Request, 0, expect+expect/8+64)
	for t := 0; t < p.Slots; t++ {
		mod := 1 + cp.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(period))
		for i := range srcRate {
			n := poisson(srcRate[i]*mod, rng)
			for k := 0; k < n; k++ {
				tr.Requests = append(tr.Requests, Request{
					ID:       len(tr.Requests),
					App:      rng.IntN(p.NumApps),
					Ingress:  srcNode[i],
					Demand:   p.drawDemand(rng),
					Arrive:   t,
					Duration: p.drawDuration(rng),
				})
			}
		}
	}
	// Arrivals are generated slot-major but per-slot order interleaves
	// sources; normalize to a stable sort by arrival (IDs re-densified).
	sort.SliceStable(tr.Requests, func(i, j int) bool { return tr.Requests[i].Arrive < tr.Requests[j].Arrive })
	for i := range tr.Requests {
		tr.Requests[i].ID = i
	}
	return tr, nil
}

// ShuffleIngress returns a copy of the trace with every request's ingress
// replaced by a uniformly random edge node — the "spatial distribution
// change" stressor of Fig. 14, applied to the planning input.
func ShuffleIngress(t *Trace, g *graph.Graph, rng *rand.Rand) *Trace {
	return ShuffleIngressFrom(t, g, 0, rng)
}

// ShuffleIngressFrom is ShuffleIngress restricted to requests arriving at
// or after fromSlot: the prefix keeps its spatial distribution, the
// suffix is redrawn uniformly over the edge nodes. This is the drifted
// second-half stressor the serving layer's replanning demo uses — a plan
// built on the prefix distribution faces a suffix it never saw.
func ShuffleIngressFrom(t *Trace, g *graph.Graph, fromSlot int, rng *rand.Rand) *Trace {
	edge := g.EdgeNodes()
	out := &Trace{Slots: t.Slots, Requests: append([]Request(nil), t.Requests...)}
	for i := range out.Requests {
		if out.Requests[i].Arrive >= fromSlot {
			out.Requests[i].Ingress = edge[rng.IntN(len(edge))]
		}
	}
	return out
}
