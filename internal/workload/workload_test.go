package workload

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/stats"
	"github.com/olive-vne/olive/internal/topo"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 99)) }

func smallParams() Params {
	p := DefaultParams()
	p.Slots = 200
	return p
}

func TestGenerateMMPPBasicInvariants(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	tr, err := GenerateMMPP(g, smallParams(), testRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	edgeSet := map[graph.NodeID]bool{}
	for _, v := range g.EdgeNodes() {
		edgeSet[v] = true
	}
	for _, r := range tr.Requests {
		if !edgeSet[r.Ingress] {
			t.Fatalf("request %d originates at non-edge node %d", r.ID, r.Ingress)
		}
		if r.App < 0 || r.App >= 4 {
			t.Fatalf("request %d app index %d outside [0,4)", r.ID, r.App)
		}
	}
}

func TestGenerateMMPPMeanRate(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 2)
	p := smallParams()
	p.Slots = 500
	tr, err := GenerateMMPP(g, p, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	perSlot := float64(len(tr.Requests)) / float64(p.Slots)
	want := p.LambdaPerNode * float64(len(g.EdgeNodes()))
	if math.Abs(perSlot-want)/want > 0.1 {
		t.Fatalf("mean arrivals/slot = %g, want ≈%g (±10%%)", perSlot, want)
	}
}

func TestGenerateMMPPZipfSkew(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 3)
	p := smallParams()
	tr, err := GenerateMMPP(g, p, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[graph.NodeID]int{}
	for _, r := range tr.Requests {
		counts[r.Ingress]++
	}
	var max, min int
	min = 1 << 30
	for _, v := range g.EdgeNodes() {
		c := counts[v]
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	// Zipf(1) over 30 edge nodes: top/bottom rate ratio is 30; with
	// sampling noise demand at least 5×.
	if min == 0 {
		min = 1
	}
	if float64(max)/float64(min) < 5 {
		t.Errorf("popularity skew max/min = %d/%d; expected strong Zipf skew", max, min)
	}
}

func TestGenerateMMPPBurstiness(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 4)
	p := smallParams()
	p.Slots = 400

	burst, err := GenerateMMPP(g, p, testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.MMPP = MMPPParams{} // plain Poisson
	flat, err := GenerateMMPP(g, p2, testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	cv := func(tr *Trace) float64 {
		perSlot := make([]float64, tr.Slots)
		for _, r := range tr.Requests {
			perSlot[r.Arrive]++
		}
		return stats.StdDev(perSlot) / stats.Mean(perSlot)
	}
	if cv(burst) <= cv(flat) {
		t.Errorf("MMPP CV %g not larger than Poisson CV %g", cv(burst), cv(flat))
	}
}

func TestDemandScalesWithUtilization(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 5)
	for _, util := range []float64{0.6, 1.0, 1.4} {
		p := smallParams().WithUtilization(util)
		tr, err := GenerateMMPP(g, p, testRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range tr.Requests {
			sum += r.Demand
		}
		mean := sum / float64(len(tr.Requests))
		if math.Abs(mean-10*util) > 0.5 {
			t.Errorf("util %g: mean demand %g, want ≈%g", util, mean, 10*util)
		}
	}
}

func TestDurationMean(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 6)
	p := smallParams()
	tr, err := GenerateMMPP(g, p, testRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range tr.Requests {
		sum += float64(r.Duration)
	}
	mean := sum / float64(len(tr.Requests))
	// Ceil of Exp(10) has mean ≈ 10.5.
	if mean < 9 || mean < 1 || mean > 12 {
		t.Errorf("mean duration %g, want ≈10", mean)
	}
}

func TestSplit(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 7)
	p := smallParams()
	tr, err := GenerateMMPP(g, p, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	hist, online, err := tr.Split(150)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Slots != 150 || online.Slots != 50 {
		t.Fatalf("split slots = %d/%d, want 150/50", hist.Slots, online.Slots)
	}
	if len(hist.Requests)+len(online.Requests) != len(tr.Requests) {
		t.Fatal("split lost requests")
	}
	if err := online.Validate(); err != nil {
		t.Fatalf("online part invalid after re-basing: %v", err)
	}
	for _, r := range hist.Requests {
		if r.Arrive >= 150 {
			t.Fatalf("history contains request arriving at %d", r.Arrive)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	tr := &Trace{Slots: 10}
	for _, cut := range []int{0, 10, -5, 99} {
		if _, _, err := tr.Split(cut); err == nil {
			t.Errorf("Split(%d) did not error", cut)
		}
	}
}

func TestPerSlot(t *testing.T) {
	tr := &Trace{Slots: 3, Requests: []Request{
		{ID: 0, Arrive: 0, Demand: 1, Duration: 1},
		{ID: 1, Arrive: 2, Demand: 1, Duration: 1},
		{ID: 2, Arrive: 2, Demand: 1, Duration: 1},
	}}
	slots := tr.PerSlot()
	if len(slots[0]) != 1 || len(slots[1]) != 0 || len(slots[2]) != 2 {
		t.Fatalf("PerSlot counts = %d/%d/%d, want 1/0/2", len(slots[0]), len(slots[1]), len(slots[2]))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func(mutate func(*Trace)) *Trace {
		tr := &Trace{Slots: 10, Requests: []Request{
			{ID: 0, Arrive: 1, Demand: 5, Duration: 2},
			{ID: 1, Arrive: 3, Demand: 5, Duration: 2},
		}}
		mutate(tr)
		return tr
	}
	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"non-dense IDs", func(tr *Trace) { tr.Requests[1].ID = 7 }},
		{"arrival out of range", func(tr *Trace) { tr.Requests[0].Arrive = 99 }},
		{"zero duration", func(tr *Trace) { tr.Requests[0].Duration = 0 }},
		{"zero demand", func(tr *Trace) { tr.Requests[0].Demand = 0 }},
		{"unsorted", func(tr *Trace) { tr.Requests[0].Arrive = 9 }},
		{"no slots", func(tr *Trace) { tr.Slots = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := mk(tt.mutate).Validate(); err == nil {
				t.Fatal("Validate accepted corrupted trace")
			}
		})
	}
}

func TestGenerateCAIDA(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 8)
	p := smallParams()
	tr, err := GenerateCAIDA(g, p, DefaultCAIDAParams(), testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	perSlot := float64(len(tr.Requests)) / float64(p.Slots)
	want := p.LambdaPerNode * float64(len(g.EdgeNodes()))
	if math.Abs(perSlot-want)/want > 0.15 {
		t.Errorf("CAIDA mean arrivals/slot = %g, want ≈%g", perSlot, want)
	}
}

func TestGenerateCAIDAHeavyTailSpatialSkew(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 9)
	p := smallParams()
	tr, err := GenerateCAIDA(g, p, DefaultCAIDAParams(), testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[graph.NodeID]float64{}
	for _, r := range tr.Requests {
		counts[r.Ingress]++
	}
	var xs []float64
	for _, v := range g.EdgeNodes() {
		xs = append(xs, counts[v])
	}
	if j := stats.JainIndex(xs); j > 0.99 {
		t.Errorf("CAIDA trace spatially uniform (Jain %g); expected skew", j)
	}
}

func TestGenerateCAIDAParamErrors(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	p := smallParams()
	if _, err := GenerateCAIDA(g, p, CAIDAParams{Sources: 0, ParetoAlpha: 1.3}, testRNG(1)); err == nil {
		t.Error("Sources=0 did not error")
	}
	if _, err := GenerateCAIDA(g, p, CAIDAParams{Sources: 10, ParetoAlpha: 1.0}, testRNG(1)); err == nil {
		t.Error("ParetoAlpha=1 did not error")
	}
}

func TestGenerateParamValidation(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	bad := []Params{
		{},
		{Slots: 10},
		{Slots: 10, LambdaPerNode: 1},
		{Slots: 10, LambdaPerNode: 1, DemandMean: 1},
		{Slots: 10, LambdaPerNode: 1, DemandMean: 1, DurationMean: 1},
	}
	for i, p := range bad {
		if _, err := GenerateMMPP(g, p, testRNG(1)); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestShuffleIngress(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 10)
	p := smallParams()
	tr, err := GenerateMMPP(g, p, testRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	shuffled := ShuffleIngress(tr, g, testRNG(11))
	if len(shuffled.Requests) != len(tr.Requests) {
		t.Fatal("ShuffleIngress changed request count")
	}
	moved := 0
	edgeSet := map[graph.NodeID]bool{}
	for _, v := range g.EdgeNodes() {
		edgeSet[v] = true
	}
	for i := range shuffled.Requests {
		if !edgeSet[shuffled.Requests[i].Ingress] {
			t.Fatal("shuffled ingress is not an edge node")
		}
		if shuffled.Requests[i].Ingress != tr.Requests[i].Ingress {
			moved++
		}
		if shuffled.Requests[i].Demand != tr.Requests[i].Demand {
			t.Fatal("ShuffleIngress altered demand")
		}
	}
	if moved == 0 {
		t.Error("ShuffleIngress moved no requests")
	}
	// Original untouched.
	if &shuffled.Requests[0] == &tr.Requests[0] {
		t.Error("ShuffleIngress aliases the original slice")
	}
}

// TestGenerateCAIDASameSeedDeterminism: CAIDA traces are a pure function
// of (substrate, params, seed) — the planner and the runner's positional
// seeding both rely on it.
func TestGenerateCAIDASameSeedDeterminism(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 8)
	p := smallParams()
	a, err := GenerateCAIDA(g, p, DefaultCAIDAParams(), testRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCAIDA(g, p, DefaultCAIDAParams(), testRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed CAIDA traces differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("CAIDA trace invalid: %v", err)
	}
	c, err := GenerateCAIDA(g, p, DefaultCAIDAParams(), testRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical CAIDA traces")
	}
}

// TestShuffleIngressDeterministicAndConservative: the Fig. 14 stressor
// must be reproducible from its seed, keep the shuffled trace valid, and
// conserve demand exactly — it moves requests in space, never in volume,
// time or shape.
func TestShuffleIngressDeterministicAndConservative(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 10)
	p := smallParams()
	tr, err := GenerateMMPP(g, p, testRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	a := ShuffleIngress(tr, g, testRNG(15))
	b := ShuffleIngress(tr, g, testRNG(15))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed shuffles differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("shuffled trace invalid: %v", err)
	}
	if a.TotalDemand() != tr.TotalDemand() {
		t.Fatalf("shuffle changed total demand: %g → %g", tr.TotalDemand(), a.TotalDemand())
	}
	for i := range a.Requests {
		got, want := a.Requests[i], tr.Requests[i]
		want.Ingress = got.Ingress // the only field allowed to change
		if got != want {
			t.Fatalf("request %d changed beyond ingress: %+v vs %+v", i, got, tr.Requests[i])
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := testRNG(12)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var w stats.Welford
		for i := 0; i < 20000; i++ {
			w.Add(float64(poisson(mean, rng)))
		}
		if math.Abs(w.Mean()-mean)/mean > 0.05 {
			t.Errorf("poisson(%g) sample mean %g", mean, w.Mean())
		}
		if math.Abs(w.Variance()-mean)/mean > 0.15 {
			t.Errorf("poisson(%g) sample variance %g, want ≈%g", mean, w.Variance(), mean)
		}
	}
	if poisson(0, rng) != 0 || poisson(-1, rng) != 0 {
		t.Error("poisson of non-positive mean should be 0")
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(4, 1)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %g, want 1", sum)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("weights not decreasing")
		}
	}
	if math.Abs(w[0]/w[3]-4) > 1e-9 {
		t.Fatalf("rank-1/rank-4 ratio %g, want 4 (α=1)", w[0]/w[3])
	}
}

func TestDeparts(t *testing.T) {
	r := Request{Arrive: 5, Duration: 3}
	if r.Departs() != 8 {
		t.Fatalf("Departs = %d, want 8", r.Departs())
	}
}
