// Package core implements the online half of the paper's contribution:
// the OLIVE algorithm (Algorithm 2) — plan-guided online embedding with
// capacity borrowing, preemption of borrowed allocations, and a collocated
// greedy fallback — together with the evaluated baselines QUICKG (OLIVE
// with an empty plan), FULLG (exact per-request embedding) and SLOTOFF
// (per-slot offline re-optimization, §IV-A).
package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// Algorithm names one of the evaluated algorithms.
type Algorithm string

// The four algorithms of the paper's evaluation.
const (
	AlgoOLIVE   Algorithm = "OLIVE"
	AlgoQuickG  Algorithm = "QUICKG"
	AlgoFullG   Algorithm = "FULLG"
	AlgoSlotOff Algorithm = "SLOTOFF"
)

// Options configures an Engine.
type Options struct {
	// Plan is the PLAN-VNE embedding plan. A nil or empty plan turns
	// the engine into the QUICKG baseline (pure greedy).
	Plan *plan.Plan
	// Exact switches the fallback embedder from the collocated greedy
	// (GREEDYEMBED, §III-C) to the exact per-request DP — the FULLG
	// baseline. FULLG omits the collocation restriction.
	Exact bool
	// DisableBorrowing turns off the partial-fit mechanism (Alg. 2
	// line 27): requests that do not fully fit their class's residual
	// plan go straight to the greedy fallback. Ablation only.
	DisableBorrowing bool
	// DisablePreemption turns off PREEMPT (Alg. 2 line 35). Ablation
	// only.
	DisablePreemption bool
	// MaxExactRetries bounds FULLG's capacity branch-out (retries with
	// saturated elements excluded). Zero selects the default.
	MaxExactRetries int
}

const defaultExactRetries = 6

// Outcome reports the processing result for one request.
type Outcome struct {
	// Accepted is true if the request was embedded.
	Accepted bool
	// Planned is true if the allocation came fully out of the residual
	// plan (a "guaranteed" allocation in Fig. 12's terms). Borrowed
	// (partial-fit) and greedy allocations have Planned == false.
	Planned bool
	// Emb is the chosen embedding (nil when rejected). It may be shared
	// — with a plan share, with other requests, or with the embedder's
	// collocated-candidate memo — and must be treated as immutable.
	Emb *vnet.Embedding
	// Preempted lists request IDs preempted to make room.
	Preempted []int
}

// Engine processes online requests against a substrate, optionally guided
// by a plan (OLIVE) — Algorithm 2 of the paper.
//
// All residual and price bookkeeping lives in a substrate.State — the
// residual vector Res(S,t,x) of Eq. 16, the per-element prices, and the
// lazy shortest-path cache the embedding oracle queries. Engines built
// with NewEngineOn share one State (and its warm caches) sequentially;
// the engine itself holds no private residual copies.
type Engine struct {
	g    *graph.Graph
	apps []*vnet.App
	opts Options

	st       *substrate.State
	oracle   *embedder.Oracle
	shareRes [][]float64 // residual plan per class per share, Eq. 17

	active  map[int]*activeReq
	depHeap departureHeap
	now     int

	// Preemption scratch, reused across Process calls.
	preDeficit map[graph.ElementID]float64
	preCands   []*activeReq

	// freeReqs recycles activeReq records between departure and the next
	// arrival, so steady-state churn allocates none.
	freeReqs []*activeReq
}

type activeReq struct {
	req      workload.Request
	emb      *vnet.Embedding
	planned  bool
	classIdx int // -1 for non-planned
	shareIdx int
}

type departure struct {
	slot int
	id   int
}

// departureHeap is a concrete min-heap on departure slot. It deliberately
// does not implement container/heap — the interface round-trips every
// pushed and popped element through interface{}, boxing one 16-byte
// struct per call on the hottest per-request path.
type departureHeap []departure

func (h *departureHeap) push(d departure) {
	*h = append(*h, d)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].slot <= q[i].slot {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *departureHeap) pop() departure {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && q[r].slot < q[c].slot {
			c = r
		}
		if q[i].slot <= q[c].slot {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top
}

// NewEngine builds an engine over a fresh substrate state (residuals at
// full capacity, prices = element costs).
func NewEngine(g *graph.Graph, apps []*vnet.App, opts Options) (*Engine, error) {
	if g == nil {
		return nil, errors.New("core: engine needs a substrate and applications")
	}
	return NewEngineOn(embedder.ForState(substrate.New(g)), apps, opts)
}

// NewEngineOn builds an engine over an existing substrate state, viewed
// through the given oracle. The state's residual vector is reset to full
// capacities; its price vector (which must be the element costs for the
// engine's cost accounting to match the paper) and its warm shortest-path
// and collocated-embedding caches are kept — back-to-back algorithm runs
// over one simulation cell share them.
func NewEngineOn(oracle *embedder.Oracle, apps []*vnet.App, opts Options) (*Engine, error) {
	if oracle == nil || len(apps) == 0 {
		return nil, errors.New("core: engine needs a substrate and applications")
	}
	if opts.MaxExactRetries == 0 {
		opts.MaxExactRetries = defaultExactRetries
	}
	st := oracle.State()
	st.ResetResidual()
	e := &Engine{
		g:      st.Graph(),
		apps:   apps,
		opts:   opts,
		st:     st,
		oracle: oracle,
		active: make(map[int]*activeReq),
	}
	if !opts.Plan.Empty() {
		e.shareRes = make([][]float64, len(opts.Plan.Classes))
		for i, cp := range opts.Plan.Classes {
			rs := make([]float64, len(cp.Shares))
			for j, s := range cp.Shares {
				rs[j] = s.Fraction * cp.Class.Demand
			}
			e.shareRes[i] = rs
		}
	}
	return e, nil
}

// Algorithm returns which named algorithm this engine realizes.
func (e *Engine) Algorithm() Algorithm {
	switch {
	case !e.opts.Plan.Empty():
		return AlgoOLIVE
	case e.opts.Exact:
		return AlgoFullG
	default:
		return AlgoQuickG
	}
}

// Residual returns a copy of the substrate residual vector. Mutating the
// returned slice cannot affect engine state; diagnostics may keep it.
func (e *Engine) Residual() []float64 { return e.st.ResidualSnapshot(nil) }

// ResidualView returns the engine's live residual vector without
// copying, for internal hot paths that read it every request. The slice
// aliases engine state: callers must not mutate it, and must not hold
// it across Process/StartSlot calls expecting a snapshot — it reflects
// every subsequent allocation. Anything that needs an independent copy
// uses Residual.
func (e *Engine) ResidualView() []float64 { return e.st.ResidualVec() }

// State returns the substrate state this engine operates on.
func (e *Engine) State() *substrate.State { return e.st }

// ActiveCount returns the number of currently embedded requests.
func (e *Engine) ActiveCount() int { return len(e.active) }

// StartSlot advances time to slot t, releasing every request that departs
// at or before t (Alg. 2 line 5).
func (e *Engine) StartSlot(t int) {
	e.now = t
	for len(e.depHeap) > 0 && e.depHeap[0].slot <= t {
		d := e.depHeap.pop()
		ar, ok := e.active[d.id]
		if !ok || ar.req.Departs() > t {
			continue // departed earlier via preemption, or re-scheduled
		}
		e.release(ar)
	}
}

func (e *Engine) release(ar *activeReq) {
	e.st.Release(ar.emb, ar.req.Demand)
	if ar.planned {
		e.shareRes[ar.classIdx][ar.shareIdx] += ar.req.Demand
	}
	delete(e.active, ar.req.ID)
	// Recycle the record. The embedding pointer is dropped so the free
	// list cannot pin released embeddings; req stays readable because
	// preempt reports IDs right after releasing.
	ar.emb = nil
	e.freeReqs = append(e.freeReqs, ar)
}

// ReleaseByID releases the active request with the given ID before its
// scheduled departure, returning its resources (and, for planned
// allocations, its plan share) immediately. It reports whether the
// request was active. The serving layer uses it for client-initiated
// teardown; the request's stale departure-heap entry is skipped when its
// slot comes up.
func (e *Engine) ReleaseByID(id int) bool {
	ar, ok := e.active[id]
	if !ok {
		return false
	}
	e.release(ar)
	return true
}

// Process handles one arriving request (Alg. 2 lines 6–16) and returns
// the outcome. Requests must be fed in arrival order, interleaved with
// StartSlot calls.
func (e *Engine) Process(r workload.Request) (Outcome, error) {
	if r.App < 0 || r.App >= len(e.apps) {
		return Outcome{}, fmt.Errorf("core: request %d references app %d of %d", r.ID, r.App, len(e.apps))
	}
	var out Outcome

	emb, planned, classIdx, shareIdx := e.planEmbed(r)

	if planned && !e.st.Fits(emb, r.Demand) {
		// Borrowed capacity blocks a planned allocation: preempt
		// non-planned requests to free it (Alg. 2 lines 8–9).
		if !e.opts.DisablePreemption {
			out.Preempted = e.preempt(emb, r.Demand)
		}
		if !e.st.Fits(emb, r.Demand) {
			// Preemption could not clear the way; treat the plan
			// route as unavailable.
			emb, planned = nil, false
		}
	}

	if emb == nil {
		emb = e.greedyEmbed(r)
		planned = false
	}

	if emb == nil || !e.st.Fits(emb, r.Demand) {
		return out, nil // rejected (Alg. 2 line 15)
	}

	// ALLOCATE (Alg. 2 lines 18–22).
	e.st.Apply(emb, r.Demand)
	var ar *activeReq
	if n := len(e.freeReqs); n > 0 {
		ar = e.freeReqs[n-1]
		e.freeReqs = e.freeReqs[:n-1]
	} else {
		ar = new(activeReq)
	}
	*ar = activeReq{req: r, emb: emb, planned: planned, classIdx: -1, shareIdx: -1}
	if planned {
		ar.classIdx, ar.shareIdx = classIdx, shareIdx
		e.shareRes[classIdx][shareIdx] -= r.Demand
	}
	e.active[r.ID] = ar
	e.depHeap.push(departure{slot: r.Departs(), id: r.ID})
	out.Accepted = true
	out.Planned = planned
	out.Emb = emb
	return out, nil
}

// planEmbed implements PLANEMBED (Alg. 2 lines 23–30): full fit in the
// residual plan ⇒ planned; otherwise a partial fit "borrows" plan capacity
// (planned=false). Returns a nil embedding when the plan offers nothing.
func (e *Engine) planEmbed(r workload.Request) (emb *vnet.Embedding, planned bool, classIdx, shareIdx int) {
	if e.opts.Plan.Empty() {
		return nil, false, -1, -1
	}
	ci, ok := e.opts.Plan.LookupIndex(r.App, r.Ingress)
	if !ok {
		return nil, false, -1, -1
	}
	cp := &e.opts.Plan.Classes[ci]
	rs := e.shareRes[ci]

	// Full fit: among shares with residual ≥ d, prefer one whose
	// embedding also fits the substrate right now (avoids needless
	// preemption); fall back to the fullest share.
	bestFit, bestAny := -1, -1
	for j := range cp.Shares {
		if rs[j] < r.Demand {
			continue
		}
		if bestAny < 0 || rs[j] > rs[bestAny] {
			bestAny = j
		}
		if e.st.Fits(cp.Shares[j].E, r.Demand) {
			if bestFit < 0 || rs[j] > rs[bestFit] {
				bestFit = j
			}
		}
	}
	if bestFit >= 0 {
		return cp.Shares[bestFit].E, true, ci, bestFit
	}
	if bestAny >= 0 {
		return cp.Shares[bestAny].E, true, ci, bestAny
	}

	// Partial fit (borrow): any share with positive residual whose
	// embedding fits the substrate for the full demand (Alg. 2
	// line 27: α·x̂ ≤ Res(y) and x̂ ≤ Res(S)).
	if !e.opts.DisableBorrowing {
		best := -1
		for j := range cp.Shares {
			if rs[j] <= 0 {
				continue
			}
			if !e.st.Fits(cp.Shares[j].E, r.Demand) {
				continue
			}
			if best < 0 || rs[j] > rs[best] {
				best = j
			}
		}
		if best >= 0 {
			return cp.Shares[best].E, false, -1, -1
		}
	}
	return nil, false, -1, -1
}

// preempt implements PREEMPT (Alg. 2 lines 35–38): reject active
// non-planned requests until the needed embedding fits, choosing at each
// step the request that frees the most of the remaining deficit. Returns
// the preempted request IDs (empty if preemption cannot help, in which
// case nothing is preempted).
func (e *Engine) preempt(emb *vnet.Embedding, d float64) []int {
	// Deficit per element, in the engine's reusable scratch map.
	if e.preDeficit == nil {
		e.preDeficit = make(map[graph.ElementID]float64)
	}
	remaining := e.preDeficit
	clear(remaining)
	res := e.st.ResidualVec()
	for _, u := range emb.UnitUse() {
		if need := u.Amount*d - res[u.Elem]; need > 0 {
			remaining[u.Elem] = need
		}
	}
	if len(remaining) == 0 {
		return nil
	}
	// Candidates: active non-planned allocations (R_DONE \ R_PLAN), in
	// the reusable candidate buffer.
	cands := e.preCands[:0]
	for _, ar := range e.active {
		if !ar.planned {
			cands = append(cands, ar)
		}
	}
	e.preCands = cands
	// Deterministic order, then greedy max-relief selection.
	sort.Slice(cands, func(i, j int) bool { return cands[i].req.ID < cands[j].req.ID })

	var chosen []*activeReq
	for len(remaining) > 0 {
		bestIdx, bestRelief := -1, 0.0
		for i, ar := range cands {
			if ar == nil {
				continue
			}
			var relief float64
			for _, u := range ar.emb.UnitUse() {
				if need, ok := remaining[u.Elem]; ok {
					rel := u.Amount * ar.req.Demand
					if rel > need {
						rel = need
					}
					relief += rel
				}
			}
			if relief > bestRelief {
				bestRelief, bestIdx = relief, i
			}
		}
		if bestIdx < 0 {
			clear(e.preCands)
			return nil // preemption cannot clear the deficit
		}
		ar := cands[bestIdx]
		cands[bestIdx] = nil
		chosen = append(chosen, ar)
		// Subtract the chosen request's relief in place; elements its
		// embedding does not touch keep their deficit.
		for _, u := range ar.emb.UnitUse() {
			if need, ok := remaining[u.Elem]; ok {
				rel := u.Amount * ar.req.Demand
				if need > rel {
					remaining[u.Elem] = need - rel
				} else {
					delete(remaining, u.Elem)
				}
			}
		}
	}
	ids := make([]int, 0, len(chosen))
	for _, ar := range chosen {
		e.release(ar)
		ids = append(ids, ar.req.ID)
	}
	// Drop the retained pointers: the backing array survives until the
	// next preemption, and it must not pin released requests (and their
	// embeddings) in memory meanwhile.
	clear(e.preCands)
	return ids
}

// greedyEmbed implements GREEDYEMBED (Alg. 2 lines 31–34): the cheapest
// feasible collocated embedding — or, for FULLG, the exact min-cost
// embedding with iterative exclusion of saturated elements.
func (e *Engine) greedyEmbed(r workload.Request) *vnet.Embedding {
	app := e.apps[r.App]
	if !e.opts.Exact {
		emb, _, ok := e.oracle.BestCollocated(app, r.Ingress, e.st.ResidualVec(), r.Demand)
		if !ok {
			return nil
		}
		return emb
	}
	return e.exactEmbed(app, r)
}

// vnfNodeBan forbids placing one VNF on one node.
type vnfNodeBan struct {
	v vnet.VNFID
	u graph.NodeID
}

// bbNode is one branch-and-bound search node: a set of bans plus the
// relaxed (capacity-ignoring) min-cost embedding under them.
type bbNode struct {
	pairs map[vnfNodeBan]bool
	elems map[graph.ElementID]bool
	emb   *vnet.Embedding
	cost  float64
}

// exactEmbed implements FULLG's per-request exact embedding as best-first
// branch and bound. The capacity-ignoring DP is an admissible lower bound
// (bans only raise cost), so the first feasible embedding popped is
// cost-optimal within the explored branching. Branching on an overloaded
// node is complete: any feasible embedding must move at least one of the
// VNFs the relaxation co-located there, and a child is created per such
// move. Branching on an overloaded link excludes the link wholesale,
// which approximates path re-routing (DESIGN.md §3). The search budget is
// Options.MaxExactRetries expansions.
//
// Every solve goes through the engine's shared oracle: the unexcluded
// root relaxation reads the substrate state's warm path cache, and
// excluded retries borrow pooled substrate views — no per-retry oracle or
// all-pairs rebuild.
func (e *Engine) exactEmbed(app *vnet.App, r workload.Request) *vnet.Embedding {
	solve := func(n *bbNode) bool {
		var allow embedder.Restriction
		if len(n.pairs) > 0 {
			allow = func(v vnet.VNFID, u graph.NodeID) bool { return !n.pairs[vnfNodeBan{v, u}] }
		}
		emb, cost, ok := e.oracle.MinCostEmbedExcluded(app, r.Ingress, allow, n.elems)
		n.emb, n.cost = emb, cost
		return ok
	}

	root := &bbNode{}
	if !solve(root) {
		return nil
	}
	open := []*bbNode{root}
	for budget := e.opts.MaxExactRetries * 4; budget > 0 && len(open) > 0; budget-- {
		// Pop the lowest-bound node (lists stay tiny; linear scan).
		best := 0
		for i := range open {
			if open[i].cost < open[best].cost {
				best = i
			}
		}
		n := open[best]
		open = append(open[:best], open[best+1:]...)

		if e.st.Fits(n.emb, r.Demand) {
			return n.emb
		}
		// Branch on the first violated element.
		res := e.st.ResidualVec()
		var violated graph.ElementID = -1
		for _, u := range n.emb.UnitUse() {
			if u.Amount*r.Demand > res[u.Elem] {
				violated = u.Elem
				break
			}
		}
		if violated < 0 {
			continue
		}
		child := func() *bbNode {
			c := &bbNode{
				pairs: make(map[vnfNodeBan]bool, len(n.pairs)+1),
				elems: make(map[graph.ElementID]bool, len(n.elems)+1),
			}
			for k := range n.pairs {
				c.pairs[k] = true
			}
			for k := range n.elems {
				c.elems[k] = true
			}
			return c
		}
		if node, isNode := e.g.ElementNode(violated); isNode {
			for i, host := range n.emb.NodeMap {
				vid := vnet.VNFID(i)
				if vid == vnet.Root || host != node {
					continue
				}
				c := child()
				c.pairs[vnfNodeBan{vid, node}] = true
				if solve(c) {
					open = append(open, c)
				}
			}
		} else {
			c := child()
			c.elems[violated] = true
			if solve(c) {
				open = append(open, c)
			}
		}
	}
	return nil
}

// SwapPlan replaces the engine's plan mid-run — the time-varying plan
// extension (paper §VI future work). Plan residuals are re-initialized
// from the new plan; requests allocated under the previous plan keep their
// resources but are reclassified as non-planned, making them preemptible
// borrowers with respect to the new plan's guarantees.
func (e *Engine) SwapPlan(p *plan.Plan) {
	e.opts.Plan = p
	if p.Empty() {
		e.shareRes = nil
	} else {
		e.shareRes = make([][]float64, len(p.Classes))
		for i, cp := range p.Classes {
			rs := make([]float64, len(cp.Shares))
			for j, s := range cp.Shares {
				rs[j] = s.Fraction * cp.Class.Demand
			}
			e.shareRes[i] = rs
		}
	}
	for _, ar := range e.active {
		ar.planned = false
		ar.classIdx, ar.shareIdx = -1, -1
	}
}

// PlannedResidual returns the remaining planned capacity (demand units)
// of the class serving (app, ingress); zero when the plan has no such
// class. Diagnostics for Fig. 12-style introspection.
func (e *Engine) PlannedResidual(app int, ingress graph.NodeID) float64 {
	ci, ok := e.opts.Plan.LookupIndex(app, ingress)
	if !ok {
		return 0
	}
	var sum float64
	for _, v := range e.shareRes[ci] {
		sum += v
	}
	return sum
}

// CheckInvariants verifies internal consistency: residuals non-negative
// and consistent with the set of active allocations. Used by tests and
// failure-injection harnesses.
func (e *Engine) CheckInvariants() error {
	recomputed := e.g.Capacities()
	for _, ar := range e.active {
		ar.emb.Apply(recomputed, ar.req.Demand)
	}
	res := e.st.ResidualVec()
	for i := range recomputed {
		if recomputed[i] < -1e-6 {
			return fmt.Errorf("core: element %d oversubscribed by %g", i, -recomputed[i])
		}
		if diff := recomputed[i] - res[i]; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("core: element %d residual drift %g", i, diff)
		}
	}
	if e.shareRes != nil {
		for ci, rs := range e.shareRes {
			cp := e.opts.Plan.Classes[ci]
			for j, v := range rs {
				max := cp.Shares[j].Fraction * cp.Class.Demand
				if v < -1e-6 || v > max+1e-6 {
					return fmt.Errorf("core: class %d share %d residual %g outside [0,%g]", ci, j, v, max)
				}
			}
		}
	}
	return nil
}
