package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// SlotOff is the SLOTOFF baseline (§IV-A): at every time slot it solves a
// fresh offline VNE instance over the currently active requests (the
// PRANOS-style aggregated LP of the plan package) and re-allocates all of
// them; requests it cannot fit are rejected and never reconsidered. Unlike
// OLIVE, active requests may receive a completely different allocation in
// every slot — an inherent advantage the paper acknowledges.
type SlotOff struct {
	g       *graph.Graph
	apps    []*vnet.App
	opts    plan.Options
	solver  *plan.Solver
	alive   []workload.Request
	rejects map[int]bool
	// Alloc maps request ID to its current-slot embedding.
	Alloc map[int]*vnet.Embedding
	// resScratch is the per-slot residual snapshot, reused across Steps.
	resScratch []float64
}

// SlotOffOptions tunes the per-slot LP. Pricing rounds are kept small:
// SLOTOFF solves one LP per slot, and the paper only requires it to be a
// strong (near-optimal) reference. The shared Solver's warm starts and
// solution-support column pool matter here: pooled columns are ordinary
// candidate embeddings for the *current* slot's instance (each slot's LP
// still optimizes only that slot), so carrying them across slots moves
// two truncated pricing rounds much closer to the per-slot optimum the
// paper's CPLEX-backed SLOTOFF represents — without them this baseline
// re-seeded from scratch each slot and was systematically weaker than
// its definition intends.
func SlotOffOptions() plan.Options {
	o := plan.DefaultOptions()
	o.MaxPricingRounds = 2
	o.InitialCandidates = 3
	return o
}

// NewSlotOff builds the baseline over a private substrate state.
func NewSlotOff(g *graph.Graph, apps []*vnet.App, opts plan.Options) (*SlotOff, error) {
	if g == nil || len(apps) == 0 {
		return nil, errors.New("core: SLOTOFF needs a substrate and applications")
	}
	return newSlotOff(g, apps, opts, plan.NewSolver(g, apps))
}

// NewSlotOffOn builds the baseline sharing an existing cost-price oracle
// (and its warm substrate state) for per-slot column seeding — the
// simulation harness passes each cell's shared oracle. SLOTOFF never
// mutates the oracle's prices or residuals; it keeps its own residual
// scratch for rounding.
func NewSlotOffOn(oracle *embedder.Oracle, apps []*vnet.App, opts plan.Options) (*SlotOff, error) {
	if oracle == nil || len(apps) == 0 {
		return nil, errors.New("core: SLOTOFF needs a substrate and applications")
	}
	g := oracle.State().Graph()
	return newSlotOff(g, apps, opts, plan.NewSolverOn(oracle, apps))
}

func newSlotOff(g *graph.Graph, apps []*vnet.App, opts plan.Options, solver *plan.Solver) (*SlotOff, error) {
	return &SlotOff{
		g: g, apps: apps, opts: opts,
		// One plan solver for the whole run: per-slot re-optimizations
		// share its warm substrate state (path cache, collocated
		// candidate memos, pricing buffers) instead of re-deriving
		// prices from scratch every slot.
		solver:  solver,
		rejects: make(map[int]bool),
		Alloc:   make(map[int]*vnet.Embedding),
	}, nil
}

// SlotResult reports one slot's outcome.
type SlotResult struct {
	// AcceptedNew / RejectedNew partition this slot's arrivals.
	AcceptedNew, RejectedNew []workload.Request
	// Dropped lists previously accepted requests that no longer fit
	// (counted as rejections, like OLIVE's preemptions).
	Dropped []workload.Request
	// ResourceCost is this slot's Σ load·cost over the substrate.
	ResourceCost float64
}

// Step processes slot t: drops departures, solves the offline instance
// over (alive ∪ arrivals), rounds the fractional solution into unsplittable
// per-request allocations, and returns the outcome.
func (s *SlotOff) Step(t int, arrivals []workload.Request) (SlotResult, error) {
	var res SlotResult
	// Drop departures.
	alive := s.alive[:0]
	for _, r := range s.alive {
		if r.Departs() > t {
			alive = append(alive, r)
		}
	}
	s.alive = alive

	// Candidate set: previously accepted requests first (they get
	// priority in rounding), then this slot's arrivals.
	work := make([]workload.Request, 0, len(s.alive)+len(arrivals))
	work = append(work, s.alive...)
	newFrom := len(s.alive)
	for _, r := range arrivals {
		if r.Arrive != t {
			return res, fmt.Errorf("core: SLOTOFF fed request %d arriving at %d during slot %d", r.ID, r.Arrive, t)
		}
		work = append(work, r)
	}
	if len(work) == 0 {
		s.Alloc = make(map[int]*vnet.Embedding)
		return res, nil
	}

	// Aggregate actual active demand into classes and solve the
	// offline LP (OFF-VNE over R(t), as in §IV-A).
	type key struct {
		app     int
		ingress graph.NodeID
	}
	demand := make(map[key]float64)
	for _, r := range work {
		demand[key{r.App, r.Ingress}] += r.Demand
	}
	classes := make([]plan.Class, 0, len(demand))
	for k, d := range demand {
		classes = append(classes, plan.Class{App: k.app, Ingress: k.ingress, Demand: d})
	}
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Ingress != classes[j].Ingress {
			return classes[i].Ingress < classes[j].Ingress
		}
		return classes[i].App < classes[j].App
	})
	p, err := s.solver.Build(classes, s.opts)
	if err != nil {
		return res, fmt.Errorf("core: SLOTOFF slot %d: %w", t, err)
	}

	// Rounding: walk requests (alive first, then arrivals, each by
	// descending demand within its group), assigning each to the
	// fullest share of its class that fits both the share's remaining
	// planned volume and the substrate residual.
	sort.SliceStable(work[:newFrom], func(i, j int) bool { return work[i].Demand > work[j].Demand })
	sort.SliceStable(work[newFrom:], func(i, j int) bool {
		a, b := work[newFrom+i], work[newFrom+j]
		return a.Demand > b.Demand
	})

	shareRes := make(map[int][]float64)
	s.resScratch = s.g.CapacitiesInto(s.resScratch)
	residual := s.resScratch
	newAlloc := make(map[int]*vnet.Embedding, len(work))
	var nextAlive []workload.Request

	assign := func(r workload.Request) bool {
		ci, ok := p.LookupIndex(r.App, r.Ingress)
		if !ok {
			return false
		}
		cp := &p.Classes[ci]
		rs, ok := shareRes[ci]
		if !ok {
			rs = make([]float64, len(cp.Shares))
			for j, sh := range cp.Shares {
				rs[j] = sh.Fraction * cp.Class.Demand
			}
			shareRes[ci] = rs
		}
		best := -1
		for j := range cp.Shares {
			if rs[j]+shareSlack < r.Demand {
				continue
			}
			if !cp.Shares[j].E.FitsResidual(residual, r.Demand) {
				continue
			}
			if best < 0 || rs[j] > rs[best] {
				best = j
			}
		}
		if best < 0 {
			return false
		}
		rs[best] -= r.Demand
		cp.Shares[best].E.Apply(residual, r.Demand)
		newAlloc[r.ID] = cp.Shares[best].E
		return true
	}

	for i, r := range work {
		isNew := i >= newFrom
		if assign(r) {
			if isNew {
				res.AcceptedNew = append(res.AcceptedNew, r)
			}
			nextAlive = append(nextAlive, r)
			continue
		}
		if isNew {
			res.RejectedNew = append(res.RejectedNew, r)
			s.rejects[r.ID] = true
		} else {
			res.Dropped = append(res.Dropped, r)
		}
	}
	s.alive = nextAlive
	s.Alloc = newAlloc

	for _, r := range s.alive {
		res.ResourceCost += newAlloc[r.ID].Cost(r.Demand)
	}
	return res, nil
}

// shareSlack lets rounding overflow a share's planned volume slightly: the
// LP is fractional while requests are unsplittable, so strict bucketing
// would strand capacity that the substrate check (FitsResidual) already
// guards. One mean request (≈10 demand units) of slack per share recovers
// most of the rounding loss without violating feasibility.
const shareSlack = 10.0

// ActiveCount returns the number of currently embedded requests.
func (s *SlotOff) ActiveCount() int { return len(s.alive) }
