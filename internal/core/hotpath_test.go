package core

import (
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// TestResidualDefensiveCopy is the regression test for the Residual()
// aliasing hazard: the returned slice must be a copy, so callers mutating
// it cannot corrupt the engine's residual bookkeeping.
func TestResidualDefensiveCopy(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	e, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	if out, err := e.Process(req(0, 0, 0, 10, 0, 5)); err != nil || !out.Accepted {
		t.Fatalf("Process = (%+v, %v), want accepted", out, err)
	}

	res := e.Residual()
	for i := range res {
		res[i] = -1e9 // scribble all over the caller's copy
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("mutating Residual()'s return corrupted the engine: %v", err)
	}

	// The engine still sees its own residual: a second copy is pristine.
	res2 := e.Residual()
	for i := range res2 {
		if res2[i] == -1e9 {
			t.Fatalf("element %d of a fresh Residual() reflects caller scribbles", i)
		}
	}
	// And the copies are independent of each other.
	if &res[0] == &res2[0] {
		t.Fatal("successive Residual() calls alias the same backing array")
	}
}

// TestResidualViewIsLive pins down the other half of the residual
// contract: ResidualView must NOT copy — it aliases the live vector, so
// internal callers get allocation-free reads that track every
// subsequent embedding.
func TestResidualViewIsLive(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	e, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)

	view := e.ResidualView()
	if &view[0] != &e.ResidualView()[0] {
		t.Fatal("ResidualView returned distinct backing arrays; it must alias live state, not copy")
	}
	before := append([]float64(nil), view...)

	if out, err := e.Process(req(0, 0, 0, 10, 0, 5)); err != nil || !out.Accepted {
		t.Fatalf("Process = (%+v, %v), want accepted", out, err)
	}
	changed := false
	for i := range view {
		if view[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("accepted embedding did not show through ResidualView; the view is stale or a copy")
	}
	// The view and the copying accessor agree on content.
	snap := e.Residual()
	for i := range snap {
		if snap[i] != view[i] {
			t.Fatalf("element %d: Residual()=%g disagrees with ResidualView()=%g", i, snap[i], view[i])
		}
	}
}

// TestNoAllPairsInPerRequestPath hooks the graph layer's AllPairs counter
// to verify the substrate-state contract: neither engine construction nor
// any per-request processing — including FULLG's capacity branch-out
// retries, which previously rebuilt an all-pairs oracle per retry — ever
// triggers an eager AllPairsShortestPaths computation.
func TestNoAllPairsInPerRequestPath(t *testing.T) {
	g, err := topo.Build(topo.Iris, 1)
	if err != nil {
		t.Fatal(err)
	}
	apps := vnet.DefaultMix(vnet.DefaultParams(), testRNG(5))

	before := graph.AllPairsCalls()

	for _, exact := range []bool{false, true} {
		e, err := NewEngine(g, apps, Options{Exact: exact})
		if err != nil {
			t.Fatal(err)
		}
		edges := g.EdgeNodes()
		id := 0
		for slot := 0; slot < 6; slot++ {
			e.StartSlot(slot)
			for i := 0; i < 40; i++ {
				// Heavy demand saturates elements and forces the
				// FULLG branch-out to retry with exclusions.
				r := req(id, id%len(apps), edges[id%len(edges)], 40, slot, 3)
				id++
				if _, err := e.Process(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	if after := graph.AllPairsCalls(); after != before {
		t.Fatalf("per-request path performed %d AllPairsShortestPaths calls; want 0", after-before)
	}
}
