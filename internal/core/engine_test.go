package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 77)) }

// tinySubstrate: ingress A (tiny), hosting nodes B (big) and C (small),
// line A-B-C.
func tinySubstrate() *graph.Graph {
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1000, Cost: 10})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 4000, Cost: 1})
	g.AddNode(graph.Node{Name: "C", Tier: graph.TierCore, Cap: 800, Cost: 2})
	g.AddLink(0, 1, 2000, 1)
	g.AddLink(1, 2, 2000, 1)
	return g
}

// tinyApp: θ→v1→v2, node footprint 20/unit, root link 4/unit.
func tinyApp() *vnet.App {
	return &vnet.App{
		Name: "tiny", Kind: vnet.KindChain,
		VNFs:  []vnet.VNF{{ID: 0}, {ID: 1, Size: 10}, {ID: 2, Size: 10}},
		Links: []vnet.VLink{{From: 0, To: 1, Size: 4}, {From: 1, To: 2, Size: 2}},
	}
}

func req(id, app int, ingress graph.NodeID, d float64, arrive, dur int) workload.Request {
	return workload.Request{ID: id, App: app, Ingress: ingress, Demand: d, Arrive: arrive, Duration: dur}
}

// manualPlan builds a single-class plan: app 0 at ingress 0, demand D,
// fully planned onto the collocated embedding at node B.
func manualPlan(t *testing.T, g *graph.Graph, app *vnet.App, D float64) *plan.Plan {
	t.Helper()
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: D}}
	opts := plan.DefaultOptions()
	p, err := plan.Build(g, []*vnet.App{app}, classes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("manual plan came out empty")
	}
	return p
}

func TestQuickGAcceptsAndReleases(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	e, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Algorithm() != AlgoQuickG {
		t.Fatalf("Algorithm = %v, want QUICKG", e.Algorithm())
	}
	e.StartSlot(0)
	out, err := e.Process(req(0, 0, 0, 10, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || out.Planned {
		t.Fatalf("outcome = %+v, want accepted non-planned", out)
	}
	if !out.Emb.Collocated() {
		t.Fatal("QUICKG produced a non-collocated embedding")
	}
	if e.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", e.ActiveCount())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Departure at slot 3 releases all resources.
	e.StartSlot(3)
	if e.ActiveCount() != 0 {
		t.Fatalf("ActiveCount after departure = %d, want 0", e.ActiveCount())
	}
	caps := g.Capacities()
	for i, c := range caps {
		if math.Abs(e.Residual()[i]-c) > 1e-9 {
			t.Fatalf("element %d residual %g ≠ capacity %g after release", i, e.Residual()[i], c)
		}
	}
}

func TestReleaseByID(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	e, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	out, err := e.Process(req(0, 0, 0, 10, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("request not accepted")
	}
	if !e.ReleaseByID(0) {
		t.Fatal("ReleaseByID(0) = false, want true for an active request")
	}
	if e.ActiveCount() != 0 {
		t.Fatalf("ActiveCount after ReleaseByID = %d, want 0", e.ActiveCount())
	}
	caps := g.Capacities()
	for i, c := range caps {
		if math.Abs(e.Residual()[i]-c) > 1e-9 {
			t.Fatalf("element %d residual %g ≠ capacity %g after early release", i, e.Residual()[i], c)
		}
	}
	if e.ReleaseByID(0) {
		t.Fatal("ReleaseByID(0) = true on an already-released request")
	}
	if e.ReleaseByID(99) {
		t.Fatal("ReleaseByID(99) = true on an unknown request")
	}
	// The stale departure-heap entry from the released request must not
	// disturb later slots.
	e.StartSlot(5)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A planned allocation returns its plan-share residual too.
	p := manualPlan(t, g, app, 100)
	ep, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	ep.StartSlot(0)
	out, err = ep.Process(req(1, 0, 0, 10, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || !out.Planned {
		t.Fatalf("outcome = %+v, want accepted planned", out)
	}
	before := ep.PlannedResidual(0, 0)
	if !ep.ReleaseByID(1) {
		t.Fatal("ReleaseByID(1) = false")
	}
	if after := ep.PlannedResidual(0, 0); after != before+10 {
		t.Fatalf("planned residual after release = %g, want %g", after, before+10)
	}
	if err := ep.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGRejectsWhenSaturated(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	e, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	accepted, rejected := 0, 0
	// Footprint 20/unit·demand 50 = 1000 CU per request; total node
	// capacity 5800 ⇒ at most 5 fit (links bind earlier for remote).
	for i := 0; i < 12; i++ {
		out, err := e.Process(req(i, 0, 0, 50, 0, 100))
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			accepted++
		} else {
			rejected++
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("after request %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Fatal("no rejection despite saturation")
	}
	if accepted == 0 {
		t.Fatal("nothing accepted on an empty substrate")
	}
}

func TestOLIVEPlannedAllocation(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	p := manualPlan(t, g, app, 100)
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if e.Algorithm() != AlgoOLIVE {
		t.Fatalf("Algorithm = %v, want OLIVE", e.Algorithm())
	}
	e.StartSlot(0)
	out, err := e.Process(req(0, 0, 0, 10, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || !out.Planned {
		t.Fatalf("outcome %+v, want planned acceptance", out)
	}
	if got := e.PlannedResidual(0, 0); got > 100-10+1e-6 {
		t.Fatalf("planned residual %g not reduced by allocation", got)
	}
	// Departure restores the plan residual.
	before := e.PlannedResidual(0, 0)
	e.StartSlot(5)
	if after := e.PlannedResidual(0, 0); after <= before {
		t.Fatalf("plan residual %g not restored after departure (was %g)", after, before)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOLIVEBorrowsBeyondPlan(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	p := manualPlan(t, g, app, 30) // plan covers only 30 demand units
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	// First request exhausts the plan; second must borrow
	// (accepted, planned=false).
	out1, _ := e.Process(req(0, 0, 0, 28, 0, 50))
	if !out1.Accepted || !out1.Planned {
		t.Fatalf("first request %+v, want planned", out1)
	}
	out2, _ := e.Process(req(1, 0, 0, 28, 0, 50))
	if !out2.Accepted {
		t.Fatal("second request rejected despite free substrate capacity")
	}
	if out2.Planned {
		t.Fatal("second request marked planned beyond plan capacity")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOLIVEBorrowingDisabled(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	p := manualPlan(t, g, app, 30)
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p, DisableBorrowing: true})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	e.Process(req(0, 0, 0, 28, 0, 50))
	out, _ := e.Process(req(1, 0, 0, 28, 0, 50))
	// Without borrowing the request falls to the greedy path; it is
	// still accepted (substrate has room) but never via the plan.
	if !out.Accepted {
		t.Fatal("greedy fallback failed")
	}
	if out.Planned {
		t.Fatal("planned allocation beyond plan capacity with borrowing disabled")
	}
}

func TestOLIVEPreemptsBorrowers(t *testing.T) {
	// Substrate with one hosting node so borrowed capacity must be
	// reclaimed: ingress A, host B.
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 1000, Cost: 1})
	g.AddLink(0, 1, 10000, 1)
	app := tinyApp() // 20 CU/unit on B
	// Plan: class (app0, A) with demand 40 → 800 CU on B guaranteed.
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: 40}}
	p, err := plan.Build(g, []*vnet.App{app}, classes, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)

	// Request 0: planned, 10 units (200 CU). Plan residual 30 left.
	if out, _ := e.Process(req(0, 0, 0, 10, 0, 100)); !out.Planned {
		t.Fatalf("request 0 not planned: %+v", out)
	}
	// Request 1: 35 units > plan residual 30 → borrows 700 CU.
	out1, _ := e.Process(req(1, 0, 0, 35, 0, 100))
	if !out1.Accepted || out1.Planned {
		t.Fatalf("request 1 %+v, want borrowed acceptance", out1)
	}
	// Substrate now holds 200+700=900 of 1000 CU. Request 2 wants 25
	// units = 500 CU: fits plan residual (30) but not substrate → must
	// preempt the borrower (request 1).
	out2, _ := e.Process(req(2, 0, 0, 25, 0, 100))
	if !out2.Accepted || !out2.Planned {
		t.Fatalf("request 2 %+v, want planned acceptance via preemption", out2)
	}
	if len(out2.Preempted) != 1 || out2.Preempted[0] != 1 {
		t.Fatalf("preempted %v, want [1]", out2.Preempted)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOLIVEPreemptionDisabled(t *testing.T) {
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 1000, Cost: 1})
	g.AddLink(0, 1, 10000, 1)
	app := tinyApp()
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: 40}}
	p, err := plan.Build(g, []*vnet.App{app}, classes, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p, DisablePreemption: true})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	e.Process(req(0, 0, 0, 10, 0, 100))
	e.Process(req(1, 0, 0, 35, 0, 100)) // borrower fills node B
	out, _ := e.Process(req(2, 0, 0, 25, 0, 100))
	if out.Accepted {
		t.Fatalf("request accepted without preemption: %+v", out)
	}
	if len(out.Preempted) != 0 {
		t.Fatal("preemption happened despite being disabled")
	}
}

func TestFullGExactBeatsCollocatedWhenSplitHelps(t *testing.T) {
	// Two hosting nodes of 250 CU each: a 20 CU/unit app with demand 20
	// needs 400 CU total — no single node fits it, but a split does.
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1, Cost: 5})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 250, Cost: 1})
	g.AddNode(graph.Node{Name: "C", Tier: graph.TierTransport, Cap: 250, Cost: 1})
	g.AddLink(0, 1, 10000, 1)
	g.AddLink(1, 2, 10000, 1)
	app := tinyApp()

	quick, err := NewEngine(g, []*vnet.App{app}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	quick.StartSlot(0)
	if out, _ := quick.Process(req(0, 0, 0, 20, 0, 10)); out.Accepted {
		t.Fatal("collocated greedy accepted an unfittable request")
	}

	full, err := NewEngine(g, []*vnet.App{app}, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Algorithm() != AlgoFullG {
		t.Fatalf("Algorithm = %v, want FULLG", full.Algorithm())
	}
	full.StartSlot(0)
	out, _ := full.Process(req(0, 0, 0, 20, 0, 10))
	if !out.Accepted {
		t.Fatal("FULLG could not split the request across nodes")
	}
	if out.Emb.Collocated() {
		t.Fatal("FULLG embedding unexpectedly collocated (no single node fits)")
	}
	if err := full.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRejectsBadRequests(t *testing.T) {
	g := tinySubstrate()
	e, err := NewEngine(g, []*vnet.App{tinyApp()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(req(0, 7, 0, 1, 0, 1)); err == nil {
		t.Fatal("out-of-range app index accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, nil, Options{}); err == nil {
		t.Fatal("nil substrate accepted")
	}
	if _, err := NewEngine(tinySubstrate(), nil, Options{}); err == nil {
		t.Fatal("empty app set accepted")
	}
}

// TestEngineRandomizedInvariants drives all three engine modes with a
// random request stream and asserts residual consistency throughout.
func TestEngineRandomizedInvariants(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 21)
	rng := testRNG(21)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.2)
	wp.Slots = 40
	tr, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	hist, online, err := tr.Split(25)
	if err != nil {
		t.Fatal(err)
	}
	popts := plan.DefaultOptions()
	popts.BootstrapB = 20
	p, err := plan.BuildFromHistory(g, apps, hist, popts, rng)
	if err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{{}, {Plan: p}, {Exact: true}} {
		e, err := NewEngine(g, apps, opts)
		if err != nil {
			t.Fatal(err)
		}
		slots := online.PerSlot()
		for ts := range slots {
			e.StartSlot(ts)
			for _, r := range slots[ts] {
				if _, err := e.Process(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("%v slot %d: %v", e.Algorithm(), ts, err)
			}
		}
	}
}

func TestSlotOffBasic(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	s, err := NewSlotOff(g, []*vnet.App{app}, SlotOffOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Step(0, []workload.Request{req(0, 0, 0, 10, 0, 3), req(1, 0, 0, 10, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AcceptedNew) != 2 || len(res.RejectedNew) != 0 {
		t.Fatalf("slot 0: accepted %d rejected %d, want 2/0", len(res.AcceptedNew), len(res.RejectedNew))
	}
	if res.ResourceCost <= 0 {
		t.Fatal("no resource cost reported for active requests")
	}
	// Slot 3: request 0 departs.
	res3, err := s.Step(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1 after departure", s.ActiveCount())
	}
	if len(res3.Dropped) != 0 {
		t.Fatal("re-optimization dropped a fitting request")
	}
}

func TestSlotOffRejectsOverload(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	s, err := NewSlotOff(g, []*vnet.App{app}, SlotOffOptions())
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []workload.Request
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, req(i, 0, 0, 20, 0, 10))
	}
	res, err := s.Step(0, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RejectedNew) == 0 {
		t.Fatal("no rejections at massive overload")
	}
	if len(res.AcceptedNew) == 0 {
		t.Fatal("no acceptances on an empty substrate")
	}
	// Substrate feasibility of the final allocation.
	load := make([]float64, g.NumElements())
	for _, r := range res.AcceptedNew {
		s.Alloc[r.ID].Apply(load, -r.Demand)
	}
	for i := range load {
		if -load[i] > g.ElementCap(graph.ElementID(i))+1e-6 {
			t.Fatalf("element %d overloaded: %g > %g", i, -load[i], g.ElementCap(graph.ElementID(i)))
		}
	}
}

func TestSlotOffArrivalSlotMismatch(t *testing.T) {
	g := tinySubstrate()
	s, err := NewSlotOff(g, []*vnet.App{tinyApp()}, SlotOffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(5, []workload.Request{req(0, 0, 0, 1, 3, 1)}); err == nil {
		t.Fatal("mismatched arrival slot accepted")
	}
}

func TestSwapPlanReclassifiesActives(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	p1 := manualPlan(t, g, app, 100)
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p1})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	out, _ := e.Process(req(0, 0, 0, 10, 0, 50))
	if !out.Planned {
		t.Fatal("first request not planned")
	}
	if got := e.PlannedResidual(0, 0); got > 90+1e-6 {
		t.Fatalf("pre-swap residual %g, want ≤ 90", got)
	}

	// Swap to a fresh plan: residuals reset to the new plan's full
	// capacity; the active request becomes a borrower.
	p2 := manualPlan(t, g, app, 60)
	e.SwapPlan(p2)
	if got := e.PlannedResidual(0, 0); math.Abs(got-60) > 1e-6 {
		t.Fatalf("plan residual after swap = %g, want full 60", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The old request's departure must NOT credit the new plan.
	e.StartSlot(50)
	if got := e.PlannedResidual(0, 0); got > 60+1e-6 {
		t.Fatalf("departure over-credited the new plan: %g", got)
	}
	// New allocations draw from the new plan.
	out2, _ := e.Process(req(1, 0, 0, 20, 50, 5))
	if !out2.Accepted || !out2.Planned {
		t.Fatalf("post-swap request %+v, want planned acceptance", out2)
	}
}

func TestSwapPlanToEmptyDowngradesToGreedy(t *testing.T) {
	g := tinySubstrate()
	app := tinyApp()
	p := manualPlan(t, g, app, 100)
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	e.SwapPlan(nil)
	out, _ := e.Process(req(0, 0, 0, 10, 0, 5))
	if !out.Accepted || out.Planned {
		t.Fatalf("after swapping to empty plan: %+v, want greedy acceptance", out)
	}
}

func TestPreemptMultipleVictims(t *testing.T) {
	// Hosting node B shared by a planned class at ingress A1 and
	// unplanned greedy traffic from ingress A2. Two greedy interlopers
	// must BOTH be evicted to admit one large planned request.
	g := graph.New()
	g.AddNode(graph.Node{Name: "A1", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "A2", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 1000, Cost: 1})
	g.AddLink(0, 2, 10000, 1)
	g.AddLink(1, 2, 10000, 1)
	app := tinyApp() // 20 CU/unit on B
	// Plan guarantees 40 units (800 CU on B) for ingress A1 only.
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: 40}}
	p, err := plan.Build(g, []*vnet.App{app}, classes, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	// Two greedy interlopers from A2 (no plan class → non-planned),
	// 24 units = 480 CU each: node B at 960/1000.
	for id := 0; id < 2; id++ {
		out, _ := e.Process(req(id, 0, 1, 24, 0, 100))
		if !out.Accepted || out.Planned {
			t.Fatalf("interloper %d: %+v", id, out)
		}
	}
	// Planned request for the full guarantee (40 units = 800 CU): free
	// is 40 CU; one eviction leaves 520, both leave 1000 ≥ 800.
	out, _ := e.Process(req(2, 0, 0, 40, 0, 100))
	if !out.Accepted || !out.Planned {
		t.Fatalf("planned request %+v, want planned acceptance", out)
	}
	if len(out.Preempted) != 2 {
		t.Fatalf("preempted %v, want both interlopers", out.Preempted)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoPreemptionForUnplannableRequest(t *testing.T) {
	// A request too large for the whole substrate must be rejected
	// without evicting anyone (PREEMPT only serves planned allocations).
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 1000, Cost: 1})
	g.AddLink(0, 1, 10000, 1)
	app := tinyApp()
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: 40}}
	p, err := plan.Build(g, []*vnet.App{app}, classes, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	// A borrower occupies part of B.
	out0, _ := e.Process(req(0, 0, 0, 41, 0, 100))
	if !out0.Accepted || out0.Planned {
		t.Fatalf("borrower: %+v", out0)
	}
	// Demand 100 = 2000 CU exceeds node B outright: reject, no victims.
	out, _ := e.Process(req(1, 0, 0, 100, 0, 100))
	if out.Accepted || len(out.Preempted) != 0 {
		t.Fatalf("oversized request: %+v", out)
	}
	if e.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1 (borrower untouched)", e.ActiveCount())
	}
}

func TestPreemptionNeverEvictsPlanned(t *testing.T) {
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Tier: graph.TierEdge, Cap: 1, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Tier: graph.TierTransport, Cap: 1100, Cost: 1})
	g.AddLink(0, 1, 10000, 1)
	app := tinyApp()
	// Quota 50 units = 1000 CU of the 1100 CU node.
	classes := []plan.Class{{App: 0, Ingress: 0, Demand: 50}}
	p, err := plan.Build(g, []*vnet.App{app}, classes, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, []*vnet.App{app}, Options{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	e.StartSlot(0)
	// Two planned requests consume the full quota (50 units = 1000 CU).
	for id := 0; id < 2; id++ {
		out, _ := e.Process(req(id, 0, 0, 25, 0, 100))
		if !out.Accepted || !out.Planned {
			t.Fatalf("request %d not planned: %+v", id, out)
		}
	}
	// A third request: plan residual 0, free 100 CU < 200 CU needed →
	// rejected; planned actives are never preemption victims.
	out, _ := e.Process(req(2, 0, 0, 10, 0, 100))
	if out.Accepted || len(out.Preempted) != 0 {
		t.Fatalf("planned allocations disturbed: %+v", out)
	}
	if e.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d, want 2", e.ActiveCount())
	}
}
