package plan

import (
	"math/rand/v2"
	"testing"

	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// benchInstance builds the fig-scale master-problem instance: the
// Random100 topology at 1.4 utilization (the paper's hardest sweep
// point, and the regime that used to trigger the singular-basis
// failure), with one column-generation round per solve.
func benchInstance(b *testing.B) (*Solver, []Class, Options) {
	b.Helper()
	g := topo.MustBuild(topo.Random100, 4)
	rng := rand.New(rand.NewPCG(4, 1234))
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.4)
	wp.Slots = 150
	tr, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		b.Fatal(err)
	}
	classes, err := Aggregate(tr, len(apps), 0.8, 100, rand.New(rand.NewPCG(5, 1234)))
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxPricingRounds = 1
	return NewSolver(g, apps), classes, opts
}

// BenchmarkPlanSolve measures one column-generation round at fig-scale m
// on the default (warm-started) path; its allocs/op is pinned in
// testdata/bench_baseline.json under the CI regression guard. Iteration
// counts are reported as pivots/op: with the solver's basis memory and
// column pool active, repeat solves should beat the cold baseline below
// by well over 2×.
func BenchmarkPlanSolve(b *testing.B) {
	solver, classes, opts := benchInstance(b)
	// Populate the solver's basis memory and column pool before the
	// timer starts, so even a -benchtime=1x run (the CI guard) measures
	// the warm-started path — the production regime, where SLOTOFF and
	// windowed Builds always follow an earlier Build on the same solver.
	if _, err := solver.Build(classes, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pivots int
	for i := 0; i < b.N; i++ {
		p, err := solver.Build(classes, opts)
		if err != nil {
			b.Fatal(err)
		}
		pivots += p.Iterations
	}
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}

// BenchmarkPlanSolveCold is the ablation: identical instance with
// DisableWarmStarts, every master LP re-solved from a cold basis.
func BenchmarkPlanSolveCold(b *testing.B) {
	solver, classes, opts := benchInstance(b)
	opts.DisableWarmStarts = true
	b.ReportAllocs()
	b.ResetTimer()
	var pivots int
	for i := 0; i < b.N; i++ {
		p, err := solver.Build(classes, opts)
		if err != nil {
			b.Fatal(err)
		}
		pivots += p.Iterations
	}
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}
