package plan

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/stats"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// WindowedPlan realizes the paper's future-work extension (§VI): offline
// plans that account for *time-dependent* expected demand. The demand
// cycle (e.g. a diurnal period) is divided into W windows; each window
// gets its own PLAN-VNE solution built from the history slots falling into
// that window position. The online engine swaps plans at window
// boundaries (Engine.SwapPlan).
type WindowedPlan struct {
	// Period is the demand cycle length in slots.
	Period int
	// Plans holds one plan per window; window w covers cycle positions
	// [w·Period/W, (w+1)·Period/W).
	Plans []*Plan
}

// Windows returns the number of windows W.
func (wp *WindowedPlan) Windows() int { return len(wp.Plans) }

// At returns the plan governing absolute slot t.
func (wp *WindowedPlan) At(t int) *Plan {
	if len(wp.Plans) == 0 {
		return nil
	}
	pos := t % wp.Period
	if pos < 0 {
		pos += wp.Period
	}
	w := pos * len(wp.Plans) / wp.Period
	if w >= len(wp.Plans) {
		w = len(wp.Plans) - 1
	}
	return wp.Plans[w]
}

// WindowOf returns the window index governing absolute slot t.
func (wp *WindowedPlan) WindowOf(t int) int {
	pos := t % wp.Period
	if pos < 0 {
		pos += wp.Period
	}
	w := pos * len(wp.Plans) / wp.Period
	if w >= len(wp.Plans) {
		w = len(wp.Plans) - 1
	}
	return w
}

// BuildWindowed aggregates the history per window position within the
// demand cycle and solves one PLAN-VNE instance per window. The history
// should span at least one full period (more periods give each window
// more samples).
func BuildWindowed(g *graph.Graph, apps []*vnet.App, hist *workload.Trace, period, windows int, opts Options, rng *rand.Rand) (*WindowedPlan, error) {
	if hist == nil || hist.Slots <= 0 {
		return nil, errors.New("plan: empty history")
	}
	if period <= 0 || period > hist.Slots {
		return nil, fmt.Errorf("plan: period %d outside (0,%d]", period, hist.Slots)
	}
	if windows < 1 || windows > period {
		return nil, fmt.Errorf("plan: windows %d outside [1,%d]", windows, period)
	}

	series, err := activeDemandSeries(hist, len(apps))
	if err != nil {
		return nil, err
	}

	// Consume the rng in canonical class order, not map order: each
	// class's bootstrap must draw the same stream no matter how the map
	// iterates, or windowed plans (and everything downstream) vary run
	// to run — the same hazard Aggregate guards against.
	keys := make([]classKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		return keys[i].ingress < keys[j].ingress
	})

	solver := NewSolver(g, apps) // shared warm state across all windows
	wp := &WindowedPlan{Period: period, Plans: make([]*Plan, windows)}
	for w := 0; w < windows; w++ {
		lo := w * period / windows
		hi := (w + 1) * period / windows
		var classes []Class
		for _, key := range keys {
			s := series[key]
			// Collect the slots whose cycle position falls in
			// window w.
			var sub []float64
			for t := 0; t < hist.Slots; t++ {
				if pos := t % period; pos >= lo && pos < hi {
					sub = append(sub, s[t])
				}
			}
			if len(sub) == 0 {
				continue
			}
			est, err := stats.BootstrapQuantile(sub, opts.Alpha, opts.BootstrapB, rng)
			if err != nil {
				return nil, err
			}
			if est.Estimate <= 0 {
				continue
			}
			classes = append(classes, Class{App: key.app, Ingress: key.ingress, Demand: est.Estimate})
		}
		sortClasses(classes)
		p, err := solver.Build(classes, opts)
		if err != nil {
			return nil, fmt.Errorf("plan: window %d: %w", w, err)
		}
		wp.Plans[w] = p
	}
	return wp, nil
}

// activeDemandSeries computes d(r̃,t) — the per-slot active demand of
// every (app, ingress) class (Eq. 5's grouping with R(t) activity).
func activeDemandSeries(hist *workload.Trace, numApps int) (map[classKey][]float64, error) {
	diffs := make(map[classKey][]float64)
	for _, r := range hist.Requests {
		if r.App < 0 || r.App >= numApps {
			return nil, fmt.Errorf("plan: request %d references app %d of %d", r.ID, r.App, numApps)
		}
		k := classKey{app: r.App, ingress: r.Ingress}
		d := diffs[k]
		if d == nil {
			d = make([]float64, hist.Slots+1)
			diffs[k] = d
		}
		d[r.Arrive] += r.Demand
		dep := r.Departs()
		if dep > hist.Slots {
			dep = hist.Slots
		}
		d[dep] -= r.Demand
	}
	out := make(map[classKey][]float64, len(diffs))
	for k, d := range diffs {
		series := make([]float64, hist.Slots)
		var acc float64
		for t := 0; t < hist.Slots; t++ {
			acc += d[t]
			series[t] = acc
		}
		out[k] = series
	}
	return out, nil
}
