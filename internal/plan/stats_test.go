package plan

import "testing"

// TestBuildCounters checks the package counters across a cold build and
// a repeated warm build on the same solver. Counters are process
// globals, so deltas only.
func TestBuildCounters(t *testing.T) {
	warmSolver, coldSolver, classes, warmOpts, coldOpts := warmScenario(t)

	before := Stats()
	if _, err := coldSolver.Build(classes, coldOpts); err != nil {
		t.Fatal(err)
	}
	mid := Stats()
	if mid.Builds != before.Builds+1 {
		t.Fatalf("Builds delta = %d, want 1", mid.Builds-before.Builds)
	}
	if mid.MasterSolves <= before.MasterSolves {
		t.Fatal("cold build recorded no master solves")
	}
	if mid.WarmAttempts != before.WarmAttempts {
		t.Fatalf("DisableWarmStarts build attempted %d warm starts", mid.WarmAttempts-before.WarmAttempts)
	}

	// Two warm builds: the second reuses the first's signature-keyed
	// basis, so warm attempts must flow and nearly all must hit.
	if _, err := warmSolver.Build(classes, warmOpts); err != nil {
		t.Fatal(err)
	}
	if _, err := warmSolver.Build(classes, warmOpts); err != nil {
		t.Fatal(err)
	}
	after := Stats()
	attempts := after.WarmAttempts - mid.WarmAttempts
	hits := after.WarmHits - mid.WarmHits
	if attempts == 0 {
		t.Fatal("warm builds attempted no warm starts")
	}
	if hits == 0 {
		t.Fatalf("0 of %d warm attempts hit", attempts)
	}
	if hits > attempts {
		t.Fatalf("hits %d > attempts %d", hits, attempts)
	}
	if after.Builds != mid.Builds+2 {
		t.Fatalf("Builds delta = %d, want 2", after.Builds-mid.Builds)
	}
}
