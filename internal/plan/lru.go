package plan

import (
	"sort"

	"github.com/olive-vne/olive/internal/lp"
)

// warmLRU is the Solver's signature-keyed basis memory: variable/row
// statuses from past master solves, keyed by stable identity strings
// and bounded by a least-recently-used cap. Before PR 8 the memory was
// rebuilt from scratch every Build, so a windowed or alternating
// workload (two masters taking turns on one Solver) kept forgetting the
// other master's basis. Accumulating entries fixes that — and the LRU
// cap keeps a long-lived Solver (a serve process replanning for hours)
// from growing its memory without bound as classes and embeddings churn.
//
// Eviction is batched: when an insert pushes the map past cap, the
// oldest entries are dropped down to ¾·cap in one pass, amortizing the
// sort. Recency is bumped on both read and write — a key the warm-start
// remap still consults is a key worth keeping.
type warmLRU struct {
	cap     int
	tick    int64
	entries map[string]warmEntry
}

type warmEntry struct {
	st   lp.VarStatus
	tick int64
}

func newWarmLRU(cap int) *warmLRU {
	return &warmLRU{cap: cap, entries: make(map[string]warmEntry)}
}

func (l *warmLRU) len() int { return len(l.entries) }

// get returns the remembered status of key, bumping its recency.
func (l *warmLRU) get(key string) (lp.VarStatus, bool) {
	e, ok := l.entries[key]
	if !ok {
		return 0, false
	}
	l.tick++
	e.tick = l.tick
	l.entries[key] = e
	return e.st, true
}

// put inserts or refreshes key, evicting the least-recently-used
// entries when the cap is exceeded.
func (l *warmLRU) put(key string, st lp.VarStatus) {
	l.tick++
	l.entries[key] = warmEntry{st: st, tick: l.tick}
	if len(l.entries) > l.cap {
		l.evict()
	}
}

// delete removes key (used when a variable returns to its default
// status — absence already means nonbasic-at-lower on replay).
func (l *warmLRU) delete(key string) { delete(l.entries, key) }

// evict drops the oldest entries until the map is at ¾ of cap.
func (l *warmLRU) evict() {
	target := l.cap * 3 / 4
	n := len(l.entries) - target
	if n <= 0 {
		return
	}
	type kt struct {
		key  string
		tick int64
	}
	all := make([]kt, 0, len(l.entries))
	for k, e := range l.entries {
		all = append(all, kt{k, e.tick})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].tick < all[j].tick })
	for _, e := range all[:n] {
		delete(l.entries, e.key)
	}
	counters.warmEvictions.Add(int64(n))
}
