package plan

import (
	"math"
	"testing"

	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func TestBuildWindowedBasics(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	rng := testRNG(20)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 200
	wp.LambdaPerNode = 3
	cp := workload.DefaultCAIDAParams()
	cp.DiurnalPeriod = 100
	cp.DiurnalAmplitude = 0.6
	hist, err := workload.GenerateCAIDA(g, wp, cp, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BootstrapB = 20
	w, err := BuildWindowed(g, apps, hist, 100, 4, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.Windows() != 4 {
		t.Fatalf("Windows = %d, want 4", w.Windows())
	}
	for i, p := range w.Plans {
		if p == nil {
			t.Fatalf("window %d has nil plan", i)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	// At() maps cycle positions to windows, wrapping across periods.
	for _, tc := range []struct {
		slot, window int
	}{
		{0, 0}, {24, 0}, {25, 1}, {99, 3}, {100, 0}, {150, 2}, {350, 2},
	} {
		if got := w.WindowOf(tc.slot); got != tc.window {
			t.Errorf("WindowOf(%d) = %d, want %d", tc.slot, got, tc.window)
		}
		if w.At(tc.slot) != w.Plans[tc.window] {
			t.Errorf("At(%d) returned wrong plan", tc.slot)
		}
	}
}

// The diurnal modulation means windows at the rate peak should carry more
// expected demand than windows at the trough.
func TestWindowedPlansTrackDiurnalCycle(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 2)
	rng := testRNG(21)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 400
	wp.LambdaPerNode = 3
	cp := workload.DefaultCAIDAParams()
	cp.DiurnalPeriod = 200
	cp.DiurnalAmplitude = 0.8
	hist, err := workload.GenerateCAIDA(g, wp, cp, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BootstrapB = 20
	w, err := BuildWindowed(g, apps, hist, 200, 4, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	demand := func(p *Plan) float64 {
		var s float64
		for _, cp := range p.Classes {
			s += cp.Class.Demand
		}
		return s
	}
	// sin peaks in window 1 (slots 50–99 of the 200-slot cycle) and
	// troughs in window 3.
	peak, trough := demand(w.Plans[1]), demand(w.Plans[3])
	if peak <= trough {
		t.Fatalf("peak-window demand %.0f not above trough-window %.0f", peak, trough)
	}
	if ratio := peak / trough; ratio < 1.3 {
		t.Errorf("peak/trough demand ratio %.2f; diurnal signal too weak", ratio)
	}
}

func TestBuildWindowedValidation(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 3)
	rng := testRNG(22)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	hist := &workload.Trace{Slots: 50}
	opts := DefaultOptions()

	if _, err := BuildWindowed(g, apps, nil, 10, 2, opts, rng); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := BuildWindowed(g, apps, hist, 0, 2, opts, rng); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := BuildWindowed(g, apps, hist, 99, 2, opts, rng); err == nil {
		t.Error("period > slots accepted")
	}
	if _, err := BuildWindowed(g, apps, hist, 10, 0, opts, rng); err == nil {
		t.Error("0 windows accepted")
	}
	if _, err := BuildWindowed(g, apps, hist, 10, 11, opts, rng); err == nil {
		t.Error("more windows than period accepted")
	}
}

func TestWindowedSingleWindowMatchesFlatAggregation(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 4)
	rng := testRNG(23)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 150
	wp.LambdaPerNode = 3
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BootstrapB = 40

	w, err := BuildWindowed(g, apps, hist, hist.Slots, 1, opts, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Aggregate(hist, len(apps), opts.Alpha, opts.BootstrapB, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Plans[0].Classes) != len(flat) {
		t.Fatalf("class counts differ: windowed %d vs flat %d", len(w.Plans[0].Classes), len(flat))
	}
	// Same RNG seed ⇒ identical bootstrap estimates... up to map
	// iteration order of the bootstrap draws; accept small deviation.
	for i := range flat {
		got := w.Plans[0].Classes[i].Class
		if got.App != flat[i].App || got.Ingress != flat[i].Ingress {
			t.Fatalf("class %d identity differs", i)
		}
		if math.Abs(got.Demand-flat[i].Demand)/flat[i].Demand > 0.15 {
			t.Fatalf("class %d demand %g vs flat %g", i, got.Demand, flat[i].Demand)
		}
	}
}
