// Package plan implements the offline half of the paper's contribution:
// time-aggregation of the request history into per-(application, ingress)
// classes (§III-A) and the PLAN-VNE linear program with rejection quantiles
// (§III-B, Fig. 4), solved by Dantzig–Wolfe column generation over integral
// candidate embeddings priced by the exact embedder.
//
// The resulting Plan decomposes each class's planned allocation into
// shares — (integral embedding, fraction) pairs — the share-decomposed form
// of the y_s^q(r̃) variables of Fig. 4 (see DESIGN.md §4). OLIVE consumes
// the shares as its residual plan.
package plan

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"

	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/lp"
	"github.com/olive-vne/olive/internal/stats"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// Class is one aggregate request r̃: all history requests sharing an
// application and an ingress node, with the expected aggregated demand
// d(r̃) estimated from the history.
type Class struct {
	// App indexes the run's application set.
	App int
	// Ingress is the shared user location v(r̃).
	Ingress graph.NodeID
	// Demand is d(r̃): the bootstrap-estimated α-percentile of the
	// per-slot active demand of the class (Eq. 6).
	Demand float64
}

// Share is one fractional slice of a class's planned allocation: Fraction
// of the class demand is planned onto the integral embedding E.
type Share struct {
	E        *vnet.Embedding
	Fraction float64
}

// ClassPlan is the plan for one class: its shares and the fraction the
// plan itself rejects (Σ_p y_p of Fig. 4).
type ClassPlan struct {
	Class    Class
	Shares   []Share
	Rejected float64
}

// PlannedDemand returns the demand volume the plan guarantees this class:
// d(r̃)·Σφ. This is the "guaranteed demand" threshold of Fig. 12.
func (cp *ClassPlan) PlannedDemand() float64 {
	var f float64
	for _, s := range cp.Shares {
		f += s.Fraction
	}
	return cp.Class.Demand * f
}

// Plan is a complete PLAN-VNE solution.
type Plan struct {
	Classes []ClassPlan
	// Obj is the LP objective (resource cost + quantile rejection cost).
	Obj float64
	// Iterations counts total simplex pivots across pricing rounds.
	Iterations int
	// PricingRounds counts column-generation rounds performed.
	PricingRounds int

	index map[classKey]int
}

type classKey struct {
	app     int
	ingress graph.NodeID
}

// Lookup returns the plan of the class (app, ingress), or nil if the
// history contained no such class.
func (p *Plan) Lookup(app int, ingress graph.NodeID) *ClassPlan {
	if p == nil {
		return nil
	}
	if i, ok := p.index[classKey{app, ingress}]; ok {
		return &p.Classes[i]
	}
	return nil
}

// LookupIndex returns the index into Classes of the class (app, ingress);
// ok is false if the plan has no such class.
func (p *Plan) LookupIndex(app int, ingress graph.NodeID) (int, bool) {
	if p == nil {
		return 0, false
	}
	i, ok := p.index[classKey{app, ingress}]
	return i, ok
}

// Empty reports whether the plan has no classes (QUICKG runs OLIVE with an
// empty plan).
func (p *Plan) Empty() bool { return p == nil || len(p.Classes) == 0 }

// buildIndex (re)builds the lookup index.
func (p *Plan) buildIndex() {
	p.index = make(map[classKey]int, len(p.Classes))
	for i, c := range p.Classes {
		p.index[classKey{c.Class.App, c.Class.Ingress}] = i
	}
}

// FromClasses assembles a Plan from pre-built class plans — the
// persistence layer's loader and tests use it. The lookup index is built;
// callers should Validate against their substrate.
func FromClasses(classes []ClassPlan, obj float64) *Plan {
	p := &Plan{Classes: classes, Obj: obj}
	p.buildIndex()
	return p
}

// Aggregate groups the request history by (application, ingress) and
// estimates each class's expected aggregated demand as the bootstrap
// α-percentile of its per-slot active demand (Eqs. 5–6). Classes whose
// estimate is zero are dropped.
func Aggregate(hist *workload.Trace, numApps int, alpha float64, bootstrapB int, rng *rand.Rand) ([]Class, error) {
	if hist == nil || hist.Slots <= 0 {
		return nil, errors.New("plan: empty history")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("plan: percentile α=%g outside (0,1]", alpha)
	}
	// diff[key][t] accumulates arrival/departure demand deltas.
	type seriesKey struct {
		app     int
		ingress graph.NodeID
	}
	diffs := make(map[seriesKey][]float64)
	for _, r := range hist.Requests {
		if r.App < 0 || r.App >= numApps {
			return nil, fmt.Errorf("plan: request %d references app %d of %d", r.ID, r.App, numApps)
		}
		k := seriesKey{r.App, r.Ingress}
		d := diffs[k]
		if d == nil {
			d = make([]float64, hist.Slots+1)
			diffs[k] = d
		}
		d[r.Arrive] += r.Demand
		dep := r.Departs()
		if dep > hist.Slots {
			dep = hist.Slots
		}
		d[dep] -= r.Demand
	}
	// Consume the rng in canonical class order, not map order: each
	// class's bootstrap must draw the same stream no matter how the map
	// iterates, or plans (and everything downstream) vary run to run.
	keys := make([]seriesKey, 0, len(diffs))
	for k := range diffs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		return keys[i].ingress < keys[j].ingress
	})
	classes := make([]Class, 0, len(diffs))
	// One series buffer and one bootstrap scratch serve every class:
	// BootstrapQuantileWith only reads the series and does not retain it.
	series := make([]float64, hist.Slots)
	var bsc stats.BootstrapScratch
	for _, k := range keys {
		d := diffs[k]
		var acc float64
		for t := 0; t < hist.Slots; t++ {
			acc += d[t]
			series[t] = acc
		}
		est, err := stats.BootstrapQuantileWith(&bsc, series, alpha, bootstrapB, rng)
		if err != nil {
			return nil, fmt.Errorf("plan: class (%d,%d): %w", k.app, k.ingress, err)
		}
		if est.Estimate <= 0 {
			continue
		}
		classes = append(classes, Class{App: k.app, Ingress: k.ingress, Demand: est.Estimate})
	}
	sortClasses(classes)
	return classes, nil
}

func sortClasses(cs []Class) {
	// Deterministic order (map iteration above is random): by ingress,
	// then app.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func less(a, b Class) bool {
	if a.Ingress != b.Ingress {
		return a.Ingress < b.Ingress
	}
	return a.App < b.App
}

// Options configures plan construction.
type Options struct {
	// Quantiles is P, the rejection-quantile count (10 in the paper;
	// Fig. 11 sweeps 1–50). Must be ≥ 1.
	Quantiles int
	// Alpha is the demand percentile for aggregation (0.8).
	Alpha float64
	// BootstrapB is the bootstrap replicate count for P̂α.
	BootstrapB int
	// InitialCandidates is the number of collocated seed columns per
	// class.
	InitialCandidates int
	// MaxPricingRounds bounds column generation (0 disables pricing —
	// the plan is built from the seed columns only; the ablation bench
	// uses this).
	MaxPricingRounds int
	// RejectionFactor is ψ. Zero selects the paper's conservative
	// default: the cost of placing every element of the application on
	// the most expensive substrate element of its type.
	RejectionFactor float64
	// DisableWarmStarts runs every master LP from a cold basis and
	// ignores the Solver's cross-Build basis memory, solution-support
	// column pool, and batched candidate-pool pricing. An
	// ablation/benchmark knob. Every intermediate LP is still solved to
	// optimality either way, but the resulting plans can differ:
	// truncated column generation explores different column sets when
	// rounds (and consecutive Builds) no longer share state.
	DisableWarmStarts bool
	// Pricing selects the master LP's simplex pricing rule. The zero
	// value (lp.PricingDefault) follows the process-wide default —
	// Devex with partial pricing; lp.PricingDantzig is the full-scan
	// ablation baseline.
	Pricing lp.PricingRule
}

// DefaultOptions returns the paper's plan parameters.
func DefaultOptions() Options {
	return Options{
		Quantiles:         10,
		Alpha:             0.8,
		BootstrapB:        100,
		InitialCandidates: 4,
		MaxPricingRounds:  8,
	}
}

// DefaultRejectionFactor returns the paper's ψ for one application: the
// cost of allocating each virtual element on the most expensive substrate
// element of its kind (§IV-B "Request embedding cost").
func DefaultRejectionFactor(g *graph.Graph, app *vnet.App) float64 {
	var maxNode, maxLink float64
	for _, n := range g.Nodes() {
		if n.Cost > maxNode {
			maxNode = n.Cost
		}
	}
	for _, l := range g.Links() {
		if l.Cost > maxLink {
			maxLink = l.Cost
		}
	}
	return app.TotalNodeSize()*maxNode + app.TotalLinkSize()*maxLink
}

// Solver solves PLAN-VNE instances over one substrate and application
// set, carrying warm substrate state across solves: a cost-price state
// (whose path cache and collocated-embedding memos the column seeding
// reuses) and a pricing state whose link weights are re-derived in place
// each Dantzig–Wolfe round instead of rebuilding an oracle. Repeated
// solves — SLOTOFF's per-slot re-optimization, windowed plans — should
// share one Solver. Not safe for concurrent use.
type Solver struct {
	g    *graph.Graph
	apps []*vnet.App

	seedOracle  *embedder.Oracle
	priceState  *substrate.State
	priceOracle *embedder.Oracle
	dualBuf     []float64
	priceBuf    embedder.Prices

	// Signature-keyed basis memory accumulated across Builds: column
	// and row statuses of solved master LP bases, keyed by stable
	// identities (class, embedding signature, substrate element) rather
	// than indices, so the next Build — whose master may order classes
	// and columns differently — can warm-start from it. SLOTOFF's
	// consecutive per-slot masters and windowed plans differ by a few
	// columns and demands, which is exactly the regime where a warm
	// vertex stays feasible and saves most of the cold phase-1 pivots.
	// The memory persists across Builds under an LRU cap (see lru.go),
	// so masters that alternate on one Solver all keep their bases.
	warmVars *warmLRU
	warmRows *warmLRU
	// pool carries each class's solution-support embeddings (columns
	// basic or at upper bound in the last master) into the next Build's
	// seed set. Without it the remembered basis would reference priced-in
	// columns the fresh master lacks, and the warm start could never
	// reproduce the vertex it came from.
	pool map[classKey][]*vnet.Embedding
	// candPool accumulates the embeddings the pricing oracle has ever
	// produced per class, across Builds, bounded FIFO per class. Pricing
	// rounds batch-price these against the element duals with flat dot
	// products — no oracle run, no per-column FTRANs — and consult the
	// exact oracle only for classes whose pooled candidates yield no
	// improving column.
	candPool map[classKey][]poolCand
}

// poolCand is one pooled candidate embedding with its memoized
// signature (so re-pricing rounds dedup without re-deriving it).
type poolCand struct {
	e   *vnet.Embedding
	sig string
}

// Solver memory policy.
const (
	// warmVarCap / warmRowCap bound the signature-keyed basis memory.
	// Sized for several distinct masters of this repo's largest scenarios
	// (thousands of columns each) before eviction starts.
	warmVarCap = 1 << 14
	warmRowCap = 1 << 13
	// candPoolPerClass bounds the per-class candidate pool (FIFO).
	candPoolPerClass = 32
	// priceTopK is how many improving pooled columns a pricing round
	// feeds the master per class at once.
	priceTopK = 2
)

// NewSolver returns a Solver for the given substrate and applications.
func NewSolver(g *graph.Graph, apps []*vnet.App) *Solver {
	return NewSolverOn(embedder.ForState(substrate.New(g)), apps)
}

// NewSolverOn returns a Solver whose column seeding runs over an existing
// cost-price oracle — e.g. the one a simulation cell's engines already
// share — so its warm path trees and collocated-candidate memos are
// reused rather than rebuilt. The oracle's state prices must be the
// element costs; the solver never modifies them (pricing rounds use a
// private state).
func NewSolverOn(seedOracle *embedder.Oracle, apps []*vnet.App) *Solver {
	g := seedOracle.State().Graph()
	ps := substrate.New(g)
	return &Solver{
		g: g, apps: apps,
		seedOracle:  seedOracle,
		priceState:  ps,
		priceOracle: embedder.ForState(ps),
		warmVars:    newWarmLRU(warmVarCap),
		warmRows:    newWarmLRU(warmRowCap),
		candPool:    make(map[classKey][]poolCand),
	}
}

// Build solves PLAN-VNE for the given classes and returns the plan.
func Build(g *graph.Graph, apps []*vnet.App, classes []Class, opts Options) (*Plan, error) {
	return NewSolver(g, apps).Build(classes, opts)
}

// Build solves PLAN-VNE for the given classes and returns the plan,
// reusing the solver's warm substrate state.
func (s *Solver) Build(classes []Class, opts Options) (*Plan, error) {
	g, apps := s.g, s.apps
	if len(classes) == 0 {
		counters.builds.Add(1)
		p := &Plan{}
		p.buildIndex()
		return p, nil
	}
	if opts.Quantiles < 1 {
		return nil, errors.New("plan: Quantiles must be ≥ 1")
	}
	for _, c := range classes {
		if c.App < 0 || c.App >= len(apps) {
			return nil, fmt.Errorf("plan: class references app %d of %d", c.App, len(apps))
		}
		if c.Demand <= 0 {
			return nil, fmt.Errorf("plan: class (%d,%d) has non-positive demand", c.App, c.Ingress)
		}
	}

	m := newMaster(g, apps, classes, opts)
	m.solver = s
	// The master dies with this call; recycle its LP scratch memory so
	// the next Build (this solver's or anyone's) skips the warm-up.
	defer m.prob.ReleaseWorkspace()
	if err := m.seedColumns(); err != nil {
		return nil, err
	}

	// Warm-start chain: the first solve reuses the previous Build's
	// basis (remapped by signature), and each pricing round reuses the
	// round before it (indices are stable — the master only appends).
	useWarm := !opts.DisableWarmStarts
	var warm *lp.Basis
	if useWarm {
		warm = m.warmBasis(s.warmVars, s.warmRows)
	}
	var sol *lp.Solution
	rounds := 0
	for {
		var err error
		counters.masterSolves.Add(1)
		if warm != nil {
			counters.warmAttempts.Add(1)
			sol, err = m.prob.SolveFrom(warm)
		} else {
			sol, err = m.prob.Solve()
		}
		if err != nil {
			return nil, fmt.Errorf("plan: master LP: %w", err)
		}
		if sol.WarmStarted {
			counters.warmHits.Add(1)
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("plan: master LP %v (the rejection quantiles should make it always feasible)", sol.Status)
		}
		if rounds >= opts.MaxPricingRounds {
			break
		}
		added := m.price(sol)
		rounds++
		if added == 0 {
			break
		}
		if useWarm {
			warm = sol.Basis()
		}
	}
	if useWarm {
		s.captureWarm(m, sol)
	}

	counters.builds.Add(1)
	p := &Plan{Obj: sol.Obj, Iterations: sol.Iterations, PricingRounds: rounds}
	p.Classes = m.extract(sol)
	p.buildIndex()
	return p, nil
}

// BuildFromHistory aggregates hist and builds the plan in one call.
func BuildFromHistory(g *graph.Graph, apps []*vnet.App, hist *workload.Trace, opts Options, rng *rand.Rand) (*Plan, error) {
	return NewSolver(g, apps).BuildFromHistory(hist, opts, rng)
}

// BuildFromHistory aggregates hist and builds the plan on this solver,
// so successive rebuilds over rolling histories — the serving layer's
// online replanner — reuse the warm basis memory and candidate pool the
// way repeated Build calls do.
func (s *Solver) BuildFromHistory(hist *workload.Trace, opts Options, rng *rand.Rand) (*Plan, error) {
	classes, err := Aggregate(hist, len(s.apps), opts.Alpha, opts.BootstrapB, rng)
	if err != nil {
		return nil, err
	}
	return s.Build(classes, opts)
}

// master is the column-generation master problem.
type master struct {
	g       *graph.Graph
	apps    []*vnet.App
	classes []Class
	opts    Options
	solver  *Solver
	psi     []float64 // ψ per class

	prob    *lp.Problem
	elemRow map[graph.ElementID]int // lazily created capacity rows
	convRow []int                   // convexity row per class

	// cols tracks structural embedding columns: class index, embedding.
	colClass []int
	colEmb   []*vnet.Embedding
	sigs     map[string]bool // dedup of (class, embedding) columns

	// quantile column index range per class.
	quantCols [][]int

	// varKeys/rowKeys give every LP column and row a stable identity
	// (class, embedding signature, substrate element) for remapping a
	// previous solve's basis onto this master (Solver warm starts).
	varKeys []string
	rowKeys []string
}

func newMaster(g *graph.Graph, apps []*vnet.App, classes []Class, opts Options) *master {
	m := &master{
		g: g, apps: apps, classes: classes, opts: opts,
		prob:    lp.NewProblem(),
		elemRow: make(map[graph.ElementID]int),
		sigs:    make(map[string]bool),
	}
	m.prob.Pricing = opts.Pricing
	m.psi = make([]float64, len(classes))
	for i, c := range classes {
		if opts.RejectionFactor > 0 {
			m.psi[i] = opts.RejectionFactor
		} else {
			m.psi[i] = DefaultRejectionFactor(g, apps[c.App])
		}
	}
	// Convexity rows and quantile columns.
	m.convRow = make([]int, len(classes))
	m.quantCols = make([][]int, len(classes))
	P := opts.Quantiles
	for i, c := range classes {
		m.convRow[i] = m.prob.AddRow(lp.EQ, 1)
		m.rowKeys = append(m.rowKeys, "c:"+strconv.Itoa(c.App)+":"+strconv.Itoa(int(c.Ingress)))
		for p := 1; p <= P; p++ {
			cost := m.psi[i] * c.Demand * float64(p)
			v := m.prob.MustAddVar(cost, 0, 1/float64(P), []lp.Entry{{Row: m.convRow[i], Coef: 1}})
			m.quantCols[i] = append(m.quantCols[i], v)
			m.varKeys = append(m.varKeys, "q:"+strconv.Itoa(c.App)+":"+strconv.Itoa(int(c.Ingress))+":"+strconv.Itoa(p))
		}
	}
	return m
}

// warmBasis remaps a previous solve's signature-keyed basis onto this
// master's indices, or returns nil when there is nothing to reuse.
// Columns the memory does not know stay nonbasic at lower bound; rows it
// does not know keep their logical column basic — the lp defaults for
// freshly added structure.
func (m *master) warmBasis(vars, rows *warmLRU) *lp.Basis {
	if vars.len() == 0 && rows.len() == 0 {
		return nil
	}
	b := &lp.Basis{
		Vars: make([]lp.VarStatus, m.prob.NumVars()),
		Rows: make([]lp.VarStatus, m.prob.NumRows()),
	}
	for j, key := range m.varKeys {
		if st, ok := vars.get(key); ok {
			b.Vars[j] = st
		}
	}
	for i, key := range m.rowKeys {
		if st, ok := rows.get(key); ok {
			b.Rows[i] = st
		} else {
			b.Rows[i] = lp.StatusBasic
		}
	}
	return b
}

// rowFor returns (creating on demand) the capacity row of element e.
func (m *master) rowFor(e graph.ElementID) int {
	if r, ok := m.elemRow[e]; ok {
		return r
	}
	r := m.prob.AddRow(lp.LE, m.g.ElementCap(e))
	m.elemRow[e] = r
	m.rowKeys = append(m.rowKeys, "e:"+strconv.Itoa(int(e)))
	return r
}

// addColumn inserts the embedding as a candidate for class ci; returns
// false if an identical column already exists.
func (m *master) addColumn(ci int, e *vnet.Embedding) bool {
	return m.addColumnSig(ci, e, embSignature(e))
}

// addColumnSig is addColumn with the embedding signature precomputed
// (the candidate pool memoizes signatures across pricing rounds).
func (m *master) addColumnSig(ci int, e *vnet.Embedding, es string) bool {
	sig := strconv.Itoa(ci) + "|" + es
	if m.sigs[sig] {
		return false
	}
	m.sigs[sig] = true
	d := m.classes[ci].Demand
	entries := make([]lp.Entry, 0, 1+len(e.UnitUse()))
	entries = append(entries, lp.Entry{Row: m.convRow[ci], Coef: 1})
	for _, u := range e.UnitUse() {
		entries = append(entries, lp.Entry{Row: m.rowFor(u.Elem), Coef: u.Amount * d})
	}
	m.prob.MustAddVar(e.UnitCost()*d, 0, 1, entries)
	m.colClass = append(m.colClass, ci)
	m.colEmb = append(m.colEmb, e)
	c := m.classes[ci]
	m.varKeys = append(m.varKeys, "x:"+strconv.Itoa(c.App)+":"+strconv.Itoa(int(c.Ingress))+":"+es)
	return true
}

// captureWarm merges the final basis of a solved master into the
// Solver's signature-keyed memory for later Builds. Variable statuses
// are stored sparsely (missing means nonbasic-at-lower, the default) —
// a variable back at its lower bound is deleted rather than stored, or
// a stale non-lower status from an earlier Build would shadow it. Row
// statuses are stored for every row the master had, because an absent
// row key defaults to logical-basic on replay. Keys from masters this
// Build did not touch survive until the LRU cap evicts them.
func (s *Solver) captureWarm(m *master, sol *lp.Solution) {
	b := sol.Basis()
	if b == nil {
		return
	}
	for j, key := range m.varKeys {
		if st := b.Vars[j]; st != lp.StatusLower {
			s.warmVars.put(key, st)
		} else {
			s.warmVars.delete(key)
		}
	}
	for i, key := range m.rowKeys {
		s.warmRows.put(key, b.Rows[i])
	}
	// Pool the solution support (basic or at-upper embedding columns)
	// for the next Build's seed set. The pool is rebuilt per Build, so
	// it stays bounded by one master's support size.
	base := 0
	for i := range m.quantCols {
		base += len(m.quantCols[i])
	}
	s.pool = make(map[classKey][]*vnet.Embedding)
	for k, ci := range m.colClass {
		if b.Vars[base+k] == lp.StatusLower {
			continue
		}
		c := m.classes[ci]
		key := classKey{c.App, c.Ingress}
		s.pool[key] = append(s.pool[key], m.colEmb[k])
	}
}

func embSignature(e *vnet.Embedding) string {
	// strconv.AppendInt into one grown buffer: this runs per candidate
	// column per pricing round, where fmt boxing showed up in profiles.
	buf := make([]byte, 0, 8*len(e.NodeMap)+16*len(e.PathMap))
	for _, n := range e.NodeMap {
		buf = append(buf, 'n')
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ',')
	}
	for _, p := range e.PathMap {
		for _, l := range p.Links {
			buf = append(buf, 'l')
			buf = strconv.AppendInt(buf, int64(l), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

// seedColumns creates the initial candidate columns: the k cheapest
// collocated embeddings plus the exact min-cost embedding, per class.
// The solver's cost-price oracle memoizes collocated candidates, so
// repeated solves over one substrate (SLOTOFF) seed without rebuilding
// them.
func (m *master) seedColumns() error {
	oracle := m.solver.seedOracle
	seeded := 0
	for ci, c := range m.classes {
		app := m.apps[c.App]
		// Previous solve's solution support first: these columns carry
		// the remembered basis (Solver warm starts) across Builds. Part
		// of the warm-start machinery, so the ablation knob disables it
		// too — a cold Build must not consume a warm Build's pool.
		if !m.opts.DisableWarmStarts {
			for _, e := range m.solver.pool[classKey{c.App, c.Ingress}] {
				if m.addColumn(ci, e) {
					seeded++
				}
			}
		}
		for _, e := range oracle.KCheapestCollocated(app, c.Ingress, m.opts.InitialCandidates) {
			if m.addColumn(ci, e) {
				seeded++
			}
		}
		if e, _, ok := oracle.MinCostEmbed(app, c.Ingress); ok {
			if m.addColumn(ci, e) {
				seeded++
			}
		}
	}
	if seeded == 0 {
		return errors.New("plan: no class admits any embedding (all placements excluded)")
	}
	return nil
}

// price runs the Dantzig–Wolfe pricing round. For each class it first
// batch-prices the Solver's pooled candidate embeddings against the
// master duals — a flat dot product per candidate over its element
// usage, all from the one dual vector the LP already BTRANed — and
// feeds the top-k improving pooled columns to the master at once. Only
// classes whose pool yields nothing improving pay for the exact oracle
// (a Dijkstra-backed min-cost embed under dual-adjusted prices), so the
// oracle keeps its role as the optimality certificate: a round returns
// 0 only after every class's oracle found no improving column. Returns
// the number of columns added. The dual-adjusted prices are written
// into the solver's pricing state in place; its path cache invalidates
// (and its tree buffers are reused) only when link duals actually moved.
func (m *master) price(sol *lp.Solution) int {
	s := m.solver
	if cap(s.dualBuf) < m.g.NumElements() {
		s.dualBuf = make([]float64, m.g.NumElements())
	}
	elemDual := s.dualBuf[:m.g.NumElements()]
	for i := range elemDual {
		elemDual[i] = 0
	}
	for e, row := range m.elemRow {
		elemDual[e] = sol.Dual[row]
	}
	s.priceBuf = embedder.AdjustedPricesInto(s.priceBuf, m.g, elemDual)
	s.priceState.SetPrices(s.priceBuf)
	oracle := s.priceOracle
	usePool := !m.opts.DisableWarmStarts
	const tol = 1e-6
	added := 0
	for ci, c := range m.classes {
		sigma := sol.Dual[m.convRow[ci]]
		if usePool {
			// Batched pool pass: reduced cost of a pooled embedding is
			//   d·(unitCost − Σ u.Amount·elemDual[u.Elem]) − σ
			// — its true column cost minus the duals' valuation of its
			// column, no substrate search involved.
			var best [priceTopK]int
			var bestRC [priceTopK]float64
			nBest := 0
			pool := s.candPool[classKey{c.App, c.Ingress}]
			for pi := range pool {
				e := pool[pi].e
				adj := e.UnitCost()
				for _, u := range e.UnitUse() {
					adj -= u.Amount * elemDual[u.Elem]
				}
				rc := c.Demand*adj - sigma
				if rc >= -tol {
					continue
				}
				k := nBest
				if k < priceTopK {
					nBest++
				} else if rc < bestRC[k-1] {
					k--
				} else {
					continue
				}
				for ; k > 0 && rc < bestRC[k-1]; k-- {
					best[k], bestRC[k] = best[k-1], bestRC[k-1]
				}
				best[k], bestRC[k] = pi, rc
			}
			poolAdded := 0
			for k := 0; k < nBest; k++ {
				if m.addColumnSig(ci, pool[best[k]].e, pool[best[k]].sig) {
					poolAdded++
				}
			}
			// Skip the oracle only when the pool actually delivered a
			// new column: an improving pooled candidate the master
			// already holds proves nothing about what else is out there.
			if poolAdded > 0 {
				counters.pricePoolHits.Add(1)
				added += poolAdded
				continue
			}
		}
		counters.priceOracleCalls.Add(1)
		e, price, ok := oracle.MinCostEmbed(m.apps[c.App], c.Ingress)
		if !ok {
			continue
		}
		if usePool {
			s.poolAdd(classKey{c.App, c.Ingress}, e)
		}
		if c.Demand*price-sigma < -tol {
			if m.addColumn(ci, e) {
				added++
			}
		}
	}
	return added
}

// poolAdd inserts an oracle-produced embedding into the class's
// candidate pool, deduping by signature and evicting FIFO past the cap.
func (s *Solver) poolAdd(key classKey, e *vnet.Embedding) {
	sig := embSignature(e)
	pool := s.candPool[key]
	for i := range pool {
		if pool[i].sig == sig {
			return
		}
	}
	pool = append(pool, poolCand{e: e, sig: sig})
	if n := len(pool) - candPoolPerClass; n > 0 {
		pool = append(pool[:0], pool[n:]...)
		counters.poolEvictions.Add(int64(n))
	}
	s.candPool[key] = pool
}

// extract reads the optimal basis into per-class plans.
func (m *master) extract(sol *lp.Solution) []ClassPlan {
	const eps = 1e-7
	plans := make([]ClassPlan, len(m.classes))
	for i, c := range m.classes {
		plans[i].Class = c
		for _, qc := range m.quantCols[i] {
			plans[i].Rejected += sol.X[qc]
		}
	}
	// Embedding columns follow the quantile columns in creation order;
	// their variable indices are len(quantCols all) + k. Track via the
	// LP indices implicitly: quantile vars were created first, so
	// structural embedding column k has index base+k.
	base := 0
	for i := range m.quantCols {
		base += len(m.quantCols[i])
	}
	for k, ci := range m.colClass {
		frac := sol.X[base+k]
		if frac > eps {
			plans[ci].Shares = append(plans[ci].Shares, Share{E: m.colEmb[k], Fraction: frac})
		}
	}
	// Normalize tiny numerical drift: clamp fractions into [0,1].
	for i := range plans {
		var tot float64
		for j := range plans[i].Shares {
			if plans[i].Shares[j].Fraction > 1 {
				plans[i].Shares[j].Fraction = 1
			}
			tot += plans[i].Shares[j].Fraction
		}
		if tot > 1 {
			scale := 1 / tot
			for j := range plans[i].Shares {
				plans[i].Shares[j].Fraction *= scale
			}
		}
		if plans[i].Rejected < 0 {
			plans[i].Rejected = 0
		}
		if plans[i].Rejected > 1 {
			plans[i].Rejected = 1
		}
	}
	return plans
}

// TotalPlannedLoad returns the load the plan places on every substrate
// element (CU, per-slot steady state) — used by validation and
// diagnostics.
func (p *Plan) TotalPlannedLoad(numElements int) []float64 {
	load := make([]float64, numElements)
	for _, cp := range p.Classes {
		for _, s := range cp.Shares {
			// Apply subtracts usage from a residual vector; applying a
			// negated demand accumulates positive load.
			s.E.Apply(load, -s.Fraction*cp.Class.Demand)
		}
	}
	return load
}

// Validate checks plan invariants against the substrate: share fractions
// in [0,1] with Σφ + rejected ≤ 1+ε per class, and total planned load
// within capacity.
func (p *Plan) Validate(g *graph.Graph) error {
	const eps = 1e-5
	for _, cp := range p.Classes {
		var f float64
		for _, s := range cp.Shares {
			if s.Fraction < -eps || s.Fraction > 1+eps {
				return fmt.Errorf("plan: class (%d,%d) share fraction %g outside [0,1]",
					cp.Class.App, cp.Class.Ingress, s.Fraction)
			}
			f += s.Fraction
		}
		if f+cp.Rejected > 1+1e-3 {
			return fmt.Errorf("plan: class (%d,%d) allocates %g + rejects %g > 1",
				cp.Class.App, cp.Class.Ingress, f, cp.Rejected)
		}
	}
	load := p.TotalPlannedLoad(g.NumElements())
	for e := range load {
		cap := g.ElementCap(graph.ElementID(e))
		if load[e] > cap*(1+1e-6)+1e-6 {
			return fmt.Errorf("plan: element %d planned load %g exceeds capacity %g", e, load[e], cap)
		}
	}
	return nil
}

// RejectionBalance summarizes how evenly the plan spreads rejection across
// the applications sharing each ingress node, mirroring the structure of
// the paper's rejection balance index (Eq. 20): a per-node Jain index over
// per-application rejected demand, averaged over nodes weighted by the
// node's total class demand. Nodes where no application rejects contribute
// a perfect score. 1 = rejection perfectly even across applications.
func (p *Plan) RejectionBalance() float64 {
	perNode := make(map[graph.NodeID][]float64)
	weight := make(map[graph.NodeID]float64)
	for _, cp := range p.Classes {
		v := cp.Class.Ingress
		perNode[v] = append(perNode[v], cp.Rejected*cp.Class.Demand)
		weight[v] += cp.Class.Demand
	}
	var wSum, acc float64
	for v, xs := range perNode {
		rejects := false
		for _, x := range xs {
			if x > 0 {
				rejects = true
				break
			}
		}
		if !rejects {
			continue // no rejection at this node: uninformative
		}
		wSum += weight[v]
		acc += weight[v] * stats.JainIndex(xs)
	}
	if wSum == 0 {
		return 1
	}
	return acc / wSum
}

// ElementUtilization describes the planned load on one substrate element.
type ElementUtilization struct {
	Elem graph.ElementID
	// Name is the element's human-readable name.
	Name string
	// Load is the planned steady-state load in CU.
	Load float64
	// Cap is the element's capacity in CU.
	Cap float64
	// Frac is Load/Cap.
	Frac float64
}

// UtilizationReport returns the planned load of every substrate element
// carrying any planned demand, sorted by descending utilization fraction —
// the capacity-planning view of the plan (see examples/capacityplanning).
func (p *Plan) UtilizationReport(g *graph.Graph) []ElementUtilization {
	load := p.TotalPlannedLoad(g.NumElements())
	out := make([]ElementUtilization, 0, len(load))
	for e, l := range load {
		if l <= 0 {
			continue
		}
		elem := graph.ElementID(e)
		cap := g.ElementCap(elem)
		out = append(out, ElementUtilization{
			Elem: elem, Name: g.ElementName(elem),
			Load: l, Cap: cap, Frac: l / cap,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frac > out[j].Frac })
	return out
}
