package plan

import "sync/atomic"

// Build instrumentation: always-on process-wide counters mirroring the
// lp package's solve counters one level up, where "warm" means the
// plan-layer warm-start machinery (signature-keyed basis memory and
// round-to-round basis chaining) — the hit rate the ROADMAP's replanning
// work needs to watch. Pivot-level detail lives in lp.Stats().

// CountersSnapshot is a point-in-time copy of the package counters,
// cumulative since process start.
type CountersSnapshot struct {
	// Builds counts completed Solver.Build calls (including empty ones).
	Builds int64
	// MasterSolves counts master-LP solves across all pricing rounds.
	MasterSolves int64
	// WarmAttempts counts master solves that had a basis to warm-start
	// from (previous Build via signature remap, or the prior round).
	WarmAttempts int64
	// WarmHits counts warm attempts the LP completed without falling
	// back to a cold solve.
	WarmHits int64
}

var counters struct {
	builds       atomic.Int64
	masterSolves atomic.Int64
	warmAttempts atomic.Int64
	warmHits     atomic.Int64
}

// Stats snapshots the package-wide build counters.
func Stats() CountersSnapshot {
	return CountersSnapshot{
		Builds:       counters.builds.Load(),
		MasterSolves: counters.masterSolves.Load(),
		WarmAttempts: counters.warmAttempts.Load(),
		WarmHits:     counters.warmHits.Load(),
	}
}
