package plan

import "sync/atomic"

// Build instrumentation: always-on process-wide counters mirroring the
// lp package's solve counters one level up, where "warm" means the
// plan-layer warm-start machinery (signature-keyed basis memory and
// round-to-round basis chaining) — the hit rate the ROADMAP's replanning
// work needs to watch. Pivot-level detail lives in lp.Stats().

// CountersSnapshot is a point-in-time copy of the package counters,
// cumulative since process start.
type CountersSnapshot struct {
	// Builds counts completed Solver.Build calls (including empty ones).
	Builds int64
	// MasterSolves counts master-LP solves across all pricing rounds.
	MasterSolves int64
	// WarmAttempts counts master solves that had a basis to warm-start
	// from (previous Build via signature remap, or the prior round).
	WarmAttempts int64
	// WarmHits counts warm attempts the LP completed without falling
	// back to a cold solve.
	WarmHits int64
	// WarmEvictions counts entries the LRU cap dropped from the
	// signature-keyed basis memory.
	WarmEvictions int64
	// PoolEvictions counts candidate embeddings the per-class FIFO cap
	// dropped from the pricing pool.
	PoolEvictions int64
	// PricePoolHits counts (class, round) pricing decisions served by
	// the batched candidate pool without an oracle run.
	PricePoolHits int64
	// PriceOracleCalls counts exact min-cost-embed oracle runs in
	// pricing rounds — the expensive path the pool exists to avoid.
	PriceOracleCalls int64
}

var counters struct {
	builds           atomic.Int64
	masterSolves     atomic.Int64
	warmAttempts     atomic.Int64
	warmHits         atomic.Int64
	warmEvictions    atomic.Int64
	poolEvictions    atomic.Int64
	pricePoolHits    atomic.Int64
	priceOracleCalls atomic.Int64
}

// Stats snapshots the package-wide build counters.
func Stats() CountersSnapshot {
	return CountersSnapshot{
		Builds:           counters.builds.Load(),
		MasterSolves:     counters.masterSolves.Load(),
		WarmAttempts:     counters.warmAttempts.Load(),
		WarmHits:         counters.warmHits.Load(),
		WarmEvictions:    counters.warmEvictions.Load(),
		PoolEvictions:    counters.poolEvictions.Load(),
		PricePoolHits:    counters.pricePoolHits.Load(),
		PriceOracleCalls: counters.priceOracleCalls.Load(),
	}
}
