package plan

import (
	"strconv"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/lp"
	"github.com/olive-vne/olive/internal/vnet"
)

// TestWarmLRUEviction pins the basis-memory LRU policy: inserts beyond
// the cap evict the least-recently-used entries in a batch down to ¾ of
// cap, recently-read keys survive, and evictions are counted.
func TestWarmLRUEviction(t *testing.T) {
	const cap = 16
	l := newWarmLRU(cap)
	before := Stats().WarmEvictions
	for i := 0; i < cap; i++ {
		l.put("k"+strconv.Itoa(i), lp.StatusBasic)
	}
	if l.len() != cap {
		t.Fatalf("len = %d before overflow, want %d", l.len(), cap)
	}
	// Touch k0 so it is the most recently used entry at overflow time.
	if _, ok := l.get("k0"); !ok {
		t.Fatal("k0 missing before overflow")
	}
	l.put("overflow", lp.StatusUpper)
	want := cap * 3 / 4
	if l.len() != want {
		t.Fatalf("len = %d after eviction, want %d", l.len(), want)
	}
	if got := Stats().WarmEvictions - before; got != int64(cap+1-want) {
		t.Fatalf("WarmEvictions grew by %d, want %d", got, cap+1-want)
	}
	// The just-read and just-written keys survive; the oldest untouched
	// keys are gone.
	if _, ok := l.get("k0"); !ok {
		t.Error("recently-read k0 was evicted")
	}
	if st, ok := l.get("overflow"); !ok || st != lp.StatusUpper {
		t.Errorf("overflow entry = (%v,%v), want (StatusUpper,true)", st, ok)
	}
	if _, ok := l.get("k1"); ok {
		t.Error("oldest entry k1 survived eviction")
	}
	// delete removes without counting as an eviction.
	evBefore := Stats().WarmEvictions
	l.delete("k0")
	if _, ok := l.get("k0"); ok {
		t.Error("deleted k0 still present")
	}
	if Stats().WarmEvictions != evBefore {
		t.Error("delete counted as an eviction")
	}
}

// TestCandPoolFIFOEviction pins the pricing candidate pool's per-class
// FIFO cap and dedup.
func TestCandPoolFIFOEviction(t *testing.T) {
	s := &Solver{candPool: make(map[classKey][]poolCand)}
	key := classKey{app: 0, ingress: 1}
	before := Stats().PoolEvictions
	emb := func(i int) *vnet.Embedding {
		// Distinct node maps give distinct signatures; poolAdd only
		// reads the signature, so a bare mapping suffices.
		return &vnet.Embedding{NodeMap: []graph.NodeID{graph.NodeID(i)}}
	}
	for i := 0; i < candPoolPerClass+3; i++ {
		s.poolAdd(key, emb(i))
	}
	if got := len(s.candPool[key]); got != candPoolPerClass {
		t.Fatalf("pool size = %d, want cap %d", got, candPoolPerClass)
	}
	if got := Stats().PoolEvictions - before; got != 3 {
		t.Fatalf("PoolEvictions grew by %d, want 3", got)
	}
	// Oldest entries evicted first: entry 0..2 gone, 3 is now the front.
	if want := embSignature(emb(3)); s.candPool[key][0].sig != want {
		t.Errorf("front of pool = %q, want %q", s.candPool[key][0].sig, want)
	}
	// Re-adding a pooled embedding dedups instead of growing the pool.
	s.poolAdd(key, emb(candPoolPerClass))
	if got := len(s.candPool[key]); got != candPoolPerClass {
		t.Fatalf("pool size = %d after duplicate add, want %d", got, candPoolPerClass)
	}
}
