package plan

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1234)) }

// smallScenario builds a Città Studi substrate with the default app mix
// and a short MMPP history.
func smallScenario(t *testing.T, seed uint64, util float64) (*graph.Graph, []*vnet.App, *workload.Trace) {
	t.Helper()
	g := topo.MustBuild(topo.CittaStudi, seed)
	rng := testRNG(seed)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(util)
	wp.Slots = 150
	tr, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, apps, tr
}

func TestAggregateBasics(t *testing.T) {
	g, apps, hist := smallScenario(t, 1, 1.0)
	classes, err := Aggregate(hist, len(apps), 0.8, 50, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("no classes aggregated")
	}
	edge := map[graph.NodeID]bool{}
	for _, v := range g.EdgeNodes() {
		edge[v] = true
	}
	for _, c := range classes {
		if !edge[c.Ingress] {
			t.Errorf("class ingress %d is not an edge node", c.Ingress)
		}
		if c.Demand <= 0 {
			t.Errorf("class (%d,%d) demand %g ≤ 0", c.App, c.Ingress, c.Demand)
		}
		if c.App < 0 || c.App >= len(apps) {
			t.Errorf("class app %d out of range", c.App)
		}
	}
	// Deterministic ordering.
	for i := 1; i < len(classes); i++ {
		if less(classes[i], classes[i-1]) {
			t.Fatal("classes not sorted")
		}
	}
}

func TestAggregateP80BelowPeak(t *testing.T) {
	_, apps, hist := smallScenario(t, 3, 1.0)
	p80, err := Aggregate(hist, len(apps), 0.8, 50, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Aggregate(hist, len(apps), 1.0, 50, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(p80) != len(p100) {
		t.Fatalf("class count differs between percentiles: %d vs %d", len(p80), len(p100))
	}
	var lower int
	for i := range p80 {
		if p80[i].Demand < p100[i].Demand {
			lower++
		}
		if p80[i].Demand > p100[i].Demand+1e-6 {
			t.Fatalf("P80 demand %g exceeds P100 %g", p80[i].Demand, p100[i].Demand)
		}
	}
	if lower == 0 {
		t.Error("P80 never strictly below P100 — over-provisioning guard broken")
	}
}

func TestAggregateErrors(t *testing.T) {
	rng := testRNG(1)
	if _, err := Aggregate(nil, 4, 0.8, 10, rng); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := Aggregate(&workload.Trace{Slots: 10}, 4, 1.5, 10, rng); err == nil {
		t.Error("alpha > 1 accepted")
	}
	bad := &workload.Trace{Slots: 10, Requests: []workload.Request{{ID: 0, App: 9, Demand: 1, Duration: 1}}}
	if _, err := Aggregate(bad, 4, 0.8, 10, rng); err == nil {
		t.Error("out-of-range app accepted")
	}
}

func TestBuildPlanOnUncongestedSubstrate(t *testing.T) {
	g, apps, hist := smallScenario(t, 4, 0.6)
	p, err := BuildFromHistory(g, apps, hist, DefaultOptions(), testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("empty plan from non-empty history")
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// At 60% utilization the plan should allocate nearly everything.
	var rej, tot float64
	for _, cp := range p.Classes {
		rej += cp.Rejected * cp.Class.Demand
		tot += cp.Class.Demand
	}
	// Zipf popularity concentrates demand on the hottest edge node, so
	// a small planned rejection is expected even at 60% aggregate edge
	// utilization; anything beyond ~10% would signal a broken LP.
	if frac := rej / tot; frac > 0.10 {
		t.Errorf("plan rejects %.1f%% of demand at 60%% utilization", frac*100)
	}
}

func TestBuildPlanOverloadRejectsWithBalance(t *testing.T) {
	g, apps, hist := smallScenario(t, 5, 1.6)
	opts := DefaultOptions()
	p, err := BuildFromHistory(g, apps, hist, opts, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	var rej float64
	for _, cp := range p.Classes {
		rej += cp.Rejected
	}
	if rej == 0 {
		t.Fatal("no rejection at 160% utilization — capacity constraints not binding")
	}
	// Quantiles should spread rejection across classes: Jain index over
	// rejected fractions well above the single-victim value.
	if b := p.RejectionBalance(); b < 0.3 {
		t.Errorf("rejection balance %g suspiciously low with quantiles", b)
	}
}

func TestQuantilesImproveBalance(t *testing.T) {
	g, apps, hist := smallScenario(t, 6, 1.8)
	classes, err := Aggregate(hist, len(apps), 0.8, 50, testRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	balance := map[int]float64{}
	for _, q := range []int{1, 10} {
		opts := DefaultOptions()
		opts.Quantiles = q
		p, err := Build(g, apps, classes, opts)
		if err != nil {
			t.Fatal(err)
		}
		balance[q] = p.RejectionBalance()
	}
	if balance[10] < balance[1]-0.05 {
		t.Errorf("10 quantiles balance %g worse than 1 quantile %g", balance[10], balance[1])
	}
}

func TestBuildEmptyClasses(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	p, err := Build(g, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatal("plan from no classes not empty")
	}
	if p.Lookup(0, 0) != nil {
		t.Fatal("Lookup on empty plan returned a class")
	}
}

func TestBuildOptionValidation(t *testing.T) {
	g, apps, hist := smallScenario(t, 7, 1.0)
	classes, err := Aggregate(hist, len(apps), 0.8, 20, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Quantiles = 0
	if _, err := Build(g, apps, classes, opts); err == nil {
		t.Error("Quantiles=0 accepted")
	}
	bad := []Class{{App: 99, Ingress: 0, Demand: 5}}
	if _, err := Build(g, apps, bad, DefaultOptions()); err == nil {
		t.Error("class with bad app index accepted")
	}
	bad2 := []Class{{App: 0, Ingress: 0, Demand: 0}}
	if _, err := Build(g, apps, bad2, DefaultOptions()); err == nil {
		t.Error("class with zero demand accepted")
	}
}

func TestLookupFindsEveryClass(t *testing.T) {
	g, apps, hist := smallScenario(t, 8, 1.0)
	p, err := BuildFromHistory(g, apps, hist, DefaultOptions(), testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Classes {
		c := p.Classes[i].Class
		got := p.Lookup(c.App, c.Ingress)
		if got != &p.Classes[i] {
			t.Fatalf("Lookup(%d,%d) returned wrong class", c.App, c.Ingress)
		}
	}
	if p.Lookup(0, graph.NodeID(10_000)) != nil {
		t.Error("Lookup of unknown ingress returned a class")
	}
}

func TestColumnGenerationImprovesObjective(t *testing.T) {
	g, apps, hist := smallScenario(t, 9, 1.4)
	classes, err := Aggregate(hist, len(apps), 0.8, 50, testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	seedOnly := DefaultOptions()
	seedOnly.MaxPricingRounds = 0
	p0, err := Build(g, apps, classes, seedOnly)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(g, apps, classes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if full.Obj > p0.Obj+1e-6 {
		t.Fatalf("column generation worsened objective: %g → %g", p0.Obj, full.Obj)
	}
	if full.PricingRounds == 0 {
		t.Error("no pricing rounds recorded for the full build")
	}
}

func TestPlannedDemand(t *testing.T) {
	cp := &ClassPlan{
		Class:  Class{Demand: 100},
		Shares: []Share{{Fraction: 0.5}, {Fraction: 0.25}},
	}
	if got := cp.PlannedDemand(); math.Abs(got-75) > 1e-12 {
		t.Fatalf("PlannedDemand = %g, want 75", got)
	}
}

func TestDefaultRejectionFactorConservative(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	app := &vnet.App{
		Name: "x", Kind: vnet.KindChain,
		VNFs:  []vnet.VNF{{ID: 0}, {ID: 1, Size: 10}},
		Links: []vnet.VLink{{From: 0, To: 1, Size: 5}},
	}
	psi := DefaultRejectionFactor(g, app)
	// Must be at least as costly as hosting the app on any single node.
	for _, n := range g.Nodes() {
		if psi < 10*n.Cost {
			t.Fatalf("ψ=%g below the cost of node %q (%g)", psi, n.Name, 10*n.Cost)
		}
	}
}

func TestPlanSharesRespectIngressPin(t *testing.T) {
	g, apps, hist := smallScenario(t, 10, 1.0)
	p, err := BuildFromHistory(g, apps, hist, DefaultOptions(), testRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range p.Classes {
		for _, s := range cp.Shares {
			if s.E.NodeMap[vnet.Root] != cp.Class.Ingress {
				t.Fatalf("class (%d,%d): share embeds θ at %d",
					cp.Class.App, cp.Class.Ingress, s.E.NodeMap[vnet.Root])
			}
			if s.E.App != apps[cp.Class.App] {
				t.Fatal("share embedding references wrong app")
			}
		}
	}
}

func TestUtilizationReport(t *testing.T) {
	g, apps, hist := smallScenario(t, 12, 1.2)
	p, err := BuildFromHistory(g, apps, hist, DefaultOptions(), testRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	rep := p.UtilizationReport(g)
	if len(rep) == 0 {
		t.Fatal("empty utilization report for a non-empty plan")
	}
	for i, eu := range rep {
		if eu.Load <= 0 || eu.Cap <= 0 {
			t.Fatalf("entry %d has non-positive load/cap: %+v", i, eu)
		}
		if eu.Frac > 1+1e-6 {
			t.Fatalf("element %q planned beyond capacity: %+v", eu.Name, eu)
		}
		if i > 0 && rep[i-1].Frac < eu.Frac-1e-12 {
			t.Fatal("report not sorted by descending utilization")
		}
		if eu.Name == "" {
			t.Fatal("element name missing")
		}
	}
}
