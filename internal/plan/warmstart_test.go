package plan

import (
	"math"
	"testing"

	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// warmScenario builds a mid-size instance for warm-start behavior tests.
func warmScenario(t *testing.T) (*Solver, *Solver, []Class, Options, Options) {
	t.Helper()
	g := topo.MustBuild(topo.CittaStudi, 9)
	rng := testRNG(9)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.2)
	wp.Slots = 150
	tr, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Aggregate(tr, len(apps), 0.8, 100, testRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	warmOpts := DefaultOptions()
	coldOpts := DefaultOptions()
	coldOpts.DisableWarmStarts = true
	return NewSolver(g, apps), NewSolver(g, apps), classes, warmOpts, coldOpts
}

// TestWarmStartsBeatCold pins the point of the warm-start plumbing: the
// same plan build costs at least 2× fewer simplex pivots with
// round-to-round warm starts, and a repeated build (the SLOTOFF per-slot
// regime, where the Solver's signature-keyed memory and column pool
// apply) nearly vanishes. Plans must stay valid and agree on cost to
// within column-generation truncation noise.
func TestWarmStartsBeatCold(t *testing.T) {
	warmSolver, coldSolver, classes, warmOpts, coldOpts := warmScenario(t)
	g := warmSolver.g

	cold, err := coldSolver.Build(classes, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm1, err := warmSolver.Build(classes, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := warmSolver.Build(classes, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pivots: cold=%d warm=%d repeat=%d", cold.Iterations, warm1.Iterations, warm2.Iterations)

	if warm1.Iterations*2 > cold.Iterations {
		t.Errorf("round-to-round warm starts saved too little: cold %d pivots, warm %d (want ≥2×)",
			cold.Iterations, warm1.Iterations)
	}
	if warm2.Iterations*10 > cold.Iterations {
		t.Errorf("repeated build should be nearly free: cold %d pivots, repeat %d (want ≥10×)",
			cold.Iterations, warm2.Iterations)
	}
	for name, p := range map[string]*Plan{"cold": cold, "warm": warm1, "repeat": warm2} {
		if err := p.Validate(g); err != nil {
			t.Errorf("%s plan invalid: %v", name, err)
		}
	}
	// Truncated column generation may take different column trajectories
	// warm vs cold; the resulting plans must still land within a small
	// relative band of each other.
	for name, p := range map[string]*Plan{"warm": warm1, "repeat": warm2} {
		if rel := math.Abs(p.Obj-cold.Obj) / (1 + math.Abs(cold.Obj)); rel > 5e-3 {
			t.Errorf("%s obj %g drifted %.2g%% from cold obj %g", name, p.Obj, 100*rel, cold.Obj)
		}
	}
}

// TestWarmStartsDeterministic: two fresh solvers replaying the same
// build sequence must produce identical plans — the warm-start path
// (basis memory, column pool) cannot introduce run-to-run variance.
func TestWarmStartsDeterministic(t *testing.T) {
	run := func() []*Plan {
		solver, _, classes, warmOpts, _ := warmScenario(t)
		var out []*Plan
		for i := 0; i < 3; i++ {
			p, err := solver.Build(classes, warmOpts)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Obj != b[i].Obj || a[i].Iterations != b[i].Iterations {
			t.Fatalf("build %d diverged across identical runs: obj %v vs %v, iters %d vs %d",
				i, a[i].Obj, b[i].Obj, a[i].Iterations, b[i].Iterations)
		}
		if len(a[i].Classes) != len(b[i].Classes) {
			t.Fatalf("build %d class count differs", i)
		}
		for ci := range a[i].Classes {
			if a[i].Classes[ci].Rejected != b[i].Classes[ci].Rejected ||
				len(a[i].Classes[ci].Shares) != len(b[i].Classes[ci].Shares) {
				t.Fatalf("build %d class %d differs across identical runs", i, ci)
			}
			for si := range a[i].Classes[ci].Shares {
				if a[i].Classes[ci].Shares[si].Fraction != b[i].Classes[ci].Shares[si].Fraction {
					t.Fatalf("build %d class %d share %d fraction differs", i, ci, si)
				}
			}
		}
	}
}
