package substrate

import (
	"math/rand"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
)

func randSubstrateGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{Cap: 10, Cost: 0.5 + rng.Float64()})
	}
	for i := 1; i < n; i++ {
		g.AddLink(graph.NodeID(rng.Intn(i)), graph.NodeID(i), 10, 0.5+rng.Float64())
	}
	for i := 0; i < 2*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(graph.NodeID(a), graph.NodeID(b), 10, 0.5+rng.Float64())
		}
	}
	return g
}

// TestTreeCacheIncrementalEquivalence drives a State's shortest-path
// cache through many link-price rounds — small SetPrice pokes and bulk
// SetPrices rounds, the access pattern of plan pricing — and checks
// after every round that cached trees (mostly served by incremental
// repair) are bitwise identical to trees computed from scratch on a
// pristine State with the same prices: same Dist values, same paths.
func TestTreeCacheIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randSubstrateGraph(rng, 60)
	st := New(g)
	linkBase := g.NumNodes()
	nEl := g.NumElements()

	pr := make([]float64, nEl)
	copy(pr, st.prices)

	checkAll := func(round int) {
		ref := NewWithPrices(g, pr)
		for src := 0; src < g.NumNodes(); src++ {
			ct := st.Tree(graph.NodeID(src))
			rt := ref.Tree(graph.NodeID(src))
			for dst := 0; dst < g.NumNodes(); dst++ {
				if ct.Dist[dst] != rt.Dist[dst] {
					t.Fatalf("round %d: Dist[%d→%d] cached %v != fresh %v",
						round, src, dst, ct.Dist[dst], rt.Dist[dst])
				}
				cp, cok := st.PathBetween(graph.NodeID(src), graph.NodeID(dst))
				rp, rok := ref.PathBetween(graph.NodeID(src), graph.NodeID(dst))
				if cok != rok || len(cp.Links) != len(rp.Links) {
					t.Fatalf("round %d: path %d→%d shape differs", round, src, dst)
				}
				for k := range cp.Links {
					if cp.Links[k] != rp.Links[k] {
						t.Fatalf("round %d: path %d→%d link %d: cached %d != fresh %d",
							round, src, dst, k, cp.Links[k], rp.Links[k])
					}
				}
			}
		}
	}

	// Warm the whole cache, then perturb.
	checkAll(-1)
	for round := 0; round < 40; round++ {
		if round%5 == 4 {
			// Bulk round: SetPrices with several links (and a node) moved.
			for i := 0; i < 4; i++ {
				pr[linkBase+rng.Intn(nEl-linkBase)] = 0.5 + rng.Float64()
			}
			pr[rng.Intn(linkBase)] = 0.5 + rng.Float64()
			st.SetPrices(pr)
		} else {
			// Poke rounds: individual SetPrice calls.
			for i := 0; i < 1+rng.Intn(3); i++ {
				e := linkBase + rng.Intn(nEl-linkBase)
				pr[e] = 0.5 + rng.Float64()
				st.SetPrice(graph.ElementID(e), pr[e])
			}
		}
		checkAll(round)
	}

	repaired, recomputed := st.RepairStats()
	if repaired == 0 {
		t.Fatalf("no tree refresh took the incremental path (recomputed=%d) — cache equivalence test is vacuous", recomputed)
	}
	t.Logf("repaired=%d recomputed=%d", repaired, recomputed)
}

// TestDeltaLogOverflowFallsBack floods the delta log past its cap and
// checks stale trees still come back correct (via full recompute).
func TestDeltaLogOverflowFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randSubstrateGraph(rng, 30)
	st := New(g)
	st.Tree(0) // cache one tree at the initial epoch
	linkBase := g.NumNodes()
	nEl := g.NumElements()

	pr := make([]float64, nEl)
	copy(pr, st.prices)
	for i := 0; i < maxDeltaLog+50; i++ {
		e := linkBase + rng.Intn(nEl-linkBase)
		pr[e] = 0.5 + rng.Float64()
		st.SetPrice(graph.ElementID(e), pr[e])
	}

	ref := NewWithPrices(g, pr)
	ct, rt := st.Tree(0), ref.Tree(0)
	for i := range ct.Dist {
		if ct.Dist[i] != rt.Dist[i] {
			t.Fatalf("Dist[%d] after log overflow: %v != %v", i, ct.Dist[i], rt.Dist[i])
		}
	}
}
