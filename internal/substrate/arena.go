package substrate

import "github.com/olive-vne/olive/internal/graph"

// Arena is a bump allocator for short-lived numeric scratch slices. Chunks
// handed out remain valid until the next Reset; Reset reclaims all chunks
// at once without freeing the backing arrays, so steady-state use performs
// no allocations. When a backing array fills up, a larger one is allocated
// and previously returned chunks stay valid (they keep referencing the old
// array).
//
// The zero value is ready to use. Not safe for concurrent use — an Arena
// belongs to its State's goroutine.
type Arena struct {
	f64  []float64
	nids []graph.NodeID
}

// Reset reclaims every chunk handed out since the last Reset.
func (a *Arena) Reset() {
	a.f64 = a.f64[:0]
	a.nids = a.nids[:0]
}

// Float64s returns an uninitialized chunk of n float64s valid until Reset.
func (a *Arena) Float64s(n int) []float64 {
	if cap(a.f64)-len(a.f64) < n {
		a.f64 = make([]float64, 0, grow(cap(a.f64), n))
	}
	s := a.f64[len(a.f64) : len(a.f64)+n]
	a.f64 = a.f64[:len(a.f64)+n]
	return s
}

// NodeIDs returns an uninitialized chunk of n NodeIDs valid until Reset.
func (a *Arena) NodeIDs(n int) []graph.NodeID {
	if cap(a.nids)-len(a.nids) < n {
		a.nids = make([]graph.NodeID, 0, grow(cap(a.nids), n))
	}
	s := a.nids[len(a.nids) : len(a.nids)+n]
	a.nids = a.nids[:len(a.nids)+n]
	return s
}

// grow picks a new backing capacity: at least 4× the request (so one DP
// sweep rarely needs more than one backing array) and at least double the
// old capacity.
func grow(old, need int) int {
	c := 4 * need
	if 2*old > c {
		c = 2 * old
	}
	if c < 1024 {
		c = 1024
	}
	return c
}
