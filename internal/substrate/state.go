// Package substrate is the shared substrate-state layer of the online
// machinery: one State owns the residual-capacity vector, the per-element
// price vector, and a query-driven shortest-path cache over the physical
// graph, so that every layer above (embedder, core engines, SLOTOFF, the
// simulation driver) reads and mutates one coherent view instead of each
// cloning vectors and rebuilding all-pairs oracles ad hoc.
//
// # Cache invalidation rules
//
// The shortest-path cache holds one lazily computed single-source Dijkstra
// tree per source node, weighted by the current link prices. Invalidation
// is per element kind:
//
//   - Link price changes invalidate the path cache (they change edge
//     weights). Invalidation is lazy: SetPrice/SetPrices bump the price
//     epoch and stale trees are recomputed — into their existing buffers —
//     on the next query.
//   - Node price changes never touch the path cache: node prices only
//     enter placement costs, not path weights.
//   - Residual changes never invalidate anything: prices, not residuals,
//     define path weights, and feasibility is always evaluated against the
//     live residual vector.
//
// Exclusion queries (FULLG's capacity branch-out retries around saturated
// elements) go through transient Views: a View overlays an exclusion set
// (+Inf link weights, +Inf node prices) on the State's prices and keeps
// its own lazily built trees, pooled and recycled so a retry costs no
// steady-state allocations.
//
// A State is not safe for concurrent use. The parallel experiment runner
// gives every simulation cell its own State over its own graph; the
// underlying graph is never mutated through this layer.
package substrate

import (
	"math"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/vnet"
)

// State is the shared substrate state: residuals, prices and the lazy
// shortest-path cache for one substrate graph.
type State struct {
	g   *graph.Graph
	res []float64

	prices []float64
	// nodePrice aliases prices[0:NumNodes] conceptually; kept as a
	// separate dense slice for branch-free DP reads.
	nodePrice []float64
	epoch     uint64
	priceGen  uint64
	linkW     graph.WeightFunc

	// trees[src] caches the Dijkstra tree from src under the current
	// prices; entries with a stale epoch are incrementally repaired (or
	// recomputed) in place.
	trees []cachedTree

	// deltaLog records every link-price change since logFloor, newest
	// last, so a stale tree knows exactly which weights moved since the
	// epoch it was computed at. When the log would outgrow its cap it is
	// discarded and logFloor jumps to the current epoch: trees older
	// than logFloor lost their delta trail and must fully recompute.
	deltaLog []priceDelta
	logFloor uint64

	dirty   []graph.LinkDelta
	repair  graph.RepairScratch
	repairs repairStats

	viewPool []*View
	arena    Arena

	// selfPaths memoizes the trivial src==dst paths (one per node):
	// they are immutable and end up shared across many embeddings.
	selfPaths []graph.Path
}

type cachedTree struct {
	t     *graph.ShortestPathTree
	epoch uint64
	// tieFree certifies that every reachable node of t has a unique
	// shortest-path achiever, making parent links weight-determined —
	// the precondition for bit-exact incremental repair.
	tieFree bool
}

// priceDelta is one entry of the link-price delta log: link lid changed
// away from old at the given (post-bump) epoch.
type priceDelta struct {
	epoch uint64
	lid   graph.LinkID
	old   float64
}

// repairStats counts incremental-repair outcomes, exposed for tests and
// observability (RepairStats).
type repairStats struct {
	Repaired, Recomputed uint64
}

// Delta-log and repair tuning. The log cap bounds memory and per-tree
// delta-collection cost; the dirty cap bounds teardown work (past it a
// full recompute is cheaper anyway); damage is capped in Tree at half
// the node count for the same reason.
const (
	maxDeltaLog   = 512
	maxDirtyLinks = 32
)

// New returns a State over g with the residual vector initialized to the
// element capacities and prices initialized to the element costs — the
// configuration every online engine starts from.
func New(g *graph.Graph) *State {
	pr := make([]float64, g.NumElements())
	for i := range pr {
		pr[i] = g.ElementCost(graph.ElementID(i))
	}
	return newState(g, pr)
}

// NewWithPrices returns a State over g with the given per-element prices
// (copied) and the residual vector initialized to the element capacities.
func NewWithPrices(g *graph.Graph, prices []float64) *State {
	return newState(g, append([]float64(nil), prices...))
}

func newState(g *graph.Graph, pr []float64) *State {
	s := &State{
		g:         g,
		res:       g.Capacities(),
		prices:    pr,
		nodePrice: make([]float64, g.NumNodes()),
		trees:     make([]cachedTree, g.NumNodes()),
		epoch:     1,
		logFloor:  1,
	}
	copy(s.nodePrice, pr[:g.NumNodes()])
	linkBase := g.NumNodes()
	s.linkW = func(l graph.Link) float64 { return s.prices[linkBase+int(l.ID)] }
	return s
}

// Graph returns the underlying substrate graph (read-only by convention).
func (s *State) Graph() *graph.Graph { return s.g }

// NumElements returns the size of the flat element space.
func (s *State) NumElements() int { return len(s.prices) }

// Epoch returns the current price epoch. It advances whenever a link
// price changes; cached trees from older epochs are recomputed on demand.
func (s *State) Epoch() uint64 { return s.epoch }

// PriceGen returns a generation counter that advances whenever ANY price
// (node or link) changes. Layers caching price-derived artifacts beyond
// path trees — e.g. the embedder's collocated-embedding cache — key their
// validity on it.
func (s *State) PriceGen() uint64 { return s.priceGen }

// ---- Prices ----

// Price returns the current per-CU price of element e.
func (s *State) Price(e graph.ElementID) float64 { return s.prices[e] }

// NodePrice returns the current per-CU price of node u.
func (s *State) NodePrice(u graph.NodeID) float64 { return s.nodePrice[u] }

// SetPrice overwrites the price of element e. A changed link price bumps
// the price epoch (lazily invalidating the path cache); node prices never
// do.
func (s *State) SetPrice(e graph.ElementID, p float64) {
	if s.prices[e] == p {
		return
	}
	old := s.prices[e]
	s.prices[e] = p
	s.priceGen++
	if n, ok := s.g.ElementNode(e); ok {
		s.nodePrice[n] = p
		return
	}
	s.epoch++
	s.logDelta(graph.LinkID(int(e)-s.g.NumNodes()), old)
}

// logDelta appends one link-price change to the delta log, discarding
// the log (and stranding older trees on the full-recompute path) when
// it would outgrow its cap.
func (s *State) logDelta(lid graph.LinkID, old float64) {
	if len(s.deltaLog) >= maxDeltaLog {
		s.deltaLog = s.deltaLog[:0]
		s.logFloor = s.epoch
		return
	}
	s.deltaLog = append(s.deltaLog, priceDelta{epoch: s.epoch, lid: lid, old: old})
}

// SetPrices replaces the whole price vector (copied). The price epoch is
// bumped only if some link price actually changed, so re-pricing rounds
// that leave link weights untouched keep the path cache warm.
func (s *State) SetPrices(pr []float64) {
	if len(pr) != len(s.prices) {
		panic("substrate: SetPrices with wrong-length vector")
	}
	linkBase := s.g.NumNodes()
	changed, linksChanged := false, false
	for i, p := range pr[:linkBase] {
		if p != s.prices[i] {
			changed = true
			break
		}
	}
	// Link elements are scanned in full so every change lands in the
	// delta log; one SetPrices bumps the epoch once however many links
	// move, and the log entries all carry that epoch.
	for i := linkBase; i < len(pr); i++ {
		if pr[i] != s.prices[i] {
			if !linksChanged {
				linksChanged = true
				s.epoch++
			}
			s.logDelta(graph.LinkID(i-linkBase), s.prices[i])
		}
	}
	copy(s.prices, pr)
	copy(s.nodePrice, pr[:linkBase])
	if changed || linksChanged {
		s.priceGen++
	}
}

// ---- Residuals ----

// Residual returns the residual capacity of element e.
func (s *State) Residual(e graph.ElementID) float64 { return s.res[e] }

// ResidualSnapshot appends a copy of the residual vector to dst[:0] and
// returns it. Callers own the copy; mutating it cannot corrupt the State.
func (s *State) ResidualSnapshot(dst []float64) []float64 {
	return append(dst[:0], s.res...)
}

// ResetResidual restores the residual vector to the element capacities,
// leaving prices and the (price-keyed) path cache untouched — engines run
// back-to-back over one State share a warm cache.
func (s *State) ResetResidual() { s.res = s.g.CapacitiesInto(s.res) }

// Fits reports whether demand d of embedding e fits the current residual.
func (s *State) Fits(e *vnet.Embedding, d float64) bool { return e.FitsResidual(s.res, d) }

// ResidualVec returns the live residual vector for read-only hot-path
// scans (sparse feasibility checks, preemption deficit computation).
// Callers must not mutate it — use Apply/Release — and must not retain it
// past the State's lifetime. The public API never exposes this slice; see
// Engine.Residual for the defensive-copy boundary.
func (s *State) ResidualVec() []float64 { return s.res }

// ScaleResidual multiplies every residual capacity by f. The serving
// layer partitions the substrate across engine shards with it: each
// shard's state starts at capacity/N so the shards' admissions cannot
// jointly oversubscribe a physical element. Prices and the path cache
// are unaffected.
func (s *State) ScaleResidual(f float64) {
	for i := range s.res {
		s.res[i] *= f
	}
}

// AddResidual adds the per-element capacities in add to the residual
// vector — the other half of the serving layer's re-partitioning: a
// shard donating capacity scales its residual down and the recipient
// adds the donated vector here. Prices and the path cache are
// unaffected, mirroring ScaleResidual.
func (s *State) AddResidual(add []float64) {
	for i, v := range add {
		s.res[i] += v
	}
}

// Apply subtracts demand d of embedding e from the residual vector.
func (s *State) Apply(e *vnet.Embedding, d float64) { e.Apply(s.res, d) }

// Release returns demand d of embedding e to the residual vector.
func (s *State) Release(e *vnet.Embedding, d float64) { e.Release(s.res, d) }

// ---- Shortest-path cache ----

// Tree returns the shortest-path tree rooted at src under the current
// prices, computing it on first use and caching it. A cached tree left
// stale by a link-price change is incrementally repaired when the delta
// log shows few links moved and the tree is certified tie-free (repair
// is then provably bit-identical to recomputing — see
// graph.RepairLinkWeights); otherwise it is recomputed into its
// existing buffers. The returned tree is owned by the State; callers
// must not retain it across price changes.
func (s *State) Tree(src graph.NodeID) *graph.ShortestPathTree {
	ct := &s.trees[src]
	if ct.t != nil && ct.epoch == s.epoch {
		return ct.t
	}
	lw := s.prices[s.g.NumNodes():]
	if ct.t != nil && ct.tieFree && ct.epoch >= s.logFloor {
		if dirty, ok := s.collectDirty(ct.epoch); ok &&
			ct.t.RepairLinkWeights(&s.repair, lw, dirty, s.g.NumNodes()/2) {
			ct.epoch = s.epoch
			s.repairs.Repaired++
			return ct.t
		}
	}
	ct.t = s.g.DijkstraLinkWeightsInto(ct.t, src, lw)
	ct.tieFree = ct.t.TieFreeLinkWeights(lw)
	ct.epoch = s.epoch
	s.repairs.Recomputed++
	return ct.t
}

// collectDirty condenses the delta-log suffix newer than since into one
// LinkDelta per net-changed link (Old the weight at epoch since, New
// the current weight), reporting false when more than maxDirtyLinks
// moved — there a full recompute beats repair.
func (s *State) collectDirty(since uint64) ([]graph.LinkDelta, bool) {
	dirty := s.dirty[:0]
	linkBase := s.g.NumNodes()
outer:
	for _, d := range s.deltaLog {
		if d.epoch <= since {
			continue
		}
		for i := range dirty {
			if dirty[i].Link == d.lid {
				continue outer // keep the first (oldest) Old per link
			}
		}
		if len(dirty) > maxDirtyLinks {
			s.dirty = dirty
			return nil, false
		}
		dirty = append(dirty, graph.LinkDelta{
			Link: d.lid, Old: d.old, New: s.prices[linkBase+int(d.lid)],
		})
	}
	// Compact out links that netted back to their old weight — they are
	// no-ops for the tree even though the log mentions them.
	kept := dirty[:0]
	for _, d := range dirty {
		if d.New != d.Old {
			kept = append(kept, d)
		}
	}
	s.dirty = dirty[:0]
	if len(kept) > maxDirtyLinks {
		return nil, false
	}
	return kept, true
}

// RepairStats reports how many stale-tree refreshes were served by
// incremental repair vs full recomputation since the State was created.
func (s *State) RepairStats() (repaired, recomputed uint64) {
	return s.repairs.Repaired, s.repairs.Recomputed
}

// Dist returns the price-weighted shortest distance from src to dst.
func (s *State) Dist(src, dst graph.NodeID) float64 { return s.Tree(src).Dist[dst] }

// DistRow returns the full distance row from src — Dist(src, ·) as a
// slice indexed by destination. Hot loops scanning many destinations per
// source index the row directly instead of paying a cache-epoch check per
// lookup. The row is owned by the State's cached tree: read-only, invalid
// after the next price change.
func (s *State) DistRow(src graph.NodeID) []float64 { return s.Tree(src).Dist }

// PathBetween returns the price-shortest path from src to dst; ok is
// false if dst is unreachable under finite link prices. src == dst yields
// the empty path, mirroring graph.AllPairs.Path.
func (s *State) PathBetween(src, dst graph.NodeID) (graph.Path, bool) {
	if src == dst {
		return s.selfPath(src), true
	}
	return s.Tree(src).PathTo(dst)
}

// selfPath returns the memoized trivial path at src. The returned path
// is shared and immutable.
func (s *State) selfPath(src graph.NodeID) graph.Path {
	if s.selfPaths == nil {
		s.selfPaths = make([]graph.Path, s.g.NumNodes())
	}
	if s.selfPaths[src].Nodes == nil {
		s.selfPaths[src] = graph.Path{Nodes: []graph.NodeID{src}}
	}
	return s.selfPaths[src]
}

// ---- Exclusion views ----

// View overlays an exclusion set on a State's prices: excluded links get
// +Inf path weight, excluded nodes +Inf placement price. Views hold their
// own lazily built shortest-path trees whose buffers are recycled through
// the State's pool, so repeated branch-out retries allocate nothing in
// steady state. Release a View with Close when the query batch is done.
type View struct {
	st     *State
	excl   map[graph.ElementID]bool
	trees  []viewTree
	gen    uint64
	w      graph.WeightFunc
	pooled bool
}

type viewTree struct {
	t   *graph.ShortestPathTree
	gen uint64
}

// AcquireView returns a View over the State's prices with the given
// exclusion set (may be nil or empty — then the view is equivalent to the
// base State, but still uses view-private trees). The exclusion map is
// referenced, not copied; callers must not mutate it while the View is in
// use.
func (s *State) AcquireView(excl map[graph.ElementID]bool) *View {
	var v *View
	if n := len(s.viewPool); n > 0 {
		v = s.viewPool[n-1]
		s.viewPool = s.viewPool[:n-1]
	} else {
		v = &View{st: s, trees: make([]viewTree, s.g.NumNodes())}
		linkBase := s.g.NumNodes()
		v.w = func(l graph.Link) float64 {
			if v.excl != nil && v.excl[graph.ElementID(linkBase+int(l.ID))] {
				return math.Inf(1)
			}
			return s.prices[linkBase+int(l.ID)]
		}
	}
	v.excl = excl
	v.gen++
	v.pooled = false
	return v
}

// Close returns the View to its State's pool. The View must not be used
// afterwards; a double Close panics (it would put the View in the pool
// twice and silently hand one View to two later acquisitions).
func (v *View) Close() {
	if v.pooled {
		panic("substrate: View closed twice")
	}
	v.pooled = true
	v.excl = nil
	v.st.viewPool = append(v.st.viewPool, v)
}

// NodePrice returns the placement price of node u under the view: +Inf if
// u's element is excluded, the State's node price otherwise.
func (v *View) NodePrice(u graph.NodeID) float64 {
	if v.excl != nil && v.excl[v.st.g.NodeElement(u)] {
		return math.Inf(1)
	}
	return v.st.nodePrice[u]
}

// Tree returns the view's shortest-path tree rooted at src, computing it
// on first use per acquisition and reusing the tree buffers across
// acquisitions.
func (v *View) Tree(src graph.NodeID) *graph.ShortestPathTree {
	vt := &v.trees[src]
	if vt.t == nil || vt.gen != v.gen {
		vt.t = v.st.g.DijkstraInto(vt.t, src, v.w)
		vt.gen = v.gen
	}
	return vt.t
}

// Dist returns the shortest distance from src to dst avoiding excluded
// links.
func (v *View) Dist(src, dst graph.NodeID) float64 { return v.Tree(src).Dist[dst] }

// DistRow returns the view's full distance row from src; read-only,
// invalid after Close.
func (v *View) DistRow(src graph.NodeID) []float64 { return v.Tree(src).Dist }

// PathBetween returns the shortest src→dst path avoiding excluded links;
// ok is false if dst is unreachable. src == dst yields the empty path.
func (v *View) PathBetween(src, dst graph.NodeID) (graph.Path, bool) {
	if src == dst {
		return v.st.selfPath(src), true
	}
	return v.Tree(src).PathTo(dst)
}

// ---- Scratch arena ----

// ScratchArena returns the State's bump arena for transient per-query
// scratch (the embedder's DP tables). Callers Reset it at the start of a
// query and must not retain chunks past the query.
func (s *State) ScratchArena() *Arena { return &s.arena }
