package substrate

import (
	"math"
	"sync"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/vnet"
)

// diamond builds a 4-node diamond: 0-1-3 (cheap) and 0-2-3 (expensive),
// plus the direct chord 1-2.
func diamond() *graph.Graph {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Name: string(rune('a' + i)), Tier: graph.TierEdge, Cap: 100, Cost: float64(i + 1)})
	}
	g.AddLink(0, 1, 50, 1) // link 0
	g.AddLink(1, 3, 50, 1) // link 1
	g.AddLink(0, 2, 50, 5) // link 2
	g.AddLink(2, 3, 50, 5) // link 3
	g.AddLink(1, 2, 50, 1) // link 4
	return g
}

func TestStatePricesMirrorCosts(t *testing.T) {
	g := diamond()
	s := New(g)
	for e := 0; e < g.NumElements(); e++ {
		if got, want := s.Price(graph.ElementID(e)), g.ElementCost(graph.ElementID(e)); got != want {
			t.Fatalf("Price(%d) = %g, want element cost %g", e, got, want)
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		if s.NodePrice(graph.NodeID(u)) != s.Price(g.NodeElement(graph.NodeID(u))) {
			t.Fatalf("NodePrice(%d) disagrees with Price", u)
		}
	}
}

func TestLazyTreeMatchesEagerDijkstra(t *testing.T) {
	g := diamond()
	s := New(g)
	w := func(l graph.Link) float64 { return l.Cost }
	for src := 0; src < g.NumNodes(); src++ {
		want := g.Dijkstra(graph.NodeID(src), w)
		for dst := 0; dst < g.NumNodes(); dst++ {
			if got := s.Dist(graph.NodeID(src), graph.NodeID(dst)); got != want.Dist[dst] {
				t.Fatalf("Dist(%d,%d) = %g, want %g", src, dst, got, want.Dist[dst])
			}
		}
	}
	// Cached: the same tree pointer comes back while prices stand still.
	if s.Tree(0) != s.Tree(0) {
		t.Fatal("repeated Tree(0) rebuilt the tree without a price change")
	}
}

func TestLinkPriceChangeInvalidatesPathCache(t *testing.T) {
	g := diamond()
	s := New(g)
	if d := s.Dist(0, 3); d != 2 { // 0-1-3 at cost 1+1
		t.Fatalf("initial Dist(0,3) = %g, want 2", d)
	}
	ep := s.Epoch()

	// Raising a link price must invalidate and reroute.
	s.SetPrice(g.LinkElement(0), 100) // 0-1 now expensive
	if s.Epoch() == ep {
		t.Fatal("link price change did not bump the epoch")
	}
	if d := s.Dist(0, 3); d != 7 { // 0-2-1-3 at cost 5+1+1
		t.Fatalf("Dist(0,3) after reweight = %g, want 7", d)
	}

	// Node price changes must NOT invalidate the path cache.
	ep = s.Epoch()
	gen := s.PriceGen()
	tr := s.Tree(0)
	s.SetPrice(g.NodeElement(2), 42)
	if s.Epoch() != ep {
		t.Fatal("node price change bumped the path epoch")
	}
	if s.PriceGen() == gen {
		t.Fatal("node price change did not bump the price generation")
	}
	if s.Tree(0) != tr {
		t.Fatal("node price change invalidated a cached tree")
	}
	if s.NodePrice(2) != 42 {
		t.Fatalf("NodePrice(2) = %g, want 42", s.NodePrice(2))
	}
}

func TestSetPricesEpochSemantics(t *testing.T) {
	g := diamond()
	s := New(g)
	pr := s.ResidualSnapshot(nil)[:0] // just reuse a buffer shape
	pr = append(pr, make([]float64, g.NumElements())...)
	for i := range pr {
		pr[i] = s.Price(graph.ElementID(i))
	}

	ep, gen := s.Epoch(), s.PriceGen()
	s.SetPrices(pr) // identical vector: nothing should move
	if s.Epoch() != ep || s.PriceGen() != gen {
		t.Fatal("identical SetPrices bumped epoch or generation")
	}

	pr[0] = 99 // node-only change
	s.SetPrices(pr)
	if s.Epoch() != ep {
		t.Fatal("node-only SetPrices bumped the path epoch")
	}
	if s.PriceGen() == gen {
		t.Fatal("node-only SetPrices did not bump the price generation")
	}

	pr[g.NumNodes()] = 99 // link change
	s.SetPrices(pr)
	if s.Epoch() == ep {
		t.Fatal("link SetPrices did not bump the path epoch")
	}
}

func TestExclusionViews(t *testing.T) {
	g := diamond()
	s := New(g)
	if d := s.Dist(0, 3); d != 2 {
		t.Fatalf("base Dist(0,3) = %g, want 2", d)
	}

	v := s.AcquireView(map[graph.ElementID]bool{
		g.LinkElement(1):               true, // ban link 1-3
		g.NodeElement(graph.NodeID(2)): true, // exclude node 2's placement
	})
	// Path must detour: 0-1-2-3 = 1+1+5 (node exclusion does not block
	// transit, matching the engine's price semantics).
	if d := v.Dist(0, 3); d != 7 {
		t.Fatalf("view Dist(0,3) = %g, want 7", d)
	}
	if !math.IsInf(v.NodePrice(2), 1) {
		t.Fatal("excluded node's view price is not +Inf")
	}
	if v.NodePrice(1) != s.NodePrice(1) {
		t.Fatal("non-excluded node's view price differs from the state")
	}
	p, ok := v.PathBetween(0, 3)
	if !ok || len(p.Links) != 3 || p.Links[0] != 0 || p.Links[1] != 4 || p.Links[2] != 3 {
		t.Fatalf("view path = %+v, want links [0 4 3]", p)
	}
	v.Close()

	// The base state is untouched.
	if d := s.Dist(0, 3); d != 2 {
		t.Fatalf("base Dist(0,3) after view = %g, want 2", d)
	}

	// Views are pooled: a second acquisition reuses the first's buffers
	// and must not see its exclusions.
	v2 := s.AcquireView(nil)
	if v2 != v {
		t.Fatal("view pool did not recycle the released view")
	}
	if d := v2.Dist(0, 3); d != 2 {
		t.Fatalf("recycled view Dist(0,3) = %g, want 2 (stale exclusions?)", d)
	}
	v2.Close()
}

func TestResidualLifecycle(t *testing.T) {
	g := diamond()
	s := New(g)
	app := &vnet.App{
		Name: "pair", Kind: vnet.KindChain,
		VNFs:  []vnet.VNF{{ID: 0}, {ID: 1, Size: 2}},
		Links: []vnet.VLink{{From: 0, To: 1, Size: 1}},
	}
	nodeMap := []graph.NodeID{0, 1}
	pathMap := []graph.Path{{Nodes: []graph.NodeID{0, 1}, Links: []graph.LinkID{0}, Cost: 1}}
	emb, err := vnet.NewEmbedding(g, app, nodeMap, pathMap)
	if err != nil {
		t.Fatal(err)
	}

	if !s.Fits(emb, 10) {
		t.Fatal("embedding should fit a fresh state")
	}
	s.Apply(emb, 10)
	if got := s.Residual(g.NodeElement(1)); got != 100-20 {
		t.Fatalf("node 1 residual = %g, want 80", got)
	}
	if got := s.Residual(g.LinkElement(0)); got != 50-10 {
		t.Fatalf("link 0 residual = %g, want 40", got)
	}

	// Snapshots are defensive copies.
	snap := s.ResidualSnapshot(nil)
	snap[0] = -5
	if s.Residual(0) == -5 {
		t.Fatal("mutating a snapshot corrupted the state")
	}

	s.Release(emb, 10)
	s.Apply(emb, 25)
	s.ResetResidual()
	for e := 0; e < g.NumElements(); e++ {
		if s.Residual(graph.ElementID(e)) != g.ElementCap(graph.ElementID(e)) {
			t.Fatalf("element %d residual not reset to capacity", e)
		}
	}
}

// TestParallelStatesShareGraph exercises the parallel-runner usage
// pattern under -race: many goroutines, each with a private State (and
// views, and arenas) over one shared read-only graph. Any hidden shared
// mutable state in the substrate layer would trip the race detector.
func TestParallelStatesShareGraph(t *testing.T) {
	g := diamond()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s := New(g)
			for iter := 0; iter < 50; iter++ {
				for src := 0; src < g.NumNodes(); src++ {
					for dst := 0; dst < g.NumNodes(); dst++ {
						_ = s.Dist(graph.NodeID(src), graph.NodeID(dst))
					}
				}
				v := s.AcquireView(map[graph.ElementID]bool{g.LinkElement(graph.LinkID(iter % g.NumLinks())): true})
				_ = v.Dist(0, 3)
				v.Close()
				s.SetPrice(g.LinkElement(0), float64(1+iter%3))
				a := s.ScratchArena()
				a.Reset()
				f := a.Float64s(64)
				f[seed%64] = float64(iter)
			}
		}(w)
	}
	wg.Wait()
}
