package serve

import (
	"bytes"
	"sync"
)

// Per-request memory recycling for the HTTP hot path. Every embed used
// to allocate a one-shot reply channel and a fresh JSON decoder with its
// internal read buffer; under load those dominate the handler's
// allocation profile. Both are safely reusable: a reply channel carries
// exactly one result per enqueue (the handler always consumes it before
// release), and the body buffer is reset before every read.

// replyPool recycles the buffered reply channels handlers hand to engine
// shards. A channel may be released only when it is empty — either it
// was never enqueued (queue-full shed) or its single result has been
// received.
var replyPool = sync.Pool{New: func() any { return make(chan result, 1) }}

func takeReply() chan result { return replyPool.Get().(chan result) }

// putReply returns a reply channel to the pool. The defensive drain
// keeps a stray unconsumed result (a future misuse, not a current code
// path) from poisoning the next request.
func putReply(c chan result) {
	select {
	case <-c:
	default:
	}
	replyPool.Put(c)
}

// bodyPool recycles request-body read buffers for JSON decoding.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
