package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/workload"
)

// EmbedRequest is the body of POST /v1/embed.
type EmbedRequest struct {
	// App indexes the server's application set.
	App int `json:"app"`
	// Ingress is the substrate node the user resides at.
	Ingress int `json:"ingress"`
	// Demand is the request's demand size d(r) (> 0).
	Demand float64 `json:"demand"`
	// Duration is the embedding lifetime T(r) in slots (≥ 1).
	Duration int `json:"duration"`
	// Arrive is the request's arrival slot. Deterministic mode advances
	// the virtual clock with it; real-time mode ignores it and stamps the
	// wall-clock slot.
	Arrive int `json:"arrive,omitempty"`
}

// EmbedResponse is the decision for one embedding request.
type EmbedResponse struct {
	// ID is the server-assigned request handle; DELETE
	// /v1/embeddings/{id} releases it early.
	ID int `json:"id"`
	// Shard is the engine shard that decided the request.
	Shard int `json:"shard"`
	// Slot is the slot the decision was made at.
	Slot int `json:"slot"`
	// Accepted reports admission; Planned whether the allocation came
	// fully out of the residual plan.
	Accepted bool `json:"accepted"`
	Planned  bool `json:"planned"`
	// Cost is the embedding's resource cost per slot (0 when rejected).
	Cost float64 `json:"cost"`
	// Nodes maps each VNF (by index, root first) to its substrate node.
	Nodes []int `json:"nodes,omitempty"`
	// Preempted lists request IDs evicted to make room.
	Preempted []int `json:"preempted,omitempty"`
	// LatencyUS is the server-side decision latency in microseconds
	// (enqueue to decision).
	LatencyUS int64 `json:"latency_us"`
}

// ReleaseResponse is the body of DELETE /v1/embeddings/{id}.
type ReleaseResponse struct {
	ID       int  `json:"id"`
	Released bool `json:"released"`
}

// errorResponse is the JSON error envelope. RetryAfterMS accompanies
// rate-limit rejections (mirroring the Retry-After header, at
// millisecond resolution).
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/embed            submit an embedding request
//	DELETE /v1/embeddings/{id}  release an embedding before it expires
//	GET    /v1/stats            service statistics
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness (503 while draining)
//
// Every route is wrapped with the request-ID/metrics/access-log
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/embed", s.handleEmbed)
	mux.HandleFunc("DELETE /v1/embeddings/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.met != nil {
		mux.Handle("GET /metrics", s.met.reg.Handler())
	}
	return s.middleware(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// admit registers an in-flight request unless the server is draining.
// The Add-before-check order pairs with Drain's Swap-before-Wait: once
// Drain observes the in-flight count, no handler that passed the check
// can still be unregistered.
func (s *Server) admit() bool {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		return false
	}
	return true
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()

	// Admission control runs before any per-request work (decode,
	// validation, routing): a shed request costs the server almost
	// nothing, which is the point of shedding at the door rather than
	// letting the queues fill.
	if s.limiter != nil {
		if ok, reason, retry := s.limiter.allow(clientKey(r)); !ok {
			switch reason {
			case limitClient:
				s.shedClient.Add(1)
			default:
				s.shedGlobal.Add(1)
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				Error:        fmt.Sprintf("rate limited (%s)", reason),
				RetryAfterMS: retry.Milliseconds(),
			})
			return
		}
	}

	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	var er EmbedRequest
	if _, err := buf.ReadFrom(r.Body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := json.Unmarshal(buf.Bytes(), &er); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if er.App < 0 || er.App >= len(s.apps) {
		writeError(w, http.StatusBadRequest, "app %d outside [0,%d)", er.App, len(s.apps))
		return
	}
	if er.Ingress < 0 || er.Ingress >= s.g.NumNodes() {
		writeError(w, http.StatusBadRequest, "ingress %d outside [0,%d)", er.Ingress, s.g.NumNodes())
		return
	}
	if er.Demand <= 0 {
		writeError(w, http.StatusBadRequest, "demand %g must be positive", er.Demand)
		return
	}
	if er.Duration < 1 {
		writeError(w, http.StatusBadRequest, "duration %d must be ≥ 1", er.Duration)
		return
	}
	arrive := er.Arrive
	if !s.opts.Deterministic {
		arrive = s.clockSlot()
	} else if arrive < 0 {
		writeError(w, http.StatusBadRequest, "arrive %d must be ≥ 0", arrive)
		return
	}

	id := int(s.nextID.Add(1) - 1)
	req := workload.Request{
		ID:       id,
		App:      er.App,
		Ingress:  graph.NodeID(er.Ingress),
		Demand:   er.Demand,
		Arrive:   arrive,
		Duration: er.Duration,
	}
	sh := s.shardOf(req.Ingress)
	reply := takeReply()
	defer putReply(reply)
	o := op{kind: opEmbed, req: req, reply: reply}
	t0 := time.Now()
	if s.met != nil {
		o.enqueued = t0
	}
	select {
	case sh.queue <- o:
	default:
		sh.shed.Add(1)
		writeError(w, http.StatusTooManyRequests, "shard %d queue full (%d)", sh.idx, cap(sh.queue))
		return
	}
	res := <-o.reply
	lat := time.Since(t0)
	if res.err != nil {
		writeError(w, http.StatusInternalServerError, "engine: %v", res.err)
		return
	}
	s.lat.record(lat)
	if s.met != nil {
		s.met.reqDur.Observe(lat.Seconds())
	}
	if res.accepted {
		s.recordRevenue(er.Demand * float64(er.Duration))
	}
	writeJSON(w, http.StatusOK, EmbedResponse{
		ID:        id,
		Shard:     sh.idx,
		Slot:      res.slot,
		Accepted:  res.accepted,
		Planned:   res.planned,
		Cost:      res.cost,
		Nodes:     res.nodes,
		Preempted: res.preempted,
		LatencyUS: lat.Microseconds(),
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()

	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	// The ID does not encode its shard; releases probe the shards in
	// order, stopping at the owner (IDs are globally unique, so at most
	// one shard holds the embedding). Sends honor the same backpressure
	// as embeds — a full queue answers 429 instead of blocking the
	// handler behind a busy shard; the release ops already executed were
	// no-ops on non-owning shards, so retrying is safe.
	released := false
	reply := takeReply()
	defer putReply(reply)
	for _, sh := range s.shards {
		o := op{kind: opRelease, id: id, reply: reply}
		select {
		case sh.queue <- o:
		default:
			sh.shed.Add(1)
			writeError(w, http.StatusTooManyRequests, "shard %d queue full (%d)", sh.idx, cap(sh.queue))
			return
		}
		if res := <-o.reply; res.released {
			released = true
			break
		}
	}
	if !released {
		writeJSON(w, http.StatusNotFound, ReleaseResponse{ID: id})
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{ID: id, Released: true})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
