package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/workload"
)

// EmbedRequest is the body of POST /v1/embed.
type EmbedRequest struct {
	// App indexes the server's application set.
	App int `json:"app"`
	// Ingress is the substrate node the user resides at.
	Ingress int `json:"ingress"`
	// Demand is the request's demand size d(r) (> 0).
	Demand float64 `json:"demand"`
	// Duration is the embedding lifetime T(r) in slots (≥ 1).
	Duration int `json:"duration"`
	// Arrive is the request's arrival slot. Deterministic mode advances
	// the virtual clock with it; real-time mode ignores it and stamps the
	// wall-clock slot.
	Arrive int `json:"arrive,omitempty"`
}

// EmbedResponse is the decision for one embedding request.
type EmbedResponse struct {
	// ID is the server-assigned request handle; DELETE
	// /v1/embeddings/{id} releases it early.
	ID int `json:"id"`
	// Shard is the engine shard that decided the request.
	Shard int `json:"shard"`
	// Slot is the slot the decision was made at.
	Slot int `json:"slot"`
	// Accepted reports admission; Planned whether the allocation came
	// fully out of the residual plan.
	Accepted bool `json:"accepted"`
	Planned  bool `json:"planned"`
	// Cost is the embedding's resource cost per slot (0 when rejected).
	Cost float64 `json:"cost"`
	// Nodes maps each VNF (by index, root first) to its substrate node.
	Nodes []int `json:"nodes,omitempty"`
	// Preempted lists request IDs evicted to make room.
	Preempted []int `json:"preempted,omitempty"`
	// LatencyUS is the server-side decision latency in microseconds
	// (enqueue to decision).
	LatencyUS int64 `json:"latency_us"`
}

// ReleaseResponse is the body of DELETE /v1/embeddings/{id}.
type ReleaseResponse struct {
	ID       int  `json:"id"`
	Released bool `json:"released"`
}

// Machine-readable error codes of the v1 error envelope. Every non-2xx
// response of a /v1/* route carries exactly one of these.
const (
	ErrCodeBadRequest          = "bad_request"          // 400: malformed body or argument
	ErrCodeNotFound            = "not_found"            // 404: no such embedding
	ErrCodeRateLimited         = "rate_limited"         // 429: admission control refused
	ErrCodeQueueFull           = "queue_full"           // 429: shard queue backpressure
	ErrCodeReplanInProgress    = "replan_in_progress"   // 409: a rebuild is running
	ErrCodeReplanDisabled      = "replan_disabled"      // 409: server built without Replan
	ErrCodeInsufficientHistory = "insufficient_history" // 409: history below MinHistory
	ErrCodeReplanFailed        = "replan_failed"        // 500: rebuild errored
	ErrCodeResizeInProgress    = "resize_in_progress"   // 409: another resize is running
	ErrCodeDraining            = "draining"             // 503: server shutting down
	ErrCodeEngine              = "engine_error"         // 500: engine rejected the op
)

// ErrorBody is the payload of the v1 error envelope: a stable
// machine-readable code, a human-readable message, and — on 429s — the
// Retry-After hint at millisecond resolution.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// errorResponse is the JSON error envelope every non-2xx /v1/* response
// (and /healthz while draining) is normalized onto:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": ...}}
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/embed            submit an embedding request
//	DELETE /v1/embeddings/{id}  release an embedding before it expires
//	GET    /v1/stats            service statistics
//	GET    /v1/plan             plan generation and provenance
//	POST   /v1/admin/replan     trigger a plan rebuild (409 when busy)
//	POST   /v1/admin/resize     grow/shrink the routable shard set
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness (503 while draining)
//
// Every route is wrapped with the request-ID/metrics/access-log
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/embed", s.handleEmbed)
	mux.HandleFunc("DELETE /v1/embeddings/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/admin/replan", s.handleReplan)
	mux.HandleFunc("POST /v1/admin/resize", s.handleResize)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.met != nil {
		mux.Handle("GET /metrics", s.met.reg.Handler())
	}
	return s.middleware(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the v1 error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeErrorRetry is writeError plus the Retry-After header (seconds,
// rounded up) and the retry_after_ms body field.
func writeErrorRetry(w http.ResponseWriter, status int, code string, retry time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:         code,
		Message:      fmt.Sprintf(format, args...),
		RetryAfterMS: retry.Milliseconds(),
	}})
}

// admit registers an in-flight request unless the server is draining.
// The Add-before-check order pairs with Drain's Swap-before-Wait: once
// Drain observes the in-flight count, no handler that passed the check
// can still be unregistered.
func (s *Server) admit() bool {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		return false
	}
	return true
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	}
	defer s.inflight.Done()

	// Admission control runs before any per-request work (decode,
	// validation, routing): a shed request costs the server almost
	// nothing, which is the point of shedding at the door rather than
	// letting the queues fill.
	if s.limiter != nil {
		if ok, reason, retry := s.limiter.allow(clientKey(r)); !ok {
			switch reason {
			case limitClient:
				s.shedClient.Add(1)
			default:
				s.shedGlobal.Add(1)
			}
			writeErrorRetry(w, http.StatusTooManyRequests, ErrCodeRateLimited, retry,
				"rate limited (%s)", reason)
			return
		}
	}

	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	var er EmbedRequest
	if _, err := buf.ReadFrom(r.Body); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
		return
	}
	if err := json.Unmarshal(buf.Bytes(), &er); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
		return
	}
	if er.App < 0 || er.App >= len(s.apps) {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "app %d outside [0,%d)", er.App, len(s.apps))
		return
	}
	if er.Ingress < 0 || er.Ingress >= s.g.NumNodes() {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "ingress %d outside [0,%d)", er.Ingress, s.g.NumNodes())
		return
	}
	if er.Demand <= 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "demand %g must be positive", er.Demand)
		return
	}
	if er.Duration < 1 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "duration %d must be ≥ 1", er.Duration)
		return
	}
	arrive := er.Arrive
	if !s.opts.Deterministic {
		arrive = s.clockSlot()
	} else if arrive < 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "arrive %d must be ≥ 0", arrive)
		return
	}

	id := int(s.nextID.Add(1) - 1)
	req := workload.Request{
		ID:       id,
		App:      er.App,
		Ingress:  graph.NodeID(er.Ingress),
		Demand:   er.Demand,
		Arrive:   arrive,
		Duration: er.Duration,
	}
	sh := s.shardOf(req.Ingress)
	reply := takeReply()
	defer putReply(reply)
	o := op{kind: opEmbed, req: req, reply: reply}
	t0 := time.Now()
	if s.met != nil {
		o.enqueued = t0
	}
	select {
	case sh.queue <- o:
	default:
		sh.shed.Add(1)
		writeError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "shard %d queue full (%d)", sh.idx, cap(sh.queue))
		return
	}
	res := <-o.reply
	lat := time.Since(t0)
	if res.err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeEngine, "engine: %v", res.err)
		return
	}
	s.lat.record(lat)
	if s.met != nil {
		s.met.reqDur.Observe(lat.Seconds())
	}
	if res.accepted {
		s.recordRevenue(er.Demand * float64(er.Duration))
	}
	writeJSON(w, http.StatusOK, EmbedResponse{
		ID:        id,
		Shard:     sh.idx,
		Slot:      res.slot,
		Accepted:  res.accepted,
		Planned:   res.planned,
		Cost:      res.cost,
		Nodes:     res.nodes,
		Preempted: res.preempted,
		LatencyUS: lat.Microseconds(),
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	}
	defer s.inflight.Done()

	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad id: %v", err)
		return
	}
	// The ID does not encode its shard; releases probe the shards in
	// order — retired shards included, since they keep serving the
	// embeddings they own — stopping at the owner (IDs are globally
	// unique, so at most one shard holds the embedding). Sends honor the
	// same backpressure as embeds — a full queue answers 429 instead of
	// blocking the handler behind a busy shard; the release ops already
	// executed were no-ops on non-owning shards, so retrying is safe.
	released := false
	reply := takeReply()
	defer putReply(reply)
	for _, sh := range s.allShards() {
		o := op{kind: opRelease, id: id, reply: reply}
		select {
		case sh.queue <- o:
		default:
			sh.shed.Add(1)
			writeError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "shard %d queue full (%d)", sh.idx, cap(sh.queue))
			return
		}
		if res := <-o.reply; res.released {
			released = true
			break
		}
	}
	if !released {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no active embedding %d", id)
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{ID: id, Released: true})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.PlanStatus())
}

// ReplanResponse is the body of a successful POST /v1/admin/replan.
type ReplanResponse struct {
	// Generation is the newly published plan generation.
	Generation int64 `json:"generation"`
	// Classes and HistoryRequests describe the rebuild's input/output.
	Classes         int64 `json:"classes"`
	HistoryRequests int64 `json:"history_requests"`
}

func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	}
	defer s.inflight.Done()

	gen, err := s.TriggerReplan()
	switch {
	case err == nil:
	case errors.Is(err, ErrReplanDisabled):
		writeError(w, http.StatusConflict, ErrCodeReplanDisabled, "%v", err)
		return
	case errors.Is(err, ErrReplanBusy):
		writeError(w, http.StatusConflict, ErrCodeReplanInProgress, "%v", err)
		return
	case errors.Is(err, ErrInsufficientHistory):
		writeError(w, http.StatusConflict, ErrCodeInsufficientHistory, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, ErrCodeReplanFailed, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReplanResponse{
		Generation:      gen,
		Classes:         s.replan.lastClasses.Load(),
		HistoryRequests: s.replan.lastHistory.Load(),
	})
}

// resizeRequest is the body of POST /v1/admin/resize.
type resizeRequest struct {
	Shards int `json:"shards"`
}

func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	// No admit() here: Resize itself registers with the drain protocol.
	var rr resizeRequest
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
		return
	}
	if rr.Shards <= 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "shards %d must be ≥ 1", rr.Shards)
		return
	}
	res, err := s.Resize(rr.Shards)
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining):
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	case errors.Is(err, ErrResizeBusy):
		writeError(w, http.StatusConflict, ErrCodeResizeInProgress, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, ErrCodeEngine, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
