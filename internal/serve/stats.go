package serve

import (
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/olive-vne/olive/internal/lp"
	"github.com/olive-vne/olive/internal/plan"
)

// latencyRing keeps the most recent decision latencies for quantile
// estimation. Fixed capacity: /stats cost is bounded no matter how long
// the server runs.
type latencyRing struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	total int64
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]time.Duration, 0, n)}
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, d)
		return
	}
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
}

// ringQuantiles is one snapshot of the retained latency window.
type ringQuantiles struct {
	P50, P90, P99, P999 time.Duration
	Samples             int64
}

// quantiles returns the tail quantiles of the retained window.
func (l *latencyRing) quantiles() ringQuantiles {
	l.mu.Lock()
	tmp := make([]time.Duration, len(l.buf))
	copy(tmp, l.buf)
	samples := l.total
	l.mu.Unlock()
	if len(tmp) == 0 {
		return ringQuantiles{Samples: samples}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	at := func(q float64) time.Duration {
		// Nearest-rank with ceiling: the q-quantile of n samples is the
		// ⌈q·n⌉-th smallest. A truncating q·(n−1) index collapses the
		// tail at small windows — with n=50 it reported the 49th-ranked
		// sample (≈p96) as p99.
		i := int(math.Ceil(q*float64(len(tmp)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(tmp) {
			i = len(tmp) - 1
		}
		return tmp[i]
	}
	return ringQuantiles{
		P50:     at(0.50),
		P90:     at(0.90),
		P99:     at(0.99),
		P999:    at(0.999),
		Samples: samples,
	}
}

func (s *Server) recordRevenue(v float64) {
	s.revMu.Lock()
	s.revenue += v
	s.revMu.Unlock()
}

func (s *Server) readRevenue() float64 {
	s.revMu.Lock()
	defer s.revMu.Unlock()
	return s.revenue
}

// ShardStats is one shard's /v1/stats entry.
type ShardStats struct {
	Shard     int   `json:"shard"`
	Processed int64 `json:"processed"`
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Active    int64 `json:"active"`
	Queue     int   `json:"queue"`
	QueueCap  int   `json:"queue_cap"`
	// Shed counts requests answered 429 because this shard's queue was
	// full (counted at the HTTP layer; the shard never saw them).
	Shed int64 `json:"shed"`
	// Utilization is the allocated fraction of this shard's capacity
	// slice (1 − Σresidual/Σslice).
	Utilization float64 `json:"utilization"`
	// Generation is the plan generation this shard's engine currently
	// runs (it trails the published generation until the shard's next
	// serialized operation).
	Generation int64 `json:"generation"`
	// Retired marks shards removed from the routing table by a shrink;
	// they still serve releases and departures for embeddings they own.
	Retired bool `json:"retired,omitempty"`
	// HistoryDepth is the request count in this shard's rolling replan
	// history ring (0 with replanning off).
	HistoryDepth int `json:"history_depth,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeS       float64 `json:"uptime_s"`
	Shards        int     `json:"shards"`
	Algorithm     string  `json:"algorithm"`
	Deterministic bool    `json:"deterministic"`

	Requests struct {
		Total          int64   `json:"total"`
		Accepted       int64   `json:"accepted"`
		Rejected       int64   `json:"rejected"`
		Preempted      int64   `json:"preempted"`
		Released       int64   `json:"released"`
		AcceptanceRate float64 `json:"acceptance_rate"`
		// Shed is the queue-full 429 total across shards; RateLimited is
		// the admission-control 429 total (global + per-client buckets).
		// Neither is included in Total: shed requests never reached an
		// engine.
		Shed        int64 `json:"shed"`
		RateLimited int64 `json:"rate_limited"`
	} `json:"requests"`

	// Revenue is Σ demand·duration over accepted requests (the VNE
	// revenue proxy; preemptions are not clawed back).
	Revenue float64 `json:"revenue"`

	Latency struct {
		P50US   int64 `json:"p50_us"`
		P90US   int64 `json:"p90_us"`
		P99US   int64 `json:"p99_us"`
		P999US  int64 `json:"p999_us"`
		Samples int64 `json:"samples"`
	} `json:"latency"`

	// Replan reports the adaptive-replanning state: the published plan
	// generation, the rebuild outcome counters, and the provenance of
	// the last published generation.
	Replan struct {
		Enabled             bool  `json:"enabled"`
		Generation          int64 `json:"generation"`
		Rebuilds            int64 `json:"rebuilds"`
		Failed              int64 `json:"failed"`
		Skipped             int64 `json:"skipped"`
		LastBuiltSlot       int64 `json:"last_built_slot"`
		LastHistoryRequests int64 `json:"last_history_requests"`
		LastClasses         int64 `json:"last_classes"`
		HistoryDepth        int   `json:"history_depth"`
	} `json:"replan"`

	// LP aggregates the process-wide solver counters (the daemon owns
	// the process, so they are effectively server counters).
	LP struct {
		Solves           int64 `json:"solves"`
		WarmAttempts     int64 `json:"warm_attempts"`
		WarmHits         int64 `json:"warm_hits"`
		Pivots           int64 `json:"pivots"`
		PivotsDevex      int64 `json:"pivots_devex"`
		PivotsDantzig    int64 `json:"pivots_dantzig"`
		PivotsBland      int64 `json:"pivots_bland"`
		PricingScans     int64 `json:"pricing_scans"`
		Refactorizations int64 `json:"refactorizations"`
		PlanBuilds       int64 `json:"plan_builds"`
	} `json:"lp"`

	PerShard []ShardStats `json:"per_shard"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() StatsResponse {
	var out StatsResponse
	out.UptimeS = time.Since(s.started).Seconds()
	out.Shards = len(s.routeShards())
	out.Algorithm = string(s.opts.Algorithm)
	out.Deterministic = s.opts.Deterministic
	for _, sh := range s.allShards() {
		ss := ShardStats{
			Shard:       sh.idx,
			Processed:   sh.processed.Load(),
			Accepted:    sh.accepted.Load(),
			Rejected:    sh.rejected.Load(),
			Active:      sh.active.Load(),
			Queue:       len(sh.queue),
			QueueCap:    cap(sh.queue),
			Shed:        sh.shed.Load(),
			Utilization: sh.utilization(),
			Generation:  sh.gen.Load(),
			Retired:     sh.retired.Load(),
		}
		if sh.hist != nil {
			ss.HistoryDepth = sh.hist.depth()
		}
		out.PerShard = append(out.PerShard, ss)
		out.Requests.Total += ss.Processed
		out.Requests.Accepted += ss.Accepted
		out.Requests.Rejected += ss.Rejected
		out.Requests.Preempted += sh.preempted.Load()
		out.Requests.Released += sh.released.Load()
		out.Requests.Shed += ss.Shed
	}
	if out.Requests.Total > 0 {
		out.Requests.AcceptanceRate = float64(out.Requests.Accepted) / float64(out.Requests.Total)
	}
	out.Requests.RateLimited = s.shedGlobal.Load() + s.shedClient.Load()
	out.Revenue = s.readRevenue()
	out.Replan.Enabled = s.replan != nil
	out.Replan.Generation = s.planGen.Load()
	out.Replan.HistoryDepth = s.historyDepth()
	if r := s.replan; r != nil {
		out.Replan.Rebuilds = r.rebuilds.Load()
		out.Replan.Failed = r.failed.Load()
		out.Replan.Skipped = r.skipped.Load()
		out.Replan.LastBuiltSlot = r.lastBuiltSlot.Load()
		out.Replan.LastHistoryRequests = r.lastHistory.Load()
		out.Replan.LastClasses = r.lastClasses.Load()
	}
	q := s.lat.quantiles()
	out.Latency.P50US = q.P50.Microseconds()
	out.Latency.P90US = q.P90.Microseconds()
	out.Latency.P99US = q.P99.Microseconds()
	out.Latency.P999US = q.P999.Microseconds()
	out.Latency.Samples = q.Samples
	lps := lp.Stats()
	out.LP.Solves = lps.Solves
	out.LP.WarmAttempts = lps.WarmAttempts
	out.LP.WarmHits = lps.WarmHits
	out.LP.Pivots = lps.Pivots
	out.LP.PivotsDevex = lps.PivotsDevex
	out.LP.PivotsDantzig = lps.PivotsDantzig
	out.LP.PivotsBland = lps.PivotsBland
	out.LP.PricingScans = lps.PricingScans
	out.LP.Refactorizations = lps.Refactorizations
	out.LP.PlanBuilds = plan.Stats().Builds
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
