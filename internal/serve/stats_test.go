package serve

import (
	"testing"
	"time"
)

// TestLatencyRingQuantilesNearestRank pins the nearest-rank-with-ceiling
// definition: the q-quantile of n samples is the ⌈q·n⌉-th smallest. The
// old truncating index int(q·(n−1)) collapsed p99 toward the median at
// small windows (n=50 reported the 49th-ranked sample, ≈p96; n=2
// reported the minimum).
func TestLatencyRingQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		n       int
		wantP50 time.Duration // ⌈0.50·n⌉-th of 1,2,…,n µs
		wantP99 time.Duration // ⌈0.99·n⌉-th
	}{
		{n: 1, wantP50: 1 * time.Microsecond, wantP99: 1 * time.Microsecond},
		{n: 2, wantP50: 1 * time.Microsecond, wantP99: 2 * time.Microsecond},
		{n: 50, wantP50: 25 * time.Microsecond, wantP99: 50 * time.Microsecond},
		{n: 100, wantP50: 50 * time.Microsecond, wantP99: 99 * time.Microsecond},
	}
	for _, tc := range cases {
		l := newLatencyRing(tc.n)
		// Insert in descending order so the quantile must come from the
		// sorted copy, not insertion order.
		for v := tc.n; v >= 1; v-- {
			l.record(time.Duration(v) * time.Microsecond)
		}
		q := l.quantiles()
		if q.Samples != int64(tc.n) {
			t.Errorf("n=%d: samples = %d", tc.n, q.Samples)
		}
		if q.P50 != tc.wantP50 {
			t.Errorf("n=%d: p50 = %v, want %v", tc.n, q.P50, tc.wantP50)
		}
		if q.P99 != tc.wantP99 {
			t.Errorf("n=%d: p99 = %v, want %v (the tail sample, not a mid-ranked one)", tc.n, q.P99, tc.wantP99)
		}
		if q.P999 != time.Duration(tc.n)*time.Microsecond {
			t.Errorf("n=%d: p999 = %v, want the max sample %dµs", tc.n, q.P999, tc.n)
		}
		if q.P90 < q.P50 || q.P99 < q.P90 || q.P999 < q.P99 {
			t.Errorf("n=%d: quantiles not monotone: %+v", tc.n, q)
		}
	}
}

// TestLatencyRingEmptyAndOverflow covers the degenerate window states:
// no samples, and a ring that has wrapped (quantiles over the retained
// window, total over everything recorded).
func TestLatencyRingEmptyAndOverflow(t *testing.T) {
	l := newLatencyRing(4)
	q := l.quantiles()
	if q.P50 != 0 || q.P99 != 0 || q.Samples != 0 {
		t.Fatalf("empty ring: got %+v", q)
	}
	for v := 1; v <= 10; v++ { // retains 7,8,9,10
		l.record(time.Duration(v) * time.Millisecond)
	}
	q = l.quantiles()
	if q.Samples != 10 {
		t.Fatalf("samples = %d, want 10", q.Samples)
	}
	if q.P50 != 8*time.Millisecond { // ⌈0.5·4⌉ = 2nd of {7,8,9,10}
		t.Errorf("p50 = %v, want 8ms", q.P50)
	}
	if q.P99 != 10*time.Millisecond { // ⌈0.99·4⌉ = 4th
		t.Errorf("p99 = %v, want 10ms", q.P99)
	}
}
