package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// testPlan builds a small PLAN-VNE plan over the Iris topology for OLIVE
// serving tests, from the same app mix testServer uses.
func testPlan(t *testing.T, g *graph.Graph, apps []*vnet.App) *plan.Plan {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 7))
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 60
	wp.LambdaPerNode = 3
	wp.NumApps = len(apps)
	wp.DemandMean = 100.0 / 3
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.BuildFromHistory(g, apps, hist, plan.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// oliveServer is testServer with a plan and replanning enabled.
func oliveServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	opts.Plan = testPlan(t, g, apps)
	return testServer(t, opts)
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error response does not parse as envelope: %v", err)
	}
	if er.Error.Code == "" || er.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", er.Error)
	}
	return er.Error
}

// TestErrorEnvelopeShape checks that every distinct error path answers
// with the {"error":{"code","message"}} envelope and the right code.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := testServer(t, Options{Deterministic: true})

	// bad_request: malformed body.
	resp, err := http.Post(ts.URL+"/v1/embed", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed embed = %d, want 400", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeBadRequest {
		t.Fatalf("malformed embed code = %q, want %q", code, ErrCodeBadRequest)
	}

	// not_found: releasing an embedding that never existed.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/embeddings/999999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown release = %d, want 404", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeNotFound {
		t.Fatalf("unknown release code = %q, want %q", code, ErrCodeNotFound)
	}

	// replan_disabled: the admin trigger on a plan-less server.
	resp = postJSON(t, ts.URL+"/v1/admin/replan", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replan on QUICKG = %d, want 409", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeReplanDisabled {
		t.Fatalf("replan on QUICKG code = %q, want %q", code, ErrCodeReplanDisabled)
	}

	// bad_request on the resize endpoint.
	resp = postJSON(t, ts.URL+"/v1/admin/resize", map[string]int{"shards": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resize to 0 = %d, want 400", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeBadRequest {
		t.Fatalf("resize to 0 code = %q, want %q", code, ErrCodeBadRequest)
	}
}

// TestReplanConflictCodes covers the replan-state 409s: insufficient
// history on an empty server, replan_in_progress while a rebuild runs.
func TestReplanConflictCodes(t *testing.T) {
	s, ts := oliveServer(t, Options{
		Deterministic: true,
		Replan:        Replan{Enabled: true, MinHistory: 8, Seed: 7},
	})

	resp := postJSON(t, ts.URL+"/v1/admin/replan", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replan with no history = %d, want 409", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeInsufficientHistory {
		t.Fatalf("no-history code = %q, want %q", code, ErrCodeInsufficientHistory)
	}

	// White-box: mark a rebuild as running and re-trigger.
	s.replan.running.Store(true)
	resp = postJSON(t, ts.URL+"/v1/admin/replan", nil)
	s.replan.running.Store(false)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replan while busy = %d, want 409", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp).Code; code != ErrCodeReplanInProgress {
		t.Fatalf("busy code = %q, want %q", code, ErrCodeReplanInProgress)
	}
}

// TestOptionsBackCompat: the deprecated flat ServerOptions fields still
// configure the server when the nested sections are unset.
func TestOptionsBackCompat(t *testing.T) {
	opts := Options{
		Deterministic: true,
		QueueDepth:    7,
		RateLimit:     RateLimit{RPS: 100, Burst: 100},
	}
	s, _ := testServer(t, opts)
	if got := cap(s.allShards()[0].queue); got != 7 {
		t.Fatalf("flat QueueDepth: queue cap = %d, want 7", got)
	}
	if s.limiter == nil {
		t.Fatal("flat RateLimit did not enable the limiter")
	}
	// Nested fields win over flat ones when both are set.
	opts2 := Options{
		Deterministic: true,
		QueueDepth:    7,
		Limits:        Limits{QueueDepth: 11},
	}
	s2, _ := testServer(t, opts2)
	if got := cap(s2.allShards()[0].queue); got != 11 {
		t.Fatalf("nested QueueDepth: queue cap = %d, want 11", got)
	}
}

// replayLocal posts a stream through the test server and fails on any
// non-200 (the zero-drop property the e2e also asserts).
func replayLocal(t *testing.T, ts *httptest.Server, reqs []StreamRequest) {
	t.Helper()
	for i, r := range reqs {
		resp, out := postEmbed(t, ts.URL, EmbedRequest{
			App: r.App, Ingress: r.Ingress, Demand: r.Demand,
			Duration: r.Duration, Arrive: r.Arrive,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, resp.StatusCode)
		}
		_ = out
	}
}

// TestHistoryRingDeterminism: identical replays against identical servers
// export byte-identical history traces, and the ring stays bounded.
func TestHistoryRingDeterminism(t *testing.T) {
	reqs := testStream(t, 120)
	export := func() []byte {
		s, ts := oliveServer(t, Options{
			Deterministic: true,
			Shards:        2,
			Replan:        Replan{Enabled: true, HistoryDepth: 64, Seed: 7},
		})
		replayLocal(t, ts, reqs)
		tr := s.HistoryTrace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("exported history does not validate as a trace: %v", err)
		}
		if len(tr.Requests) > 2*64 {
			t.Fatalf("history holds %d requests, ring cap is 2×64", len(tr.Requests))
		}
		if got := s.historyDepth(); got != len(tr.Requests) {
			t.Fatalf("historyDepth = %d, export holds %d", got, len(tr.Requests))
		}
		b, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := export()
	b := export()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical replays exported different history traces")
	}
}

// TestReplanHotSwap: feeding history and triggering a replan publishes
// generation 1, every routable shard adopts it on its next operation, and
// the admin/plan surfaces agree.
func TestReplanHotSwap(t *testing.T) {
	s, ts := oliveServer(t, Options{
		Deterministic: true,
		Shards:        2,
		Replan:        Replan{Enabled: true, MinHistory: 16, Seed: 7},
	})
	reqs := testStream(t, 80)
	replayLocal(t, ts, reqs[:40])

	resp := postJSON(t, ts.URL+"/v1/admin/replan", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replan = %d, want 200 (body code %q)", resp.StatusCode, decodeEnvelope(t, resp).Code)
	}
	var rr ReplanResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Generation != 1 || rr.Classes <= 0 || rr.HistoryRequests < 16 {
		t.Fatalf("replan response %+v, want generation 1 with classes and history", rr)
	}

	// The remaining requests are decided under (or after adopting) gen 1.
	replayLocal(t, ts, reqs[40:])
	for _, sh := range s.routeShards() {
		if got := sh.gen.Load(); got != 1 {
			t.Fatalf("shard %d generation = %d, want 1", sh.idx, got)
		}
	}

	hresp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	var info PlanInfo
	if err := json.NewDecoder(hresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if info.Generation != 1 || !info.ReplanEnabled || info.Classes <= 0 {
		t.Fatalf("GET /v1/plan = %+v, want generation 1 with classes", info)
	}

	st := s.Stats()
	if st.Replan.Generation != 1 || st.Replan.Rebuilds != 1 {
		t.Fatalf("stats replan = %+v, want generation 1, rebuilds 1", st.Replan)
	}
	if s.met != nil {
		text := s.met.reg.Render()
		if !strings.Contains(text, "vne_replan_generation 1") {
			t.Fatal("metrics missing vne_replan_generation 1")
		}
	}
}

// TestHotSwapUnderLoad hammers embeds from several goroutines while
// replans publish concurrently (run under -race in CI): no request may
// fail, no shard may observe a generation decrease.
func TestHotSwapUnderLoad(t *testing.T) {
	s, ts := oliveServer(t, Options{
		Deterministic: true,
		Shards:        2,
		Replan:        Replan{Enabled: true, MinHistory: 8, Seed: 7},
	})
	reqs := testStream(t, 60)
	replayLocal(t, ts, reqs[:20]) // seed enough history for rebuilds

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Adoption is per-shard: shards trail the published generation
			// independently, so monotonicity is asserted per shard index.
			prev := map[int]int64{}
			for i := 0; i < 40; i++ {
				r := reqs[20+(w*40+i)%40]
				resp := postJSON(t, ts.URL+"/v1/embed", EmbedRequest{
					App: r.App, Ingress: r.Ingress, Demand: r.Demand,
					Duration: r.Duration, Arrive: r.Arrive,
				})
				if resp.StatusCode != http.StatusOK {
					errs <- "embed status " + resp.Status
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				for _, sh := range s.routeShards() {
					if g := sh.gen.Load(); g < prev[sh.idx] {
						errs <- "generation went backwards"
						return
					} else {
						prev[sh.idx] = g
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := s.TriggerReplan(); err != nil {
				errs <- "trigger: " + err.Error()
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := s.planGen.Load(); got != 5 {
		t.Fatalf("published generation = %d, want 5", got)
	}
}

// capacityVec is the substrate's full per-element capacity.
func capacityVec(g *graph.Graph) []float64 {
	return append([]float64(nil), substrate.New(g).ResidualVec()...)
}

// totalResidual sums the residual vectors of every shard ever created.
func totalResidual(s *Server) []float64 {
	total := make([]float64, s.g.NumElements())
	for _, sh := range s.allShards() {
		for i, v := range sh.st.ResidualVec() {
			total[i] += v
		}
	}
	return total
}

func assertVecEqual(t *testing.T, got, want []float64, context string) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: element %d residual = %g, want %g", context, i, got[i], want[i])
		}
	}
}

// TestResizeConservation: growing and shrinking the shard set conserves
// substrate capacity elementwise — free residual moves, it is never
// duplicated or lost.
func TestResizeConservation(t *testing.T) {
	s, ts := testServer(t, Options{Deterministic: true, Shards: 3})
	capa := capacityVec(s.g)
	assertVecEqual(t, totalResidual(s), capa, "fresh 3-shard server")

	// Embed some load, then shrink 3→2 with embeddings live.
	reqs := testStream(t, 30)
	ids := make([]int, 0, len(reqs))
	for _, r := range reqs {
		resp, out := postEmbed(t, ts.URL, EmbedRequest{
			App: r.App, Ingress: r.Ingress, Demand: r.Demand,
			Duration: 10000, Arrive: 0, // effectively never expires
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("embed = %d", resp.StatusCode)
		}
		if out.Accepted {
			ids = append(ids, out.ID)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no request accepted; conservation test needs live embeddings")
	}

	res, err := s.Resize(2)
	if err != nil || res.Shards != 2 || res.Retired != 1 {
		t.Fatalf("shrink: %+v, %v", res, err)
	}
	if got := len(s.routeShards()); got != 2 {
		t.Fatalf("routable shards after shrink = %d, want 2", got)
	}

	// Free capacity total must equal capacity minus what the live
	// embeddings hold, i.e. conservation with actives in place: releasing
	// everything must restore the full capacity vector exactly.
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/embeddings/"+strconv.Itoa(id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d = %d, want 200 (retired shards must serve releases)", id, resp.StatusCode)
		}
	}
	assertVecEqual(t, totalResidual(s), capa, "after shrink and release")

	// Grow 2→4: revives the retired shard, creates one, conserves.
	res, err = s.Resize(4)
	if err != nil || res.Shards != 4 || res.Revived != 1 || res.Created != 1 {
		t.Fatalf("grow: %+v, %v", res, err)
	}
	if got := len(s.routeShards()); got != 4 {
		t.Fatalf("routable shards after grow = %d, want 4", got)
	}
	assertVecEqual(t, totalResidual(s), capa, "after grow")

	// The HTTP surface agrees.
	var sr ResizeResult
	resp2 := postJSON(t, ts.URL+"/v1/admin/resize", map[string]int{"shards": 3})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resize endpoint = %d, want 200", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if sr.Shards != 3 || sr.Retired != 1 {
		t.Fatalf("resize endpoint result = %+v, want 3 shards, 1 retired", sr)
	}
	assertVecEqual(t, totalResidual(s), capa, "after endpoint shrink")
}
