package serve

import (
	"errors"
	"fmt"
	"time"
)

// Resize errors, distinguishable by the HTTP layer.
var (
	// ErrResizeBusy: another resize is in progress.
	ErrResizeBusy = errors.New("serve: resize already in progress")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("serve: draining")
)

// ResizeResult reports what a Resize did.
type ResizeResult struct {
	// Shards is the routable shard count after the resize.
	Shards int `json:"shards"`
	// Created counts newly constructed shards, Revived counts retired
	// shards returned to the routing table, Retired counts shards
	// removed from it.
	Created int `json:"created"`
	Revived int `json:"revived"`
	Retired int `json:"retired"`
}

// Resize grows or shrinks the routable shard set to n, re-partitioning
// free capacity through the shards' own serialized queues:
//
//   - Shrink: the routing table drops the tail shards first (no new
//     embeds land on them), then each retired shard donates its entire
//     free residual, split equally across the survivors. Retired shards
//     keep running — they still own live embeddings, serve their
//     releases and departures, and capacity freed after retirement pools
//     on them until a later resize recycles it.
//   - Grow: retired shards are revived first (bringing pooled capacity
//     back into service), then fresh shards are constructed against the
//     currently published plan generation. Each currently routable shard
//     donates a (1 − old/new) fraction of its free residual, split
//     equally across the newcomers, and only then does the routing table
//     switch.
//
// Capacity is conserved: every unit moved is first removed from exactly
// one shard's residual and then deposited into exactly one other's, both
// as serialized shard operations, so concurrent embeds can never observe
// (or jointly admit against) duplicated capacity. Allocated capacity
// never moves — only free residual does.
//
// Rehashing is cheap but real: ingresses map onto the new table modulus,
// so a class's requests may land on a different shard afterwards (the
// documented packing-quality cost of sharding, momentarily at its
// worst). In-queue requests decide on the shard they were routed to.
//
// Resize registers with the drain protocol (it refuses with ErrDraining
// once draining starts), so it never races queue close. One resize runs
// at a time; concurrent calls fail fast with ErrResizeBusy.
func (s *Server) Resize(n int) (ResizeResult, error) {
	if n <= 0 {
		return ResizeResult{}, fmt.Errorf("serve: resize to %d shards", n)
	}
	if !s.admit() {
		return ResizeResult{}, ErrDraining
	}
	defer s.inflight.Done()
	if !s.resizeMu.TryLock() {
		return ResizeResult{}, ErrResizeBusy
	}
	defer s.resizeMu.Unlock()

	cur := s.routeShards()
	if n == len(cur) {
		return ResizeResult{Shards: n}, nil
	}
	if n < len(cur) {
		return s.shrink(cur, n)
	}
	return s.grow(cur, n)
}

func (s *Server) shrink(cur []*shard, n int) (ResizeResult, error) {
	keep := append([]*shard(nil), cur[:n]...)
	retiring := cur[n:]
	// Stop routing to the tail before harvesting it, so post-harvest
	// arrivals (which would meet an empty residual and be rejected) are
	// limited to requests already queued.
	s.route.Store(&keep)
	for _, sh := range retiring {
		sh.retired.Store(true)
	}
	pot := s.harvest(retiring, 0)
	s.deposit(keep, pot)
	return ResizeResult{Shards: n, Retired: len(retiring)}, nil
}

func (s *Server) grow(cur []*shard, n int) (ResizeResult, error) {
	// Revive retired shards in index order before building new ones:
	// whatever capacity drained back onto them since retirement returns
	// to service with them.
	var joiners []*shard
	revived := 0
	for _, sh := range s.allShards() {
		if len(cur)+len(joiners) >= n {
			break
		}
		if sh.retired.Load() {
			joiners = append(joiners, sh)
			revived++
		}
	}
	all := s.allShards()
	created := 0
	for len(cur)+len(joiners) < n {
		sh, err := s.buildShard(len(all)+created, 0)
		if err != nil {
			return ResizeResult{}, err
		}
		if s.met != nil {
			s.met.registerShard(sh)
		}
		joiners = append(joiners, sh)
		created++
	}
	if created > 0 {
		grown := append(append([]*shard(nil), all...), joiners[len(joiners)-created:]...)
		s.all.Store(&grown)
		for _, sh := range joiners[len(joiners)-created:] {
			s.startShard(sh)
		}
	}
	// Newly built shards hold the published plan already; revived shards
	// may have missed swaps while retired. Re-publish to the joiners.
	if pu := s.curPlanUpdate(); pu != nil {
		for _, sh := range joiners[:revived] {
			sh.pending.Store(pu)
		}
	}
	pot := s.harvest(cur, float64(len(cur))/float64(n))
	s.deposit(joiners, pot)
	for _, sh := range joiners {
		sh.retired.Store(false)
	}
	newRoute := append(append([]*shard(nil), cur...), joiners...)
	s.route.Store(&newRoute)
	return ResizeResult{Shards: n, Created: created, Revived: revived}, nil
}

// curPlanUpdate wraps the published plan as a planUpdate for late
// joiners, or nil for plan-less servers.
func (s *Server) curPlanUpdate() *planUpdate {
	p := s.curPlan.Load()
	if p == nil {
		return nil
	}
	return &planUpdate{p: p, gen: s.planGen.Load(), published: time.Now()}
}

// harvest asks each donor shard — through its serialized queue, so the
// scale-down is atomic against its decisions — to keep the given
// fraction of its free residual, and accumulates the donated remainder.
func (s *Server) harvest(donors []*shard, keepFraction float64) []float64 {
	pot := make([]float64, s.g.NumElements())
	reply := takeReply()
	defer putReply(reply)
	for _, sh := range donors {
		sh.queue <- op{kind: opScaleDonate, factor: keepFraction, reply: reply}
		res := <-reply
		for i, v := range res.donated {
			pot[i] += v
		}
	}
	return pot
}

// deposit splits the pot equally across the receivers, assigning the
// last receiver the exact remainder so the redistribution sums back to
// the harvested total bit-for-bit modulo float rounding.
func (s *Server) deposit(receivers []*shard, pot []float64) {
	if len(receivers) == 0 {
		return
	}
	share := make([]float64, len(pot))
	rest := append([]float64(nil), pot...)
	for i, v := range pot {
		share[i] = v / float64(len(receivers))
	}
	reply := takeReply()
	defer putReply(reply)
	for k, sh := range receivers {
		vec := share
		if k == len(receivers)-1 {
			vec = rest
		}
		sh.queue <- op{kind: opAddResidual, vec: vec, reply: reply}
		<-reply
		if k < len(receivers)-1 {
			for i := range rest {
				rest[i] -= share[i]
			}
		}
	}
}
