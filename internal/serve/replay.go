package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// StreamRequest is one request of a canned stream (the on-disk JSON the
// replay client posts). It is EmbedRequest plus nothing — a separate name
// so stream files are self-describing.
type StreamRequest = EmbedRequest

// LoadStream decodes a JSON stream file: {"requests": [...]}.
func LoadStream(r io.Reader) ([]StreamRequest, error) {
	var f struct {
		Requests []StreamRequest `json:"requests"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("serve: stream: %w", err)
	}
	if len(f.Requests) == 0 {
		return nil, fmt.Errorf("serve: stream holds no requests")
	}
	return f.Requests, nil
}

// SaveStream writes a stream file readable by LoadStream.
func SaveStream(w io.Writer, reqs []StreamRequest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Requests []StreamRequest `json:"requests"`
	}{reqs})
}

// Replay posts the stream to baseURL sequentially — one request at a
// time, preserving order, which is what makes single-shard runs
// reproducible — and writes one canonical decision line per request to w:
//
//	req=<id> shard=<n> slot=<t> accepted=<0|1> planned=<0|1> cost=<g> preempted=<ids>
//
// Cost uses the shortest float64 representation, so equal lines mean
// bit-equal costs. Latency is deliberately absent: decision lines from
// two runs of the same deterministic server diff clean. Replay fails on
// the first non-200 response.
func Replay(client *http.Client, baseURL string, reqs []StreamRequest, w io.Writer) error {
	if client == nil {
		client = http.DefaultClient
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	for i, sr := range reqs {
		body, err := json.Marshal(sr)
		if err != nil {
			return err
		}
		resp, err := client.Post(baseURL+"/v1/embed", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("serve: replay request %d: %w", i, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("serve: replay request %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serve: replay request %d: HTTP %d: %s", i, resp.StatusCode, strings.TrimSpace(string(data)))
		}
		var er EmbedResponse
		if err := json.Unmarshal(data, &er); err != nil {
			return fmt.Errorf("serve: replay request %d: %w", i, err)
		}
		fmt.Fprintln(w, DecisionLine(&er))
	}
	return nil
}

// DecisionLine renders the canonical, latency-free decision line CI diffs.
func DecisionLine(er *EmbedResponse) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "req=%d shard=%d slot=%d accepted=%d planned=%d cost=%s",
		er.ID, er.Shard, er.Slot, b2i(er.Accepted), b2i(er.Planned),
		strconv.FormatFloat(er.Cost, 'g', -1, 64))
	if len(er.Preempted) > 0 {
		sb.WriteString(" preempted=")
		for i, id := range er.Preempted {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(id))
		}
	}
	return sb.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
