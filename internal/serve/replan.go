package serve

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olive-vne/olive/internal/plan"
)

// Replan trigger errors, distinguishable by the HTTP layer.
var (
	// ErrReplanDisabled: the server was built without Options.Replan.
	ErrReplanDisabled = errors.New("serve: replanning disabled")
	// ErrReplanBusy: a rebuild is already running (one at a time; the
	// warm solver state is not concurrency-safe).
	ErrReplanBusy = errors.New("serve: replan already in progress")
	// ErrInsufficientHistory: the rolling history holds fewer requests
	// than Options.Replan.MinHistory.
	ErrInsufficientHistory = errors.New("serve: insufficient history for replan")
)

// replanner owns the background rebuild machinery: one warm plan.Solver
// reused across rebuilds (signature-keyed basis memory, pooled columns —
// consecutive plans over rolling histories are exactly the
// few-columns-differ regime the warm start was built for), a busy flag
// serializing rebuilds, and the outcome counters /stats and /metrics
// export. Rebuilds run off the request path: the only contact with the
// shards is snapshotting their history rings and storing the finished
// plan into their pending pointers.
type replanner struct {
	s       *Server
	solver  *plan.Solver
	running atomic.Bool

	rebuilds atomic.Int64 // successful rebuilds (== published generation)
	failed   atomic.Int64 // rebuilds that errored
	skipped  atomic.Int64 // triggers skipped for insufficient history

	lastBuiltSlot atomic.Int64 // virtual slot the last rebuild was published at
	lastHistory   atomic.Int64 // history size the last rebuild aggregated
	lastClasses   atomic.Int64 // class count of the last rebuilt plan

	stop     chan struct{}
	tickerWG sync.WaitGroup
}

func newReplanner(s *Server) *replanner {
	return &replanner{
		s:      s,
		solver: plan.NewSolver(s.g, s.apps),
		stop:   make(chan struct{}),
	}
}

// startTicker launches the cadence goroutine (real-time mode only; the
// caller gates on Deterministic). Skipped and busy triggers are normal —
// the counters record every outcome.
func (r *replanner) startTicker(interval time.Duration) {
	r.tickerWG.Add(1)
	go func() {
		defer r.tickerWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				_, _ = r.s.TriggerReplan()
			}
		}
	}()
}

func (r *replanner) stopTicker() {
	close(r.stop)
	r.tickerWG.Wait()
}

// TriggerReplan runs one rebuild synchronously: it exports the rolling
// request history, aggregates it into plan classes, solves PLAN-VNE on
// the warm solver, and publishes the result as the next plan generation.
// Each shard adopts the new generation before its next serialized
// operation — requests already queued or in flight are decided under the
// generation they arrived at, and no request is ever dropped by a swap.
//
// The rebuild's randomness is PCG(Replan.Seed, generation), so a given
// (history, generation) pair rebuilds identically; with a deterministic
// server and a sequential replay stream the whole trigger is
// reproducible, which is how the e2e drift run pins its swap points.
//
// Returns the new generation, or ErrReplanDisabled / ErrReplanBusy /
// ErrInsufficientHistory (all leaving the published plan untouched).
func (s *Server) TriggerReplan() (int64, error) {
	r := s.replan
	if r == nil {
		return 0, ErrReplanDisabled
	}
	if !r.running.CompareAndSwap(false, true) {
		return 0, ErrReplanBusy
	}
	defer r.running.Store(false)

	hist := s.HistoryTrace()
	if len(hist.Requests) < s.opts.Replan.MinHistory {
		r.skipped.Add(1)
		return 0, fmt.Errorf("%w: have %d of %d requests",
			ErrInsufficientHistory, len(hist.Requests), s.opts.Replan.MinHistory)
	}
	gen := s.planGen.Load() + 1
	rng := rand.New(rand.NewPCG(s.opts.Replan.Seed, uint64(gen)))
	p, err := r.solver.BuildFromHistory(hist, s.opts.Replan.Plan, rng)
	if err != nil {
		r.failed.Add(1)
		return 0, fmt.Errorf("serve: replan generation %d: %w", gen, err)
	}
	r.lastHistory.Store(int64(len(hist.Requests)))
	r.lastClasses.Store(int64(len(p.Classes)))
	r.lastBuiltSlot.Store(s.maxSlot())
	s.publishPlan(p, gen)
	r.rebuilds.Add(1)
	return gen, nil
}

// publishPlan makes p the current generation: resizes build new shards
// from it, and every routable shard adopts it before its next serialized
// operation. One shared planUpdate serves all shards — it is read-only
// after publication.
func (s *Server) publishPlan(p *plan.Plan, gen int64) {
	s.curPlan.Store(p)
	s.planGen.Store(gen)
	pu := &planUpdate{p: p, gen: gen, published: time.Now()}
	for _, sh := range s.routeShards() {
		sh.pending.Store(pu)
	}
}

// maxSlot returns the highest virtual slot any routable shard has
// reached — the server's notion of "now" in slot units.
func (s *Server) maxSlot() int64 {
	var m int64
	for _, sh := range s.routeShards() {
		if v := sh.slot.Load(); v > m {
			m = v
		}
	}
	return m
}

// PlanInfo is the body of GET /v1/plan: the current plan generation and
// the provenance of its build.
type PlanInfo struct {
	// Generation is the published plan generation (0 = the plan the
	// server was constructed with; each successful replan increments).
	Generation int64 `json:"generation"`
	// Classes is the class count of the published plan (0 for plan-less
	// algorithms).
	Classes int `json:"classes"`
	// BuiltAtSlot is the virtual slot the published generation was built
	// at (0 for the construction plan).
	BuiltAtSlot int64 `json:"built_at_slot"`
	// HistoryRequests is the rolling-history size the published
	// generation aggregated (0 for the construction plan).
	HistoryRequests int64 `json:"history_requests"`
	// ShardGenerations lists the generation each routable shard has
	// adopted; shards trail Generation until their next operation.
	ShardGenerations []int64 `json:"shard_generations"`
	// ReplanEnabled reports whether the server replans at all.
	ReplanEnabled bool `json:"replan_enabled"`
}

// PlanStatus snapshots the published plan and its adoption state.
func (s *Server) PlanStatus() PlanInfo {
	info := PlanInfo{
		Generation:    s.planGen.Load(),
		ReplanEnabled: s.replan != nil,
	}
	if p := s.curPlan.Load(); p != nil {
		info.Classes = len(p.Classes)
	}
	if s.replan != nil {
		info.BuiltAtSlot = s.replan.lastBuiltSlot.Load()
		info.HistoryRequests = s.replan.lastHistory.Load()
	}
	for _, sh := range s.routeShards() {
		info.ShardGenerations = append(info.ShardGenerations, sh.gen.Load())
	}
	return info
}
