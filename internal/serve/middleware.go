package serve

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Request tracing: every HTTP request gets an ID (caller-supplied
// X-Request-ID honored, otherwise generated), echoed back in the
// response header and attached to the structured access-log line. The
// middleware also feeds the HTTP-level metric families; it observes the
// request from outside the handler, so it can never perturb a decision.

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// reqSeq numbers generated request IDs. Process-wide so IDs stay unique
// across multiple servers in one binary (tests run several).
var reqSeq atomic.Int64

// requestID returns the caller's X-Request-ID, or mints a sequential
// one. Sequential — not random — so deterministic-mode runs produce
// identical logs too, not just identical decisions.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return fmt.Sprintf("req-%06d", reqSeq.Add(1))
}

// clientKey identifies the client for rate limiting and logging: the
// X-Client-ID header when present, else the remote IP without the port
// (one host, many ephemeral ports, one bucket).
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// middleware wraps the API mux with request IDs, HTTP metrics, and the
// optional access log.
func (s *Server) middleware(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := requestID(r)
		w.Header().Set("X-Request-ID", rid)
		// Resolve the route pattern up front (mux.Handler does not
		// execute the handler); per-pattern labels keep the metric
		// cardinality at the route count, not the URL count.
		route := "unmatched"
		if _, p := mux.Handler(r); p != "" {
			route = p
		}
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(t0)
		if s.met != nil {
			s.met.httpReqs.With(route, strconv.Itoa(sw.status)).Inc()
			s.met.httpDur.With(route).Observe(dur.Seconds())
		}
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", dur),
				slog.String("client", clientKey(r)),
			)
		}
	})
}
