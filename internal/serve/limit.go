package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Admission control: a token-bucket rate limiter that sits in front of
// the bounded shard queues. The queues are the last line of defense —
// by the time one fills, a burst has already bought itself queueing
// latency. The limiter sheds excess load at the door instead: a global
// bucket caps aggregate throughput at what the shards sustain, and an
// optional per-client bucket keeps one hot client from starving the
// rest (per-client fairness). Shed requests are answered 429 with a
// Retry-After hint, before any per-request work (decode, routing) is
// done.

// RateLimit configures the admission token buckets. The zero value
// disables limiting entirely.
type RateLimit struct {
	// RPS is the sustained global request rate (requests/second).
	// 0 disables the global bucket.
	RPS float64
	// Burst is the global bucket capacity — the number of requests a
	// quiet server accepts back-to-back. Defaults to max(RPS, 1).
	Burst float64
	// PerClientRPS is the sustained per-client rate. 0 disables
	// per-client buckets. Clients are keyed by the X-Client-ID header,
	// falling back to the remote address.
	PerClientRPS float64
	// PerClientBurst is each client bucket's capacity. Defaults to
	// max(PerClientRPS, 1).
	PerClientBurst float64
	// MaxClients bounds the per-client bucket table (default 16384).
	// When full, the longest-idle buckets are evicted; an evicted
	// client starts over with a full bucket, so eviction can only be
	// too generous, never too strict.
	MaxClients int
}

// enabled reports whether any bucket is configured.
func (rl RateLimit) enabled() bool { return rl.RPS > 0 || rl.PerClientRPS > 0 }

func (rl RateLimit) normalize() RateLimit {
	if rl.Burst <= 0 {
		rl.Burst = math.Max(rl.RPS, 1)
	}
	if rl.PerClientBurst <= 0 {
		rl.PerClientBurst = math.Max(rl.PerClientRPS, 1)
	}
	if rl.MaxClients <= 0 {
		rl.MaxClients = 16384
	}
	return rl
}

// bucket is one token bucket; refill is lazy, on each take.
type bucket struct {
	tokens float64
	last   time.Time
}

// refill tops the bucket up for the time elapsed since the last visit.
func (b *bucket) refill(now time.Time, rate, burst float64) {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*rate)
	}
	b.last = now
}

// limitReason names which bucket shed a request.
type limitReason string

const (
	limitGlobal limitReason = "rate_limit_global"
	limitClient limitReason = "rate_limit_client"
)

// rateLimiter is the two-level admission limiter.
type rateLimiter struct {
	cfg RateLimit
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	global  bucket
	clients map[string]*bucket
}

func newRateLimiter(cfg RateLimit) *rateLimiter {
	return &rateLimiter{
		cfg:     cfg.normalize(),
		now:     time.Now,
		clients: make(map[string]*bucket),
	}
}

// allow decides one request for the given client key. Both buckets are
// refilled, both are checked, and tokens are only consumed when every
// enabled bucket admits — a request shed by the client bucket does not
// burn a global token. On rejection it reports which bucket shed and
// how long until that bucket next has a token.
func (l *rateLimiter) allow(client string) (ok bool, reason limitReason, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()

	var cb *bucket
	if l.cfg.RPS > 0 {
		l.global.refill(now, l.cfg.RPS, l.cfg.Burst)
	}
	if l.cfg.PerClientRPS > 0 {
		cb = l.clients[client]
		if cb == nil {
			l.evictIfFull()
			cb = &bucket{}
			l.clients[client] = cb
		}
		cb.refill(now, l.cfg.PerClientRPS, l.cfg.PerClientBurst)
	}

	if l.cfg.RPS > 0 && l.global.tokens < 1 {
		return false, limitGlobal, tokenWait(l.global.tokens, l.cfg.RPS)
	}
	if cb != nil && cb.tokens < 1 {
		return false, limitClient, tokenWait(cb.tokens, l.cfg.PerClientRPS)
	}
	if l.cfg.RPS > 0 {
		l.global.tokens--
	}
	if cb != nil {
		cb.tokens--
	}
	return true, "", 0
}

// tokenWait is the time until a bucket at the given level regains a
// full token.
func tokenWait(tokens, rate float64) time.Duration {
	return time.Duration((1 - tokens) / rate * float64(time.Second))
}

// globalTokens reads the global bucket level (scrape-time gauge).
func (l *rateLimiter) globalTokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.global.tokens
}

// evictIfFull keeps the client table under MaxClients by dropping the
// longest-idle eighth in one sweep — amortized O(1) per insert, and an
// evicted client only gets a fresh (full) bucket out of it.
func (l *rateLimiter) evictIfFull() {
	if len(l.clients) < l.cfg.MaxClients {
		return
	}
	type idle struct {
		key  string
		last time.Time
	}
	olds := make([]idle, 0, len(l.clients))
	for k, b := range l.clients {
		olds = append(olds, idle{k, b.last})
	}
	// Selection by nth-idle timestamp would save a log factor; a full
	// sort at 16k entries every ~2k inserts is already noise.
	sort.Slice(olds, func(i, j int) bool { return olds[i].last.Before(olds[j].last) })
	for _, o := range olds[:len(olds)/8+1] {
		delete(l.clients, o.key)
	}
}
