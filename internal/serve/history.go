package serve

import (
	"sort"
	"sync"

	"github.com/olive-vne/olive/internal/workload"
)

// historyRing is a bounded ring of the most recent requests one shard
// has processed — the rolling request history the replanner aggregates
// into plan classes. The shard goroutine appends on its decision path
// (under an uncontended mutex, into a preallocated buffer: no
// allocation in steady state); the replanner snapshots from outside.
//
// The ring captures offered load: every request the shard decided,
// accepted or rejected. A plan rebuilt from accepted traffic only would
// never learn about the demand the current plan is turning away — which
// is exactly the drift signal replanning exists to pick up.
type historyRing struct {
	mu    sync.Mutex
	buf   []workload.Request // grows to cap, then overwrites in ring order
	next  int                // overwrite cursor once full
	total int64              // lifetime appends (monotonic)
}

func newHistoryRing(n int) *historyRing {
	return &historyRing{buf: make([]workload.Request, 0, n)}
}

// add records one decided request. The caller passes the request as the
// engine saw it: clock-stamped arrival slot and the globally unique,
// monotonically assigned server ID.
func (h *historyRing) add(r workload.Request) {
	h.mu.Lock()
	h.total++
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, r)
	} else {
		h.buf[h.next] = r
		h.next = (h.next + 1) % len(h.buf)
	}
	h.mu.Unlock()
}

// depth returns the number of requests currently retained.
func (h *historyRing) depth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf)
}

// snapshot appends the retained requests to dst (retention order is
// irrelevant: the exporter sorts the merged shards).
func (h *historyRing) snapshot(dst []workload.Request) []workload.Request {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append(dst, h.buf...)
}

// HistoryTrace exports the merged per-shard request history as a valid
// workload.Trace: requests from every shard (retired shards included —
// their traffic was real), sorted by arrival slot with server IDs
// breaking ties, arrivals rebased to slot 0 and IDs re-densified so
// Trace.Validate holds and plan.Aggregate can consume it directly.
//
// The export is deterministic: server IDs are assigned in request order,
// and in deterministic mode arrival slots are a pure function of the
// request stream, so the same replay stream exports a byte-identical
// trace. With replanning disabled the history is empty (Slots 0).
func (s *Server) HistoryTrace() *workload.Trace {
	var reqs []workload.Request
	for _, sh := range s.allShards() {
		if sh.hist != nil {
			reqs = sh.hist.snapshot(reqs)
		}
	}
	if len(reqs) == 0 {
		return &workload.Trace{}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Arrive != reqs[j].Arrive {
			return reqs[i].Arrive < reqs[j].Arrive
		}
		return reqs[i].ID < reqs[j].ID
	})
	base := reqs[0].Arrive
	maxArrive := 0
	for i := range reqs {
		reqs[i].Arrive -= base
		reqs[i].ID = i
		if reqs[i].Arrive > maxArrive {
			maxArrive = reqs[i].Arrive
		}
	}
	return &workload.Trace{Requests: reqs, Slots: maxArrive + 1}
}

// historyDepth sums the retained request counts across shards (the
// vne_replan_history_depth gauge).
func (s *Server) historyDepth() int {
	var t int
	for _, sh := range s.allShards() {
		if sh.hist != nil {
			t += sh.hist.depth()
		}
	}
	return t
}
