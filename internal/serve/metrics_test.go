package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/olive-vne/olive/internal/obs"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// TestMetricsEndpoint drives traffic through a 2-shard server, scrapes
// GET /metrics, and requires (a) the exposition to pass the promtext
// linter and (b) the tentpole's family floor: every family the issue
// names, and at least 12 overall.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := testServer(t, Options{Shards: 2, Deterministic: true})
	for _, sr := range testStream(t, 60) {
		body, _ := json.Marshal(sr)
		resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	fams, err := obs.Lint(resp.Body)
	if err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	if len(fams) < 12 {
		t.Fatalf("%d families exposed, want ≥ 12", len(fams))
	}
	for _, want := range []string{
		"vne_build_info",
		"vne_http_requests_total",
		"vne_http_request_duration_seconds",
		"vne_decisions_total",
		"vne_shed_total",
		"vne_request_duration_seconds",
		"vne_queue_wait_seconds",
		"vne_solve_duration_seconds",
		"vne_shard_queue_depth",
		"vne_shard_queue_capacity",
		"vne_shard_active_embeddings",
		"vne_shard_utilization",
		"vne_lp_solves_total",
		"vne_lp_pivots_total",
		"vne_lp_refactorizations_total",
		"vne_plan_warm_starts_total",
		"vne_revenue_total",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from /metrics", want)
		}
	}

	// The func-backed views and /v1/stats must agree: same atomics.
	st := s.Stats()
	var accepted float64
	for _, smp := range fams["vne_decisions_total"].Samples {
		if smp.Labels["outcome"] == "accepted" {
			accepted += smp.Value
		}
	}
	if int64(accepted) != st.Requests.Accepted {
		t.Fatalf("metrics accepted = %g, stats accepted = %d", accepted, st.Requests.Accepted)
	}
	// Latency histograms observed every decision.
	if got := fams["vne_request_duration_seconds"].Samples; len(got) == 0 {
		t.Fatal("request-duration histogram has no samples")
	}
	var count float64
	for _, smp := range fams["vne_request_duration_seconds"].Samples {
		if strings.HasSuffix(smp.Name, "_count") {
			count = smp.Value
		}
	}
	if int64(count) != st.Requests.Total {
		t.Fatalf("histogram count = %g, want %d", count, st.Requests.Total)
	}
	// All four shed reasons pre-registered at zero.
	if got := len(fams["vne_shed_total"].Samples); got != 4 {
		t.Fatalf("vne_shed_total has %d series, want all 4 reasons pre-registered", got)
	}
}

// TestMetricsDisabled: DisableMetrics removes the /metrics route and the
// registry, and the server still serves.
func TestMetricsDisabled(t *testing.T) {
	s, ts := testServer(t, Options{Deterministic: true, DisableMetrics: true})
	if s.Metrics() != nil {
		t.Fatal("Metrics() non-nil with DisableMetrics")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics = %d, want 404", resp.StatusCode)
	}
	if code, _ := postEmbed(t, ts.URL, EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1}); code.StatusCode != http.StatusOK {
		t.Fatalf("embed with metrics disabled = %d", code.StatusCode)
	}
}

// TestStatsJSONShape is the backward-compatibility regression for
// /v1/stats: every pre-existing key must survive, and the new
// queue-depth/shed/warm-start fields must be present.
func TestStatsJSONShape(t *testing.T) {
	_, ts := testServer(t, Options{Deterministic: true})
	postEmbed(t, ts.URL, EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{
		// pre-existing shape
		"uptime_s", "shards", "algorithm", "deterministic",
		"requests", "revenue", "latency", "per_shard",
		// new top-level block
		"lp",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats missing top-level key %q", key)
		}
	}
	reqs, _ := m["requests"].(map[string]any)
	for _, key := range []string{
		"total", "accepted", "rejected", "preempted", "released",
		"acceptance_rate", "shed", "rate_limited",
	} {
		if _, ok := reqs[key]; !ok {
			t.Errorf("stats.requests missing key %q", key)
		}
	}
	lat, _ := m["latency"].(map[string]any)
	for _, key := range []string{"p50_us", "p90_us", "p99_us", "p999_us", "samples"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("stats.latency missing key %q", key)
		}
	}
	lpb, _ := m["lp"].(map[string]any)
	for _, key := range []string{"solves", "warm_attempts", "warm_hits", "pivots", "refactorizations", "plan_builds"} {
		if _, ok := lpb[key]; !ok {
			t.Errorf("stats.lp missing key %q", key)
		}
	}
	shards, _ := m["per_shard"].([]any)
	if len(shards) == 0 {
		t.Fatal("per_shard empty")
	}
	sh0, _ := shards[0].(map[string]any)
	for _, key := range []string{
		"shard", "processed", "accepted", "rejected", "active",
		"queue", "queue_cap", "shed", "utilization",
	} {
		if _, ok := sh0[key]; !ok {
			t.Errorf("stats.per_shard[0] missing key %q", key)
		}
	}
}

// TestDeterminismWithMetricsAndLogging is the determinism guard the
// issue asks for: the decision sequence of a single-shard deterministic
// server must be byte-identical with instrumentation fully on (metrics
// + access logging + concurrent scrapes) and fully off. Observation
// must never influence a decision.
func TestDeterminismWithMetricsAndLogging(t *testing.T) {
	stream := testStream(t, 120)
	run := func(opts Options, scrape bool) string {
		_, ts := testServer(t, opts)
		var buf bytes.Buffer
		half := len(stream) / 2
		if err := Replay(nil, ts.URL, stream[:half], &buf); err != nil {
			t.Fatal(err)
		}
		if scrape { // scrape mid-stream: reading gauges must not perturb
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if err := Replay(nil, ts.URL, stream[half:], &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	quiet := run(Options{Shards: 1, Deterministic: true, DisableMetrics: true}, false)
	loud := run(Options{
		Shards:        1,
		Deterministic: true,
		AccessLog:     slog.New(slog.NewJSONHandler(io.Discard, nil)),
	}, true)
	if quiet != loud {
		t.Fatalf("instrumentation changed the decision sequence:\n--- metrics off ---\n%s\n--- metrics+logging on ---\n%s", quiet, loud)
	}
	if !strings.Contains(quiet, "accepted=1") {
		t.Fatal("no accepts in the decision sequence")
	}
}

// TestAccessLogAndRequestID: the middleware logs one structured line
// per request carrying the request ID, and honors X-Request-ID.
func TestAccessLogAndRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	mu := &syncWriter{w: &logBuf}
	_, ts := testServer(t, Options{
		Deterministic: true,
		AccessLog:     slog.New(slog.NewJSONHandler(mu, nil)),
	})

	body, _ := json.Marshal(EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/embed", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("X-Request-ID echoed as %q, want trace-me-42", got)
	}

	line := mu.String()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, line)
	}
	if entry["id"] != "trace-me-42" || entry["route"] != "POST /v1/embed" {
		t.Fatalf("log entry = %v, want id=trace-me-42 route=POST /v1/embed", entry)
	}
	if _, ok := entry["status"]; !ok {
		t.Fatal("log entry missing status")
	}

	// Generated IDs when the caller sends none.
	resp2, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID")
	}
}

// syncWriter makes a bytes.Buffer safe for slog across goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// BenchmarkServeEmbedWithMetrics is the allocation budget for the fully
// instrumented embed path (CI guards allocs/op against
// testdata/bench_baseline.json). In-process handler invocation — no
// network — so the measured work is decode → route → queue → solve →
// observe → encode.
func BenchmarkServeEmbedWithMetrics(b *testing.B) {
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	s, err := New(g, apps, Options{Deterministic: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain(context.Background())
	h := s.Handler()

	body, _ := json.Marshal(EmbedRequest{App: 0, Ingress: 0, Demand: 0.001, Duration: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/embed", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
}
