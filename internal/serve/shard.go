package serve

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/workload"
)

// opKind discriminates shard queue operations.
type opKind uint8

const (
	opEmbed opKind = iota
	opRelease
)

// op is one unit of serialized shard work. Embeds carry the request and a
// reply channel; releases carry the request ID.
type op struct {
	kind     opKind
	req      workload.Request
	id       int
	reply    chan result
	enqueued time.Time // queue-wait measurement; zero when metrics are off
}

// result is a shard's decision for one op.
type result struct {
	slot      int
	accepted  bool
	planned   bool
	released  bool
	cost      float64
	nodes     []int
	preempted []int
	err       error
}

// shard owns one single-threaded engine plus its substrate state. All
// engine access happens on the run goroutine; the HTTP layer communicates
// through the bounded queue and reads only the atomic counters.
type shard struct {
	idx   int
	eng   *core.Engine
	st    *substrate.State
	queue chan op
	adv   chan int // departure-timer mailbox, capacity 1, latest slot wins

	now     int     // virtual clock, owned by run()
	baseRes float64 // Σ residual at construction (the shard's capacity slice)
	hook    func(shard int)
	met     *shardMetrics // latency histograms; nil when metrics are off

	// Counters read by /stats from other goroutines.
	processed atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	preempted atomic.Int64
	released  atomic.Int64
	shed      atomic.Int64 // requests refused because this queue was full
	active    atomic.Int64
	utilBits  atomic.Uint64 // float64 bits of 1 - Σres/baseRes
}

func newShard(idx int, eng *core.Engine, st *substrate.State, depth int) *shard {
	sh := &shard{
		idx:   idx,
		eng:   eng,
		st:    st,
		queue: make(chan op, depth),
		adv:   make(chan int, 1),
	}
	for _, r := range st.ResidualVec() {
		sh.baseRes += r
	}
	return sh
}

// tryAdvance delivers a departure-timer tick without blocking: the
// mailbox holds one pending slot and advances are absolute, so dropping
// a tick only delays releases until the next one.
func (sh *shard) tryAdvance(slot int) {
	select {
	case sh.adv <- slot:
	default:
	}
}

// run is the shard loop: it serializes every engine interaction. It exits
// when the queue is closed and drained (departure ticks may be dropped
// from then on — the server is shutting down).
func (sh *shard) run() {
	for {
		select {
		case o, ok := <-sh.queue:
			if !ok {
				return
			}
			sh.handle(o)
		case slot := <-sh.adv:
			sh.advance(slot)
			sh.refreshGauges()
		}
	}
}

// advance moves the virtual clock forward to slot (never backward),
// releasing departures in between.
func (sh *shard) advance(slot int) {
	if slot > sh.now {
		sh.now = slot
		sh.eng.StartSlot(slot)
	}
}

func (sh *shard) handle(o op) {
	switch o.kind {
	case opEmbed:
		sh.handleEmbed(o)
	case opRelease:
		ok := sh.eng.ReleaseByID(o.id)
		if ok {
			sh.released.Add(1)
		}
		o.reply <- result{slot: sh.now, released: ok}
	}
	sh.refreshGauges()
}

func (sh *shard) handleEmbed(o op) {
	if sh.hook != nil {
		sh.hook(sh.idx)
	}
	// The request's Arrive field drives the virtual clock forward (in
	// real-time mode the HTTP layer stamps it from the wall clock).
	sh.advance(o.req.Arrive)
	r := o.req
	r.Arrive = sh.now // engine contract: requests arrive at the current slot

	if sh.met != nil && !o.enqueued.IsZero() {
		sh.met.queueWait.Observe(time.Since(o.enqueued).Seconds())
	}
	t0 := time.Time{}
	if sh.met != nil {
		t0 = time.Now()
	}
	out, err := sh.eng.Process(r)
	if sh.met != nil {
		sh.met.solveDur.Observe(time.Since(t0).Seconds())
	}
	sh.processed.Add(1)
	res := result{slot: sh.now, err: err}
	if err == nil && out.Accepted {
		sh.accepted.Add(1)
		res.accepted = true
		res.planned = out.Planned
		res.cost = out.Emb.Cost(r.Demand)
		res.nodes = make([]int, len(out.Emb.NodeMap))
		for i, n := range out.Emb.NodeMap {
			res.nodes[i] = int(n)
		}
		res.preempted = out.Preempted
		sh.preempted.Add(int64(len(out.Preempted)))
	} else {
		sh.rejected.Add(1)
	}
	o.reply <- res
}

// utilization reads the last published allocated fraction.
func (sh *shard) utilization() float64 {
	return math.Float64frombits(sh.utilBits.Load())
}

// refreshGauges republishes the active-count and utilization gauges after
// every serialized operation.
func (sh *shard) refreshGauges() {
	sh.active.Store(int64(sh.eng.ActiveCount()))
	var free float64
	for _, r := range sh.st.ResidualVec() {
		free += r
	}
	util := 0.0
	if sh.baseRes > 0 {
		util = 1 - free/sh.baseRes
	}
	sh.utilBits.Store(math.Float64bits(util))
}
