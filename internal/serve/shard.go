package serve

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/workload"
)

// opKind discriminates shard queue operations.
type opKind uint8

const (
	opEmbed opKind = iota
	opRelease
	// opScaleDonate scales the shard's residual by a factor and replies
	// with the donated (removed) per-element capacity — the harvest half
	// of elastic re-sharding. Factor 0 takes everything.
	opScaleDonate
	// opAddResidual deposits a donated capacity vector into the shard's
	// residual — the other half of re-sharding.
	opAddResidual
)

// op is one unit of serialized shard work. Embeds carry the request and a
// reply channel; releases carry the request ID; the re-sharding ops carry
// a scale factor or a capacity vector.
type op struct {
	kind     opKind
	req      workload.Request
	id       int
	factor   float64   // opScaleDonate: residual fraction the shard keeps
	vec      []float64 // opAddResidual: per-element capacity to deposit
	reply    chan result
	enqueued time.Time // queue-wait measurement; zero when metrics are off
}

// result is a shard's decision for one op.
type result struct {
	slot      int
	accepted  bool
	planned   bool
	released  bool
	cost      float64
	nodes     []int
	preempted []int
	donated   []float64 // opScaleDonate: harvested capacity
	err       error
}

// planUpdate is one published plan generation awaiting adoption by a
// shard. The replanner (or a resize) stores it into the shard's pending
// pointer; the shard goroutine adopts it before the next serialized
// operation, so no request ever observes a half-swapped plan and
// requests already decided keep the generation they were decided under.
type planUpdate struct {
	p         *plan.Plan
	gen       int64
	published time.Time // swap-latency measurement (publish → adopt)
}

// shard owns one single-threaded engine plus its substrate state. All
// engine access happens on the run goroutine; the HTTP layer communicates
// through the bounded queue and reads only the atomic counters.
type shard struct {
	idx   int
	eng   *core.Engine
	st    *substrate.State
	queue chan op
	adv   chan int // departure-timer mailbox, capacity 1, latest slot wins

	now     int     // virtual clock, owned by run()
	baseRes float64 // Σ residual at construction (the shard's capacity slice)
	hook    func(shard int)
	met     *shardMetrics // latency histograms; nil when metrics are off
	hist    *historyRing  // rolling request history; nil unless replanning is on

	// pending is the next plan generation to adopt (nil when current).
	// Written by the replanner/resize publisher, consumed by the shard
	// goroutine; latest published generation wins.
	pending atomic.Pointer[planUpdate]

	// Counters read by /stats from other goroutines.
	gen       atomic.Int64 // plan generation the engine currently runs
	slot      atomic.Int64 // published virtual clock (mirror of now)
	retired   atomic.Bool  // removed from the routing table by a shrink
	processed atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	preempted atomic.Int64
	released  atomic.Int64
	shed      atomic.Int64 // requests refused because this queue was full
	active    atomic.Int64
	utilBits  atomic.Uint64 // float64 bits of 1 - Σres/baseRes
}

func newShard(idx int, eng *core.Engine, st *substrate.State, depth int) *shard {
	sh := &shard{
		idx:   idx,
		eng:   eng,
		st:    st,
		queue: make(chan op, depth),
		adv:   make(chan int, 1),
	}
	for _, r := range st.ResidualVec() {
		sh.baseRes += r
	}
	return sh
}

// tryAdvance delivers a departure-timer tick without blocking: the
// mailbox holds one pending slot and advances are absolute, so dropping
// a tick only delays releases until the next one.
func (sh *shard) tryAdvance(slot int) {
	select {
	case sh.adv <- slot:
	default:
	}
}

// run is the shard loop: it serializes every engine interaction. It exits
// when the queue is closed and drained (departure ticks may be dropped
// from then on — the server is shutting down).
func (sh *shard) run() {
	for {
		select {
		case o, ok := <-sh.queue:
			if !ok {
				return
			}
			sh.handle(o)
		case slot := <-sh.adv:
			sh.adoptPending()
			sh.advance(slot)
			sh.refreshGauges()
		}
	}
}

// adoptPending swaps in the latest published plan, if any. It runs on
// the shard goroutine before each serialized operation, so the swap is
// atomic with respect to decisions: every request is decided entirely
// under one generation, and the adoption point in a sequential replay
// stream is exactly the gap between two requests — deterministic when
// the trigger is (the admin endpoint is synchronous; cadence triggers
// are a real-time-mode feature).
func (sh *shard) adoptPending() {
	pu := sh.pending.Load()
	if pu == nil || !sh.pending.CompareAndSwap(pu, nil) {
		return
	}
	sh.eng.SwapPlan(pu.p)
	sh.gen.Store(pu.gen)
	if sh.met != nil {
		sh.met.swapDur.Observe(time.Since(pu.published).Seconds())
	}
}

// advance moves the virtual clock forward to slot (never backward),
// releasing departures in between.
func (sh *shard) advance(slot int) {
	if slot > sh.now {
		sh.now = slot
		sh.slot.Store(int64(slot))
		sh.eng.StartSlot(slot)
	}
}

func (sh *shard) handle(o op) {
	sh.adoptPending()
	switch o.kind {
	case opEmbed:
		sh.handleEmbed(o)
	case opRelease:
		ok := sh.eng.ReleaseByID(o.id)
		if ok {
			sh.released.Add(1)
		}
		o.reply <- result{slot: sh.now, released: ok}
	case opScaleDonate:
		res := sh.st.ResidualVec()
		donated := make([]float64, len(res))
		for i, r := range res {
			donated[i] = r * (1 - o.factor)
			sh.baseRes -= donated[i]
		}
		sh.st.ScaleResidual(o.factor)
		o.reply <- result{slot: sh.now, donated: donated}
	case opAddResidual:
		for _, v := range o.vec {
			sh.baseRes += v
		}
		sh.st.AddResidual(o.vec)
		o.reply <- result{slot: sh.now}
	}
	sh.refreshGauges()
}

//olive:hotpath per-request serve path; allocs guarded by BenchmarkServeEmbedWithMetrics
func (sh *shard) handleEmbed(o op) {
	if sh.hook != nil {
		sh.hook(sh.idx)
	}
	// The request's Arrive field drives the virtual clock forward (in
	// real-time mode the HTTP layer stamps it from the wall clock).
	sh.advance(o.req.Arrive)
	r := o.req
	r.Arrive = sh.now // engine contract: requests arrive at the current slot

	if sh.hist != nil {
		sh.hist.add(r)
	}
	if sh.met != nil && !o.enqueued.IsZero() {
		sh.met.queueWait.Observe(time.Since(o.enqueued).Seconds())
	}
	t0 := time.Time{}
	if sh.met != nil {
		t0 = time.Now()
	}
	out, err := sh.eng.Process(r)
	if sh.met != nil {
		sh.met.solveDur.Observe(time.Since(t0).Seconds())
	}
	sh.processed.Add(1)
	res := result{slot: sh.now, err: err}
	if err == nil && out.Accepted {
		sh.accepted.Add(1)
		res.accepted = true
		res.planned = out.Planned
		res.cost = out.Emb.Cost(r.Demand)
		res.nodes = make([]int, len(out.Emb.NodeMap))
		for i, n := range out.Emb.NodeMap {
			res.nodes[i] = int(n)
		}
		res.preempted = out.Preempted
		sh.preempted.Add(int64(len(out.Preempted)))
	} else {
		sh.rejected.Add(1)
	}
	o.reply <- res
}

// utilization reads the last published allocated fraction.
func (sh *shard) utilization() float64 {
	return math.Float64frombits(sh.utilBits.Load())
}

// refreshGauges republishes the active-count and utilization gauges after
// every serialized operation.
func (sh *shard) refreshGauges() {
	sh.active.Store(int64(sh.eng.ActiveCount()))
	var free float64
	for _, r := range sh.st.ResidualVec() {
		free += r
	}
	util := 0.0
	if sh.baseRes > 0 {
		util = 1 - free/sh.baseRes
	}
	sh.utilBits.Store(math.Float64bits(util))
}
