package serve

import (
	"strconv"

	"github.com/olive-vne/olive/internal/lp"
	"github.com/olive-vne/olive/internal/obs"
	"github.com/olive-vne/olive/internal/plan"
)

// serverMetrics owns every metric family the server exports on
// GET /metrics. The split is deliberate:
//
//   - Anything the serving path already counts for /v1/stats (decisions,
//     sheds, queue depths, utilization, revenue, LP/plan counters) is
//     exported as a func-backed view over those same atomics. One source
//     of truth — /metrics and /v1/stats cannot disagree — and scraping
//     costs the hot path nothing.
//   - Distributions (latency histograms) have no /stats counterpart and
//     are explicit instruments; the per-request work is a handful of
//     atomic adds, with labeled series resolved once at construction.
//
// The catalog (see README "Observability" for the narrative version):
//
//	vne_build_info                       gauge   {algorithm,deterministic,shards}
//	vne_uptime_seconds                   gauge
//	vne_http_requests_total              counter {path,code}
//	vne_http_request_duration_seconds    histogram {path}
//	vne_decisions_total                  counter {shard,outcome}
//	vne_shed_total                       counter {reason}
//	vne_request_duration_seconds         histogram   (embed: enqueue→decision)
//	vne_queue_wait_seconds               histogram   (embed: enqueue→dequeue)
//	vne_solve_duration_seconds           histogram   (embed: engine solve only)
//	vne_shard_queue_depth                gauge   {shard}
//	vne_shard_queue_capacity             gauge   {shard}
//	vne_shard_active_embeddings          gauge   {shard}
//	vne_shard_utilization                gauge   {shard}
//	vne_shards_routable                  gauge
//	vne_preemptions_total                counter
//	vne_releases_total                   counter
//	vne_revenue_total                    counter
//	vne_replan_generation                gauge
//	vne_replan_rebuilds_total            counter {outcome}
//	vne_replan_swap_duration_seconds     histogram   (publish → shard adoption)
//	vne_replan_history_depth             gauge
//	vne_ratelimit_tokens                 gauge   {scope}    (limiter enabled)
//	vne_lp_solves_total                  counter {start}
//	vne_lp_pivots_total                  counter
//	vne_lp_pivots_by_rule_total          counter {rule}
//	vne_lp_pricing_scans_total           counter
//	vne_lp_refactorizations_total        counter
//	vne_plan_builds_total                counter
//	vne_plan_warm_starts_total           counter {outcome}
//	vne_plan_pricing_total               counter {path}
type serverMetrics struct {
	reg *obs.Registry

	httpReqs *obs.CounterVec
	httpDur  *obs.HistogramVec

	reqDur    *obs.Histogram
	queueWait *obs.Histogram
	solveDur  *obs.Histogram
	swapDur   *obs.Histogram

	// Per-shard label-vec handles, kept so shards built after construction
	// (elastic grows) register the same series families.
	dec    *obs.CounterFuncVec
	depth  *obs.GaugeFuncVec
	capa   *obs.GaugeVec
	active *obs.GaugeFuncVec
	util   *obs.GaugeFuncVec
}

// shed reasons that are not limiter verdicts (those are limitGlobal and
// limitClient in limit.go).
const (
	shedQueueFull = "queue_full"
	shedDraining  = "draining"
)

// shardMetrics is the slice of serverMetrics a shard goroutine touches:
// the shared distribution instruments. Decision counts stay in the
// shard's own atomics; /metrics reads them at scrape time.
type shardMetrics struct {
	queueWait *obs.Histogram
	solveDur  *obs.Histogram
	swapDur   *obs.Histogram
}

// registerShard wires one shard into the per-shard metric families and
// hands it the shared instruments. Called at construction for the initial
// pool and again for every shard an elastic grow builds; series creation
// is concurrency-safe in obs, so a scrape racing a grow sees either the
// old or the new shard set, never a torn one.
func (m *serverMetrics) registerShard(sh *shard) {
	label := strconv.Itoa(sh.idx)
	m.dec.With(func() float64 { return float64(sh.accepted.Load()) }, label, "accepted")
	m.dec.With(func() float64 { return float64(sh.rejected.Load()) }, label, "rejected")
	m.depth.With(func() float64 { return float64(len(sh.queue)) }, label)
	m.capa.With(label).Set(float64(cap(sh.queue)))
	m.active.With(func() float64 { return float64(sh.active.Load()) }, label)
	m.util.With(func() float64 { return sh.utilization() }, label)
	sh.met = &shardMetrics{queueWait: m.queueWait, solveDur: m.solveDur, swapDur: m.swapDur}
}

// newServerMetrics registers every family on reg and wires the
// scrape-time views onto the server's shards and the lp/plan counters.
// Called once from New, after shards and limiter exist.
func newServerMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}

	det := "false"
	if s.opts.Deterministic {
		det = "true"
	}
	reg.GaugeVec("vne_build_info",
		"Constant 1, labeled with the server configuration.",
		"algorithm", "deterministic", "shards").
		With(string(s.opts.Algorithm), det, strconv.Itoa(s.opts.Shards)).Set(1)
	reg.GaugeFunc("vne_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return s.uptime().Seconds() })

	m.httpReqs = reg.CounterVec("vne_http_requests_total",
		"HTTP requests by route pattern and status code.",
		"path", "code")
	m.httpDur = reg.HistogramVec("vne_http_request_duration_seconds",
		"End-to-end HTTP handler latency by route pattern.",
		obs.LatencyBuckets(), "path")

	m.dec = reg.CounterFuncVec("vne_decisions_total",
		"Embedding decisions by shard and outcome.",
		"shard", "outcome")
	m.depth = reg.GaugeFuncVec("vne_shard_queue_depth",
		"Requests currently queued per shard.", "shard")
	m.capa = reg.GaugeVec("vne_shard_queue_capacity",
		"Bounded queue capacity per shard.", "shard")
	m.active = reg.GaugeFuncVec("vne_shard_active_embeddings",
		"Live embeddings per shard.", "shard")
	m.util = reg.GaugeFuncVec("vne_shard_utilization",
		"Allocated fraction of the shard's capacity slice.", "shard")
	reg.GaugeFunc("vne_shards_routable",
		"Shards currently in the routing table (retired shards excluded).",
		func() float64 { return float64(len(s.routeShards())) })

	// All four shed reasons are registered up front, so a scrape shows
	// the full shape (at zero) before the first shed.
	shed := reg.CounterFuncVec("vne_shed_total",
		"Requests shed before reaching an engine, by reason.",
		"reason")
	shed.With(func() float64 { return float64(s.queueShed()) }, shedQueueFull)
	shed.With(func() float64 { return float64(s.shedGlobal.Load()) }, string(limitGlobal))
	shed.With(func() float64 { return float64(s.shedClient.Load()) }, string(limitClient))
	shed.With(func() float64 { return float64(s.shedDraining.Load()) }, shedDraining)

	m.reqDur = reg.Histogram("vne_request_duration_seconds",
		"Embed decision latency, enqueue to decision (end-to-end).",
		obs.LatencyBuckets())
	m.queueWait = reg.Histogram("vne_queue_wait_seconds",
		"Time an embed op waits in its shard queue before processing.",
		obs.LatencyBuckets())
	m.solveDur = reg.Histogram("vne_solve_duration_seconds",
		"Engine solve time alone, excluding queueing and HTTP.",
		obs.LatencyBuckets())
	m.swapDur = reg.Histogram("vne_replan_swap_duration_seconds",
		"Plan hot-swap latency: generation publish to shard adoption.",
		obs.LatencyBuckets())
	for _, sh := range s.allShards() {
		m.registerShard(sh)
	}

	reg.CounterFunc("vne_preemptions_total",
		"Embeddings evicted to make room for arriving requests.",
		func() float64 {
			var t int64
			for _, sh := range s.allShards() {
				t += sh.preempted.Load()
			}
			return float64(t)
		})
	reg.CounterFunc("vne_releases_total",
		"Embeddings released early via DELETE /v1/embeddings/{id}.",
		func() float64 {
			var t int64
			for _, sh := range s.allShards() {
				t += sh.released.Load()
			}
			return float64(t)
		})
	reg.CounterFunc("vne_revenue_total",
		"Sum of demand times duration over accepted requests.",
		s.readRevenue)

	// Replan families register unconditionally (reading 0 with replanning
	// off), so dashboards and the vneload -require check see a stable
	// catalog on every configuration.
	reg.GaugeFunc("vne_replan_generation",
		"Published plan generation (0 = construction plan).",
		func() float64 { return float64(s.planGen.Load()) })
	reg.GaugeFunc("vne_replan_history_depth",
		"Requests currently retained in the rolling replan history.",
		func() float64 { return float64(s.historyDepth()) })
	rebuilds := reg.CounterFuncVec("vne_replan_rebuilds_total",
		"Replan triggers by outcome: ok published a generation, failed "+
			"errored in the solver, skipped lacked history.",
		"outcome")
	rebuilds.With(func() float64 {
		if s.replan == nil {
			return 0
		}
		return float64(s.replan.rebuilds.Load())
	}, "ok")
	rebuilds.With(func() float64 {
		if s.replan == nil {
			return 0
		}
		return float64(s.replan.failed.Load())
	}, "failed")
	rebuilds.With(func() float64 {
		if s.replan == nil {
			return 0
		}
		return float64(s.replan.skipped.Load())
	}, "skipped")

	if s.limiter != nil {
		reg.GaugeFuncVec("vne_ratelimit_tokens",
			"Token-bucket fill level.", "scope").
			With(s.limiter.globalTokens, "global")
	}

	// LP and plan solve counters are package-wide (the daemon owns the
	// process, so process counters are server counters); exported as
	// scrape-time views so the solver packages stay observability-free.
	solves := reg.CounterFuncVec("vne_lp_solves_total",
		"Completed LP solves by start mode.", "start")
	solves.With(func() float64 { return float64(lp.Stats().WarmHits) }, "warm")
	solves.With(func() float64 {
		st := lp.Stats()
		return float64(st.Solves - st.WarmHits)
	}, "cold")
	reg.CounterFunc("vne_lp_pivots_total",
		"Total simplex pivots across all LP solves.",
		func() float64 { return float64(lp.Stats().Pivots) })
	pivotsBy := reg.CounterFuncVec("vne_lp_pivots_by_rule_total",
		"Simplex pivots by the pricing rule that chose the entering column "+
			"(bland is the anti-cycling fallback under either rule).", "rule")
	pivotsBy.With(func() float64 { return float64(lp.Stats().PivotsDevex) }, "devex")
	pivotsBy.With(func() float64 { return float64(lp.Stats().PivotsDantzig) }, "dantzig")
	pivotsBy.With(func() float64 { return float64(lp.Stats().PivotsBland) }, "bland")
	reg.CounterFunc("vne_lp_pricing_scans_total",
		"Nonbasic columns examined by simplex pricing — the scan work "+
			"partial pricing exists to cut.",
		func() float64 { return float64(lp.Stats().PricingScans) })
	reg.CounterFunc("vne_lp_refactorizations_total",
		"Total basis LU refactorizations across all LP solves.",
		func() float64 { return float64(lp.Stats().Refactorizations) })
	reg.CounterFunc("vne_plan_builds_total",
		"Completed PLAN-VNE builds.",
		func() float64 { return float64(plan.Stats().Builds) })
	warm := reg.CounterFuncVec("vne_plan_warm_starts_total",
		"Plan master-LP warm-start attempts by outcome.", "outcome")
	warm.With(func() float64 { return float64(plan.Stats().WarmHits) }, "hit")
	warm.With(func() float64 {
		st := plan.Stats()
		return float64(st.WarmAttempts - st.WarmHits)
	}, "miss")
	price := reg.CounterFuncVec("vne_plan_pricing_total",
		"Dantzig–Wolfe pricing decisions by path: pool = served by the "+
			"batched candidate pool, oracle = exact min-cost embed.", "path")
	price.With(func() float64 { return float64(plan.Stats().PricePoolHits) }, "pool")
	price.With(func() float64 { return float64(plan.Stats().PriceOracleCalls) }, "oracle")

	return m
}
