// Package serve is the online request-serving layer of the reproduction:
// a long-running HTTP/JSON service that accepts virtual-network embedding
// requests against live substrate state and answers with accept/reject
// decisions, embeddings, costs and latency.
//
// The concurrency model is a sharded engine pool. A core.Engine is
// single-threaded by design (it owns mutable residual state and a warm
// path cache), so instead of locking one engine the server runs N shards,
// each owning its own substrate.State + embedder.Oracle + core.Engine and
// a serialized request queue. A deterministic ingress→shard router
// (FNV-1a over the ingress node) pins every ingress — and therefore every
// plan class, which is keyed by (app, ingress) — to exactly one shard.
// Queues are bounded; an arriving request that finds its shard's queue
// full is answered 429 (backpressure) instead of growing memory.
//
// With more than one shard the substrate capacity is partitioned: each
// shard's state starts at capacity/N, so the shards' independent
// admissions cannot jointly oversubscribe a physical element. This trades
// packing quality for throughput — a request one shard rejects might have
// fit in another shard's slice — and is the documented cost of scaling;
// -shards 1 is exact. The partition is elastic: Resize grows or shrinks
// the routable shard set at runtime, re-partitioning free capacity
// through serialized harvest/deposit operations (see resize.go).
//
// Time is slotted, like the simulator. In real-time mode a per-shard
// departure timer maps wall clock to slots (Options.SlotDuration) and
// releases expired embeddings at slot boundaries. In deterministic mode
// (Options.Deterministic) there are no timers: the virtual clock advances
// only through the Arrive field of the requests themselves, so the
// accept/reject sequence for a given request stream is a pure function of
// the stream — byte-reproducible across runs, which is what CI asserts.
//
// Serving with OLIVE can additionally replan online (Options.Replan): the
// shards feed a rolling request history, a background rebuild aggregates
// it into fresh plan classes off the request path, and the new plan is
// hot-swapped generation-by-generation without dropping a request (see
// replan.go).
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/obs"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/vnet"
)

// Limits groups the admission-control knobs: how much work the server
// queues and how much it lets in.
type Limits struct {
	// QueueDepth bounds each shard's request queue (default 256). A full
	// queue answers 429.
	QueueDepth int
	// RateLimit configures admission token buckets in front of the shard
	// queues (see limit.go). The zero value disables limiting. The
	// limiter consults the wall clock, so enabling it in deterministic
	// mode makes admission — though never a post-admission decision —
	// timing-dependent.
	RateLimit RateLimit
}

// Observability groups the instrumentation wiring.
type Observability struct {
	// Registry receives the server's metric families (GET /metrics). Nil
	// constructs a private registry, retrievable via Metrics(). All
	// instrumentation is passive — it observes decisions, it never
	// influences them — so metrics on/off cannot change an accept/reject
	// sequence (serve tests assert exactly that).
	Registry *obs.Registry
	// DisableMetrics turns instrumentation off entirely: no registry, no
	// /metrics route, zero per-request observation work.
	DisableMetrics bool
	// AccessLog, when set, receives one structured line per HTTP request
	// (id, method, route, status, bytes, duration, client).
	AccessLog *slog.Logger
}

// Replan configures online replanning: the rolling request history the
// shards capture, and the background rebuild + hot-swap machinery that
// turns it into fresh plan generations. Requires OLIVE (the only
// plan-guided online algorithm).
type Replan struct {
	// Enabled turns on history capture and the POST /v1/admin/replan
	// trigger. Implied by a positive Interval.
	Enabled bool
	// Interval is the automatic rebuild cadence. It needs a wall clock,
	// so it only ticks in real-time mode; in deterministic mode rebuilds
	// happen solely through the admin trigger, which is synchronous and
	// therefore ordered — and reproducible — within a replayed request
	// stream. Zero means trigger-only.
	Interval time.Duration
	// HistoryDepth bounds each shard's history ring (default 4096
	// requests). Smaller rings forget faster: the rebuilt plan tracks
	// recent traffic more aggressively.
	HistoryDepth int
	// MinHistory is the minimum total captured requests a rebuild needs;
	// triggers below it are skipped (default 64).
	MinHistory int
	// Plan overrides the rebuild's plan-construction options; the zero
	// value means plan.DefaultOptions().
	Plan plan.Options
	// Seed derives each rebuild's aggregation-bootstrap rng stream
	// (PCG(Seed, generation)), so generation g's rebuild is a pure
	// function of the captured history.
	Seed uint64
}

// Options configures a Server.
type Options struct {
	// Shards is the number of engine shards (default 1). Each shard owns
	// an independent substrate state holding 1/Shards of every element's
	// capacity. Resizable at runtime via Server.Resize.
	Shards int
	// Algorithm selects the embedding algorithm (default OLIVE when Plan
	// is set, QUICKG otherwise). SLOTOFF is batch-only and rejected.
	Algorithm core.Algorithm
	// Plan is the PLAN-VNE plan guiding OLIVE (generation 0 when
	// replanning is on). Ignored by QUICKG/FULLG.
	Plan *plan.Plan
	// Engine carries ablation switches forwarded to every shard's engine
	// (Plan and Exact are overwritten from Algorithm/Plan).
	Engine core.Options
	// SlotDuration maps wall-clock time to slots in real-time mode
	// (default 1s). Departure timers fire on slot boundaries.
	SlotDuration time.Duration
	// Deterministic disables the wall-clock timers: slots advance only
	// via request Arrive fields, making the decision sequence a pure
	// function of the request stream.
	Deterministic bool

	// Limits groups the admission-control knobs.
	Limits Limits
	// Replan configures online replanning (disabled by default).
	Replan Replan
	// Observability groups the instrumentation wiring.
	Observability Observability

	// QueueDepth is a deprecated alias for Limits.QueueDepth, honored
	// when the nested field is unset.
	QueueDepth int
	// RateLimit is a deprecated alias for Limits.RateLimit, honored when
	// the nested field is unset.
	RateLimit RateLimit
	// Registry is a deprecated alias for Observability.Registry, honored
	// when the nested field is unset.
	Registry *obs.Registry
	// DisableMetrics is a deprecated alias for
	// Observability.DisableMetrics (either set disables).
	DisableMetrics bool
	// AccessLog is a deprecated alias for Observability.AccessLog,
	// honored when the nested field is unset.
	AccessLog *slog.Logger

	// testHookProcess, when set, runs on the shard goroutine before each
	// embed is processed. Package tests use it to stall a shard
	// deterministically (backpressure, drain); nil in production.
	testHookProcess func(shard int)
}

func (o *Options) normalize() error {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	// Resolve the deprecated flat aliases into their sections. The rest
	// of the package reads only the nested fields.
	if o.Limits.QueueDepth <= 0 {
		o.Limits.QueueDepth = o.QueueDepth
	}
	if o.Limits.QueueDepth <= 0 {
		o.Limits.QueueDepth = 256
	}
	if !o.Limits.RateLimit.enabled() {
		o.Limits.RateLimit = o.RateLimit
	}
	if o.Observability.Registry == nil {
		o.Observability.Registry = o.Registry
	}
	o.Observability.DisableMetrics = o.Observability.DisableMetrics || o.DisableMetrics
	if o.Observability.AccessLog == nil {
		o.Observability.AccessLog = o.AccessLog
	}
	if o.SlotDuration <= 0 {
		o.SlotDuration = time.Second
	}
	if o.Algorithm == "" {
		if !o.Plan.Empty() {
			o.Algorithm = core.AlgoOLIVE
		} else {
			o.Algorithm = core.AlgoQuickG
		}
	}
	switch o.Algorithm {
	case core.AlgoOLIVE:
		if o.Plan.Empty() {
			return errors.New("serve: OLIVE needs a plan (use QUICKG for plan-less serving)")
		}
	case core.AlgoQuickG, core.AlgoFullG:
		// plan-less
	case core.AlgoSlotOff:
		return errors.New("serve: SLOTOFF is a batch baseline, not servable online")
	default:
		return fmt.Errorf("serve: unknown algorithm %q", o.Algorithm)
	}
	if o.Replan.Interval > 0 {
		o.Replan.Enabled = true
	}
	if o.Replan.Enabled {
		if o.Algorithm != core.AlgoOLIVE {
			return fmt.Errorf("serve: replanning requires OLIVE (got %s)", o.Algorithm)
		}
		if o.Replan.HistoryDepth <= 0 {
			o.Replan.HistoryDepth = 4096
		}
		if o.Replan.MinHistory <= 0 {
			o.Replan.MinHistory = 64
		}
		if o.Replan.Plan.Quantiles == 0 {
			o.Replan.Plan = plan.DefaultOptions()
		}
	}
	return nil
}

// Server is the sharded online embedding service. Construct with New,
// expose via Handler, stop with Drain.
type Server struct {
	g    *graph.Graph
	apps []*vnet.App
	opts Options

	// all holds every shard ever created (append-only, copy-on-write);
	// route holds the shards new embeds hash onto. A shrink retires the
	// routing tail but keeps the shards running — they still own live
	// embeddings and serve their releases — and a later grow revives
	// retired shards (with whatever capacity drained back onto them)
	// before creating fresh ones.
	all   atomic.Pointer[[]*shard]
	route atomic.Pointer[[]*shard]

	eopts   core.Options // resolved engine options new shards are built with
	nextID  atomic.Int64
	started time.Time

	// curPlan/planGen are the latest published plan and its generation
	// (0 = the construction plan). Shards adopt asynchronously; their
	// individually adopted generation is in shard.gen.
	curPlan atomic.Pointer[plan.Plan]
	planGen atomic.Int64
	replan  *replanner // nil unless Options.Replan.Enabled

	draining  atomic.Bool
	drainOnce sync.Once
	drainDone chan struct{}
	inflight  sync.WaitGroup // HTTP requests between admission and reply
	timerStop context.CancelFunc
	timerWG   sync.WaitGroup
	shardWG   sync.WaitGroup
	resizeMu  sync.Mutex // serializes Resize; TryLock answers 409

	lat     *latencyRing
	revMu   sync.Mutex
	revenue float64

	met     *serverMetrics // nil when Options.Observability.DisableMetrics
	limiter *rateLimiter   // nil unless Options.Limits.RateLimit is enabled
	log     *slog.Logger   // nil unless Options.Observability.AccessLog is set

	// Shed counters for requests refused before reaching a shard queue
	// (queue-full sheds are per-shard, on the shard struct).
	shedGlobal   atomic.Int64
	shedClient   atomic.Int64
	shedDraining atomic.Int64
}

// allShards returns every shard ever created, retired ones included.
func (s *Server) allShards() []*shard { return *s.all.Load() }

// routeShards returns the shards new embeds are routed to.
func (s *Server) routeShards() []*shard { return *s.route.Load() }

// New builds a server over substrate g and application set apps. The
// shards' engines are constructed eagerly so misconfiguration (e.g. OLIVE
// without a plan) fails here, not on the first request.
func New(g *graph.Graph, apps []*vnet.App, opts Options) (*Server, error) {
	if g == nil || len(apps) == 0 {
		return nil, errors.New("serve: server needs a substrate and applications")
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	eopts := opts.Engine
	eopts.Plan = nil
	eopts.Exact = opts.Algorithm == core.AlgoFullG
	if opts.Algorithm == core.AlgoOLIVE {
		eopts.Plan = opts.Plan
	}

	s := &Server{
		g:         g,
		apps:      apps,
		opts:      opts,
		eopts:     eopts,
		started:   time.Now(),
		drainDone: make(chan struct{}),
		lat:       newLatencyRing(8192),
	}
	s.curPlan.Store(opts.Plan)
	// Construct every shard before spawning any goroutine, so a failed
	// construction leaks nothing.
	var shards []*shard
	for i := 0; i < opts.Shards; i++ {
		sh, err := s.buildShard(i, 1/float64(opts.Shards))
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	s.all.Store(&shards)
	s.route.Store(&shards)
	if opts.Limits.RateLimit.enabled() {
		s.limiter = newRateLimiter(opts.Limits.RateLimit)
	}
	s.log = opts.Observability.AccessLog
	if opts.Replan.Enabled {
		s.replan = newReplanner(s)
	}
	if !opts.Observability.DisableMetrics {
		reg := opts.Observability.Registry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		s.met = newServerMetrics(s, reg)
	}
	for _, sh := range shards {
		s.startShard(sh)
	}
	if !opts.Deterministic {
		ctx, cancel := context.WithCancel(context.Background())
		s.timerStop = cancel
		s.timerWG.Add(1)
		go s.departureTimer(ctx)
		if s.replan != nil && opts.Replan.Interval > 0 {
			s.replan.startTicker(opts.Replan.Interval)
		}
	}
	return s, nil
}

// buildShard constructs (but does not start) one shard holding the given
// fraction of the substrate capacity, running the currently published
// plan generation.
func (s *Server) buildShard(idx int, capFraction float64) (*shard, error) {
	st := substrate.New(s.g)
	eopts := s.eopts
	if s.opts.Algorithm == core.AlgoOLIVE {
		eopts.Plan = s.curPlan.Load()
	}
	eng, err := core.NewEngineOn(embedder.ForState(st), s.apps, eopts)
	if err != nil {
		return nil, err
	}
	if capFraction != 1 {
		st.ScaleResidual(capFraction)
	}
	sh := newShard(idx, eng, st, s.opts.Limits.QueueDepth)
	sh.hook = s.opts.testHookProcess
	sh.gen.Store(s.planGen.Load())
	if s.opts.Replan.Enabled {
		sh.hist = newHistoryRing(s.opts.Replan.HistoryDepth)
	}
	return sh, nil
}

// startShard launches a shard's run loop under the shard wait group.
func (s *Server) startShard(sh *shard) {
	s.shardWG.Add(1)
	go func() {
		defer s.shardWG.Done()
		sh.run()
	}()
}

// shardOf routes an ingress node to its shard: FNV-1a over the node ID,
// modulo the current routing table. The mapping is stable for a fixed
// shard count, so plan classes (keyed by app × ingress) always land on
// the same shard between resizes.
func (s *Server) shardOf(ingress graph.NodeID) *shard {
	route := s.routeShards()
	if len(route) == 1 {
		return route[0]
	}
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(ingress)
	b[1] = byte(ingress >> 8)
	b[2] = byte(ingress >> 16)
	b[3] = byte(ingress >> 24)
	h.Write(b[:])
	return route[h.Sum32()%uint32(len(route))]
}

// departureTimer advances every shard's clock once per slot so expired
// embeddings are released even when no requests arrive. Sends are
// non-blocking: a shard busy enough to have a full advance mailbox will
// catch up on the next tick (advances carry the absolute slot).
func (s *Server) departureTimer(ctx context.Context) {
	defer s.timerWG.Done()
	tick := time.NewTicker(s.opts.SlotDuration)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			slot := int(now.Sub(s.started) / s.opts.SlotDuration)
			for _, sh := range s.allShards() {
				sh.tryAdvance(slot)
			}
		}
	}
}

// uptime is the time since construction.
func (s *Server) uptime() time.Duration { return time.Since(s.started) }

// queueShed sums the per-shard queue-full shed counters.
func (s *Server) queueShed() int64 {
	var t int64
	for _, sh := range s.allShards() {
		t += sh.shed.Load()
	}
	return t
}

// Metrics returns the server's metric registry (the one behind GET
// /metrics), or nil when Options.Observability.DisableMetrics is set.
func (s *Server) Metrics() *obs.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// clockSlot returns the current real-time slot (0 in deterministic mode;
// the virtual clock lives in the shards).
func (s *Server) clockSlot() int {
	if s.opts.Deterministic {
		return 0
	}
	return int(time.Since(s.started) / s.opts.SlotDuration)
}

// Drain gracefully stops the server: new requests are refused with 503,
// every admitted request still receives its decision, departure timers
// and the replan ticker stop, and the shard loops exit after emptying
// their queues. The context bounds the wait. Drain is idempotent and safe
// to call concurrently: every caller — first or not — blocks until the
// drain completes (or its own context expires).
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		go func() {
			s.inflight.Wait()
			if s.timerStop != nil {
				s.timerStop()
			}
			s.timerWG.Wait()
			if s.replan != nil {
				s.replan.stopTicker()
			}
			for _, sh := range s.allShards() {
				close(sh.queue)
			}
			s.shardWG.Wait()
			close(s.drainDone)
		}()
	})
	select {
	case <-s.drainDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}
