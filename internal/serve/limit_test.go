package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// fakeClock is an injectable clock for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(l *rateLimiter, c *fakeClock) *rateLimiter {
	l.now = c.now
	return l
}

// TestRateLimiterBurstAndRefill: a fresh bucket admits exactly Burst
// requests back-to-back, then refills at RPS.
func TestRateLimiterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := withClock(newRateLimiter(RateLimit{RPS: 10, Burst: 3}), clk)

	for i := 0; i < 3; i++ {
		if ok, _, _ := l.allow("a"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, reason, retry := l.allow("a")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if reason != limitGlobal {
		t.Fatalf("reason = %q, want %q", reason, limitGlobal)
	}
	// Empty bucket at 10 rps: the next token is 100ms away.
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms", retry)
	}

	clk.advance(100 * time.Millisecond) // one token refilled
	if ok, _, _ := l.allow("a"); !ok {
		t.Fatal("rejected after refill")
	}
	if ok, _, _ := l.allow("a"); ok {
		t.Fatal("second request after a one-token refill admitted")
	}

	clk.advance(time.Hour) // refill caps at Burst, not at RPS·dt
	for i := 0; i < 3; i++ {
		if ok, _, _ := l.allow("a"); !ok {
			t.Fatalf("request %d of the recapped burst rejected", i)
		}
	}
	if ok, _, _ := l.allow("a"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestRateLimiterPerClientIsolation: one hot client exhausting its own
// bucket must not consume another client's tokens, and a client-bucket
// shed must not burn a global token.
func TestRateLimiterPerClientIsolation(t *testing.T) {
	clk := newFakeClock()
	l := withClock(newRateLimiter(RateLimit{
		RPS: 100, Burst: 100,
		PerClientRPS: 1, PerClientBurst: 2,
	}), clk)

	for i := 0; i < 2; i++ {
		if ok, _, _ := l.allow("hot"); !ok {
			t.Fatalf("hot client request %d rejected within its burst", i)
		}
	}
	before := l.globalTokens()
	ok, reason, _ := l.allow("hot")
	if ok || reason != limitClient {
		t.Fatalf("hot client beyond burst: ok=%v reason=%q, want client-limited", ok, reason)
	}
	if got := l.globalTokens(); got != before {
		t.Fatalf("client-bucket shed burned a global token (%g → %g)", before, got)
	}
	// The other client is untouched.
	if ok, _, _ := l.allow("cold"); !ok {
		t.Fatal("cold client rejected while hot client is limited")
	}
}

// TestRateLimiterGlobalOnly and client-only configurations both work,
// and the zero value disables limiting.
func TestRateLimiterConfigs(t *testing.T) {
	if (RateLimit{}).enabled() {
		t.Fatal("zero RateLimit reports enabled")
	}
	clk := newFakeClock()
	l := withClock(newRateLimiter(RateLimit{PerClientRPS: 1}), clk)
	if ok, _, _ := l.allow("x"); !ok {
		t.Fatal("client-only limiter rejected the first request")
	}
	ok, reason, _ := l.allow("x")
	if ok || reason != limitClient {
		t.Fatalf("client-only limiter: ok=%v reason=%q", ok, reason)
	}
}

// TestRateLimiterEviction: the client table stays bounded, and an
// evicted client re-enters with a full (never an emptier) bucket.
func TestRateLimiterEviction(t *testing.T) {
	clk := newFakeClock()
	l := withClock(newRateLimiter(RateLimit{PerClientRPS: 1, PerClientBurst: 1, MaxClients: 16}), clk)
	for i := 0; i < 100; i++ {
		clk.advance(time.Millisecond) // distinct idle timestamps
		l.allow(string(rune('A' + i%64)))
	}
	l.mu.Lock()
	n := len(l.clients)
	l.mu.Unlock()
	if n > 16 {
		t.Fatalf("client table grew to %d, cap is 16", n)
	}
}

// TestRateLimit429Shape exercises the HTTP surface: a limited request
// gets 429 with a Retry-After header and a retry_after_ms body field,
// counted as rate_limited (not queue shed) in /v1/stats, with the
// request ID echoed back.
func TestRateLimit429Shape(t *testing.T) {
	s, ts := testServer(t, Options{
		Deterministic: true,
		RateLimit:     RateLimit{RPS: 1, Burst: 1},
	})

	body, _ := json.Marshal(EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1})
	resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200 (burst of 1)", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response without an X-Request-ID header")
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != ErrCodeRateLimited {
		t.Fatalf("429 code = %q, want %q", er.Error.Code, ErrCodeRateLimited)
	}
	if er.Error.Message == "" || er.Error.RetryAfterMS <= 0 {
		t.Fatalf("429 body = %+v, want a message and a positive retry_after_ms", er)
	}

	st := s.Stats()
	if st.Requests.RateLimited != 1 {
		t.Fatalf("stats rate_limited = %d, want 1", st.Requests.RateLimited)
	}
	if st.Requests.Shed != 0 {
		t.Fatalf("stats shed = %d, want 0 (limiter fired, queues never filled)", st.Requests.Shed)
	}
	if st.Requests.Total != 1 {
		t.Fatalf("stats total = %d, want 1 (the shed request never reached an engine)", st.Requests.Total)
	}
}

// TestRateLimitPerClientHTTP: clients are keyed by X-Client-ID, so one
// client hitting its limit leaves another unaffected.
func TestRateLimitPerClientHTTP(t *testing.T) {
	_, ts := testServer(t, Options{
		Deterministic: true,
		RateLimit:     RateLimit{PerClientRPS: 0.001, PerClientBurst: 1},
	})
	post := func(client string) int {
		body, _ := json.Marshal(EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/embed", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("alice"); code != http.StatusOK {
		t.Fatalf("alice #1 = %d, want 200", code)
	}
	if code := post("alice"); code != http.StatusTooManyRequests {
		t.Fatalf("alice #2 = %d, want 429", code)
	}
	if code := post("bob"); code != http.StatusOK {
		t.Fatalf("bob = %d, want 200 (alice's limit must not leak)", code)
	}
}
