package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// testServer builds a deterministic QUICKG server over the Iris topology
// and an httptest front end. The caller must call the returned cleanup.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	s, err := New(g, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postEmbed(t *testing.T, url string, er EmbedRequest) (*http.Response, EmbedResponse) {
	t.Helper()
	body, _ := json.Marshal(er)
	resp, err := http.Post(url+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out EmbedResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// testStream generates a canned request stream from the Iris MMPP
// workload at a fixed seed: real arrival slots, real demands.
func testStream(t *testing.T, n int) []StreamRequest {
	t.Helper()
	g := topo.MustBuild(topo.Iris, 1)
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 120
	wp.LambdaPerNode = 3
	wp.NumApps = 4
	wp.DemandMean = 1.0 * 100 / 3
	tr, err := workload.GenerateMMPP(g, wp, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) < n {
		t.Fatalf("trace holds %d requests, want ≥ %d", len(tr.Requests), n)
	}
	reqs := make([]StreamRequest, n)
	for i, r := range tr.Requests[:n] {
		reqs[i] = StreamRequest{
			App: r.App, Ingress: int(r.Ingress), Demand: r.Demand,
			Duration: r.Duration, Arrive: r.Arrive,
		}
	}
	return reqs
}

func TestEmbedAcceptAndReleaseByHandle(t *testing.T) {
	_, ts := testServer(t, Options{Deterministic: true})
	resp, out := postEmbed(t, ts.URL, EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/embed = %d, want 200", resp.StatusCode)
	}
	if !out.Accepted {
		t.Fatal("tiny request rejected on an empty substrate")
	}
	if out.Cost <= 0 {
		t.Fatalf("accepted with cost %g, want > 0", out.Cost)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/embeddings/%d", ts.URL, out.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rel ReleaseResponse
	json.NewDecoder(dresp.Body).Decode(&rel)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !rel.Released {
		t.Fatalf("DELETE = %d released=%v, want 200 released", dresp.StatusCode, rel.Released)
	}
	// Releasing again: gone.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/embeddings/%d", ts.URL, out.ID), nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", dresp.StatusCode)
	}
}

func TestEmbedValidation(t *testing.T) {
	_, ts := testServer(t, Options{Deterministic: true})
	bad := []EmbedRequest{
		{App: 99, Ingress: 0, Demand: 1, Duration: 1},
		{App: 0, Ingress: -1, Demand: 1, Duration: 1},
		{App: 0, Ingress: 0, Demand: 0, Duration: 1},
		{App: 0, Ingress: 0, Demand: 1, Duration: 0},
	}
	for i, er := range bad {
		resp, _ := postEmbed(t, ts.URL, er)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d = %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestConcurrentPosts hammers a 2-shard server from many goroutines; run
// under -race this is the data-race probe for the queue/stats paths.
func TestConcurrentPosts(t *testing.T) {
	s, ts := testServer(t, Options{Shards: 2, Deterministic: true})
	stream := testStream(t, 200)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += workers {
				body, _ := json.Marshal(stream[i])
				resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("request %d: HTTP %d", i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Requests.Total != int64(len(stream)) {
		t.Fatalf("stats total = %d, want %d", st.Requests.Total, len(stream))
	}
	if st.Requests.Accepted == 0 {
		t.Fatal("no request accepted")
	}
	var perShard int64
	for _, ss := range st.PerShard {
		perShard += ss.Processed
	}
	if perShard != st.Requests.Total {
		t.Fatalf("per-shard sum %d ≠ total %d", perShard, st.Requests.Total)
	}
}

// TestBackpressure429 stalls the single shard, fills its depth-1 queue
// and checks the next request bounces with 429 instead of queueing. The
// queue is filled directly (not via a racing second client): a client
// whose request IS admitted blocks awaiting its decision, so any
// admission here would deadlock the test.
func TestBackpressure429(t *testing.T) {
	stall := make(chan struct{})
	closeStall := sync.OnceFunc(func() { close(stall) })
	defer closeStall()
	entered := make(chan struct{}, 1)
	var once sync.Once
	opts := Options{
		Deterministic: true,
		QueueDepth:    1,
		testHookProcess: func(int) {
			once.Do(func() {
				entered <- struct{}{}
				<-stall
			})
		},
	}
	s, ts := testServer(t, opts)

	er := EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1}
	first := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(er)
		resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // the shard is stalled inside the first request

	// Fill the depth-1 queue deterministically with a no-op release.
	filler := op{kind: opRelease, id: -1, reply: make(chan result, 1)}
	s.allShards()[0].queue <- filler

	// Queue full: the next request must bounce synchronously with 429.
	resp, _ := postEmbed(t, ts.URL, er)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST with full queue = %d, want 429", resp.StatusCode)
	}

	closeStall()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("stalled request finished with %d, want 200", code)
	}
	<-filler.reply
}

// TestGracefulDrain checks Drain refuses new work with 503 but completes
// the decisions already admitted.
func TestGracefulDrain(t *testing.T) {
	stall := make(chan struct{})
	closeStall := sync.OnceFunc(func() { close(stall) })
	defer closeStall()
	entered := make(chan struct{}, 1)
	var once sync.Once
	opts := Options{
		Deterministic: true,
		testHookProcess: func(int) {
			once.Do(func() {
				entered <- struct{}{}
				<-stall
			})
		},
	}
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	s, err := New(g, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	er := EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1}
	inflight := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(er)
		resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered // the in-flight request is inside the shard

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Wait for Drain to flip the flag (it does so synchronously on
	// entry) before probing: a request posted in the pre-drain window
	// would be admitted and block on the stalled shard.
	deadline := time.Now().Add(10 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started refusing requests")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postEmbed(t, ts.URL, er); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	// The stalled request still completes with a decision.
	closeStall()
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicDecisionSequence runs the same canned stream against
// two fresh single-shard fixed-seed servers and requires byte-identical
// decision sequences — the property the CI golden job leans on.
func TestDeterministicDecisionSequence(t *testing.T) {
	stream := testStream(t, 150)
	run := func() string {
		_, ts := testServer(t, Options{Shards: 1, Deterministic: true})
		var buf bytes.Buffer
		if err := Replay(nil, ts.URL, stream, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("decision sequences differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	// The sequence must contain at least one accept and, at util 1.0 on
	// a shared substrate, typically rejects too; assert non-trivially.
	if !bytes.Contains([]byte(a), []byte("accepted=1")) {
		t.Fatal("no accepts in the decision sequence")
	}
}

// TestDepartureTimerReleases checks real-time mode: an embedding with a
// 1-slot lifetime is released by the departure timer without any further
// requests arriving.
func TestDepartureTimerReleases(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	s, err := New(g, apps, Options{SlotDuration: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postEmbed(t, ts.URL, EmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 1})
	if resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("POST = %d accepted=%v, want 200 accepted", resp.StatusCode, out.Accepted)
	}
	deadline := time.After(10 * time.Second)
	for {
		var active int64
		for _, ss := range s.Stats().PerShard {
			active += ss.Active
		}
		if active == 0 {
			return // released by the timer
		}
		select {
		case <-deadline:
			t.Fatal("departure timer never released the embedding")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestSlotOffRejected: SLOTOFF is batch-only.
func TestSlotOffRejected(t *testing.T) {
	g := topo.MustBuild(topo.Iris, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	if _, err := New(g, apps, Options{Algorithm: core.AlgoSlotOff}); err == nil {
		t.Fatal("New accepted SLOTOFF")
	}
	if _, err := New(g, apps, Options{Algorithm: core.AlgoOLIVE}); err == nil {
		t.Fatal("New accepted OLIVE without a plan")
	}
}
