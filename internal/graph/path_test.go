package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomConnected builds a random connected graph with n nodes and extra
// random links, unit capacities, and link costs in [1, 10).
func randomConnected(n int, extra int, rng *rand.Rand) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(Node{Cap: 1, Tier: TierEdge})
	}
	for i := 1; i < n; i++ {
		g.AddLink(NodeID(i), NodeID(rng.IntN(i)), 1, 1+rng.Float64()*9)
	}
	for k := 0; k < extra; k++ {
		a, b := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if a != b {
			g.AddLink(a, b, 1, 1+rng.Float64()*9)
		}
	}
	return g
}

// Property: Dijkstra distances satisfy the triangle inequality
// d(a,c) ≤ d(a,b) + d(b,c) and symmetry on undirected graphs.
func TestDijkstraMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	g := randomConnected(24, 20, rng)
	ap := g.AllPairsShortestPaths(CostWeight)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := NodeID(int(aRaw) % g.NumNodes())
		b := NodeID(int(bRaw) % g.NumNodes())
		c := NodeID(int(cRaw) % g.NumNodes())
		dab, dbc, dac := ap.Dist(a, b), ap.Dist(b, c), ap.Dist(a, c)
		if math.Abs(ap.Dist(a, b)-ap.Dist(b, a)) > 1e-9 {
			return false
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reconstructed shortest path's link costs sum to the
// reported distance, and consecutive links are adjacent.
func TestShortestPathInternalConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(16, 12, rng)
		ap := g.AllPairsShortestPaths(CostWeight)
		for a := 0; a < g.NumNodes(); a++ {
			for b := 0; b < g.NumNodes(); b++ {
				p, ok := ap.Path(NodeID(a), NodeID(b))
				if !ok {
					t.Fatalf("trial %d: no path %d→%d in connected graph", trial, a, b)
				}
				var sum float64
				cur := NodeID(a)
				for _, lid := range p.Links {
					l := g.Link(lid)
					if l.From != cur && l.To != cur {
						t.Fatalf("trial %d: path %d→%d link %d not incident to %d", trial, a, b, lid, cur)
					}
					cur = l.Other(cur)
					sum += l.Cost
				}
				if cur != NodeID(b) {
					t.Fatalf("trial %d: path %d→%d ends at %d", trial, a, b, cur)
				}
				if math.Abs(sum-ap.Dist(NodeID(a), NodeID(b))) > 1e-9 {
					t.Fatalf("trial %d: path cost %g ≠ dist %g", trial, sum, ap.Dist(NodeID(a), NodeID(b)))
				}
			}
		}
	}
}

// Property: KShortestPaths costs are non-decreasing and all paths connect
// src to dst without node repetition.
func TestKShortestPathsProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(12, 14, rng)
		src := NodeID(rng.IntN(g.NumNodes()))
		dst := NodeID(rng.IntN(g.NumNodes()))
		if src == dst {
			continue
		}
		paths := g.KShortestPaths(src, dst, 5, CostWeight)
		if len(paths) == 0 {
			t.Fatalf("trial %d: no paths in connected graph", trial)
		}
		for i, p := range paths {
			if p.Src() != src || p.Dst() != dst {
				t.Fatalf("trial %d: path %d endpoints (%d,%d)", trial, i, p.Src(), p.Dst())
			}
			if i > 0 && p.Cost < paths[i-1].Cost-1e-9 {
				t.Fatalf("trial %d: costs not sorted: %g after %g", trial, p.Cost, paths[i-1].Cost)
			}
			seen := map[NodeID]bool{}
			for _, n := range p.Nodes {
				if seen[n] {
					t.Fatalf("trial %d: path %d revisits node %d", trial, i, n)
				}
				seen[n] = true
			}
		}
		// Paths must be pairwise distinct.
		for i := range paths {
			for j := i + 1; j < len(paths); j++ {
				if samePath(paths[i], paths[j]) {
					t.Fatalf("trial %d: duplicate paths %d and %d", trial, i, j)
				}
			}
		}
	}
}

func TestPathFromLinksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	g := randomConnected(20, 15, rng)
	ap := g.AllPairsShortestPaths(CostWeight)
	for a := 0; a < g.NumNodes(); a += 3 {
		for b := 0; b < g.NumNodes(); b += 4 {
			want, _ := ap.Path(NodeID(a), NodeID(b))
			got, err := g.PathFromLinks(NodeID(a), want.Links, CostWeight)
			if err != nil {
				t.Fatalf("PathFromLinks(%d,%v): %v", a, want.Links, err)
			}
			if got.Dst() != want.Dst() || math.Abs(got.Cost-want.Cost) > 1e-9 {
				t.Fatalf("round trip (%d→%d): got dst %d cost %g, want %d %g",
					a, b, got.Dst(), got.Cost, want.Dst(), want.Cost)
			}
		}
	}
}

func TestPathFromLinksErrors(t *testing.T) {
	g := New()
	g.AddNode(Node{Cap: 1})
	g.AddNode(Node{Cap: 1})
	g.AddNode(Node{Cap: 1})
	l01 := g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)

	if _, err := g.PathFromLinks(9, nil, CostWeight); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := g.PathFromLinks(0, []LinkID{99}, CostWeight); err == nil {
		t.Error("out-of-range link accepted")
	}
	// Link 0-1 is not incident to node 2.
	if _, err := g.PathFromLinks(2, []LinkID{l01}, CostWeight); err == nil {
		t.Error("non-adjacent link accepted")
	}
	// Empty path is valid.
	p, err := g.PathFromLinks(1, nil, CostWeight)
	if err != nil || p.Len() != 0 || p.Src() != 1 {
		t.Fatalf("empty path: %+v, %v", p, err)
	}
}

func TestHopWeight(t *testing.T) {
	g := New()
	g.AddNode(Node{Cap: 1})
	g.AddNode(Node{Cap: 1})
	g.AddLink(0, 1, 1, 500) // expensive but one hop
	p, ok := g.ShortestPath(0, 1, HopWeight)
	if !ok || p.Cost != 1 {
		t.Fatalf("hop path cost %g, want 1", p.Cost)
	}
}
