package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestCSRMatchesReferenceAdjacency property-tests the packed CSR layout
// against a reference adjacency built directly from the link list:
// identical degrees, identical per-node incident sequences (CSR must
// preserve insertion order — Dijkstra's tie-breaking depends on it),
// correct opposite endpoints, and identical shortest-path costs against
// a brute-force Bellman–Ford.
func TestCSRMatchesReferenceAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(Node{Cap: 1, Cost: 1})
		}
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(NodeID(a), NodeID(b), 1, 1)
			}
		}

		// Reference: incident links per node in insertion order.
		ref := make([][]LinkID, n)
		for lid := 0; lid < g.NumLinks(); lid++ {
			l := g.Link(LinkID(lid))
			ref[l.From] = append(ref[l.From], l.ID)
			ref[l.To] = append(ref[l.To], l.ID)
		}

		for u := 0; u < n; u++ {
			inc := g.Incident(NodeID(u))
			if g.Degree(NodeID(u)) != len(ref[u]) || len(inc) != len(ref[u]) {
				t.Fatalf("trial %d: node %d degree CSR=%d ref=%d", trial, u, len(inc), len(ref[u]))
			}
			adj := g.adjacency()
			for k, lid := range inc {
				if lid != ref[u][k] {
					t.Fatalf("trial %d: node %d incident[%d] CSR=%d ref=%d (order must be insertion order)",
						trial, u, k, lid, ref[u][k])
				}
				l := g.Link(lid)
				other := adj.other[int(adj.off[u])+k]
				if want := l.From + l.To - NodeID(u); other != want {
					t.Fatalf("trial %d: CSR other endpoint of link %d at node %d: got %d want %d",
						trial, lid, u, other, want)
				}
			}
		}

		// Mutation after a CSR build must invalidate it.
		g.Incident(0)
		w := g.AddLink(0, NodeID(1), 1, 1)
		found := false
		for _, lid := range g.Incident(0) {
			if lid == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: CSR stale after AddLink", trial)
		}

		// Shortest-path costs vs Bellman–Ford over the raw link list.
		lw := make([]float64, g.NumLinks())
		for i := range lw {
			lw[i] = 0.1 + rng.Float64()
		}
		src := NodeID(rng.Intn(n))
		tree := g.DijkstraLinkWeightsInto(nil, src, lw)
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		for it := 0; it < n; it++ {
			for lid := 0; lid < g.NumLinks(); lid++ {
				l := g.Link(LinkID(lid))
				if d := dist[l.From] + lw[lid]; d < dist[l.To] {
					dist[l.To] = d
				}
				if d := dist[l.To] + lw[lid]; d < dist[l.From] {
					dist[l.From] = d
				}
			}
		}
		for i := range dist {
			if math.Abs(tree.Dist[i]-dist[i]) > 1e-12 && !(math.IsInf(tree.Dist[i], 1) && math.IsInf(dist[i], 1)) {
				t.Fatalf("trial %d: dist %d→%d CSR-Dijkstra %v != Bellman-Ford %v", trial, src, i, tree.Dist[i], dist[i])
			}
		}
	}
}
