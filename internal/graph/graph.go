// Package graph models the physical substrate network of the VNE problem:
// a connected graph of datacenters (nodes) and inter-datacenter links, each
// carrying a capacity and a per-capacity-unit usage cost. It also provides
// the path algorithms (Dijkstra, all-pairs shortest paths, Yen's k-shortest
// paths) that the planning and embedding layers are built on.
//
// Substrate elements — nodes and links — share a single flat index space
// (see ElementID) so that loads, capacities and residuals can be handled as
// plain vectors by the upper layers.
package graph

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Tier classifies a substrate node within the three-tier mobile access
// network architecture used throughout the paper's evaluation (§IV-A).
type Tier int

// Tiers, from the network edge inward. Numeric order matters: capacities
// grow by the inter-tier ratio from TierEdge to TierCore.
const (
	TierEdge Tier = iota + 1
	TierTransport
	TierCore
)

// String returns the lower-case tier name.
func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierTransport:
		return "transport"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// NodeID identifies a substrate node; IDs are dense indices 0..N-1.
type NodeID int

// LinkID identifies a substrate link; IDs are dense indices 0..L-1.
type LinkID int

// Node is a substrate datacenter.
type Node struct {
	ID   NodeID
	Name string
	Tier Tier
	// Cap is the node capacity in capacity units (CU).
	Cap float64
	// Cost is the usage cost per CU consumed on this node.
	Cost float64
	// GPU marks a dedicated GPU datacenter. GPU datacenters host GPU
	// VNFs exclusively; non-GPU VNFs are excluded via the inefficiency
	// coefficients (paper §II-A, §IV "GPU scenario").
	GPU bool
	// X, Y are optional layout coordinates (used only for rendering).
	X, Y float64
}

// Link is an undirected substrate link between two datacenters.
type Link struct {
	ID   LinkID
	From NodeID
	To   NodeID
	// Cap is the link capacity in CU.
	Cap float64
	// Cost is the usage cost per CU of traffic carried.
	Cost float64
}

// Other returns the endpoint of l opposite to n.
func (l Link) Other(n NodeID) NodeID {
	if l.From == n {
		return l.To
	}
	return l.From
}

// ElementID indexes a substrate element (node or link) in the flat element
// space of a Graph: nodes occupy [0, NumNodes) and links occupy
// [NumNodes, NumNodes+NumLinks).
type ElementID int

// csrAdj is the compressed-sparse-row adjacency of a graph: the incident
// links of node n are link[off[n]:off[n+1]], with other holding the
// opposite endpoints in parallel, so traversals walk contiguous memory
// instead of chasing one heap slice per node. Per-node order matches
// construction (AddLink) order exactly — Dijkstra's relaxation order,
// and with it every tie-break downstream, is unchanged. A csrAdj is
// immutable once published.
type csrAdj struct {
	off   []int32
	link  []LinkID
	other []NodeID
}

// Graph is an undirected substrate network. The zero value is an empty
// graph ready for AddNode/AddLink.
type Graph struct {
	nodes []Node
	links []Link
	// adj[n] lists the incident links of node n in insertion order; it
	// is the construction-time source of truth the CSR layout is packed
	// from.
	adj [][]LinkID
	// csr caches the packed adjacency, built lazily and invalidated by
	// AddNode/AddLink. Concurrent builders race benignly (identical
	// results, last write wins).
	csr atomic.Pointer[csrAdj]
}

// New returns an empty substrate graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node and returns its ID. The ID and adjacency are
// managed by the graph; any ID set on n is overwritten.
func (g *Graph) AddNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	g.csr.Store(nil)
	return n.ID
}

// AddLink appends an undirected link between from and to and returns its
// ID. It panics if either endpoint is out of range, since that is a
// programming error in topology construction.
func (g *Graph) AddLink(from, to NodeID, cap, cost float64) LinkID {
	if int(from) >= len(g.nodes) || int(to) >= len(g.nodes) || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: link endpoints (%d,%d) out of range [0,%d)", from, to, len(g.nodes)))
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, Cap: cap, Cost: cost})
	g.adj[from] = append(g.adj[from], id)
	g.adj[to] = append(g.adj[to], id)
	g.csr.Store(nil)
	return id
}

// adjacency returns the packed CSR adjacency, building it on first use.
func (g *Graph) adjacency() *csrAdj {
	if c := g.csr.Load(); c != nil {
		return c
	}
	n := len(g.nodes)
	c := &csrAdj{
		off:   make([]int32, n+1),
		link:  make([]LinkID, 2*len(g.links)),
		other: make([]NodeID, 2*len(g.links)),
	}
	pos := int32(0)
	for i := 0; i < n; i++ {
		c.off[i] = pos
		for _, lid := range g.adj[i] {
			c.link[pos] = lid
			c.other[pos] = g.links[lid].Other(NodeID(i))
			pos++
		}
	}
	c.off[n] = pos
	c.link = c.link[:pos]
	c.other = c.other[:pos]
	g.csr.Store(c)
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// NumElements returns the size of the flat element space (nodes + links).
func (g *Graph) NumElements() int { return len(g.nodes) + len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Nodes returns the node slice. The slice must not be mutated by callers;
// use SetNodeCap and friends to modify.
func (g *Graph) Nodes() []Node { return g.nodes }

// Links returns the link slice. The slice must not be mutated by callers.
func (g *Graph) Links() []Link { return g.links }

// Incident returns the IDs of links incident to node n, in insertion
// order — a view into the packed CSR adjacency. The returned slice must
// not be mutated.
func (g *Graph) Incident(n NodeID) []LinkID {
	c := g.adjacency()
	return c.link[c.off[n]:c.off[n+1]:c.off[n+1]]
}

// SetNodeCap overwrites the capacity of node id.
func (g *Graph) SetNodeCap(id NodeID, cap float64) { g.nodes[id].Cap = cap }

// SetNodeCost overwrites the per-CU cost of node id.
func (g *Graph) SetNodeCost(id NodeID, cost float64) { g.nodes[id].Cost = cost }

// SetNodeGPU marks or unmarks node id as a dedicated GPU datacenter.
func (g *Graph) SetNodeGPU(id NodeID, gpu bool) { g.nodes[id].GPU = gpu }

// SetLinkCap overwrites the capacity of link id.
func (g *Graph) SetLinkCap(id LinkID, cap float64) { g.links[id].Cap = cap }

// NodeElement maps a node ID into the flat element space.
func (g *Graph) NodeElement(id NodeID) ElementID { return ElementID(id) }

// LinkElement maps a link ID into the flat element space.
func (g *Graph) LinkElement(id LinkID) ElementID {
	return ElementID(len(g.nodes) + int(id))
}

// ElementIsNode reports whether element e is a node.
func (g *Graph) ElementIsNode(e ElementID) bool { return int(e) < len(g.nodes) }

// ElementNode returns the node behind element e; ok is false for links.
func (g *Graph) ElementNode(e ElementID) (NodeID, bool) {
	if g.ElementIsNode(e) {
		return NodeID(e), true
	}
	return 0, false
}

// ElementLink returns the link behind element e; ok is false for nodes.
func (g *Graph) ElementLink(e ElementID) (LinkID, bool) {
	if g.ElementIsNode(e) {
		return 0, false
	}
	return LinkID(int(e) - len(g.nodes)), true
}

// ElementCap returns the capacity of element e.
func (g *Graph) ElementCap(e ElementID) float64 {
	if n, ok := g.ElementNode(e); ok {
		return g.nodes[n].Cap
	}
	l, _ := g.ElementLink(e)
	return g.links[l].Cap
}

// ElementCost returns the per-CU cost of element e.
func (g *Graph) ElementCost(e ElementID) float64 {
	if n, ok := g.ElementNode(e); ok {
		return g.nodes[n].Cost
	}
	l, _ := g.ElementLink(e)
	return g.links[l].Cost
}

// ElementName returns a human-readable name for element e.
func (g *Graph) ElementName(e ElementID) string {
	if n, ok := g.ElementNode(e); ok {
		return g.nodes[n].Name
	}
	l, _ := g.ElementLink(e)
	lk := g.links[l]
	return fmt.Sprintf("%s--%s", g.nodes[lk.From].Name, g.nodes[lk.To].Name)
}

// Capacities returns a fresh vector over the flat element space holding
// every element's capacity. Upper layers copy this to track residuals.
func (g *Graph) Capacities() []float64 {
	return g.CapacitiesInto(nil)
}

// CapacitiesInto fills dst with every element's capacity, reusing dst's
// backing array when it is large enough, and returns the filled vector.
// Per-slot residual snapshots (SLOTOFF) use it to avoid one allocation per
// slot.
func (g *Graph) CapacitiesInto(dst []float64) []float64 {
	if cap(dst) < g.NumElements() {
		dst = make([]float64, g.NumElements())
	}
	dst = dst[:g.NumElements()]
	for i, n := range g.nodes {
		dst[i] = n.Cap
	}
	for i, l := range g.links {
		dst[len(g.nodes)+i] = l.Cap
	}
	return dst
}

// NodesByTier returns the IDs of all nodes in tier t, in ID order.
func (g *Graph) NodesByTier(t Tier) []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Tier == t {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// EdgeNodes returns the IDs of all edge-tier nodes (request ingress points).
func (g *Graph) EdgeNodes() []NodeID { return g.NodesByTier(TierEdge) }

// TotalCap sums the capacities of all nodes in tier t.
func (g *Graph) TotalCap(t Tier) float64 {
	var sum float64
	for _, n := range g.nodes {
		if n.Tier == t {
			sum += n.Cap
		}
	}
	return sum
}

// ErrDisconnected is returned by Validate for graphs that are not connected.
var ErrDisconnected = errors.New("graph: not connected")

// Validate checks structural invariants: at least one node, connectivity,
// strictly positive capacities, and non-negative costs.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph: no nodes")
	}
	if !g.Connected() {
		return ErrDisconnected
	}
	for _, n := range g.nodes {
		if n.Cap <= 0 {
			return fmt.Errorf("graph: node %q has non-positive capacity %g", n.Name, n.Cap)
		}
		if n.Cost < 0 {
			return fmt.Errorf("graph: node %q has negative cost %g", n.Name, n.Cost)
		}
	}
	for _, l := range g.links {
		if l.Cap <= 0 {
			return fmt.Errorf("graph: link %d has non-positive capacity %g", l.ID, l.Cap)
		}
		if l.Cost < 0 {
			return fmt.Errorf("graph: link %d has negative cost %g", l.ID, l.Cost)
		}
		if l.From == l.To {
			return fmt.Errorf("graph: link %d is a self-loop at node %d", l.ID, l.From)
		}
	}
	return nil
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return false
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range g.adj[n] {
			m := g.links[lid].Other(n)
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == len(g.nodes)
}

// Degree returns the number of links incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Clone returns a deep copy of the graph. Mutating the clone (capacities,
// GPU flags, added links) leaves the original untouched. The per-node
// adjacency lists share one backing array — safe because AddLink on
// either graph reallocates the appended list (each inner slice is at
// full capacity) and rebuilds its own CSR cache.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: append([]Node(nil), g.nodes...),
		links: append([]Link(nil), g.links...),
		adj:   make([][]LinkID, len(g.adj)),
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	backing := make([]LinkID, 0, total)
	for i, a := range g.adj {
		start := len(backing)
		backing = append(backing, a...)
		c.adj[i] = backing[start:len(backing):len(backing)]
	}
	return c
}
