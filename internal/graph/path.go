package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Path is a substrate path: an ordered list of link IDs joining consecutive
// nodes. An empty path is valid and denotes staying at a single node.
type Path struct {
	// Nodes lists the visited nodes in order; len(Nodes) == len(Links)+1
	// for non-empty paths. For the empty path it holds the single node.
	Nodes []NodeID
	// Links lists the traversed link IDs in order.
	Links []LinkID
	// Cost is the sum of link costs along the path under the weight
	// function used to compute it.
	Cost float64
}

// Len returns the number of links in the path (0 for the empty path).
func (p Path) Len() int { return len(p.Links) }

// Src returns the first node of the path.
func (p Path) Src() NodeID { return p.Nodes[0] }

// Dst returns the last node of the path.
func (p Path) Dst() NodeID { return p.Nodes[len(p.Nodes)-1] }

// WeightFunc assigns a traversal weight to a link. Weights must be
// non-negative; return math.Inf(1) to forbid a link.
type WeightFunc func(Link) float64

// CostWeight weighs links by their per-CU usage cost.
func CostWeight(l Link) float64 { return l.Cost }

// HopWeight weighs every link as 1.
func HopWeight(Link) float64 { return 1 }

type pqItem struct {
	node NodeID
	dist float64
}

// priorityQueue is a binary min-heap of pqItems ordered by dist. The sift
// procedures mirror container/heap exactly (same comparisons, same swap
// order), so replacing the boxed heap.Interface implementation changed no
// pop order — ties between equal distances resolve identically, keeping
// shortest-path trees (and everything derived from them) bit-identical.
// The concrete element type avoids one interface{} allocation per push
// and pop, which dominated the allocation profile of hot Dijkstra loops.
type priorityQueue []pqItem

func (q *priorityQueue) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *priorityQueue) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	q.down(0, n)
	it := h[n]
	*q = h[:n]
	return it
}

func (q priorityQueue) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q priorityQueue) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// ShortestPathTree holds single-source shortest path results.
type ShortestPathTree struct {
	Source NodeID
	// Dist[n] is the distance from Source to n, +Inf if unreachable.
	Dist []float64
	// prevLink[n] is the link used to reach n, -1 at the source or for
	// unreachable nodes.
	prevLink []LinkID
	g        *Graph
	// pq retains the priority-queue backing array across DijkstraInto
	// recomputations of this tree.
	pq priorityQueue
}

// Dijkstra computes single-source shortest paths from src under w.
func (g *Graph) Dijkstra(src NodeID, w WeightFunc) *ShortestPathTree {
	return g.DijkstraInto(nil, src, w)
}

// DijkstraInto recomputes single-source shortest paths from src under w,
// reusing t's internal slices when t is non-nil and sized for this graph.
// It returns the (possibly reallocated) tree. Repeated queries over
// changing weights — the substrate layer's lazy path cache and its
// exclusion views — call this to stay allocation-free after warm-up. The
// result is identical to a fresh Dijkstra call: the scan order and the
// tie-breaking of equal-distance pops do not depend on the buffers'
// previous contents.
//
//olive:hotpath allocation-free after warm-up; buffers reused across recomputations
func (g *Graph) DijkstraInto(t *ShortestPathTree, src NodeID, w WeightFunc) *ShortestPathTree {
	n := len(g.nodes)
	if t == nil || cap(t.Dist) < n || cap(t.prevLink) < n {
		t = &ShortestPathTree{
			Dist:     make([]float64, n),
			prevLink: make([]LinkID, n),
		}
	}
	t.Source = src
	t.g = g
	t.Dist = t.Dist[:n]
	t.prevLink = t.prevLink[:n]
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.prevLink[i] = -1
	}
	t.Dist[src] = 0
	adj := g.adjacency()
	pq := t.pq[:0]
	pq.push(pqItem{node: src, dist: 0})
	for len(pq) > 0 {
		it := pq.pop()
		if it.dist > t.Dist[it.node] {
			continue // stale entry
		}
		// The CSR walk visits incident links in exactly the per-node
		// insertion order the old [][]LinkID layout had, so equal-distance
		// relaxations resolve identically.
		for p, end := adj.off[it.node], adj.off[it.node+1]; p < end; p++ {
			lid := adj.link[p]
			wl := w(g.links[lid])
			if math.IsInf(wl, 1) {
				continue
			}
			m := adj.other[p]
			if d := it.dist + wl; d < t.Dist[m] {
				t.Dist[m] = d
				t.prevLink[m] = lid
				pq.push(pqItem{node: m, dist: d})
			}
		}
	}
	t.pq = pq
	return t
}

// DijkstraLinkWeightsInto is DijkstraInto with weights given as a dense
// per-link vector (lw[lid], +Inf to forbid a link) instead of a
// callback. The substrate layer's price-driven trees use it: their
// weight lookup is a plain slice index, and skipping the closure and the
// Link copy per scanned edge roughly halves the relaxation loop's cost.
// Results are bit-identical to DijkstraInto with w(l) == lw[l.ID].
//
//olive:hotpath allocation-free after warm-up; the price-driven tree recompute path
func (g *Graph) DijkstraLinkWeightsInto(t *ShortestPathTree, src NodeID, lw []float64) *ShortestPathTree {
	n := len(g.nodes)
	if t == nil || cap(t.Dist) < n || cap(t.prevLink) < n {
		t = &ShortestPathTree{
			Dist:     make([]float64, n),
			prevLink: make([]LinkID, n),
		}
	}
	t.Source = src
	t.g = g
	t.Dist = t.Dist[:n]
	t.prevLink = t.prevLink[:n]
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.prevLink[i] = -1
	}
	t.Dist[src] = 0
	adj := g.adjacency()
	pq := t.pq[:0]
	pq.push(pqItem{node: src, dist: 0})
	for len(pq) > 0 {
		it := pq.pop()
		if it.dist > t.Dist[it.node] {
			continue // stale entry
		}
		for p, end := adj.off[it.node], adj.off[it.node+1]; p < end; p++ {
			lid := adj.link[p]
			wl := lw[lid]
			if math.IsInf(wl, 1) {
				continue
			}
			m := adj.other[p]
			if d := it.dist + wl; d < t.Dist[m] {
				t.Dist[m] = d
				t.prevLink[m] = lid
				pq.push(pqItem{node: m, dist: d})
			}
		}
	}
	t.pq = pq
	return t
}

// PathTo reconstructs the shortest path from the tree's source to dst.
// ok is false if dst is unreachable.
//
//olive:hotpath exact-size reconstruction, no append growth
func (t *ShortestPathTree) PathTo(dst NodeID) (Path, bool) {
	if math.IsInf(t.Dist[dst], 1) {
		return Path{}, false
	}
	// Walk once to count hops, then fill two exact-size slices back to
	// front — no append growth in this hot reconstruction path.
	hops := 0
	for n := dst; n != t.Source; hops++ {
		n = t.g.links[t.prevLink[n]].Other(n)
	}
	links := make([]LinkID, hops)
	nodes := make([]NodeID, hops+1)
	nodes[hops] = dst
	for n, i := dst, hops-1; i >= 0; i-- {
		lid := t.prevLink[n]
		links[i] = lid
		n = t.g.links[lid].Other(n)
		nodes[i] = n
	}
	return Path{Nodes: nodes, Links: links, Cost: t.Dist[dst]}, true
}

// ShortestPath returns the least-weight path from src to dst under w.
func (g *Graph) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	return g.Dijkstra(src, w).PathTo(dst)
}

// AllPairs holds all-pairs shortest path results: a shortest path tree per
// source node, computed lazily or eagerly.
type AllPairs struct {
	trees []*ShortestPathTree
	g     *Graph
}

// allPairsCalls counts AllPairsShortestPaths invocations process-wide.
// Tests use it to assert that the online per-request path never falls back
// to an eager all-pairs rebuild (the substrate layer's lazy cache contract).
var allPairsCalls atomic.Uint64

// AllPairsCalls returns the number of AllPairsShortestPaths invocations
// since process start. Test hook; see internal/core's hot-path regression
// test.
func AllPairsCalls() uint64 { return allPairsCalls.Load() }

// AllPairsShortestPaths computes a Dijkstra tree from every node under w.
// For the topology sizes in the paper (≤100 nodes) this is fast and gives
// O(1) distance lookups afterwards. Online hot paths must not call this —
// they go through the substrate layer's lazy per-source cache instead; the
// AllPairsCalls counter enforces that in tests.
func (g *Graph) AllPairsShortestPaths(w WeightFunc) *AllPairs {
	allPairsCalls.Add(1)
	ap := &AllPairs{trees: make([]*ShortestPathTree, len(g.nodes)), g: g}
	for i := range g.nodes {
		ap.trees[i] = g.Dijkstra(NodeID(i), w)
	}
	return ap
}

// Dist returns the shortest distance from src to dst.
func (ap *AllPairs) Dist(src, dst NodeID) float64 { return ap.trees[src].Dist[dst] }

// Path returns the shortest path from src to dst; ok is false if
// unreachable.
func (ap *AllPairs) Path(src, dst NodeID) (Path, bool) {
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	return ap.trees[src].PathTo(dst)
}

// PathFromLinks reconstructs a Path from a start node and an ordered link
// sequence, validating adjacency and computing the cost under w. An empty
// link list yields the empty path at start.
func (g *Graph) PathFromLinks(start NodeID, links []LinkID, w WeightFunc) (Path, error) {
	if int(start) < 0 || int(start) >= len(g.nodes) {
		return Path{}, fmt.Errorf("graph: path start %d out of range", start)
	}
	p := Path{Nodes: []NodeID{start}}
	cur := start
	for i, lid := range links {
		if int(lid) < 0 || int(lid) >= len(g.links) {
			return Path{}, fmt.Errorf("graph: path link %d (%d) out of range", i, lid)
		}
		l := g.links[lid]
		if l.From != cur && l.To != cur {
			return Path{}, fmt.Errorf("graph: path link %d (%d) not incident to node %d", i, lid, cur)
		}
		cur = l.Other(cur)
		p.Links = append(p.Links, lid)
		p.Nodes = append(p.Nodes, cur)
		p.Cost += w(l)
	}
	return p, nil
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing weight order (Yen's algorithm). It returns fewer than k paths
// if the graph does not contain them.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst, w)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Each node of the previous path except the last is a spur node.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootLinks := prev.Links[:i]
			rootNodes := prev.Nodes[:i+1]

			banLinks := make(map[LinkID]bool)
			banNodes := make(map[NodeID]bool)
			for _, p := range paths {
				if sharesPrefix(p, rootLinks) && p.Len() > i {
					banLinks[p.Links[i]] = true
				}
			}
			for _, n := range rootNodes[:i] {
				banNodes[n] = true
			}

			wf := func(l Link) float64 {
				if banLinks[l.ID] || banNodes[l.From] || banNodes[l.To] {
					return math.Inf(1)
				}
				return w(l)
			}
			spurPath, ok := g.ShortestPath(spur, dst, wf)
			if !ok {
				continue
			}
			total := concatPaths(g, rootNodes, rootLinks, spurPath, w)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].Cost < candidates[b].Cost })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func sharesPrefix(p Path, rootLinks []LinkID) bool {
	if p.Len() < len(rootLinks) {
		return false
	}
	for i, l := range rootLinks {
		if p.Links[i] != l {
			return false
		}
	}
	return true
}

func concatPaths(g *Graph, rootNodes []NodeID, rootLinks []LinkID, spur Path, w WeightFunc) Path {
	links := make([]LinkID, 0, len(rootLinks)+spur.Len())
	links = append(links, rootLinks...)
	links = append(links, spur.Links...)
	nodes := make([]NodeID, 0, len(rootNodes)+len(spur.Nodes)-1)
	nodes = append(nodes, rootNodes...)
	nodes = append(nodes, spur.Nodes[1:]...)
	var cost float64
	for _, lid := range links {
		cost += w(g.links[lid])
	}
	return Path{Nodes: nodes, Links: links, Cost: cost}
}

func containsPath(ps []Path, p Path) bool {
	for _, q := range ps {
		if samePath(q, p) {
			return true
		}
	}
	return false
}

func samePath(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}
