package graph

import (
	"math"
	"testing"
)

// TestCloneDeepCopySemantics extends TestCloneIsDeep to every mutable
// part of a Graph: link fields, cost fields, and — the subtle one — the
// adjacency lists, which a shallow copy would share with the original.
func TestCloneDeepCopySemantics(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a", Tier: TierEdge, Cap: 10, Cost: 1})
	b := g.AddNode(Node{Name: "b", Tier: TierCore, Cap: 20, Cost: 2})
	g.AddNode(Node{Name: "c", Tier: TierCore, Cap: 30, Cost: 3})
	g.AddLink(a, b, 5, 1)

	c := g.Clone()

	// Capacity, cost and link mutations stay on the clone.
	c.SetNodeCost(0, 99)
	c.SetLinkCap(0, 999)
	if g.Node(0).Cost == 99 {
		t.Error("mutating clone node cost changed original")
	}
	if g.Link(0).Cap == 999 {
		t.Error("mutating clone link capacity changed original")
	}

	// Adding a link to the clone must not grow the original's adjacency
	// lists (they are per-node slices a shallow clone would alias).
	c.AddLink(1, 2, 7, 1)
	if g.NumLinks() != 1 {
		t.Fatalf("original gained a link: NumLinks = %d, want 1", g.NumLinks())
	}
	if g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("original adjacency mutated: deg(b)=%d deg(c)=%d, want 1, 0", g.Degree(1), g.Degree(2))
	}
	if c.Degree(1) != 2 || c.Degree(2) != 1 {
		t.Errorf("clone adjacency wrong: deg(b)=%d deg(c)=%d, want 2, 1", c.Degree(1), c.Degree(2))
	}

	// The clone is a fully functional graph: paths work on both.
	if _, ok := g.ShortestPath(1, 2, CostWeight); ok {
		t.Error("original unexpectedly routes b→c")
	}
	if _, ok := c.ShortestPath(1, 2, CostWeight); !ok {
		t.Error("clone cannot route over its own new link")
	}
}

// square builds 0-1-2-3-0 with distinct costs so every exclusion has a
// unique alternative.
func square() *Graph {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Name: string(rune('a' + i)), Tier: TierEdge, Cap: 10, Cost: 1})
	}
	g.AddLink(0, 1, 10, 1) // link 0
	g.AddLink(1, 2, 10, 1) // link 1
	g.AddLink(2, 3, 10, 1) // link 2
	g.AddLink(3, 0, 10, 2) // link 3
	return g
}

// TestExcludedElementQueries covers restricted shortest-path queries
// directly at the graph layer: a weight function returning +Inf for an
// exclusion set must reroute, and excluding a cut set must report
// unreachability. (Previously only exercised indirectly via the
// embedder's branch-out.)
func TestExcludedElementQueries(t *testing.T) {
	g := square()

	excl := map[LinkID]bool{1: true}
	w := func(l Link) float64 {
		if excl[l.ID] {
			return math.Inf(1)
		}
		return l.Cost
	}

	p, ok := g.ShortestPath(0, 2, w)
	if !ok || p.Cost != 3 || p.Len() != 2 || p.Links[0] != 3 || p.Links[1] != 2 {
		t.Fatalf("excluded query path = %+v, %v; want links [3 2] cost 3", p, ok)
	}

	// Excluding the 0-1/3-0 cut isolates node 0.
	excl = map[LinkID]bool{0: true, 3: true}
	if _, ok := g.ShortestPath(0, 2, w); ok {
		t.Fatal("query across an excluded cut reported a path")
	}
	tr := g.Dijkstra(0, w)
	for dst := 1; dst < 4; dst++ {
		if !math.IsInf(tr.Dist[dst], 1) {
			t.Fatalf("Dist[%d] = %g across an excluded cut, want +Inf", dst, tr.Dist[dst])
		}
	}
}

// TestDijkstraIntoReuse verifies the buffer-reusing entry point: trees
// recomputed in place under changing weights and sources must be
// indistinguishable from freshly allocated ones.
func TestDijkstraIntoReuse(t *testing.T) {
	g := square()
	var tr *ShortestPathTree
	for iter := 0; iter < 3; iter++ {
		for src := 0; src < g.NumNodes(); src++ {
			scale := float64(iter + 1)
			w := func(l Link) float64 { return l.Cost * scale }
			tr = g.DijkstraInto(tr, NodeID(src), w)
			fresh := g.Dijkstra(NodeID(src), w)
			for dst := 0; dst < g.NumNodes(); dst++ {
				if tr.Dist[dst] != fresh.Dist[dst] {
					t.Fatalf("iter %d src %d: reused Dist[%d] = %g, fresh %g",
						iter, src, dst, tr.Dist[dst], fresh.Dist[dst])
				}
				pa, oka := tr.PathTo(NodeID(dst))
				pb, okb := fresh.PathTo(NodeID(dst))
				if oka != okb || len(pa.Links) != len(pb.Links) {
					t.Fatalf("iter %d src %d dst %d: reused path differs from fresh", iter, src, dst)
				}
				for i := range pa.Links {
					if pa.Links[i] != pb.Links[i] {
						t.Fatalf("iter %d src %d dst %d: link %d differs", iter, src, dst, i)
					}
				}
			}
		}
	}
}
