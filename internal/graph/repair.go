package graph

import "math"

// This file implements incremental repair of single-source shortest-path
// trees under link-weight deltas — the classic dynamic-SSSP
// teardown-and-re-relax scheme, hardened to a much stricter contract
// than metric correctness: a successful repair is guaranteed
// *bit-identical* (Dist and parent links) to recomputing the tree from
// scratch with DijkstraLinkWeightsInto. The substrate layer leans on
// that guarantee to keep golden fingerprints stable while skipping full
// recomputes when consecutive pricing rounds move only a few links.
//
// The key idea is the tie-free invariant. A Dijkstra distance vector is
// heap-order independent, but parent links are not: when two incident
// links achieve a node's distance exactly, which one becomes the parent
// depends on pop order. On a tree where every reachable node has a
// unique achiever, parent links are weight-determined, so an
// incremental algorithm that ends in the same metric state provably
// ends in the same bit state. Repair therefore (a) only runs on trees
// certified tie-free by TieFreeLinkWeights, and (b) rescans every node
// whose candidate set could have changed, aborting on any exact tie the
// new weights introduce. Aborts and oversized damage fall back to the
// full recompute the caller was going to do anyway.

// LinkDelta records one link's weight change between the weights a tree
// was computed under (Old) and the current weights (New == lw[Link]).
type LinkDelta struct {
	Link     LinkID
	Old, New float64
}

// RepairScratch holds the reusable buffers of RepairLinkWeights. The
// zero value is ready; one scratch serves any number of trees over
// graphs of any size (not concurrently).
type RepairScratch struct {
	damaged []bool
	mark    []uint8 // bit 0: dist/parent touched, bit 1: queued for tie check
	dlist   []NodeID
	touched []NodeID
	check   []NodeID
	queue   []NodeID
}

func (sc *RepairScratch) init(n int) {
	if cap(sc.damaged) < n {
		sc.damaged = make([]bool, n)
		sc.mark = make([]uint8, n)
	}
	sc.damaged = sc.damaged[:n]
	sc.mark = sc.mark[:n]
	for i := 0; i < n; i++ {
		sc.damaged[i] = false
		sc.mark[i] = 0
	}
	sc.dlist = sc.dlist[:0]
	sc.touched = sc.touched[:0]
	sc.check = sc.check[:0]
	sc.queue = sc.queue[:0]
}

func (sc *RepairScratch) touch(x NodeID) {
	if sc.mark[x]&1 == 0 {
		sc.mark[x] |= 1
		sc.touched = append(sc.touched, x)
	}
}

func (sc *RepairScratch) addCheck(x NodeID) {
	if sc.mark[x]&2 == 0 {
		sc.mark[x] |= 2
		sc.check = append(sc.check, x)
	}
}

// TieFreeLinkWeights reports whether every reachable non-source node of
// t has exactly one incident link achieving its distance (Dist[y] +
// lw[lid] == Dist[x], compared exactly). Tie-free trees have
// weight-determined parent links — the precondition for bit-exact
// incremental repair.
func (t *ShortestPathTree) TieFreeLinkWeights(lw []float64) bool {
	adj := t.g.adjacency()
	for x := range t.Dist {
		if NodeID(x) == t.Source || math.IsInf(t.Dist[x], 1) {
			continue
		}
		cnt := 0
		for p, end := adj.off[x], adj.off[x+1]; p < end; p++ {
			w := lw[adj.link[p]]
			if !math.IsInf(w, 1) && t.Dist[adj.other[p]]+w == t.Dist[x] {
				if cnt++; cnt > 1 {
					return false
				}
			}
		}
	}
	return true
}

// RepairLinkWeights incrementally updates t — computed under the old
// weights implied by dirty — to the current per-link weights lw. It
// reports whether the repaired tree is guaranteed bit-identical to
// g.DijkstraLinkWeightsInto(t, t.Source, lw); on false the tree is left
// in an unusable state and the caller must fully recompute.
//
// Preconditions: t was certified tie-free under its old weights, dirty
// lists exactly the links whose weight changed (Old what the tree saw,
// New == lw[Link], both finite), weights are non-negative, and the
// graph is unchanged. Repair aborts (returns false) when the torn-down
// region exceeds maxDamage nodes or any exact distance tie appears.
//
//olive:hotpath incremental tree repair; scratch-backed, no per-call allocation
func (t *ShortestPathTree) RepairLinkWeights(sc *RepairScratch, lw []float64, dirty []LinkDelta, maxDamage int) bool {
	g := t.g
	adj := g.adjacency()
	n := len(t.Dist)
	sc.init(n)

	for _, d := range dirty {
		if math.IsInf(d.Old, 0) || math.IsInf(d.New, 0) {
			return false
		}
	}

	// Phase 1: tear down the subtrees hanging below increased in-tree
	// links. Off-tree increases cannot affect any distance (their
	// candidates were already non-improving and only got worse).
	for _, d := range dirty {
		if d.New <= d.Old {
			continue
		}
		l := g.links[d.Link]
		child := NodeID(-1)
		if t.prevLink[l.From] == d.Link {
			child = l.From
		} else if t.prevLink[l.To] == d.Link {
			child = l.To
		}
		if child < 0 || sc.damaged[child] {
			continue
		}
		sc.damaged[child] = true
		sc.queue = append(sc.queue, child)
	}
	for len(sc.queue) > 0 {
		y := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		sc.dlist = append(sc.dlist, y)
		if len(sc.dlist) > maxDamage {
			return false
		}
		for p, end := adj.off[y], adj.off[y+1]; p < end; p++ {
			m := adj.other[p]
			if !sc.damaged[m] && t.prevLink[m] == adj.link[p] {
				sc.damaged[m] = true
				sc.queue = append(sc.queue, m)
			}
		}
	}
	for _, x := range sc.dlist {
		t.Dist[x] = math.Inf(1)
		t.prevLink[x] = -1
		sc.touch(x)
	}

	// Phase 2: seed the heap. Damaged nodes re-enter from their intact
	// frontier; decreased links seed improvement waves from both ends.
	pq := t.pq[:0]
	for _, x := range sc.dlist {
		for p, end := adj.off[x], adj.off[x+1]; p < end; p++ {
			y := adj.other[p]
			if sc.damaged[y] {
				continue
			}
			w := lw[adj.link[p]]
			if !math.IsInf(w, 1) && !math.IsInf(t.Dist[y], 1) {
				t.repairRelax(sc, &pq, x, adj.link[p], t.Dist[y]+w)
			}
		}
	}
	for _, d := range dirty {
		if d.New >= d.Old {
			continue
		}
		l := g.links[d.Link]
		w := lw[d.Link]
		if !sc.damaged[l.From] && !sc.damaged[l.To] {
			if !math.IsInf(t.Dist[l.From], 1) {
				t.repairRelax(sc, &pq, l.To, d.Link, t.Dist[l.From]+w)
			}
			if !math.IsInf(t.Dist[l.To], 1) {
				t.repairRelax(sc, &pq, l.From, d.Link, t.Dist[l.To]+w)
			}
		}
	}

	// Phase 3: settle the affected region — plain Dijkstra over the
	// seeded heap, relaxing exactly as the full computation would.
	for len(pq) > 0 {
		it := pq.pop()
		if it.dist > t.Dist[it.node] {
			continue
		}
		for p, end := adj.off[it.node], adj.off[it.node+1]; p < end; p++ {
			w := lw[adj.link[p]]
			if math.IsInf(w, 1) {
				continue
			}
			t.repairRelax(sc, &pq, adj.other[p], adj.link[p], it.dist+w)
		}
	}
	t.pq = pq

	// Phase 4: tie verification. A node's full-recompute parent could
	// differ from the repaired one only if its candidate set changed —
	// it was touched, neighbors a touched node, or flanks a dirty link.
	// Each such node must have exactly one achiever, and it must be the
	// parent the repair chose; anything else aborts. Untouched nodes
	// with untouched candidates inherit uniqueness from the old tree's
	// tie-free certificate, so the certificate survives the repair.
	for _, d := range dirty {
		l := g.links[d.Link]
		sc.addCheck(l.From)
		sc.addCheck(l.To)
	}
	for i := 0; i < len(sc.touched); i++ {
		x := sc.touched[i]
		sc.addCheck(x)
		for p, end := adj.off[x], adj.off[x+1]; p < end; p++ {
			sc.addCheck(adj.other[p])
		}
	}
	for _, x := range sc.check {
		if x == t.Source || math.IsInf(t.Dist[x], 1) {
			continue
		}
		cnt := 0
		achiever := LinkID(-1)
		for p, end := adj.off[x], adj.off[x+1]; p < end; p++ {
			w := lw[adj.link[p]]
			if !math.IsInf(w, 1) && t.Dist[adj.other[p]]+w == t.Dist[x] {
				if cnt++; cnt > 1 {
					return false
				}
				achiever = adj.link[p]
			}
		}
		if cnt != 1 || achiever != t.prevLink[x] {
			return false
		}
	}
	return true
}

// repairRelax is the relaxation step shared by phases 2 and 3 of
// RepairLinkWeights: adopt the candidate distance if it improves, record
// the achieving link as parent, and queue the node for settling. A named
// method rather than a closure so the repair path does not allocate a
// closure context (it would capture t, sc and pq by reference).
func (t *ShortestPathTree) repairRelax(sc *RepairScratch, pq *priorityQueue, x NodeID, lid LinkID, d float64) {
	if d < t.Dist[x] {
		t.Dist[x] = d
		t.prevLink[x] = lid
		sc.touch(x)
		pq.push(pqItem{node: x, dist: d})
	}
}
