package graph

import (
	"math"
	"testing"
)

// line builds a path graph n0-n1-...-n(k-1) with unit caps and the given
// link costs.
func line(t *testing.T, costs ...float64) *Graph {
	t.Helper()
	g := New()
	for i := 0; i <= len(costs); i++ {
		g.AddNode(Node{Name: string(rune('A' + i)), Tier: TierEdge, Cap: 100, Cost: 1})
	}
	for i, c := range costs {
		g.AddLink(NodeID(i), NodeID(i+1), 100, c)
	}
	return g
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		id := g.AddNode(Node{Name: "n", Cap: 1})
		if int(id) != i {
			t.Fatalf("AddNode returned ID %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddLinkPanicsOnBadEndpoint(t *testing.T) {
	g := New()
	g.AddNode(Node{Cap: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddLink with out-of-range endpoint did not panic")
		}
	}()
	g.AddLink(0, 7, 1, 1)
}

func TestElementSpaceRoundTrip(t *testing.T) {
	g := line(t, 1, 2, 3)
	if got, want := g.NumElements(), g.NumNodes()+g.NumLinks(); got != want {
		t.Fatalf("NumElements = %d, want %d", got, want)
	}
	for i := 0; i < g.NumNodes(); i++ {
		e := g.NodeElement(NodeID(i))
		n, ok := g.ElementNode(e)
		if !ok || n != NodeID(i) {
			t.Fatalf("node %d: round-trip via element %d gave (%d,%v)", i, e, n, ok)
		}
		if _, ok := g.ElementLink(e); ok {
			t.Fatalf("node element %d wrongly resolves as link", e)
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		e := g.LinkElement(LinkID(i))
		l, ok := g.ElementLink(e)
		if !ok || l != LinkID(i) {
			t.Fatalf("link %d: round-trip via element %d gave (%d,%v)", i, e, l, ok)
		}
	}
}

func TestCapacitiesVector(t *testing.T) {
	g := line(t, 1, 1)
	g.SetNodeCap(1, 42)
	g.SetLinkCap(0, 7)
	caps := g.Capacities()
	if caps[g.NodeElement(1)] != 42 {
		t.Errorf("node 1 capacity in vector = %g, want 42", caps[g.NodeElement(1)])
	}
	if caps[g.LinkElement(0)] != 7 {
		t.Errorf("link 0 capacity in vector = %g, want 7", caps[g.LinkElement(0)])
	}
}

func TestConnected(t *testing.T) {
	g := line(t, 1, 1, 1)
	if !g.Connected() {
		t.Error("line graph reported disconnected")
	}
	g.AddNode(Node{Name: "isolated", Cap: 1})
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Graph)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Graph) {}, wantErr: false},
		{name: "zero node cap", mutate: func(g *Graph) { g.SetNodeCap(0, 0) }, wantErr: true},
		{name: "negative node cost", mutate: func(g *Graph) { g.SetNodeCost(0, -1) }, wantErr: true},
		{name: "zero link cap", mutate: func(g *Graph) { g.SetLinkCap(0, 0) }, wantErr: true},
		{name: "disconnected", mutate: func(g *Graph) { g.AddNode(Node{Cap: 1}) }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := line(t, 1, 1)
			tt.mutate(g)
			err := g.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNodesByTier(t *testing.T) {
	g := New()
	g.AddNode(Node{Tier: TierEdge, Cap: 1})
	g.AddNode(Node{Tier: TierCore, Cap: 1})
	g.AddNode(Node{Tier: TierEdge, Cap: 1})
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	edges := g.EdgeNodes()
	if len(edges) != 2 || edges[0] != 0 || edges[1] != 2 {
		t.Fatalf("EdgeNodes = %v, want [0 2]", edges)
	}
	if got := g.TotalCap(TierEdge); got != 2 {
		t.Fatalf("TotalCap(edge) = %g, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := line(t, 1, 1)
	c := g.Clone()
	c.SetNodeCap(0, 999)
	c.SetNodeGPU(1, true)
	if g.Node(0).Cap == 999 {
		t.Error("mutating clone capacity changed original")
	}
	if g.Node(1).GPU {
		t.Error("mutating clone GPU flag changed original")
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(t, 1, 2, 3)
	tr := g.Dijkstra(0, CostWeight)
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if tr.Dist[i] != w {
			t.Errorf("Dist[%d] = %g, want %g", i, tr.Dist[i], w)
		}
	}
	p, ok := tr.PathTo(3)
	if !ok || p.Len() != 3 || p.Cost != 6 {
		t.Fatalf("PathTo(3) = %+v, %v; want 3-link path of cost 6", p, ok)
	}
	if p.Src() != 0 || p.Dst() != 3 {
		t.Errorf("path endpoints (%d,%d), want (0,3)", p.Src(), p.Dst())
	}
}

func TestDijkstraPrefersCheaperDetour(t *testing.T) {
	// Triangle: 0-1 cost 10, 0-2 cost 1, 2-1 cost 1. Shortest 0->1 is via 2.
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode(Node{Cap: 1})
	}
	g.AddLink(0, 1, 1, 10)
	g.AddLink(0, 2, 1, 1)
	g.AddLink(2, 1, 1, 1)
	p, ok := g.ShortestPath(0, 1, CostWeight)
	if !ok {
		t.Fatal("no path found")
	}
	if p.Cost != 2 || p.Len() != 2 {
		t.Fatalf("path cost %g len %d, want cost 2 len 2", p.Cost, p.Len())
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := line(t, 1)
	p, ok := g.ShortestPath(0, 0, CostWeight)
	if !ok || p.Len() != 0 {
		t.Fatalf("self path = %+v, %v; want empty path", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := line(t, 1)
	g.AddNode(Node{Cap: 1}) // isolated node 2
	if _, ok := g.ShortestPath(0, 2, CostWeight); ok {
		t.Fatal("found path to isolated node")
	}
}

func TestWeightFuncCanForbidLinks(t *testing.T) {
	g := line(t, 1, 1)
	w := func(l Link) float64 {
		if l.ID == 0 {
			return math.Inf(1)
		}
		return l.Cost
	}
	if _, ok := g.ShortestPath(0, 2, w); ok {
		t.Fatal("path found through forbidden link")
	}
}

func TestAllPairsMatchesSingleSource(t *testing.T) {
	g := line(t, 2, 5, 1)
	ap := g.AllPairsShortestPaths(CostWeight)
	for s := 0; s < g.NumNodes(); s++ {
		tr := g.Dijkstra(NodeID(s), CostWeight)
		for d := 0; d < g.NumNodes(); d++ {
			if ap.Dist(NodeID(s), NodeID(d)) != tr.Dist[d] {
				t.Errorf("AllPairs dist(%d,%d) = %g, want %g", s, d, ap.Dist(NodeID(s), NodeID(d)), tr.Dist[d])
			}
		}
	}
	if p, ok := ap.Path(1, 1); !ok || p.Len() != 0 {
		t.Error("AllPairs self path not empty")
	}
}

func TestKShortestPathsOrderAndLooplessness(t *testing.T) {
	// Diamond with an extra long way around.
	//   0-1 (1), 1-3 (1), 0-2 (1.5), 2-3 (1.5), 0-3 (5)
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Cap: 1})
	}
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 3, 1, 1)
	g.AddLink(0, 2, 1, 1.5)
	g.AddLink(2, 3, 1, 1.5)
	g.AddLink(0, 3, 1, 5)
	paths := g.KShortestPaths(0, 3, 3, CostWeight)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wantCosts := []float64{2, 3, 5}
	for i, p := range paths {
		if math.Abs(p.Cost-wantCosts[i]) > 1e-9 {
			t.Errorf("path %d cost %g, want %g", i, p.Cost, wantCosts[i])
		}
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Errorf("path %d revisits node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsFewerAvailable(t *testing.T) {
	g := line(t, 1, 1)
	paths := g.KShortestPaths(0, 2, 5, CostWeight)
	if len(paths) != 1 {
		t.Fatalf("line graph has exactly 1 simple path, got %d", len(paths))
	}
}

func TestKShortestPathsZeroK(t *testing.T) {
	g := line(t, 1)
	if got := g.KShortestPaths(0, 1, 0, CostWeight); got != nil {
		t.Fatalf("k=0 returned %v, want nil", got)
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{TierEdge: "edge", TierTransport: "transport", TierCore: "core", Tier(9): "tier(9)"} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{From: 3, To: 8}
	if l.Other(3) != 8 || l.Other(8) != 3 {
		t.Fatalf("Other: got (%d,%d), want (8,3)", l.Other(3), l.Other(8))
	}
}
