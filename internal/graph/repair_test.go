package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randRepairGraph builds a random connected multigraph with n nodes and
// roughly density·n extra links on top of a random spanning tree.
func randRepairGraph(rng *rand.Rand, n int, density float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(Node{Cap: 10, Cost: 1})
	}
	for i := 1; i < n; i++ {
		g.AddLink(NodeID(rng.Intn(i)), NodeID(i), 10, 1)
	}
	extra := int(density * float64(n))
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.AddLink(NodeID(a), NodeID(b), 10, 1)
	}
	return g
}

// randWeights draws strictly positive irrational-ish weights; exact ties
// are measure-zero, so almost every tree certifies tie-free.
func randWeights(rng *rand.Rand, m int) []float64 {
	lw := make([]float64, m)
	for i := range lw {
		lw[i] = 0.1 + rng.Float64()*9.9
	}
	return lw
}

func treesEqual(t *testing.T, a, b *ShortestPathTree) {
	t.Helper()
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] && !(math.IsInf(a.Dist[i], 1) && math.IsInf(b.Dist[i], 1)) {
			t.Fatalf("Dist[%d]: repaired %v != recomputed %v", i, a.Dist[i], b.Dist[i])
		}
		if a.prevLink[i] != b.prevLink[i] {
			t.Fatalf("prevLink[%d]: repaired %d != recomputed %d (dist %v)",
				i, a.prevLink[i], b.prevLink[i], a.Dist[i])
		}
	}
}

// TestRepairLinkWeightsEquivalence is the randomized bit-exactness
// guard for incremental tree repair: across many random graphs, weight
// vectors and delta batches, every repair that reports ok must leave
// Dist and prevLink bitwise identical to a from-scratch
// DijkstraLinkWeightsInto under the new weights.
func TestRepairLinkWeightsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc RepairScratch
	repaired, aborted := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 8 + rng.Intn(60)
		g := randRepairGraph(rng, n, 1.5)
		m := g.NumLinks()
		lw := randWeights(rng, m)

		src := NodeID(rng.Intn(n))
		tree := g.DijkstraLinkWeightsInto(nil, src, lw)
		if !tree.TieFreeLinkWeights(lw) {
			continue // measure-zero with random weights
		}

		// Perturb a random batch of links: mixed increases/decreases,
		// occasionally a change-and-revert no-op.
		nd := 1 + rng.Intn(6)
		dirty := make([]LinkDelta, 0, nd)
		for i := 0; i < nd; i++ {
			lid := LinkID(rng.Intn(m))
			dup := false
			for _, d := range dirty {
				if d.Link == lid {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			old := lw[lid]
			switch rng.Intn(5) {
			case 0: // large increase
				lw[lid] = old * (1 + 9*rng.Float64())
			case 1: // decrease
				lw[lid] = old * rng.Float64()
			default: // small move either way
				lw[lid] = old * (0.5 + rng.Float64())
			}
			dirty = append(dirty, LinkDelta{Link: lid, Old: old, New: lw[lid]})
		}

		if tree.RepairLinkWeights(&sc, lw, dirty, n) {
			repaired++
			fresh := g.DijkstraLinkWeightsInto(nil, src, lw)
			treesEqual(t, tree, fresh)
		} else {
			aborted++
		}
	}
	if repaired < 100 {
		t.Fatalf("only %d/400 trials exercised a successful repair (%d aborted) — test is near-vacuous", repaired, aborted)
	}
	t.Logf("repaired=%d aborted=%d", repaired, aborted)
}

// TestRepairLinkWeightsRepeated chains many delta rounds on one tree,
// repairing when possible and recomputing otherwise — the access
// pattern of the substrate cache across pricing rounds.
func TestRepairLinkWeightsRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randRepairGraph(rng, 80, 2)
	m := g.NumLinks()
	lw := randWeights(rng, m)
	src := NodeID(3)

	var sc RepairScratch
	tree := g.DijkstraLinkWeightsInto(nil, src, lw)
	tieFree := tree.TieFreeLinkWeights(lw)
	repairs := 0
	for round := 0; round < 200; round++ {
		nd := 1 + rng.Intn(4)
		dirty := make([]LinkDelta, 0, nd)
		for i := 0; i < nd; i++ {
			lid := LinkID(rng.Intn(m))
			old := lw[lid]
			lw[lid] = 0.1 + rng.Float64()*9.9
			dirty = append(dirty, LinkDelta{Link: lid, Old: old, New: lw[lid]})
		}
		if tieFree && tree.RepairLinkWeights(&sc, lw, dirty, len(tree.Dist)) {
			repairs++
			fresh := g.DijkstraLinkWeightsInto(nil, src, lw)
			treesEqual(t, tree, fresh)
		} else {
			tree = g.DijkstraLinkWeightsInto(tree, src, lw)
			tieFree = tree.TieFreeLinkWeights(lw)
		}
	}
	if repairs < 50 {
		t.Fatalf("only %d/200 rounds repaired — expected most rounds to take the incremental path", repairs)
	}
}

// TestRepairAbortsOnTie plants an exact two-path tie and checks that
// repair refuses rather than guessing a parent.
func TestRepairAbortsOnTie(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Cap: 1, Cost: 1})
	}
	// 0—1—3 and 0—2—3 with equal total weight after the delta.
	l01 := g.AddLink(0, 1, 1, 1)
	_ = l01
	g.AddLink(1, 3, 1, 1)
	g.AddLink(0, 2, 1, 1)
	l23 := g.AddLink(2, 3, 1, 1)
	lw := []float64{1, 2, 1, 5} // paths to 3: 3 via 1, 6 via 2 — unique
	tree := g.DijkstraLinkWeightsInto(nil, 0, lw)
	if !tree.TieFreeLinkWeights(lw) {
		t.Fatal("setup should be tie-free")
	}
	old := lw[l23]
	lw[l23] = 2 // now both paths to 3 cost exactly 3
	if tree.RepairLinkWeights(&RepairScratch{}, lw, []LinkDelta{{Link: l23, Old: old, New: 2}}, 4) {
		t.Fatal("repair accepted a graph with an exact shortest-path tie")
	}
}

// TestTieFreeLinkWeights checks the certifier on a known tie.
func TestTieFreeLinkWeights(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode(Node{Cap: 1, Cost: 1})
	}
	g.AddLink(0, 1, 1, 1)
	g.AddLink(0, 2, 1, 1)
	g.AddLink(1, 2, 1, 1)
	lw := []float64{1, 2, 1} // node 2: 0→2 direct = 2, 0→1→2 = 2 — tie
	tree := g.DijkstraLinkWeightsInto(nil, 0, lw)
	if tree.TieFreeLinkWeights(lw) {
		t.Fatal("certifier missed an exact two-achiever tie")
	}
	lw[1] = 2.5
	tree = g.DijkstraLinkWeightsInto(tree, 0, lw)
	if !tree.TieFreeLinkWeights(lw) {
		t.Fatal("certifier rejected a tie-free tree")
	}
}
