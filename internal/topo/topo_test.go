package topo

import (
	"math"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
)

func TestBuildMatchesTableII(t *testing.T) {
	for name, spec := range Specs() {
		t.Run(string(name), func(t *testing.T) {
			g, err := Build(name, 1)
			if err != nil {
				t.Fatalf("Build(%q): %v", name, err)
			}
			if g.NumNodes() != spec.Nodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), spec.Nodes)
			}
			if g.NumLinks() != spec.Links {
				t.Errorf("links = %d, want %d", g.NumLinks(), spec.Links)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			gotTiers := map[graph.Tier]int{}
			for _, n := range g.Nodes() {
				gotTiers[n.Tier]++
			}
			if gotTiers[graph.TierEdge] != spec.EdgeN || gotTiers[graph.TierTransport] != spec.TransportN || gotTiers[graph.TierCore] != spec.CoreN {
				t.Errorf("tier split = %v, want %d/%d/%d", gotTiers, spec.EdgeN, spec.TransportN, spec.CoreN)
			}
		})
	}
}

func TestBuildUnknownName(t *testing.T) {
	if _, err := Build("nonexistent", 1); err == nil {
		t.Fatal("Build with unknown name succeeded")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(Iris, 42)
	b := MustBuild(Iris, 42)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different link counts")
	}
	for i := 0; i < a.NumLinks(); i++ {
		la, lb := a.Link(graph.LinkID(i)), b.Link(graph.LinkID(i))
		if la.From != lb.From || la.To != lb.To || la.Cap != lb.Cap {
			t.Fatalf("link %d differs between same-seed builds: %+v vs %+v", i, la, lb)
		}
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(graph.NodeID(i)).Cost != b.Node(graph.NodeID(i)).Cost {
			t.Fatalf("node %d cost differs between same-seed builds", i)
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a := MustBuild(Random100, 1)
	b := MustBuild(Random100, 2)
	same := true
	for i := 0; i < a.NumLinks() && same; i++ {
		la, lb := a.Link(graph.LinkID(i)), b.Link(graph.LinkID(i))
		if la.From != lb.From || la.To != lb.To {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical random graphs")
	}
}

func TestCapacitiesFollowTiers(t *testing.T) {
	g := MustBuild(Iris, 7)
	for _, n := range g.Nodes() {
		var want float64
		switch n.Tier {
		case graph.TierEdge:
			want = EdgeNodeCap
		case graph.TierTransport:
			want = TransportNodeCap
		case graph.TierCore:
			want = CoreNodeCap
		}
		if n.Cap != want {
			t.Fatalf("node %q tier %v cap %g, want %g", n.Name, n.Tier, n.Cap, want)
		}
	}
	for _, l := range g.Links() {
		lt := linkTier(g.Node(l.From).Tier, g.Node(l.To).Tier)
		if l.Cap != tierLinkCap(lt) {
			t.Fatalf("link %d tier %v cap %g, want %g", l.ID, lt, l.Cap, tierLinkCap(lt))
		}
	}
}

func TestInterTierRatioIsThree(t *testing.T) {
	if TransportNodeCap/EdgeNodeCap != 3 || CoreNodeCap/TransportNodeCap != 3 {
		t.Error("node capacity inter-tier ratio is not 3")
	}
	if TransportLinkCap/EdgeLinkCap != 3 || CoreLinkCap/TransportLinkCap != 3 {
		t.Error("link capacity inter-tier ratio is not 3")
	}
}

func TestCostsWithinHalfToOneAndAHalfOfTierMean(t *testing.T) {
	for _, name := range All() {
		g := MustBuild(name, 3)
		for _, n := range g.Nodes() {
			mean := tierNodeCostMean(n.Tier)
			if n.Cost < 0.5*mean-1e-9 || n.Cost > 1.5*mean+1e-9 {
				t.Fatalf("%s node %q cost %g outside [%g,%g]", name, n.Name, n.Cost, 0.5*mean, 1.5*mean)
			}
		}
		for _, l := range g.Links() {
			if l.Cost != LinkCost {
				t.Fatalf("%s link %d cost %g, want %g", name, l.ID, l.Cost, LinkCost)
			}
		}
	}
}

func TestFranklinExistsInIris(t *testing.T) {
	g := MustBuild(Iris, 11)
	id, ok := FindNode(g, "Franklin")
	if !ok {
		t.Fatal("Iris has no Franklin node (needed for Fig. 12)")
	}
	if g.Node(id).Tier != graph.TierEdge {
		t.Errorf("Franklin is tier %v, want edge", g.Node(id).Tier)
	}
}

func TestFindNodeMissing(t *testing.T) {
	g := MustBuild(CittaStudi, 1)
	if _, ok := FindNode(g, "no-such-node"); ok {
		t.Fatal("FindNode found a nonexistent node")
	}
}

func TestMakeGPUVariant(t *testing.T) {
	g := MustBuild(Iris, 5)
	v := MakeGPUVariant(g, 4, 99)

	var gpuEdge, gpuCore int
	for _, n := range v.Nodes() {
		switch {
		case n.Tier == graph.TierCore:
			if !n.GPU {
				t.Errorf("core node %q not GPU in variant", n.Name)
			}
			gpuCore++
		case n.GPU:
			gpuEdge++
		}
	}
	if gpuEdge != 4 {
		t.Errorf("GPU edge nodes = %d, want 4", gpuEdge)
	}
	if gpuCore == 0 {
		t.Error("no core nodes found")
	}
	// Non-GPU nodes lose 25% capacity; GPU nodes keep theirs.
	for _, n := range v.Nodes() {
		orig := g.Node(n.ID).Cap
		want := orig
		if !n.GPU {
			want = orig * 0.75
		}
		if math.Abs(n.Cap-want) > 1e-6 {
			t.Fatalf("node %q cap %g, want %g", n.Name, n.Cap, want)
		}
	}
	// The original graph is untouched.
	for _, n := range g.Nodes() {
		if n.GPU {
			t.Fatal("MakeGPUVariant mutated the original graph")
		}
	}
}

func TestEdgeNodesAreRequestIngresses(t *testing.T) {
	for _, name := range All() {
		g := MustBuild(name, 2)
		if len(g.EdgeNodes()) == 0 {
			t.Fatalf("%s has no edge nodes", name)
		}
	}
}

func TestLayoutAssignsCoordinates(t *testing.T) {
	g := MustBuild(CittaStudi, 1)
	var nonZero int
	for _, n := range g.Nodes() {
		if n.X != 0 || n.Y != 0 {
			nonZero++
		}
	}
	if nonZero < g.NumNodes()/2 {
		t.Errorf("only %d/%d nodes have layout coordinates", nonZero, g.NumNodes())
	}
}
