// Package topo constructs the physical substrate topologies of the paper's
// evaluation (§IV-A, Table II, Fig. 5): Iris, Città Studi, 5GEN and the
// 100N150E Erdős–Rényi random graph — plus the capacity/cost model shared
// by all of them.
//
// The original graphs (Internet Topology Zoo, the 5GEN Madrid deployment,
// the Città Studi edge network) are not redistributable and unavailable
// offline, so each generator synthesizes a connected three-tier network
// with the exact node and link counts of Table II, the 3× inter-tier
// capacity ratios, and the cost distribution of the paper (node costs
// uniform in [50%, 150%] of the tier mean; link cost 1 per CU). DESIGN.md
// §3 documents this substitution.
package topo

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/olive-vne/olive/internal/graph"
)

// Table II capacity and cost constants (capacity units, CU).
const (
	EdgeNodeCap      = 200_000
	TransportNodeCap = 600_000
	CoreNodeCap      = 1_800_000

	EdgeLinkCap      = 100_000
	TransportLinkCap = 300_000
	CoreLinkCap      = 900_000

	EdgeNodeCostMean      = 50.0
	TransportNodeCostMean = 10.0
	CoreNodeCostMean      = 1.0

	LinkCost = 1.0
)

// Name identifies one of the four evaluation topologies.
type Name string

// The four physical topologies of Table II.
const (
	Iris       Name = "iris"
	CittaStudi Name = "cittastudi"
	FiveGEN    Name = "5gen"
	Random100  Name = "100n150e"
)

// All lists the four evaluation topologies in Table II order.
func All() []Name { return []Name{Iris, CittaStudi, FiveGEN, Random100} }

// Spec describes a topology's size and tier composition.
type Spec struct {
	Name        Name
	Nodes       int
	Links       int
	EdgeN       int // number of edge-tier nodes
	TransportN  int // number of transport-tier nodes
	CoreN       int // number of core-tier nodes
	Description string
}

// Specs returns the per-topology size specifications matching Table II.
// Tier splits follow the paper's three-tier mobile access layout with the
// bulk of nodes at the edge.
func Specs() map[Name]Spec {
	return map[Name]Spec{
		Iris:       {Name: Iris, Nodes: 50, Links: 64, EdgeN: 30, TransportN: 15, CoreN: 5, Description: "Topology Zoo 'Iris' scale (50N/64L)"},
		CittaStudi: {Name: CittaStudi, Nodes: 30, Links: 35, EdgeN: 18, TransportN: 9, CoreN: 3, Description: "Città Studi edge network scale (30N/35L)"},
		FiveGEN:    {Name: FiveGEN, Nodes: 78, Links: 100, EdgeN: 48, TransportN: 24, CoreN: 6, Description: "5GEN Madrid 5G deployment scale (78N/100L)"},
		Random100:  {Name: Random100, Nodes: 100, Links: 150, EdgeN: 60, TransportN: 30, CoreN: 10, Description: "Connected Erdős–Rényi random graph (100N/150L)"},
	}
}

// Build constructs the named topology deterministically from seed.
func Build(name Name, seed uint64) (*graph.Graph, error) {
	spec, ok := Specs()[name]
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology %q", name)
	}
	rng := rand.New(rand.NewPCG(seed, uint64(len(spec.Name))*0x9e3779b9))
	var g *graph.Graph
	if name == Random100 {
		g = buildErdosRenyi(spec, rng)
	} else {
		g = buildHierarchical(spec, rng)
	}
	assignCosts(g, rng)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topo: generated %q invalid: %w", name, err)
	}
	if g.NumNodes() != spec.Nodes || g.NumLinks() != spec.Links {
		return nil, fmt.Errorf("topo: %q generated %dN/%dL, want %dN/%dL",
			name, g.NumNodes(), g.NumLinks(), spec.Nodes, spec.Links)
	}
	return g, nil
}

// MustBuild is Build for tests and examples where the spec is known valid.
func MustBuild(name Name, seed uint64) *graph.Graph {
	g, err := Build(name, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// edgeNodeNames supplies human-readable edge datacenter names. "Franklin"
// is always present: Fig. 12 of the paper zooms into the Franklin node of
// Iris. Names repeat with numeric suffixes when a topology has more edge
// nodes than the base list.
var edgeNodeNames = []string{
	"Franklin", "Arlington", "Clinton", "Salem", "Georgetown", "Fairview",
	"Madison", "Washington", "Chester", "Greenville", "Springfield",
	"Dayton", "Lexington", "Milton", "Newport", "Oxford", "Burlington",
	"Ashland", "Dover", "Hudson", "Kingston", "Riverside", "Auburn",
	"Bristol", "Clayton", "Dallas", "Florence", "Jackson", "Manchester",
	"Oakland",
}

func nodeName(tier graph.Tier, idx int) string {
	switch tier {
	case graph.TierEdge:
		if idx < len(edgeNodeNames) {
			return edgeNodeNames[idx]
		}
		return fmt.Sprintf("%s-%d", edgeNodeNames[idx%len(edgeNodeNames)], idx/len(edgeNodeNames)+1)
	case graph.TierTransport:
		return fmt.Sprintf("transport-%d", idx)
	default:
		return fmt.Sprintf("core-%d", idx)
	}
}

func tierNodeCap(t graph.Tier) float64 {
	switch t {
	case graph.TierEdge:
		return EdgeNodeCap
	case graph.TierTransport:
		return TransportNodeCap
	default:
		return CoreNodeCap
	}
}

// linkTier classifies a link by the lower tier of its endpoints: an
// edge–transport link is an edge link, transport–core is a transport link.
func linkTier(a, b graph.Tier) graph.Tier {
	if a < b {
		return a
	}
	return b
}

func tierLinkCap(t graph.Tier) float64 {
	switch t {
	case graph.TierEdge:
		return EdgeLinkCap
	case graph.TierTransport:
		return TransportLinkCap
	default:
		return CoreLinkCap
	}
}

func tierNodeCostMean(t graph.Tier) float64 {
	switch t {
	case graph.TierEdge:
		return EdgeNodeCostMean
	case graph.TierTransport:
		return TransportNodeCostMean
	default:
		return CoreNodeCostMean
	}
}

// addTierLink inserts a link with the capacity of the endpoints' link tier.
func addTierLink(g *graph.Graph, a, b graph.NodeID) {
	t := linkTier(g.Node(a).Tier, g.Node(b).Tier)
	g.AddLink(a, b, tierLinkCap(t), LinkCost)
}

// buildHierarchical synthesizes a three-tier access network: a core ring,
// transports dual-homed to cores, edges homed to transports, and extra
// cross links drawn at random until the target link count is met.
func buildHierarchical(spec Spec, rng *rand.Rand) *graph.Graph {
	g := graph.New()
	var cores, transports, edges []graph.NodeID
	for i := 0; i < spec.CoreN; i++ {
		cores = append(cores, g.AddNode(graph.Node{
			Name: nodeName(graph.TierCore, i), Tier: graph.TierCore, Cap: CoreNodeCap,
		}))
	}
	for i := 0; i < spec.TransportN; i++ {
		transports = append(transports, g.AddNode(graph.Node{
			Name: nodeName(graph.TierTransport, i), Tier: graph.TierTransport, Cap: TransportNodeCap,
		}))
	}
	for i := 0; i < spec.EdgeN; i++ {
		edges = append(edges, g.AddNode(graph.Node{
			Name: nodeName(graph.TierEdge, i), Tier: graph.TierEdge, Cap: EdgeNodeCap,
		}))
	}

	// Core ring (or single link for 2 cores).
	for i := range cores {
		if len(cores) == 1 {
			break
		}
		j := (i + 1) % len(cores)
		if len(cores) == 2 && i == 1 {
			break
		}
		addTierLink(g, cores[i], cores[j])
	}
	// Each transport homes to one core (round-robin with jitter).
	for i, tn := range transports {
		c := cores[(i+rng.IntN(len(cores)))%len(cores)]
		addTierLink(g, tn, c)
	}
	// Each edge homes to one transport.
	for i, en := range edges {
		tn := transports[(i+rng.IntN(len(transports)))%len(transports)]
		addTierLink(g, en, tn)
	}

	// Top up with random extra links until the target count: prefer
	// edge–transport and transport–transport redundancy, as in access
	// networks.
	for g.NumLinks() < spec.Links {
		var a, b graph.NodeID
		switch rng.IntN(3) {
		case 0: // extra edge uplink
			a = edges[rng.IntN(len(edges))]
			b = transports[rng.IntN(len(transports))]
		case 1: // transport ring/mesh
			a = transports[rng.IntN(len(transports))]
			b = transports[rng.IntN(len(transports))]
		default: // extra transport-core uplink
			a = transports[rng.IntN(len(transports))]
			b = cores[rng.IntN(len(cores))]
		}
		if a == b || haveLink(g, a, b) {
			continue
		}
		addTierLink(g, a, b)
	}
	layoutTiers(g, rng)
	return g
}

// buildErdosRenyi synthesizes the 100N150E connected random graph: a
// uniform random spanning tree plus uniform random extra links, with tiers
// assigned by the spec's proportions.
func buildErdosRenyi(spec Spec, rng *rand.Rand) *graph.Graph {
	g := graph.New()
	tiers := make([]graph.Tier, 0, spec.Nodes)
	for i := 0; i < spec.CoreN; i++ {
		tiers = append(tiers, graph.TierCore)
	}
	for i := 0; i < spec.TransportN; i++ {
		tiers = append(tiers, graph.TierTransport)
	}
	for i := 0; i < spec.EdgeN; i++ {
		tiers = append(tiers, graph.TierEdge)
	}
	rng.Shuffle(len(tiers), func(i, j int) { tiers[i], tiers[j] = tiers[j], tiers[i] })
	counts := map[graph.Tier]int{}
	for _, t := range tiers {
		g.AddNode(graph.Node{Name: nodeName(t, counts[t]), Tier: t, Cap: tierNodeCap(t)})
		counts[t]++
	}
	// Random spanning tree: attach each node i>0 to a uniformly random
	// earlier node (random recursive tree — connected by construction).
	for i := 1; i < spec.Nodes; i++ {
		j := rng.IntN(i)
		addTierLink(g, graph.NodeID(i), graph.NodeID(j))
	}
	for g.NumLinks() < spec.Links {
		a := graph.NodeID(rng.IntN(spec.Nodes))
		b := graph.NodeID(rng.IntN(spec.Nodes))
		if a == b || haveLink(g, a, b) {
			continue
		}
		addTierLink(g, a, b)
	}
	layoutTiers(g, rng)
	return g
}

func haveLink(g *graph.Graph, a, b graph.NodeID) bool {
	for _, lid := range g.Incident(a) {
		if g.Link(lid).Other(a) == b {
			return true
		}
	}
	return false
}

// assignCosts draws node costs uniformly in [0.5, 1.5]× the tier mean and
// sets every link cost to LinkCost, per §IV-A.
func assignCosts(g *graph.Graph, rng *rand.Rand) {
	for _, n := range g.Nodes() {
		mean := tierNodeCostMean(n.Tier)
		g.SetNodeCost(n.ID, mean*(0.5+rng.Float64()))
	}
}

// layoutTiers assigns simple concentric layout coordinates (core at the
// center) for rendering by cmd/topogen. Purely cosmetic.
func layoutTiers(g *graph.Graph, rng *rand.Rand) {
	radius := map[graph.Tier]float64{graph.TierCore: 1, graph.TierTransport: 2.5, graph.TierEdge: 4}
	idx := map[graph.Tier]int{}
	total := map[graph.Tier]int{}
	for _, n := range g.Nodes() {
		total[n.Tier]++
	}
	for _, n := range g.Nodes() {
		k := idx[n.Tier]
		idx[n.Tier]++
		frac := float64(k) / float64(total[n.Tier])
		angle := frac*6.283185307179586 + rng.Float64()*0.05
		r := radius[n.Tier]
		nn := g.Nodes()[n.ID]
		nn.X = r * math.Cos(angle)
		nn.Y = r * math.Sin(angle)
		g.Nodes()[n.ID] = nn
	}
}

// MakeGPUVariant returns a copy of g adapted for the GPU scenario of
// Fig. 10: all core nodes and gpuEdge random edge nodes are marked as
// dedicated GPU datacenters, and every non-GPU datacenter loses 25% of its
// capacity.
func MakeGPUVariant(g *graph.Graph, gpuEdge int, seed uint64) *graph.Graph {
	out := g.Clone()
	rng := rand.New(rand.NewPCG(seed, 0x6770755f)) // "gpu_" tag distinguishes this stream
	for _, n := range out.Nodes() {
		if n.Tier == graph.TierCore {
			out.SetNodeGPU(n.ID, true)
		}
	}
	edges := out.EdgeNodes()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i := 0; i < gpuEdge && i < len(edges); i++ {
		out.SetNodeGPU(edges[i], true)
	}
	for _, n := range out.Nodes() {
		if !n.GPU {
			out.SetNodeCap(n.ID, n.Cap*0.75)
		}
	}
	return out
}

// FindNode returns the ID of the node with the given name.
func FindNode(g *graph.Graph, name string) (graph.NodeID, bool) {
	for _, n := range g.Nodes() {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}
