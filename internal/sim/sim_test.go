package sim

import (
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// tinyConfig is even smaller than QuickConfig for unit tests.
func tinyConfig(util float64, seed uint64) Config {
	c := QuickConfig(topo.CittaStudi, util, seed)
	c.HistSlots = 120
	c.OnlineSlots = 40
	c.LambdaPerNode = 3
	c.MeasureFrom, c.MeasureTo = 5, 35
	return c
}

func TestRunProducesAllAlgorithms(t *testing.T) {
	rr, err := Run(tinyConfig(1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoSlotOff} {
		ar := rr.Results[algo]
		if ar == nil {
			t.Fatalf("no result for %v", algo)
		}
		if len(ar.Log) == 0 {
			t.Fatalf("%v: empty request log", algo)
		}
		if ar.RejectionRate < 0 || ar.RejectionRate > 1 {
			t.Fatalf("%v: rejection rate %g outside [0,1]", algo, ar.RejectionRate)
		}
		if ar.TotalCost != ar.ResourceCost+ar.RejectionCost {
			t.Fatalf("%v: TotalCost %g ≠ %g + %g", algo, ar.TotalCost, ar.ResourceCost, ar.RejectionCost)
		}
		if ar.ResourceCost <= 0 {
			t.Fatalf("%v: non-positive resource cost", algo)
		}
		if ar.BalanceIndex < 0 || ar.BalanceIndex > 1+1e-9 {
			t.Fatalf("%v: balance index %g outside [0,1]", algo, ar.BalanceIndex)
		}
		if len(ar.PerSlotRequested) != 40 || len(ar.PerSlotAccepted) != 40 {
			t.Fatalf("%v: per-slot series wrong length", algo)
		}
		for i := range ar.PerSlotAccepted {
			if ar.PerSlotAccepted[i] > ar.PerSlotRequested[i]+1e-9 {
				t.Fatalf("%v: slot %d accepted %g > requested %g", algo, i, ar.PerSlotAccepted[i], ar.PerSlotRequested[i])
			}
		}
	}
	if rr.Plan == nil || rr.Plan.Empty() {
		t.Fatal("OLIVE run without a plan")
	}
	if rr.PlanTime <= 0 {
		t.Fatal("plan time not recorded")
	}
}

// TestHeadlineOrdering asserts the paper's central comparison: OLIVE's
// rejection rate is at most QUICKG's (usually strictly lower) at high
// utilization, and close to SLOTOFF.
func TestHeadlineOrdering(t *testing.T) {
	cfg := tinyConfig(1.4, 3)
	rr, err := RunRepeated(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	olive := rr.Rejection[core.AlgoOLIVE].Mean
	quick := rr.Rejection[core.AlgoQuickG].Mean
	if olive > quick+0.02 {
		t.Fatalf("OLIVE rejection %.3f worse than QUICKG %.3f", olive, quick)
	}
	if quick == 0 {
		t.Fatal("no rejections at 140% utilization — overload not realized")
	}
}

func TestRunRepeatedSummaries(t *testing.T) {
	rr, err := RunRepeated(tinyConfig(1.0, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Reps != 2 {
		t.Fatalf("Reps = %d, want 2", rr.Reps)
	}
	for _, algo := range []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoSlotOff} {
		if rr.Rejection[algo].N != 2 {
			t.Fatalf("%v: summary over %d runs, want 2", algo, rr.Rejection[algo].N)
		}
		if rr.Runtime[algo].Mean <= 0 {
			t.Fatalf("%v: runtime not measured", algo)
		}
	}
}

func TestRunRepeatedValidation(t *testing.T) {
	if _, err := RunRepeated(tinyConfig(1, 1), 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
	bad := tinyConfig(1, 1)
	bad.HistSlots = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("HistSlots=0 accepted")
	}
}

func TestGPUScenarioRun(t *testing.T) {
	cfg := tinyConfig(1.0, 7)
	cfg.GPU = true
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoFullG}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range rr.Apps {
		if app.Kind != vnet.KindGPU {
			t.Fatalf("GPU scenario produced %v app", app.Kind)
		}
	}
	gpuNodes := 0
	for _, n := range rr.Substrate.Nodes() {
		if n.GPU {
			gpuNodes++
		}
	}
	if gpuNodes == 0 {
		t.Fatal("GPU scenario without GPU datacenters")
	}
	for _, algo := range cfg.Algorithms {
		if rr.Results[algo] == nil {
			t.Fatalf("missing result for %v", algo)
		}
	}
}

func TestPlanUtilizationStressor(t *testing.T) {
	cfg := tinyConfig(1.4, 9)
	cfg.PlanUtilization = 0.6
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Results[core.AlgoOLIVE] == nil {
		t.Fatal("missing OLIVE result")
	}
}

func TestShuffledPlanStillRuns(t *testing.T) {
	cfg := tinyConfig(1.0, 11)
	cfg.ShufflePlanIngress = true
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Results[core.AlgoOLIVE].RejectionRate > 1 {
		t.Fatal("nonsense rejection rate")
	}
}

func TestCAIDATraceRun(t *testing.T) {
	cfg := tinyConfig(1.0, 13)
	cfg.Trace = TraceCAIDA
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementWindow(t *testing.T) {
	cfg := tinyConfig(1.0, 15)
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG}
	cfg.MeasureFrom, cfg.MeasureTo = 38, 40 // nearly empty window
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	narrow := rr.Results[core.AlgoQuickG]
	counted := 0
	for _, rec := range narrow.Log {
		if rec.Arrive >= 38 && rec.Arrive < 40 {
			counted++
		}
	}
	if counted == 0 {
		t.Skip("no arrivals in narrow window for this seed")
	}
	// Rejection cost must come only from windowed requests.
	cfg2 := cfg
	cfg2.MeasureFrom, cfg2.MeasureTo = 0, 40
	rr2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Results[core.AlgoQuickG].RejectionCost < narrow.RejectionCost {
		t.Fatal("wider window produced lower rejection cost")
	}
}

func TestDemandMeanOverride(t *testing.T) {
	cfg := tinyConfig(1.0, 17)
	cfg.DemandMeanOverride = 2.5
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, rec := range rr.Results[core.AlgoQuickG].Log {
		sum += rec.Demand
		n++
	}
	if n == 0 {
		t.Fatal("no requests")
	}
	if mean := sum / float64(n); mean > 4 || mean < 1.5 {
		t.Fatalf("mean demand %g, want ≈2.5 (override active)", mean)
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestTable2And3(t *testing.T) {
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) < 8 {
		t.Fatalf("Table III has %d rows, want ≥8", len(t3.Rows))
	}
}

// TestExperimentsSmoke runs every figure generator at a micro scale to
// confirm end-to-end wiring. Shape assertions live in the benches and in
// EXPERIMENTS.md; here we only require successful, well-formed output.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments are slow")
	}
	s := Scale{
		Reps: 1, HistSlots: 100, OnlineSlots: 40, LambdaPerNode: 2,
		MeasureFrom: 5, MeasureTo: 35, Utils: []float64{1.0}, Seed: 2,
	}
	rej, cost, err := Fig6And7(topo.CittaStudi, s)
	if err != nil {
		t.Fatalf("Fig6And7: %v", err)
	}
	if len(rej.Rows) != 1 || len(cost.Rows) != 1 {
		t.Fatal("Fig6And7 row counts wrong")
	}
	if _, err := Fig8(s); err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if _, err := Fig10(s); err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if _, err := Fig12(s); err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if _, err := Fig13(s); err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	if _, _, err := Fig14(s); err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	if _, _, err := Fig15(s); err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if _, err := Fig16a(s, []float64{2, 4}); err != nil {
		t.Fatalf("Fig16a: %v", err)
	}
	if _, err := Fig16Runtime(topo.CittaStudi, s); err != nil {
		t.Fatalf("Fig16Runtime: %v", err)
	}
}

// TestWindowedPlanRun exercises the time-varying plan extension end to
// end: a diurnal CAIDA trace with per-window plans.
func TestWindowedPlanRun(t *testing.T) {
	cfg := tinyConfig(1.2, 19)
	cfg.Trace = TraceCAIDA
	cfg.DiurnalPeriod = 80
	cfg.PlanWindows = 4
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Windowed == nil || rr.Windowed.Windows() != 4 {
		t.Fatal("windowed plan missing")
	}
	if rr.Plan == nil {
		t.Fatal("initial plan not set from window")
	}
	ar := rr.Results[core.AlgoOLIVE]
	if ar == nil || len(ar.Log) == 0 {
		t.Fatal("no OLIVE result")
	}
	if ar.RejectionRate < 0 || ar.RejectionRate > 1 {
		t.Fatalf("rejection rate %g", ar.RejectionRate)
	}
}
