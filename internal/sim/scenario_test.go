package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/scenario"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// microScale is a tiny but complete experiment scale for scenario tests.
func microScale() Scale {
	return Scale{
		Reps: 1, HistSlots: 100, OnlineSlots: 40, LambdaPerNode: 2,
		MeasureFrom: 5, MeasureTo: 35, Utils: []float64{1.0}, Seed: 2,
	}
}

func TestApplyPatchTranslatesAndValidates(t *testing.T) {
	s := microScale()
	u := 1.2
	q := 7
	shuffle := true
	cfg, err := s.scenarioConfig(scenario.Patch{
		Topology:           "cittastudi",
		Utilization:        &u,
		Trace:              "caida",
		AppKind:            "tree",
		Algorithms:         []string{"OLIVE", "FULLG"},
		Quantiles:          &q,
		ShufflePlanIngress: &shuffle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology != topo.CittaStudi || cfg.Utilization != 1.2 ||
		cfg.Trace != TraceCAIDA || cfg.AppKind != vnet.KindTree ||
		cfg.PlanOptions.Quantiles != 7 || !cfg.ShufflePlanIngress {
		t.Errorf("patch not applied: %+v", cfg)
	}
	if !reflect.DeepEqual(cfg.Algorithms, []core.Algorithm{core.AlgoOLIVE, core.AlgoFullG}) {
		t.Errorf("algorithms %v", cfg.Algorithms)
	}
	// Scale defaults survive where the patch is silent.
	if cfg.HistSlots != 100 || cfg.OnlineSlots != 40 || cfg.Seed != 2 {
		t.Errorf("scale defaults lost: %+v", cfg)
	}

	// Unknown enumerations fail naming the valid options.
	for _, tc := range []struct {
		patch scenario.Patch
		want  string
	}{
		{scenario.Patch{Topology: "atlantis"}, "iris, cittastudi, 5gen, 100n150e"},
		{scenario.Patch{Trace: "pareto"}, "mmpp, caida"},
		{scenario.Patch{AppKind: "mesh"}, "chain, tree, accelerator, gpu"},
		{scenario.Patch{Algorithms: []string{"OLIVE", "DIJKSTRA"}}, "OLIVE, QUICKG, FULLG, SLOTOFF"},
	} {
		_, err := s.scenarioConfig(tc.patch)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("patch %+v: got %v, want error listing %q", tc.patch, err, tc.want)
		}
	}
}

// TestScenarioMatchesHandWrittenSweep locks the executor's rendering to
// the pre-refactor hand-written generator structure: a manual RunSweep
// plus explicit formatting (the code every Fig* function used to
// duplicate) must yield byte-identical tables to the registered spec.
func TestScenarioMatchesHandWrittenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := microScale()

	// Hand-written fig9, exactly as experiments.go built it before the
	// scenario layer: one cell per app-kind with four algorithms.
	cases := []struct {
		label string
		kind  vnet.Kind
	}{
		{"Chain", vnet.KindChain},
		{"Tree", vnet.KindTree},
		{"Acc", vnet.KindAccelerator},
		{"Mix", 0},
	}
	sp := scenario.MustLookup("fig9")
	cells := make([]SweepCell, len(cases))
	for i, c := range cases {
		cfg := s.config(topo.Iris, 1.0)
		cfg.AppKind = c.kind
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoFullG, core.AlgoSlotOff}
		cells[i] = SweepCell{Config: cfg, Reps: s.Reps, Tag: sp.Tag()}
	}
	results, err := s.sweep(cells)
	if err != nil {
		t.Fatal(err)
	}
	want := &Table{
		Title:  "Fig. 9: rejection rate by application type, Iris @100%",
		Header: []string{"apps", "OLIVE", "QUICKG", "FULLG", "SLOTOFF"},
	}
	for i, c := range cases {
		rr := results[i]
		want.AddRow(c.label,
			fmtCI(rr.Rejection[core.AlgoOLIVE]),
			fmtCI(rr.Rejection[core.AlgoQuickG]),
			fmtCI(rr.Rejection[core.AlgoFullG]),
			fmtCI(rr.Rejection[core.AlgoSlotOff]))
	}

	got, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scenario fig9 diverges from the hand-written sweep:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestScenarioPerAlgoRows locks the ablation row layout (Figs. 10/13):
// single-algorithm cells keep their axis label, the unlabeled reference
// cell emits one row per algorithm named after it.
func TestScenarioPerAlgoRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tbl, err := Fig13(microScale())
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, r := range tbl.Rows {
		labels = append(labels, r[0])
	}
	want := []string{
		"OLIVE (plan @60%)", "OLIVE (plan @100%)", "OLIVE (plan @140%)",
		"QUICKG", "SLOTOFF",
	}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("fig13 row labels %v, want %v", labels, want)
	}
}

// TestCustomScenarioBeyondFigures runs a two-axis grid (topology × trace)
// that no Fig* function can express.
func TestCustomScenarioBeyondFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sp := &scenario.Spec{
		Name: "topo-trace-micro",
		Axes: []scenario.Axis{
			{Name: "topology", Values: []scenario.AxisValue{
				{Label: "iris", Patch: scenario.Patch{Topology: "iris"}},
				{Label: "cittastudi", Patch: scenario.Patch{Topology: "cittastudi"}},
			}},
			{Name: "trace", Values: []scenario.AxisValue{
				{Label: "mmpp", Patch: scenario.Patch{Trace: "mmpp"}},
				{Label: "caida", Patch: scenario.Patch{Trace: "caida"}},
			}},
		},
		Reports: []scenario.Report{{
			Title:     "rejection: topology × trace",
			RowHeader: "cell",
			Columns: []scenario.Column{
				{Header: "OLIVE", Metric: scenario.MetricRejection, Algo: "OLIVE"},
				{Header: "QUICKG", Metric: scenario.MetricRejection, Algo: "QUICKG"},
			},
		}},
	}
	tbls, err := RunScenario(sp, microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbls) != 1 || len(tbls[0].Rows) != 4 {
		t.Fatalf("grid tables wrong: %+v", tbls)
	}
	wantRows := []string{"iris mmpp", "iris caida", "cittastudi mmpp", "cittastudi caida"}
	for i, r := range tbls[0].Rows {
		if r[0] != wantRows[i] {
			t.Errorf("row %d label %q, want %q", i, r[0], wantRows[i])
		}
		for j, cell := range r[1:] {
			if !strings.Contains(cell, "±") {
				t.Errorf("row %d col %d %q not a CI", i, j, cell)
			}
		}
	}
}

// TestScenarioTagNamespacesArtifacts: two scenarios with identical cell
// configs must not share artifact keys, and editing a spec must change
// its cells' keys (spec-hash invalidation).
func TestScenarioTagNamespacesArtifacts(t *testing.T) {
	cfg := QuickConfig(topo.CittaStudi, 1.0, 1)
	a, err := cellKey(cfg, 0, "expA@0011223344556677")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cellKey(cfg, 0, "expB@8899aabbccddeeff")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := cellKey(cfg, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == bare || b == bare {
		t.Error("scenario tag does not namespace cell keys")
	}
	sp := scenario.MustLookup("fig6+7")
	before := sp.Tag()
	sp.MaxReps = 2
	if sp.Tag() == before {
		t.Error("spec edit did not change the tag")
	}
}

// TestRunScenarioStaticAndDetailErrors: unknown view/static names fail
// with the valid options.
func TestRunScenarioStaticAndDetailErrors(t *testing.T) {
	s := microScale()
	_, err := RunScenario(&scenario.Spec{Name: "x", Static: "nope"}, s)
	if err == nil || !strings.Contains(err.Error(), "topologies, settings") {
		t.Errorf("static error %v", err)
	}
	_, err = RunScenario(&scenario.Spec{Name: "x", Detail: &scenario.Detail{View: "nope"}}, s)
	if err == nil || !strings.Contains(err.Error(), "slot-demand, node-breakdown") {
		t.Errorf("detail error %v", err)
	}
	_, err = RunScenario(&scenario.Spec{Name: "x"}, s)
	if err == nil {
		t.Error("spec without output ran")
	}
}

// TestReqPerSlotColumn checks the derived column against the direct
// computation Fig. 16a used to inline.
func TestReqPerSlotColumn(t *testing.T) {
	s := microScale()
	cfg := s.config(topo.Iris, 1.0)
	cfg.LambdaPerNode = 4
	edge := len(topo.MustBuild(topo.Iris, 1).EdgeNodes())
	got := columnText(scenario.Column{Metric: scenario.MetricReqPerSlot}, cfg, nil, "")
	if want := fmt.Sprintf("%.0f", 4*float64(edge)); got != want {
		t.Errorf("req-per-slot = %q, want %q", got, want)
	}
}
