package sim

import (
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/topo"
)

// TestGoldenConfigsShape pins the suite's contract: 6 configs, unique
// names (they key the testdata/golden files), all four algorithms each,
// and the once-dodged Random100@1.4 seed-4 instance present.
func TestGoldenConfigsShape(t *testing.T) {
	gcs := GoldenConfigs()
	if len(gcs) != 6 {
		t.Fatalf("suite has %d configs, want 6", len(gcs))
	}
	seen := map[string]bool{}
	for _, gc := range gcs {
		if gc.Name == "" || seen[gc.Name] {
			t.Fatalf("config name %q empty or duplicated", gc.Name)
		}
		seen[gc.Name] = true
		if len(gc.Config.Algorithms) != 4 {
			t.Fatalf("%s runs %d algorithms, want 4", gc.Name, len(gc.Config.Algorithms))
		}
	}
	if !seen["random100-noborrow-u140-s4"] {
		t.Fatal("suite lost random100-noborrow-u140-s4 — the seed-4 LP regression config must stay")
	}
}

// TestFingerprintDeterministic runs one cheap config twice and requires
// identical fingerprints — the property the golden CI job is built on.
func TestFingerprintDeterministic(t *testing.T) {
	cfg := QuickConfig(topo.CittaStudi, 1.0, 9)
	cfg.HistSlots = 80
	cfg.OnlineSlots = 30
	a, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprints differ:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"algo OLIVE", "rejection_rate", "stream_sha256"} {
		if !strings.Contains(a, want) {
			t.Fatalf("fingerprint lacks %q:\n%s", want, a)
		}
	}
}
