package sim

import (
	"crypto/sha256"
	"fmt"
	"math"
	"strings"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/topo"
)

// GoldenConfig is one entry of the golden-fingerprint determinism suite:
// a named simulation configuration whose fingerprint is committed under
// testdata/golden/ and re-derived by CI on every change.
type GoldenConfig struct {
	Name   string
	Config Config
}

// allAlgorithms is the full evaluation set the golden suite runs.
var allAlgorithms = []core.Algorithm{
	core.AlgoOLIVE, core.AlgoQuickG, core.AlgoFullG, core.AlgoSlotOff,
}

// GoldenConfigs returns the 6-config × 4-algorithm smoke suite. The
// configs deliberately cover the features whose refactors historically
// needed hand-run pre/post fingerprint diffs: the default MMPP path, the
// CAIDA trace with windowed (time-varying) plans, the GPU substrate
// variant, the borrowing ablation (at both seed 6 and seed 4 — the
// latter is the instance whose master LP used to kill the solver with
// "singular basis during refactorization" and was dodged until the
// sparse-LU basis landed), and the shuffled-plan spatial stressor —
// each exercising all four algorithms at quick scale.
func GoldenConfigs() []GoldenConfig {
	mk := func(t topo.Name, util float64, seed uint64) Config {
		c := QuickConfig(t, util, seed)
		c.Algorithms = append([]core.Algorithm(nil), allAlgorithms...)
		return c
	}
	caida := mk(topo.CittaStudi, 1.2, 2)
	caida.Trace = TraceCAIDA
	caida.DiurnalPeriod = 60
	caida.PlanWindows = 4
	gpu := mk(topo.Iris, 1.0, 3)
	gpu.GPU = true // GPU substrate variant + uniform GPU-chain app set
	noborrow := mk(topo.Random100, 1.4, 6)
	noborrow.EngineOptions.DisableBorrowing = true
	noborrow4 := mk(topo.Random100, 1.4, 4)
	noborrow4.EngineOptions.DisableBorrowing = true
	shuffled := mk(topo.FiveGEN, 0.8, 5)
	shuffled.ShufflePlanIngress = true
	return []GoldenConfig{
		{Name: "iris-mmpp-u100", Config: mk(topo.Iris, 1.0, 1)},
		{Name: "cittastudi-caida-windowed", Config: caida},
		{Name: "iris-gpu-u100", Config: gpu},
		{Name: "random100-noborrow-u140", Config: noborrow},
		{Name: "random100-noborrow-u140-s4", Config: noborrow4},
		{Name: "5gen-shuffled-u80", Config: shuffled},
	}
}

// Fingerprint runs one configuration and renders a canonical, bit-exact
// digest of everything deterministic about it: per-algorithm headline
// metrics as raw float64 bits, and a SHA-256 over the full per-request
// log and per-slot demand series. Wall-clock metrics (Runtime, PlanTime)
// are excluded by nature. Two runs — any worker count, any machine with
// the same float semantics (the committed goldens are amd64) — must
// produce identical strings, so `diff` is the whole verification.
func Fingerprint(cfg Config) (string, error) {
	rr, err := Run(cfg)
	if err != nil {
		return "", err
	}
	bits := func(f float64) string { return fmt.Sprintf("%016x", math.Float64bits(f)) }
	var sb strings.Builder
	for _, algo := range rr.Config.Algorithms {
		ar := rr.Results[algo]
		fmt.Fprintf(&sb, "algo %s\n", algo)
		fmt.Fprintf(&sb, "  rejection_rate %s\n", bits(ar.RejectionRate))
		fmt.Fprintf(&sb, "  resource_cost %s\n", bits(ar.ResourceCost))
		fmt.Fprintf(&sb, "  rejection_cost %s\n", bits(ar.RejectionCost))
		fmt.Fprintf(&sb, "  total_cost %s\n", bits(ar.TotalCost))
		fmt.Fprintf(&sb, "  balance_index %s\n", bits(ar.BalanceIndex))
		h := sha256.New()
		for i := range ar.Log {
			rec := &ar.Log[i]
			fmt.Fprintf(h, "%d %d %d %d %d %016x %t %t %t %d\n",
				rec.ID, rec.App, rec.Ingress, rec.Arrive, rec.Duration,
				math.Float64bits(rec.Demand), rec.Accepted, rec.Planned,
				rec.Preempted, rec.PreemptSlot)
		}
		for t := range ar.PerSlotRequested {
			fmt.Fprintf(h, "slot %d %016x %016x\n", t,
				math.Float64bits(ar.PerSlotRequested[t]),
				math.Float64bits(ar.PerSlotAccepted[t]))
		}
		fmt.Fprintf(&sb, "  requests %d\n", len(ar.Log))
		fmt.Fprintf(&sb, "  stream_sha256 %x\n", h.Sum(nil))
	}
	return sb.String(), nil
}
