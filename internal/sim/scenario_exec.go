package sim

import (
	"fmt"
	"strings"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/scenario"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// This file binds the declarative scenario layer (internal/scenario) to
// the simulation engine: it turns a Spec's expanded grid into sweep cells,
// fans them out through the parallel runner, and renders the Spec's
// reports — or its single-run detail view, or a static table. Every
// artifact a scenario persists is keyed by the scenario's name and spec
// hash (scenario.Spec.Tag), so editing a spec invalidates its cached
// cells instead of resuming with stale results.

// RunScenario executes one scenario at the given scale and returns its
// tables, one per report (detail and static scenarios yield one table).
// The scale supplies everything the spec leaves open: trace lengths,
// repetition count, the utilization sweep of scaleUtils axes, the base
// seed, and the runner options (workers, artifact store, resume,
// progress).
func RunScenario(sp *scenario.Spec, s Scale) ([]*Table, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	switch {
	case sp.Static != "":
		return runStaticScenario(sp)
	case sp.Detail != nil:
		return runDetailScenario(sp, s)
	default:
		return runGridScenario(sp, s)
	}
}

// scenarioConfig binds one configuration patch to a concrete Config: the
// scale's defaults (Iris at 100% utilization), then the patch on top.
func (s Scale) scenarioConfig(p scenario.Patch) (Config, error) {
	c := s.config(topo.Iris, 1.0)
	if err := applyPatch(&c, p); err != nil {
		return Config{}, err
	}
	return c, nil
}

// applyPatch overlays a scenario patch onto a config, translating the
// patch's string-typed enumerations and rejecting unknown values with the
// valid options spelled out.
func applyPatch(c *Config, p scenario.Patch) error {
	if p.Topology != "" {
		t := topo.Name(p.Topology)
		if _, ok := topo.Specs()[t]; !ok {
			return fmt.Errorf("sim: unknown topology %q (valid: %s)", p.Topology, topoNames())
		}
		c.Topology = t
	}
	if p.Utilization != nil {
		c.Utilization = *p.Utilization
	}
	if p.PlanUtilization != nil {
		c.PlanUtilization = *p.PlanUtilization
	}
	if p.ShufflePlanIngress != nil {
		c.ShufflePlanIngress = *p.ShufflePlanIngress
	}
	if p.LambdaPerNode != nil {
		c.LambdaPerNode = *p.LambdaPerNode
	}
	if p.DemandMeanOverride != nil {
		c.DemandMeanOverride = *p.DemandMeanOverride
	}
	if p.Trace != "" {
		switch TraceKind(p.Trace) {
		case TraceMMPP, TraceCAIDA:
			c.Trace = TraceKind(p.Trace)
		default:
			return fmt.Errorf("sim: unknown trace %q (valid: %s, %s)", p.Trace, TraceMMPP, TraceCAIDA)
		}
	}
	if p.DiurnalPeriod != nil {
		c.DiurnalPeriod = *p.DiurnalPeriod
	}
	if p.AppKind != "" {
		switch p.AppKind {
		case "chain":
			c.AppKind = vnet.KindChain
		case "tree":
			c.AppKind = vnet.KindTree
		case "accelerator":
			c.AppKind = vnet.KindAccelerator
		case "gpu":
			c.AppKind = vnet.KindGPU
		default:
			return fmt.Errorf("sim: unknown application kind %q (valid: chain, tree, accelerator, gpu)", p.AppKind)
		}
	}
	if p.GPU != nil {
		c.GPU = *p.GPU
	}
	if p.Algorithms != nil {
		algos := make([]core.Algorithm, len(p.Algorithms))
		for i, a := range p.Algorithms {
			switch core.Algorithm(a) {
			case core.AlgoOLIVE, core.AlgoQuickG, core.AlgoFullG, core.AlgoSlotOff:
				algos[i] = core.Algorithm(a)
			default:
				return fmt.Errorf("sim: unknown algorithm %q (valid: %s, %s, %s, %s)",
					a, core.AlgoOLIVE, core.AlgoQuickG, core.AlgoFullG, core.AlgoSlotOff)
			}
		}
		c.Algorithms = algos
	}
	if p.Quantiles != nil {
		c.PlanOptions.Quantiles = *p.Quantiles
	}
	if p.PlanWindows != nil {
		c.PlanWindows = *p.PlanWindows
	}
	if p.HistSlots != nil {
		c.HistSlots = *p.HistSlots
	}
	if p.OnlineSlots != nil {
		c.OnlineSlots = *p.OnlineSlots
	}
	if p.MeasureFrom != nil {
		c.MeasureFrom = *p.MeasureFrom
	}
	if p.MeasureTo != nil {
		c.MeasureTo = *p.MeasureTo
	}
	return nil
}

// topoNames lists the valid topology names for error messages.
func topoNames() string {
	names := make([]string, 0, len(topo.All()))
	for _, t := range topo.All() {
		names = append(names, string(t))
	}
	return strings.Join(names, ", ")
}

// ---- Grid scenarios (aggregate reports over a sweep) ----

// runGridScenario expands the spec's axes, fans the cells out through the
// runner, and renders one table per report.
func runGridScenario(sp *scenario.Spec, s Scale) ([]*Table, error) {
	points, err := sp.Expand(s.Utils)
	if err != nil {
		return nil, err
	}
	reps := s.Reps
	if sp.Reps > 0 {
		reps = sp.Reps
	}
	if sp.MaxReps > 0 {
		reps = min(reps, sp.MaxReps)
	}
	tag := sp.Tag()
	cells := make([]SweepCell, len(points))
	for i, pt := range points {
		cfg, err := s.scenarioConfig(pt.Patch)
		if err != nil {
			return nil, fmt.Errorf("%s: cell %d (%s): %w", sp.Name, i, pt.RowLabel(), err)
		}
		cells[i] = SweepCell{Config: cfg, Reps: reps, Tag: tag}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}

	baseCfg, err := s.scenarioConfig(sp.Base)
	if err != nil {
		return nil, err
	}
	tables := make([]*Table, len(sp.Reports))
	for ri, rep := range sp.Reports {
		tables[ri] = renderReport(rep, baseCfg, points, cells, results)
	}
	return tables, nil
}

// renderReport formats one report over the expanded grid. In fixed-
// algorithm mode every grid point is one row; in per-algorithm mode each
// point emits one row per configured algorithm (a point with an empty
// axis label is labeled by the algorithm name alone — the reference rows
// of Figs. 10 and 13).
func renderReport(r scenario.Report, baseCfg Config, points []scenario.GridPoint, cells []SweepCell, results []*RepeatedResult) *Table {
	tbl := &Table{
		Title:  strings.ReplaceAll(r.Title, "{topo}", string(baseCfg.Topology)),
		Header: make([]string, 0, len(r.Columns)+1),
	}
	tbl.Header = append(tbl.Header, r.RowHeader)
	for _, c := range r.Columns {
		tbl.Header = append(tbl.Header, c.Header)
	}
	for i := range points {
		label := points[i].RowLabel()
		cfg := cells[i].Config
		rr := results[i]
		if r.PerAlgoRows() {
			for _, algo := range cfg.Algorithms {
				rowLabel := label
				switch {
				case rowLabel == "":
					rowLabel = string(algo)
				case len(cfg.Algorithms) > 1:
					rowLabel = label + " " + string(algo)
				}
				tbl.AddRow(reportRow(r, rowLabel, cfg, rr, algo)...)
			}
		} else {
			tbl.AddRow(reportRow(r, label, cfg, rr, "")...)
		}
	}
	return tbl
}

// reportRow formats one table row; rowAlgo supplies the algorithm of
// per-algorithm-mode metric columns.
func reportRow(r scenario.Report, label string, cfg Config, rr *RepeatedResult, rowAlgo core.Algorithm) []string {
	row := make([]string, 0, len(r.Columns)+1)
	row = append(row, label)
	for _, c := range r.Columns {
		row = append(row, columnText(c, cfg, rr, rowAlgo))
	}
	return row
}

// columnText formats one metric cell.
func columnText(c scenario.Column, cfg Config, rr *RepeatedResult, rowAlgo core.Algorithm) string {
	if c.Metric == scenario.MetricReqPerSlot {
		edge := len(topo.MustBuild(cfg.Topology, cfg.TopologySeed).EdgeNodes())
		return fmt.Sprintf("%.0f", cfg.LambdaPerNode*float64(edge))
	}
	algo := core.Algorithm(c.Algo)
	if c.Algo == "" {
		algo = rowAlgo
	}
	var m MetricSummary
	format := FormatCI
	switch c.Metric {
	case scenario.MetricRejection:
		m = rr.Rejection[algo]
	case scenario.MetricBalance:
		m = rr.Balance[algo]
	case scenario.MetricCost:
		m, format = rr.Cost[algo], FormatCIg
	case scenario.MetricRuntime:
		m, format = rr.Runtime[algo], FormatCIg
	}
	if c.Format != "" {
		format = c.Format
	}
	if format == FormatCIg {
		return fmtCIg(m)
	}
	return fmtCI(m)
}

// Report formats re-exported for columnText (values match
// scenario.FormatCI/FormatCIg).
const (
	FormatCI  = scenario.FormatCI
	FormatCIg = scenario.FormatCIg
)

// ---- Detail scenarios (one full run, derived table) ----

// runDetailScenario executes the spec's single cell through the runner
// (cancellation, artifact caching keyed by the spec tag) and derives the
// table through the named view.
func runDetailScenario(sp *scenario.Spec, s Scale) ([]*Table, error) {
	cfg, err := s.scenarioConfig(sp.Base)
	if err != nil {
		return nil, err
	}
	d := sp.Detail
	var build func(*RunResult) (*Table, error)
	switch d.View {
	case "slot-demand":
		build = func(rr *RunResult) (*Table, error) { return slotDemandTable(cfg, d, rr) }
	case "node-breakdown":
		build = func(rr *RunResult) (*Table, error) { return nodeBreakdownTable(cfg, d, rr) }
	default:
		return nil, fmt.Errorf("sim: %s: unknown detail view %q (valid: slot-demand, node-breakdown)", sp.Name, d.View)
	}
	tbl, err := runTableCell(sp.Tag(), cfg, s.Runner, build)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// slotDemandTable renders the per-slot requested vs allocated demand of
// one run over the view's zoom window (Fig. 8). The window starts at
// ZoomFrom at paper scale; online phases too short for it fall back to
// one third of the phase, preserving the paper's proportions.
func slotDemandTable(cfg Config, d *scenario.Detail, rr *RunResult) (*Table, error) {
	from := d.ZoomFrom
	if cfg.OnlineSlots < d.ZoomFrom+d.ZoomLen {
		from = cfg.OnlineSlots / 3
	}
	to := min(from+d.ZoomLen, cfg.OnlineSlots)
	tbl := &Table{
		Title:  strings.ReplaceAll(d.Title, "{slots}", fmt.Sprintf("%d-%d", from, to)),
		Header: make([]string, 0, len(cfg.Algorithms)+2),
	}
	tbl.Header = append(tbl.Header, "slot", "requested")
	for _, algo := range cfg.Algorithms {
		tbl.Header = append(tbl.Header, string(algo))
	}
	requested := rr.Results[cfg.Algorithms[0]].PerSlotRequested
	for t := from; t < to; t++ {
		row := make([]string, 0, len(cfg.Algorithms)+2)
		row = append(row, fmt.Sprintf("%d", t), fmt.Sprintf("%.1f", requested[t]/100))
		for _, algo := range cfg.Algorithms {
			row = append(row, fmt.Sprintf("%.1f", rr.Results[algo].PerSlotAccepted[t]/100))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// nodeBreakdownTable renders the per-application breakdown of one
// substrate node under the first configured algorithm (Fig. 12): the
// plan's guaranteed demand vs the classification of the node's requests
// into guaranteed / borrowed / preempted / rejected.
func nodeBreakdownTable(cfg Config, d *scenario.Detail, rr *RunResult) (*Table, error) {
	node, ok := topo.FindNode(rr.Substrate, d.Node)
	if !ok {
		return nil, fmt.Errorf("sim: %s lacks a %q node", cfg.Topology, d.Node)
	}
	ar := rr.Results[cfg.Algorithms[0]]
	tbl := &Table{
		Title:  d.Title,
		Header: []string{"app", "guaranteed demand", "peak active demand", "guaranteed", "borrowed", "preempted", "rejected"},
	}
	for appIdx, app := range rr.Apps {
		var guar float64
		if cp := rr.Plan.Lookup(appIdx, node); cp != nil {
			guar = cp.PlannedDemand()
		}
		active := make([]float64, cfg.OnlineSlots+1)
		var nGuar, nBorrow, nPreempt, nRej int
		for _, rec := range ar.Log {
			if rec.Ingress != node || rec.App != appIdx {
				continue
			}
			switch {
			case !rec.Accepted:
				nRej++
			case rec.Preempted:
				nPreempt++
			case rec.Planned:
				nGuar++
			default:
				nBorrow++
			}
			if rec.Accepted {
				end := rec.Arrive + rec.Duration
				if rec.Preempted && rec.PreemptSlot < end {
					end = rec.PreemptSlot
				}
				if end > cfg.OnlineSlots {
					end = cfg.OnlineSlots
				}
				for t := rec.Arrive; t < end; t++ {
					active[t] += rec.Demand
				}
			}
		}
		peak := 0.0
		for _, v := range active {
			if v > peak {
				peak = v
			}
		}
		tbl.AddRow(app.Name,
			fmt.Sprintf("%.0f", guar),
			fmt.Sprintf("%.0f", peak),
			fmt.Sprintf("%d", nGuar), fmt.Sprintf("%d", nBorrow),
			fmt.Sprintf("%d", nPreempt), fmt.Sprintf("%d", nRej))
	}
	return tbl, nil
}

// ---- Static scenarios (simulation-free tables) ----

// runStaticScenario renders a named simulation-free table.
func runStaticScenario(sp *scenario.Spec) ([]*Table, error) {
	switch sp.Static {
	case "topologies":
		tbl, err := topologyInventoryTable()
		if err != nil {
			return nil, err
		}
		return []*Table{tbl}, nil
	case "settings":
		return []*Table{settingsTable()}, nil
	default:
		return nil, fmt.Errorf("sim: %s: unknown static table %q (valid: topologies, settings)", sp.Name, sp.Static)
	}
}

// topologyInventoryTable regenerates Table II: the topology inventory.
func topologyInventoryTable() (*Table, error) {
	tbl := &Table{
		Title:  "Table II: topologies",
		Header: []string{"topology", "nodes", "links", "edge/transport/core", "description"},
	}
	specs := topo.Specs()
	for _, name := range topo.All() {
		sp := specs[name]
		g, err := topo.Build(name, 1)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(string(name),
			fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumLinks()),
			fmt.Sprintf("%d/%d/%d", sp.EdgeN, sp.TransportN, sp.CoreN),
			sp.Description)
	}
	return tbl, nil
}

// settingsTable echoes the experimental settings (Table III) as realized
// by this reproduction.
func settingsTable() *Table {
	tbl := &Table{
		Title:  "Table III: experimental settings",
		Header: []string{"parameter", "value"},
	}
	tbl.AddRow("Node popularity", "Zipf(α=1)")
	tbl.AddRow("Plan period", "5400 slots")
	tbl.AddRow("Test period", "600 slots")
	tbl.AddRow("Request size", "N(10, 2²), mean scaled 6–14 with utilization")
	tbl.AddRow("Request duration", "Exponential, mean 10")
	tbl.AddRow("Requests per node (λ)", "10 per slot")
	tbl.AddRow("Applications", "2 chain, 1 tree, 1 accelerator")
	tbl.AddRow("VNFs", "U(3,5)")
	tbl.AddRow("Element sizes", "N(50, 30²)")
	tbl.AddRow("Rejection quantiles", fmt.Sprintf("%d", plan.DefaultOptions().Quantiles))
	return tbl
}
