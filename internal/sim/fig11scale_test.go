package sim

import (
	"testing"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/topo"
)

// TestBalanceOrderingMatchesFig11 asserts the paper's Fig. 11 ordering at
// a near-paper scale: rejection balance grows with the quantile count, and
// QUICKG (which cannot actively balance) sits below OLIVE with P=10.
func TestBalanceOrderingMatchesFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("near-paper-scale run")
	}
	base := func() Config {
		cfg := DefaultConfig(topo.Iris, 1.4, 3)
		cfg.HistSlots, cfg.OnlineSlots = 600, 150
		cfg.LambdaPerNode = 8
		cfg.MeasureFrom, cfg.MeasureTo = 20, 130
		cfg.PlanOptions.BootstrapB = 30
		return cfg
	}
	balance := map[string]float64{}
	for _, q := range []int{1, 10} {
		cfg := base()
		cfg.PlanOptions.Quantiles = q
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
		rr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		balance[fmtQ(q)] = rr.Results[core.AlgoOLIVE].BalanceIndex
	}
	cfg := base()
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG}
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	balance["quickg"] = rr.Results[core.AlgoQuickG].BalanceIndex
	t.Logf("balance: OLIVE P=1 %.3f, OLIVE P=10 %.3f, QUICKG %.3f",
		balance["P1"], balance["P10"], balance["quickg"])

	if balance["P10"] < balance["P1"]-0.03 {
		t.Errorf("P=10 balance %.3f below P=1 %.3f; quantiles should improve balance",
			balance["P10"], balance["P1"])
	}
	if balance["quickg"] > balance["P10"]+0.03 {
		t.Errorf("QUICKG balance %.3f above OLIVE P=10 %.3f; Fig. 11 ordering violated",
			balance["quickg"], balance["P10"])
	}
}

func fmtQ(q int) string {
	if q == 1 {
		return "P1"
	}
	return "P10"
}
