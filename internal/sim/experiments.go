package sim

import (
	"fmt"
	"io"
	"strings"

	"github.com/olive-vne/olive/internal/scenario"
	"github.com/olive-vne/olive/internal/topo"
)

// Table is a printable experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Scale bundles the knobs that trade fidelity for runtime. PaperScale
// reproduces Table III; SmokeScale shrinks every dimension for tests and
// benchmark smoke runs while preserving the comparisons' shape.
type Scale struct {
	Reps          int
	HistSlots     int
	OnlineSlots   int
	LambdaPerNode float64
	MeasureFrom   int
	MeasureTo     int
	Utils         []float64
	Seed          uint64
	// Runner configures the parallel experiment runner every generator
	// fans its cells out through. The zero value uses GOMAXPROCS
	// workers with no artifact store.
	Runner RunnerOptions
}

// sweep fans the cells out through the scale's runner.
func (s Scale) sweep(cells []SweepCell) ([]*RepeatedResult, error) {
	return RunSweep(cells, s.Runner)
}

// PaperScale returns the full Table III parameters (30 reps × 6000 slots).
func PaperScale() Scale {
	return Scale{
		Reps: 30, HistSlots: 5400, OnlineSlots: 600, LambdaPerNode: 10,
		MeasureFrom: 100, MeasureTo: 500,
		Utils: []float64{0.6, 0.8, 1.0, 1.2, 1.4},
		Seed:  1,
	}
}

// SmokeScale returns a reduced configuration (~100× fewer requests) for
// tests and smoke benches.
func SmokeScale() Scale {
	return Scale{
		Reps: 2, HistSlots: 150, OnlineSlots: 50, LambdaPerNode: 3,
		MeasureFrom: 5, MeasureTo: 45,
		Utils: []float64{0.6, 1.0, 1.4},
		Seed:  1,
	}
}

func (s Scale) config(t topo.Name, util float64) Config {
	c := DefaultConfig(t, util, s.Seed)
	c.HistSlots = s.HistSlots
	c.OnlineSlots = s.OnlineSlots
	c.LambdaPerNode = s.LambdaPerNode
	c.MeasureFrom = s.MeasureFrom
	c.MeasureTo = s.MeasureTo
	if s.HistSlots < 1000 {
		c.PlanOptions.BootstrapB = 30
		c.PlanOptions.MaxPricingRounds = 4
	}
	return c
}

func fmtCI(m MetricSummary) string {
	return fmt.Sprintf("%.3f±%.3f", m.Mean, m.Hi-m.Mean)
}

func fmtCIg(m MetricSummary) string {
	return fmt.Sprintf("%.3g±%.2g", m.Mean, m.Hi-m.Mean)
}

// The paper's figures and tables are registered as declarative scenarios
// (internal/scenario, builtin.go); the generators below are thin wrappers
// that load a registered spec — parameterizing it where the original
// function took arguments — and render it through RunScenario. Arbitrary
// further scenarios run through the same machinery: `vnesim -scenario`.

// firstTable unwraps a single-report scenario result.
func firstTable(tbls []*Table, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return tbls[0], nil
}

// Fig6And7 regenerates Fig. 6 (rejection rate vs utilization) and Fig. 7
// (total cost) for one topology: OLIVE vs QUICKG vs SLOTOFF over the
// utilization sweep.
func Fig6And7(t topo.Name, s Scale) (rejection, cost *Table, err error) {
	sp := scenario.MustLookup("fig6+7")
	sp.Base.Topology = string(t)
	tbls, err := RunScenario(sp, s)
	if err != nil {
		return nil, nil, err
	}
	return tbls[0], tbls[1], nil
}

// Fig8 regenerates the burst zoom (Fig. 8): per-slot requested vs
// allocated demand on Iris at 140% utilization over a 30-slot window
// (slots 200–230 at paper scale; scaled proportionally otherwise).
func Fig8(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig8"), s))
}

// Fig9 regenerates the application-type sensitivity (Fig. 9): rejection
// rate on Iris at 100% utilization with uniform app sets (chain, tree,
// accelerator) and the default mix, for QUICKG, FULLG, OLIVE and SLOTOFF.
func Fig9(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig9"), s))
}

// Fig10 regenerates the GPU scenario (Fig. 10): Iris split into GPU and
// non-GPU datacenters, four GPU-chain applications, FULLG vs OLIVE vs
// SLOTOFF (QUICKG cannot run: collocation is impossible for GPU chains).
func Fig10(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig10"), s))
}

// Fig11 regenerates the balance-index ablation (Fig. 11): the rejection
// balance index (Eq. 20) of OLIVE with 1, 2, 10 and 50 quantiles, and of
// QUICKG, on Iris at 140% utilization.
func Fig11(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig11"), s))
}

// Fig12 regenerates the per-node allocation detail (Fig. 12): OLIVE on
// Iris at 100%, zooming into the Franklin edge node — per application, the
// guaranteed (planned) demand threshold and the classification of its
// requests into guaranteed / borrowed / preempted / rejected.
func Fig12(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig12"), s))
}

// Fig13 regenerates the plan-deviation stressor (Fig. 13): OLIVE running
// at 140% utilization with plans built for 60%, 100% and 140% expected
// demand, with QUICKG and SLOTOFF for reference.
func Fig13(s Scale) (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("fig13"), s))
}

// Fig14 regenerates the spatial-distribution stressor (Fig. 14): the plan
// is built from a history whose ingress nodes were shuffled; OLIVE must
// still beat QUICKG on rejection with comparable cost.
func Fig14(s Scale) (rejection, cost *Table, err error) {
	tbls, err := RunScenario(scenario.MustLookup("fig14"), s)
	if err != nil {
		return nil, nil, err
	}
	return tbls[0], tbls[1], nil
}

// Fig15 regenerates the CAIDA-trace experiment (Fig. 15): rejection and
// cost on Iris under the heavy-tailed trace substitute.
func Fig15(s Scale) (rejection, cost *Table, err error) {
	tbls, err := RunScenario(scenario.MustLookup("fig15"), s)
	if err != nil {
		return nil, nil, err
	}
	return tbls[0], tbls[1], nil
}

// Fig16a regenerates the arrival-rate runtime scaling (Fig. 16a): OLIVE
// and QUICKG runtime on Iris at 100% utilization while the arrival rate
// grows. Utilization stays fixed across the λ sweep: Run's calibration
// scales the demand mean with 1/λ (§IV-B "Runtime").
func Fig16a(s Scale, lambdas []float64) (*Table, error) {
	sp := scenario.MustLookup("fig16a")
	sp.Axes[0].Values = scenario.LambdaValues(lambdas)
	return firstTable(RunScenario(sp, s))
}

// Fig16Runtime regenerates Figs. 16b–e: OLIVE vs QUICKG runtime per
// topology across the utilization sweep.
func Fig16Runtime(t topo.Name, s Scale) (*Table, error) {
	sp := scenario.MustLookup("fig16")
	sp.Base.Topology = string(t)
	return firstTable(RunScenario(sp, s))
}

// Table2 regenerates Table II: the topology inventory.
func Table2() (*Table, error) {
	return firstTable(RunScenario(scenario.MustLookup("table2"), Scale{}))
}

// Table3 echoes the experimental settings (Table III) as realized by this
// reproduction.
func Table3() *Table {
	tbls, err := RunScenario(scenario.MustLookup("table3"), Scale{})
	if err != nil {
		// The registered spec names a known static table; rendering it
		// cannot fail.
		panic(err)
	}
	return tbls[0]
}
