package sim

import (
	"fmt"
	"io"
	"strings"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// Table is a printable experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Scale bundles the knobs that trade fidelity for runtime. PaperScale
// reproduces Table III; SmokeScale shrinks every dimension for tests and
// benchmark smoke runs while preserving the comparisons' shape.
type Scale struct {
	Reps          int
	HistSlots     int
	OnlineSlots   int
	LambdaPerNode float64
	MeasureFrom   int
	MeasureTo     int
	Utils         []float64
	Seed          uint64
	// Runner configures the parallel experiment runner every generator
	// fans its cells out through. The zero value uses GOMAXPROCS
	// workers with no artifact store.
	Runner RunnerOptions
}

// sweep fans the cells out through the scale's runner.
func (s Scale) sweep(cells []SweepCell) ([]*RepeatedResult, error) {
	return RunSweep(cells, s.Runner)
}

// PaperScale returns the full Table III parameters (30 reps × 6000 slots).
func PaperScale() Scale {
	return Scale{
		Reps: 30, HistSlots: 5400, OnlineSlots: 600, LambdaPerNode: 10,
		MeasureFrom: 100, MeasureTo: 500,
		Utils: []float64{0.6, 0.8, 1.0, 1.2, 1.4},
		Seed:  1,
	}
}

// SmokeScale returns a reduced configuration (~100× fewer requests) for
// tests and smoke benches.
func SmokeScale() Scale {
	return Scale{
		Reps: 2, HistSlots: 150, OnlineSlots: 50, LambdaPerNode: 3,
		MeasureFrom: 5, MeasureTo: 45,
		Utils: []float64{0.6, 1.0, 1.4},
		Seed:  1,
	}
}

func (s Scale) config(t topo.Name, util float64) Config {
	c := DefaultConfig(t, util, s.Seed)
	c.HistSlots = s.HistSlots
	c.OnlineSlots = s.OnlineSlots
	c.LambdaPerNode = s.LambdaPerNode
	c.MeasureFrom = s.MeasureFrom
	c.MeasureTo = s.MeasureTo
	if s.HistSlots < 1000 {
		c.PlanOptions.BootstrapB = 30
		c.PlanOptions.MaxPricingRounds = 4
	}
	return c
}

func fmtCI(m MetricSummary) string {
	return fmt.Sprintf("%.3f±%.3f", m.Mean, m.Hi-m.Mean)
}

func fmtCIg(m MetricSummary) string {
	return fmt.Sprintf("%.3g±%.2g", m.Mean, m.Hi-m.Mean)
}

// Fig6And7 regenerates Fig. 6 (rejection rate vs utilization) and Fig. 7
// (total cost) for one topology: OLIVE vs QUICKG vs SLOTOFF over the
// utilization sweep.
func Fig6And7(t topo.Name, s Scale) (rejection, cost *Table, err error) {
	rejection = &Table{
		Title:  fmt.Sprintf("Fig. 6 (%s): rejection rate vs utilization", t),
		Header: []string{"util", "OLIVE", "QUICKG", "SLOTOFF"},
	}
	cost = &Table{
		Title:  fmt.Sprintf("Fig. 7 (%s): total cost vs utilization", t),
		Header: []string{"util", "OLIVE", "QUICKG", "SLOTOFF"},
	}
	cells := make([]SweepCell, len(s.Utils))
	for i, u := range s.Utils {
		cells[i] = SweepCell{Config: s.config(t, u), Reps: s.Reps}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, nil, err
	}
	for i, u := range s.Utils {
		rr := results[i]
		rejection.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCI(rr.Rejection[core.AlgoOLIVE]),
			fmtCI(rr.Rejection[core.AlgoQuickG]),
			fmtCI(rr.Rejection[core.AlgoSlotOff]))
		cost.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCIg(rr.Cost[core.AlgoOLIVE]),
			fmtCIg(rr.Cost[core.AlgoQuickG]),
			fmtCIg(rr.Cost[core.AlgoSlotOff]))
	}
	return rejection, cost, nil
}

// Fig8 regenerates the burst zoom (Fig. 8): per-slot requested vs
// allocated demand on Iris at 140% utilization over a 30-slot window
// (slots 200–230 at paper scale; scaled proportionally otherwise).
func Fig8(s Scale) (*Table, error) {
	cfg := s.config(topo.Iris, 1.4)
	return runTableCell("fig8", cfg, s.Runner, func(rr *RunResult) (*Table, error) {
		from := 200
		if cfg.OnlineSlots < 230 {
			from = cfg.OnlineSlots / 3
		}
		to := from + 30
		if to > cfg.OnlineSlots {
			to = cfg.OnlineSlots
		}
		tbl := &Table{
			Title:  fmt.Sprintf("Fig. 8: allocated demand per slot, Iris @140%%, slots %d-%d (demand ÷100)", from, to),
			Header: []string{"slot", "requested", "OLIVE", "QUICKG", "SLOTOFF"},
		}
		olive := rr.Results[core.AlgoOLIVE]
		quick := rr.Results[core.AlgoQuickG]
		slot := rr.Results[core.AlgoSlotOff]
		for t := from; t < to; t++ {
			tbl.AddRow(fmt.Sprintf("%d", t),
				fmt.Sprintf("%.1f", olive.PerSlotRequested[t]/100),
				fmt.Sprintf("%.1f", olive.PerSlotAccepted[t]/100),
				fmt.Sprintf("%.1f", quick.PerSlotAccepted[t]/100),
				fmt.Sprintf("%.1f", slot.PerSlotAccepted[t]/100))
		}
		return tbl, nil
	})
}

// Fig9 regenerates the application-type sensitivity (Fig. 9): rejection
// rate on Iris at 100% utilization with uniform app sets (chain, tree,
// accelerator) and the default mix, for QUICKG, FULLG, OLIVE and SLOTOFF.
func Fig9(s Scale) (*Table, error) {
	tbl := &Table{
		Title:  "Fig. 9: rejection rate by application type, Iris @100%",
		Header: []string{"apps", "OLIVE", "QUICKG", "FULLG", "SLOTOFF"},
	}
	cases := []struct {
		label string
		kind  vnet.Kind
	}{
		{"Chain", vnet.KindChain},
		{"Tree", vnet.KindTree},
		{"Acc", vnet.KindAccelerator},
		{"Mix", 0},
	}
	cells := make([]SweepCell, len(cases))
	for i, c := range cases {
		cfg := s.config(topo.Iris, 1.0)
		cfg.AppKind = c.kind
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoFullG, core.AlgoSlotOff}
		cells[i] = SweepCell{Config: cfg, Reps: s.Reps}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		rr := results[i]
		tbl.AddRow(c.label,
			fmtCI(rr.Rejection[core.AlgoOLIVE]),
			fmtCI(rr.Rejection[core.AlgoQuickG]),
			fmtCI(rr.Rejection[core.AlgoFullG]),
			fmtCI(rr.Rejection[core.AlgoSlotOff]))
	}
	return tbl, nil
}

// Fig10 regenerates the GPU scenario (Fig. 10): Iris split into GPU and
// non-GPU datacenters, four GPU-chain applications, FULLG vs OLIVE vs
// SLOTOFF (QUICKG cannot run: collocation is impossible for GPU chains).
func Fig10(s Scale) (*Table, error) {
	cfg := s.config(topo.Iris, 1.0)
	cfg.GPU = true
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoFullG, core.AlgoSlotOff}
	results, err := s.sweep([]SweepCell{{Config: cfg, Reps: s.Reps}})
	if err != nil {
		return nil, err
	}
	rr := results[0]
	tbl := &Table{
		Title:  "Fig. 10: GPU scenario rejection rate, Iris @100%",
		Header: []string{"algorithm", "rejection"},
	}
	tbl.AddRow("OLIVE", fmtCI(rr.Rejection[core.AlgoOLIVE]))
	tbl.AddRow("FULLG", fmtCI(rr.Rejection[core.AlgoFullG]))
	tbl.AddRow("SLOTOFF", fmtCI(rr.Rejection[core.AlgoSlotOff]))
	return tbl, nil
}

// Fig11 regenerates the balance-index ablation (Fig. 11): the rejection
// balance index (Eq. 20) of OLIVE with 1, 2, 10 and 50 quantiles, and of
// QUICKG, on Iris at 140% utilization.
func Fig11(s Scale) (*Table, error) {
	tbl := &Table{
		Title:  "Fig. 11: rejection balance index by quantiles, Iris @140%",
		Header: []string{"variant", "balance index"},
	}
	quantiles := []int{1, 2, 10, 50}
	var cells []SweepCell
	for _, q := range quantiles {
		cfg := s.config(topo.Iris, 1.4)
		cfg.PlanOptions.Quantiles = q
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
		cells = append(cells, SweepCell{Config: cfg, Reps: s.Reps})
	}
	cfg := s.config(topo.Iris, 1.4)
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG}
	cells = append(cells, SweepCell{Config: cfg, Reps: s.Reps})
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}
	for i, q := range quantiles {
		tbl.AddRow(fmt.Sprintf("OLIVE P=%d", q), fmtCI(results[i].Balance[core.AlgoOLIVE]))
	}
	tbl.AddRow("QUICKG", fmtCI(results[len(quantiles)].Balance[core.AlgoQuickG]))
	return tbl, nil
}

// Fig12 regenerates the per-node allocation detail (Fig. 12): OLIVE on
// Iris at 100%, zooming into the Franklin edge node — per application, the
// guaranteed (planned) demand threshold and the classification of its
// requests into guaranteed / borrowed / preempted / rejected.
func Fig12(s Scale) (*Table, error) {
	cfg := s.config(topo.Iris, 1.0)
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	return runTableCell("fig12", cfg, s.Runner, func(rr *RunResult) (*Table, error) {
		return fig12Table(cfg, rr)
	})
}

// fig12Table derives the Franklin-node breakdown from one OLIVE run.
func fig12Table(cfg Config, rr *RunResult) (*Table, error) {
	franklin, ok := topo.FindNode(rr.Substrate, "Franklin")
	if !ok {
		return nil, fmt.Errorf("sim: Iris lacks a Franklin node")
	}
	ar := rr.Results[core.AlgoOLIVE]
	tbl := &Table{
		Title:  "Fig. 12: Franklin node (Iris, MMPP) — OLIVE guaranteed demand vs actual allocation",
		Header: []string{"app", "guaranteed demand", "peak active demand", "guaranteed", "borrowed", "preempted", "rejected"},
	}
	for appIdx, app := range rr.Apps {
		var guar float64
		if cp := rr.Plan.Lookup(appIdx, franklin); cp != nil {
			guar = cp.PlannedDemand()
		}
		active := make([]float64, cfg.OnlineSlots+1)
		var nGuar, nBorrow, nPreempt, nRej int
		for _, rec := range ar.Log {
			if rec.Ingress != franklin || rec.App != appIdx {
				continue
			}
			switch {
			case !rec.Accepted:
				nRej++
			case rec.Preempted:
				nPreempt++
			case rec.Planned:
				nGuar++
			default:
				nBorrow++
			}
			if rec.Accepted {
				end := rec.Arrive + rec.Duration
				if rec.Preempted && rec.PreemptSlot < end {
					end = rec.PreemptSlot
				}
				if end > cfg.OnlineSlots {
					end = cfg.OnlineSlots
				}
				for t := rec.Arrive; t < end; t++ {
					active[t] += rec.Demand
				}
			}
		}
		peak := 0.0
		for _, v := range active {
			if v > peak {
				peak = v
			}
		}
		tbl.AddRow(app.Name,
			fmt.Sprintf("%.0f", guar),
			fmt.Sprintf("%.0f", peak),
			fmt.Sprintf("%d", nGuar), fmt.Sprintf("%d", nBorrow),
			fmt.Sprintf("%d", nPreempt), fmt.Sprintf("%d", nRej))
	}
	return tbl, nil
}

// Fig13 regenerates the plan-deviation stressor (Fig. 13): OLIVE running
// at 140% utilization with plans built for 60%, 100% and 140% expected
// demand, with QUICKG and SLOTOFF for reference.
func Fig13(s Scale) (*Table, error) {
	tbl := &Table{
		Title:  "Fig. 13: effect of deviation from plan, Iris @140%",
		Header: []string{"variant", "rejection"},
	}
	planUtils := []float64{0.6, 1.0, 1.4}
	var cells []SweepCell
	for _, pu := range planUtils {
		cfg := s.config(topo.Iris, 1.4)
		cfg.PlanUtilization = pu
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
		cells = append(cells, SweepCell{Config: cfg, Reps: s.Reps})
	}
	cfg := s.config(topo.Iris, 1.4)
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG, core.AlgoSlotOff}
	cells = append(cells, SweepCell{Config: cfg, Reps: s.Reps})
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}
	for i, pu := range planUtils {
		tbl.AddRow(fmt.Sprintf("OLIVE (plan @%.0f%%)", pu*100), fmtCI(results[i].Rejection[core.AlgoOLIVE]))
	}
	base := results[len(planUtils)]
	tbl.AddRow("QUICKG", fmtCI(base.Rejection[core.AlgoQuickG]))
	tbl.AddRow("SLOTOFF", fmtCI(base.Rejection[core.AlgoSlotOff]))
	return tbl, nil
}

// Fig14 regenerates the spatial-distribution stressor (Fig. 14): the plan
// is built from a history whose ingress nodes were shuffled; OLIVE must
// still beat QUICKG on rejection with comparable cost.
func Fig14(s Scale) (rejection, cost *Table, err error) {
	rejection = &Table{
		Title:  "Fig. 14a: shifted plan requests, Iris — rejection rate",
		Header: []string{"util", "OLIVE(shifted)", "QUICKG"},
	}
	cost = &Table{
		Title:  "Fig. 14b: shifted plan requests, Iris — total cost",
		Header: []string{"util", "OLIVE(shifted)", "QUICKG"},
	}
	cells := make([]SweepCell, len(s.Utils))
	for i, u := range s.Utils {
		cfg := s.config(topo.Iris, u)
		cfg.ShufflePlanIngress = true
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
		cells[i] = SweepCell{Config: cfg, Reps: s.Reps}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, nil, err
	}
	for i, u := range s.Utils {
		rr := results[i]
		rejection.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCI(rr.Rejection[core.AlgoOLIVE]), fmtCI(rr.Rejection[core.AlgoQuickG]))
		cost.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCIg(rr.Cost[core.AlgoOLIVE]), fmtCIg(rr.Cost[core.AlgoQuickG]))
	}
	return rejection, cost, nil
}

// Fig15 regenerates the CAIDA-trace experiment (Fig. 15): rejection and
// cost on Iris under the heavy-tailed trace substitute.
func Fig15(s Scale) (rejection, cost *Table, err error) {
	rejection = &Table{
		Title:  "Fig. 15a: CAIDA-like demand, Iris — rejection rate",
		Header: []string{"util", "OLIVE", "QUICKG", "SLOTOFF"},
	}
	cost = &Table{
		Title:  "Fig. 15b: CAIDA-like demand, Iris — total cost",
		Header: []string{"util", "OLIVE", "QUICKG", "SLOTOFF"},
	}
	cells := make([]SweepCell, len(s.Utils))
	for i, u := range s.Utils {
		cfg := s.config(topo.Iris, u)
		cfg.Trace = TraceCAIDA
		cells[i] = SweepCell{Config: cfg, Reps: s.Reps}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, nil, err
	}
	for i, u := range s.Utils {
		rr := results[i]
		rejection.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCI(rr.Rejection[core.AlgoOLIVE]),
			fmtCI(rr.Rejection[core.AlgoQuickG]),
			fmtCI(rr.Rejection[core.AlgoSlotOff]))
		cost.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCIg(rr.Cost[core.AlgoOLIVE]),
			fmtCIg(rr.Cost[core.AlgoQuickG]),
			fmtCIg(rr.Cost[core.AlgoSlotOff]))
	}
	return rejection, cost, nil
}

// Fig16a regenerates the arrival-rate runtime scaling (Fig. 16a): OLIVE
// and QUICKG runtime on Iris at 100% utilization while the arrival rate
// grows (request size scaled down to keep utilization constant).
func Fig16a(s Scale, lambdas []float64) (*Table, error) {
	tbl := &Table{
		Title:  "Fig. 16a: runtime vs arrival rate, Iris @100% (seconds)",
		Header: []string{"λ/node", "req/slot", "OLIVE", "QUICKG"},
	}
	cells := make([]SweepCell, len(lambdas))
	for i, l := range lambdas {
		cfg := s.config(topo.Iris, 1.0)
		// Utilization stays fixed across the λ sweep: Run's calibration
		// scales the demand mean with 1/λ (§IV-B "Runtime").
		cfg.LambdaPerNode = l
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
		cells[i] = SweepCell{Config: cfg, Reps: minInt(s.Reps, 3)}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}
	for i, l := range lambdas {
		rr := results[i]
		edge := len(topo.MustBuild(topo.Iris, 1).EdgeNodes())
		tbl.AddRow(fmt.Sprintf("%.0f", l),
			fmt.Sprintf("%.0f", l*float64(edge)),
			fmtCIg(rr.Runtime[core.AlgoOLIVE]),
			fmtCIg(rr.Runtime[core.AlgoQuickG]))
	}
	return tbl, nil
}

// Fig16Runtime regenerates Figs. 16b–e: OLIVE vs QUICKG runtime per
// topology across the utilization sweep.
func Fig16Runtime(t topo.Name, s Scale) (*Table, error) {
	tbl := &Table{
		Title:  fmt.Sprintf("Fig. 16 (%s): runtime vs utilization (seconds)", t),
		Header: []string{"util", "OLIVE", "QUICKG"},
	}
	cells := make([]SweepCell, len(s.Utils))
	for i, u := range s.Utils {
		cfg := s.config(t, u)
		cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
		cells[i] = SweepCell{Config: cfg, Reps: minInt(s.Reps, 3)}
	}
	results, err := s.sweep(cells)
	if err != nil {
		return nil, err
	}
	for i, u := range s.Utils {
		rr := results[i]
		tbl.AddRow(fmt.Sprintf("%.0f%%", u*100),
			fmtCIg(rr.Runtime[core.AlgoOLIVE]),
			fmtCIg(rr.Runtime[core.AlgoQuickG]))
	}
	return tbl, nil
}

// Table2 regenerates Table II: the topology inventory.
func Table2() (*Table, error) {
	tbl := &Table{
		Title:  "Table II: topologies",
		Header: []string{"topology", "nodes", "links", "edge/transport/core", "description"},
	}
	specs := topo.Specs()
	for _, name := range topo.All() {
		sp := specs[name]
		g, err := topo.Build(name, 1)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(string(name),
			fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumLinks()),
			fmt.Sprintf("%d/%d/%d", sp.EdgeN, sp.TransportN, sp.CoreN),
			sp.Description)
	}
	return tbl, nil
}

// Table3 echoes the experimental settings (Table III) as realized by this
// reproduction.
func Table3() *Table {
	tbl := &Table{
		Title:  "Table III: experimental settings",
		Header: []string{"parameter", "value"},
	}
	tbl.AddRow("Node popularity", "Zipf(α=1)")
	tbl.AddRow("Plan period", "5400 slots")
	tbl.AddRow("Test period", "600 slots")
	tbl.AddRow("Request size", "N(10, 2²), mean scaled 6–14 with utilization")
	tbl.AddRow("Request duration", "Exponential, mean 10")
	tbl.AddRow("Requests per node (λ)", "10 per slot")
	tbl.AddRow("Applications", "2 chain, 1 tree, 1 accelerator")
	tbl.AddRow("VNFs", "U(3,5)")
	tbl.AddRow("Element sizes", "N(50, 30²)")
	tbl.AddRow("Rejection quantiles", fmt.Sprintf("%d", plan.DefaultOptions().Quantiles))
	return tbl
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
