package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/runner"
	"github.com/olive-vne/olive/internal/stats"
)

// RunnerOptions configures the parallel experiment runner. The zero value
// is ready to use: GOMAXPROCS workers, no artifact store, no progress
// output.
type RunnerOptions struct {
	// Context cancels the sweep. With a Store attached, cells completed
	// before cancellation stay persisted, so a rerun with Resume picks
	// up where the sweep stopped. Nil means context.Background.
	Context context.Context
	// Workers bounds the parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Store, when non-nil, persists each completed (config, rep) cell
	// as a versioned JSON artifact.
	Store *runner.Store
	// Resume additionally reads the Store: cells whose artifact already
	// exists are loaded instead of recomputed.
	Resume bool
	// Reporter, when non-nil, observes per-cell progress and ETA.
	Reporter runner.Reporter
}

// SweepCell is one aggregation unit of a sweep: a configuration repeated
// Reps times (seeds Config.Seed, Config.Seed+1, …) and summarized with
// 95% confidence intervals, exactly like RunRepeated.
type SweepCell struct {
	Config Config
	Reps   int
	// Tag, when set, namespaces the cell's artifacts (scenario runs pass
	// scenario.Spec.Tag(): name@spechash). Cells from different scenarios
	// never share artifacts even when their configurations coincide, and
	// editing a spec invalidates its cached cells.
	Tag string
}

// cellSchema versions the cell key and artifact layout; bump it whenever
// Config or repArtifact changes shape — or when a code change alters the
// numbers a given Config produces — so stale stores miss instead of
// resuming with results the current code would not reproduce. v2:
// windowed-plan builds became deterministic (canonical rng order), so any
// v1 artifact from a PlanWindows config is unreproducible. v3: the key
// gained a scenario tag slot (name@spechash), ending cross-experiment
// collisions in shared -out directories.
const cellSchema = "olive/sim-cell/v3"

// repMetrics is one algorithm's persisted outcome in one rep: exactly the
// headline metrics RunRepeated aggregates.
type repMetrics struct {
	Rejection  float64 `json:"rejection"`
	Cost       float64 `json:"cost"`
	Balance    float64 `json:"balance"`
	RuntimeSec float64 `json:"runtimeSec"`
}

// repArtifact is the persisted outcome of one (config, rep) cell — small
// and resumable, unlike the full RunResult with its substrate and plan.
// Algorithms preserves the configured order for canonical aggregation.
type repArtifact struct {
	Algorithms []core.Algorithm              `json:"algorithms"`
	Metrics    map[core.Algorithm]repMetrics `json:"metrics"`
}

// cellKey canonically encodes one rep's complete configuration plus the
// scenario tag it runs under. Identical cells of the same scenario share
// artifacts across sweeps and processes; any config or spec change yields
// a new key — a recompute, never a stale hit. The seed is part of the
// key, so a cell's identity is positional (cfg.Seed + rep), independent
// of execution order.
func cellKey(cfg Config, rep int, tag string) (string, error) {
	c := cfg
	c.normalize()
	c.Seed = cfg.Seed + uint64(rep)
	c.EngineOptions.Plan = nil // rebuilt inside Run; not part of the identity
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("sim: cell key: %w", err)
	}
	return cellSchema + "|" + tag + "|" + string(b), nil
}

// cellLabel is the short display name of one rep for progress lines and
// errors; the full identity lives in the cell key. A scenario tag
// contributes its name (the hash stays in the key).
func cellLabel(cfg Config, tag string) string {
	c := cfg
	c.normalize()
	label := fmt.Sprintf("%s u=%g λ=%g %s seed=%d", c.Topology, c.Utilization, c.LambdaPerNode, c.Trace, c.Seed)
	if name, _, ok := strings.Cut(tag, "@"); ok && name != "" {
		label = name + " " + label
	}
	return label
}

// artifactOf extracts the persisted metrics from one run.
func artifactOf(cfg Config, rr *RunResult) repArtifact {
	c := cfg
	c.normalize()
	a := repArtifact{
		Algorithms: c.Algorithms,
		Metrics:    make(map[core.Algorithm]repMetrics, len(rr.Results)),
	}
	for algo, ar := range rr.Results {
		a.Metrics[algo] = repMetrics{
			Rejection:  ar.RejectionRate,
			Cost:       ar.TotalCost,
			Balance:    ar.BalanceIndex,
			RuntimeSec: ar.Runtime.Seconds(),
		}
	}
	return a
}

// RunSweep fans the cells' reps out across the worker pool and returns one
// aggregated RepeatedResult per cell, in cell order. Aggregation is
// canonicalized — rep order within a cell, configured algorithm order
// within a rep — so the deterministic metrics (rejection, cost, balance)
// are identical to a sequential RunRepeated loop for any worker count.
// Only the wall-clock Runtime summaries vary between executions.
func RunSweep(cells []SweepCell, opts RunnerOptions) ([]*RepeatedResult, error) {
	jobs := make([]runner.Job[repArtifact], 0, len(cells))
	for _, cell := range cells {
		if cell.Reps <= 0 {
			return nil, errors.New("sim: reps must be positive")
		}
		for rep := 0; rep < cell.Reps; rep++ {
			key, err := cellKey(cell.Config, rep, cell.Tag)
			if err != nil {
				return nil, err
			}
			runCfg := cell.Config
			runCfg.Seed = cell.Config.Seed + uint64(rep)
			jobs = append(jobs, runner.Job[repArtifact]{
				Key:   key,
				Label: cellLabel(runCfg, cell.Tag),
				Run: func(context.Context) (repArtifact, error) {
					rr, err := Run(runCfg)
					if err != nil {
						return repArtifact{}, err
					}
					return artifactOf(runCfg, rr), nil
				},
			})
		}
	}

	out, err := runner.All(opts.Context, jobs, runner.Options{
		Workers:  opts.Workers,
		Store:    opts.Store,
		Resume:   opts.Resume,
		Reporter: opts.Reporter,
	})
	if err != nil {
		return nil, err
	}

	results := make([]*RepeatedResult, len(cells))
	next := 0
	for ci, cell := range cells {
		arts := make([]repArtifact, cell.Reps)
		for rep := 0; rep < cell.Reps; rep++ {
			arts[rep] = out[next].Value
			next++
		}
		results[ci] = aggregateCell(cell, arts)
	}
	return results, nil
}

// runTableCell executes one full simulation through the runner —
// cancellation, panic isolation, progress reporting — and caches the
// derived table (not the heavyweight RunResult) in the artifact store, so
// single-run detail scenarios (Fig. 8, Fig. 12) participate in
// -out/-resume like sweep cells do. tag is the owning scenario's
// name@spechash (scenario.Spec.Tag).
func runTableCell(tag string, cfg Config, opts RunnerOptions, build func(*RunResult) (*Table, error)) (*Table, error) {
	key, err := cellKey(cfg, 0, tag)
	if err != nil {
		return nil, err
	}
	jobs := []runner.Job[*Table]{{
		Key:   key,
		Label: cellLabel(cfg, tag),
		Run: func(context.Context) (*Table, error) {
			rr, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			return build(rr)
		},
	}}
	out, err := runner.All(opts.Context, jobs, runner.Options{
		Workers:  opts.Workers,
		Store:    opts.Store,
		Resume:   opts.Resume,
		Reporter: opts.Reporter,
	})
	if err != nil {
		return nil, err
	}
	return out[0].Value, nil
}

// aggregateCell summarizes one cell's reps, appending metrics in rep
// order per algorithm — the same order the sequential loop produced.
func aggregateCell(cell SweepCell, arts []repArtifact) *RepeatedResult {
	type series struct{ rej, cost, bal, rt []float64 }
	per := make(map[core.Algorithm]*series)
	for _, a := range arts {
		for _, algo := range a.Algorithms {
			s := per[algo]
			if s == nil {
				s = &series{}
				per[algo] = s
			}
			m := a.Metrics[algo]
			s.rej = append(s.rej, m.Rejection)
			s.cost = append(s.cost, m.Cost)
			s.bal = append(s.bal, m.Balance)
			s.rt = append(s.rt, m.RuntimeSec)
		}
	}
	res := &RepeatedResult{
		Config: cell.Config, Reps: cell.Reps,
		Rejection: map[core.Algorithm]MetricSummary{},
		Cost:      map[core.Algorithm]MetricSummary{},
		Balance:   map[core.Algorithm]MetricSummary{},
		Runtime:   map[core.Algorithm]MetricSummary{},
	}
	for algo, s := range per {
		res.Rejection[algo] = stats.Summarize(s.rej)
		res.Cost[algo] = stats.Summarize(s.cost)
		res.Balance[algo] = stats.Summarize(s.bal)
		res.Runtime[algo] = stats.Summarize(s.rt)
	}
	return res
}
