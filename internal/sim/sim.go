// Package sim is the discrete-time simulation engine of the reproduction:
// it drives the OLIVE/QUICKG/FULLG engines and the SLOTOFF baseline over
// generated traces, accounts costs exactly as the paper's objective
// (resource cost Eq. 3 plus rejection cost Eq. 4), and aggregates repeated
// runs with 95% confidence intervals. The experiment definitions that
// regenerate every figure of the paper live in experiments.go.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/stats"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// TraceKind selects the arrival process.
type TraceKind string

// Trace kinds of §IV-A.
const (
	TraceMMPP  TraceKind = "mmpp"
	TraceCAIDA TraceKind = "caida"
)

// Config describes one simulation run.
type Config struct {
	// Topology and TopologySeed select the substrate.
	Topology     topo.Name
	TopologySeed uint64
	// Seed drives the application set, trace and plan randomness.
	Seed uint64

	// Utilization is the target edge utilization (1.0 = 100%).
	Utilization float64
	// PlanUtilization, when non-zero, builds the plan from a history
	// generated at a different utilization (Fig. 13's deviation
	// stressor).
	PlanUtilization float64
	// ShufflePlanIngress randomizes the ingress of every history
	// request before planning (Fig. 14's spatial stressor).
	ShufflePlanIngress bool

	// HistSlots and OnlineSlots split the trace (5400/600 in the
	// paper).
	HistSlots   int
	OnlineSlots int
	// LambdaPerNode is the mean arrival rate per edge node (10).
	LambdaPerNode float64
	// DemandMeanOverride, when non-zero, replaces the utilization-derived
	// mean request demand. Fig. 16a uses it to keep utilization constant
	// while the arrival rate grows.
	DemandMeanOverride float64
	// Trace selects MMPP (default) or the CAIDA-like substitute.
	Trace TraceKind
	// DiurnalPeriod sets the CAIDA substitute's rate-modulation period
	// in slots (0 = whole trace). Used with PlanWindows.
	DiurnalPeriod int

	// AppKind, when non-zero, replaces the default 2-chain/tree/
	// accelerator mix with four applications of a single kind (Fig. 9
	// and Fig. 10).
	AppKind vnet.Kind
	// GPU switches to the Fig. 10 scenario: the substrate is split
	// into GPU and non-GPU datacenters and applications are GPU chains.
	GPU bool

	// Algorithms lists the algorithms to run (default: OLIVE, QUICKG,
	// SLOTOFF).
	Algorithms []core.Algorithm
	// PlanOptions configures PLAN-VNE (zero value → plan.DefaultOptions).
	PlanOptions plan.Options
	// PlanWindows, when > 1, enables the time-varying plan extension:
	// the demand cycle (DiurnalPeriod) is split into this many windows,
	// each with its own PLAN-VNE solution, and OLIVE swaps plans at
	// window boundaries (paper §VI future work).
	PlanWindows int
	// EngineOptions carries OLIVE ablation switches (Plan is overwritten).
	EngineOptions core.Options

	// MeasureFrom/MeasureTo bound the arrival slots (within the online
	// phase) whose requests are counted in rejection/cost metrics; 0/0
	// means the full online phase. The paper measures slots 100–500.
	MeasureFrom, MeasureTo int
}

// DefaultConfig returns the paper-scale configuration (Table III) for one
// topology at the given utilization.
func DefaultConfig(t topo.Name, util float64, seed uint64) Config {
	return Config{
		Topology:      t,
		TopologySeed:  1,
		Seed:          seed,
		Utilization:   util,
		HistSlots:     5400,
		OnlineSlots:   600,
		LambdaPerNode: 10,
		Trace:         TraceMMPP,
		Algorithms:    []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoSlotOff},
		PlanOptions:   plan.DefaultOptions(),
		MeasureFrom:   100,
		MeasureTo:     500,
	}
}

// QuickConfig returns a scaled-down configuration for tests and smoke
// benches: same structure, ~50× fewer requests.
func QuickConfig(t topo.Name, util float64, seed uint64) Config {
	c := DefaultConfig(t, util, seed)
	c.HistSlots = 200
	c.OnlineSlots = 60
	c.LambdaPerNode = 3
	c.PlanOptions.BootstrapB = 30
	c.PlanOptions.MaxPricingRounds = 4
	c.MeasureFrom, c.MeasureTo = 10, 50
	return c
}

func (c *Config) normalize() {
	if c.Trace == "" {
		c.Trace = TraceMMPP
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG, core.AlgoSlotOff}
	}
	if c.PlanOptions.Quantiles == 0 {
		c.PlanOptions = plan.DefaultOptions()
	}
	if c.MeasureTo == 0 {
		c.MeasureFrom, c.MeasureTo = 0, c.OnlineSlots
	}
}

// RequestRecord logs one request's fate for figure reconstruction.
type RequestRecord struct {
	ID       int
	App      int
	Ingress  graph.NodeID
	Arrive   int // online-phase slot
	Duration int
	Demand   float64
	Accepted bool
	Planned  bool
	// Preempted is true if the request was accepted and later evicted;
	// PreemptSlot is when.
	Preempted   bool
	PreemptSlot int
}

// AlgoResult carries one algorithm's metrics for one run.
type AlgoResult struct {
	Algorithm core.Algorithm

	// RejectionRate is rejected/total over the measurement window;
	// preempted requests count as rejected (they incur Ψ).
	RejectionRate float64
	// ResourceCost is Σ_t Σ_s load·cost (Eq. 3) over the online phase.
	ResourceCost float64
	// RejectionCost is Σ Ψ(r) over rejected and preempted requests in
	// the window (Eq. 4).
	RejectionCost float64
	// TotalCost = ResourceCost + RejectionCost.
	TotalCost float64
	// BalanceIndex is the rejection balance index of Eq. 20 over the
	// window.
	BalanceIndex float64
	// Runtime is the wall-clock time of online processing (plan
	// construction excluded; the paper reports it separately).
	Runtime time.Duration

	// PerSlotRequested/Accepted hold arriving demand per online slot
	// and the accepted part (Fig. 8).
	PerSlotRequested []float64
	PerSlotAccepted  []float64

	// Log holds one record per online request, in arrival order.
	Log []RequestRecord
}

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Config    Config
	Substrate *graph.Graph
	Apps      []*vnet.App
	Plan      *plan.Plan
	// Windowed holds the per-window plans when PlanWindows > 1.
	Windowed *plan.WindowedPlan
	PlanTime time.Duration
	Results  map[core.Algorithm]*AlgoResult
}

// Run executes one simulation.
func Run(cfg Config) (*RunResult, error) {
	cfg.normalize()
	if cfg.HistSlots <= 0 || cfg.OnlineSlots <= 0 {
		return nil, errors.New("sim: HistSlots and OnlineSlots must be positive")
	}

	g, err := topo.Build(cfg.Topology, cfg.TopologySeed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x51f0))

	// Application set.
	var apps []*vnet.App
	ap := vnet.DefaultParams()
	switch {
	case cfg.GPU:
		g = topo.MakeGPUVariant(g, 4, cfg.Seed)
		apps = vnet.UniformKindSet(vnet.KindGPU, ap, rng)
	case cfg.AppKind != 0:
		apps = vnet.UniformKindSet(cfg.AppKind, ap, rng)
	default:
		apps = vnet.DefaultMix(ap, rng)
	}

	// Traces: one history (for the plan) and one online phase.
	makeTrace := func(p workload.Params, r *rand.Rand) (*workload.Trace, error) {
		if cfg.Trace == TraceCAIDA {
			cp := workload.DefaultCAIDAParams()
			cp.DiurnalPeriod = cfg.DiurnalPeriod
			return workload.GenerateCAIDA(g, p, cp, r)
		}
		return workload.GenerateMMPP(g, p, r)
	}
	wp := workload.DefaultParams().WithUtilization(cfg.Utilization)
	wp.Slots = cfg.HistSlots + cfg.OnlineSlots
	wp.LambdaPerNode = cfg.LambdaPerNode
	wp.NumApps = len(apps)
	// Utilization calibration: with Table II/III constants, edge
	// utilization u needs E[d] = u·edgeCap/(λ·E[T]·E[Σβ]) = u·100/λ —
	// the paper's E[d]=10·u at λ=10. Scaling demand with 1/λ keeps
	// reduced-rate runs (and the Fig. 16a sweep) at the target
	// utilization.
	wp.DemandMean = cfg.Utilization * 100 / cfg.LambdaPerNode
	if cfg.DemandMeanOverride > 0 {
		wp.DemandMean = cfg.DemandMeanOverride
	}
	full, err := makeTrace(wp, rng)
	if err != nil {
		return nil, err
	}
	hist, online, err := full.Split(cfg.HistSlots)
	if err != nil {
		return nil, err
	}

	// Plan input stressors (Figs. 13–14) regenerate or perturb the
	// history.
	planHist := hist
	if cfg.PlanUtilization != 0 && cfg.PlanUtilization != cfg.Utilization {
		pw := wp.WithUtilization(cfg.PlanUtilization)
		pw.Slots = cfg.HistSlots
		planRNG := rand.New(rand.NewPCG(cfg.Seed, 0x9a17))
		planHist, err = makeTrace(pw, planRNG)
		if err != nil {
			return nil, err
		}
	}
	if cfg.ShufflePlanIngress {
		planHist = workload.ShuffleIngress(planHist, g, rand.New(rand.NewPCG(cfg.Seed, 0x5bf1)))
	}

	res := &RunResult{
		Config: cfg, Substrate: g, Apps: apps,
		Results: make(map[core.Algorithm]*AlgoResult, len(cfg.Algorithms)),
	}

	needPlan := false
	for _, a := range cfg.Algorithms {
		if a == core.AlgoOLIVE {
			needPlan = true
		}
	}
	if needPlan {
		t0 := time.Now() //olive:wallclock PlanTime runtime column; goldens exclude it
		if cfg.PlanWindows > 1 {
			period := cfg.DiurnalPeriod
			if period <= 0 || period > planHist.Slots {
				period = planHist.Slots
			}
			wp, err := plan.BuildWindowed(g, apps, planHist, period, cfg.PlanWindows, cfg.PlanOptions, rng)
			if err != nil {
				return nil, fmt.Errorf("sim: windowed plan: %w", err)
			}
			res.Windowed = wp
			res.Plan = wp.At(cfg.HistSlots) // plan governing online slot 0
		} else {
			p, err := plan.BuildFromHistory(g, apps, planHist, cfg.PlanOptions, rng)
			if err != nil {
				return nil, fmt.Errorf("sim: plan: %w", err)
			}
			res.Plan = p
		}
		res.PlanTime = time.Since(t0) //olive:wallclock runtime column
	}

	psi := make([]float64, len(apps))
	for i, a := range apps {
		psi[i] = plan.DefaultRejectionFactor(g, a)
	}

	// One substrate state per simulation cell: the engines of every
	// algorithm run over it back to back, sharing the lazy shortest-path
	// cache and the embedder's collocated-candidate memos (prices are the
	// element costs for all of them); only the residual vector is reset
	// between runs.
	oracle := embedder.ForState(substrate.New(g))
	for _, algo := range cfg.Algorithms {
		ar, err := runAlgorithm(cfg, g, apps, oracle, res.Plan, res.Windowed, psi, online, algo)
		if err != nil {
			return nil, err
		}
		res.Results[algo] = ar
	}
	return res, nil
}

// runAlgorithm executes the online phase under one algorithm.
func runAlgorithm(cfg Config, g *graph.Graph, apps []*vnet.App, oracle *embedder.Oracle, p *plan.Plan, wp *plan.WindowedPlan, psi []float64, online *workload.Trace, algo core.Algorithm) (*AlgoResult, error) {
	ar := &AlgoResult{
		Algorithm:        algo,
		PerSlotRequested: make([]float64, online.Slots),
		PerSlotAccepted:  make([]float64, online.Slots),
		Log:              make([]RequestRecord, 0, len(online.Requests)),
	}
	slots := online.PerSlot()

	if algo == core.AlgoSlotOff {
		return ar, runSlotOff(cfg, g, apps, oracle, psi, slots, ar)
	}

	opts := cfg.EngineOptions
	switch algo {
	case core.AlgoOLIVE:
		opts.Plan = p
		opts.Exact = false
	case core.AlgoQuickG:
		opts.Plan = nil
		opts.Exact = false
	case core.AlgoFullG:
		opts.Plan = nil
		opts.Exact = true
	default:
		return nil, fmt.Errorf("sim: unknown algorithm %q", algo)
	}
	eng, err := core.NewEngineOn(oracle, apps, opts)
	if err != nil {
		return nil, err
	}

	// Per-request bookkeeping for cost accounting. Values (not pointers)
	// keep the hot per-accept map insert allocation-free.
	type live struct {
		contrib float64 // d·unitCost per slot
		departs int
		logIdx  int
	}
	liveReqs := make(map[int]live, 1024)
	var gone []int
	var running float64 // Σ contrib over active requests

	t0 := time.Now() //olive:wallclock Runtime column; goldens exclude it
	curWindow := -1
	if wp != nil && algo == core.AlgoOLIVE {
		curWindow = wp.WindowOf(cfg.HistSlots)
	}
	for t := 0; t < online.Slots; t++ {
		if wp != nil && algo == core.AlgoOLIVE {
			if w := wp.WindowOf(cfg.HistSlots + t); w != curWindow {
				curWindow = w
				eng.SwapPlan(wp.Plans[w])
			}
		}
		eng.StartSlot(t)
		// Departures in request-ID order: floating-point sums must not
		// depend on map iteration, or repeated runs drift in the last
		// ulps and break the runner's byte-identical guarantee.
		gone = gone[:0]
		for id, lr := range liveReqs {
			if lr.departs <= t {
				gone = append(gone, id)
			}
		}
		sort.Ints(gone)
		for _, id := range gone {
			running -= liveReqs[id].contrib
			delete(liveReqs, id)
		}
		for _, r := range slots[t] {
			ar.PerSlotRequested[t] += r.Demand
			out, err := eng.Process(r)
			if err != nil {
				return nil, err
			}
			rec := RequestRecord{
				ID: r.ID, App: r.App, Ingress: r.Ingress,
				Arrive: r.Arrive, Duration: r.Duration, Demand: r.Demand,
				Accepted: out.Accepted, Planned: out.Planned,
			}
			logIdx := len(ar.Log)
			ar.Log = append(ar.Log, rec)
			for _, pid := range out.Preempted {
				if lr, ok := liveReqs[pid]; ok {
					running -= lr.contrib
					delete(liveReqs, pid)
					ar.Log[lr.logIdx].Preempted = true
					ar.Log[lr.logIdx].PreemptSlot = t
				}
			}
			if out.Accepted {
				ar.PerSlotAccepted[t] += r.Demand
				contrib := out.Emb.Cost(r.Demand)
				liveReqs[r.ID] = live{contrib: contrib, departs: r.Departs(), logIdx: logIdx}
				running += contrib
			}
		}
		ar.ResourceCost += running
	}
	ar.Runtime = time.Since(t0) //olive:wallclock runtime column

	finalizeMetrics(cfg, g, apps, psi, ar)
	return ar, nil
}

// runSlotOff executes the SLOTOFF baseline over the cell's shared
// substrate state.
func runSlotOff(cfg Config, g *graph.Graph, apps []*vnet.App, oracle *embedder.Oracle, psi []float64, slots [][]workload.Request, ar *AlgoResult) error {
	so, err := core.NewSlotOffOn(oracle, apps, core.SlotOffOptions())
	if err != nil {
		return err
	}
	logIdxOf := make(map[int]int)
	t0 := time.Now() //olive:wallclock Runtime column; goldens exclude it
	for t := range slots {
		for _, r := range slots[t] {
			ar.PerSlotRequested[t] += r.Demand
		}
		res, err := so.Step(t, slots[t])
		if err != nil {
			return err
		}
		for _, r := range slots[t] {
			rec := RequestRecord{
				ID: r.ID, App: r.App, Ingress: r.Ingress,
				Arrive: r.Arrive, Duration: r.Duration, Demand: r.Demand,
			}
			logIdxOf[r.ID] = len(ar.Log)
			ar.Log = append(ar.Log, rec)
		}
		for _, r := range res.AcceptedNew {
			ar.Log[logIdxOf[r.ID]].Accepted = true
			ar.Log[logIdxOf[r.ID]].Planned = true // SLOTOFF allocations are all LP-planned
			ar.PerSlotAccepted[t] += r.Demand
		}
		for _, r := range res.Dropped {
			if idx, ok := logIdxOf[r.ID]; ok {
				ar.Log[idx].Preempted = true
				ar.Log[idx].PreemptSlot = t
			}
		}
		ar.ResourceCost += res.ResourceCost
	}
	ar.Runtime = time.Since(t0) //olive:wallclock runtime column
	finalizeMetrics(cfg, g, apps, psi, ar)
	return nil
}

// finalizeMetrics computes windowed rejection, cost and balance metrics
// from the request log.
func finalizeMetrics(cfg Config, g *graph.Graph, apps []*vnet.App, psi []float64, ar *AlgoResult) {
	var total, rejected int
	perNode := make(map[graph.NodeID]*stats.BalanceSample)
	for i := range ar.Log {
		rec := &ar.Log[i]
		if rec.Arrive < cfg.MeasureFrom || rec.Arrive >= cfg.MeasureTo {
			continue
		}
		total++
		bs := perNode[rec.Ingress]
		if bs == nil {
			bs = &stats.BalanceSample{RejectedPerApp: make([]float64, len(apps))}
			perNode[rec.Ingress] = bs
		}
		bs.Requests++
		isRejected := !rec.Accepted || rec.Preempted
		if isRejected {
			rejected++
			bs.RejectedPerApp[rec.App]++
			ar.RejectionCost += psi[rec.App] * rec.Demand * float64(rec.Duration)
		}
	}
	if total > 0 {
		ar.RejectionRate = float64(rejected) / float64(total)
	}
	// Canonical node order keeps the balance index bit-stable across
	// runs (map iteration would reorder the weighted sum).
	nodes := make([]graph.NodeID, 0, len(perNode))
	for v := range perNode {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	samples := make([]stats.BalanceSample, 0, len(perNode))
	for _, v := range nodes {
		samples = append(samples, *perNode[v])
	}
	ar.BalanceIndex = stats.BalanceIndex(samples)
	ar.TotalCost = ar.ResourceCost + ar.RejectionCost
}

// MetricSummary aggregates one metric over repeated runs.
type MetricSummary = stats.Summary

// RepeatedResult aggregates repeated runs of one configuration.
type RepeatedResult struct {
	Config Config
	Reps   int
	// Per algorithm: summaries of the headline metrics.
	Rejection map[core.Algorithm]MetricSummary
	Cost      map[core.Algorithm]MetricSummary
	Balance   map[core.Algorithm]MetricSummary
	Runtime   map[core.Algorithm]MetricSummary // seconds
}

// RunRepeated executes reps independent runs (seeds Seed, Seed+1, ...) and
// aggregates the headline metrics with 95% confidence intervals. The runs
// fan out across GOMAXPROCS workers via the experiment runner; seeding is
// positional and aggregation order canonical, so the deterministic
// metrics are identical to a sequential loop. Use RunRepeatedWith to
// control parallelism, artifact caching and resume.
func RunRepeated(cfg Config, reps int) (*RepeatedResult, error) {
	return RunRepeatedWith(cfg, reps, RunnerOptions{})
}

// RunRepeatedWith is RunRepeated under explicit runner options.
func RunRepeatedWith(cfg Config, reps int, opts RunnerOptions) (*RepeatedResult, error) {
	rs, err := RunSweep([]SweepCell{{Config: cfg, Reps: reps}}, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}
