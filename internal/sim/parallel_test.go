package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/runner"
	"github.com/olive-vne/olive/internal/stats"
	"github.com/olive-vne/olive/internal/topo"
)

// parallelConfig is a minimal OLIVE+QUICKG configuration: big enough to
// exercise planning and the online phase, small enough to rep repeatedly
// in tests.
func parallelConfig(seed uint64) Config {
	c := QuickConfig(topo.CittaStudi, 1.0, seed)
	c.HistSlots = 80
	c.OnlineSlots = 30
	c.LambdaPerNode = 2
	c.MeasureFrom, c.MeasureTo = 5, 25
	c.PlanOptions.BootstrapB = 10
	c.PlanOptions.MaxPricingRounds = 2
	c.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
	return c
}

// runRepeatedSequential replicates the pre-runner sequential loop: one
// Run per rep, metrics appended in rep order. It is the reference the
// parallel path must match bit-for-bit on the deterministic metrics.
func runRepeatedSequential(t *testing.T, cfg Config, reps int) *RepeatedResult {
	t.Helper()
	acc := make(map[core.Algorithm]map[string][]float64)
	for rep := 0; rep < reps; rep++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(rep)
		rr, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		for algo, ar := range rr.Results {
			m := acc[algo]
			if m == nil {
				m = map[string][]float64{}
				acc[algo] = m
			}
			m["rej"] = append(m["rej"], ar.RejectionRate)
			m["cost"] = append(m["cost"], ar.TotalCost)
			m["bal"] = append(m["bal"], ar.BalanceIndex)
		}
	}
	out := &RepeatedResult{
		Config: cfg, Reps: reps,
		Rejection: map[core.Algorithm]MetricSummary{},
		Cost:      map[core.Algorithm]MetricSummary{},
		Balance:   map[core.Algorithm]MetricSummary{},
		Runtime:   map[core.Algorithm]MetricSummary{},
	}
	for algo, m := range acc {
		out.Rejection[algo] = stats.Summarize(m["rej"])
		out.Cost[algo] = stats.Summarize(m["cost"])
		out.Balance[algo] = stats.Summarize(m["bal"])
	}
	return out
}

// requireSameDeterministicMetrics asserts exact (bit-for-bit) equality of
// the deterministic summaries. Runtime is wall clock and excluded.
func requireSameDeterministicMetrics(t *testing.T, want, got *RepeatedResult, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Rejection, got.Rejection) {
		t.Fatalf("%s: rejection summaries diverge:\nwant %+v\ngot  %+v", label, want.Rejection, got.Rejection)
	}
	if !reflect.DeepEqual(want.Cost, got.Cost) {
		t.Fatalf("%s: cost summaries diverge:\nwant %+v\ngot  %+v", label, want.Cost, got.Cost)
	}
	if !reflect.DeepEqual(want.Balance, got.Balance) {
		t.Fatalf("%s: balance summaries diverge:\nwant %+v\ngot  %+v", label, want.Balance, got.Balance)
	}
}

// TestRunRepeatedParallelMatchesSequential is the determinism contract of
// the tentpole: for the same config and seed, the parallel runner's
// RepeatedResult equals the sequential loop's, for any worker count.
func TestRunRepeatedParallelMatchesSequential(t *testing.T) {
	cfg := parallelConfig(7)
	const reps = 3
	want := runRepeatedSequential(t, cfg, reps)
	for _, workers := range []int{1, 4} {
		got, err := RunRepeatedWith(cfg, reps, RunnerOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		requireSameDeterministicMetrics(t, want, got, "workers="+itoa(workers))
		if got.Reps != reps {
			t.Fatalf("reps = %d, want %d", got.Reps, reps)
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// cancelAfterFirst is a Reporter that cancels the sweep context after the
// first completed cell.
type cancelAfterFirst struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelAfterFirst) Start(total, cached int)                           {}
func (c *cancelAfterFirst) Done(key string, elapsed time.Duration, err error) { c.once.Do(c.cancel) }
func (c *cancelAfterFirst) Finish(elapsed time.Duration)                      {}

// TestRunSweepCancelLeavesResumableStore cancels a sweep after its first
// cell, then resumes from the store and checks the final result equals an
// uninterrupted run.
func TestRunSweepCancelLeavesResumableStore(t *testing.T) {
	store, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := parallelConfig(3)
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG} // no plan: fast cells
	cells := []SweepCell{{Config: cfg, Reps: 4}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunSweep(cells, RunnerOptions{
		Context: ctx, Workers: 1, Store: store, Resume: true,
		Reporter: &cancelAfterFirst{cancel: cancel},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	n, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= 4 {
		t.Fatalf("store holds %d artifacts after early cancel, want partial progress", n)
	}

	resumed, err := RunSweep(cells, RunnerOptions{Workers: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunSweep(cells, RunnerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDeterministicMetrics(t, clean[0], resumed[0], "resumed")
}

// TestRunSweepResumeIsFullyCached reruns an identical sweep against its
// store and checks no cell is recomputed while results stay identical.
func TestRunSweepResumeIsFullyCached(t *testing.T) {
	store, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := parallelConfig(11)
	cfg.Algorithms = []core.Algorithm{core.AlgoQuickG}
	cells := []SweepCell{{Config: cfg, Reps: 2}}

	first, err := RunSweep(cells, RunnerOptions{Workers: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("store holds %d artifacts, want 2", n)
	}
	t0 := time.Now()
	second, err := RunSweep(cells, RunnerOptions{Workers: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDeterministicMetrics(t, first[0], second[0], "cached rerun")
	// Cached reruns must not redo simulation work; generous bound to
	// stay robust on slow CI.
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cached rerun took %s — cells were recomputed", elapsed)
	}
}

func TestCellKeyIsPositionalAndCanonical(t *testing.T) {
	cfg := parallelConfig(5)
	k0a, err := cellKey(cfg, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	k0b, err := cellKey(cfg, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if k0a != k0b {
		t.Fatal("cell key not deterministic")
	}
	k1, err := cellKey(cfg, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if k0a == k1 {
		t.Fatal("distinct reps share a cell key")
	}
	// rep seeds are positional: cfg.Seed+1 at rep 0 is the same cell as
	// cfg.Seed at rep 1.
	shifted := cfg
	shifted.Seed = cfg.Seed + 1
	kShifted, err := cellKey(shifted, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if kShifted != k1 {
		t.Fatal("cell identity depends on rep index, not the resolved seed")
	}
	// Config changes change the key.
	changed := cfg
	changed.Utilization = 1.2
	kChanged, err := cellKey(changed, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if kChanged == k0a {
		t.Fatal("config change did not change the cell key")
	}
}
