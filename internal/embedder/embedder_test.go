package embedder

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
)

// starSubstrate: hub node 0 (cheap), leaves 1..4 with varying costs.
func starSubstrate() *graph.Graph {
	g := graph.New()
	g.AddNode(graph.Node{Name: "hub", Tier: graph.TierCore, Cap: 10000, Cost: 1})
	for i := 1; i <= 4; i++ {
		g.AddNode(graph.Node{Name: string(rune('a' + i)), Tier: graph.TierEdge, Cap: 10000, Cost: float64(i * 10)})
	}
	for i := 1; i <= 4; i++ {
		g.AddLink(0, graph.NodeID(i), 10000, 1)
	}
	return g
}

func fixedChain() *vnet.App {
	return &vnet.App{
		Name: "chain", Kind: vnet.KindChain,
		VNFs:  []vnet.VNF{{ID: 0}, {ID: 1, Size: 10}, {ID: 2, Size: 10}},
		Links: []vnet.VLink{{From: 0, To: 1, Size: 2}, {From: 1, To: 2, Size: 2}},
	}
}

func TestMinCostEmbedPrefersCheapNode(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	// Ingress at leaf 4 (cost 40). Hub costs 1/CU: optimal placement
	// puts both VNFs on the hub: cost = 20·1 (nodes) + 2·1 (link θ→hub)
	// + 0 (v1,v2 collocated on hub) = 22.
	e, price, ok := o.MinCostEmbed(app, 4)
	if !ok {
		t.Fatal("no embedding found")
	}
	if e.NodeMap[1] != 0 || e.NodeMap[2] != 0 {
		t.Fatalf("VNFs placed on %v, want hub (0)", e.NodeMap[1:])
	}
	if math.Abs(price-22) > 1e-9 {
		t.Fatalf("price = %g, want 22", price)
	}
	if math.Abs(e.UnitCost()-price) > 1e-9 {
		t.Fatalf("embedding unit cost %g disagrees with DP price %g", e.UnitCost(), price)
	}
}

func TestMinCostEmbedRespectsExpensiveTransit(t *testing.T) {
	// Line A(cost 100) - B(cost 1): expensive link forces staying at A.
	g := graph.New()
	g.AddNode(graph.Node{Name: "A", Cap: 1000, Cost: 100})
	g.AddNode(graph.Node{Name: "B", Cap: 1000, Cost: 1})
	g.AddLink(0, 1, 1000, 1e6)
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	e, _, ok := o.MinCostEmbed(app, 0)
	if !ok {
		t.Fatal("no embedding")
	}
	if e.NodeMap[1] != 0 || e.NodeMap[2] != 0 {
		t.Fatalf("placement %v crossed a prohibitively expensive link", e.NodeMap)
	}
}

func TestMinCostEmbedTreeApp(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	tree := &vnet.App{
		Name: "tree", Kind: vnet.KindTree,
		VNFs: []vnet.VNF{{ID: 0}, {ID: 1, Size: 5}, {ID: 2, Size: 5}, {ID: 3, Size: 5}},
		Links: []vnet.VLink{
			{From: 0, To: 1, Size: 1},
			{From: 1, To: 2, Size: 1},
			{From: 1, To: 3, Size: 1},
		},
	}
	e, price, ok := o.MinCostEmbed(tree, 1)
	if !ok {
		t.Fatal("no embedding")
	}
	// All three VNFs belong on the hub (cost 1) reached by one link.
	for i := 1; i <= 3; i++ {
		if e.NodeMap[i] != 0 {
			t.Fatalf("VNF %d on node %d, want hub", i, e.NodeMap[i])
		}
	}
	// price = 15·1 (nodes) + 1·1 (θ→v1 path) + 0 + 0.
	if math.Abs(price-16) > 1e-9 {
		t.Fatalf("price = %g, want 16", price)
	}
}

func TestMinCostEmbedGPUConstraint(t *testing.T) {
	g := starSubstrate()
	g.SetNodeGPU(2, true)
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	app.VNFs[1].GPU = true
	e, _, ok := o.MinCostEmbed(app, 4)
	if !ok {
		t.Fatal("no embedding despite GPU node available")
	}
	if e.NodeMap[1] != 2 {
		t.Fatalf("GPU VNF on node %d, want GPU node 2", e.NodeMap[1])
	}
	if e.NodeMap[2] == 2 {
		t.Fatal("non-GPU VNF placed on dedicated GPU node")
	}
}

func TestMinCostEmbedNoFeasiblePlacement(t *testing.T) {
	g := starSubstrate() // no GPU nodes
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	app.VNFs[1].GPU = true
	if _, _, ok := o.MinCostEmbed(app, 0); ok {
		t.Fatal("embedding found for GPU VNF with no GPU nodes")
	}
}

func TestMinCostEmbedExcluding(t *testing.T) {
	g := starSubstrate()
	base := CostPrices(g)
	app := fixedChain()
	// Exclude the hub: the DP must fall back to placing on the ingress
	// leaf itself (cheapest remaining option from leaf 1, cost 10/CU).
	excl := map[graph.ElementID]bool{g.NodeElement(0): true}
	e, _, ok := MinCostEmbedExcluding(g, base, excl, app, 1)
	if !ok {
		t.Fatal("no embedding with hub excluded")
	}
	if e.NodeMap[1] == 0 || e.NodeMap[2] == 0 {
		t.Fatalf("placement %v used excluded hub", e.NodeMap)
	}
}

// TestMinCostEmbedMatchesBruteForce cross-checks the DP against exhaustive
// enumeration on small instances.
func TestMinCostEmbedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 25; trial++ {
		// Random connected substrate of 5 nodes.
		g := graph.New()
		for i := 0; i < 5; i++ {
			g.AddNode(graph.Node{Cap: 1e6, Cost: 1 + rng.Float64()*20})
		}
		for i := 1; i < 5; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID(rng.IntN(i)), 1e6, 1+rng.Float64()*5)
		}
		g.AddLink(0, 4, 1e6, 1+rng.Float64()*5)

		app := &vnet.App{
			Name: "brute", Kind: vnet.KindChain,
			VNFs: []vnet.VNF{{ID: 0}, {ID: 1, Size: 1 + rng.Float64()*10}, {ID: 2, Size: 1 + rng.Float64()*10}},
			Links: []vnet.VLink{
				{From: 0, To: 1, Size: 1 + rng.Float64()*5},
				{From: 1, To: 2, Size: 1 + rng.Float64()*5},
			},
		}
		ingress := graph.NodeID(rng.IntN(5))
		o := NewOracle(g, CostPrices(g))
		_, got, ok := o.MinCostEmbed(app, ingress)
		if !ok {
			t.Fatalf("trial %d: DP found no embedding", trial)
		}
		// Brute force over all (u1, u2) placements with shortest paths.
		ap := g.AllPairsShortestPaths(graph.CostWeight)
		best := math.Inf(1)
		for u1 := 0; u1 < 5; u1++ {
			for u2 := 0; u2 < 5; u2++ {
				c := app.VNFs[1].Size*g.Node(graph.NodeID(u1)).Cost +
					app.VNFs[2].Size*g.Node(graph.NodeID(u2)).Cost +
					app.Links[0].Size*ap.Dist(ingress, graph.NodeID(u1)) +
					app.Links[1].Size*ap.Dist(graph.NodeID(u1), graph.NodeID(u2))
				if c < best {
					best = c
				}
			}
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: DP price %g, brute force %g", trial, got, best)
		}
	}
}

func TestAdjustedPricesAddCongestion(t *testing.T) {
	g := starSubstrate()
	dual := make([]float64, g.NumElements())
	dual[g.NodeElement(0)] = -5 // congested hub
	pr := AdjustedPrices(g, dual)
	if pr[g.NodeElement(0)] != g.Node(0).Cost+5 {
		t.Fatalf("adjusted hub price = %g, want %g", pr[g.NodeElement(0)], g.Node(0).Cost+5)
	}
	if pr[g.NodeElement(1)] != g.Node(1).Cost {
		t.Fatal("unrelated element price changed")
	}
}

func TestCollocatedOnNode(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	e, price, ok := o.CollocatedOnNode(app, 1, 2)
	if !ok {
		t.Fatal("no collocated embedding")
	}
	if !e.Collocated() {
		t.Fatal("embedding not collocated")
	}
	// nodes: 20 CU × cost 20 = 400; θ-link over 2 hops (1→0→2): 2·2=4.
	if math.Abs(price-404) > 1e-9 {
		t.Fatalf("price = %g, want 404", price)
	}
	if math.Abs(e.UnitCost()-price) > 1e-9 {
		t.Fatalf("UnitCost %g ≠ returned price %g", e.UnitCost(), price)
	}
}

func TestCollocatedOnNodeSameAsIngress(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	e, price, ok := o.CollocatedOnNode(app, 3, 3)
	if !ok {
		t.Fatal("no self-collocated embedding")
	}
	if math.Abs(price-20*30) > 1e-9 {
		t.Fatalf("price = %g, want 600 (no link usage)", price)
	}
	for _, u := range e.UnitUse() {
		if _, isLink := g.ElementLink(u.Elem); isLink {
			t.Fatal("self-collocated embedding consumes link capacity")
		}
	}
}

func TestCollocatedRejectsGPUMix(t *testing.T) {
	g := starSubstrate()
	g.SetNodeGPU(2, true)
	o := NewOracle(g, CostPrices(g))
	app := fixedChain() // both VNFs CPU
	if _, _, ok := o.CollocatedOnNode(app, 1, 2); ok {
		t.Fatal("CPU VNFs collocated on GPU node")
	}
	// A GPU chain cannot be collocated anywhere if it mixes GPU and CPU
	// VNFs.
	app.VNFs[1].GPU = true
	if _, _, ok := o.BestCollocated(app, 1, nil, 1); ok {
		t.Fatal("mixed GPU/CPU chain collocated")
	}
}

func TestBestCollocatedRespectsResidual(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	app := fixedChain() // 20 CU node footprint per unit demand
	res := g.Capacities()

	// Demand 10 ⇒ 200 CU on the chosen node. Cheapest is hub.
	e, _, ok := o.BestCollocated(app, 1, res, 10)
	if !ok {
		t.Fatal("no feasible collocated embedding")
	}
	if e.NodeMap[1] != 0 {
		t.Fatalf("placed on %d, want hub", e.NodeMap[1])
	}
	// Saturate the hub: next cheapest feasible node must be chosen.
	res[g.NodeElement(0)] = 10
	e2, _, ok := o.BestCollocated(app, 1, res, 10)
	if !ok {
		t.Fatal("no fallback candidate")
	}
	if e2.NodeMap[1] == 0 {
		t.Fatal("chose saturated hub")
	}
	// Saturate everything: no candidate fits.
	for i := range res {
		res[i] = 0.5
	}
	if _, _, ok := o.BestCollocated(app, 1, res, 10); ok {
		t.Fatal("found embedding in saturated substrate")
	}
}

func TestBestCollocatedNilResidualIgnoresCapacity(t *testing.T) {
	g := starSubstrate()
	for _, n := range g.Nodes() {
		g.SetNodeCap(n.ID, 0.001)
	}
	o := NewOracle(g, CostPrices(g))
	if _, _, ok := o.BestCollocated(fixedChain(), 1, nil, 1e9); !ok {
		t.Fatal("nil residual should skip feasibility")
	}
}

func TestKCheapestCollocatedOrdering(t *testing.T) {
	g := starSubstrate()
	o := NewOracle(g, CostPrices(g))
	app := fixedChain()
	es := o.KCheapestCollocated(app, 1, 3)
	if len(es) != 3 {
		t.Fatalf("got %d candidates, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].UnitCost() > es[i].UnitCost()+1e-9 {
			t.Fatalf("candidates not sorted: %g then %g", es[i-1].UnitCost(), es[i].UnitCost())
		}
	}
	// More than available: capped at node count.
	all := o.KCheapestCollocated(app, 1, 99)
	if len(all) != g.NumNodes() {
		t.Fatalf("got %d candidates, want %d", len(all), g.NumNodes())
	}
}

func TestOracleOnRealTopology(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	o := NewOracle(g, CostPrices(g))
	rng := rand.New(rand.NewPCG(1, 2))
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	for _, app := range apps {
		for _, ingress := range g.EdgeNodes()[:5] {
			e, price, ok := o.MinCostEmbed(app, ingress)
			if !ok {
				t.Fatalf("%s@%d: no embedding", app.Name, ingress)
			}
			if math.Abs(e.UnitCost()-price) > 1e-6 {
				t.Fatalf("%s@%d: cost mismatch %g vs %g", app.Name, ingress, e.UnitCost(), price)
			}
			// DP must never be beaten by any collocated candidate.
			if ce, cprice, ok := o.BestCollocated(app, ingress, nil, 1); ok {
				if cprice < price-1e-6 {
					t.Fatalf("%s@%d: collocated %g beats DP %g (%v)", app.Name, ingress, cprice, price, ce.NodeMap)
				}
			}
		}
	}
}
