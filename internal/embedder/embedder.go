// Package embedder finds minimum-cost integral embeddings of a virtual
// network (a rooted tree of VNFs) onto a substrate under arbitrary
// per-element prices.
//
// The core routine, MinCostEmbed, is a dynamic program over the VN tree
// with shortest paths on the substrate: for tree-shaped virtual networks
// it returns the exact cost-minimal mapping (each virtual link's path
// chosen independently along a shortest path under the given prices).
// It is used three ways in the reproduction:
//
//   - as the FULLG baseline's per-request exact embedder (paper §IV-A),
//   - as the pricing oracle of the PLAN-VNE column generation (the
//     Dantzig–Wolfe subproblem: prices = element costs minus LP duals),
//   - to seed initial candidate columns for the plan LP.
//
// Collocated embeddings (all functional VNFs on one node — the restriction
// QUICKG and OLIVE's GREEDYEMBED use, §III-C) are produced by
// BestCollocated and CollocatedOnNode.
//
// An Oracle is a thin view over a substrate.State: path queries hit the
// State's lazy per-source Dijkstra cache (no eager all-pairs rebuild),
// exclusion retries go through pooled substrate Views, DP tables come from
// the State's scratch arena, and collocated embeddings are memoized per
// (app, ingress, node) for as long as the State's prices stand still.
package embedder

import (
	"math"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/vnet"
)

// Prices assigns a per-CU price to every substrate element (flat element
// indexing). A price of +Inf excludes the element.
type Prices []float64

// CostPrices returns the substrate's own element costs as prices.
func CostPrices(g *graph.Graph) Prices {
	p := make(Prices, g.NumElements())
	for i := range p {
		p[i] = g.ElementCost(graph.ElementID(i))
	}
	return p
}

// AdjustedPrices returns cost(s) − dual[s] for column-generation pricing:
// capacity-row duals are ≤ 0 at optimality, so congested elements become
// more expensive. dual is indexed by element.
func AdjustedPrices(g *graph.Graph, dual []float64) Prices {
	return AdjustedPricesInto(nil, g, dual)
}

// AdjustedPricesInto is AdjustedPrices writing into dst (reused when large
// enough) — the plan's pricing loop calls it once per round.
func AdjustedPricesInto(dst Prices, g *graph.Graph, dual []float64) Prices {
	if cap(dst) < g.NumElements() {
		dst = make(Prices, g.NumElements())
	}
	dst = dst[:g.NumElements()]
	for i := range dst {
		dst[i] = g.ElementCost(graph.ElementID(i)) - dual[i]
	}
	return dst
}

// pather answers price and shortest-path queries for the embedding DP:
// either a substrate.State directly (no exclusions, cached trees shared by
// every query under the same prices) or a substrate.View (exclusion
// overlay with view-private trees).
type pather interface {
	NodePrice(u graph.NodeID) float64
	Dist(src, dst graph.NodeID) float64
	DistRow(src graph.NodeID) []float64
	PathBetween(src, dst graph.NodeID) (graph.Path, bool)
}

// Oracle answers min-cost embedding queries over one substrate.State.
// Construction is free — no all-pairs computation; shortest-path trees are
// built lazily per source inside the State and shared between all oracles
// and engines viewing it. Not safe for concurrent use (like its State).
type Oracle struct {
	st *substrate.State
	g  *graph.Graph

	// colloc memoizes collocated embeddings per (app, ingress, node);
	// valid while the State's price generation is unchanged.
	colloc    map[collocKey]collocEntry
	collocGen uint64

	// Reusable query scratch (outer slices; inner DP rows come from the
	// State's arena).
	cands      []scoredNode
	dpChildren [][]int
	dpCost     [][]float64
	dpChoice   [][]graph.NodeID
	poOrder    []int
}

type collocKey struct {
	app     *vnet.App
	ingress graph.NodeID
	u       graph.NodeID
}

type collocEntry struct {
	e     *vnet.Embedding
	price float64
	ok    bool
}

// ForState returns an oracle viewing st. Multiple oracles may view one
// State (sequentially); they share its path cache but not their
// collocated-embedding memos.
func ForState(st *substrate.State) *Oracle {
	return &Oracle{st: st, g: st.Graph(), colloc: make(map[collocKey]collocEntry), collocGen: st.PriceGen()}
}

// NewOracle prepares an oracle for the given prices over a private
// substrate.State. Callers that already hold a State should use ForState
// instead and batch queries per price vector via SetPrices.
func NewOracle(g *graph.Graph, pr Prices) *Oracle {
	return ForState(substrate.NewWithPrices(g, pr))
}

// State returns the substrate state this oracle views.
func (o *Oracle) State() *substrate.State { return o.st }

// MinCostEmbed returns the cost-minimal embedding of app with θ pinned at
// ingress, under the oracle's prices, along with its per-unit-demand price
// (Σ β·η·price over the mapping). ok is false when no finite-price
// embedding exists (e.g. all GPU nodes excluded for a GPU VNF).
//
// The DP is exact for tree-shaped apps: children subtrees are independent
// given the parent's placement, and each virtual link independently takes
// a shortest path under the prices.
//
//olive:hotpath per-request embedding decision entry point
func (o *Oracle) MinCostEmbed(app *vnet.App, ingress graph.NodeID) (*vnet.Embedding, float64, bool) {
	return o.minCost(o.st, app, ingress, nil)
}

// Restriction limits which substrate nodes a given VNF may occupy; a nil
// Restriction allows every node. FULLG's capacity branch-out bans
// individual (VNF, node) pairs to discover split placements around a
// jointly-overloaded node.
type Restriction func(vnet.VNFID, graph.NodeID) bool

// MinCostEmbedRestricted is MinCostEmbed with per-VNF node restrictions.
//
//olive:hotpath FULLG branch-out retry primitive
func (o *Oracle) MinCostEmbedRestricted(app *vnet.App, ingress graph.NodeID, allow Restriction) (*vnet.Embedding, float64, bool) {
	return o.minCost(o.st, app, ingress, allow)
}

// MinCostEmbedExcluded is MinCostEmbedRestricted with substrate elements
// excluded wholesale: excluded nodes get +Inf placement price and excluded
// links +Inf path weight. This is the FULLG capacity branch-out's retry
// primitive — it reuses pooled exclusion views instead of rebuilding an
// oracle, so a retry performs no all-pairs computation.
//
//olive:hotpath FULLG branch-out retry primitive; pooled views, no oracle rebuild
func (o *Oracle) MinCostEmbedExcluded(app *vnet.App, ingress graph.NodeID, allow Restriction, exclude map[graph.ElementID]bool) (*vnet.Embedding, float64, bool) {
	if len(exclude) == 0 {
		return o.minCost(o.st, app, ingress, allow)
	}
	v := o.st.AcquireView(exclude)
	defer v.Close()
	return o.minCost(v, app, ingress, allow)
}

// minCost runs the embedding DP against an arbitrary price/path provider.
func (o *Oracle) minCost(pa pather, app *vnet.App, ingress graph.NodeID, allow Restriction) (*vnet.Embedding, float64, bool) {
	n := o.g.NumNodes()
	numVNF := len(app.VNFs)

	arena := o.st.ScratchArena()
	arena.Reset()

	children := o.childrenOf(app) // child link indices per VNF

	// cost[i][u]: minimal price of the subtree rooted at VNF i when i
	// sits on node u. choice[li][u]: best child node for link li given
	// its parent on u.
	cost := resizeOuter(&o.dpCost, numVNF)
	choice := resizeOuter(&o.dpChoice, len(app.Links))

	// Process VNFs so that every child precedes its parent: links are
	// listed parent-to-child but branch interleaving means a reverse
	// index sweep is not sufficient, so compute an explicit post-order.
	order := o.postOrder(app, children)

	for _, i := range order {
		v := app.VNFs[i]
		ci := arena.Float64s(n)
		for u := 0; u < n; u++ {
			eta := vnet.Eff(v, o.g.Node(graph.NodeID(u)))
			if math.IsInf(eta, 1) || math.IsInf(pa.NodePrice(graph.NodeID(u)), 1) ||
				(allow != nil && v.ID != vnet.Root && !allow(v.ID, graph.NodeID(u))) {
				ci[u] = math.Inf(1)
				continue
			}
			ci[u] = v.Size * eta * pa.NodePrice(graph.NodeID(u))
		}
		for _, li := range children[i] {
			l := app.Links[li]
			childCost := cost[l.To]
			choice[li] = arena.NodeIDs(n)
			for u := 0; u < n; u++ {
				if math.IsInf(ci[u], 1) {
					continue
				}
				// One row fetch per source: the O(n) inner scan
				// indexes the cached distance row directly instead
				// of paying an interface call per destination.
				du := pa.DistRow(graph.NodeID(u))
				best := math.Inf(1)
				bestW := graph.NodeID(-1)
				for w := 0; w < n; w++ {
					if math.IsInf(childCost[w], 1) {
						continue
					}
					c := l.Size*du[w] + childCost[w]
					if c < best {
						best, bestW = c, graph.NodeID(w)
					}
				}
				ci[u] += best
				choice[li][u] = bestW
			}
		}
		cost[i] = ci
	}

	rootCost := cost[vnet.Root][ingress]
	if math.IsInf(rootCost, 1) {
		return nil, 0, false
	}

	// Reconstruct the mapping top-down. nodeMap and pathMap escape into
	// the Embedding, so they are real allocations, not arena chunks.
	nodeMap := make([]graph.NodeID, numVNF)
	nodeMap[vnet.Root] = ingress
	pathMap := make([]graph.Path, len(app.Links))
	var walk func(i int)
	walk = func(i int) {
		u := nodeMap[i]
		for _, li := range children[i] {
			l := app.Links[li]
			w := choice[li][u]
			nodeMap[l.To] = w
			p, _ := pa.PathBetween(u, w)
			pathMap[li] = p
			walk(int(l.To))
		}
	}
	walk(int(vnet.Root))

	e, err := vnet.NewEmbedding(o.g, app, nodeMap, pathMap)
	if err != nil {
		// Only possible if prices admit a node that η forbids —
		// prevented above, so treat as "no embedding".
		return nil, 0, false
	}
	return e, rootCost, true
}

// childrenOf fills the reusable per-VNF child-link index lists.
func (o *Oracle) childrenOf(app *vnet.App) [][]int {
	children := resizeOuter(&o.dpChildren, len(app.VNFs))
	for i := range children {
		children[i] = children[i][:0]
	}
	for li, l := range app.Links {
		children[l.From] = append(children[l.From], li)
	}
	return children
}

// postOrder returns VNF indices so that every child precedes its parent,
// reusing the oracle's order buffer.
func (o *Oracle) postOrder(app *vnet.App, children [][]int) []int {
	order := o.poOrder[:0]
	var visit func(i vnet.VNFID)
	visit = func(i vnet.VNFID) {
		for _, li := range children[i] {
			visit(app.Links[li].To)
		}
		order = append(order, int(i))
	}
	visit(vnet.Root)
	o.poOrder = order
	return order
}

// resizeOuter grows (never shrinks) an outer scratch slice to n entries.
func resizeOuter[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// collocated returns the memoized collocated embedding of app on node u
// with θ at ingress, building and caching it on first use. Entries are
// invalidated wholesale when the State's prices change.
func (o *Oracle) collocated(app *vnet.App, ingress, u graph.NodeID) (*vnet.Embedding, float64, bool) {
	if gen := o.st.PriceGen(); gen != o.collocGen {
		clear(o.colloc)
		o.collocGen = gen
	}
	key := collocKey{app, ingress, u}
	if ent, ok := o.colloc[key]; ok {
		return ent.e, ent.price, ent.ok
	}
	e, price, ok := o.buildCollocated(app, ingress, u)
	o.colloc[key] = collocEntry{e, price, ok}
	return e, price, ok
}

// CollocatedOnNode builds the embedding that places every functional VNF
// of app on node u, with θ at ingress and every θ-adjacent virtual link
// routed along the price-shortest ingress→u path. ok is false if u is
// excluded (price or η) or unreachable. Results are memoized per
// (app, ingress, u) until the State's prices change; callers receive a
// shared immutable Embedding.
func (o *Oracle) CollocatedOnNode(app *vnet.App, ingress, u graph.NodeID) (*vnet.Embedding, float64, bool) {
	return o.collocated(app, ingress, u)
}

func (o *Oracle) buildCollocated(app *vnet.App, ingress, u graph.NodeID) (*vnet.Embedding, float64, bool) {
	price, ok := o.collocPrice(app, ingress, u)
	if !ok {
		return nil, 0, false
	}
	// One shared single-node path serves every collocated virtual link —
	// paths are immutable once inside an Embedding.
	selfPath := graph.Path{Nodes: []graph.NodeID{u}}
	rootPath := selfPath
	if ingress != u {
		// collocPrice found a finite distance, so the path exists.
		rootPath, _ = o.st.PathBetween(ingress, u)
	}
	nodeMap := make([]graph.NodeID, len(app.VNFs))
	nodeMap[vnet.Root] = ingress
	for i := 1; i < len(nodeMap); i++ {
		nodeMap[i] = u
	}
	pathMap := make([]graph.Path, len(app.Links))
	for li, l := range app.Links {
		if l.From == vnet.Root {
			pathMap[li] = rootPath
		} else {
			pathMap[li] = selfPath
		}
	}
	e, err := vnet.NewEmbedding(o.g, app, nodeMap, pathMap)
	if err != nil {
		return nil, 0, false
	}
	return e, price, true
}

// collocPrice is the single implementation of the collocated price
// formula: Σ β·η·nodePrice over the VNFs plus Σ β·dist over the
// θ-adjacent virtual links. ok is false when u is excluded (price or η)
// or unreachable. buildCollocated and KCheapestCollocated's ranking both
// read it, so the ranking is bit-identical to the materialized price by
// construction.
func (o *Oracle) collocPrice(app *vnet.App, ingress, u graph.NodeID) (float64, bool) {
	if math.IsInf(o.st.NodePrice(u), 1) {
		return 0, false
	}
	node := o.g.Node(u)
	var price float64
	for _, v := range app.VNFs {
		eta := vnet.Eff(v, node)
		if math.IsInf(eta, 1) {
			return 0, false
		}
		price += v.Size * eta * o.st.NodePrice(u)
	}
	var rootCost float64
	if ingress != u {
		d := o.st.Dist(ingress, u)
		if math.IsInf(d, 1) {
			return 0, false
		}
		rootCost = d
	}
	for _, l := range app.Links {
		if l.From == vnet.Root {
			price += l.Size * rootCost
		}
	}
	return price, true
}

// scoredNode pairs a candidate hosting node with its embedding price.
type scoredNode struct {
	u     graph.NodeID
	price float64
}

func sortCands(cs []scoredNode) {
	// Insertion sort keeps the dependency footprint minimal; candidate
	// lists are at most NumNodes (≤100) long.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].price < cs[j-1].price; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// BestCollocated returns the cheapest collocated embedding of app rooted
// at ingress that satisfies demand d within the residual capacities res
// (Eq. 18); candidates are scanned in increasing price. ok is false if no
// feasible collocated embedding exists. Passing a nil res skips
// feasibility and returns the globally cheapest collocated embedding.
// The returned Embedding may be memo-shared with other callers and must
// be treated as immutable.
func (o *Oracle) BestCollocated(app *vnet.App, ingress graph.NodeID, res []float64, d float64) (*vnet.Embedding, float64, bool) {
	cands := o.cands[:0]
	nodeSize := app.TotalNodeSize()
	var rootLinkSize float64
	for _, l := range app.Links {
		if l.From == vnet.Root {
			rootLinkSize += l.Size
		}
	}
	for u := 0; u < o.g.NumNodes(); u++ {
		if math.IsInf(o.st.NodePrice(graph.NodeID(u)), 1) {
			continue
		}
		dist := o.st.Dist(ingress, graph.NodeID(u))
		if math.IsInf(dist, 1) {
			continue
		}
		// Price lower bound: exact for the collocated form.
		cands = append(cands, scoredNode{graph.NodeID(u), nodeSize*o.st.NodePrice(graph.NodeID(u)) + rootLinkSize*dist})
	}
	sortCands(cands)
	o.cands = cands
	for _, c := range cands {
		e, price, ok := o.collocated(app, ingress, c.u)
		if !ok {
			continue
		}
		if res != nil && !e.FitsResidual(res, d) {
			continue
		}
		return e, price, true
	}
	return nil, 0, false
}

// KCheapestCollocated returns up to k collocated embeddings in increasing
// price order, ignoring capacities — the initial columns of the plan LP.
// Candidates are ranked by their exact collocated price (computed without
// building embeddings); only the k winners are materialized, via the
// memo.
func (o *Oracle) KCheapestCollocated(app *vnet.App, ingress graph.NodeID, k int) []*vnet.Embedding {
	cands := o.cands[:0]
	for u := 0; u < o.g.NumNodes(); u++ {
		if price, ok := o.collocPrice(app, ingress, graph.NodeID(u)); ok {
			cands = append(cands, scoredNode{graph.NodeID(u), price})
		}
	}
	sortCands(cands)
	o.cands = cands
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*vnet.Embedding, 0, len(cands))
	for _, c := range cands {
		// collocPrice mirrors buildCollocated's feasibility exactly, so
		// ok should always hold here; guard anyway so a future
		// divergence drops the candidate instead of emitting a nil.
		if e, _, ok := o.collocated(app, ingress, c.u); ok {
			out = append(out, e)
		}
	}
	return out
}

// MinCostEmbedExcluding runs MinCostEmbed with additional elements
// excluded (price +Inf) — the FULLG capacity branch-out uses it to retry
// around saturated elements. The exclusion set maps element IDs to true.
func MinCostEmbedExcluding(g *graph.Graph, base Prices, exclude map[graph.ElementID]bool, app *vnet.App, ingress graph.NodeID) (*vnet.Embedding, float64, bool) {
	return NewOracle(g, base).MinCostEmbedExcluded(app, ingress, nil, exclude)
}
