// Package embedder finds minimum-cost integral embeddings of a virtual
// network (a rooted tree of VNFs) onto a substrate under arbitrary
// per-element prices.
//
// The core routine, MinCostEmbed, is a dynamic program over the VN tree
// with all-pairs shortest paths on the substrate: for tree-shaped virtual
// networks it returns the exact cost-minimal mapping (each virtual link's
// path chosen independently along a shortest path under the given prices).
// It is used three ways in the reproduction:
//
//   - as the FULLG baseline's per-request exact embedder (paper §IV-A),
//   - as the pricing oracle of the PLAN-VNE column generation (the
//     Dantzig–Wolfe subproblem: prices = element costs minus LP duals),
//   - to seed initial candidate columns for the plan LP.
//
// Collocated embeddings (all functional VNFs on one node — the restriction
// QUICKG and OLIVE's GREEDYEMBED use, §III-C) are produced by
// BestCollocated and CollocatedOnNode.
package embedder

import (
	"math"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/vnet"
)

// Prices assigns a per-CU price to every substrate element (flat element
// indexing). A price of +Inf excludes the element.
type Prices []float64

// CostPrices returns the substrate's own element costs as prices.
func CostPrices(g *graph.Graph) Prices {
	p := make(Prices, g.NumElements())
	for i := range p {
		p[i] = g.ElementCost(graph.ElementID(i))
	}
	return p
}

// AdjustedPrices returns cost(s) − dual[s] for column-generation pricing:
// capacity-row duals are ≤ 0 at optimality, so congested elements become
// more expensive. dual is indexed by element.
func AdjustedPrices(g *graph.Graph, dual []float64) Prices {
	p := CostPrices(g)
	for i := range p {
		p[i] -= dual[i]
	}
	return p
}

// Oracle answers min-cost embedding queries for one substrate graph and
// price vector. Building an Oracle runs one all-pairs shortest path
// computation; queries reuse it, so batch queries per price vector.
type Oracle struct {
	g  *graph.Graph
	pr Prices
	ap *graph.AllPairs
	// nodePrice[u] is the per-CU price of node u (+Inf if excluded).
	nodePrice []float64
}

// NewOracle prepares an oracle for the given prices.
func NewOracle(g *graph.Graph, pr Prices) *Oracle {
	w := func(l graph.Link) float64 { return pr[g.LinkElement(l.ID)] }
	o := &Oracle{g: g, pr: pr, ap: g.AllPairsShortestPaths(w)}
	o.nodePrice = make([]float64, g.NumNodes())
	for i := range o.nodePrice {
		o.nodePrice[i] = pr[g.NodeElement(graph.NodeID(i))]
	}
	return o
}

// MinCostEmbed returns the cost-minimal embedding of app with θ pinned at
// ingress, under the oracle's prices, along with its per-unit-demand price
// (Σ β·η·price over the mapping). ok is false when no finite-price
// embedding exists (e.g. all GPU nodes excluded for a GPU VNF).
//
// The DP is exact for tree-shaped apps: children subtrees are independent
// given the parent's placement, and each virtual link independently takes
// a shortest path under the prices.
func (o *Oracle) MinCostEmbed(app *vnet.App, ingress graph.NodeID) (*vnet.Embedding, float64, bool) {
	return o.MinCostEmbedRestricted(app, ingress, nil)
}

// Restriction limits which substrate nodes a given VNF may occupy; a nil
// Restriction allows every node. FULLG's capacity branch-out bans
// individual (VNF, node) pairs to discover split placements around a
// jointly-overloaded node.
type Restriction func(vnet.VNFID, graph.NodeID) bool

// MinCostEmbedRestricted is MinCostEmbed with per-VNF node restrictions.
func (o *Oracle) MinCostEmbedRestricted(app *vnet.App, ingress graph.NodeID, allow Restriction) (*vnet.Embedding, float64, bool) {
	n := o.g.NumNodes()
	numVNF := len(app.VNFs)

	children := make([][]int, numVNF) // child link indices per VNF
	for li, l := range app.Links {
		children[l.From] = append(children[l.From], li)
	}

	// cost[i][u]: minimal price of the subtree rooted at VNF i when i
	// sits on node u. choice[li][u]: best child node for link li given
	// its parent on u.
	cost := make([][]float64, numVNF)
	choice := make([][]graph.NodeID, len(app.Links))

	// Process VNFs in reverse topological order: links are listed
	// parent-to-child, so children have higher traversal order; a
	// reverse sweep over VNF indices is not sufficient for trees built
	// by generators (IDs are BFS-ish but branches interleave), so
	// compute an explicit post-order over links.
	order := postOrder(app)

	for _, i := range order {
		v := app.VNFs[i]
		ci := make([]float64, n)
		for u := 0; u < n; u++ {
			eta := vnet.Eff(v, o.g.Node(graph.NodeID(u)))
			if math.IsInf(eta, 1) || math.IsInf(o.nodePrice[u], 1) ||
				(allow != nil && v.ID != vnet.Root && !allow(v.ID, graph.NodeID(u))) {
				ci[u] = math.Inf(1)
				continue
			}
			ci[u] = v.Size * eta * o.nodePrice[u]
		}
		for _, li := range children[i] {
			l := app.Links[li]
			childCost := cost[l.To]
			choice[li] = make([]graph.NodeID, n)
			for u := 0; u < n; u++ {
				if math.IsInf(ci[u], 1) {
					continue
				}
				best := math.Inf(1)
				bestW := graph.NodeID(-1)
				for w := 0; w < n; w++ {
					if math.IsInf(childCost[w], 1) {
						continue
					}
					c := l.Size*o.ap.Dist(graph.NodeID(u), graph.NodeID(w)) + childCost[w]
					if c < best {
						best, bestW = c, graph.NodeID(w)
					}
				}
				ci[u] += best
				choice[li][u] = bestW
			}
		}
		cost[i] = ci
	}

	rootCost := cost[vnet.Root][ingress]
	if math.IsInf(rootCost, 1) {
		return nil, 0, false
	}

	// Reconstruct the mapping top-down.
	nodeMap := make([]graph.NodeID, numVNF)
	nodeMap[vnet.Root] = ingress
	pathMap := make([]graph.Path, len(app.Links))
	var walk func(i int)
	walk = func(i int) {
		u := nodeMap[i]
		for _, li := range children[i] {
			l := app.Links[li]
			w := choice[li][u]
			nodeMap[l.To] = w
			p, _ := o.ap.Path(u, w)
			pathMap[li] = p
			walk(int(l.To))
		}
	}
	walk(int(vnet.Root))

	e, err := vnet.NewEmbedding(o.g, app, nodeMap, pathMap)
	if err != nil {
		// Only possible if prices admit a node that η forbids —
		// prevented above, so treat as "no embedding".
		return nil, 0, false
	}
	return e, rootCost, true
}

// postOrder returns VNF indices so that every child precedes its parent.
func postOrder(app *vnet.App) []int {
	children := make([][]vnet.VNFID, len(app.VNFs))
	for _, l := range app.Links {
		children[l.From] = append(children[l.From], l.To)
	}
	order := make([]int, 0, len(app.VNFs))
	var visit func(i vnet.VNFID)
	visit = func(i vnet.VNFID) {
		for _, c := range children[i] {
			visit(c)
		}
		order = append(order, int(i))
	}
	visit(vnet.Root)
	return order
}

// CollocatedOnNode builds the embedding that places every functional VNF
// of app on node u, with θ at ingress and every θ-adjacent virtual link
// routed along the price-shortest ingress→u path. ok is false if u is
// excluded (price or η) or unreachable.
func (o *Oracle) CollocatedOnNode(app *vnet.App, ingress, u graph.NodeID) (*vnet.Embedding, float64, bool) {
	if math.IsInf(o.nodePrice[u], 1) {
		return nil, 0, false
	}
	node := o.g.Node(u)
	var price float64
	for _, v := range app.VNFs {
		eta := vnet.Eff(v, node)
		if math.IsInf(eta, 1) {
			return nil, 0, false
		}
		price += v.Size * eta * o.nodePrice[u]
	}
	var rootPath graph.Path
	if ingress != u {
		p, ok := o.ap.Path(ingress, u)
		if !ok || math.IsInf(p.Cost, 1) {
			return nil, 0, false
		}
		rootPath = p
	} else {
		rootPath = graph.Path{Nodes: []graph.NodeID{u}}
	}
	nodeMap := make([]graph.NodeID, len(app.VNFs))
	nodeMap[vnet.Root] = ingress
	for i := 1; i < len(nodeMap); i++ {
		nodeMap[i] = u
	}
	pathMap := make([]graph.Path, len(app.Links))
	for li, l := range app.Links {
		if l.From == vnet.Root {
			pathMap[li] = rootPath
			price += l.Size * rootPath.Cost
		} else {
			pathMap[li] = graph.Path{Nodes: []graph.NodeID{u}}
		}
	}
	e, err := vnet.NewEmbedding(o.g, app, nodeMap, pathMap)
	if err != nil {
		return nil, 0, false
	}
	return e, price, true
}

// scoredNode pairs a candidate hosting node with its embedding price.
type scoredNode struct {
	u     graph.NodeID
	price float64
}

func sortCands(cs []scoredNode) {
	// Insertion sort keeps the dependency footprint minimal; candidate
	// lists are at most NumNodes (≤100) long.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].price < cs[j-1].price; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// BestCollocated returns the cheapest collocated embedding of app rooted
// at ingress that satisfies demand d within the residual capacities res
// (Eq. 18); candidates are scanned in increasing price. ok is false if no
// feasible collocated embedding exists. Passing a nil res skips
// feasibility and returns the globally cheapest collocated embedding.
func (o *Oracle) BestCollocated(app *vnet.App, ingress graph.NodeID, res []float64, d float64) (*vnet.Embedding, float64, bool) {
	cands := make([]scoredNode, 0, o.g.NumNodes())
	nodeSize := app.TotalNodeSize()
	var rootLinkSize float64
	for _, l := range app.Links {
		if l.From == vnet.Root {
			rootLinkSize += l.Size
		}
	}
	for u := 0; u < o.g.NumNodes(); u++ {
		if math.IsInf(o.nodePrice[u], 1) {
			continue
		}
		dist := o.ap.Dist(ingress, graph.NodeID(u))
		if math.IsInf(dist, 1) {
			continue
		}
		// Price lower bound: exact for the collocated form.
		cands = append(cands, scoredNode{graph.NodeID(u), nodeSize*o.nodePrice[u] + rootLinkSize*dist})
	}
	sortCands(cands)
	for _, c := range cands {
		e, price, ok := o.CollocatedOnNode(app, ingress, c.u)
		if !ok {
			continue
		}
		if res != nil && !e.FitsResidual(res, d) {
			continue
		}
		return e, price, true
	}
	return nil, 0, false
}

// KCheapestCollocated returns up to k collocated embeddings in increasing
// price order, ignoring capacities — the initial columns of the plan LP.
func (o *Oracle) KCheapestCollocated(app *vnet.App, ingress graph.NodeID, k int) []*vnet.Embedding {
	var cands []scoredNode
	for u := 0; u < o.g.NumNodes(); u++ {
		if _, price, ok := o.CollocatedOnNode(app, ingress, graph.NodeID(u)); ok {
			cands = append(cands, scoredNode{graph.NodeID(u), price})
		}
	}
	sortCands(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*vnet.Embedding, 0, len(cands))
	for _, c := range cands {
		e, _, _ := o.CollocatedOnNode(app, ingress, c.u)
		out = append(out, e)
	}
	return out
}

// MinCostEmbedExcluding runs MinCostEmbed with additional elements
// excluded (price +Inf) — the FULLG capacity branch-out uses it to retry
// around saturated elements. The exclusion set maps element IDs to true.
func MinCostEmbedExcluding(g *graph.Graph, base Prices, exclude map[graph.ElementID]bool, app *vnet.App, ingress graph.NodeID) (*vnet.Embedding, float64, bool) {
	pr := append(Prices(nil), base...)
	for e := range exclude {
		pr[e] = math.Inf(1)
	}
	return NewOracle(g, pr).MinCostEmbed(app, ingress)
}
