// Package persist serializes the library's long-lived artifacts — request
// traces and PLAN-VNE plans — as versioned JSON, so a provider can compute
// a plan offline (cmd/planner), ship it, and load it into an online engine
// later. Traces round-trip exactly; plans are stored as (class, share)
// records whose embeddings are revalidated against the substrate and
// application set on load.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// Version tags the on-disk format; readers reject other versions.
const Version = 1

// traceFile is the JSON envelope for a trace.
type traceFile struct {
	Version  int                `json:"version"`
	Slots    int                `json:"slots"`
	Requests []workload.Request `json:"requests"`
}

// SaveTrace writes t as JSON.
func SaveTrace(w io.Writer, t *workload.Trace) error {
	if t == nil {
		return errors.New("persist: nil trace")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{Version: Version, Slots: t.Slots, Requests: t.Requests})
}

// LoadTrace reads a trace written by SaveTrace and validates it.
func LoadTrace(r io.Reader) (*workload.Trace, error) {
	var f traceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: decode trace: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("persist: trace version %d, want %d", f.Version, Version)
	}
	t := &workload.Trace{Slots: f.Slots, Requests: f.Requests}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded trace invalid: %w", err)
	}
	return t, nil
}

// shareRec is one plan share on disk: the embedding as a node map plus
// per-virtual-link link sequences (paths are reconstructed and revalidated
// on load).
type shareRec struct {
	Fraction float64          `json:"fraction"`
	NodeMap  []graph.NodeID   `json:"nodeMap"`
	Paths    [][]graph.LinkID `json:"paths"`
}

type classRec struct {
	App      int          `json:"app"`
	Ingress  graph.NodeID `json:"ingress"`
	Demand   float64      `json:"demand"`
	Rejected float64      `json:"rejected"`
	Shares   []shareRec   `json:"shares"`
}

type planFile struct {
	Version int        `json:"version"`
	Obj     float64    `json:"objective"`
	Classes []classRec `json:"classes"`
}

// SavePlan writes p as JSON. Embeddings are stored structurally (node map
// + link sequences); costs and usage vectors are recomputed on load.
func SavePlan(w io.Writer, p *plan.Plan) error {
	if p == nil {
		return errors.New("persist: nil plan")
	}
	f := planFile{Version: Version, Obj: p.Obj}
	for _, cp := range p.Classes {
		rec := classRec{
			App: cp.Class.App, Ingress: cp.Class.Ingress,
			Demand: cp.Class.Demand, Rejected: cp.Rejected,
		}
		for _, s := range cp.Shares {
			sr := shareRec{Fraction: s.Fraction, NodeMap: s.E.NodeMap}
			for _, path := range s.E.PathMap {
				sr.Paths = append(sr.Paths, append([]graph.LinkID{}, path.Links...))
			}
			rec.Shares = append(rec.Shares, sr)
		}
		f.Classes = append(f.Classes, rec)
	}
	return json.NewEncoder(w).Encode(f)
}

// LoadPlan reads a plan written by SavePlan, rebuilding and revalidating
// every share embedding against the given substrate and application set.
func LoadPlan(r io.Reader, g *graph.Graph, apps []*vnet.App) (*plan.Plan, error) {
	var f planFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: decode plan: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("persist: plan version %d, want %d", f.Version, Version)
	}
	classes := make([]plan.ClassPlan, 0, len(f.Classes))
	for _, rec := range f.Classes {
		if rec.App < 0 || rec.App >= len(apps) {
			return nil, fmt.Errorf("persist: class references app %d of %d", rec.App, len(apps))
		}
		app := apps[rec.App]
		cp := plan.ClassPlan{
			Class:    plan.Class{App: rec.App, Ingress: rec.Ingress, Demand: rec.Demand},
			Rejected: rec.Rejected,
		}
		for si, sr := range rec.Shares {
			if len(sr.Paths) != len(app.Links) {
				return nil, fmt.Errorf("persist: class (%d,%d) share %d has %d paths for %d virtual links",
					rec.App, rec.Ingress, si, len(sr.Paths), len(app.Links))
			}
			pathMap := make([]graph.Path, len(sr.Paths))
			for li, linkSeq := range sr.Paths {
				if int(app.Links[li].From) >= len(sr.NodeMap) {
					return nil, fmt.Errorf("persist: class (%d,%d) share %d: node map too short", rec.App, rec.Ingress, si)
				}
				start := sr.NodeMap[app.Links[li].From]
				path, err := g.PathFromLinks(start, linkSeq, graph.CostWeight)
				if err != nil {
					return nil, fmt.Errorf("persist: class (%d,%d) share %d path %d: %w",
						rec.App, rec.Ingress, si, li, err)
				}
				pathMap[li] = path
			}
			emb, err := vnet.NewEmbedding(g, app, sr.NodeMap, pathMap)
			if err != nil {
				return nil, fmt.Errorf("persist: class (%d,%d) share %d: %w", rec.App, rec.Ingress, si, err)
			}
			cp.Shares = append(cp.Shares, plan.Share{E: emb, Fraction: sr.Fraction})
		}
		classes = append(classes, cp)
	}
	return plan.FromClasses(classes, f.Obj), nil
}
