package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// artifactFile is the JSON envelope for a cached experiment artifact: one
// completed sweep cell, keyed by the canonical cell descriptor so a resumed
// sweep can detect stale or colliding entries.
type artifactFile struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// SaveArtifact writes v as a versioned JSON artifact tagged with key.
func SaveArtifact(w io.Writer, key string, v any) error {
	if key == "" {
		return errors.New("persist: empty artifact key")
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("persist: encode artifact %q: %w", key, err)
	}
	return json.NewEncoder(w).Encode(artifactFile{Version: Version, Key: key, Payload: payload})
}

// LoadArtifact reads an artifact written by SaveArtifact into out,
// rejecting version mismatches and entries written under a different key
// (a hash collision or a stale store directory).
func LoadArtifact(r io.Reader, key string, out any) error {
	var f artifactFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("persist: decode artifact %q: %w", key, err)
	}
	if f.Version != Version {
		return fmt.Errorf("persist: artifact %q version %d, want %d", key, f.Version, Version)
	}
	if f.Key != key {
		return fmt.Errorf("persist: artifact key mismatch: stored %q (hash collision or stale store)", f.Key)
	}
	if err := json.Unmarshal(f.Payload, out); err != nil {
		return fmt.Errorf("persist: decode artifact %q payload: %w", key, err)
	}
	return nil
}
