package persist

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 55)) }

func TestTraceRoundTrip(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	rng := testRNG(2)
	wp := workload.DefaultParams()
	wp.Slots = 50
	wp.LambdaPerNode = 2
	tr, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots != tr.Slots || len(got.Requests) != len(tr.Requests) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			got.Slots, len(got.Requests), tr.Slots, len(tr.Requests))
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":99,"slots":1}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":1,"slots":0}`)); err == nil {
		t.Error("invalid trace accepted")
	}
	if err := SaveTrace(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	rng := testRNG(3)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.2)
	wp.Slots = 120
	wp.LambdaPerNode = 3
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := plan.DefaultOptions()
	opts.BootstrapB = 20
	p, err := plan.BuildFromHistory(g, apps, hist, opts, rng)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SavePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(&buf, g, apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != len(p.Classes) {
		t.Fatalf("class count %d vs %d", len(got.Classes), len(p.Classes))
	}
	if err := got.Validate(g); err != nil {
		t.Fatalf("loaded plan invalid: %v", err)
	}
	for i := range p.Classes {
		want, have := p.Classes[i], got.Classes[i]
		if want.Class != have.Class || math.Abs(want.Rejected-have.Rejected) > 1e-12 {
			t.Fatalf("class %d differs: %+v vs %+v", i, have.Class, want.Class)
		}
		if len(want.Shares) != len(have.Shares) {
			t.Fatalf("class %d share count %d vs %d", i, len(have.Shares), len(want.Shares))
		}
		for j := range want.Shares {
			if math.Abs(want.Shares[j].Fraction-have.Shares[j].Fraction) > 1e-12 {
				t.Fatalf("class %d share %d fraction differs", i, j)
			}
			// Costs recomputed on load must match exactly (same
			// substrate, same mapping).
			if math.Abs(want.Shares[j].E.UnitCost()-have.Shares[j].E.UnitCost()) > 1e-9 {
				t.Fatalf("class %d share %d unit cost %g vs %g",
					i, j, have.Shares[j].E.UnitCost(), want.Shares[j].E.UnitCost())
			}
		}
		// Lookup still works.
		if got.Lookup(want.Class.App, want.Class.Ingress) == nil {
			t.Fatalf("loaded plan cannot look up class %d", i)
		}
	}
}

func TestLoadPlanRejectsMismatchedApps(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	rng := testRNG(4)
	apps := vnet.DefaultMix(vnet.DefaultParams(), rng)
	wp := workload.DefaultParams().WithUtilization(1.0)
	wp.Slots = 100
	wp.LambdaPerNode = 2
	hist, err := workload.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := plan.DefaultOptions()
	opts.BootstrapB = 20
	p, err := plan.BuildFromHistory(g, apps, hist, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Loading against a different application set must fail validation
	// (different VNF/link arity with overwhelming probability).
	other := vnet.DefaultMix(vnet.DefaultParams(), testRNG(999))
	if _, err := LoadPlan(bytes.NewReader(buf.Bytes()), g, other[:1]); err == nil {
		t.Error("plan loaded against a 1-app set")
	}
}

func TestLoadPlanRejectsBadInput(t *testing.T) {
	g := topo.MustBuild(topo.CittaStudi, 1)
	apps := vnet.DefaultMix(vnet.DefaultParams(), testRNG(5))
	if _, err := LoadPlan(strings.NewReader("nope"), g, apps); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadPlan(strings.NewReader(`{"version":2}`), g, apps); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadPlan(strings.NewReader(`{"version":1,"classes":[{"app":77}]}`), g, apps); err == nil {
		t.Error("out-of-range app accepted")
	}
	if err := SavePlan(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil plan accepted")
	}
}
