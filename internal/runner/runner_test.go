package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jobN builds n jobs whose value encodes their index; odd jobs sleep a
// little so completion order differs from dispatch order.
func jobN(n int, ran *atomic.Int32) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(context.Context) (int, error) {
				if ran != nil {
					ran.Add(1)
				}
				if i%2 == 1 {
					time.Sleep(time.Duration(i%5) * time.Millisecond)
				}
				return i * 10, nil
			},
		}
	}
	return jobs
}

func TestAllCanonicalOrderAcrossWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := All(context.Background(), jobN(23, nil), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, o := range out {
			if o.Key != fmt.Sprintf("job-%d", i) || o.Value != i*10 {
				t.Fatalf("workers=%d: slot %d holds (%s,%d)", workers, i, o.Key, o.Value)
			}
		}
	}
}

func TestAllBoundsParallelism(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	jobs := make([]Job[int], 20)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("j%d", i),
			Run: func(context.Context) (int, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := All(context.Background(), jobs, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, limit %d", p, workers)
	}
}

func TestAllIsolatesPanics(t *testing.T) {
	jobs := []Job[int]{
		{Key: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "boom", Run: func(context.Context) (int, error) { panic("kaput") }},
	}
	out, err := All(context.Background(), jobs, Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if out[0].Err != nil || out[0].Value != 1 {
		t.Fatalf("healthy job corrupted by sibling panic: %+v", out[0])
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "kaput") {
		t.Fatalf("panicking job's outcome lacks the panic: %+v", out[1])
	}
}

func TestAllFailsFast(t *testing.T) {
	boom := errors.New("cell exploded")
	var ran atomic.Int32
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("j%d", i),
			Run: func(context.Context) (int, error) {
				ran.Add(1)
				if i == 0 {
					return 0, boom
				}
				return i, nil
			},
		}
	}
	_, err := All(context.Background(), jobs, Options{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == 50 {
		t.Fatal("failure did not cancel the remaining jobs")
	}
}

func TestAllCancellationLeavesResumableStore(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel after the first completion: with one worker, job 0 lands in
	// the store and the rest never run.
	var once sync.Once
	var ran atomic.Int32
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (int, error) {
				ran.Add(1)
				once.Do(cancel)
				return i + 100, nil
			},
		}
	}
	out, err := All(ctx, jobs, Options{Workers: 1, Store: store, Resume: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 8 {
		t.Fatal("cancellation did not stop the sweep")
	}
	n, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no artifact persisted before cancellation")
	}
	if out[0].Value != 100 {
		t.Fatalf("first cell outcome lost: %+v", out[0])
	}

	// Resume: cached cells are served from the store, the rest run.
	ran.Store(0)
	out, err = All(context.Background(), jobs, Options{Workers: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for i, o := range out {
		if o.Value != i+100 {
			t.Fatalf("cell %d resumed to %d", i, o.Value)
		}
		if o.Cached {
			cached++
		}
	}
	if cached != n {
		t.Fatalf("resume reused %d artifacts, store had %d", cached, n)
	}
	if int(ran.Load()) != len(jobs)-n {
		t.Fatalf("resume ran %d jobs, want %d", ran.Load(), len(jobs)-n)
	}
}

func TestAllWithoutResumeIgnoresCache(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	jobs := jobN(4, &ran)
	if _, err := All(context.Background(), jobs, Options{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := All(context.Background(), jobs, Options{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 8 {
		t.Fatalf("Resume=false reran %d jobs, want 8", n)
	}
	out, err := All(context.Background(), jobs, Options{Workers: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if !o.Cached {
			t.Fatalf("artifact for %s not reused on resume", o.Key)
		}
	}
}

func TestTextReporterCounts(t *testing.T) {
	var sb strings.Builder
	rep := NewTextReporter(&sb)
	if _, err := All(context.Background(), jobN(5, nil), Options{Workers: 2, Reporter: rep}); err != nil {
		t.Fatal(err)
	}
	log := sb.String()
	if !strings.Contains(log, "runner: 5 jobs") || !strings.Contains(log, "[5/5]") || !strings.Contains(log, "finished 5/5") {
		t.Fatalf("reporter output incomplete:\n%s", log)
	}
}
