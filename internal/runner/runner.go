// Package runner is the parallel experiment-runner of the reproduction: a
// worker-pool scheduler that fans independent jobs (simulation sweep
// cells) out across GOMAXPROCS goroutines while keeping every observable
// result deterministic. Three disciplines make parallelism safe here:
//
//   - Identity is positional, never temporal: a job's Key encodes
//     everything its computation depends on (the cell's seed included),
//     so any worker count, any interleaving and any resume produce
//     identical numbers.
//   - Aggregation is canonical: All returns outcomes in job order, not
//     arrival order, so downstream summaries are byte-identical to a
//     sequential loop.
//   - Completion is durable: with a Store attached, each finished cell is
//     persisted as versioned JSON (via internal/persist), so a cancelled
//     or crashed sweep resumes from its artifacts instead of recomputing.
//
// Panics inside a job are recovered and reported as that job's error; one
// job's failure cancels the remaining undispatched jobs (fail-fast) but
// never tears down the process.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one independent unit of work. Key is the job's stable identity:
// it names the cached artifact and must uniquely encode everything the
// computation depends on. Label, when set, is the short human-readable
// name used in progress lines and errors (Key can be a long canonical
// encoding).
type Job[T any] struct {
	Key   string
	Label string
	Run   func(ctx context.Context) (T, error)
}

// label returns the job's display name.
func (j Job[T]) label() string {
	if j.Label != "" {
		return j.Label
	}
	return j.Key
}

// Outcome is the result of one job, reported in job order.
type Outcome[T any] struct {
	Key   string
	Value T
	// Err is the job's failure, if any (a recovered panic included).
	Err error
	// Cached is true when Value was loaded from the store.
	Cached bool
	// Elapsed is the job's execution time (zero for cache hits).
	Elapsed time.Duration
}

// Options configures a fan-out.
type Options struct {
	// Workers bounds the parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Store, when non-nil, receives every completed job's value as a
	// versioned JSON artifact keyed by Job.Key.
	Store *Store
	// Resume additionally reads the store: jobs whose artifact already
	// exists are satisfied from cache instead of running.
	Resume bool
	// Reporter, when non-nil, observes progress.
	Reporter Reporter
}

// All executes the jobs on a bounded worker pool and returns their
// outcomes indexed like jobs — canonical order, independent of which
// worker finished first. The error is the first job failure or the
// context's error; in both cases the returned slice still carries every
// outcome that completed (and, with a Store, those cells are already
// persisted, so the sweep is resumable).
func All[T any](ctx context.Context, jobs []Job[T], opts Options) ([]Outcome[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	out := make([]Outcome[T], len(jobs))
	var pending []int
	for i, j := range jobs {
		out[i].Key = j.Key
		if opts.Store != nil && opts.Resume {
			var v T
			hit, err := opts.Store.Get(j.Key, &v)
			if err != nil {
				return out, err
			}
			if hit {
				out[i].Value = v
				out[i].Cached = true
				continue
			}
		}
		pending = append(pending, i)
	}

	started := time.Now() //olive:wallclock progress/ETA reporting only, never in artifacts
	if opts.Reporter != nil {
		opts.Reporter.Start(len(jobs), len(jobs)-len(pending))
		defer func() { opts.Reporter.Finish(time.Since(started)) }() //olive:wallclock progress/ETA reporting only
	}
	if len(pending) == 0 {
		return out, ctx.Err()
	}

	// Fail-fast: the first job error cancels the jobs not yet started.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		errMu    sync.Mutex
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	feed := make(chan int)
	go func() {
		defer close(feed)
		for _, idx := range pending {
			select {
			case feed <- idx:
			case <-cctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range feed {
				if cctx.Err() != nil {
					return
				}
				o := &out[idx]
				t0 := time.Now() //olive:wallclock per-cell Elapsed is diagnostic; goldens exclude runtime columns
				o.Value, o.Err = protect(cctx, jobs[idx])
				o.Elapsed = time.Since(t0) //olive:wallclock diagnostic timing

				if o.Err == nil && opts.Store != nil {
					o.Err = opts.Store.Put(o.Key, o.Value)
				}
				if opts.Reporter != nil {
					opts.Reporter.Done(jobs[idx].label(), o.Elapsed, o.Err)
				}
				if o.Err != nil {
					fail(fmt.Errorf("runner: job %q: %w", jobs[idx].label(), o.Err))
					return
				}
			}
		}()
	}
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// protect runs one job with panic isolation: a panicking cell becomes
// that cell's error (with its stack) instead of killing the sweep.
func protect[T any](ctx context.Context, j Job[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return j.Run(ctx)
}
