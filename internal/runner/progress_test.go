package runner

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestTextReporterSummaryLine pins the machine-readable summary format CI
// parses: fixed key order, one line, exact counts.
func TestTextReporterSummaryLine(t *testing.T) {
	var sb strings.Builder
	r := NewTextReporter(&sb)
	r.Start(5, 2)
	r.Done("a", time.Millisecond, nil)
	r.Done("b", time.Millisecond, errors.New("boom"))
	r.Done("c", time.Millisecond, nil)
	r.Finish(10 * time.Millisecond)

	want := "runner-summary jobs=5 ran=3 cached=2 failed=1"
	var found bool
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("output lacks %q:\n%s", want, sb.String())
	}
	// A second fan-out through the same reporter resets the counters.
	sb.Reset()
	r.Start(1, 0)
	r.Done("d", time.Millisecond, nil)
	r.Finish(time.Millisecond)
	if !strings.Contains(sb.String(), "runner-summary jobs=1 ran=1 cached=0 failed=0") {
		t.Fatalf("reporter did not reset between fan-outs:\n%s", sb.String())
	}
}
