package runner

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/olive-vne/olive/internal/persist"
)

// Store persists one versioned JSON artifact per completed sweep cell in a
// flat directory, so an interrupted sweep resumes from its cached cells
// instead of recomputing them. Files are named by a stable hash of the
// cell key; the key itself is stored inside the envelope and verified on
// read, turning hash collisions and stale directories into errors rather
// than silent wrong results. Writes are atomic (temp file + rename), so a
// run killed mid-write never leaves a truncated artifact behind.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) an artifact store directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// pathFor maps a cell key to its artifact file.
func (s *Store) pathFor(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", Hash64(key)))
}

// Get loads the artifact for key into out. It returns (false, nil) when no
// artifact exists, and an error when one exists but cannot be trusted
// (version or key mismatch, corrupt JSON).
func (s *Store) Get(key string, out any) (bool, error) {
	path := s.pathFor(key)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("runner: store get %s: %w", path, err)
	}
	defer f.Close()
	if err := persist.LoadArtifact(f, key, out); err != nil {
		return false, fmt.Errorf("runner: store get %s: %w", path, err)
	}
	return true, nil
}

// Put atomically writes the artifact for key. Concurrent Puts of distinct
// keys are safe; a Put of an existing key replaces it.
func (s *Store) Put(key string, v any) error {
	tmp, err := os.CreateTemp(s.dir, ".artifact-*")
	if err != nil {
		return fmt.Errorf("runner: store put %q: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if err := persist.SaveArtifact(tmp, key, v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: store put %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.pathFor(key)); err != nil {
		return fmt.Errorf("runner: store put %q: %w", key, err)
	}
	return nil
}

// Len counts the artifacts currently in the store.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("runner: store len: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
