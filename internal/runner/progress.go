package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter observes a fan-out's progress. Implementations must be safe for
// concurrent use: Done is called from worker goroutines.
type Reporter interface {
	// Start announces the fan-out: total jobs, of which cached were
	// satisfied from the artifact store without running.
	Start(total, cached int)
	// Done reports one finished job by its display label (err is nil on
	// success).
	Done(label string, elapsed time.Duration, err error)
	// Finish reports the end of the fan-out and its total wall time.
	Finish(elapsed time.Duration)
}

// TextReporter prints one progress line per completed job with a running
// ETA extrapolated from throughput so far (wall time per completed job
// times jobs remaining — parallelism is already folded into the rate).
type TextReporter struct {
	W io.Writer

	mu      sync.Mutex
	total   int
	done    int
	ran     int // jobs actually executed (excludes cache hits)
	started time.Time
}

// NewTextReporter returns a TextReporter writing to w.
func NewTextReporter(w io.Writer) *TextReporter { return &TextReporter{W: w} }

// Start implements Reporter.
func (r *TextReporter) Start(total, cached int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total = total
	r.done = cached
	r.ran = 0
	r.started = time.Now()
	if cached > 0 {
		fmt.Fprintf(r.W, "runner: %d jobs (%d cached)\n", total, cached)
	} else {
		fmt.Fprintf(r.W, "runner: %d jobs\n", total)
	}
}

// Done implements Reporter.
func (r *TextReporter) Done(label string, elapsed time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	r.ran++
	status := "done"
	if err != nil {
		status = "FAILED"
	}
	line := fmt.Sprintf("runner: [%d/%d] %s %s (%.2fs)", r.done, r.total, status, label, elapsed.Seconds())
	if remaining := r.total - r.done; remaining > 0 && r.ran > 0 {
		eta := time.Since(r.started) / time.Duration(r.ran) * time.Duration(remaining)
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(r.W, line)
}

// Finish implements Reporter.
func (r *TextReporter) Finish(elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.W, "runner: finished %d/%d jobs in %s\n", r.done, r.total, elapsed.Round(time.Millisecond))
}
