package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter observes a fan-out's progress. Implementations must be safe for
// concurrent use: Done is called from worker goroutines.
type Reporter interface {
	// Start announces the fan-out: total jobs, of which cached were
	// satisfied from the artifact store without running.
	Start(total, cached int)
	// Done reports one finished job by its display label (err is nil on
	// success).
	Done(label string, elapsed time.Duration, err error)
	// Finish reports the end of the fan-out and its total wall time.
	Finish(elapsed time.Duration)
}

// TextReporter prints one progress line per completed job with a running
// ETA extrapolated from throughput so far (wall time per completed job
// times jobs remaining — parallelism is already folded into the rate),
// and one machine-readable summary line at the end (see Finish).
type TextReporter struct {
	W io.Writer

	mu      sync.Mutex
	total   int
	done    int
	ran     int // jobs actually executed (excludes cache hits)
	cached  int
	failed  int
	started time.Time
}

// NewTextReporter returns a TextReporter writing to w.
func NewTextReporter(w io.Writer) *TextReporter { return &TextReporter{W: w} }

// Start implements Reporter.
func (r *TextReporter) Start(total, cached int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total = total
	r.done = cached
	r.ran = 0
	r.cached = cached
	r.failed = 0
	r.started = time.Now() //olive:wallclock progress/ETA reporting only
	if cached > 0 {
		fmt.Fprintf(r.W, "runner: %d jobs (%d cached)\n", total, cached)
	} else {
		fmt.Fprintf(r.W, "runner: %d jobs\n", total)
	}
}

// Done implements Reporter.
func (r *TextReporter) Done(label string, elapsed time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	r.ran++
	status := "done"
	if err != nil {
		status = "FAILED"
		r.failed++
	}
	line := fmt.Sprintf("runner: [%d/%d] %s %s (%.2fs)", r.done, r.total, status, label, elapsed.Seconds())
	if remaining := r.total - r.done; remaining > 0 && r.ran > 0 {
		eta := time.Since(r.started) / time.Duration(r.ran) * time.Duration(remaining) //olive:wallclock progress/ETA reporting only
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(r.W, line)
}

// Finish implements Reporter. Besides the human-readable closing line it
// emits one machine-readable summary with fixed key order:
//
//	runner-summary jobs=<total> ran=<executed> cached=<store hits> failed=<errors>
//
// Scripts (the CI resume check included) must parse this line, never the
// free-text progress output, which carries no stability guarantee.
func (r *TextReporter) Finish(elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.W, "runner: finished %d/%d jobs in %s\n", r.done, r.total, elapsed.Round(time.Millisecond))
	fmt.Fprintf(r.W, "runner-summary jobs=%d ran=%d cached=%d failed=%d\n", r.total, r.ran, r.cached, r.failed)
}
