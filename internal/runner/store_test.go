package runner

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

type payload struct {
	Name string    `json:"name"`
	Xs   []float64 `json:"xs"`
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "cell", Xs: []float64{1.5, -2, 0}}
	if err := s.Put("sweep/v1|cell=0", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := s.Get("sweep/v1|cell=0", &out)
	if err != nil || !hit {
		t.Fatalf("Get = (%v, %v), want hit", hit, err)
	}
	if out.Name != in.Name || len(out.Xs) != 3 || out.Xs[1] != -2 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestStoreMissingKey(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := s.Get("never-written", &out)
	if hit || err != nil {
		t.Fatalf("Get of missing key = (%v, %v), want (false, nil)", hit, err)
	}
}

func TestStoreDetectsKeyCollision(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", payload{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a 64-bit filename collision: key-b's slot holds key-a's
	// artifact.
	data, err := os.ReadFile(s.pathFor("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.pathFor("key-b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if _, err := s.Get("key-b", &out); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("collision not detected: %v", err)
	}
}

func TestStoreRejectsCorruptArtifact(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.pathFor("bad"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if _, err := s.Get("bad", &out); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
}

func TestStoreLenCountsArtifacts(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"a", "b", "c"} {
		if err := s.Put(key, payload{Name: key}); err != nil {
			t.Fatal(err)
		}
		n, err := s.Len()
		if err != nil {
			t.Fatal(err)
		}
		if n != i+1 {
			t.Fatalf("Len = %d after %d puts", n, i+1)
		}
	}
}

func TestHash64IsStableAndCollisionFree(t *testing.T) {
	// Golden value: Hash64 names artifact files on disk, so any change
	// to it orphans every existing store. This pin must never move.
	if got := Hash64("olive/sim-cell/v1"); got != 0x8ca7abbdfa80716e {
		t.Fatalf("Hash64(%q) = %#016x — changing the hash breaks existing artifact stores", "olive/sim-cell/v1", got)
	}
	// Distinct (including near-identical) keys get distinct hashes.
	seen := map[uint64]string{}
	for i := 0; i < 1000; i++ {
		key := strings.Repeat("k", 1+i%7) + string(rune('a'+i%26))
		k := fmt.Sprintf("%s-rep=%d", key, i)
		h := Hash64(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %q and %q", prev, k)
		}
		seen[h] = k
	}
}
