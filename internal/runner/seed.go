package runner

// Deterministic key hashing: every sweep cell's identity is its key, and
// the artifact that persists it is named by a stable hash of that key —
// never by execution order — so any worker count, any interleaving and
// any resumed run address the same artifacts.

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// Hash64 returns a stable 64-bit hash of key: FNV-1a finished with a
// splitmix64 avalanche so nearby keys (…rep=1, …rep=2) land far apart.
// The value is stable across processes and Go versions — it names
// artifact files on disk, so changing it orphans every existing store.
func Hash64(key string) uint64 {
	h := fnvOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return splitmix64(h)
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
