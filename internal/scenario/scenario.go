// Package scenario is the declarative experiment layer of the
// reproduction: a JSON-serializable Spec describes an experiment as named
// axes over the simulation configuration — topology, utilization sweep,
// trace kind, application mix, algorithms, arrival rate, plan windows,
// the plan-input stressors — plus report definitions that generalize the
// paper figures' table/CI formatting. A grid expander deterministically
// enumerates the cross product of the axes; the simulation layer
// (internal/sim.RunScenario) turns the expanded grid into sweep cells,
// fans them out through the parallel runner, and renders the reports.
//
// Every figure and table of the paper lives in this package's registry as
// a built-in Spec (builtin.go); arbitrary user scenarios load from JSON
// (Load) and run through the same machinery — `vnesim -scenario spec.json`.
//
// The package is pure data: it does not import the simulation engine.
// Enumerated values (topologies, algorithms, trace kinds, application
// kinds) are carried as strings and validated when the spec is bound to a
// concrete configuration by internal/sim.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"

	"github.com/olive-vne/olive/internal/runner"
)

// Spec declares one experiment: a base configuration patch, swept axes,
// repetition counts, and either aggregate reports over the expanded grid,
// a single-run detail view, or a static (simulation-free) table.
type Spec struct {
	// Name identifies the scenario; it becomes part of every artifact key
	// (with the spec hash), so two scenarios never collide in a shared
	// artifact store.
	Name string `json:"name"`
	// Description is the one-line summary `vnesim -list` prints.
	Description string `json:"description,omitempty"`

	// Base patches the scale's default configuration before any axis
	// patch applies.
	Base Patch `json:"base,omitempty"`
	// Axes are the swept dimensions; the grid is their cross product in
	// axis order (the first axis varies slowest).
	Axes []Axis `json:"axes,omitempty"`

	// Reps, when positive, overrides the scale's repetition count.
	Reps int `json:"reps,omitempty"`
	// MaxReps, when positive, caps the repetition count (the runtime
	// figures run min(reps, 3) even at paper scale).
	MaxReps int `json:"maxReps,omitempty"`

	// Exactly one of Reports, Detail and Static must be set.

	// Reports render the aggregated sweep as one table each.
	Reports []Report `json:"reports,omitempty"`
	// Detail renders one full simulation run through a named view
	// (per-slot demand, per-node breakdown) instead of aggregating.
	Detail *Detail `json:"detail,omitempty"`
	// Static names a simulation-free table generator (topology
	// inventory, experimental settings).
	Static string `json:"static,omitempty"`
}

// Patch is a partial simulation configuration: unset fields (nil pointers,
// empty strings/slices) leave the base value untouched. Enumerated values
// are strings validated at binding time by internal/sim, which keeps this
// package free of engine imports and the JSON form human-writable.
type Patch struct {
	Topology           string   `json:"topology,omitempty"`
	Utilization        *float64 `json:"utilization,omitempty"`
	PlanUtilization    *float64 `json:"planUtilization,omitempty"`
	ShufflePlanIngress *bool    `json:"shufflePlanIngress,omitempty"`
	LambdaPerNode      *float64 `json:"lambdaPerNode,omitempty"`
	DemandMeanOverride *float64 `json:"demandMeanOverride,omitempty"`
	Trace              string   `json:"trace,omitempty"`
	DiurnalPeriod      *int     `json:"diurnalPeriod,omitempty"`
	AppKind            string   `json:"appKind,omitempty"`
	GPU                *bool    `json:"gpu,omitempty"`
	Algorithms         []string `json:"algorithms,omitempty"`
	Quantiles          *int     `json:"quantiles,omitempty"`
	PlanWindows        *int     `json:"planWindows,omitempty"`
	HistSlots          *int     `json:"histSlots,omitempty"`
	OnlineSlots        *int     `json:"onlineSlots,omitempty"`
	MeasureFrom        *int     `json:"measureFrom,omitempty"`
	MeasureTo          *int     `json:"measureTo,omitempty"`
}

// Merge returns p overlaid with q: every field q sets wins.
func (p Patch) Merge(q Patch) Patch {
	if q.Topology != "" {
		p.Topology = q.Topology
	}
	if q.Utilization != nil {
		p.Utilization = q.Utilization
	}
	if q.PlanUtilization != nil {
		p.PlanUtilization = q.PlanUtilization
	}
	if q.ShufflePlanIngress != nil {
		p.ShufflePlanIngress = q.ShufflePlanIngress
	}
	if q.LambdaPerNode != nil {
		p.LambdaPerNode = q.LambdaPerNode
	}
	if q.DemandMeanOverride != nil {
		p.DemandMeanOverride = q.DemandMeanOverride
	}
	if q.Trace != "" {
		p.Trace = q.Trace
	}
	if q.DiurnalPeriod != nil {
		p.DiurnalPeriod = q.DiurnalPeriod
	}
	if q.AppKind != "" {
		p.AppKind = q.AppKind
	}
	if q.GPU != nil {
		p.GPU = q.GPU
	}
	if q.Algorithms != nil {
		p.Algorithms = q.Algorithms
	}
	if q.Quantiles != nil {
		p.Quantiles = q.Quantiles
	}
	if q.PlanWindows != nil {
		p.PlanWindows = q.PlanWindows
	}
	if q.HistSlots != nil {
		p.HistSlots = q.HistSlots
	}
	if q.OnlineSlots != nil {
		p.OnlineSlots = q.OnlineSlots
	}
	if q.MeasureFrom != nil {
		p.MeasureFrom = q.MeasureFrom
	}
	if q.MeasureTo != nil {
		p.MeasureTo = q.MeasureTo
	}
	return p
}

// Axis is one swept dimension: an ordered list of labeled configuration
// patches, or the running scale's utilization sweep.
type Axis struct {
	// Name labels the axis (documentation and error messages).
	Name string `json:"name"`
	// ScaleUtils, when true, draws the values from the running scale's
	// utilization sweep (labels "60%", "80%", …) instead of Values. This
	// is how the paper sweeps respond to `vnesim -utils`.
	ScaleUtils bool `json:"scaleUtils,omitempty"`
	// Values are the axis points in sweep order.
	Values []AxisValue `json:"values,omitempty"`
}

// AxisValue is one axis point: a row/series label and the patch it applies.
type AxisValue struct {
	// Label becomes (part of) the row label. It may be empty: a grid
	// point whose label is empty and whose report reads per-algorithm
	// metrics labels its rows by algorithm name alone (Fig. 13's
	// reference rows).
	Label string `json:"label"`
	Patch Patch  `json:"patch"`
}

// Report declares one output table over the expanded grid.
type Report struct {
	// Title is the table title; the placeholder {topo} resolves to the
	// base configuration's topology at render time.
	Title string `json:"title"`
	// RowHeader is the label column's header ("util", "variant", …).
	RowHeader string `json:"rowHeader"`
	// Columns are the value columns, one table column each.
	Columns []Column `json:"columns"`
}

// Metric names accepted by Column.Metric.
const (
	MetricRejection  = "rejection"
	MetricCost       = "cost"
	MetricBalance    = "balance"
	MetricRuntime    = "runtime"
	MetricReqPerSlot = "req-per-slot" // derived: λ · edge-node count
)

// Column formats. The empty format defaults per metric: rejection and
// balance use "ci" (%.3f±%.3f), cost and runtime use "cig" (%.3g±%.2g).
const (
	FormatCI  = "ci"
	FormatCIg = "cig"
)

// Column is one value column of a report.
type Column struct {
	Header string `json:"header"`
	// Metric selects what the column reports: "rejection", "cost",
	// "balance", "runtime", or the derived "req-per-slot".
	Metric string `json:"metric"`
	// Algo fixes the algorithm the column reads. When empty (and the
	// metric is not derived), the report is in per-algorithm row mode:
	// each grid point emits one row per configured algorithm, reading
	// that algorithm's metric. A report must not mix fixed-algorithm and
	// per-algorithm metric columns.
	Algo string `json:"algo,omitempty"`
	// Format overrides the metric's default CI format ("ci" or "cig").
	Format string `json:"format,omitempty"`
}

// perAlgo reports whether the column participates in per-algorithm row
// mode (an unfixed metric column; derived columns are algorithm-free).
func (c Column) perAlgo() bool { return c.Algo == "" && c.Metric != MetricReqPerSlot }

// Detail declares a single-run detail view: the cell described by the
// spec's base patch runs once and a named view derives the table from the
// full simulation result (request log, plan, substrate).
type Detail struct {
	// View names the derivation; internal/sim implements "slot-demand"
	// (Fig. 8) and "node-breakdown" (Fig. 12).
	View string `json:"view"`
	// Title is the table title. The slot-demand view substitutes the
	// placeholder {slots} with the resolved zoom window ("200-230").
	Title string `json:"title"`
	// Node is the substrate node the node-breakdown view zooms into.
	Node string `json:"node,omitempty"`
	// ZoomFrom/ZoomLen bound the slot-demand view's window. The window
	// starts at ZoomFrom at paper scale; shorter online phases fall back
	// to one third of the phase, preserving the paper's proportions.
	ZoomFrom int `json:"zoomFrom,omitempty"`
	ZoomLen  int `json:"zoomLen,omitempty"`
}

// nameRe bounds scenario names: they are embedded in artifact keys and
// file-system-adjacent contexts, so keep them to a tame character set.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9._+-]+$`)

// Validate checks the spec's structure. Enumerated configuration values
// (topology, algorithm, trace, application-kind names) are validated
// later, when internal/sim binds the spec to a concrete configuration.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("scenario: nil spec")
	}
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: invalid name %q (want %s)", s.Name, nameRe)
	}
	kinds := 0
	if len(s.Reports) > 0 {
		kinds++
	}
	if s.Detail != nil {
		kinds++
	}
	if s.Static != "" {
		kinds++
	}
	if kinds != 1 {
		return fmt.Errorf("scenario: %s: exactly one of reports, detail and static must be set", s.Name)
	}
	if s.Reps < 0 || s.MaxReps < 0 {
		return fmt.Errorf("scenario: %s: negative reps", s.Name)
	}
	for i, ax := range s.Axes {
		if ax.ScaleUtils == (len(ax.Values) > 0) {
			return fmt.Errorf("scenario: %s: axis %d (%s) needs either scaleUtils or explicit values", s.Name, i, ax.Name)
		}
	}
	if s.Detail != nil || s.Static != "" {
		if len(s.Axes) > 0 {
			return fmt.Errorf("scenario: %s: detail/static scenarios take no axes", s.Name)
		}
		if s.Detail != nil && s.Detail.View == "" {
			return fmt.Errorf("scenario: %s: detail view must be named", s.Name)
		}
	}
	for ri, r := range s.Reports {
		if len(r.Columns) == 0 {
			return fmt.Errorf("scenario: %s: report %d has no columns", s.Name, ri)
		}
		fixed, per := 0, 0
		for ci, c := range r.Columns {
			switch c.Metric {
			case MetricRejection, MetricCost, MetricBalance, MetricRuntime, MetricReqPerSlot:
			default:
				return fmt.Errorf("scenario: %s: report %d column %d: unknown metric %q (valid: %s, %s, %s, %s, %s)",
					s.Name, ri, ci, c.Metric,
					MetricRejection, MetricCost, MetricBalance, MetricRuntime, MetricReqPerSlot)
			}
			switch c.Format {
			case "", FormatCI, FormatCIg:
			default:
				return fmt.Errorf("scenario: %s: report %d column %d: unknown format %q (valid: %s, %s)",
					s.Name, ri, ci, c.Format, FormatCI, FormatCIg)
			}
			if c.Metric != MetricReqPerSlot {
				if c.perAlgo() {
					per++
				} else {
					fixed++
				}
			}
		}
		if fixed > 0 && per > 0 {
			return fmt.Errorf("scenario: %s: report %d mixes fixed-algorithm and per-algorithm columns", s.Name, ri)
		}
	}
	return nil
}

// PerAlgoRows reports whether the report is in per-algorithm row mode:
// its metric columns float with each grid point's configured algorithms.
func (r Report) PerAlgoRows() bool {
	for _, c := range r.Columns {
		if c.perAlgo() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the spec (wrappers parameterize registry
// specs — topology, λ values — without mutating the registered original).
func (s *Spec) Clone() *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: clone %s: %v", s.Name, err))
	}
	var c Spec
	if err := json.Unmarshal(b, &c); err != nil {
		panic(fmt.Sprintf("scenario: clone %s: %v", s.Name, err))
	}
	return &c
}

// Hash returns a stable 64-bit hash of the spec's canonical JSON form,
// hex-encoded. Any change to the spec — an axis value, a report column, a
// base patch — changes the hash; it is folded into every artifact key so
// resumed sweeps never reuse artifacts computed under a different spec.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: hash %s: %v", s.Name, err))
	}
	return fmt.Sprintf("%016x", runner.Hash64(string(b)))
}

// Tag returns the scenario's artifact-key component: name@hash.
func (s *Spec) Tag() string { return s.Name + "@" + s.Hash() }

// Load reads and validates one JSON spec.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the spec as indented JSON.
func Save(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
