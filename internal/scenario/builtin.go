package scenario

import "fmt"

// Built-in scenarios: every figure and table of the paper's evaluation
// (§IV), expressed as data. The thin sim.Fig*/Table* wrappers load these
// specs (parameterizing topology or λ values where the original functions
// took arguments) and render them through sim.RunScenario; `vnesim -exp`
// resolves experiment names to these entries, and `vnesim -list` prints
// their descriptions.

// Algorithm names as they appear in Patch.Algorithms and Column.Algo.
// They mirror internal/core's Algorithm constants; internal/sim validates
// them at binding time.
const (
	AlgoOLIVE   = "OLIVE"
	AlgoQuickG  = "QUICKG"
	AlgoFullG   = "FULLG"
	AlgoSlotOff = "SLOTOFF"
)

func fp(v float64) *float64 { return &v }
func ip(v int) *int         { return &v }
func bp(v bool) *bool       { return &v }

// ciCols builds one fixed-algorithm column per algorithm for a metric.
func ciCols(metric string, algos ...string) []Column {
	cols := make([]Column, len(algos))
	for i, a := range algos {
		cols[i] = Column{Header: a, Metric: metric, Algo: a}
	}
	return cols
}

func init() {
	mustRegister(&Spec{
		Name:        "table2",
		Description: "Table II: topology inventory (nodes, links, tiers)",
		Static:      "topologies",
	})
	mustRegister(&Spec{
		Name:        "table3",
		Description: "Table III: experimental settings as realized by this reproduction",
		Static:      "settings",
	})

	mustRegister(&Spec{
		Name:        "fig6+7",
		Description: "Figs. 6/7: rejection rate and total cost vs utilization (OLIVE, QUICKG, SLOTOFF)",
		Axes:        []Axis{{Name: "util", ScaleUtils: true}},
		Reports: []Report{
			{
				Title:     "Fig. 6 ({topo}): rejection rate vs utilization",
				RowHeader: "util",
				Columns:   ciCols(MetricRejection, AlgoOLIVE, AlgoQuickG, AlgoSlotOff),
			},
			{
				Title:     "Fig. 7 ({topo}): total cost vs utilization",
				RowHeader: "util",
				Columns:   ciCols(MetricCost, AlgoOLIVE, AlgoQuickG, AlgoSlotOff),
			},
		},
	})

	mustRegister(&Spec{
		Name:        "fig8",
		Description: "Fig. 8: burst zoom — per-slot requested vs allocated demand, Iris @140%",
		Base:        Patch{Utilization: fp(1.4)},
		Detail: &Detail{
			View:     "slot-demand",
			Title:    "Fig. 8: allocated demand per slot, Iris @140%, slots {slots} (demand ÷100)",
			ZoomFrom: 200,
			ZoomLen:  30,
		},
	})

	mustRegister(&Spec{
		Name:        "fig9",
		Description: "Fig. 9: rejection rate by application type (chain, tree, accelerator, mix), Iris @100%",
		Base:        Patch{Algorithms: []string{AlgoOLIVE, AlgoQuickG, AlgoFullG, AlgoSlotOff}},
		Axes: []Axis{{
			Name: "apps",
			Values: []AxisValue{
				{Label: "Chain", Patch: Patch{AppKind: "chain"}},
				{Label: "Tree", Patch: Patch{AppKind: "tree"}},
				{Label: "Acc", Patch: Patch{AppKind: "accelerator"}},
				{Label: "Mix", Patch: Patch{}},
			},
		}},
		Reports: []Report{{
			Title:     "Fig. 9: rejection rate by application type, Iris @100%",
			RowHeader: "apps",
			Columns:   ciCols(MetricRejection, AlgoOLIVE, AlgoQuickG, AlgoFullG, AlgoSlotOff),
		}},
	})

	mustRegister(&Spec{
		Name:        "fig10",
		Description: "Fig. 10: GPU scenario — GPU/non-GPU datacenter split, GPU-chain applications",
		Base: Patch{
			GPU:        bp(true),
			Algorithms: []string{AlgoOLIVE, AlgoFullG, AlgoSlotOff},
		},
		Reports: []Report{{
			Title:     "Fig. 10: GPU scenario rejection rate, Iris @100%",
			RowHeader: "algorithm",
			Columns:   []Column{{Header: "rejection", Metric: MetricRejection}},
		}},
	})

	fig11Values := make([]AxisValue, 0, 5)
	for _, q := range []int{1, 2, 10, 50} {
		fig11Values = append(fig11Values, AxisValue{
			Label: fmt.Sprintf("OLIVE P=%d", q),
			Patch: Patch{Quantiles: ip(q), Algorithms: []string{AlgoOLIVE}},
		})
	}
	fig11Values = append(fig11Values, AxisValue{
		Label: "QUICKG",
		Patch: Patch{Algorithms: []string{AlgoQuickG}},
	})
	mustRegister(&Spec{
		Name:        "fig11",
		Description: "Fig. 11: rejection balance index vs quantile count (OLIVE P=1,2,10,50; QUICKG), Iris @140%",
		Base:        Patch{Utilization: fp(1.4)},
		Axes:        []Axis{{Name: "variant", Values: fig11Values}},
		Reports: []Report{{
			Title:     "Fig. 11: rejection balance index by quantiles, Iris @140%",
			RowHeader: "variant",
			Columns:   []Column{{Header: "balance index", Metric: MetricBalance}},
		}},
	})

	mustRegister(&Spec{
		Name:        "fig12",
		Description: "Fig. 12: Franklin edge node — OLIVE guaranteed demand vs actual allocation, Iris @100%",
		Base:        Patch{Algorithms: []string{AlgoOLIVE}},
		Detail: &Detail{
			View:  "node-breakdown",
			Title: "Fig. 12: Franklin node (Iris, MMPP) — OLIVE guaranteed demand vs actual allocation",
			Node:  "Franklin",
		},
	})

	mustRegister(&Spec{
		Name:        "fig13",
		Description: "Fig. 13: plan-deviation stressor — plans built for 60/100/140% demand, run @140%",
		Base:        Patch{Utilization: fp(1.4)},
		Axes: []Axis{{
			Name: "variant",
			Values: []AxisValue{
				{Label: "OLIVE (plan @60%)", Patch: Patch{PlanUtilization: fp(0.6), Algorithms: []string{AlgoOLIVE}}},
				{Label: "OLIVE (plan @100%)", Patch: Patch{PlanUtilization: fp(1.0), Algorithms: []string{AlgoOLIVE}}},
				{Label: "OLIVE (plan @140%)", Patch: Patch{PlanUtilization: fp(1.4), Algorithms: []string{AlgoOLIVE}}},
				{Label: "", Patch: Patch{Algorithms: []string{AlgoQuickG, AlgoSlotOff}}},
			},
		}},
		Reports: []Report{{
			Title:     "Fig. 13: effect of deviation from plan, Iris @140%",
			RowHeader: "variant",
			Columns:   []Column{{Header: "rejection", Metric: MetricRejection}},
		}},
	})

	mustRegister(&Spec{
		Name:        "fig14",
		Description: "Fig. 14: spatial stressor — plan built from ingress-shuffled history",
		Base: Patch{
			ShufflePlanIngress: bp(true),
			Algorithms:         []string{AlgoOLIVE, AlgoQuickG},
		},
		Axes: []Axis{{Name: "util", ScaleUtils: true}},
		Reports: []Report{
			{
				Title:     "Fig. 14a: shifted plan requests, Iris — rejection rate",
				RowHeader: "util",
				Columns: []Column{
					{Header: "OLIVE(shifted)", Metric: MetricRejection, Algo: AlgoOLIVE},
					{Header: "QUICKG", Metric: MetricRejection, Algo: AlgoQuickG},
				},
			},
			{
				Title:     "Fig. 14b: shifted plan requests, Iris — total cost",
				RowHeader: "util",
				Columns: []Column{
					{Header: "OLIVE(shifted)", Metric: MetricCost, Algo: AlgoOLIVE},
					{Header: "QUICKG", Metric: MetricCost, Algo: AlgoQuickG},
				},
			},
		},
	})

	mustRegister(&Spec{
		Name:        "fig15",
		Description: "Fig. 15: CAIDA-like heavy-tailed trace — rejection rate and total cost, Iris",
		Base:        Patch{Trace: "caida"},
		Axes:        []Axis{{Name: "util", ScaleUtils: true}},
		Reports: []Report{
			{
				Title:     "Fig. 15a: CAIDA-like demand, Iris — rejection rate",
				RowHeader: "util",
				Columns:   ciCols(MetricRejection, AlgoOLIVE, AlgoQuickG, AlgoSlotOff),
			},
			{
				Title:     "Fig. 15b: CAIDA-like demand, Iris — total cost",
				RowHeader: "util",
				Columns:   ciCols(MetricCost, AlgoOLIVE, AlgoQuickG, AlgoSlotOff),
			},
		},
	})

	mustRegister(&Spec{
		Name:        "fig16a",
		Description: "Fig. 16a: runtime vs arrival rate (demand scaled to hold utilization), Iris @100%",
		Base:        Patch{Algorithms: []string{AlgoOLIVE, AlgoQuickG}},
		MaxReps:     3,
		Axes: []Axis{{
			Name:   "λ/node",
			Values: LambdaValues([]float64{5, 10, 20, 40}),
		}},
		Reports: []Report{{
			Title:     "Fig. 16a: runtime vs arrival rate, Iris @100% (seconds)",
			RowHeader: "λ/node",
			Columns: []Column{
				{Header: "req/slot", Metric: MetricReqPerSlot},
				{Header: "OLIVE", Metric: MetricRuntime, Algo: AlgoOLIVE},
				{Header: "QUICKG", Metric: MetricRuntime, Algo: AlgoQuickG},
			},
		}},
	})

	mustRegister(&Spec{
		Name:        "fig16",
		Description: "Figs. 16b–e: runtime vs utilization per topology (OLIVE vs QUICKG)",
		Base:        Patch{Algorithms: []string{AlgoOLIVE, AlgoQuickG}},
		MaxReps:     3,
		Axes:        []Axis{{Name: "util", ScaleUtils: true}},
		Reports: []Report{{
			Title:     "Fig. 16 ({topo}): runtime vs utilization (seconds)",
			RowHeader: "util",
			Columns: []Column{
				{Header: "OLIVE", Metric: MetricRuntime, Algo: AlgoOLIVE},
				{Header: "QUICKG", Metric: MetricRuntime, Algo: AlgoQuickG},
			},
		}},
	})
}
