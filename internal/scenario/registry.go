package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to their specs. Built-in specs (every
// paper figure and table) register at init; user code may register more
// through Register. Lookup returns deep copies, so callers can
// parameterize a spec (set its topology, replace an axis) without
// mutating the registered original.
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register validates sp and adds it to the registry. Registering a name
// twice is an error — scenario names key artifact stores, so silent
// replacement would let two different grids share a name.
func Register(sp *Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[sp.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", sp.Name)
	}
	registry[sp.Name] = sp.Clone()
	return nil
}

// mustRegister registers a built-in spec, panicking on conflict or
// invalidity (a programming error in builtin.go).
func mustRegister(sp *Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Lookup returns a deep copy of the named spec.
func Lookup(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sp, ok := registry[name]
	if !ok {
		return nil, false
	}
	return sp.Clone(), true
}

// MustLookup is Lookup for names known to be registered (the built-ins).
func MustLookup(name string) *Spec {
	sp, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("scenario: %q not registered", name))
	}
	return sp
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a registered scenario.
func Describe(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	if sp, ok := registry[name]; ok {
		return sp.Description
	}
	return ""
}
