package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func validGridSpec() *Spec {
	return &Spec{
		Name: "test-grid",
		Axes: []Axis{
			{Name: "topology", Values: []AxisValue{
				{Label: "iris", Patch: Patch{Topology: "iris"}},
				{Label: "cittastudi", Patch: Patch{Topology: "cittastudi"}},
			}},
			{Name: "trace", Values: []AxisValue{
				{Label: "mmpp", Patch: Patch{Trace: "mmpp"}},
				{Label: "caida", Patch: Patch{Trace: "caida"}},
			}},
		},
		Reports: []Report{{
			Title:     "t",
			RowHeader: "cell",
			Columns:   []Column{{Header: "OLIVE", Metric: MetricRejection, Algo: AlgoOLIVE}},
		}},
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "invalid name"},
		{"bad name chars", func(s *Spec) { s.Name = "a b" }, "invalid name"},
		{"no output", func(s *Spec) { s.Reports = nil }, "exactly one of"},
		{"two outputs", func(s *Spec) { s.Static = "settings" }, "exactly one of"},
		{"axis without values", func(s *Spec) { s.Axes[0].Values = nil }, "needs either scaleUtils or explicit values"},
		{"axis with both", func(s *Spec) { s.Axes[0].ScaleUtils = true }, "needs either scaleUtils or explicit values"},
		{"no columns", func(s *Spec) { s.Reports[0].Columns = nil }, "no columns"},
		{"unknown metric", func(s *Spec) { s.Reports[0].Columns[0].Metric = "latency" }, "unknown metric"},
		{"unknown format", func(s *Spec) { s.Reports[0].Columns[0].Format = "pct" }, "unknown format"},
		{
			"mixed algo modes",
			func(s *Spec) {
				s.Reports[0].Columns = append(s.Reports[0].Columns, Column{Header: "x", Metric: MetricCost})
			},
			"mixes fixed-algorithm and per-algorithm",
		},
		{
			"detail with axes",
			func(s *Spec) {
				s.Reports = nil
				s.Detail = &Detail{View: "slot-demand", Title: "t"}
			},
			"take no axes",
		},
	}
	for _, tc := range cases {
		sp := validGridSpec()
		tc.mut(sp)
		err := sp.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := validGridSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestExpandCrossProductOrder(t *testing.T) {
	points, err := validGridSpec().Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"iris mmpp", "iris caida",
		"cittastudi mmpp", "cittastudi caida",
	}
	if len(points) != len(wantLabels) {
		t.Fatalf("expanded %d points, want %d", len(points), len(wantLabels))
	}
	for i, want := range wantLabels {
		if got := points[i].RowLabel(); got != want {
			t.Errorf("point %d label %q, want %q (first axis must vary slowest)", i, got, want)
		}
	}
	// The merged patch carries both axis fields.
	if points[3].Patch.Topology != "cittastudi" || points[3].Patch.Trace != "caida" {
		t.Errorf("point 3 patch not merged: %+v", points[3].Patch)
	}
}

func TestExpandScaleUtils(t *testing.T) {
	sp := validGridSpec()
	sp.Axes = []Axis{{Name: "util", ScaleUtils: true}}
	points, err := sp.Expand([]float64{0.6, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("expanded %d points, want 2", len(points))
	}
	if points[0].RowLabel() != "60%" || points[1].RowLabel() != "140%" {
		t.Errorf("utilization labels %q, %q", points[0].RowLabel(), points[1].RowLabel())
	}
	if *points[1].Patch.Utilization != 1.4 {
		t.Errorf("utilization patch = %v", *points[1].Patch.Utilization)
	}
	if _, err := sp.Expand(nil); err == nil {
		t.Error("scaleUtils axis with no utilizations accepted")
	}
}

func TestExpandBaseOnlySpec(t *testing.T) {
	sp := validGridSpec()
	sp.Axes = nil
	sp.Base = Patch{Topology: "5gen"}
	points, err := sp.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Patch.Topology != "5gen" || points[0].RowLabel() != "" {
		t.Fatalf("base-only expansion wrong: %+v", points)
	}
}

func TestJSONRoundTripPreservesHash(t *testing.T) {
	sp := validGridSpec()
	var buf bytes.Buffer
	if err := Save(&buf, sp); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != sp.Hash() {
		t.Error("JSON round trip changed the spec hash")
	}
	if loaded.Tag() != "test-grid@"+sp.Hash() {
		t.Errorf("tag %q", loaded.Tag())
	}
}

func TestLoadRejectsUnknownFieldsAndInvalidSpecs(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","reports":[],"axis":[]}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Error("spec without output accepted")
	}
}

// TestHashIsSensitiveAndStable: any edit to the spec must change the hash
// (artifact invalidation), and a deep copy must not.
func TestHashIsSensitiveAndStable(t *testing.T) {
	base := validGridSpec()
	if base.Clone().Hash() != base.Hash() {
		t.Error("clone changed the hash")
	}
	muts := []func(*Spec){
		func(s *Spec) { s.Axes[0].Values[0].Patch.Topology = "5gen" },
		func(s *Spec) { s.Axes[0].Values = s.Axes[0].Values[:1] },
		func(s *Spec) { s.Reports[0].Columns[0].Metric = MetricCost },
		func(s *Spec) { s.Base.Utilization = fp(1.2) },
		func(s *Spec) { s.MaxReps = 3 },
	}
	for i, mut := range muts {
		sp := validGridSpec()
		mut(sp)
		if sp.Hash() == base.Hash() {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestRegistryLookupReturnsCopies(t *testing.T) {
	sp := MustLookup("fig6+7")
	origHash := sp.Hash()
	sp.Base.Topology = "5gen"
	again := MustLookup("fig6+7")
	if again.Hash() != origHash {
		t.Error("mutating a Lookup result mutated the registry")
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("unknown name resolved")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	sp := validGridSpec()
	sp.Name = "test-register-once"
	if err := Register(sp); err != nil {
		t.Fatal(err)
	}
	if err := Register(sp); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := validGridSpec()
	bad.Name = ""
	if err := Register(bad); err == nil {
		t.Error("invalid spec registered")
	}
}

// TestBuiltinsCoverThePaper: every figure/table of the paper resolves in
// the registry, validates, and (for grid specs) expands deterministically.
func TestBuiltinsCoverThePaper(t *testing.T) {
	want := []string{
		"table2", "table3", "fig6+7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16a", "fig16",
	}
	for _, name := range want {
		sp, ok := Lookup(name)
		if !ok {
			t.Errorf("builtin %q not registered", name)
			continue
		}
		if sp.Description == "" {
			t.Errorf("builtin %q lacks a description", name)
		}
		if sp.Static != "" || sp.Detail != nil {
			continue
		}
		a, err := sp.Expand([]float64{0.6, 1.0, 1.4})
		if err != nil {
			t.Errorf("builtin %q does not expand: %v", name, err)
			continue
		}
		b, _ := sp.Expand([]float64{0.6, 1.0, 1.4})
		if len(a) != len(b) {
			t.Errorf("builtin %q expansion not deterministic", name)
		}
	}
}

// TestFig13ReferenceRowShape pins the per-algorithm row convention the
// executor relies on: the QUICKG/SLOTOFF reference cell has an empty
// label, so its rows are labeled by algorithm name alone.
func TestFig13ReferenceRowShape(t *testing.T) {
	sp := MustLookup("fig13")
	points, err := sp.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("fig13 expands to %d points, want 4", len(points))
	}
	last := points[len(points)-1]
	if last.RowLabel() != "" {
		t.Errorf("fig13 reference cell label %q, want empty", last.RowLabel())
	}
	if got := last.Patch.Algorithms; len(got) != 2 || got[0] != AlgoQuickG || got[1] != AlgoSlotOff {
		t.Errorf("fig13 reference algorithms %v", got)
	}
	if !sp.Reports[0].PerAlgoRows() {
		t.Error("fig13 report not in per-algorithm row mode")
	}
}
