package scenario

import (
	"errors"
	"fmt"
	"strings"
)

// GridPoint is one expanded cell of a scenario: the merged configuration
// patch (base, then each axis value in axis order) and the per-axis labels
// that form its row label.
type GridPoint struct {
	// Labels holds one entry per axis, in axis order.
	Labels []string
	// Patch is the full configuration patch of this point.
	Patch Patch
}

// RowLabel joins the point's non-empty axis labels with a space.
func (g GridPoint) RowLabel() string {
	parts := make([]string, 0, len(g.Labels))
	for _, l := range g.Labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, " ")
}

// Expand enumerates the spec's grid deterministically: the cross product
// of the axes in axis order, the first axis varying slowest. utils supplies
// the values of scaleUtils axes (the running scale's utilization sweep).
// A spec with no axes expands to the single base point.
func (s *Spec) Expand(utils []float64) ([]GridPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	points := []GridPoint{{Patch: s.Base}}
	for _, ax := range s.Axes {
		values := ax.Values
		if ax.ScaleUtils {
			if len(utils) == 0 {
				return nil, fmt.Errorf("scenario: %s: axis %q sweeps the scale's utilizations, but none were provided", s.Name, ax.Name)
			}
			values = UtilizationValues(utils)
		}
		next := make([]GridPoint, 0, len(points)*len(values))
		for _, pt := range points {
			for _, v := range values {
				next = append(next, GridPoint{
					Labels: append(append([]string{}, pt.Labels...), v.Label),
					Patch:  pt.Patch.Merge(v.Patch),
				})
			}
		}
		points = next
	}
	if len(points) == 0 {
		return nil, errors.New("scenario: empty grid")
	}
	return points, nil
}

// UtilizationValues builds the axis values of a utilization sweep: labels
// "60%", "80%", … exactly as the paper figures print them.
func UtilizationValues(utils []float64) []AxisValue {
	vs := make([]AxisValue, len(utils))
	for i, u := range utils {
		u := u
		vs[i] = AxisValue{
			Label: fmt.Sprintf("%.0f%%", u*100),
			Patch: Patch{Utilization: &u},
		}
	}
	return vs
}

// LambdaValues builds the axis values of an arrival-rate sweep: labels
// "%.0f" of λ, as Fig. 16a prints them.
func LambdaValues(lambdas []float64) []AxisValue {
	vs := make([]AxisValue, len(lambdas))
	for i, l := range lambdas {
		l := l
		vs[i] = AxisValue{
			Label: fmt.Sprintf("%.0f", l),
			Patch: Patch{LambdaPerNode: &l},
		}
	}
	return vs
}
